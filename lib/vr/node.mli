(** Viewstamped Replication leader election (Liskov & Cowling, 2012),
    paired with Omni-Paxos' Sequence Paxos for log replication — exactly the
    "VR" configuration of the paper's evaluation, which isolates the
    resilience of VR's view changes.

    Views are numbered rounds with a round-robin leader: view [v] is led by
    server [v mod n]. A server that suspects the leader broadcasts
    [Start_view_change (v+1)]; servers join a higher view change by
    forwarding it. Only a server that has gathered [Start_view_change]
    messages from a quorum sends [Do_view_change] to the new leader — VR's
    EQC requirement: a leader must be elected *by* quorum-connected servers.
    The new leader starts the view on a quorum of [Do_view_change], and log
    synchronisation is delegated to the Sequence Paxos Prepare phase. *)

type vr_msg =
  | Start_view_change of { view : int }
  | Do_view_change of { view : int }
  | Start_view of { view : int }
  | Ping of { view : int }

type msg = Vr of vr_msg | Sp of Omnipaxos.Sequence_paxos.msg

type status = Normal | View_change

type t

val create :
  id:int ->
  peers:int list ->
  election_ticks:int ->
  ?batching:Omnipaxos.Batching.config ->
  ?compaction:Omnipaxos.Compaction.config ->
  ?on_snapshot:(int -> string -> unit) ->
  send:(dst:int -> msg -> unit) ->
  ?on_decide:(int -> unit) ->
  unit ->
  t
(** [batching] selects the flush policy of the inner Sequence Paxos
    instance (default {!Omnipaxos.Batching.fixed}); [compaction] (default
    {!Omnipaxos.Compaction.disabled}) its snapshot-and-trim trigger, with
    [on_snapshot] firing when a leader-shipped snapshot is installed. *)

val handle : t -> src:int -> msg -> unit
val tick : t -> unit
val session_reset : t -> peer:int -> unit
val propose : t -> Omnipaxos.Entry.t -> bool
val status : t -> status
val view : t -> int
val is_leader : t -> bool
val leader_pid : t -> int option
val sequence_paxos : t -> Omnipaxos.Sequence_paxos.t
val msg_size : msg -> int
