module Sp = Omnipaxos.Sequence_paxos

type vr_msg =
  | Start_view_change of { view : int }
  | Do_view_change of { view : int }
  | Start_view of { view : int }
  | Ping of { view : int }

type msg = Vr of vr_msg | Sp of Sp.msg

type status = Normal | View_change

let status_is_normal = function Normal -> true | View_change -> false
let status_is_view_change = function View_change -> true | Normal -> false

type t = {
  id : int;
  peers : int list;
  n_total : int;
  quorum : int;
  election_ticks : int;
  heartbeat_ticks : int;
  send : dst:int -> msg -> unit;
  sp : Sp.t;
  mutable view : int;
  mutable status : status;
  mutable proposed_view : int;
  svc : (int, unit) Hashtbl.t;
  dvc : (int, unit) Hashtbl.t;
  mutable dvc_sent : bool;
  mutable ticks_since_ping : int;
  mutable vc_ticks : int;
  mutable tick_count : int;
}

let leader_of t view = view mod t.n_total

(* Sequence Paxos rounds for view [v] use ballot (v + 1, leader pid), which
   is monotone in the view and unique per (view, leader). *)
let ballot_of t view =
  { Omnipaxos.Ballot.n = view + 1; priority = 0; pid = leader_of t view }

let create ~id ~peers ~election_ticks ?batching ?compaction ?on_snapshot ~send
    ?on_decide () =
  let sp =
    Sp.create ~id ~peers ~persistent:(Sp.fresh_persistent ()) ?batching
      ?compaction
      ~send:(fun ~dst m -> send ~dst (Sp m))
      ?on_decide ?on_snapshot ()
  in
  let n_total = List.length peers + 1 in
  {
    id;
    peers;
    n_total;
    quorum = (n_total / 2) + 1;
    election_ticks;
    heartbeat_ticks = max 1 (election_ticks / 5);
    send;
    sp;
    view = 0;
    status = Normal;
    proposed_view = 0;
    svc = Hashtbl.create 8;
    dvc = Hashtbl.create 8;
    dvc_sent = false;
    ticks_since_ping = 0;
    vc_ticks = 0;
    tick_count = 0;
  }

let broadcast t m = List.iter (fun p -> t.send ~dst:p (Vr m)) t.peers

let become_leader t view =
  t.view <- view;
  t.status <- Normal;
  t.ticks_since_ping <- 0;
  broadcast t (Start_view { view });
  Sp.handle_leader t.sp (ballot_of t view)

(* EQC: only a server that gathered Start_view_change from a quorum may vote
   (send Do_view_change) for the new leader. *)
let check_svc_quorum t =
  if
    status_is_view_change t.status
    && (not t.dvc_sent)
    && Hashtbl.length t.svc >= t.quorum
  then begin
    t.dvc_sent <- true;
    let lead = leader_of t t.proposed_view in
    if lead = t.id then begin
      Hashtbl.replace t.dvc t.id ();
      if Hashtbl.length t.dvc >= t.quorum then become_leader t t.proposed_view
    end
    else t.send ~dst:lead (Vr (Do_view_change { view = t.proposed_view }))
  end

let start_view_change t view =
  t.status <- View_change;
  t.proposed_view <- view;
  t.vc_ticks <- 0;
  Hashtbl.reset t.svc;
  Hashtbl.reset t.dvc;
  t.dvc_sent <- false;
  Hashtbl.replace t.svc t.id ();
  broadcast t (Start_view_change { view });
  check_svc_quorum t

let enter_view t view =
  t.view <- view;
  t.status <- Normal;
  t.ticks_since_ping <- 0

let on_vr t ~src msg =
  match msg with
  | Start_view_change { view } ->
      if view > t.view then begin
        if status_is_view_change t.status && view = t.proposed_view then begin
          Hashtbl.replace t.svc src ();
          check_svc_quorum t
        end
        else if status_is_normal t.status || view > t.proposed_view then begin
          (* Join (and forward) the higher view change. *)
          start_view_change t view;
          Hashtbl.replace t.svc src ();
          check_svc_quorum t
        end
      end
  | Do_view_change { view } ->
      if
        status_is_view_change t.status
        && view = t.proposed_view
        && leader_of t view = t.id
      then begin
        Hashtbl.replace t.dvc src ();
        (* Our own vote requires our own SVC quorum (EQC), recorded in
           [check_svc_quorum]. *)
        if
          Hashtbl.length t.dvc >= t.quorum
          && Hashtbl.mem t.dvc t.id
        then become_leader t view
      end
  | Start_view { view } -> if view > t.view then enter_view t view
  | Ping { view } ->
      if
        view >= t.view
        && (view > t.view || status_is_normal t.status
           || view >= t.proposed_view)
      then begin
        if view > t.view || status_is_view_change t.status then
          enter_view t view
        else t.ticks_since_ping <- 0
      end

let handle t ~src msg =
  match msg with
  | Vr m -> on_vr t ~src m
  | Sp m -> Sp.handle t.sp ~src m

let is_leader t = status_is_normal t.status && leader_of t t.view = t.id

let tick t =
  t.tick_count <- t.tick_count + 1;
  Sp.flush t.sp;
  if is_leader t then begin
    (* Make sure the Sequence Paxos role matches the view (also covers the
       initial view 0 at startup). *)
    if not (Sp.is_leader t.sp) then Sp.handle_leader t.sp (ballot_of t t.view);
    if t.tick_count mod t.heartbeat_ticks = 0 then
      broadcast t (Ping { view = t.view })
  end
  else
    match t.status with
    | Normal ->
        t.ticks_since_ping <- t.ticks_since_ping + 1;
        if t.ticks_since_ping >= t.election_ticks then
          start_view_change t (t.view + 1)
    | View_change ->
        t.vc_ticks <- t.vc_ticks + 1;
        if t.vc_ticks >= t.election_ticks then
          (* The candidate could not be elected: move to the next view in
             the round-robin order. *)
          start_view_change t (t.proposed_view + 1)

let session_reset t ~peer = Sp.session_reset t.sp ~peer
let propose t entry = Sp.propose t.sp entry
let status t = t.status
let view t = t.view

let leader_pid t =
  match t.status with Normal -> Some (leader_of t t.view) | View_change -> None

let sequence_paxos t = t.sp

let msg_size = function
  | Vr (Start_view_change _ | Do_view_change _ | Start_view _ | Ping _) -> 17
  | Sp m -> Sp.msg_size m
