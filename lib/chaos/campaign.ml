(* Seeded chaos campaigns; see the .mli for the episode structure. *)

module Net = Simnet.Net

type config = {
  n : int;
  clients : int;
  keys : int;
  steps : int;
  step_ms : float;
  warmup_ms : float;
  grace_ms : float;
  tick_ms : float;
  election_timeout_ms : float;
  op_timeout_ms : float;
  latency_ms : float;
  max_states : int;
  compaction : Omnipaxos.Compaction.config;
}

let default_config =
  {
    n = 3;
    clients = 3;
    keys = 4;
    steps = 12;
    step_ms = 100.0;
    warmup_ms = 300.0;
    grace_ms = 500.0;
    tick_ms = 5.0;
    election_timeout_ms = 50.0;
    op_timeout_ms = 300.0;
    latency_ms = 5.0;
    max_states = 2_000_000;
    compaction = Omnipaxos.Compaction.disabled;
  }

type episode = {
  ep_seed : int;
  ep_schedule : Nemesis.fault list;
  ep_applied : int;
  ep_completed : int;
  ep_timeouts : int;
  ep_check : Checker.result;
  ep_recoveries : Obs.Health.recovery list;
}

type failure = {
  f_seed : int;
  f_schedule : Nemesis.fault list;
  f_minimal : Nemesis.fault list;
  f_violation : Checker.violation;
}

type summary = {
  s_protocol : string;
  s_seed : int;
  s_episodes : int;
  s_ops : int;
  s_completed : int;
  s_timeouts : int;
  s_faults : int;
  s_states : int;
  s_truncated : int;
  s_recovery_episodes : int;
  s_recovered : int;
  s_recovery_sum_ms : float;
  s_failures : failure list;
}

let mean_recovery_ms s =
  if s.s_recovered = 0 then None
  else Some (s.s_recovery_sum_ms /. float_of_int s.s_recovered)

let pp_summary ppf s =
  Format.fprintf ppf "protocol: %s@." s.s_protocol;
  Format.fprintf ppf "episodes: %d  base seed: %d@." s.s_episodes s.s_seed;
  Format.fprintf ppf "ops: %d (completed %d, timeouts %d)@." s.s_ops
    s.s_completed s.s_timeouts;
  Format.fprintf ppf "faults applied: %d@." s.s_faults;
  Format.fprintf ppf "checker states: %d  truncated episodes: %d@." s.s_states
    s.s_truncated;
  Format.fprintf ppf
    "recovery episodes: %d (recovered %d, mean fault-to-decide %s)@."
    s.s_recovery_episodes s.s_recovered
    (match mean_recovery_ms s with
    | Some m -> Printf.sprintf "%.1f ms" m
    | None -> "-");
  Format.fprintf ppf "violations: %d@." (List.length s.s_failures);
  List.iter
    (fun f ->
      Format.fprintf ppf "FAILURE seed=%d@." f.f_seed;
      Format.fprintf ppf "  schedule (%d): %a@."
        (List.length f.f_schedule)
        Nemesis.pp_schedule f.f_schedule;
      Format.fprintf ppf "  minimal (%d): %a@."
        (List.length f.f_minimal)
        Nemesis.pp_schedule f.f_minimal;
      Format.fprintf ppf "  %a" Checker.pp_violation f.f_violation)
    s.s_failures

module Make (P : Rsm.Protocol.PROTOCOL) = struct
  module C = Rsm.Cluster.Make (P)
  module Kv_client = Rsm.Client.Kv
  module History = Rsm.Client.History

  let schedule_of_seed cfg ~seed =
    let rng = Random.State.make [| seed; 0xfa07 |] in
    Nemesis.random_schedule ~rng ~n:cfg.n ~length:cfg.steps

  let run_schedule cfg ~seed ~schedule =
    let t =
      C.create
        {
          Rsm.Cluster.n = cfg.n;
          tick_ms = cfg.tick_ms;
          election_timeout_ms = cfg.election_timeout_ms;
          latency_ms = cfg.latency_ms;
          egress_bw = infinity;
          seed;
          batching = Omnipaxos.Batching.fixed;
          compaction = cfg.compaction;
        }
    in
    let net = C.net t in
    (* Response oracle: replay each server's decided-command stream against
       its own KV replica; an operation's response is whatever the
       *submission* server's state machine returned when it applied it. *)
    let commands : (int, Replog.Command.t) Hashtbl.t = Hashtbl.create 256 in
    let results : (int * int, Replog.Kv.result) Hashtbl.t =
      Hashtbl.create 256
    in
    let kvs = Array.init cfg.n (fun _ -> Replog.Kv.create ()) in
    let scanned = Array.make cfg.n 0 in
    let installs = Array.make cfg.n 0 in
    let advance () =
      for i = 0 to cfg.n - 1 do
        (* A snapshot install replaced server [i]'s state below the trim
           point: jump its oracle replica to the installed state and resume
           applying at the recorded stream position. Decided ids this server
           never streamed (their effects arrived inside the snapshot) simply
           record no response here — those operations stay pending, which
           the linearizability checker treats soundly. *)
        (match P.last_install (C.node t i) with
        | Some inst when inst.Rsm.Protocol.inst_seq > installs.(i) ->
            installs.(i) <- inst.Rsm.Protocol.inst_seq;
            (match Replog.Snapshot.decode inst.Rsm.Protocol.inst_payload with
            | Ok s ->
                kvs.(i) <- Replog.Snapshot.restore s;
                scanned.(i) <-
                  max scanned.(i) inst.Rsm.Protocol.inst_cache_len
            | Error _ -> ())
        | Some _ | None -> ());
        let ids = P.decided_ids (C.node t i) ~from:scanned.(i) in
        List.iter
          (fun id ->
            match Hashtbl.find_opt commands id with
            | None -> ()
            | Some cmd ->
                Hashtbl.replace results (i, id) (Replog.Kv.apply kvs.(i) cmd))
          ids;
        scanned.(i) <- scanned.(i) + List.length ids
      done
    in
    let rec advance_loop () =
      Net.schedule net ~delay:cfg.tick_ms (fun () ->
          advance ();
          advance_loop ())
    in
    advance_loop ();
    let history = History.create () in
    let next_id = ref 0 in
    let live_nodes () =
      List.filter (fun i -> Net.is_up net i) (List.init cfg.n (fun i -> i))
    in
    let make_client k =
      let rng = Random.State.make [| seed; k; 0xc11e |] in
      (* Reads go to a uniformly random live server half the time (a correct
         protocol just refuses at non-leaders; a local-read bug gets
         exercised at stale leaders); everything else to the perceived
         leader. *)
      let choose_node ~read =
        if read && Random.State.bool rng then
          match live_nodes () with
          | [] -> None
          | live ->
              Some (List.nth live (Random.State.int rng (List.length live)))
        else C.leader t
      in
      Kv_client.start ~history ~client:k ~rng ~keys:cfg.keys
        ~timeout_ms:cfg.op_timeout_ms ~poll_ms:cfg.tick_ms
        {
          Kv_client.kc_now = (fun () -> C.now t);
          kc_choose_node = choose_node;
          kc_submit =
            (fun ~node cmd ->
              Hashtbl.replace commands cmd.Replog.Command.id cmd;
              C.propose_at t ~node cmd);
          kc_result = (fun ~node ~op_id -> Hashtbl.find_opt results (node, op_id));
          kc_schedule = (fun ~delay f -> Net.schedule net ~delay f);
          kc_next_id =
            (fun () ->
              let id = !next_id in
              incr next_id;
              id);
        }
    in
    let clients = Array.init cfg.clients make_client in
    (* Compaction events per node, fed from the trace stream (the campaign
       runs with tracing on); guards [Restart_after_trim]. Pure observation:
       no emission, no randomness, so episodes stay replayable. *)
    let trim_counts = Array.make cfg.n 0 in
    let count_trims (ev : Obs.Event.t) =
      match ev.Obs.Event.kind with
      | Obs.Event.Log_trimmed _
        when ev.Obs.Event.node >= 0 && ev.Obs.Event.node < cfg.n ->
          trim_counts.(ev.Obs.Event.node) <-
            trim_counts.(ev.Obs.Event.node) + 1
      | _ [@lint.allow "D4"] -> ()
    in
    let trim_sink = Obs.Trace.subscribe count_trims in
    let env =
      {
        Nemesis.net;
        crash_node = C.crash t;
        recover_node = C.recover t;
        base_latency = cfg.latency_ms;
        trim_count = (fun i -> trim_counts.(i));
      }
    in
    let nst = Nemesis.initial ~n:cfg.n in
    (* Per-episode recovery latency: the liveness health monitor rides the
       event stream online, pairing each fault burst with the first
       post-fault cluster-wide decide. The sink only observes (it emits
       nothing and consumes no randomness), so episodes stay replayable. *)
    let monitor =
      Obs.Health.create
        (Obs.Health.default_config ~n:cfg.n
           ~election_timeout_ms:cfg.election_timeout_ms)
    in
    let sink = Obs.Trace.subscribe (Obs.Health.observe monitor) in
    let was_enabled = Obs.Trace.is_enabled () in
    Obs.Trace.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.unsubscribe trim_sink;
        Obs.Trace.unsubscribe sink;
        Obs.Trace.set_enabled was_enabled)
      (fun () ->
        C.run_ms t cfg.warmup_ms;
        let applied = ref 0 in
        List.iteri
          (fun step fault ->
            if Nemesis.apply env nst ~step fault then incr applied;
            C.run_ms t cfg.step_ms)
          schedule;
        Nemesis.heal env nst;
        C.run_ms t cfg.grace_ms;
        Array.iter Kv_client.stop clients;
        let check = Checker.check ~max_states:cfg.max_states history in
        {
          ep_seed = seed;
          ep_schedule = schedule;
          ep_applied = !applied;
          ep_completed =
            Array.fold_left (fun a c -> a + Kv_client.completed c) 0 clients;
          ep_timeouts =
            Array.fold_left (fun a c -> a + Kv_client.timed_out c) 0 clients;
          ep_check = check;
          ep_recoveries = Obs.Health.recoveries monitor;
        })

  let run_episode cfg ~seed =
    run_schedule cfg ~seed ~schedule:(schedule_of_seed cfg ~seed)

  let fails cfg ~seed ~schedule =
    Option.is_some (run_schedule cfg ~seed ~schedule).ep_check.Checker.r_violation

  let shrink cfg ~seed ~schedule =
    let rec go sched =
      let len = List.length sched in
      let rec try_at i =
        if i >= len then sched
        else
          let cand = List.filteri (fun j _ -> j <> i) sched in
          if fails cfg ~seed ~schedule:cand then go cand else try_at (i + 1)
      in
      try_at 0
    in
    go schedule

  let run ?(on_episode = fun _ -> ()) cfg ~seed ~episodes =
    let ops = ref 0
    and completed = ref 0
    and timeouts = ref 0
    and faults = ref 0
    and states = ref 0
    and truncated = ref 0
    and rec_eps = ref 0
    and recovered = ref 0
    and rec_sum = ref 0.0
    and failures = ref [] in
    for ep = 0 to episodes - 1 do
      let ep_seed = seed + ep in
      let e = run_episode cfg ~seed:ep_seed in
      on_episode e;
      ops := !ops + e.ep_check.Checker.r_ops;
      completed := !completed + e.ep_completed;
      timeouts := !timeouts + e.ep_timeouts;
      faults := !faults + e.ep_applied;
      states := !states + e.ep_check.Checker.r_states;
      if e.ep_check.Checker.r_truncated then incr truncated;
      List.iter
        (fun r ->
          incr rec_eps;
          match Obs.Health.recovery_latency r with
          | Some ms ->
              incr recovered;
              rec_sum := !rec_sum +. ms
          | None -> ())
        e.ep_recoveries;
      match e.ep_check.Checker.r_violation with
      | None -> ()
      | Some v ->
          let minimal = shrink cfg ~seed:ep_seed ~schedule:e.ep_schedule in
          let re = run_schedule cfg ~seed:ep_seed ~schedule:minimal in
          let violation =
            Option.value re.ep_check.Checker.r_violation ~default:v
          in
          failures :=
            {
              f_seed = ep_seed;
              f_schedule = e.ep_schedule;
              f_minimal = minimal;
              f_violation = violation;
            }
            :: !failures
    done;
    {
      s_protocol = P.name;
      s_seed = seed;
      s_episodes = episodes;
      s_ops = !ops;
      s_completed = !completed;
      s_timeouts = !timeouts;
      s_faults = !faults;
      s_states = !states;
      s_truncated = !truncated;
      s_recovery_episodes = !rec_eps;
      s_recovered = !recovered;
      s_recovery_sum_ms = !rec_sum;
      s_failures = List.rev !failures;
    }
end

(* ------------------------------------------------------------------ *)
(* CLI dispatch                                                        *)
(* ------------------------------------------------------------------ *)

type runner = {
  cr_name : string;
  cr_protocol : string;
  cr_run :
    ?on_episode:(episode -> unit) -> config -> seed:int -> episodes:int ->
    summary;
  cr_replay : config -> seed:int -> schedule:Nemesis.fault list -> episode;
}

module Omni_campaign = Make (Rsm.Omni_adapter)
module Raft_campaign = Make (Rsm.Raft_adapter.Plain)
module Raft_pvcq_campaign = Make (Rsm.Raft_adapter.Pv_cq)
module Multipaxos_campaign = Make (Rsm.Multipaxos_adapter)
module Vr_campaign = Make (Rsm.Vr_adapter)
module Faulty_raft_campaign = Make (Faulty.Make (Rsm.Raft_adapter.Plain))

let runners =
  [
    {
      cr_name = "omni";
      cr_protocol = Rsm.Omni_adapter.name;
      cr_run = Omni_campaign.run;
      cr_replay = Omni_campaign.run_schedule;
    };
    {
      cr_name = "raft";
      cr_protocol = Rsm.Raft_adapter.Plain.name;
      cr_run = Raft_campaign.run;
      cr_replay = Raft_campaign.run_schedule;
    };
    {
      cr_name = "raft-pvcq";
      cr_protocol = Rsm.Raft_adapter.Pv_cq.name;
      cr_run = Raft_pvcq_campaign.run;
      cr_replay = Raft_pvcq_campaign.run_schedule;
    };
    {
      cr_name = "multipaxos";
      cr_protocol = Rsm.Multipaxos_adapter.name;
      cr_run = Multipaxos_campaign.run;
      cr_replay = Multipaxos_campaign.run_schedule;
    };
    {
      cr_name = "vr";
      cr_protocol = Rsm.Vr_adapter.name;
      cr_run = Vr_campaign.run;
      cr_replay = Vr_campaign.run_schedule;
    };
    {
      cr_name = "faulty-raft";
      cr_protocol = Rsm.Raft_adapter.Plain.name ^ " (stale reads)";
      cr_run = Faulty_raft_campaign.run;
      cr_replay = Faulty_raft_campaign.run_schedule;
    };
  ]

let find_runner name =
  List.find_opt (fun r -> r.cr_name = name) runners

(* Replay one failing schedule with the tracer writing to [file] — binary
   traces are ~an order of magnitude smaller than JSONL, which is what CI
   uploads as the artifact for a red nightly campaign. *)
let write_failure_trace ~file ~format runner cfg (f : failure) =
  let (_ : episode) =
    Obs.Trace.with_file ~file ~format (fun () ->
        runner.cr_replay cfg ~seed:f.f_seed ~schedule:f.f_minimal)
  in
  ()
