(** A deliberately broken protocol wrapper: the chaos harness's canary.

    [Make (P)] behaves exactly like [P] except that a [Kv_get] proposed at a
    server that *believes* it is the leader is served locally, from that
    server's own decided prefix, without going through consensus. Under full
    connectivity this is invisible (the leader's prefix is current), but a
    partition that leaves a deposed leader still claiming leadership makes
    the local read stale — a linearizability violation the campaign must
    catch and shrink to a minimal fault schedule. Gating the bug on
    [P.is_leader] keeps empty schedules passing, so minimal failing
    schedules are non-trivial. *)

module Make (P : Rsm.Protocol.PROTOCOL) :
  Rsm.Protocol.PROTOCOL with type msg = P.msg
