(** The nemesis: declarative fault schedules compiled into simulated-network
    actions.

    A schedule is a plain list of fault opcodes, applied one per nemesis
    step. Schedules are generated from a single PRNG seed (so a campaign
    replays bit-identically) and shrink by deleting opcodes — the campaign's
    minimisation loop re-runs subsets of a failing schedule under the same
    seed.

    Application is guarded: a [Crash] that would take down a majority and a
    [Recover] of a live node are skipped (reported by {!apply} returning
    [false]), so random schedules cannot wedge an episode for trivial
    reasons. All faults are topology/latency/process faults; the final
    {!heal} restores full connectivity, recovers every crashed node and
    resets latencies, after which the protocols must resume. *)

type fault =
  | Crash of int
  | Recover of int
  | Flip_link of int * int  (** toggle both directions of a link *)
  | Flip_oneway of { src : int; dst : int }
      (** toggle one direction (half-duplex partial connectivity) *)
  | Heal_all
  | Isolate of int
  | Quorum_loss of { hub : int }  (** the paper's Figure 1a shape *)
  | Constrained of { qc : int; leader : int }  (** Figure 1b shape *)
  | Chain of int list  (** Figure 1c generalised: only consecutive links *)
  | Latency_spike of { a : int; b : int; ms : float }
  | Reset_session of int * int
      (** transport-session drop/re-establish without a topology change *)
  | Restart_after_trim of int
      (** crash-restart the node once it has compacted its log, so recovery
          crosses the compaction boundary (snapshot + trimmed log); skipped
          until a compaction event has been observed at that node. Never
          drawn by {!random_schedule} — for explicit schedules only. *)

val pp_fault : Format.formatter -> fault -> unit
val fault_to_string : fault -> string
(** Compact rendering, e.g. ["crash(2)"], ["flip(0,1)"]. *)

val pp_schedule : Format.formatter -> fault list -> unit
(** Semicolon-separated opcode list. *)

val random_schedule :
  rng:Random.State.t -> n:int -> length:int -> fault list
(** Draw [length] opcodes for an [n]-server cluster. The distribution mixes
    link flips (35%), crash/recover (24%), the three paper partition shapes
    (15%), isolation (5%), heals (8%), latency spikes (8%) and session
    resets (5%). *)

type 'm env = {
  net : 'm Simnet.Net.t;
  crash_node : int -> unit;  (** cluster-aware crash (drops the node) *)
  recover_node : int -> unit;  (** cluster-aware fail-recovery restart *)
  base_latency : float;  (** restored by [Heal_all] and {!heal} *)
  trim_count : int -> int;
      (** compaction events observed at a node so far (the campaign feeds
          this from the trace stream); guards [Restart_after_trim] *)
}

type state
(** Tracks which nodes the nemesis has crashed, for the majority guard. *)

val initial : n:int -> state
val crashed : state -> int list

val apply : 'm env -> state -> step:int -> fault -> bool
(** Execute one opcode; returns [false] if the guard skipped it. Emits an
    [Obs.Event.Chaos_fault] when tracing is on. *)

val heal : 'm env -> state -> unit
(** End of the fault window: restore every link and latency and recover
    every nemesis-crashed node. *)
