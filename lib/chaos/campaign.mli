(** Seeded chaos campaigns: N episodes of [nemesis faults + concurrent KV
    clients], each checked for linearizability.

    Everything in an episode — network delivery, client workload, nemesis
    schedule — derives from a single integer seed, so a campaign replays
    bit-identically: running the same (protocol, seed, episodes, config)
    twice produces the same {!summary}, and a failing schedule can be
    shrunk by re-running subsets of its fault opcodes under the same seed.

    An episode: create a cluster, start [clients] closed-loop KV clients,
    warm up, apply the schedule one opcode per [step_ms], heal, run a grace
    period, then check the recorded history. A violation is shrunk to a
    1-minimal fault schedule (dropping any single remaining opcode makes
    the episode pass). *)

type config = {
  n : int;  (** servers *)
  clients : int;
  keys : int;  (** KV key-space size; small so clients contend *)
  steps : int;  (** nemesis opcodes per episode *)
  step_ms : float;  (** time between nemesis steps *)
  warmup_ms : float;  (** fault-free prefix (leader election) *)
  grace_ms : float;  (** healed suffix (recovery/convergence) *)
  tick_ms : float;
  election_timeout_ms : float;
  op_timeout_ms : float;  (** client gives up on an operation after this *)
  latency_ms : float;
  max_states : int;  (** checker budget per key *)
  compaction : Omnipaxos.Compaction.config;
      (** snapshot-and-trim trigger threaded to every server (default
          disabled); the response oracle follows snapshot installs *)
}

val default_config : config

type episode = {
  ep_seed : int;
  ep_schedule : Nemesis.fault list;
  ep_applied : int;  (** opcodes actually executed (guards may skip) *)
  ep_completed : int;  (** client operations that got a response *)
  ep_timeouts : int;
  ep_check : Checker.result;
  ep_recoveries : Obs.Health.recovery list;
      (** fault-to-first-post-fault-decide episodes from the online health
          monitor (one per fault burst; see {!Obs.Health.recovery}) *)
}

type failure = {
  f_seed : int;
  f_schedule : Nemesis.fault list;  (** the original failing schedule *)
  f_minimal : Nemesis.fault list;  (** 1-minimal shrunk schedule *)
  f_violation : Checker.violation;  (** from re-running [f_minimal] *)
}

type summary = {
  s_protocol : string;
  s_seed : int;
  s_episodes : int;
  s_ops : int;
  s_completed : int;
  s_timeouts : int;
  s_faults : int;
  s_states : int;
  s_truncated : int;  (** episodes whose check hit the state budget *)
  s_recovery_episodes : int;  (** fault bursts seen by the health monitor *)
  s_recovered : int;  (** bursts with a post-fault decide before trace end *)
  s_recovery_sum_ms : float;  (** total fault-to-decide latency over those *)
  s_failures : failure list;
}

val mean_recovery_ms : summary -> float option
(** Mean fault-to-first-post-fault-decide latency; [None] when no burst
    recovered. *)

val pp_summary : Format.formatter -> summary -> unit
(** Deterministic rendering (the reproducibility contract: two runs of the
    same campaign print byte-identical summaries). *)

module Make (P : Rsm.Protocol.PROTOCOL) : sig
  val schedule_of_seed : config -> seed:int -> Nemesis.fault list

  val run_schedule :
    config -> seed:int -> schedule:Nemesis.fault list -> episode
  (** One episode with an explicit schedule (the shrinker's primitive). *)

  val run_episode : config -> seed:int -> episode
  (** [run_schedule] with the seed's own schedule. *)

  val shrink :
    config -> seed:int -> schedule:Nemesis.fault list -> Nemesis.fault list
  (** Greedy fixpoint of single-opcode deletions; the result still fails
      and is 1-minimal. *)

  val run :
    ?on_episode:(episode -> unit) ->
    config ->
    seed:int ->
    episodes:int ->
    summary
  (** Episode [i] uses seed [seed + i]; failing episodes are shrunk. *)
end

(** First-class campaign runners for CLI dispatch. *)
type runner = {
  cr_name : string;  (** CLI name, e.g. ["omni"], ["faulty-raft"] *)
  cr_protocol : string;  (** protocol display name *)
  cr_run :
    ?on_episode:(episode -> unit) -> config -> seed:int -> episodes:int ->
    summary;
  cr_replay : config -> seed:int -> schedule:Nemesis.fault list -> episode;
      (** re-run one explicit schedule (e.g. a shrunk failure, under a
          tracer) *)
}

val runners : runner list
(** [omni], [raft], [raft-pvcq], [multipaxos], [vr], plus [faulty-raft]
    (the deliberately broken stale-read wrapper; expected to fail). *)

val find_runner : string -> runner option

val write_failure_trace :
  file:string -> format:Obs.Tracebin.format -> runner -> config -> failure ->
  unit
(** Replay [failure]'s minimal schedule under the tracer, writing the event
    trace to [file] in the given format (binary headers carry the run
    metadata and any sampling rates), so a red campaign leaves an
    inspectable artifact. *)
