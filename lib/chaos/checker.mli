(** Linearizability checking of client KV histories (the chaos campaign's
    oracle).

    The algorithm is the Wing–Gong search in its memoised form (à la Lowe's
    implementation): depth-first over linearisation orders, where an
    operation may be linearised next only if no other un-linearised
    *completed* operation returned before its invocation, with failed
    search states memoised on (linearised-set, model value). Histories are
    first partitioned per key — KV operations on different keys commute, so
    each key is checked independently, which turns one exponential search
    over the whole history into many small ones.

    Operations with no response (client timeouts) are pending forever:
    pending writes may be linearised at any point after their invocation or
    never; pending reads carry no observable result and are dropped.

    Worst-case cost is exponential in the number of concurrently pending
    operations per key; [max_states] bounds the search (a truncated key is
    reported as such and never as a violation). *)

type op_kind = Put of string | Get | Del

type op = {
  o_id : int;
  o_client : int;
  o_key : string;
  o_kind : op_kind;
  o_invoke : float;
  o_return : float option;  (** [None]: pending (timed out, no response) *)
  o_result : string option option;
      (** completed reads: the value returned ([None] = key absent) *)
}

type violation = {
  v_key : string;
  v_ops : op list;
      (** a 1-minimal violating subhistory: removing any single operation
          makes it linearisable again *)
}

type result = {
  r_ops : int;  (** KV operations checked *)
  r_pending : int;  (** operations with no response *)
  r_keys : int;
  r_states : int;  (** search states explored across all keys *)
  r_truncated : bool;  (** some key hit [max_states]; not a violation *)
  r_violation : violation option;
}

val ops_of_history : Rsm.Client.History.t -> op list
(** Pair invocations with responses/timeouts; non-KV operations are
    ignored. *)

val check_ops : ?max_states:int -> op list -> result
(** [max_states] defaults to 2,000,000 (per key). *)

val check : ?max_states:int -> Rsm.Client.History.t -> result

val linearizable : op list -> bool
(** Whether one single-key operation list is linearisable (exposed for
    tests; unbounded search). *)

val pp_op : Format.formatter -> op -> unit
val pp_violation : Format.formatter -> violation -> unit
