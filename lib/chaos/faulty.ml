(* Test-only stale-read wrapper; see the .mli. *)

module Make (P : Rsm.Protocol.PROTOCOL) = struct
  type msg = P.msg

  (* The wrapper keeps its own decided-id stream: the inner protocol's
     decisions interleaved with the locally-served reads, in the order this
     server observed them. *)
  type t = {
    inner : P.t;
    cache : Rsm.Protocol.Decided_cache.t;
    mutable scanned : int;
  }

  let name = P.name ^ " (stale reads)"

  let create ?batching ?compaction ~id ~peers ~election_ticks ~rand ~send () =
    {
      inner =
        P.create ?batching ?compaction ~id ~peers ~election_ticks ~rand ~send
          ();
      cache = Rsm.Protocol.Decided_cache.create ();
      scanned = 0;
    }

  (* Pull any newly decided inner commands into our stream, so an injected
     read lands after everything this server has already applied. *)
  let sync t =
    let ids = P.decided_ids t.inner ~from:t.scanned in
    List.iter (Rsm.Protocol.Decided_cache.note t.cache) ids;
    t.scanned <- t.scanned + List.length ids

  let handle t ~src m = P.handle t.inner ~src m
  let tick t = P.tick t.inner
  let session_reset t ~peer = P.session_reset t.inner ~peer
  let restart t = P.restart t.inner

  let propose t (cmd : Replog.Command.t) =
    match cmd.Replog.Command.op with
    | Replog.Command.Kv_get _ when P.is_leader t.inner ->
        (* THE BUG: serve the read from the local prefix instead of
           replicating it. The command id never reaches consensus. *)
        sync t;
        Rsm.Protocol.Decided_cache.note t.cache cmd.Replog.Command.id;
        true
    (* Deliberately-buggy adapter: only leader-local reads are intercepted;
       every other operation takes the real consensus path. *)
    | _ [@lint.allow "D4"] -> P.propose t.inner cmd

  let is_leader t = P.is_leader t.inner
  let leader_pid t = P.leader_pid t.inner

  let decided_count t =
    sync t;
    Rsm.Protocol.Decided_cache.count t.cache

  let decided_ids t ~from =
    sync t;
    Rsm.Protocol.Decided_cache.ids_from t.cache ~from

  (* Forwarded as-is: [inst_cache_len] counts the inner stream, which can
     sit below this wrapper's id stream once reads were injected — fine for
     a deliberately-buggy adapter whose runs the checker must flag. *)
  let decided_index t = P.decided_index t.inner
  let last_install t = P.last_install t.inner

  let msg_size = P.msg_size
end
