(* Memoised Wing–Gong linearizability search over per-key KV histories.
   See the .mli for the algorithm notes. *)

type op_kind = Put of string | Get | Del

type op = {
  o_id : int;
  o_client : int;
  o_key : string;
  o_kind : op_kind;
  o_invoke : float;
  o_return : float option;
  o_result : string option option;
}

type violation = { v_key : string; v_ops : op list }

type result = {
  r_ops : int;
  r_pending : int;
  r_keys : int;
  r_states : int;
  r_truncated : bool;
  r_violation : violation option;
}

let pp_op ppf o =
  let kind =
    match o.o_kind with
    | Put v -> Printf.sprintf "put(%s=%s)" o.o_key v
    | Get -> Printf.sprintf "get(%s)" o.o_key
    | Del -> Printf.sprintf "del(%s)" o.o_key
  in
  let outcome =
    match (o.o_return, o.o_result) with
    | None, _ -> "pending"
    | Some t, Some (Some v) -> Printf.sprintf "-> %s @%.1f" v t
    | Some t, Some None -> Printf.sprintf "-> nil @%.1f" t
    | Some t, None -> Printf.sprintf "-> ok @%.1f" t
  in
  Format.fprintf ppf "c%d #%d %s @%.1f %s" o.o_client o.o_id kind o.o_invoke
    outcome

let pp_violation ppf v =
  Format.fprintf ppf "key %s, %d ops:@." v.v_key (List.length v.v_ops);
  List.iter (fun o -> Format.fprintf ppf "  %a@." pp_op o) v.v_ops

(* ------------------------------------------------------------------ *)
(* History -> operations                                               *)
(* ------------------------------------------------------------------ *)

module H = Rsm.Client.History

type builder = {
  b_id : int;
  b_client : int;
  b_key : string;
  b_kind : op_kind;
  b_invoke : float;
  mutable b_return : float option;
  mutable b_result : string option option;
}

let ops_of_history history =
  let tbl = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun (e : H.entry) ->
      match e.H.h_event with
      | H.Invoke { client; op_id; node = _; op } -> (
          let mk key kind =
            let b =
              {
                b_id = op_id;
                b_client = client;
                b_key = key;
                b_kind = kind;
                b_invoke = e.H.h_time;
                b_return = None;
                b_result = None;
              }
            in
            Hashtbl.replace tbl op_id b;
            order := b :: !order
          in
          match op with
          | Replog.Command.Kv_put (k, v) -> mk k (Put v)
          | Replog.Command.Kv_get k -> mk k Get
          | Replog.Command.Kv_del k -> mk k Del
          | Replog.Command.Noop | Replog.Command.Blob _ -> ())
      | H.Response { op_id; result; _ } -> (
          match Hashtbl.find_opt tbl op_id with
          | None -> ()
          | Some b ->
              b.b_return <- Some e.H.h_time;
              (match result with
              | Replog.Kv.Value v -> b.b_result <- Some v
              | Replog.Kv.Ok_unit -> ()))
      | H.Timeout _ -> ())
    (H.events history);
  List.rev_map
    (fun b ->
      {
        o_id = b.b_id;
        o_client = b.b_client;
        o_key = b.b_key;
        o_kind = b.b_kind;
        o_invoke = b.b_invoke;
        o_return = b.b_return;
        o_result = b.b_result;
      })
    !order

(* ------------------------------------------------------------------ *)
(* Per-key search                                                      *)
(* ------------------------------------------------------------------ *)

(* Pending reads carry no observable result and do not change the model
   state: drop them. Sort by invocation for a deterministic search order. *)
let is_get = function Get -> true | Put _ | Del -> false

let prepare ops =
  List.sort
    (fun a b ->
      match Float.compare a.o_invoke b.o_invoke with
      | 0 -> Int.compare a.o_id b.o_id
      | c -> c)
    (List.filter
       (fun o -> not (Option.is_none o.o_return && is_get o.o_kind))
       ops)

(* Search one key's operations. Returns (linearizable, states, truncated);
   [truncated = true] means the verdict is unknown, never a violation. *)
let search ~max_states ops =
  let ops = Array.of_list ops in
  let m = Array.length ops in
  if m = 0 then (true, 0, false)
  else begin
    let completed = Array.map (fun o -> Option.is_some o.o_return) ops in
    let n_completed =
      Array.fold_left (fun a c -> if c then a + 1 else a) 0 completed
    in
    let nbytes = (m + 7) / 8 in
    let set = Bytes.make nbytes '\000' in
    let get_bit i =
      Char.code (Bytes.get set (i lsr 3)) land (1 lsl (i land 7)) <> 0
    in
    let flip_bit i =
      Bytes.set set (i lsr 3)
        (Char.chr (Char.code (Bytes.get set (i lsr 3)) lxor (1 lsl (i land 7))))
    in
    (* Memo of fully-explored failed states, keyed by (linearised set,
       model value). *)
    let memo : (string * string option, unit) Hashtbl.t =
      Hashtbl.create 1024
    in
    let states = ref 0 in
    let truncated = ref false in
    let rec dfs value ndone =
      if ndone = n_completed then true
      else begin
        let key = (Bytes.to_string set, value) in
        if Hashtbl.mem memo key then false
        else if !states >= max_states then begin
          truncated := true;
          false
        end
        else begin
          incr states;
          (* The two smallest response times among un-linearised completed
             operations: candidate [o] must have been invoked before every
             *other* un-linearised operation responded. *)
          let min1 = ref infinity and min1_i = ref (-1) and min2 = ref infinity in
          for i = 0 to m - 1 do
            if completed.(i) && not (get_bit i) then begin
              let r = Option.get ops.(i).o_return in
              if r < !min1 then begin
                min2 := !min1;
                min1 := r;
                min1_i := i
              end
              else if r < !min2 then min2 := r
            end
          done;
          let ok = ref false in
          let i = ref 0 in
          while (not !ok) && !i < m do
            let idx = !i in
            (if not (get_bit idx) then
               let o = ops.(idx) in
               let frontier = if idx = !min1_i then !min2 else !min1 in
               if o.o_invoke <= frontier then begin
                 let admissible, value' =
                   match o.o_kind with
                   | Put v -> (true, Some v)
                   | Del -> (true, None)
                   | Get ->
                       ( (match o.o_result with
                         | Some observed ->
                             Option.equal String.equal observed value
                         | None -> true),
                         value )
                 in
                 if admissible then begin
                   flip_bit idx;
                   let nd = if completed.(idx) then ndone + 1 else ndone in
                   if dfs value' nd then ok := true;
                   flip_bit idx
                 end
               end);
            incr i
          done;
          (* States explored after the budget ran out are cut short; only
             fully-explored failures may poison the memo. *)
          if (not !ok) && not !truncated then Hashtbl.replace memo key ();
          !ok
        end
      end
    in
    let r = dfs None 0 in
    (r, !states, !truncated)
  end

let linearizable ops =
  let ok, _, _ = search ~max_states:max_int (prepare ops) in
  ok

(* 1-minimal violating subhistory: drop operations one at a time as long as
   the remainder still fails. Minimisation re-checks are bounded; a
   truncated re-check conservatively keeps the operation. *)
let minimize ~max_states ops =
  let still_fails l =
    let ok, _, truncated = search ~max_states (prepare l) in
    (not ok) && not truncated
  in
  let rec go l =
    let len = List.length l in
    let rec try_at i =
      if i >= len then l
      else
        let cand = List.filteri (fun j _ -> j <> i) l in
        if still_fails cand then go cand else try_at (i + 1)
    in
    try_at 0
  in
  go ops

let check_ops ?(max_states = 2_000_000) ops =
  let pending =
    List.length (List.filter (fun o -> Option.is_none o.o_return) ops)
  in
  let keys =
    List.sort_uniq String.compare (List.map (fun o -> o.o_key) ops)
  in
  let total_states = ref 0 in
  let truncated = ref false in
  let violation = ref None in
  List.iter
    (fun key ->
      if Option.is_none !violation then begin
        let key_ops = List.filter (fun o -> String.equal o.o_key key) ops in
        let ok, st, trunc = search ~max_states (prepare key_ops) in
        total_states := !total_states + st;
        if trunc then truncated := true
        else if not ok then
          violation :=
            Some { v_key = key; v_ops = minimize ~max_states key_ops }
      end)
    keys;
  {
    r_ops = List.length ops;
    r_pending = pending;
    r_keys = List.length keys;
    r_states = !total_states;
    r_truncated = !truncated;
    r_violation = !violation;
  }

let check ?max_states history = check_ops ?max_states (ops_of_history history)
