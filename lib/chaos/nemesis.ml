(* Declarative fault schedules compiled into simnet actions. See the .mli
   for the schedule/guard semantics. *)

module Net = Simnet.Net

type fault =
  | Crash of int
  | Recover of int
  | Flip_link of int * int
  | Flip_oneway of { src : int; dst : int }
  | Heal_all
  | Isolate of int
  | Quorum_loss of { hub : int }
  | Constrained of { qc : int; leader : int }
  | Chain of int list
  | Latency_spike of { a : int; b : int; ms : float }
  | Reset_session of int * int
  | Restart_after_trim of int

let pp_fault ppf = function
  | Crash i -> Format.fprintf ppf "crash(%d)" i
  | Recover i -> Format.fprintf ppf "recover(%d)" i
  | Flip_link (a, b) -> Format.fprintf ppf "flip(%d,%d)" a b
  | Flip_oneway { src; dst } -> Format.fprintf ppf "flip1(%d->%d)" src dst
  | Heal_all -> Format.fprintf ppf "heal"
  | Isolate i -> Format.fprintf ppf "isolate(%d)" i
  | Quorum_loss { hub } -> Format.fprintf ppf "quorum-loss(hub=%d)" hub
  | Constrained { qc; leader } ->
      Format.fprintf ppf "constrained(qc=%d,leader=%d)" qc leader
  | Chain order ->
      Format.fprintf ppf "chain(%s)"
        (String.concat "-" (List.map string_of_int order))
  | Latency_spike { a; b; ms } ->
      Format.fprintf ppf "latency(%d,%d,%.1fms)" a b ms
  | Reset_session (a, b) -> Format.fprintf ppf "reset-session(%d,%d)" a b
  | Restart_after_trim i -> Format.fprintf ppf "restart-after-trim(%d)" i

let fault_to_string f = Format.asprintf "%a" pp_fault f

let pp_schedule ppf faults =
  Format.fprintf ppf "%s" (String.concat "; " (List.map fault_to_string faults))

(* A distinct pair of nodes, uniform. *)
let pair rng n =
  let a = Random.State.int rng n in
  let b = Random.State.int rng (n - 1) in
  let b = if b >= a then b + 1 else b in
  (a, b)

let random_fault ~rng ~n =
  let roll = Random.State.int rng 100 in
  if roll < 25 then
    let a, b = pair rng n in
    Flip_link (a, b)
  else if roll < 35 then
    let src, dst = pair rng n in
    Flip_oneway { src; dst }
  else if roll < 47 then Crash (Random.State.int rng n)
  else if roll < 59 then Recover (Random.State.int rng n)
  else if roll < 67 then Heal_all
  else if roll < 72 then Isolate (Random.State.int rng n)
  else if roll < 78 then Quorum_loss { hub = Random.State.int rng n }
  else if roll < 82 then
    let qc, leader = pair rng n in
    Constrained { qc; leader }
  else if roll < 87 then begin
    (* A rotation of 0..n-1: a full chain with a random head. *)
    let start = Random.State.int rng n in
    Chain (List.init n (fun i -> (start + i) mod n))
  end
  else if roll < 95 then
    let a, b = pair rng n in
    Latency_spike { a; b; ms = float_of_int (1 + Random.State.int rng 50) }
  else
    let a, b = pair rng n in
    Reset_session (a, b)

let random_schedule ~rng ~n ~length =
  List.init length (fun _ -> random_fault ~rng ~n)

type 'm env = {
  net : 'm Net.t;
  crash_node : int -> unit;
  recover_node : int -> unit;
  base_latency : float;
  trim_count : int -> int;
      (* compaction events observed at a node so far; feeds the
         [Restart_after_trim] guard *)
}

type state = { n : int; down : bool array }

let initial ~n = { n; down = Array.make n false }

let crashed st =
  List.filter (fun i -> st.down.(i)) (List.init st.n (fun i -> i))

let restore_latencies env =
  let n = Net.num_nodes env.net in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      Net.set_latency env.net a b env.base_latency
    done
  done

(* Crashing a majority would trivially wedge every protocol; the guard keeps
   a strict majority of servers alive at all times. *)
let crash_allowed st i =
  (not st.down.(i))
  && Array.fold_left (fun acc d -> if d then acc + 1 else acc) 1 st.down
     <= (st.n - 1) / 2

let execute env st fault =
  match fault with
  | Crash i ->
      if crash_allowed st i then begin
        st.down.(i) <- true;
        env.crash_node i;
        true
      end
      else false
  | Recover i ->
      if st.down.(i) then begin
        st.down.(i) <- false;
        env.recover_node i;
        true
      end
      else false
  | Flip_link (a, b) ->
      Net.set_link env.net a b (not (Net.link_up env.net a b));
      true
  | Flip_oneway { src; dst } ->
      Net.set_link_oneway env.net ~src ~dst (not (Net.link_up env.net src dst));
      true
  | Heal_all ->
      Net.heal_all env.net;
      restore_latencies env;
      true
  | Isolate i ->
      Net.isolate env.net i;
      true
  | Quorum_loss { hub } ->
      let n = Net.num_nodes env.net in
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          if a <> hub && b <> hub then Net.set_link env.net a b false
        done
      done;
      true
  | Constrained { qc; leader } ->
      let n = Net.num_nodes env.net in
      Net.isolate env.net leader;
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          if a <> qc && b <> qc && a <> leader && b <> leader then
            Net.set_link env.net a b false
        done
      done;
      true
  | Chain order ->
      let arr = Array.of_list order in
      let m = Array.length arr in
      for i = 0 to m - 1 do
        for j = i + 2 to m - 1 do
          Net.set_link env.net arr.(i) arr.(j) false
        done
      done;
      true
  | Latency_spike { a; b; ms } ->
      Net.set_latency env.net a b ms;
      true
  | Reset_session (a, b) ->
      Net.reset_session env.net a b;
      true
  | Restart_after_trim i ->
      (* Crash-restart a node right after it compacted: the node comes back
         on a log that starts at the trim point, so its recovery (and any
         catch-up of what it missed while down) must go through the
         snapshot, not entry replay. Guarded on an observed compaction so
         random interleavings cannot turn it into a plain bounce. *)
      if (not st.down.(i)) && env.trim_count i > 0 then begin
        env.crash_node i;
        env.recover_node i;
        true
      end
      else false

let apply env st ~step fault =
  let applied = execute env st fault in
  if applied && Obs.Trace.on () then
    Obs.Trace.emit ~node:(-1)
      (Obs.Event.Chaos_fault { step; fault = fault_to_string fault });
  applied

let heal env st =
  Net.heal_all env.net;
  restore_latencies env;
  Array.iteri
    (fun i down ->
      if down then begin
        st.down.(i) <- false;
        env.recover_node i
      end)
    st.down
