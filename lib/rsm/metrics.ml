(** Measurement utilities: decided-count time series and small-sample
    statistics (mean and 95% confidence interval via the t-distribution, as
    in the paper's figures). *)

module Series = struct
  (* Cumulative decided-count samples over simulated time. *)
  type t = {
    mutable times : float array;
    mutable counts : int array;
    mutable len : int;
  }

  let create () = { times = Array.make 256 0.0; counts = Array.make 256 0; len = 0 }

  let push t ~time ~count =
    if t.len = Array.length t.times then begin
      let grow a z =
        let b = Array.make (2 * Array.length a) z in
        Array.blit a 0 b 0 t.len;
        b
      in
      t.times <- grow t.times 0.0;
      t.counts <- grow t.counts 0
    end;
    t.times.(t.len) <- time;
    t.counts.(t.len) <- count;
    t.len <- t.len + 1

  let length t = t.len

  (* Cumulative count at [time] (last sample at or before it). *)
  let count_at t time =
    let rec search lo hi =
      (* invariant: times.(lo) <= time < times.(hi) *)
      if hi - lo <= 1 then t.counts.(lo)
      else
        let mid = (lo + hi) / 2 in
        if t.times.(mid) <= time then search mid hi else search lo mid
    in
    if t.len = 0 || time < t.times.(0) then 0
    else if time >= t.times.(t.len - 1) then t.counts.(t.len - 1)
    else search 0 (t.len - 1)

  (* Counts over the half-open window (from, until]: a sample exactly at
     [from] belongs to the preceding window, one exactly at [until] to this
     one, so adjacent windows never double-count. Empty when until <= from. *)
  let total_between t ~from ~until =
    if until <= from then 0 else max 0 (count_at t until - count_at t from)

  (* Longest interval within [from, until] with no new decided replies: the
     paper's down-time metric. Empty window (until <= from) has no gap;
     a series with no progress samples inside the window gaps throughout. *)
  let longest_gap t ~from ~until =
    if until <= from then 0.0
    else begin
      let gap = ref 0.0 in
      let last_progress = ref from in
      for i = 0 to t.len - 1 do
        let time = t.times.(i) in
        if time >= from && time <= until then begin
          let prev = if i = 0 then 0 else t.counts.(i - 1) in
          if t.counts.(i) > prev then begin
            gap := Float.max !gap (time -. !last_progress);
            last_progress := time
          end
        end
      done;
      Float.max !gap (until -. !last_progress)
    end

  (* Decided per window of [window] ms, covering [from, until]. *)
  let windowed t ~from ~until ~window =
    let n = max 0 (int_of_float (ceil ((until -. from) /. window))) in
    List.init n (fun i ->
        let a = from +. (float_of_int i *. window) in
        let b = Float.min until (a +. window) in
        (a, total_between t ~from:a ~until:b))
end

module Stats = struct
  (* Two-tailed 97.5% t-values for df = 1..30; beyond 30 use the normal
     approximation. *)
  let t_table =
    [|
      12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
      2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
      2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
    |]

  let t_value ~df =
    if df <= 0 then 0.0
    else if df <= 30 then t_table.(df - 1)
    else 1.96

  let mean xs =
    match xs with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

  let stddev xs =
    let n = List.length xs in
    if n < 2 then 0.0
    else begin
      let m = mean xs in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. float_of_int (n - 1))
    end

  (* Half-width of the 95% confidence interval. *)
  let ci95 xs =
    let n = List.length xs in
    if n < 2 then 0.0
    else t_value ~df:(n - 1) *. stddev xs /. sqrt (float_of_int n)

  let mean_ci xs = (mean xs, ci95 xs)
end
