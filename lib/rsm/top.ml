(* The `opx top` engine: drive a protocol cluster under the closed-loop
   client with the profiler, the health monitor and the simnet metrics all
   on, sampling a rendered dashboard frame every [interval_ms] of simulated
   time.

   Everything in a frame is a pure function of the simulated execution —
   decided counts, client latency percentiles, queue depths, heap
   statistics, health alerts, and the profiler's calls/sim-time columns —
   so the final frame is byte-identical across double runs of a seed. The
   profiler's wall-time/allocation columns are the one nondeterministic
   measurement; they are included only when [wall] is set (the live
   dashboard), never in [--once]/golden-test output. *)

module Net = Simnet.Net

type scenario = Normal | Chained

let scenario_of_string = function
  | "normal" -> Some Normal
  | "chained" -> Some Chained
  | _ -> None

let scenario_name = function Normal -> "normal" | Chained -> "chained"

type result = {
  final_frame : string;  (** summary frame plus the full attribution tree *)
  profile : Obs.Profile.t;
  decided : int;
}

module Make (P : Protocol.PROTOCOL) = struct
  module C = Cluster.Make (P)

  (* One dashboard frame. [rate] is proposals decided per second over the
     window that ended at this sample (0 for the final summary frame, whose
     window is partial). *)
  let render ~wall ~top ~cfg ~(client : Client.t) ~rate c health =
    let buf = Buffer.create 1024 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let net = C.net c in
    let n = cfg.Cluster.n in
    add "opx top — %s  n=%d seed=%d  t=%.1f ms\n" P.name n cfg.Cluster.seed
      (C.now c);
    let lat = Client.latency client in
    add "decided %d (%.0f/s)   leader %s   client p50 %.2f ms  p99 %.2f ms\n"
      (C.max_decided c) rate
      (match C.leader c with Some l -> string_of_int l | None -> "-")
      (Obs.Metric.Histogram.percentile lat ~p:50.0)
      (Obs.Metric.Histogram.percentile lat ~p:99.0);
    let alerts = Obs.Health.alerts health in
    let suspects = Obs.Health.suspects health in
    add "health: %d alerts, %d open suspects%s\n" (List.length alerts)
      (List.length suspects)
      (match List.rev alerts with
      | [] -> ""
      | a :: _ ->
          Printf.sprintf "   last: %s %s"
            (match a.Obs.Health.edge with
            | Obs.Health.Trigger -> "TRIGGER"
            | Obs.Health.Clear -> "CLEAR")
            a.Obs.Health.what);
    add "%-5s %-5s %10s %10s %10s\n" "node" "up" "decided" "egress-q"
      "egress-hw";
    for i = 0 to n - 1 do
      add "%-5d %-5s %10d %10d %10d\n" i
        (if Net.is_up net i then "yes" else "DOWN")
        (P.decided_count (C.node c i))
        (Net.egress_queue_depth net i)
        (Net.egress_queue_high_water net i)
    done;
    let hs = Net.heap_stats net in
    add "heap: size %d  high-water %d  pushes %d  pops %d   in-flight %d\n"
      hs.Net.hs_size hs.Net.hs_high_water hs.Net.hs_pushes hs.Net.hs_pops
      (Net.deliver_in_flight net);
    add "dispatch:";
    List.iter (fun (k, v) -> add " %s=%d" k v) (Net.dispatch_counts net);
    add "\n";
    (match Obs.Profile.live () with
    | Some p ->
        Buffer.add_string buf (Obs.Profile.to_string ~wall ~top ~tree:false p)
    | None -> ());
    Buffer.contents buf

  let run ?(wall = false) ?(top = 8) ?(scenario = Normal) ?on_frame ?on_sample
      ~cfg ~cp ~duration_ms ~interval_ms () =
    (* Fresh global registry so frames show only this run's metrics and
       double runs render identically. *)
    Obs.Metric.Registry.clear Obs.Metric.Registry.default;
    let c = C.create cfg in
    let health =
      Obs.Health.create
        (Obs.Health.default_config ~n:cfg.Cluster.n
           ~election_timeout_ms:cfg.Cluster.election_timeout_ms)
    in
    let sink_id = Obs.Trace.subscribe (Obs.Health.observe health) in
    let trace_was = Obs.Trace.is_enabled () in
    Obs.Trace.set_enabled true;
    let profile_was = Obs.Profile.is_enabled () in
    Obs.Profile.start ();
    Obs.Profile.set_enabled true;
    let finish () =
      let profile = Obs.Profile.stop () in
      Obs.Profile.set_enabled profile_was;
      Obs.Trace.unsubscribe sink_id;
      Obs.Trace.set_enabled trace_was;
      profile
    in
    let client =
      try
        let client = C.start_client c ~cp in
        (match scenario with
        | Normal -> ()
        | Chained ->
            (* Chain partition over the middle of the run: leader at one
               end, healed at 75% so recovery shows up in the frames. *)
            Net.schedule (C.net c) ~delay:(duration_ms *. 0.4) (fun () ->
                let leader = Option.value (C.leader c) ~default:0 in
                let rest =
                  List.filter
                    (fun i -> i <> leader)
                    (List.init cfg.Cluster.n Fun.id)
                in
                match rest with
                | [] -> ()
                | first :: _ ->
                    if cfg.Cluster.n <= 3 then
                      Scenario.chained (C.net c) ~a:leader ~b:first
                    else Scenario.chain_of (C.net c) ~order:(leader :: rest));
            Net.schedule (C.net c) ~delay:(duration_ms *. 0.75) (fun () ->
                Scenario.heal (C.net c)));
        let last_decided = ref 0 in
        let sample () =
          Net.publish_metrics (C.net c);
          (match on_sample with Some f -> f ~time:(C.now c) | None -> ());
          match on_frame with
          | None -> ()
          | Some f ->
              let decided = C.max_decided c in
              let rate =
                float_of_int (decided - !last_decided)
                /. (interval_ms /. 1000.0)
              in
              last_decided := decided;
              f (render ~wall ~top ~cfg ~client ~rate c health)
        in
        let rec sample_loop () =
          Net.schedule (C.net c) ~delay:interval_ms (fun () ->
              sample ();
              sample_loop ())
        in
        sample_loop ();
        C.run_ms c duration_ms;
        Client.stop client;
        Net.publish_metrics (C.net c);
        (match on_sample with Some f -> f ~time:(C.now c) | None -> ());
        client
      with e ->
        let (_ : Obs.Profile.t) = finish () in
        raise e
    in
    (* Stop the profiler first: the summary frame then skips the live
       profile section and we append the complete report — flat table plus
       attribution tree — once, from the finished capture. *)
    let profile = finish () in
    let frame = render ~wall ~top ~cfg ~client ~rate:0.0 c health in
    {
      final_frame = frame ^ Obs.Profile.to_string ~wall ~top profile;
      profile;
      decided = C.max_decided c;
    }
end

(* First-class dispatch over the protocol set, mirroring
   [Experiments.proto_runner]. *)
type runner = {
  tr_name : string;
  tr_run :
    ?wall:bool ->
    ?top:int ->
    ?scenario:scenario ->
    ?on_frame:(string -> unit) ->
    ?on_sample:(time:float -> unit) ->
    cfg:Cluster.config ->
    cp:int ->
    duration_ms:float ->
    interval_ms:float ->
    unit ->
    result;
}

module Omni_top = Make (Omni_adapter)
module Raft_top = Make (Raft_adapter.Plain)
module Raft_pvcq_top = Make (Raft_adapter.Pv_cq)
module Multipaxos_top = Make (Multipaxos_adapter)
module Vr_top = Make (Vr_adapter)

let omni = { tr_name = Omni_adapter.name; tr_run = Omni_top.run }
let raft = { tr_name = Raft_adapter.Plain.name; tr_run = Raft_top.run }

let raft_pvcq =
  { tr_name = Raft_adapter.Pv_cq.name; tr_run = Raft_pvcq_top.run }

let multipaxos =
  { tr_name = Multipaxos_adapter.name; tr_run = Multipaxos_top.run }

let vr = { tr_name = Vr_adapter.name; tr_run = Vr_top.run }

let runners =
  [
    ("omni", omni);
    ("raft", raft);
    ("raft-pvcq", raft_pvcq);
    ("multipaxos", multipaxos);
    ("vr", vr);
  ]
