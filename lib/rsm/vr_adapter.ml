(* VR leader election (+ Sequence Paxos log) behind the uniform protocol
   interface. *)

module N = Vr.Node

type t = {
  id : int;
  node : N.t;
  cache : Protocol.Decided_cache.t;
  obs : Protocol.Obs_hooks.t;
  mutable scanned : int;
  mutable install_seq : int;
  mutable last_install : Protocol.install option;
}

type msg = N.msg

let name = "VR"

let scan t upto =
  let entries =
    Omnipaxos.Sequence_paxos.read_decided (N.sequence_paxos t.node)
      ~from:t.scanned
  in
  List.iter
    (function
      | Omnipaxos.Entry.Cmd c ->
          if c.Replog.Command.id >= 0 then
            Protocol.Decided_cache.note t.cache c.Replog.Command.id
      | Omnipaxos.Entry.Stop_sign _ -> ())
    entries;
  t.scanned <- upto

let create ?batching ?compaction ~id ~peers ~election_ticks ~rand ~send () =
  ignore rand;
  let cache = Protocol.Decided_cache.create () in
  let t_ref = ref None in
  let on_decide upto = match !t_ref with Some t -> scan t upto | None -> () in
  (* Same bookkeeping as the Omni adapter: the embedded Sequence Paxos
     emits the install trace event itself; here we only jump the scan
     cursor past the installed prefix and record the install. *)
  let on_snapshot idx payload =
    match !t_ref with
    | Some t ->
        t.scanned <- max t.scanned idx;
        t.install_seq <- t.install_seq + 1;
        t.last_install <-
          Some
            {
              Protocol.inst_seq = t.install_seq;
              inst_cache_len = Protocol.Decided_cache.count t.cache;
              inst_payload = payload;
            }
    | None -> ()
  in
  let node =
    N.create ~id ~peers ~election_ticks ?batching ?compaction ~on_snapshot
      ~send ~on_decide ()
  in
  let t =
    {
      id;
      node;
      cache;
      obs = Protocol.Obs_hooks.create ();
      scanned = 0;
      install_seq = 0;
      last_install = None;
    }
  in
  t_ref := Some t;
  t

(* Profiler frames around the dispatch entry points; the cold branch
   repeats the call so the profiler-off path allocates no closure. *)
let handle t ~src msg =
  if Obs.Profile.on () then
    Obs.Profile.wrap "vr/handle" (fun () -> N.handle t.node ~src msg)
  else N.handle t.node ~src msg

(* VR drives an embedded Sequence Paxos, which already emits Decided events;
   here we only add leader/view transitions. *)
let tick_raw t =
  N.tick t.node;
  Protocol.Obs_hooks.note_leader t.obs ~node:t.id
    ~leader:(N.leader_pid t.node) ~term:(N.view t.node)

let tick t =
  if Obs.Profile.on () then Obs.Profile.wrap "vr/tick" (fun () -> tick_raw t)
  else tick_raw t
let session_reset t ~peer = N.session_reset t.node ~peer

(* VR's node (view + embedded Sequence Paxos) has no injectable storage:
   like Multi-Paxos, crashes model synchronous full-state persistence. *)
let restart _t = ()
let propose t cmd = N.propose t.node (Omnipaxos.Entry.Cmd cmd)
let is_leader t = N.is_leader t.node
let leader_pid t = N.leader_pid t.node
let decided_count t = Protocol.Decided_cache.count t.cache
let decided_ids t ~from = Protocol.Decided_cache.ids_from t.cache ~from
let decided_index t = Omnipaxos.Sequence_paxos.decided_idx (N.sequence_paxos t.node)
let last_install t = t.last_install
let msg_size = N.msg_size
let node t = t.node
