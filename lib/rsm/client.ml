(** Generic closed-loop client: keeps [cp] proposals outstanding against
    whatever leader the callbacks expose, re-proposing after [retry_ms]
    without progress (commands stuck at a deposed or stopped leader are
    abandoned and re-issued). Records the cumulative decided count over
    simulated time and the number of leader changes. *)

type callbacks = {
  now : unit -> float;
  decided : unit -> int;  (** monotone count of decided client commands *)
  leader : unit -> int option;
  propose_batch : leader:int -> first_id:int -> count:int -> int;
      (** returns how many proposals were accepted *)
  schedule : delay:float -> (unit -> unit) -> unit;
}

type t = {
  cb : callbacks;
  cp : int;
  poll_ms : float;
  retry_ms : float;
  series : Metrics.Series.t;
  mutable next_id : int;
  mutable in_flight : int;
  mutable last_decided : int;
  mutable last_progress : float;
  mutable last_leader : int option;
  mutable leader_changes : int;
  mutable running : bool;
  (* Client-visible command latency: submission times of in-flight commands
     in FIFO order. Commands decide in submission order under the closed
     loop, so each decide pops the oldest submission; abandoned commands are
     dropped without a sample. *)
  submits : float Queue.t;
  mutable latency : Obs.Metric.Histogram.t;
}

let poll c =
  let time = c.cb.now () in
  let decided = c.cb.decided () in
  let newly = decided - c.last_decided in
  if newly > 0 then begin
    c.last_decided <- decided;
    c.in_flight <- max 0 (c.in_flight - newly);
    c.last_progress <- time;
    for _ = 1 to min newly (Queue.length c.submits) do
      Obs.Metric.Histogram.observe c.latency (time -. Queue.pop c.submits)
    done
  end;
  Metrics.Series.push c.series ~time ~count:decided;
  (* Count a leader change whenever a leader emerges that differs from the
     last known one (flapping through leaderless periods included). *)
  let lead = c.cb.leader () in
  (match (lead, c.last_leader) with
  | Some l, Some prev when not (Int.equal prev l) ->
      c.leader_changes <- c.leader_changes + 1;
      c.last_leader <- Some l
  | Some l, None -> c.last_leader <- Some l
  | Some _, Some _ | None, _ -> ());
  if c.in_flight > 0 && time -. c.last_progress > c.retry_ms then begin
    c.in_flight <- 0;
    c.last_progress <- time;
    Queue.clear c.submits
  end;
  if c.in_flight < c.cp then begin
    match lead with
    | None -> ()
    | Some leader ->
        let want = c.cp - c.in_flight in
        let got =
          c.cb.propose_batch ~leader ~first_id:c.next_id ~count:want
        in
        c.next_id <- c.next_id + got;
        c.in_flight <- c.in_flight + got;
        for _ = 1 to got do
          Queue.push time c.submits
        done
  end

let start ?(retry_ms = 200.0) ~poll_ms ~cp cb =
  let c =
    {
      cb;
      cp;
      poll_ms;
      retry_ms;
      series = Metrics.Series.create ();
      next_id = 0;
      in_flight = 0;
      last_decided = 0;
      last_progress = cb.now ();
      last_leader = None;
      leader_changes = 0;
      running = true;
      submits = Queue.create ();
      latency = Obs.Metric.Histogram.create ();
    }
  in
  let rec loop () =
    cb.schedule ~delay:c.poll_ms (fun () ->
        if c.running then begin
          poll c;
          loop ()
        end)
  in
  loop ();
  c

let stop c = c.running <- false
let series c = c.series
let leader_changes c = c.leader_changes
let decided c = c.last_decided
let latency c = c.latency
let reset_latency c = c.latency <- Obs.Metric.Histogram.create ()

(* ------------------------------------------------------------------ *)
(* Client-visible histories (the chaos campaign's linearizability       *)
(* oracle records these; lib/chaos checks them).                        *)
(* ------------------------------------------------------------------ *)

module History = struct
  type event =
    | Invoke of {
        client : int;
        op_id : int;
        node : int;  (** server the operation was submitted to *)
        op : Replog.Command.op;
      }
    | Response of { client : int; op_id : int; result : Replog.Kv.result }
    | Timeout of { client : int; op_id : int }
        (** The client gave up waiting; the operation stays pending forever
            (its effect may or may not materialise later). *)

  type entry = { h_time : float; h_event : event }

  type t = { mutable entries : entry array; mutable len : int }

  let create () = { entries = Array.make 256 { h_time = 0.0; h_event = Timeout { client = -1; op_id = -1 } }; len = 0 }

  let record t ~time event =
    if t.len = Array.length t.entries then begin
      let bigger = Array.make (2 * t.len) t.entries.(0) in
      Array.blit t.entries 0 bigger 0 t.len;
      t.entries <- bigger
    end;
    t.entries.(t.len) <- { h_time = time; h_event = event };
    t.len <- t.len + 1

  let length t = t.len

  (* Chronological: records are appended in simulated-time order. *)
  let events t = Array.to_list (Array.sub t.entries 0 t.len)

  let pp_op ppf (op : Replog.Command.op) =
    match op with
    | Replog.Command.Noop -> Format.fprintf ppf "noop"
    | Replog.Command.Kv_put (k, v) -> Format.fprintf ppf "put(%s=%s)" k v
    | Replog.Command.Kv_get k -> Format.fprintf ppf "get(%s)" k
    | Replog.Command.Kv_del k -> Format.fprintf ppf "del(%s)" k
    | Replog.Command.Blob n -> Format.fprintf ppf "blob(%dB)" n

  let pp_result ppf (r : Replog.Kv.result) =
    match r with
    | Replog.Kv.Ok_unit -> Format.fprintf ppf "ok"
    | Replog.Kv.Value None -> Format.fprintf ppf "nil"
    | Replog.Kv.Value (Some v) -> Format.fprintf ppf "%s" v

  let pp_event ppf = function
    | Invoke { client; op_id; node; op } ->
        Format.fprintf ppf "c%d #%d @%d invoke %a" client op_id node pp_op op
    | Response { client; op_id; result } ->
        Format.fprintf ppf "c%d #%d response %a" client op_id pp_result result
    | Timeout { client; op_id } ->
        Format.fprintf ppf "c%d #%d timeout" client op_id

  let pp ppf t =
    List.iter
      (fun e -> Format.fprintf ppf "[%8.1f] %a@." e.h_time pp_event e.h_event)
      (events t)
end

(* Closed-loop KV client: one outstanding operation, drawn from a private
   PRNG; invocation/response/timeout events go to a shared {!History}. The
   response to an operation is whatever the replicated KV state machine of
   the *submission* server returned when it applied the operation — the
   client-visible semantics a real server would provide. *)
module Kv = struct
  type callbacks = {
    kc_now : unit -> float;
    kc_choose_node : read:bool -> int option;
        (** where to submit the next operation ([None]: retry later) *)
    kc_submit : node:int -> Replog.Command.t -> bool;
    kc_result : node:int -> op_id:int -> Replog.Kv.result option;
        (** the apply-time result once [node] has applied [op_id] *)
    kc_schedule : delay:float -> (unit -> unit) -> unit;
    kc_next_id : unit -> int;  (** globally unique command ids *)
  }

  type t = {
    cb : callbacks;
    history : History.t;
    client : int;
    rng : Random.State.t;
    keys : int;
    timeout_ms : float;
    poll_ms : float;
    mutable pending : (int * int * float) option;  (* op_id, node, since *)
    mutable seq : int;
    mutable completed : int;
    mutable timed_out : int;
    mutable running : bool;
  }

  (* 45% put / 45% get / 10% del over a small key space, so concurrent
     clients collide on keys often enough to make the checker bite. Put
     values are globally unique, which lets a read be attributed to the
     exact write that produced it. *)
  let gen_op c =
    let key = "k" ^ string_of_int (Random.State.int c.rng c.keys) in
    let roll = Random.State.int c.rng 100 in
    c.seq <- c.seq + 1;
    if roll < 45 then
      Replog.Command.Kv_put (key, Printf.sprintf "c%d.%d" c.client c.seq)
    else if roll < 90 then Replog.Command.Kv_get key
    else Replog.Command.Kv_del key

  let poll c =
    let now = c.cb.kc_now () in
    (match c.pending with
    | Some (op_id, node, since) -> (
        match c.cb.kc_result ~node ~op_id with
        | Some result ->
            History.record c.history ~time:now
              (History.Response { client = c.client; op_id; result });
            if Obs.Trace.on () then
              Obs.Trace.emit ~node
                (Obs.Event.Chaos_response
                   {
                     client = c.client;
                     op_id;
                     result = Format.asprintf "%a" History.pp_result result;
                   });
            c.completed <- c.completed + 1;
            c.pending <- None
        | None ->
            if now -. since >= c.timeout_ms then begin
              History.record c.history ~time:now
                (History.Timeout { client = c.client; op_id });
              if Obs.Trace.on () then
                Obs.Trace.emit ~node
                  (Obs.Event.Chaos_timeout { client = c.client; op_id });
              c.timed_out <- c.timed_out + 1;
              c.pending <- None
            end)
    | None -> ());
    if Option.is_none c.pending then begin
      let op = gen_op c in
      let read =
        match op with
        | Replog.Command.Kv_get _ -> true
        | Replog.Command.Noop | Replog.Command.Kv_put _
        | Replog.Command.Kv_del _ | Replog.Command.Blob _ ->
            false
      in
      match c.cb.kc_choose_node ~read with
      | None -> ()
      | Some node ->
          let op_id = c.cb.kc_next_id () in
          if c.cb.kc_submit ~node (Replog.Command.make ~id:op_id op) then begin
            History.record c.history ~time:now
              (History.Invoke { client = c.client; op_id; node; op });
            if Obs.Trace.on () then
              Obs.Trace.emit ~node
                (Obs.Event.Chaos_invoke
                   {
                     client = c.client;
                     op_id;
                     op = Format.asprintf "%a" History.pp_op op;
                   });
            c.pending <- Some (op_id, node, now)
          end
    end

  let start ~history ~client ~rng ~keys ~timeout_ms ~poll_ms cb =
    let c =
      {
        cb;
        history;
        client;
        rng;
        keys;
        timeout_ms;
        poll_ms;
        pending = None;
        seq = 0;
        completed = 0;
        timed_out = 0;
        running = true;
      }
    in
    let rec loop () =
      cb.kc_schedule ~delay:c.poll_ms (fun () ->
          if c.running then begin
            poll c;
            loop ()
          end)
    in
    loop ();
    c

  let stop c = c.running <- false
  let completed c = c.completed
  let timed_out c = c.timed_out
end
