(** Generic cluster driver: wires [n] protocol nodes into the simulated
    network, drives their tick timers, and runs the closed-loop client
    workload of the paper's evaluation ([cp] concurrent proposals kept
    outstanding). *)

module Net = Simnet.Net

type config = {
  n : int;
  tick_ms : float;  (** driver tick; also the batch-flush cadence *)
  election_timeout_ms : float;
  latency_ms : float;  (** one-way link delay *)
  egress_bw : float;  (** per-node egress, bytes/ms; [infinity] = unlimited *)
  seed : int;
  batching : Omnipaxos.Batching.config;
      (** hot-path flush policy, threaded to every node *)
  compaction : Omnipaxos.Compaction.config;
      (** snapshot-and-trim trigger, threaded to every node *)
}

let default_config =
  {
    n = 3;
    tick_ms = 5.0;
    election_timeout_ms = 50.0;
    latency_ms = 0.1;
    egress_bw = infinity;
    seed = 42;
    batching = Omnipaxos.Batching.fixed;
    compaction = Omnipaxos.Compaction.disabled;
  }

module Make (P : Protocol.PROTOCOL) = struct
  type t = {
    cfg : config;
    net : P.msg Net.t;
    nodes : P.t array;
    election_ticks : int;
    m_accepted : Obs.Metric.Counter.t;
    m_rejected : Obs.Metric.Counter.t;
  }

  let all_ids n = List.init n (fun i -> i)

  let create cfg =
    let net =
      Net.create ~seed:cfg.seed ~latency:cfg.latency_ms
        ~egress_bw:cfg.egress_bw ~num_nodes:cfg.n ()
    in
    let election_ticks =
      max 1 (int_of_float (Float.round (cfg.election_timeout_ms /. cfg.tick_ms)))
    in
    let make_node id =
      let peers = List.filter (fun j -> j <> id) (all_ids cfg.n) in
      let send ~dst m = Net.send net ~src:id ~dst ~size:(P.msg_size m) m in
      P.create ~batching:cfg.batching ~compaction:cfg.compaction ~id ~peers
        ~election_ticks ~rand:(Net.rng net) ~send ()
    in
    let nodes = Array.init cfg.n make_node in
    let install_handlers id node =
      Net.set_handler net id (fun ~src m -> P.handle node ~src m);
      Net.set_session_handler net id (fun ~peer -> P.session_reset node ~peer)
    in
    Array.iteri install_handlers nodes;
    let t =
      {
        cfg;
        net;
        nodes;
        election_ticks;
        m_accepted =
          Obs.Metric.Registry.(counter default "cluster.proposals.accepted");
        m_rejected =
          Obs.Metric.Registry.(counter default "cluster.proposals.rejected");
      }
    in
    let rec tick_loop () =
      Net.schedule net ~delay:cfg.tick_ms (fun () ->
          Array.iteri
            (fun id node -> if Net.is_up net id then P.tick node)
            nodes;
          tick_loop ())
    in
    tick_loop ();
    t

  let net t = t.net
  let node t i = t.nodes.(i)
  let now t = Net.now t.net
  let run_ms t ms = Net.run_for t.net ms

  let max_decided t =
    Array.fold_left (fun acc n -> max acc (P.decided_count n)) 0 t.nodes

  (* The node the client sends to: among the self-declared leaders, the one
     that has actually decided the most (during partial partitions several
     servers can claim leadership; only one makes progress). *)
  let leader t =
    let best = ref None in
    Array.iteri
      (fun id node ->
        if Net.is_up t.net id && P.is_leader node then
          match !best with
          | Some (_, d) when d >= P.decided_count node -> ()
          | Some _ | None -> best := Some (id, P.decided_count node))
      t.nodes;
    Option.map fst !best

  (* Fail-recovery fault hooks for the chaos campaigns and property tests.
     [Net.crash] drops the node's handlers and in-flight traffic; the tick
     loop already skips crashed nodes. [recover] restarts the protocol node
     from its persistent state and re-wires it into the network. *)
  let crash t i = Net.crash t.net i

  let recover t i =
    Net.recover t.net i;
    let node = t.nodes.(i) in
    P.restart node;
    Net.set_handler t.net i (fun ~src m -> P.handle node ~src m);
    Net.set_session_handler t.net i (fun ~peer -> P.session_reset node ~peer)

  let propose_at t ~node cmd =
    let ok = P.propose t.nodes.(node) cmd in
    Obs.Metric.Counter.add (if ok then t.m_accepted else t.m_rejected) 1;
    ok

  let propose_batch t ~leader ~first_id ~count =
    let node = t.nodes.(leader) in
    let got = ref 0 in
    (try
       for i = first_id to first_id + count - 1 do
         if P.propose node (Replog.Command.noop i) then incr got
         else raise Exit
       done
     with Exit -> ());
    Obs.Metric.Counter.add t.m_accepted !got;
    Obs.Metric.Counter.add t.m_rejected (count - !got);
    !got

  let start_client ?retry_ms t ~cp =
    let retry_ms =
      Option.value retry_ms ~default:(4.0 *. t.cfg.election_timeout_ms)
    in
    Client.start ~retry_ms ~poll_ms:t.cfg.tick_ms ~cp
      {
        Client.now = (fun () -> now t);
        decided = (fun () -> max_decided t);
        leader = (fun () -> leader t);
        propose_batch =
          (fun ~leader ~first_id ~count -> propose_batch t ~leader ~first_id ~count);
        schedule = (fun ~delay f -> Net.schedule t.net ~delay f);
      }
end
