(* Omni-Paxos behind the uniform protocol interface. *)

module R = Omnipaxos.Replica

type t = {
  mutable replica : R.t;
  cache : Protocol.Decided_cache.t;
  mutable scanned : int;  (* log index up to which decided entries were read *)
  mutable install_seq : int;
  mutable last_install : Protocol.install option;
  build : unit -> R.t;
      (* rebuild on the same stable storage (fail-recovery restarts) *)
}

type msg = R.msg

let name = "Omni-Paxos"

let scan t upto =
  let entries = R.read_decided t.replica ~from:t.scanned in
  let rec take i = function
    | [] -> ()
    | e :: rest ->
        if i < upto then begin
          (match e with
          | Omnipaxos.Entry.Cmd c ->
              if c.Replog.Command.id >= 0 then
                Protocol.Decided_cache.note t.cache c.Replog.Command.id
          | Omnipaxos.Entry.Stop_sign _ -> ());
          take (i + 1) rest
        end
  in
  take t.scanned entries;
  (* [max]: recovery re-announces the decided index from storage; never let
     an early (lower) announcement rewind the scan and duplicate ids. *)
  t.scanned <- max t.scanned upto

let make ?qc_signal ?connectivity_priority ?batching ?compaction ~id ~peers
    ~election_ticks ~rand ~send () =
  ignore rand;
  let cache = Protocol.Decided_cache.create () in
  let storage = R.Storage.create () in
  let t_ref = ref None in
  let on_decide idx =
    match !t_ref with Some t -> scan t idx | None -> ()
  in
  (* A leader-shipped snapshot replaced the log prefix below [idx]: entries
     there can no longer be scanned, so jump the scan cursor and record the
     install for checkers (the cache length marks where decided ids resume
     on top of the installed state). Fires before the decided index
     advances, so the subsequent [scan] reads an aligned suffix. *)
  let on_snapshot idx payload =
    match !t_ref with
    | Some t ->
        t.scanned <- max t.scanned idx;
        t.install_seq <- t.install_seq + 1;
        t.last_install <-
          Some
            {
              Protocol.inst_seq = t.install_seq;
              inst_cache_len = Protocol.Decided_cache.count t.cache;
              inst_payload = payload;
            }
    | None -> ()
  in
  let build () =
    R.create ~id ~peers ?qc_signal ?connectivity_priority
      ~hb_ticks:election_ticks ?batching ?compaction ~storage ~send ~on_decide
      ~on_snapshot ()
  in
  let t =
    {
      replica = build ();
      cache;
      scanned = 0;
      install_seq = 0;
      last_install = None;
      build;
    }
  in
  t_ref := Some t;
  t

let create ?batching ?compaction ~id ~peers ~election_ticks ~rand ~send () =
  make ?batching ?compaction ~id ~peers ~election_ticks ~rand ~send ()

(* Profiler frames around the two dispatch entry points. The cold branch
   repeats the call instead of passing a closure to [wrap], so the
   profiler-off path allocates nothing (the overhead gate measures this). *)
let handle t ~src msg =
  if Obs.Profile.on () then
    Obs.Profile.wrap "omnipaxos/handle" (fun () -> R.handle t.replica ~src msg)
  else R.handle t.replica ~src msg

let tick t =
  if Obs.Profile.on () then
    Obs.Profile.wrap "omnipaxos/tick" (fun () -> R.tick t.replica)
  else R.tick t.replica

let session_reset t ~peer = R.session_reset t.replica ~peer

(* Fail-recovery: volatile state is lost, the replica is rebuilt on its old
   storage and runs the recovery protocol. [scanned] stays valid because the
   decided prefix lives in the storage and only ever grows. *)
let restart t =
  let r = t.build () in
  t.replica <- r;
  R.recover r
let propose t cmd = R.propose_cmd t.replica cmd
let is_leader t = R.is_leader t.replica
let leader_pid t = R.leader_pid t.replica
let decided_count t = Protocol.Decided_cache.count t.cache
let decided_ids t ~from = Protocol.Decided_cache.ids_from t.cache ~from
let decided_index t = R.decided_idx t.replica
let last_install t = t.last_install
let msg_size = R.msg_size
let replica t = t.replica

(* Ablation variant: heartbeats carry no QC flag (the "QC status heartbeats"
   column of Table 1). Quorum-loss recovery is expected to fail. *)
module No_qc_signal = struct
  type nonrec t = t
  type nonrec msg = msg

  let name = "Omni (no QC flag)"

  let create ?batching ?compaction ~id ~peers ~election_ticks ~rand ~send () =
    make ~qc_signal:false ?batching ?compaction ~id ~peers ~election_ticks
      ~rand ~send ()

  let handle = handle
  let tick = tick
  let session_reset = session_reset
  let restart = restart
  let propose = propose
  let is_leader = is_leader
  let leader_pid = leader_pid
  let decided_count = decided_count
  let decided_ids = decided_ids
  let decided_index = decided_index
  let last_install = last_install
  let msg_size = msg_size
end

(* §8 optimisation variant: takeover ballots carry connectivity, so the
   best-connected simultaneous candidate wins ties. *)
module Connectivity_priority = struct
  type nonrec t = t
  type nonrec msg = msg

  let name = "Omni (conn-prio)"

  let create ?batching ?compaction ~id ~peers ~election_ticks ~rand ~send () =
    make ~connectivity_priority:true ?batching ?compaction ~id ~peers
      ~election_ticks ~rand ~send ()

  let handle = handle
  let tick = tick
  let session_reset = session_reset
  let restart = restart
  let propose = propose
  let is_leader = is_leader
  let leader_pid = leader_pid
  let decided_count = decided_count
  let decided_ids = decided_ids
  let decided_index = decided_index
  let last_install = last_install
  let msg_size = msg_size
end
