(** The uniform interface the cluster driver and the experiments use to run
    any of the four replicated state machine protocols. *)

type install = {
  inst_seq : int;  (** counts installs on this server; strictly increasing *)
  inst_cache_len : int;
      (** [decided_count] at the moment of the install: decided ids at or
          above this position were decided after (and on top of) the
          installed state *)
  inst_payload : string;  (** the {!Replog.Snapshot} envelope installed *)
}
(** A snapshot install observed on a server: the leader replaced this
    server's state below the trim point with serialised state instead of
    replaying log entries. Checkers use it to jump their per-server oracle
    to the installed state. *)

module type PROTOCOL = sig
  type t
  type msg

  val name : string

  val create :
    ?batching:Omnipaxos.Batching.config ->
    ?compaction:Omnipaxos.Compaction.config ->
    id:int ->
    peers:int list ->
    election_ticks:int ->
    rand:Random.State.t ->
    send:(dst:int -> msg -> unit) ->
    unit ->
    t
  (** [election_ticks] is the election timeout expressed in driver ticks;
      protocols derive their internal timers (heartbeat cadence, randomized
      timeouts, view-change timers) from it.

      [batching] (default {!Omnipaxos.Batching.fixed}) selects the hot-path
      flush policy. Omni-Paxos variants and VR apply it to Sequence Paxos
      directly; Raft and Multi-Paxos translate it to their own knobs
      ([max_batch] caps entries per replication message, and an adaptive
      config enables a size-triggered eager flush at [min_batch] pending
      entries), so Figure 7/8 comparisons stay apples-to-apples.

      [compaction] (default {!Omnipaxos.Compaction.disabled}) selects the
      snapshot-and-trim trigger, translated the same way: Omni-Paxos
      variants and VR run quorum-watermark compaction inside Sequence
      Paxos; Raft and Multi-Paxos compact locally below their own
      commit/decide watermark at the same [snapshot_interval]/[retain]
      knobs, repairing stragglers with their own snapshot messages. *)

  val handle : t -> src:int -> msg -> unit
  val tick : t -> unit
  val session_reset : t -> peer:int -> unit

  val restart : t -> unit
  (** Fail-recovery restart after a [Simnet.Net.crash]/[recover] cycle:
      rebuild volatile state from whatever the protocol persists to stable
      storage. Omni-Paxos rebuilds its replica on the retained storage and
      runs the paper's recovery protocol; Raft re-runs recovery on its
      persistent term/vote/log; Multi-Paxos and VR have no storage
      abstraction and model synchronous full-state persistence (the
      instance is kept as-is — a pause, not an amnesia restart). *)

  val propose : t -> Replog.Command.t -> bool
  (** Returns false if this server cannot accept proposals (not the
      leader). *)

  val is_leader : t -> bool
  val leader_pid : t -> int option

  val decided_count : t -> int
  (** Number of client commands decided so far (protocol-internal entries
      excluded). *)

  val decided_ids : t -> from:int -> int list
  (** Ids of the decided client commands, starting from decided position
      [from]. *)

  val decided_index : t -> int
  (** The protocol-level decided/commit log index (absolute, so it keeps
      counting across compaction). Unlike {!decided_count} it includes
      protocol-internal entries and survives a snapshot install without a
      gap, which makes it the right "caught up yet?" probe for benches. *)

  val last_install : t -> install option
  (** The most recent snapshot install on this server, if any (compaction
      must be enabled for installs to happen). *)

  val msg_size : msg -> int
end

(* Shared trace instrumentation for the protocol adapters: terms/views map
   onto trace ballots as (term, 0, leader). [note_leader] is called from the
   adapter's [tick]/decide paths and emits Leader_elected/Leader_changed on
   transitions; [note_decided] reports decided-index advances. Everything is
   behind the [Obs.Trace.on] guard, so it costs one branch when tracing is
   off. *)
module Obs_hooks = struct
  type t = { mutable last_leader : (int * int) option (* (pid, term) *) }

  let create () = { last_leader = None }

  let note_leader s ~node ~leader ~term =
    if Obs.Trace.on () then
      match leader with
      | None -> ()
      | Some pid ->
          let same =
            match s.last_leader with
            | Some (p, t) -> Int.equal p pid && Int.equal t term
            | None -> false
          in
          if not same then begin
            let first = Option.is_none s.last_leader in
            s.last_leader <- Some (pid, term);
            let b = { Obs.Event.n = term; prio = 0; pid } in
            Obs.Trace.emit ~node
              (if first then Obs.Event.Leader_elected b
               else Obs.Event.Leader_changed b)
          end

  let note_decided ~node ~term ~leader ~decided_idx =
    if Obs.Trace.on () then
      let b =
        { Obs.Event.n = term; prio = 0; pid = Option.value leader ~default:(-1) }
      in
      Obs.Trace.emit ~node (Obs.Event.Decided { b; decided_idx })
end

(* Incrementally materialised list of decided command ids; adapters feed it
   from their decide/commit callbacks so queries are O(delta). *)
module Decided_cache = struct
  type t = { mutable ids : int array; mutable count : int }

  let create () = { ids = Array.make 64 0; count = 0 }

  let note t id =
    if t.count = Array.length t.ids then begin
      let bigger = Array.make (2 * t.count) 0 in
      Array.blit t.ids 0 bigger 0 t.count;
      t.ids <- bigger
    end;
    t.ids.(t.count) <- id;
    t.count <- t.count + 1

  let count t = t.count

  let ids_from t ~from =
    let from = max 0 from in
    Array.to_list (Array.sub t.ids from (max 0 (t.count - from)))
end
