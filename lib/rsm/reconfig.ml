(** Reconfiguration runners for the Figure 9 experiments.

    [Omni] implements the paper's service layer (§6): the current
    configuration is stopped with a stop-sign; continuing servers start the
    next configuration immediately and newly added servers fetch the log in
    parallel, in segments, from the continuing servers; each new server
    starts its BLE + Sequence Paxos instances only once the complete log has
    been fetched.

    [Raft] implements the leader-driven scheme the paper compares against:
    new servers join as learners streamed by the leader alone; a config
    entry switches the voter set when it commits, so with a majority
    replaced, commits stall until the new servers catch up. *)

module Net = Simnet.Net
module Log = Replog.Log
module Command = Replog.Command

type fault = Cut_link of int * int | Crash_node of int

type params = {
  net_cfg : Cluster.config;  (** [n] must cover old and new node ids *)
  old_nodes : int list;
  new_nodes : int list;
  preload : int;  (** entries in the initial log (internal ids) *)
  cp : int;
  reconfigure_at : float;
  total_ms : float;
  segment_entries : int;
  faults : (float * fault) list;
      (** scheduled faults, for the §6.1 resilience experiments *)
}

type result = {
  series : Metrics.Series.t;
  io_series : (float * int array) list;
      (** (time, cumulative egress bytes per node), sampled every second *)
  reconfig_committed_at : float option;
  migration_done_at : float option;
  leader_changes : int;
  decided : int;
}

let internal_id = -2

(* Reconfiguration milestones traced at the harness level (node [-1] marks
   cluster-wide milestones observed by the runner rather than a server). *)
let trace_milestone ~node ~config_id milestone =
  if Obs.Trace.on () then
    Obs.Trace.emit ~node (Obs.Event.Reconfig { config_id; milestone })

let count_client_cmds entries =
  List.fold_left
    (fun acc (e : Omnipaxos.Entry.t) ->
      match e with
      | Omnipaxos.Entry.Cmd c when c.Command.id >= 0 -> acc + 1
      | Omnipaxos.Entry.Cmd _ | Omnipaxos.Entry.Stop_sign _ -> acc)
    0 entries

let schedule_faults net faults =
  List.iter
    (fun (at, fault) ->
      Net.schedule net ~delay:at (fun () ->
          match fault with
          | Cut_link (a, b) -> Net.set_link net a b false
          | Crash_node i -> Net.crash net i))
    faults

(* Per-second sampler of every node's cumulative egress bytes. *)
let start_io_sampler net samples =
  let n = Net.num_nodes net in
  let rec loop () =
    Net.schedule net ~delay:1000.0 (fun () ->
        let snapshot = Array.init n (fun i -> Net.bytes_sent net i) in
        samples := (Net.now net, snapshot) :: !samples;
        loop ())
  in
  loop ()

module Omni = struct
  module R = Omnipaxos.Replica

  type wire =
    | Rep of { cfg : int; m : R.msg }
    | New_config of { cfg : int; nodes : int list; total : int }
    | Seg_req of { cfg : int; seg : int; from_idx : int; upto : int }
    | Seg_resp of { cfg : int; seg : int; from_idx : int; entries : Omnipaxos.Entry.t list }
    | Snap_req of { cfg : int }
    | Snap_resp of { cfg : int; idx : int; cmds : int; payload : string }
        (** snapshot of the decided prefix [0, idx) with [cmds] client
            commands below it; replaces entry-by-entry migration of the
            compacted base *)

  let wire_size = function
    | Rep { m; _ } -> 9 + R.msg_size m
    | New_config { nodes; _ } -> 25 + (8 * List.length nodes)
    | Seg_req _ -> 33
    | Seg_resp { entries; _ } ->
        33 + List.fold_left (fun a e -> a + Omnipaxos.Entry.size e) 0 entries
    | Snap_req _ -> 17
    | Snap_resp { payload; _ } -> 33 + String.length payload

  type migration = {
    total : int;
    donors : int array;
    seg_size : int;
    mutable received : int array;  (** entries received per segment *)
    mutable attempts : int array;
        (** re-request count per segment, for donor rotation *)
    mutable store : Omnipaxos.Entry.t list list array;
        (** per segment: the received chunks, most recent first *)
    mutable remaining_segments : int;
    mutable snap_pending : bool;
        (** waiting for the base snapshot before striping the tail *)
    mutable snap_attempts : int;  (** snapshot re-requests, for rotation *)
    mutable snap_cmds : int;  (** client commands covered by the snapshot *)
    mutable tail_from : int;  (** striped tail covers [tail_from, total) *)
  }

  type server = {
    id : int;
    mutable replicas : (int * R.t) list;  (** newest config first *)
    mutable cmds : int array;  (** client commands decided, per config *)
    mutable seen : int array;  (** decided-scan position, per config *)
    mutable transitioned : bool;
    mutable migration : migration option;
    mutable base_cmds : int;  (** commands in the migrated base (new servers) *)
  }

  type t = {
    p : params;
    net : wire Net.t;
    servers : server array;
    continuing : int list;
    mutable ss_requested : bool;
    mutable reconfig_committed_at : float option;
    mutable migration_done_at : float option;
  }

  let server_cmds s = s.base_cmds + Array.fold_left ( + ) 0 s.cmds

  let decided_total t =
    Array.fold_left
      (fun acc s ->
        if List.mem s.id t.p.old_nodes || List.mem s.id t.p.new_nodes then
          max acc (server_cmds s)
        else acc)
      0 t.servers

  let replica_of s cfg = List.assoc_opt cfg s.replicas

  let send_wire t src dst m = Net.send t.net ~src ~dst ~size:(wire_size m) m

  (* The new configuration is fully up when every member runs its replica
     (a pure upgrade has no joining servers, so this can already hold right
     after the transition). *)
  let check_all_running t ~cfg =
    if
      Option.is_none t.migration_done_at
      && List.for_all
           (fun j -> Option.is_some (replica_of t.servers.(j) cfg))
           t.p.new_nodes
    then begin
      t.migration_done_at <- Some (Net.now t.net);
      trace_milestone ~node:(-1) ~config_id:cfg "migration-done"
    end

  let election_ticks t =
    max 1
      (int_of_float
         (Float.round (t.p.net_cfg.election_timeout_ms /. t.p.net_cfg.tick_ms)))

  let grow_to_cfg s cfg =
    if Array.length s.cmds <= cfg then begin
      let grow a =
        let b = Array.make (cfg + 1) 0 in
        Array.blit a 0 b 0 (Array.length a);
        b
      in
      s.cmds <- grow s.cmds;
      s.seen <- grow s.seen
    end

  (* Start the replica of configuration [cfg] at server [s]. *)
  let rec start_replica t s ~cfg ~nodes ~storage =
    grow_to_cfg s cfg;
    let peers = List.filter (fun j -> j <> s.id) nodes in
    let replica = ref None in
    let on_decide _ = on_replica_decide t s ~cfg (Option.get !replica) in
    let r =
      R.create ~id:s.id ~peers ~hb_ticks:(election_ticks t)
        ~batching:t.p.net_cfg.Cluster.batching
        ~compaction:t.p.net_cfg.Cluster.compaction ~storage
        ~send:(fun ~dst m -> send_wire t s.id dst (Rep { cfg; m }))
        ~on_decide ()
    in
    replica := Some r;
    s.replicas <- (cfg, r) :: s.replicas

  (* Scan newly decided entries: count client commands, and drive the
     service-layer transition when the stop-sign is decided. *)
  and on_replica_decide t s ~cfg r =
    let entries = R.read_decided r ~from:s.seen.(cfg) in
    s.seen.(cfg) <- R.decided_idx r;
    s.cmds.(cfg) <- s.cmds.(cfg) + count_client_cmds entries;
    if (not s.transitioned) && cfg = 0 && Option.is_some (R.stop_sign r) then
      transition t s r

  and transition t s r0 =
    s.transitioned <- true;
    if Option.is_none t.reconfig_committed_at then begin
      t.reconfig_committed_at <- Some (Net.now t.net);
      trace_milestone ~node:s.id ~config_id:1 "stop-sign-decided"
    end;
    let ss = Option.get (R.stop_sign r0) in
    let total = R.decided_idx r0 - 1 in
    (* Entries [0, total) precede the stop-sign. *)
    if List.mem s.id ss.Omnipaxos.Entry.nodes then
      start_replica t s ~cfg:(ss.Omnipaxos.Entry.config_id)
        ~nodes:ss.Omnipaxos.Entry.nodes
        ~storage:(R.Storage.create ());
    (* Notify the servers that were not part of the old configuration. *)
    List.iter
      (fun j ->
        if not (List.mem j t.p.old_nodes) then
          send_wire t s.id j
            (New_config
               { cfg = ss.Omnipaxos.Entry.config_id; nodes = ss.Omnipaxos.Entry.nodes; total }))
      ss.Omnipaxos.Entry.nodes;
    check_all_running t ~cfg:ss.Omnipaxos.Entry.config_id

  let seg_bounds m k =
    let from_idx = m.tail_from + (k * m.seg_size) in
    (from_idx, min m.total (from_idx + m.seg_size))

  let finish_migration t s ~cfg ~nodes m =
    let base =
      List.concat
        (Array.to_list
           (Array.map (fun chunks -> List.concat (List.rev chunks)) m.store))
    in
    s.base_cmds <- m.snap_cmds + count_client_cmds base;
    s.migration <- None;
    start_replica t s ~cfg ~nodes ~storage:(R.Storage.create ());
    check_all_running t ~cfg

  (* Stripe the decided tail [from, total) across the donors; the prefix
     below [from] is covered by an already-received snapshot (or empty when
     compaction is off and [from = 0]). *)
  let start_tail t s ~cfg m ~from =
    m.tail_from <- from;
    let span = max 0 (m.total - from) in
    let nsegs = (span + m.seg_size - 1) / m.seg_size in
    m.received <- Array.make nsegs 0;
    m.attempts <- Array.make nsegs 0;
    m.store <- Array.make nsegs [];
    m.remaining_segments <- nsegs;
    if nsegs = 0 then finish_migration t s ~cfg ~nodes:t.p.new_nodes m
    else
      for k = 0 to nsegs - 1 do
        let from_idx, upto = seg_bounds m k in
        let donor = m.donors.(k mod Array.length m.donors) in
        send_wire t s.id donor (Seg_req { cfg; seg = k; from_idx; upto })
      done

  (* Parallel log migration. With compaction off the whole decided prefix
     [0, total) is striped entry-by-entry across the continuing servers;
     with compaction on the donors may have trimmed it, so the joiner first
     fetches a state snapshot (O(state) bytes) and stripes only the tail
     above it. *)
  let start_migration t s ~cfg ~total =
    let m =
      {
        total;
        donors = Array.of_list t.continuing;
        seg_size = t.p.segment_entries;
        received = [||];
        attempts = [||];
        store = [||];
        remaining_segments = 0;
        snap_pending = false;
        snap_attempts = 0;
        snap_cmds = 0;
        tail_from = 0;
      }
    in
    s.migration <- Some m;
    trace_milestone ~node:s.id ~config_id:cfg "migration-start";
    if Omnipaxos.Compaction.enabled t.p.net_cfg.Cluster.compaction then begin
      m.snap_pending <- true;
      send_wire t s.id m.donors.(0) (Snap_req { cfg })
    end
    else start_tail t s ~cfg m ~from:0

  (* Re-request incomplete segments (or the base snapshot), rotating to a
     different donor on each attempt — an unreachable or crashed donor must
     not stall the migration (the §6.1 resilience property). *)
  let request_missing t s ~cfg =
    match s.migration with
    | None -> ()
    | Some m when m.snap_pending ->
        m.snap_attempts <- m.snap_attempts + 1;
        let donor = m.donors.(m.snap_attempts mod Array.length m.donors) in
        send_wire t s.id donor (Snap_req { cfg })
    | Some m ->
        Array.iteri
          (fun k got ->
            let from_idx, upto = seg_bounds m k in
            if got < upto - from_idx then begin
              m.attempts.(k) <- m.attempts.(k) + 1;
              let donor =
                m.donors.((k + m.attempts.(k)) mod Array.length m.donors)
              in
              send_wire t s.id donor
                (Seg_req { cfg; seg = k; from_idx = from_idx + got; upto })
            end)
          m.received

  (* A base snapshot covering [0, idx). Only the index and command count
     feed the harness (which replays counts, not state); the payload is
     carried for faithful byte accounting. *)
  let on_snap_resp t s ~cfg ~idx ~cmds =
    match s.migration with
    | None -> ()
    | Some m ->
        if m.snap_pending then begin
          m.snap_pending <- false;
          m.snap_cmds <- cmds;
          start_tail t s ~cfg m ~from:idx
        end
        else if idx > m.tail_from && m.remaining_segments > 0 then begin
          (* Donors compacted past the tail base mid-migration (a donor
             answered a below-floor [Seg_req] with its snapshot): restart
             the tail on the newer base. The discarded chunks only fed the
             command count, which [cmds] now covers. *)
          m.snap_cmds <- cmds;
          start_tail t s ~cfg m ~from:idx
        end

  let on_seg_resp t s ~cfg ~seg ~from_idx ~entries =
    match s.migration with
    | None -> ()
    (* A tail restart shrinks the segment arrays, so a response to an
       earlier striping can carry an out-of-range segment id. *)
    | Some m when seg >= Array.length m.received -> ()
    | Some m ->
        let seg_from, seg_upto = seg_bounds m seg in
        let expected_next = seg_from + m.received.(seg) in
        if from_idx <= expected_next && m.received.(seg) < seg_upto - seg_from
        then begin
          let skip = expected_next - from_idx in
          let fresh = List.filteri (fun i _ -> i >= skip) entries in
          let fresh_len = List.length fresh in
          if fresh_len > 0 then begin
            m.store.(seg) <- fresh :: m.store.(seg);
            m.received.(seg) <- m.received.(seg) + fresh_len;
            if m.received.(seg) = seg_upto - seg_from then begin
              m.remaining_segments <- m.remaining_segments - 1;
              if m.remaining_segments = 0 then begin
                let ss_nodes = t.p.new_nodes in
                finish_migration t s ~cfg ~nodes:ss_nodes m
              end
            end
          end
        end

  (* Serve the compacted base: the snapshot covering [0, first_idx) plus
     its client-command count, so a joiner seeds [base_cmds] without
     replaying the trimmed prefix. *)
  let on_snap_req t s ~src ~cfg =
    match replica_of s 0 with
    | None -> ()
    | Some r0 ->
        send_wire t s.id src
          (Snap_resp
             {
               cfg;
               idx = R.first_idx r0;
               cmds = R.snapshot_client_cmds r0;
               payload = R.snapshot r0;
             })

  (* Serve decided entries of the old configuration (even a server that has
     not seen the stop-sign yet can serve its decided prefix). A request
     below this donor's trim point cannot be answered with entries — ship
     the snapshot instead and let the joiner restart its tail above it. *)
  let on_seg_req t s ~src ~cfg ~seg ~from_idx ~upto =
    match replica_of s 0 with
    | None -> ()
    | Some r0 ->
        if from_idx < R.first_idx r0 then on_snap_req t s ~src ~cfg
        else begin
          let available = min upto (R.decided_idx r0) in
          if available > from_idx then begin
            let entries =
              Log.sub (R.read_log r0) ~pos:from_idx ~len:(available - from_idx)
            in
            send_wire t s.id src (Seg_resp { cfg; seg; from_idx; entries })
          end
        end

  let handle t s ~src wire =
    match wire with
    | Rep { cfg; m } -> (
        match replica_of s cfg with
        | Some r -> R.handle r ~src m
        | None -> ())
    | New_config { cfg; nodes; total } ->
        if Option.is_none s.migration && Option.is_none (replica_of s cfg)
        then begin
          ignore nodes;
          start_migration t s ~cfg ~total
        end
    | Seg_req { cfg; seg; from_idx; upto } ->
        on_seg_req t s ~src ~cfg ~seg ~from_idx ~upto
    | Seg_resp { cfg; seg; from_idx; entries } ->
        on_seg_resp t s ~cfg ~seg ~from_idx ~entries
    | Snap_req { cfg } -> on_snap_req t s ~src ~cfg
    | Snap_resp { cfg; idx; cmds; payload = _ } ->
        on_snap_resp t s ~cfg ~idx ~cmds

  (* The proposal target: the most advanced non-stopped leader. *)
  let leader t =
    let best = ref None in
    Array.iter
      (fun s ->
        match s.replicas with
        | (cfg, r) :: _ when R.is_leader r && not (R.is_stopped r) -> (
            let cmds = server_cmds s in
            match !best with
            | Some ((bc, bm), _) when bc > cfg || (bc = cfg && bm >= cmds) ->
                ()
            | Some _ | None -> best := Some ((cfg, cmds), s.id))
        | _ -> ())
      t.servers;
    Option.map snd !best

  let propose_batch t ~leader ~first_id ~count =
    let s = t.servers.(leader) in
    match s.replicas with
    | (_, r) :: _ ->
        let got = ref 0 in
        (try
           for i = first_id to first_id + count - 1 do
             if R.propose_cmd r (Command.noop i) then incr got
             else raise Exit
           done
         with Exit -> ());
        !got
    | [] -> 0

  (* Ask the current old-configuration leader to stop the configuration. *)
  let try_request_reconfig t =
    if Option.is_none t.reconfig_committed_at then
      Array.iter
        (fun s ->
          match replica_of s 0 with
          | Some r when R.is_leader r && not (R.is_stopped r) ->
              ignore
                (R.propose_reconfigure r ~config_id:1 ~nodes:t.p.new_nodes)
          | Some _ | None -> ())
        t.servers

  let preloaded_storage preload =
    let storage = R.Storage.create () in
    let sp = storage.R.Storage.sp in
    for _ = 1 to preload do
      Log.append sp.Omnipaxos.Sequence_paxos.log
        (Omnipaxos.Entry.Cmd (Command.noop internal_id))
    done;
    sp.Omnipaxos.Sequence_paxos.decided_idx <- preload;
    storage

  let run (p : params) : result =
    let net =
      Net.create ~seed:p.net_cfg.seed ~latency:p.net_cfg.latency_ms
        ~egress_bw:p.net_cfg.egress_bw ~num_nodes:p.net_cfg.n ()
    in
    let continuing =
      List.filter (fun j -> List.mem j p.new_nodes) p.old_nodes
    in
    let servers =
      Array.init p.net_cfg.n (fun id ->
          {
            id;
            replicas = [];
            cmds = Array.make 2 0;
            seen = Array.make 2 0;
            transitioned = false;
            migration = None;
            base_cmds = 0;
          })
    in
    let t =
      {
        p;
        net;
        servers;
        continuing;
        ss_requested = false;
        reconfig_committed_at = None;
        migration_done_at = None;
      }
    in
    List.iter
      (fun id ->
        start_replica t servers.(id) ~cfg:0 ~nodes:p.old_nodes
          ~storage:(preloaded_storage p.preload);
        servers.(id).seen.(0) <- p.preload)
      p.old_nodes;
    Array.iter
      (fun s ->
        Net.set_handler net s.id (fun ~src m -> handle t s ~src m);
        Net.set_session_handler net s.id (fun ~peer ->
            List.iter (fun (_, r) -> R.session_reset r ~peer) s.replicas))
      servers;
    (* Tick loop: ticks every replica and retries missing segments. *)
    let tick_counter = ref 0 in
    let rec tick_loop () =
      Net.schedule net ~delay:p.net_cfg.tick_ms (fun () ->
          incr tick_counter;
          Array.iter
            (fun s ->
              List.iter (fun (_, r) -> R.tick r) s.replicas;
              if
                Option.is_some s.migration
                && !tick_counter mod (4 * election_ticks t) = 0
              then request_missing t s ~cfg:1)
            servers;
          if t.ss_requested && Option.is_none t.reconfig_committed_at then
            try_request_reconfig t;
          tick_loop ())
    in
    tick_loop ();
    schedule_faults net p.faults;
    let io_samples = ref [] in
    start_io_sampler net io_samples;
    let client =
      Client.start ~retry_ms:(4.0 *. p.net_cfg.election_timeout_ms)
        ~poll_ms:p.net_cfg.tick_ms ~cp:p.cp
        {
          Client.now = (fun () -> Net.now net);
          decided = (fun () -> decided_total t);
          leader = (fun () -> leader t);
          propose_batch =
            (fun ~leader ~first_id ~count ->
              propose_batch t ~leader ~first_id ~count);
          schedule = (fun ~delay f -> Net.schedule net ~delay f);
        }
    in
    Net.schedule net ~delay:p.reconfigure_at (fun () ->
        t.ss_requested <- true;
        try_request_reconfig t);
    Net.run_until net p.total_ms;
    Client.stop client;
    {
      series = Client.series client;
      io_series = List.rev !io_samples;
      reconfig_committed_at = t.reconfig_committed_at;
      migration_done_at = t.migration_done_at;
      leader_changes = Client.leader_changes client;
      decided = Client.decided client;
    }
end

module Raft_runner = struct
  module N = Raft.Node

  type node_state = {
    node : N.t;
    mutable cmds : int;  (** client commands committed *)
    mutable scanned : int;
  }

  type t = {
    p : params;
    net : N.msg Net.t;
    nodes : node_state option array;
    mutable reconfig_requested : bool;
    mutable proposed_to : int option;
    mutable reconfig_committed_at : float option;
    mutable migration_done_at : float option;
  }

  let election_ticks p =
    max 1
      (int_of_float
         (Float.round (p.net_cfg.election_timeout_ms /. p.net_cfg.tick_ms)))

  let make_node t ~id ~voters ~persistent =
    let p = t.p in
    let ns = ref None in
    let on_commit upto =
      match !ns with
      | None -> ()
      | Some ns ->
          let entries = N.read_committed ns.node ~from:ns.scanned in
          ns.scanned <- upto;
          ns.cmds <-
            ns.cmds
            + List.fold_left
                (fun acc (e : N.entry) ->
                  match e.N.data with
                  | N.Cmd c when c.Command.id >= 0 -> acc + 1
                  | N.Cmd _ | N.Config _ -> acc)
                0 entries
    in
    let node =
      N.create ~id ~voters ~election_ticks:(election_ticks p)
        ~rand:(Net.rng t.net) ~persistent
        ~send:(fun ~dst m -> Net.send t.net ~src:id ~dst ~size:(N.msg_size m) m)
        ~on_commit ()
    in
    let state = { node; cmds = 0; scanned = 0 } in
    ns := Some state;
    t.nodes.(id) <- Some state;
    Net.set_handler t.net id (fun ~src m -> N.handle node ~src m);
    Net.set_session_handler t.net id (fun ~peer -> N.session_reset node ~peer);
    state

  let decided_total t =
    Array.fold_left
      (fun acc -> function Some ns -> max acc ns.cmds | None -> acc)
      0 t.nodes

  let leader t =
    let best = ref None in
    Array.iteri
      (fun id -> function
        | Some ns when Net.is_up t.net id && N.is_leader ns.node -> (
            match !best with
            | Some (_, d) when d >= ns.cmds -> ()
            | Some _ | None -> best := Some (id, ns.cmds))
        | Some _ | None -> ())
      t.nodes;
    Option.map fst !best

  let propose_batch t ~leader ~first_id ~count =
    match t.nodes.(leader) with
    | None -> 0
    | Some ns ->
        let got = ref 0 in
        (try
           for i = first_id to first_id + count - 1 do
             if N.propose ns.node (Command.noop i) then incr got
             else raise Exit
           done
         with Exit -> ());
        !got

  (* Activate the new servers as learners at the current leader and append
     the config entry; re-issued if leadership moves before it commits. *)
  let drive_reconfig t =
    if t.reconfig_requested && Option.is_none t.reconfig_committed_at
    then begin
      (* Activate new server nodes on first use. They join as true learners
         (not in the voter set), so they cannot campaign while catching up;
         the committed Config entry promotes them. *)
      List.iter
        (fun id ->
          if Option.is_none t.nodes.(id) then
            let (_ : node_state) =
              make_node t ~id ~voters:t.p.old_nodes
                ~persistent:(N.fresh_persistent ())
            in
            ())
        t.p.new_nodes;
      let already_proposed l =
        match t.proposed_to with Some p -> Int.equal p l | None -> false
      in
      match leader t with
      | Some l when not (already_proposed l) ->
          let ns = Option.get t.nodes.(l) in
          let joining =
            List.filter (fun j -> not (List.mem j t.p.old_nodes)) t.p.new_nodes
          in
          N.add_learners ns.node joining;
          if N.propose_config ns.node ~config_id:1 ~voters:t.p.new_nodes then
            t.proposed_to <- Some l
      | Some _ | None -> ()
    end

  let check_progress t =
    (if Option.is_none t.reconfig_committed_at then
       let committed =
         Array.exists
           (function
             | Some ns -> Option.is_some (N.committed_config ns.node)
             | None -> false)
           t.nodes
       in
       if committed then begin
         t.reconfig_committed_at <- Some (Net.now t.net);
         trace_milestone ~node:(-1) ~config_id:1 "config-committed"
       end);
    if Option.is_none t.migration_done_at
       && Option.is_some t.reconfig_committed_at
    then
      if
        List.for_all
          (fun id ->
            match t.nodes.(id) with
            | Some ns -> Option.is_some (N.committed_config ns.node)
            | None -> false)
          t.p.new_nodes
      then begin
        t.migration_done_at <- Some (Net.now t.net);
        trace_milestone ~node:(-1) ~config_id:1 "migration-done";
        (* Only now do the removed servers shut down: they keep relaying
           until every member of the new configuration is functional. *)
        List.iter
          (fun id ->
            if not (List.mem id t.p.new_nodes) then Net.crash t.net id)
          t.p.old_nodes
      end

  let preloaded_persistent preload =
    let persistent = N.fresh_persistent () in
    persistent.N.term <- 1;
    for _ = 1 to preload do
      Log.append persistent.N.log
        { N.term = 1; data = N.Cmd (Command.noop internal_id) }
    done;
    persistent

  let run (p : params) : result =
    let net =
      Net.create ~seed:p.net_cfg.seed ~latency:p.net_cfg.latency_ms
        ~egress_bw:p.net_cfg.egress_bw ~num_nodes:p.net_cfg.n ()
    in
    let t =
      {
        p;
        net;
        nodes = Array.make p.net_cfg.n None;
        reconfig_requested = false;
        proposed_to = None;
        reconfig_committed_at = None;
        migration_done_at = None;
      }
    in
    List.iter
      (fun id ->
        let (_ : node_state) =
          make_node t ~id ~voters:p.old_nodes
            ~persistent:(preloaded_persistent p.preload)
        in
        ())
      p.old_nodes;
    let rec tick_loop () =
      Net.schedule net ~delay:p.net_cfg.tick_ms (fun () ->
          Array.iteri
            (fun id -> function
              | Some ns when Net.is_up net id -> N.tick ns.node
              | Some _ | None -> ())
            t.nodes;
          drive_reconfig t;
          check_progress t;
          tick_loop ())
    in
    tick_loop ();
    schedule_faults net p.faults;
    let io_samples = ref [] in
    start_io_sampler net io_samples;
    let client =
      Client.start ~retry_ms:(4.0 *. p.net_cfg.election_timeout_ms)
        ~poll_ms:p.net_cfg.tick_ms ~cp:p.cp
        {
          Client.now = (fun () -> Net.now net);
          decided = (fun () -> decided_total t);
          leader = (fun () -> leader t);
          propose_batch =
            (fun ~leader ~first_id ~count ->
              propose_batch t ~leader ~first_id ~count);
          schedule = (fun ~delay f -> Net.schedule net ~delay f);
        }
    in
    Net.schedule net ~delay:p.reconfigure_at (fun () ->
        t.reconfig_requested <- true);
    Net.run_until net p.total_ms;
    Client.stop client;
    {
      series = Client.series client;
      io_series = List.rev !io_samples;
      reconfig_committed_at = t.reconfig_committed_at;
      migration_done_at = t.migration_done_at;
      leader_changes = Client.leader_changes client;
      decided = Client.decided client;
    }
end
