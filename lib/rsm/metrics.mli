(** Measurement utilities for the experiments: decided-count time series and
    the small-sample statistics used in the paper's figures (mean and 95%
    confidence interval via the t-distribution). *)

module Series : sig
  (** Cumulative decided-count samples over simulated time. *)
  type t

  val create : unit -> t
  val push : t -> time:float -> count:int -> unit
  val length : t -> int

  val count_at : t -> float -> int
  (** Cumulative count of the last sample at or before the given time: a
      sample stamped exactly at the query time is included. 0 on an empty
      series or before the first sample. *)

  val total_between : t -> from:float -> until:float -> int
  (** Count over the half-open window (from, until]: a sample exactly at
      [from] belongs to the preceding window, one exactly at [until] to
      this one, so adjacent windows never double-count. 0 when
      [until <= from] or the series is empty. *)

  val longest_gap : t -> from:float -> until:float -> float
  (** Longest interval within [from, until] during which no new decided
      replies arrived — the paper's down-time metric. Progress samples
      exactly at [from] or [until] bound the gap. 0 when [until <= from];
      [until -. from] when the window contains no progress at all (in
      particular on an empty series). *)

  val windowed : t -> from:float -> until:float -> window:float -> (float * int) list
  (** Decided count per window, as (window start, count) pairs. *)
end

module Stats : sig
  val mean : float list -> float
  val stddev : float list -> float
  (** Sample standard deviation (n-1). *)

  val t_value : df:int -> float
  (** Two-tailed 97.5% t-value (normal approximation beyond df = 30). *)

  val ci95 : float list -> float
  (** Half-width of the 95% confidence interval. *)

  val mean_ci : float list -> float * float
end
