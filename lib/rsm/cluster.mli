(** Generic cluster driver: wires [n] protocol nodes into the simulated
    network, drives their tick timers, and exposes the closed-loop client
    of the paper's evaluation. *)

type config = {
  n : int;
  tick_ms : float;  (** driver tick; also the batch-flush cadence *)
  election_timeout_ms : float;
  latency_ms : float;  (** one-way link delay *)
  egress_bw : float;  (** per-node egress, bytes/ms; [infinity] = unlimited *)
  seed : int;
  batching : Omnipaxos.Batching.config;
      (** hot-path flush policy, threaded to every node *)
  compaction : Omnipaxos.Compaction.config;
      (** snapshot-and-trim trigger, threaded to every node *)
}

val default_config : config
(** 3 servers, 5 ms ticks, 50 ms election timeout, 0.1 ms latency (the
    paper's LAN RTT of 0.2 ms), unlimited bandwidth, seed 42, fixed
    batching, compaction disabled. *)

module Make (P : Protocol.PROTOCOL) : sig
  type t

  val create : config -> t
  (** Build the network, the [n] protocol nodes, and start the tick loop. *)

  val net : t -> P.msg Simnet.Net.t
  val node : t -> int -> P.t
  val now : t -> float
  val run_ms : t -> float -> unit

  val max_decided : t -> int
  (** The most advanced decided count across the cluster. *)

  val leader : t -> int option
  (** The node a client should talk to: among the self-declared leaders,
      the one that has decided the most (during partial partitions several
      servers can claim leadership; only one makes progress). *)

  val crash : t -> int -> unit
  (** Crash a node: handlers and in-flight traffic are dropped and ticks
      stop. The protocol instance is retained for {!recover}. *)

  val recover : t -> int -> unit
  (** Restart a crashed node under the fail-recovery model: the protocol is
      rebuilt from its persistent state ([Protocol.PROTOCOL.restart]) and
      re-wired into the network (sessions with reachable peers bump). *)

  val propose_at : t -> node:int -> Replog.Command.t -> bool
  (** Submit one arbitrary command at a specific server (the chaos
      campaign's KV workload path). Returns false if refused. *)

  val propose_batch : t -> leader:int -> first_id:int -> count:int -> int
  (** Submit no-op commands with consecutive ids at [leader]; returns how
      many were accepted. *)

  val start_client : ?retry_ms:float -> t -> cp:int -> Client.t
  (** Start the closed-loop client with [cp] concurrent proposals.
      [retry_ms] defaults to four election timeouts. *)
end
