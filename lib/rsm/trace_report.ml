(** Post-hoc analysis of a recorded trace-event stream: per-kind counts,
    leadership and decide-progress summaries, and the trace-driven
    invariants. Used by the [opx trace] subcommand and the tests. *)

type summary = {
  events : int;
  span_ms : float;  (** time of last event minus time of first *)
  by_kind : (string * int) list;  (** sorted by kind name *)
  nodes : int list;  (** emitting nodes, ascending (harness milestones: -1) *)
  leader_changes : int;  (** leader_elected + leader_changed events *)
  decides : int;
  max_decided_idx : int;
  decide_gap : Obs.Metric.Histogram.t;
      (** ms between consecutive decide events, cluster-wide *)
  violations : (string * Obs.Invariant.violation list) list;
      (** one entry per invariant with a non-empty violation list *)
}

let summarize (events : Obs.Event.t list) =
  let by_kind = Hashtbl.create 24 in
  let nodes = Hashtbl.create 16 in
  let leader_changes = ref 0 in
  let decides = ref 0 in
  let max_decided = ref 0 in
  let gaps = Obs.Metric.Histogram.create () in
  let last_decide = ref None in
  let first_t = ref nan and last_t = ref nan in
  List.iter
    (fun (e : Obs.Event.t) ->
      if Float.is_nan !first_t then first_t := e.time;
      last_t := e.time;
      let k = Obs.Event.kind_name e.kind in
      Hashtbl.replace by_kind k
        (1 + Option.value (Hashtbl.find_opt by_kind k) ~default:0);
      Hashtbl.replace nodes e.node ();
      match e.kind with
      | Obs.Event.Leader_elected _ | Obs.Event.Leader_changed _ ->
          incr leader_changes
      | Obs.Event.Decided { decided_idx; _ } ->
          incr decides;
          if decided_idx > !max_decided then max_decided := decided_idx;
          (match !last_decide with
          | Some t0 -> Obs.Metric.Histogram.observe gaps (e.time -. t0)
          | None -> ());
          last_decide := Some e.time
      (* Counting pass: kinds without a dedicated tally only feed [by_kind]. *)
      | _ [@lint.allow "D4"] -> ())
    events;
  let violations =
    List.filter_map
      (fun (name, r) ->
        match r with Ok () -> None | Error v -> Some (name, [ v ]))
      (Obs.Invariant.check_all events)
  in
  {
    events = List.length events;
    span_ms = (if Float.is_nan !first_t then 0.0 else !last_t -. !first_t);
    by_kind = Replog.Det.sorted_bindings ~compare_key:String.compare by_kind;
    nodes = Replog.Det.sorted_keys ~compare_key:Int.compare nodes;
    leader_changes = !leader_changes;
    decides = !decides;
    max_decided_idx = !max_decided;
    decide_gap = gaps;
    violations;
  }

let passed s = List.is_empty s.violations

(** Mean decide gap with a 95% t-based confidence interval, composing the
    histogram's exact moments with [Metrics.Stats]. [nan]s when there are
    fewer than two gaps. *)
let decide_gap_ci s =
  let h = s.decide_gap in
  let n = Obs.Metric.Histogram.count h in
  if n < 2 then (Float.nan, Float.nan)
  else
    let mean = Obs.Metric.Histogram.mean h in
    let sd = Obs.Metric.Histogram.stddev h in
    let ci =
      Metrics.Stats.t_value ~df:(n - 1) *. sd /. sqrt (float_of_int n)
    in
    (mean, ci)

let pp ppf s =
  Format.fprintf ppf "@[<v>events: %d over %.1f ms (nodes:" s.events s.span_ms;
  List.iter (fun i -> Format.fprintf ppf " %d" i) s.nodes;
  Format.fprintf ppf ")@,";
  List.iter
    (fun (k, c) -> Format.fprintf ppf "  %-18s %d@," k c)
    s.by_kind;
  Format.fprintf ppf "leader changes: %d@," s.leader_changes;
  Format.fprintf ppf "decide events: %d (max decided idx %d)@," s.decides
    s.max_decided_idx;
  (let mean, ci = decide_gap_ci s in
   if not (Float.is_nan mean) then
     Format.fprintf ppf "decide gap: %.2f +/- %.2f ms (p99 %.1f ms)@," mean ci
       (Obs.Metric.Histogram.percentile s.decide_gap ~p:99.0));
  (match s.violations with
  | [] -> Format.fprintf ppf "invariants: PASS"
  | vs ->
      Format.fprintf ppf "invariants: FAIL";
      List.iter
        (fun (name, viols) ->
          List.iter
            (fun v ->
              Format.fprintf ppf "@,  %s: %a" name Obs.Invariant.pp_violation
                v)
            viols)
        vs);
  Format.fprintf ppf "@]"
