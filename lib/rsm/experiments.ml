(** The paper's evaluation experiments (§7), one runner per figure/table.
    Each function runs full clusters on the simulated network and returns the
    rows the corresponding figure plots. Durations, log sizes and bandwidth
    are scaled down from the paper's GCP testbed (see DESIGN.md §1); the
    comparative shapes are what these runners reproduce. *)

module Net = Simnet.Net

type scenario_kind = Quorum_loss | Constrained | Chained

let scenario_name = function
  | Quorum_loss -> "quorum-loss"
  | Constrained -> "constrained"
  | Chained -> "chained"

(* Latency assignment for the WAN setting of §7.1: the paper places the
   leader in us-central1 with followers in europe-west1 (105 ms RTT) and
   asia-northeast1 (145 ms RTT). The highest node id gets us-central so that
   protocols that favour the max ballot elect the "us" server. *)
let apply_wan_latencies net ~n =
  let region i =
    if i = n - 1 then `Us
    else if i < (n - 1) / 2 then `Asia
    else `Eu
  in
  let one_way a b =
    match (region a, region b) with
    | `Us, `Us | `Eu, `Eu | `Asia, `Asia -> 0.25
    | `Us, `Eu | `Eu, `Us -> 52.5
    | `Us, `Asia | `Asia, `Us -> 72.5
    | `Eu, `Asia | `Asia, `Eu -> 110.0
  in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      Net.set_latency net a b (one_way a b)
    done
  done

type throughput_point = {
  tp_protocol : string;
  tp_n : int;
  tp_setting : string;
  tp_cp : int;
  tp_mean : float;  (** decided requests per second *)
  tp_ci : float;
  tp_ble_io_pct : float;  (** share of total IO spent on BLE heartbeats *)
}

type downtime_point = {
  dt_protocol : string;
  dt_timeout_ms : float;
  dt_downtime_ms : float;
  dt_ci : float;
  dt_deadlocked : bool;  (** no recovery before the partition healed *)
  dt_leader_changes : float;
}

type chained_point = {
  ch_protocol : string;
  ch_duration_ms : float;
  ch_decided : float;
  ch_ci : float;
  ch_leader_changes : float;
}

(* One fully-instrumented normal-execution run: rate plus the client-visible
   latency distribution and the network-level message/byte volume. *)
type run_sample = {
  rs_rate : float;  (** decided requests per second *)
  rs_p50_ms : float;
  rs_p99_ms : float;
  rs_io_bytes : int;  (** total bytes sent across the cluster *)
  rs_msgs : int;  (** messages delivered across the cluster *)
}

type policy_point = {
  bp_protocol : string;
  bp_policy : string;  (** {!Omnipaxos.Batching.name} of the config *)
  bp_cp : int;
  bp_rate_mean : float;
  bp_rate_ci : float;
  bp_p50_ms : float;  (** mean across seeds *)
  bp_p99_ms : float;
  bp_io_bytes : int;  (** mean across seeds *)
  bp_msgs : int;
}

type catch_up_point = {
  cu_lag : int;  (** decided-index entries the follower missed *)
  cu_ms : float;  (** recovery-to-frontier latency, simulated ms *)
  cu_bytes : int;  (** bytes delivered to the follower during catch-up *)
  cu_caught : bool;  (** false = fuel ran out before reaching the frontier *)
  cu_installed : bool;  (** the repair went through a snapshot install *)
}

module Run (P : Protocol.PROTOCOL) = struct
  module C = Cluster.Make (P)

  let total_io c =
    let sum = ref 0 in
    for i = 0 to Net.num_nodes (C.net c) - 1 do
      sum := !sum + Net.bytes_sent (C.net c) i
    done;
    !sum

  (* One normal-execution run; returns decided/s and total IO bytes. The
     client retry fuse is generous: under full connectivity a retry would
     only duplicate a slow pipeline's load. *)
  let throughput cfg ~wan ~cp ~warmup_ms ~duration_ms =
    let c = C.create cfg in
    if wan then apply_wan_latencies (C.net c) ~n:cfg.Cluster.n;
    let client =
      C.start_client ~retry_ms:(20.0 *. cfg.Cluster.election_timeout_ms) c ~cp
    in
    C.run_ms c (warmup_ms +. duration_ms);
    Client.stop client;
    let series = Client.series client in
    let decided =
      Metrics.Series.total_between series ~from:warmup_ms
        ~until:(warmup_ms +. duration_ms)
    in
    (float_of_int decided /. (duration_ms /. 1000.0), total_io c)

  (* Like [throughput], but also reports the client-visible latency
     percentiles (warmup samples discarded) and the message volume. *)
  let throughput_sample cfg ~wan ~cp ~warmup_ms ~duration_ms =
    let c = C.create cfg in
    if wan then apply_wan_latencies (C.net c) ~n:cfg.Cluster.n;
    let client =
      C.start_client ~retry_ms:(20.0 *. cfg.Cluster.election_timeout_ms) c ~cp
    in
    Net.schedule (C.net c) ~delay:warmup_ms (fun () ->
        Client.reset_latency client);
    C.run_ms c (warmup_ms +. duration_ms);
    Client.stop client;
    let series = Client.series client in
    let decided =
      Metrics.Series.total_between series ~from:warmup_ms
        ~until:(warmup_ms +. duration_ms)
    in
    let lat = Client.latency client in
    {
      rs_rate = float_of_int decided /. (duration_ms /. 1000.0);
      rs_p50_ms = Obs.Metric.Histogram.percentile lat ~p:50.0;
      rs_p99_ms = Obs.Metric.Histogram.percentile lat ~p:99.0;
      rs_io_bytes = total_io c;
      rs_msgs = Net.messages_delivered (C.net c);
    }

  (* One partial-connectivity run; returns (down-time ms, decided during the
     partition, leader changes). *)
  let partition cfg ~kind ~partition_ms ~cp =
    let c = C.create cfg in
    let timeout = cfg.Cluster.election_timeout_ms in
    let warmup = Float.max 1000.0 (20.0 *. timeout) in
    let client = C.start_client c ~cp in
    (* For the constrained scenario the QC server must lag: cut its link to
       the leader half a timeout before the full partition. *)
    let pre_cut = warmup -. (timeout /. 2.0) in
    let picked = ref None in
    (match kind with
    | Constrained ->
        Net.schedule (C.net c) ~delay:pre_cut (fun () ->
            match C.leader c with
            | Some leader ->
                let qc = if leader = 0 then 1 else 0 in
                picked := Some (qc, leader);
                Net.set_link (C.net c) qc leader false
            | None -> ())
    | Quorum_loss | Chained -> ());
    Net.schedule (C.net c) ~delay:warmup (fun () ->
        match kind with
        | Quorum_loss ->
            let leader = Option.value (C.leader c) ~default:0 in
            let hub = if leader = 0 then 1 else 0 in
            Scenario.quorum_loss (C.net c) ~hub
        | Constrained -> (
            match !picked with
            | Some (qc, leader) -> Scenario.constrained (C.net c) ~qc ~leader
            | None -> ())
        | Chained ->
            (* With 3 servers, one cut link forms the chain of Figure 1c;
               with more servers, form a full chain with the leader at one
               end, leaving no fully-connected server. *)
            let leader = Option.value (C.leader c) ~default:0 in
            if cfg.Cluster.n <= 3 then begin
              let other = if leader = 0 then 1 else 0 in
              Scenario.chained (C.net c) ~a:leader ~b:other
            end
            else begin
              let rest =
                List.filter
                  (fun i -> i <> leader)
                  (List.init cfg.Cluster.n Fun.id)
              in
              Scenario.chain_of (C.net c) ~order:(leader :: rest)
            end);
    Net.schedule (C.net c) ~delay:(warmup +. partition_ms) (fun () ->
        Scenario.heal (C.net c));
    C.run_ms c (warmup +. partition_ms +. (10.0 *. timeout));
    Client.stop client;
    let series = Client.series client in
    let downtime =
      Metrics.Series.longest_gap series ~from:warmup
        ~until:(warmup +. partition_ms)
    in
    let decided =
      Metrics.Series.total_between series ~from:warmup
        ~until:(warmup +. partition_ms)
    in
    (downtime, decided, Client.leader_changes client)

  (* Lagging-follower repair cost (the compaction bench): crash a follower,
     decide [entries] more commands without it, stop the workload, recover
     it and measure how long and how many delivered bytes it takes to reach
     the frontier again. With compaction on the repair is a snapshot
     install (O(state) bytes); with it off the whole missed suffix is
     re-shipped entry by entry (O(log) bytes). *)
  let catch_up cfg ~cp ~entries =
    let c = C.create cfg in
    let timeout = cfg.Cluster.election_timeout_ms in
    let client = C.start_client c ~cp in
    C.run_ms c (8.0 *. timeout);
    let leader = Option.value (C.leader c) ~default:0 in
    let follower = (leader + 1) mod cfg.Cluster.n in
    C.crash c follower;
    let base = P.decided_index (C.node c follower) in
    let target = base + entries in
    let fuel = ref 4_000 in
    while P.decided_index (C.node c leader) < target && !fuel > 0 do
      decr fuel;
      C.run_ms c 20.0
    done;
    Client.stop client;
    (* Drain in-flight proposals so the frontier is fixed before the
       follower comes back: the catch-up window then measures repair
       traffic only, not fresh replication. *)
    C.run_ms c (4.0 *. timeout);
    let frontier = P.decided_index (C.node c leader) in
    let t0 = C.now c in
    let b0 = Net.bytes_delivered_at (C.net c) follower in
    C.recover c follower;
    let fuel = ref 4_000 in
    while P.decided_index (C.node c follower) < frontier && !fuel > 0 do
      decr fuel;
      C.run_ms c (timeout /. 5.0)
    done;
    {
      cu_lag = frontier - base;
      cu_ms = C.now c -. t0;
      cu_bytes = Net.bytes_delivered_at (C.net c) follower - b0;
      cu_caught = P.decided_index (C.node c follower) >= frontier;
      cu_installed = Option.is_some (P.last_install (C.node c follower));
    }
end

module Omni_run = Run (Omni_adapter)
module Raft_run = Run (Raft_adapter.Plain)
module Raft_pvcq_run = Run (Raft_adapter.Pv_cq)
module Multipaxos_run = Run (Multipaxos_adapter)
module Vr_run = Run (Vr_adapter)

(* First-class dispatch over the protocol set of the evaluation. *)
type proto_runner = {
  pr_name : string;
  pr_throughput :
    Cluster.config ->
    wan:bool ->
    cp:int ->
    warmup_ms:float ->
    duration_ms:float ->
    float * int;
  pr_partition :
    Cluster.config ->
    kind:scenario_kind ->
    partition_ms:float ->
    cp:int ->
    float * int * int;
  pr_sample :
    Cluster.config ->
    wan:bool ->
    cp:int ->
    warmup_ms:float ->
    duration_ms:float ->
    run_sample;
  pr_catch_up : Cluster.config -> cp:int -> entries:int -> catch_up_point;
}

let omni_runner =
  {
    pr_name = Omni_adapter.name;
    pr_throughput = Omni_run.throughput;
    pr_partition = Omni_run.partition;
    pr_sample = Omni_run.throughput_sample;
    pr_catch_up = Omni_run.catch_up;
  }

let raft_runner =
  {
    pr_name = Raft_adapter.Plain.name;
    pr_throughput = Raft_run.throughput;
    pr_partition = Raft_run.partition;
    pr_sample = Raft_run.throughput_sample;
    pr_catch_up = Raft_run.catch_up;
  }

let raft_pvcq_runner =
  {
    pr_name = Raft_adapter.Pv_cq.name;
    pr_throughput = Raft_pvcq_run.throughput;
    pr_partition = Raft_pvcq_run.partition;
    pr_sample = Raft_pvcq_run.throughput_sample;
    pr_catch_up = Raft_pvcq_run.catch_up;
  }

let multipaxos_runner =
  {
    pr_name = Multipaxos_adapter.name;
    pr_throughput = Multipaxos_run.throughput;
    pr_partition = Multipaxos_run.partition;
    pr_sample = Multipaxos_run.throughput_sample;
    pr_catch_up = Multipaxos_run.catch_up;
  }

let vr_runner =
  {
    pr_name = Vr_adapter.name;
    pr_throughput = Vr_run.throughput;
    pr_partition = Vr_run.partition;
    pr_sample = Vr_run.throughput_sample;
    pr_catch_up = Vr_run.catch_up;
  }

let all_protocols =
  [ omni_runner; raft_runner; raft_pvcq_runner; vr_runner; multipaxos_runner ]

(* BLE's analytical IO volume: one request and one reply per peer pair per
   heartbeat round (§7.1's overhead claim). *)
let ble_io_bytes ~n ~duration_ms ~timeout_ms =
  let rounds = duration_ms /. timeout_ms in
  rounds *. float_of_int (n * (n - 1) * (12 + 29))

(** Figure 7: regular execution. *)
let normal_execution ?(protocols = [ omni_runner; raft_runner; multipaxos_runner ])
    ?(seeds = [ 1; 2; 3 ]) ?(duration_ms = 4000.0) ?(warmup_ms = 2000.0)
    ?(egress_bw = 20_000.0) ?(cps = [ 500; 5000; 50_000 ])
    ?(cluster_sizes = [ 3; 5 ]) ?(settings = [ false; true ]) () =
  List.concat_map
    (fun wan ->
      List.concat_map
        (fun n ->
          List.concat_map
            (fun cp ->
              List.map
                (fun pr ->
                  let timeout = if wan then 1000.0 else 50.0 in
                  (* Elections (and the client finding the leader) take a
                     few timeouts, so the warmup scales with the timeout. *)
                  let warmup_ms = Float.max warmup_ms (8.0 *. timeout) in
                  let samples =
                    List.map
                      (fun seed ->
                        let cfg =
                          {
                            Cluster.default_config with
                            n;
                            seed;
                            egress_bw;
                            election_timeout_ms = timeout;
                          }
                        in
                        pr.pr_throughput cfg ~wan ~cp ~warmup_ms ~duration_ms)
                      seeds
                  in
                  let rates = List.map fst samples in
                  let io = List.map snd samples in
                  let mean, ci = Metrics.Stats.mean_ci rates in
                  let avg_io =
                    List.fold_left ( + ) 0 io / List.length io
                  in
                  let ble_pct =
                    if pr.pr_name = Omni_adapter.name && avg_io > 0 then
                      100.0
                      *. ble_io_bytes ~n
                           ~duration_ms:(warmup_ms +. duration_ms)
                           ~timeout_ms:timeout
                      /. float_of_int avg_io
                    else 0.0
                  in
                  {
                    tp_protocol = pr.pr_name;
                    tp_n = n;
                    tp_setting = (if wan then "WAN" else "LAN");
                    tp_cp = cp;
                    tp_mean = mean;
                    tp_ci = ci;
                    tp_ble_io_pct = ble_pct;
                  })
                protocols)
            cps)
        cluster_sizes)
    settings

(** Figures 8a and 8b: down-time under the quorum-loss and constrained
    election scenarios. *)
let partition_downtime ?(protocols = all_protocols) ?(seeds = [ 1; 2; 3 ])
    ?(timeouts_ms = [ 50.0; 500.0; 5000.0 ]) ?(partition_ms = 60_000.0)
    ?(cp = 200) ~kind () =
  List.concat_map
    (fun timeout_ms ->
      List.map
        (fun pr ->
          let samples =
            List.map
              (fun seed ->
                let cfg =
                  {
                    Cluster.default_config with
                    n = 5;
                    seed;
                    election_timeout_ms = timeout_ms;
                    tick_ms = Float.max 1.0 (timeout_ms /. 10.0);
                  }
                in
                pr.pr_partition cfg ~kind ~partition_ms ~cp)
              seeds
          in
          let downs = List.map (fun (d, _, _) -> d) samples in
          let changes = List.map (fun (_, _, c) -> float_of_int c) samples in
          let mean, ci = Metrics.Stats.mean_ci downs in
          {
            dt_protocol = pr.pr_name;
            dt_timeout_ms = timeout_ms;
            dt_downtime_ms = mean;
            dt_ci = ci;
            dt_deadlocked = mean >= 0.95 *. partition_ms;
            dt_leader_changes = Metrics.Stats.mean changes;
          })
        protocols)
    timeouts_ms

(** Figure 8c: decided requests during the chained scenario. *)
let chained_throughput ?(protocols = all_protocols) ?(seeds = [ 1; 2 ])
    ?(durations_ms = [ 30_000.0; 60_000.0; 120_000.0 ]) ?(timeout_ms = 50.0)
    ?(cp = 200) () =
  List.concat_map
    (fun duration_ms ->
      List.map
        (fun pr ->
          let samples =
            List.map
              (fun seed ->
                let cfg =
                  {
                    Cluster.default_config with
                    n = 3;
                    seed;
                    election_timeout_ms = timeout_ms;
                  }
                in
                pr.pr_partition cfg ~kind:Chained ~partition_ms:duration_ms
                  ~cp)
              seeds
          in
          let decided = List.map (fun (_, d, _) -> float_of_int d) samples in
          let changes = List.map (fun (_, _, c) -> float_of_int c) samples in
          let mean, ci = Metrics.Stats.mean_ci decided in
          {
            ch_protocol = pr.pr_name;
            ch_duration_ms = duration_ms;
            ch_decided = mean;
            ch_ci = ci;
            ch_leader_changes = Metrics.Stats.mean changes;
          })
        protocols)
    durations_ms

(** Figure 9: reconfiguration. Returns (omni, raft) results. The [cp]
    values are scaled 10x down from the paper's (500 ~ paper's 5k,
    5000 ~ paper's 50k) to match the scaled-down egress bandwidth. *)
let reconfiguration ?(seed = 7) ?(preload = 1_000_000) ?(cp = 500)
    ?(egress_bw = 1000.0) ?(replace_majority = false) ?(total_ms = 90_000.0)
    ?(reconfigure_at = 20_000.0) () =
  let new_nodes =
    if replace_majority then [ 0; 1; 5; 6; 7 ] else [ 0; 1; 2; 3; 5 ]
  in
  let params =
    {
      Reconfig.net_cfg =
        {
          Cluster.default_config with
          n = 8;
          seed;
          egress_bw;
          election_timeout_ms = 250.0;
        };
      old_nodes = [ 0; 1; 2; 3; 4 ];
      new_nodes;
      preload;
      cp;
      reconfigure_at;
      total_ms;
      segment_entries = 25_000;
      faults = [];
    }
  in
  let omni = Reconfig.Omni.run params in
  let raft = Reconfig.Raft_runner.run params in
  (params, omni, raft)

(** Table 1: the partial-connectivity matrix, derived from actual runs. *)
type table1_row = {
  t1_protocol : string;
  t1_quorum_loss : bool;  (** stable progress *)
  t1_constrained : bool;
  t1_chained : bool;
}

let table1 ?(seeds = [ 1; 2 ]) ?(partition_ms = 30_000.0) ?(cp = 50) () =
  let timeout = 50.0 in
  let survives pr kind =
    (* Stable progress: the protocol recovered well before the partition
       healed and — for the chained scenario, run as a 5-server chain with
       no fully-connected server — sustained near-baseline throughput
       (a livelock of repeated leader changes shows up as a large deficit
       even though some entries are decided between elections). *)
    List.for_all
      (fun seed ->
        let cfg =
          {
            Cluster.default_config with
            n = 5;
            seed;
            election_timeout_ms = timeout;
          }
        in
        let downtime, decided, _ =
          pr.pr_partition cfg ~kind ~partition_ms ~cp
        in
        downtime < 0.5 *. partition_ms
        &&
        if (match kind with Chained -> true | Quorum_loss | Constrained -> false)
        then begin
          let baseline_rate, _ =
            pr.pr_throughput cfg ~wan:false ~cp ~warmup_ms:1000.0
              ~duration_ms:2000.0
          in
          float_of_int decided
          >= 0.6 *. baseline_rate *. (partition_ms /. 1000.0)
        end
        else true)
      seeds
  in
  List.map
    (fun pr ->
      {
        t1_protocol = pr.pr_name;
        t1_quorum_loss = survives pr Quorum_loss;
        t1_constrained = survives pr Constrained;
        t1_chained = survives pr Chained;
      })
    all_protocols

(* ------------------------------------------------------------------ *)
(* Traced runs (the [opx trace] subcommand)                            *)
(* ------------------------------------------------------------------ *)

type traced_run = {
  tr_kind : scenario_kind;
  tr_events : Obs.Event.t list;
  tr_dropped : int;  (* ring-overflow losses during recording *)
  tr_dropped_by_kind : (string * int) list;  (* the losses per event kind *)
  tr_downtime_ms : float;
  tr_decided : int;
}

(** One recorded partial-connectivity run per scenario: the run executes
    with the tracer enabled into an in-memory ring and returns the full
    event stream alongside the usual outcome numbers. *)
let traced_scenarios ?(pr = omni_runner) ?(seed = 1) ?(n = 5)
    ?(timeout_ms = 50.0) ?(partition_ms = 5_000.0) ?(cp = 50) () =
  List.map
    (fun kind ->
      let cfg =
        {
          Cluster.default_config with
          n;
          seed;
          election_timeout_ms = timeout_ms;
        }
      in
      let (downtime, decided, _), recording =
        Obs.Trace.with_recording (fun () ->
            pr.pr_partition cfg ~kind ~partition_ms ~cp)
      in
      {
        tr_kind = kind;
        tr_events = recording.Obs.Trace.events;
        tr_dropped = recording.Obs.Trace.dropped;
        tr_dropped_by_kind = recording.Obs.Trace.dropped_by_kind;
        tr_downtime_ms = downtime;
        tr_decided = decided;
      })
    [ Quorum_loss; Constrained; Chained ]

(* ------------------------------------------------------------------ *)
(* Recovery latency (health-monitor methodology; EXPERIMENTS.md)       *)
(* ------------------------------------------------------------------ *)

type recovery_point = {
  rl_protocol : string;
  rl_timeout_ms : float;
  rl_detect_ms : float option;
      (** fault to the first leadership reaction anywhere in the cluster
          (ballot increment, prepare round, or an observed leader change) *)
  rl_first_decide_ms : float option;
      (** health monitor: fault to the first post-fault advance of the
          cluster-wide decided index *)
  rl_reelect_ms : float option;
      (** fault to the first decide under a ballot other than the pre-fault
          leader's — the moment the cluster has re-elected and resumed
          deciding under the new leader *)
  rl_stall_ms : float;
      (** longest gap between advances of the cluster-wide decided index
          during the partition (from the trace's [Decided] events) — the
          protocol-level re-election stall, free of client poll/retry
          quantisation *)
  rl_stall_timeouts : float;  (** [rl_stall_ms] in election timeouts *)
  rl_within_4 : bool;
      (** the paper's yardstick: recovered within 4 election timeouts of
          the fault — re-elected and deciding ([rl_reelect_ms]) in time,
          or never stalled longer than that (no re-election needed) *)
  rl_leader_changes : int;
}

(* Longest gap between consecutive advances of the global decided index
   within [\[from_, until_\]]; advances outside the window only move the
   baseline. The tail gap (last advance to [until_]) counts, so a
   deadlocked run scores the whole window. *)
let decided_stall_ms events ~from_ ~until_ =
  let last = ref from_ and best = ref 0.0 and max_idx = ref (-1) in
  List.iter
    (fun (e : Obs.Event.t) ->
      match e.kind with
      | Obs.Event.Decided { decided_idx; _ } when decided_idx > !max_idx ->
          max_idx := decided_idx;
          if e.time >= from_ && e.time <= until_ then begin
            best := Float.max !best (e.time -. !last);
            last := e.time
          end
      | _ [@lint.allow "D4"] -> ())
    events;
  Float.max !best (until_ -. !last)

(** Fault-to-recovery latency in the chained scenario, per protocol: record
    a run, replay its event stream through the online health monitor for
    the fault-to-first-decide episode, scan it for the first leadership
    reaction after the cut, and take the longest decided-advance gap as the
    re-election stall. One seeded run per protocol — the recording is the
    measurement, so the numbers are deterministic and regression-gated
    (bench section "recovery"). *)
let recovery_latency ?(protocols = all_protocols) ?(seed = 1)
    ?(timeout_ms = 50.0) ?(partition_ms = 2_000.0) ?(cp = 50) () =
  List.map
    (fun pr ->
      let cfg =
        {
          Cluster.default_config with
          n = 3;
          seed;
          election_timeout_ms = timeout_ms;
        }
      in
      let (_client_gap_ms, _decided, leader_changes), recording =
        Obs.Trace.with_recording (fun () ->
            pr.pr_partition cfg ~kind:Chained ~partition_ms ~cp)
      in
      let events = recording.Obs.Trace.events in
      let fault_at =
        List.find_map
          (fun (e : Obs.Event.t) ->
            match e.kind with
            | Obs.Event.Link_cut _ | Obs.Event.Crashed -> Some e.time
            | _ [@lint.allow "D4"] -> None)
          events
      in
      let detect_ms =
        match fault_at with
        | None -> None
        | Some f ->
            List.find_map
              (fun (e : Obs.Event.t) ->
                if e.time <= f then None
                else
                  match e.kind with
                  | Obs.Event.Ballot_increment _ | Obs.Event.Prepare_round _
                  | Obs.Event.Leader_elected _ | Obs.Event.Leader_changed _
                    ->
                      Some (e.time -. f)
                  | _ [@lint.allow "D4"] -> None)
              events
      in
      let monitor =
        Obs.Health.run
          (Obs.Health.default_config ~n:cfg.Cluster.n
             ~election_timeout_ms:timeout_ms)
          events
      in
      let first_decide_ms =
        match Obs.Health.recoveries monitor with
        | r :: _ -> Obs.Health.recovery_latency r
        | [] -> None
      in
      let stall_ms =
        match fault_at with
        | Some f -> decided_stall_ms events ~from_:f ~until_:(f +. partition_ms)
        | None -> partition_ms
      in
      let ballot_equal (a : Obs.Event.ballot) (b : Obs.Event.ballot) =
        a.Obs.Event.n = b.Obs.Event.n
        && a.Obs.Event.prio = b.Obs.Event.prio
        && a.Obs.Event.pid = b.Obs.Event.pid
      in
      let reelect_ms =
        match fault_at with
        | None -> None
        | Some f ->
            (* Ballot in force when the fault hit: the last decide before
               it. A decide under any other ballot afterwards means a new
               leader won Prepare and is deciding. *)
            let pre =
              List.fold_left
                (fun acc (e : Obs.Event.t) ->
                  match e.kind with
                  | Obs.Event.Decided { b; _ } when e.time <= f -> Some b
                  | _ [@lint.allow "D4"] -> acc)
                None events
            in
            List.find_map
              (fun (e : Obs.Event.t) ->
                if e.time <= f then None
                else
                  match e.kind with
                  | Obs.Event.Decided { b; _ }
                    when not
                           (match pre with
                           | Some p -> ballot_equal p b
                           | None -> false) ->
                      Some (e.time -. f)
                  | _ [@lint.allow "D4"] -> None)
              events
      in
      {
        rl_protocol = pr.pr_name;
        rl_timeout_ms = timeout_ms;
        rl_detect_ms = detect_ms;
        rl_first_decide_ms = first_decide_ms;
        rl_reelect_ms = reelect_ms;
        rl_stall_ms = stall_ms;
        rl_stall_timeouts = stall_ms /. timeout_ms;
        rl_within_4 =
          (match reelect_ms with
          | Some v -> v <= 4.0 *. timeout_ms
          | None -> stall_ms <= 4.0 *. timeout_ms);
        rl_leader_changes = leader_changes;
      })
    protocols

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices called out in DESIGN.md             *)
(* ------------------------------------------------------------------ *)

module No_qc_run = Run (Omni_adapter.No_qc_signal)
module Conn_prio_run = Run (Omni_adapter.Connectivity_priority)

let no_qc_runner =
  {
    pr_name = Omni_adapter.No_qc_signal.name;
    pr_throughput = No_qc_run.throughput;
    pr_partition = No_qc_run.partition;
    pr_sample = No_qc_run.throughput_sample;
    pr_catch_up = No_qc_run.catch_up;
  }

let conn_prio_runner =
  {
    pr_name = Omni_adapter.Connectivity_priority.name;
    pr_throughput = Conn_prio_run.throughput;
    pr_partition = Conn_prio_run.partition;
    pr_sample = Conn_prio_run.throughput_sample;
    pr_catch_up = Conn_prio_run.catch_up;
  }

(** Ablation: the QC flag in heartbeats. Without it the quorum-loss
    scenario must deadlock (Table 1's "QC status heartbeats" column). *)
let ablation_qc_signal ?(seeds = [ 1; 2 ]) ?(timeout_ms = 50.0)
    ?(partition_ms = 20_000.0) ?(cp = 50) () =
  partition_downtime
    ~protocols:[ omni_runner; no_qc_runner ]
    ~seeds ~timeouts_ms:[ timeout_ms ] ~partition_ms ~cp ~kind:Quorum_loss ()

(** Fixed vs adaptive flush policy across the protocol set, Figure-7-style
    LAN setup (same seeds for both policies, so rows are directly
    comparable). Under load the adaptive policy's size-triggered flush cuts
    the replication latency from O(tick) to O(RTT), which with a closed
    loop lifts throughput; ack coalescing trades a little decide latency
    for fewer follower->leader messages. *)
let batching_comparison
    ?(protocols = [ omni_runner; raft_runner; multipaxos_runner; vr_runner ])
    ?(policies = [ Omnipaxos.Batching.fixed; Omnipaxos.Batching.adaptive ])
    ?(seeds = [ 1; 2; 3 ]) ?(cp = 5000) ?(warmup_ms = 1000.0)
    ?(duration_ms = 3000.0) ?(egress_bw = 20_000.0) () =
  List.concat_map
    (fun pr ->
      List.map
        (fun policy ->
          let samples =
            List.map
              (fun seed ->
                let cfg =
                  {
                    Cluster.default_config with
                    n = 3;
                    seed;
                    egress_bw;
                    batching = policy;
                  }
                in
                pr.pr_sample cfg ~wan:false ~cp ~warmup_ms ~duration_ms)
              seeds
          in
          let mean_of f = Metrics.Stats.mean (List.map f samples) in
          let rate_mean, rate_ci =
            Metrics.Stats.mean_ci (List.map (fun s -> s.rs_rate) samples)
          in
          {
            bp_protocol = pr.pr_name;
            bp_policy = Omnipaxos.Batching.name policy;
            bp_cp = cp;
            bp_rate_mean = rate_mean;
            bp_rate_ci = rate_ci;
            bp_p50_ms = mean_of (fun s -> s.rs_p50_ms);
            bp_p99_ms = mean_of (fun s -> s.rs_p99_ms);
            bp_io_bytes =
              int_of_float
                (mean_of (fun s -> float_of_int s.rs_io_bytes));
            bp_msgs =
              int_of_float (mean_of (fun s -> float_of_int s.rs_msgs));
          })
        policies)
    protocols

(** Ablation: the leader's batch-flush cadence (the driver tick). Larger
    batches amortise headers but add decide latency; with a fixed number of
    concurrent proposals the latency bounds throughput. Returns
    (tick_ms, decided/s, approx latency ms) rows. *)
let ablation_batching ?(batching = Omnipaxos.Batching.fixed)
    ?(ticks_ms = [ 1.0; 5.0; 20.0 ]) ?(cp = 5000) ?(seed = 1)
    ?(duration_ms = 3000.0) () =
  List.map
    (fun tick_ms ->
      let cfg =
        {
          Cluster.default_config with
          n = 3;
          seed;
          tick_ms;
          egress_bw = 10_000.0;
          election_timeout_ms = Float.max 50.0 (10.0 *. tick_ms);
          batching;
        }
      in
      let rate, _ =
        omni_runner.pr_throughput cfg ~wan:false ~cp ~warmup_ms:1000.0
          ~duration_ms
      in
      let latency_ms = if rate > 0.0 then float_of_int cp /. rate *. 1000.0 else nan in
      (tick_ms, rate, latency_ms))
    ticks_ms

(** Ablation: migration segment size for the parallel log migration.
    Returns (segment_entries, migration duration ms) rows. *)
let ablation_segments ?(sizes = [ 2_000; 10_000; 50_000 ]) ?(seed = 5)
    ?(preload = 200_000) () =
  List.map
    (fun segment_entries ->
      let params =
        {
          Reconfig.net_cfg =
            {
              Cluster.default_config with
              n = 8;
              seed;
              egress_bw = 2_000.0;
              election_timeout_ms = 50.0;
            };
          old_nodes = [ 0; 1; 2; 3; 4 ];
          new_nodes = [ 0; 1; 2; 3; 5 ];
          preload;
          cp = 100;
          reconfigure_at = 2_000.0;
          total_ms = 30_000.0;
          segment_entries;
          faults = [];
        }
      in
      let r = Reconfig.Omni.run params in
      let duration =
        match r.Reconfig.migration_done_at with
        | Some t -> t -. params.reconfigure_at
        | None -> nan
      in
      (segment_entries, duration))
    sizes

(** The compaction bench: lagging-follower repair cost with and without
    snapshotting, per protocol. Each row crashes a follower, decides
    [entries] more commands without it, recovers it and reports the
    catch-up latency and the bytes shipped to it — O(state) when the
    snapshot-install path repairs it, O(log) when the whole missed suffix
    is replayed entry by entry. *)
let compaction_catch_up
    ?(protocols =
      [ omni_runner; raft_runner; multipaxos_runner; vr_runner ])
    ?(seed = 3) ?(entries = 10_000) ?(interval = 500) ?(retain = 64)
    ?(cp = 256) () =
  List.concat_map
    (fun pr ->
      List.map
        (fun compaction_on ->
          let cfg =
            {
              Cluster.default_config with
              n = 3;
              seed;
              compaction =
                (if compaction_on then
                   Omnipaxos.Compaction.make ~retain interval
                 else Omnipaxos.Compaction.disabled);
            }
          in
          (pr.pr_name, compaction_on, pr.pr_catch_up cfg ~cp ~entries))
        [ false; true ])
    protocols
