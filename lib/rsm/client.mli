(** Generic closed-loop client, the workload driver of the paper's
    evaluation: keeps [cp] concurrent proposals outstanding against whatever
    leader the callbacks expose, re-proposing after [retry_ms] without
    progress (commands stuck at a deposed or stopped leader are abandoned
    and re-issued with fresh ids). Records the cumulative decided count
    over simulated time and the number of leader changes it observed. *)

type callbacks = {
  now : unit -> float;
  decided : unit -> int;  (** monotone count of decided client commands *)
  leader : unit -> int option;
  propose_batch : leader:int -> first_id:int -> count:int -> int;
      (** submit up to [count] commands with consecutive ids starting at
          [first_id]; returns how many were accepted *)
  schedule : delay:float -> (unit -> unit) -> unit;
}

type t

val start : ?retry_ms:float -> poll_ms:float -> cp:int -> callbacks -> t
(** Start polling every [poll_ms]; [retry_ms] (default 200) is the
    no-progress interval after which outstanding proposals are abandoned
    and re-issued. *)

val stop : t -> unit
val series : t -> Metrics.Series.t
val leader_changes : t -> int
val decided : t -> int

val latency : t -> Obs.Metric.Histogram.t
(** Client-visible command latency (ms, simulated time), submission to
    decide, sampled at poll granularity. Commands abandoned by the retry
    path contribute no sample. *)

val reset_latency : t -> unit
(** Discard latency samples collected so far (e.g. after warmup). *)

(** Client-visible operation histories: the raw material of the chaos
    campaign's linearizability check (see [lib/chaos]). Every operation is
    recorded as an invocation, later matched by a response (with the result
    computed when the submission server applied it) or a timeout (the
    operation stays pending forever — it may or may not take effect). *)
module History : sig
  type event =
    | Invoke of {
        client : int;
        op_id : int;
        node : int;  (** server the operation was submitted to *)
        op : Replog.Command.op;
      }
    | Response of { client : int; op_id : int; result : Replog.Kv.result }
    | Timeout of { client : int; op_id : int }

  type entry = { h_time : float; h_event : event }
  type t

  val create : unit -> t
  val record : t -> time:float -> event -> unit
  val length : t -> int

  val events : t -> entry list
  (** In recording (i.e. chronological) order. *)

  val pp_op : Format.formatter -> Replog.Command.op -> unit
  val pp_result : Format.formatter -> Replog.Kv.result -> unit
  val pp_event : Format.formatter -> event -> unit
  val pp : Format.formatter -> t -> unit
end

(** Closed-loop KV client: keeps exactly one operation outstanding, drawn
    from a private PRNG over a small key space (45% put / 45% get / 10%
    del, globally-unique put values), and records its history. *)
module Kv : sig
  type callbacks = {
    kc_now : unit -> float;
    kc_choose_node : read:bool -> int option;
        (** where to submit the next operation ([None]: retry next poll) *)
    kc_submit : node:int -> Replog.Command.t -> bool;
    kc_result : node:int -> op_id:int -> Replog.Kv.result option;
        (** the apply-time result once [node] has applied [op_id] *)
    kc_schedule : delay:float -> (unit -> unit) -> unit;
    kc_next_id : unit -> int;  (** globally unique command ids *)
  }

  type t

  val start :
    history:History.t ->
    client:int ->
    rng:Random.State.t ->
    keys:int ->
    timeout_ms:float ->
    poll_ms:float ->
    callbacks ->
    t

  val stop : t -> unit
  val completed : t -> int
  val timed_out : t -> int
end
