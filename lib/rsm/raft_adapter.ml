(* Raft behind the uniform protocol interface, in its two evaluated
   configurations: plain, and with PreVote + CheckQuorum ("Raft PV+CQ"). *)

module N = Raft.Node

type t = {
  id : int;
  node : N.t;
  cache : Protocol.Decided_cache.t;
  obs : Protocol.Obs_hooks.t;
  mutable scanned : int;
  mutable install_seq : int;
  mutable last_install : Protocol.install option;
}

let scan t upto =
  (* [upto <= t.scanned] happens while the commit index regrows from 0 after
     a fail-recovery restart: those entries are already noted, and reading
     them again would ask for a negative-length slice. *)
  if upto > t.scanned then begin
    let entries = N.read_committed t.node ~from:t.scanned in
    List.iter
      (fun (e : N.entry) ->
        match e.N.data with
        | N.Cmd c ->
            if c.Replog.Command.id >= 0 then
              Protocol.Decided_cache.note t.cache c.Replog.Command.id
        | N.Config _ -> ())
      entries;
    t.scanned <- upto
  end

let make ~pre_vote ~check_quorum ?(batching = Omnipaxos.Batching.fixed)
    ?(compaction = Omnipaxos.Compaction.disabled) ~id ~peers ~election_ticks
    ~rand ~send () =
  let cache = Protocol.Decided_cache.create () in
  let t_ref = ref None in
  let on_commit idx =
    match !t_ref with
    | Some t ->
        scan t idx;
        Protocol.Obs_hooks.note_decided ~node:t.id
          ~term:(N.current_term t.node) ~leader:(N.leader_pid t.node)
          ~decided_idx:idx
    | None -> ()
  in
  (* Translate the shared batching knob: [max_batch] caps AppendEntries
     batches, and an adaptive config turns on the eager size-triggered flush
     at the same threshold Omni-Paxos starts from ([min_batch]). *)
  let b = Omnipaxos.Batching.validated batching in
  let eager_batch =
    if b.Omnipaxos.Batching.adaptive then b.Omnipaxos.Batching.min_batch else 0
  in
  (* Translate the shared compaction knob the same way; Raft compacts
     locally below its own commit index, so the adapter supplies the trace
     events Sequence Paxos emits internally. *)
  let c = Omnipaxos.Compaction.validated compaction in
  let on_compact ~upto ~entries =
    if Obs.Trace.on () then begin
      (match !t_ref with
      | Some t ->
          Obs.Trace.emit ~node:id
            (Obs.Event.Snapshot_taken
               { idx = upto; bytes = String.length (N.snapshot t.node) })
      | None -> ());
      Obs.Trace.emit ~node:id (Obs.Event.Log_trimmed { upto; entries })
    end
  in
  let on_install idx payload =
    match !t_ref with
    | Some t ->
        (* Entries below [idx] are gone from the log: jump the scan cursor
           and record the install for checkers. Fires before the commit
           index advances over the installed state. *)
        t.scanned <- max t.scanned idx;
        t.install_seq <- t.install_seq + 1;
        t.last_install <-
          Some
            {
              Protocol.inst_seq = t.install_seq;
              inst_cache_len = Protocol.Decided_cache.count t.cache;
              inst_payload = payload;
            };
        if Obs.Trace.on () then
          Obs.Trace.emit ~node:id
            (Obs.Event.Snapshot_installed
               { idx; bytes = String.length payload })
    | None -> ()
  in
  let node =
    N.create ~id ~voters:(id :: peers) ~pre_vote ~check_quorum
      ~max_batch:b.Omnipaxos.Batching.max_batch ~eager_batch
      ~snapshot_interval:c.Omnipaxos.Compaction.snapshot_interval
      ~retain:c.Omnipaxos.Compaction.retain ~on_compact ~on_install
      ~election_ticks ~rand ~persistent:(N.fresh_persistent ()) ~send
      ~on_commit ()
  in
  let t =
    {
      id;
      node;
      cache;
      obs = Protocol.Obs_hooks.create ();
      scanned = 0;
      install_seq = 0;
      last_install = None;
    }
  in
  t_ref := Some t;
  t

module Plain = struct
  type nonrec t = t
  type msg = N.msg

  let name = "Raft"
  let create = make ~pre_vote:false ~check_quorum:false

  (* Profiler frames around the dispatch entry points; the cold branch
     repeats the call so the profiler-off path allocates no closure. *)
  let handle t ~src msg =
    if Obs.Profile.on () then
      Obs.Profile.wrap "raft/handle" (fun () -> N.handle t.node ~src msg)
    else N.handle t.node ~src msg

  let tick_raw t =
    N.tick t.node;
    Protocol.Obs_hooks.note_leader t.obs ~node:t.id
      ~leader:(N.leader_pid t.node) ~term:(N.current_term t.node)

  let tick t =
    if Obs.Profile.on () then Obs.Profile.wrap "raft/tick" (fun () -> tick_raw t)
    else tick_raw t

  let session_reset t ~peer = N.session_reset t.node ~peer

  (* Term, vote and log are Raft's persistent state (kept inside the node);
     [N.recover] resets the volatile role/leader/commit-index view, which is
     re-learned from the next leader's appends. *)
  let restart t = N.recover t.node

  (* Mirror of the Sequence Paxos [Proposed] emit: span assembly needs the
     leader-append moment for every protocol, not just Omni-Paxos. *)
  let propose t cmd =
    let ok = N.propose t.node cmd in
    if ok && Obs.Trace.on () then
      Obs.Trace.emit ~node:t.id
        (Obs.Event.Proposed
           {
             log_idx = N.log_length t.node - 1;
             cmd_id = cmd.Replog.Command.id;
           });
    ok
  let is_leader t = N.is_leader t.node
  let leader_pid t = N.leader_pid t.node
  let decided_count t = Protocol.Decided_cache.count t.cache
  let decided_ids t ~from = Protocol.Decided_cache.ids_from t.cache ~from
  let decided_index t = N.commit_idx t.node
  let last_install t = t.last_install
  let msg_size = N.msg_size
  let node t = t.node
end

module Pv_cq = struct
  include Plain

  let name = "Raft PV+CQ"
  let create = make ~pre_vote:true ~check_quorum:true
end
