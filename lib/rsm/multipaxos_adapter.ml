(* Multi-Paxos behind the uniform protocol interface. *)

module N = Multipaxos.Node

type t = {
  id : int;
  node : N.t;
  cache : Protocol.Decided_cache.t;
  obs : Protocol.Obs_hooks.t;
  mutable scanned : int;
  mutable install_seq : int;
  mutable last_install : Protocol.install option;
}

type msg = N.msg

let name = "Multi-Paxos"

let scan t upto =
  let log = N.decided_log t.node in
  (* Slots below the trim point live only in the snapshot; the install hook
     already jumped [scanned] past them, the clamp is belt-and-braces. *)
  for i = max t.scanned (Replog.Log.first_idx log) to upto - 1 do
    let c = Replog.Log.get log i in
    if c.Replog.Command.id >= 0 then
      Protocol.Decided_cache.note t.cache c.Replog.Command.id
  done;
  t.scanned <- max t.scanned upto

let create ?(batching = Omnipaxos.Batching.fixed)
    ?(compaction = Omnipaxos.Compaction.disabled) ~id ~peers ~election_ticks
    ~rand ~send () =
  let cache = Protocol.Decided_cache.create () in
  let t_ref = ref None in
  let on_decide upto =
    match !t_ref with
    | Some t ->
        scan t upto;
        Protocol.Obs_hooks.note_decided ~node:t.id
          ~term:(N.current_ballot t.node).N.n ~leader:(N.leader_pid t.node)
          ~decided_idx:upto
    | None -> ()
  in
  (* Same translation as the Raft adapter: cap P2a batches at [max_batch],
     and under the adaptive policy flush eagerly at [min_batch] pending. *)
  let b = Omnipaxos.Batching.validated batching in
  let eager_batch =
    if b.Omnipaxos.Batching.adaptive then b.Omnipaxos.Batching.min_batch else 0
  in
  (* Compaction translates the same way; the adapter supplies the trace
     events Sequence Paxos emits internally. *)
  let c = Omnipaxos.Compaction.validated compaction in
  let on_compact ~upto ~entries =
    if Obs.Trace.on () then begin
      (match !t_ref with
      | Some t ->
          Obs.Trace.emit ~node:id
            (Obs.Event.Snapshot_taken
               { idx = upto; bytes = String.length (N.snapshot t.node) })
      | None -> ());
      Obs.Trace.emit ~node:id (Obs.Event.Log_trimmed { upto; entries })
    end
  in
  let on_install idx payload =
    match !t_ref with
    | Some t ->
        (* Slots below [idx] are gone from the decided log: jump the scan
           cursor and record the install for checkers. Fires before
           [on_decide] reports the installed watermark. *)
        t.scanned <- max t.scanned idx;
        t.install_seq <- t.install_seq + 1;
        t.last_install <-
          Some
            {
              Protocol.inst_seq = t.install_seq;
              inst_cache_len = Protocol.Decided_cache.count t.cache;
              inst_payload = payload;
            };
        if Obs.Trace.on () then
          Obs.Trace.emit ~node:id
            (Obs.Event.Snapshot_installed
               { idx; bytes = String.length payload })
    | None -> ()
  in
  let node =
    N.create ~id ~peers ~election_ticks ~rand
      ~max_batch:b.Omnipaxos.Batching.max_batch ~eager_batch
      ~snapshot_interval:c.Omnipaxos.Compaction.snapshot_interval
      ~retain:c.Omnipaxos.Compaction.retain ~on_compact ~on_install ~send
      ~on_decide ()
  in
  let t =
    {
      id;
      node;
      cache;
      obs = Protocol.Obs_hooks.create ();
      scanned = 0;
      install_seq = 0;
      last_install = None;
    }
  in
  t_ref := Some t;
  t

(* Profiler frames around the dispatch entry points; the cold branch
   repeats the call so the profiler-off path allocates no closure. *)
let handle t ~src msg =
  if Obs.Profile.on () then
    Obs.Profile.wrap "multipaxos/handle" (fun () -> N.handle t.node ~src msg)
  else N.handle t.node ~src msg

let tick_raw t =
  N.tick t.node;
  Protocol.Obs_hooks.note_leader t.obs ~node:t.id
    ~leader:(N.leader_pid t.node)
    ~term:(N.current_ballot t.node).N.n

let tick t =
  if Obs.Profile.on () then
    Obs.Profile.wrap "multipaxos/tick" (fun () -> tick_raw t)
  else tick_raw t

let session_reset t ~peer = N.session_reset t.node ~peer

(* Multi-Paxos exposes no storage abstraction: model synchronous full-state
   persistence — a crash is a pause plus lost in-flight traffic, not an
   amnesia restart (which would forget Phase-1 promises and break safety). *)
let restart _t = ()

(* Mirror of the Sequence Paxos [Proposed] emit: span assembly needs the
   leader-append moment for every protocol, not just Omni-Paxos. *)
let propose t cmd =
  let ok = N.propose t.node cmd in
  if ok && Obs.Trace.on () then
    Obs.Trace.emit ~node:t.id
      (Obs.Event.Proposed
         { log_idx = N.next_slot t.node - 1; cmd_id = cmd.Replog.Command.id });
  ok
let is_leader t = N.is_leader t.node
let leader_pid t = N.leader_pid t.node
let decided_count t = Protocol.Decided_cache.count t.cache
let decided_ids t ~from = Protocol.Decided_cache.ids_from t.cache ~from
let decided_index t = N.decided_length t.node
let last_install t = t.last_install
let msg_size = N.msg_size
let node t = t.node
