let schema_version = 1

let file_name ~section = "BENCH_" ^ section ^ ".json"

let envelope ~section ~seeds ~quick ~rows =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("section", Json.String section);
      ("seeds", Json.List (List.map (fun s -> Json.Int s) seeds));
      ("quick", Json.Bool quick);
      ("rows", rows);
    ]

let render ~section ~seeds ~quick ~rows =
  Json.to_string (envelope ~section ~seeds ~quick ~rows)

let write_envelope ~dir ~section json =
  let path = Filename.concat dir (file_name ~section) in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  close_out oc;
  path

let write ~dir ~section ~seeds ~quick ~rows =
  write_envelope ~dir ~section (envelope ~section ~seeds ~quick ~rows)

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      Json.of_string contents
