type tolerance = Exact | Ignore | Tol of { rel : float; abs : float }

let has_suffix s ~suffix =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.equal (String.sub s (ls - lx) lx) suffix

(* Tolerance classes by field-name suffix; rationale in the .mli and in
   EXPERIMENTS.md. *)
let tolerance_for key =
  if has_suffix key ~suffix:"_ci" then Ignore
  else if has_suffix key ~suffix:"_rate" then Tol { rel = 0.30; abs = 25.0 }
  else if has_suffix key ~suffix:"_ms" then Tol { rel = 0.50; abs = 10.0 }
  else if has_suffix key ~suffix:"_bytes" then Tol { rel = 0.30; abs = 4096.0 }
  else if has_suffix key ~suffix:"_msgs" then Tol { rel = 0.30; abs = 50.0 }
  else if has_suffix key ~suffix:"_pct" then Tol { rel = 0.50; abs = 1.0 }
  else if has_suffix key ~suffix:"_count" then Tol { rel = 0.30; abs = 25.0 }
  else Exact

type diff = { d_path : string; d_msg : string }

let leaf_name path =
  match String.rindex_opt path '.' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let number_of = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | Json.Null | Json.Bool _ | Json.String _ | Json.List _ | Json.Obj _ -> None

let type_name = function
  | Json.Null -> "null"
  | Json.Bool _ -> "bool"
  | Json.Int _ -> "int"
  | Json.Float _ -> "float"
  | Json.String _ -> "string"
  | Json.List _ -> "array"
  | Json.Obj _ -> "object"

let rec diff_values ~path ~baseline ~current =
  match (baseline, current) with
  | Json.Obj bs, Json.Obj cs ->
      if
        not
          (List.equal String.equal (List.map fst bs) (List.map fst cs))
      then
        [
          {
            d_path = path;
            d_msg =
              Printf.sprintf "field set changed: [%s] vs [%s]"
                (String.concat "; " (List.map fst bs))
                (String.concat "; " (List.map fst cs));
          };
        ]
      else
        List.concat_map
          (fun ((k, b), (_, c)) ->
            diff_values ~path:(path ^ "." ^ k) ~baseline:b ~current:c)
          (List.combine bs cs)
  | Json.List bs, Json.List cs ->
      if List.length bs <> List.length cs then
        [
          {
            d_path = path;
            d_msg =
              Printf.sprintf "array length changed: %d vs %d"
                (List.length bs) (List.length cs);
          };
        ]
      else
        List.concat
          (List.mapi
             (fun i (b, c) ->
               diff_values
                 ~path:(Printf.sprintf "%s[%d]" path i)
                 ~baseline:b ~current:c)
             (List.combine bs cs))
  | b, c -> (
      match tolerance_for (leaf_name path) with
      | Ignore -> []
      | Exact ->
          if Json.equal b c then []
          else
            [
              {
                d_path = path;
                d_msg =
                  Printf.sprintf "expected %s, got %s"
                    (String.trim (Json.to_string b))
                    (String.trim (Json.to_string c));
              };
            ]
      | Tol { rel; abs } -> (
          match (number_of b, number_of c) with
          | Some bf, Some cf ->
              let allowed = Float.max abs (rel *. Float.abs bf) in
              if Float.abs (cf -. bf) <= allowed then []
              else
                [
                  {
                    d_path = path;
                    d_msg =
                      Printf.sprintf
                        "%.6g is outside baseline %.6g +/- %.6g" cf bf
                        allowed;
                  };
                ]
          | _ ->
              (* A tolerance-class field that is not numeric on one side:
                 null (a NaN metric) still matches null exactly. *)
              if Json.equal b c then []
              else
                [
                  {
                    d_path = path;
                    d_msg =
                      Printf.sprintf "type changed: %s vs %s" (type_name b)
                        (type_name c);
                  };
                ]))

let pp_diff ppf d = Format.fprintf ppf "%s: %s" d.d_path d.d_msg

let compare_files ~baseline ~current =
  match Report.load baseline with
  | Error e -> Error (Printf.sprintf "%s: %s" baseline e)
  | Ok b -> (
      match Report.load current with
      | Error e -> Error (Printf.sprintf "%s: %s" current e)
      | Ok c -> Ok (diff_values ~path:"$" ~baseline:b ~current:c))
