type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | String of string
  | List of t list
  | Obj of (string * t) list

and t_float = float

let float f = if Float.is_finite f then Float f else Null

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_to_string f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    (* Keep floats recognisable as floats on re-parse. *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"

let rec emit b ~indent v =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_to_string f)
  | String s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          emit b ~indent:(indent + 2) item)
        items;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          escape_string b k;
          Buffer.add_string b ": ";
          emit b ~indent:(indent + 2) item)
        fields;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 4096 in
  emit b ~indent:0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let rec emit_compact b v =
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_to_string f)
  | String s -> escape_string b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          emit_compact b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          emit_compact b item)
        fields;
      Buffer.add_char b '}'

let to_compact_string v =
  let b = Buffer.create 1024 in
  emit_compact b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if
      !pos + String.length word <= n
      && String.equal (String.sub s !pos (String.length word)) word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if Char.equal c '"' then Buffer.contents b
      else if Char.equal c '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail "bad \\u escape"
            in
            (* The printer only emits \u for control characters; decode the
               single-byte range and keep anything else as '?'. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_char b '?'
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.contains tok '.' || String.contains tok 'e'
      || String.contains tok 'E'
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad float"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad int"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if (match peek () with Some ']' -> true | _ -> false) then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while (match peek () with Some ',' -> true | _ -> false) do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if (match peek () with Some '}' -> true | _ -> false) then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while (match peek () with Some ',' -> true | _ -> false) do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member k = function
  | Obj fields ->
      List.find_map
        (fun (k', v) -> if String.equal k k' then Some v else None)
        fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Obj x, Obj y ->
      List.equal
        (fun (k, v) (k', v') -> String.equal k k' && equal v v')
        x y
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Obj _), _ -> false
