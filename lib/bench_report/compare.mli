(** Regression gate over two bench report sets.

    Two [BENCH_<section>.json] trees (a checked-in baseline and a fresh run)
    are compared structurally: the same fields must be present in the same
    order, and every leaf must match. Numeric metric leaves are allowed a
    per-metric tolerance picked by field-name suffix; everything else
    (config echoes like [n]/[cp]/[seeds], section names, booleans) must be
    exact.

    Tolerance classes (relative fraction of the baseline, with an absolute
    floor so near-zero baselines don't explode the relative error):
    - [*_ci]: ignored — confidence intervals over a couple of seeds are the
      noisiest number in the file and gate nothing.
    - [*_rate]: 30% / 25.0 — throughput regressions beyond a third are what
      the gate exists to catch; smaller drifts accompany legitimate
      protocol changes (message-size tweaks shift the bandwidth model).
    - [*_ms]: 50% / 10.0 — latency percentiles and downtimes are quantised
      by tick and timeout granularity.
    - [*_bytes]: 30% / 4096.0, [*_msgs]: 30% / 50.0 — IO volume moves
      whenever message framing changes; a 30% jump means a batching or
      retransmission bug.
    - [*_pct]: 50% / 1.0.
    - [*_count]: 30% / 25.0.

    The simulator is deterministic, so an unchanged tree compares
    byte-identical and the tolerances only absorb *intentional* code
    changes; anything outside them fails the gate and demands either a fix
    or an explicit baseline refresh (see EXPERIMENTS.md). *)

type tolerance =
  | Exact
  | Ignore
  | Tol of { rel : float; abs : float }
      (** passes when [|cur - base| <= max (abs, rel *. |base|)] *)

val tolerance_for : string -> tolerance
(** Tolerance class of a leaf field, by name suffix (see above). *)

type diff = { d_path : string; d_msg : string }

val diff_values : path:string -> baseline:Json.t -> current:Json.t -> diff list
(** Structural diff; numeric leaves use the tolerance of the innermost
    field name on the path. Returns [] when the trees match. *)

val pp_diff : Format.formatter -> diff -> unit

val compare_files : baseline:string -> current:string -> (diff list, string) result
(** Load both paths and diff them. [Error] on unreadable/unparsable
    input. *)
