(** A minimal, dependency-free JSON tree with a deterministic printer and a
    strict parser — the wire format of the bench pipeline ([BENCH_*.json]
    files and the {!Compare} regression gate).

    Determinism contract: [to_string] is a pure function of the tree.
    Object fields keep their construction order (callers build them in a
    fixed order), floats are printed with [%.12g] (enough digits to
    round-trip any value the benches produce, with no locale dependence),
    and non-finite floats are printed as [null] so a NaN metric cannot
    produce invalid JSON. Two runs that build equal trees therefore emit
    byte-identical files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | String of string
  | List of t list
  | Obj of (string * t) list

and t_float = float

val float : float -> t
(** [Float f], with non-finite [f] collapsed to [Null]. *)

val to_string : t -> string
(** Pretty-printed with 2-space indentation and a trailing newline, so the
    files diff well under version control. *)

val to_compact_string : t -> string
(** One-line rendering (no whitespace, no trailing newline) under the same
    determinism contract — for JSONL series where each record is a line. *)

val of_string : string -> (t, string) result
(** Strict parser for the subset [to_string] emits (plus arbitrary
    whitespace): no comments, no trailing commas. Numbers with a [.], [e]
    or [E] parse as [Float]; everything else as [Int]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val equal : t -> t -> bool
