(** Machine-readable bench reports: every section of [bench/main.exe] feeds
    its rows through this module, which wraps them in a common envelope and
    writes a deterministic [BENCH_<section>.json] file.

    The envelope is:
    {v
    { "schema_version": 1,
      "section": "<name>",
      "seeds": [...],        // the simulator seeds the rows aggregate over
      "quick": true|false,   // BENCH_QUICK reduced configuration?
      "rows": <section-specific array of objects> }
    v}

    Everything inside is a pure function of the simulation results, so two
    runs with the same seeds produce byte-identical files (the determinism
    test in [test/] double-renders each section and compares bytes). *)

val schema_version : int

val file_name : section:string -> string
(** ["BENCH_" ^ section ^ ".json"]. *)

val envelope : section:string -> seeds:int list -> quick:bool -> rows:Json.t -> Json.t

val render : section:string -> seeds:int list -> quick:bool -> rows:Json.t -> string
(** The full file contents ({!envelope} through {!Json.to_string}). *)

val write :
  dir:string -> section:string -> seeds:int list -> quick:bool -> rows:Json.t -> string
(** Write {!render} to [dir ^ "/" ^ file_name ~section] and return that
    path. [dir] must exist. *)

val write_envelope : dir:string -> section:string -> Json.t -> string
(** Write an already-built envelope (e.g. from {!envelope}). *)

val load : string -> (Json.t, string) result
(** Read and parse a report file. *)
