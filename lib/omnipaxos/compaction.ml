(* Snapshot/compaction trigger policy. See compaction.mli. *)

type config = { snapshot_interval : int; retain : int }

let disabled = { snapshot_interval = 0; retain = 0 }
let enabled c = c.snapshot_interval > 0

let validated c =
  if c.snapshot_interval < 0 then
    invalid_arg "Compaction.validated: snapshot_interval < 0";
  if c.retain < 0 then invalid_arg "Compaction.validated: retain < 0";
  c

let make ?(retain = 0) snapshot_interval =
  validated { snapshot_interval; retain }
