module Log = Replog.Log

type msg =
  | Prepare of {
      n : Ballot.t;
      acc_rnd : Ballot.t;
      log_idx : int;
      decided_idx : int;
    }
  | Promise of {
      n : Ballot.t;
      acc_rnd : Ballot.t;
      log_idx : int;
      decided_idx : int;
      suffix_from : int;
      suffix : Entry.t list;
      snapshot : (int * string) option;
    }
  | Accept_sync of {
      n : Ballot.t;
      sync_idx : int;
      suffix : Entry.t list;
      decided_idx : int;
      snapshot : (int * string) option;
          (* state snapshot covering [0, idx), for followers below the
             leader's trim point *)
    }
  | Accept of {
      n : Ballot.t;
      start_idx : int;
      entries : Entry.t list;
      decided_idx : int;
    }
  | Accepted of { n : Ballot.t; log_idx : int }
  | Decide of { n : Ballot.t; decided_idx : int }
  | Trim of { n : Ballot.t; trim_idx : int }
  | Prepare_req

type persistent = {
  log : Entry.t Log.t;
  mutable prom_rnd : Ballot.t;
  mutable acc_rnd : Ballot.t;
  mutable decided_idx : int;
  (* Snapshot state backing log compaction: [app] is the KV state machine
     for exactly the trimmed prefix [0, Log.first_idx log), and
     [snap_client_cmds] counts the client commands (id >= 0) inside it.
     Durable alongside the log: a snapshot must survive the crash of the
     node that trimmed below it, or the prefix would be lost forever. *)
  mutable app : Replog.Kv.t;
  mutable snap_client_cmds : int;
}

type role = Follower | Leader_prepare | Leader_accept

let role_is_follower = function
  | Follower -> true
  | Leader_prepare | Leader_accept -> false

let role_is_leader_accept = function
  | Leader_accept -> true
  | Follower | Leader_prepare -> false

type promise_info = {
  p_acc_rnd : Ballot.t;
  p_log_idx : int;
  p_decided_idx : int;
  p_suffix_from : int;
  p_suffix : Entry.t list;
  p_snapshot : (int * string) option;
}

type t = {
  id : int;
  peers : int list;
  quorum : int;
  dur : persistent;
  send : dst:int -> msg -> unit;
  on_decide : int -> unit;
  snapshotter : (unit -> string) option;
  on_snapshot : int -> string -> unit;
  batching : Batching.config;
  compaction : Compaction.config;
  mutable role : role;
  (* Prepare-phase state. *)
  promises : (int, promise_info) Hashtbl.t;
  buffer : Entry.t Queue.t;
  (* Accept-phase state. *)
  synced : (int, unit) Hashtbl.t;
  acc_idx : (int, int) Hashtbl.t;
  sent_idx : (int, int) Hashtbl.t;
  (* Adaptive-batching state (see batching.mli). [batch_cap] is the AIMD
     per-Accept entry cap; [unflushed] counts leader appends since the last
     flush (the size trigger); [ticks_since_flush] drives the deadline.
     [acked_idx]/[ack_pending] implement follower-side ack coalescing. *)
  mutable batch_cap : int;
  mutable unflushed : int;
  mutable ticks_since_flush : int;
  mutable acked_idx : int;
  mutable ack_pending : bool;
  (* Index of the stop-sign entry in the log, if any. *)
  mutable ss_idx : int option;
}

let fresh_persistent () =
  {
    log = Log.create ();
    prom_rnd = Ballot.bottom;
    acc_rnd = Ballot.bottom;
    decided_idx = 0;
    app = Replog.Kv.create ();
    snap_client_cmds = 0;
  }

let trace_ballot (b : Ballot.t) =
  { Obs.Event.n = b.Ballot.n; prio = b.Ballot.priority; pid = b.Ballot.pid }

let find_stop_sign_from log ~from =
  let found = ref None in
  Log.iteri_from log ~from (fun i e ->
      if Option.is_none !found && Entry.is_stop_sign e then found := Some i);
  !found

let create ~id ~peers ~persistent ?(batching = Batching.fixed)
    ?(compaction = Compaction.disabled) ~send ?(on_decide = fun _ -> ())
    ?snapshotter ?(on_snapshot = fun _ _ -> ()) () =
  let n_total = List.length peers + 1 in
  let batching = Batching.validated batching in
  let compaction = Compaction.validated compaction in
  {
    id;
    peers;
    quorum = (n_total / 2) + 1;
    dur = persistent;
    send;
    on_decide;
    snapshotter;
    on_snapshot;
    batching;
    compaction;
    role = Follower;
    promises = Hashtbl.create 8;
    buffer = Queue.create ();
    synced = Hashtbl.create 8;
    acc_idx = Hashtbl.create 8;
    sent_idx = Hashtbl.create 8;
    batch_cap = batching.Batching.min_batch;
    unflushed = 0;
    ticks_since_flush = 0;
    acked_idx = 0;
    ack_pending = false;
    ss_idx = find_stop_sign_from persistent.log ~from:0;
  }

let id t = t.id
let role t = t.role
let batching t = t.batching

let batch_cap t =
  if t.batching.Batching.adaptive then t.batch_cap
  else t.batching.Batching.max_batch
let is_leader t = not (role_is_follower t.role)
let current_round t = t.dur.prom_rnd

let leader_pid t =
  if Ballot.equal t.dur.prom_rnd Ballot.bottom then None
  else Some t.dur.prom_rnd.Ballot.pid

let decided_idx t = t.dur.decided_idx
let log_length t = Log.length t.dur.log
(* Entries below the trim point are unavailable; reads clamp to it. *)
let read_decided t ~from =
  let from = max from (Log.first_idx t.dur.log) in
  Log.sub t.dur.log ~pos:from ~len:(t.dur.decided_idx - from)
let read_log t = t.dur.log
let is_stopped t = Option.is_some t.ss_idx

let stop_sign t =
  match t.ss_idx with
  | Some i when t.dur.decided_idx > i -> (
      match Log.get t.dur.log i with
      | Entry.Stop_sign ss -> Some ss
      | Entry.Cmd _ -> None)
  | Some _ | None -> None

(* Replace the log suffix during synchronisation, keeping [ss_idx] accurate
   (a non-chosen stop-sign can be overwritten, Figure 3a). *)
let sync_log t ~at suffix =
  Log.set_suffix t.dur.log ~at suffix;
  (match t.ss_idx with Some i when i >= at -> t.ss_idx <- None | _ -> ());
  if Option.is_none t.ss_idx then
    t.ss_idx <-
      Option.map (fun i -> at + i)
        (List.find_index Entry.is_stop_sign suffix)

let append_entry t e =
  Log.append t.dur.log e;
  if Entry.is_stop_sign e && Option.is_none t.ss_idx then
    t.ss_idx <- Some (Log.length t.dur.log - 1)

(* Proposal spans key off this event: the moment a client command enters the
   leader's log. Stop-signs carry cmd_id -1. *)
let trace_proposed t e =
  if Obs.Trace.on () then
    Obs.Trace.emit ~node:t.id
      (Obs.Event.Proposed
         {
           log_idx = Log.length t.dur.log - 1;
           cmd_id =
             (match e with
             | Entry.Cmd c -> c.Replog.Command.id
             | Entry.Stop_sign _ -> -1);
         })

(* ------------------------------------------------------------------ *)
(* Snapshotting and log compaction                                     *)
(* ------------------------------------------------------------------ *)

let first_idx t = Log.first_idx t.dur.log

(* Fold the entries [first_idx, upto) into the durable snapshot state
   machine. Must run before every trim so the invariant "[dur.app] covers
   exactly [0, first_idx)" holds at all times; replaying the remaining log
   on top of the snapshot then never double-applies a command. *)
let advance_app t ~upto =
  let from = Log.first_idx t.dur.log in
  if upto > from then
    List.iter
      (fun e ->
        match e with
        | Entry.Cmd c ->
            (match Replog.Kv.apply t.dur.app c with
            | Replog.Kv.Ok_unit | Replog.Kv.Value _ -> ());
            if c.Replog.Command.id >= 0 then
              t.dur.snap_client_cmds <- t.dur.snap_client_cmds + 1
        | Entry.Stop_sign _ -> ())
      (Log.sub t.dur.log ~pos:from ~len:(upto - from))

(* The encoded snapshot covering [0, first_idx): the application's own
   [snapshotter] when one is registered, the internal KV snapshot
   otherwise. *)
let snapshot_bytes t =
  match t.snapshotter with
  | Some take -> take ()
  | None ->
      Replog.Snapshot.encode ~last_idx:(Log.first_idx t.dur.log)
        ~client_cmds:t.dur.snap_client_cmds t.dur.app

let snapshot t = snapshot_bytes t
let snapshot_client_cmds t = t.dur.snap_client_cmds

let trace_trim t ~upto ~entries =
  if Obs.Trace.on () then
    Obs.Trace.emit ~node:t.id (Obs.Event.Log_trimmed { upto; entries })

(* Install a state snapshot covering [0, idx): the log restarts at [idx]
   and the durable snapshot state machine adopts the payload when it is
   the internal envelope (an application [snapshotter]'s opaque bytes are
   handled entirely by [on_snapshot]). Discards any local entries — the
   caller appends the authoritative suffix on top. *)
let install_snapshot t ~idx ~payload =
  Log.reset_to t.dur.log ~offset:idx;
  t.ss_idx <- None;
  t.dur.decided_idx <- max t.dur.decided_idx idx;
  (match Replog.Snapshot.decode payload with
  | Ok s ->
      t.dur.app <- Replog.Snapshot.restore s;
      t.dur.snap_client_cmds <- s.Replog.Snapshot.client_cmds
  | Error _ -> ());
  if Obs.Trace.on () then
    Obs.Trace.emit ~node:t.id
      (Obs.Event.Snapshot_installed { idx; bytes = String.length payload });
  t.on_snapshot idx payload

(* Adopt a snapshot + entry suffix pair from a peer whose log starts at
   [idx]. A snapshot at or below our decided index is stale — the
   application already applied that prefix, and [on_decide] never re-fires
   for it, so re-installing would silently roll the state machine back
   (e.g. a leader answering two Promises from the same session-reset
   sends the same install twice; the second arrives after we advanced).
   Skip it and splice the suffix into the log instead, dropping any
   overlap below our own trim floor. *)
let adopt_snapshot_suffix t ~idx ~payload ~suffix =
  if idx > t.dur.decided_idx then begin
    install_snapshot t ~idx ~payload;
    sync_log t ~at:idx suffix
  end
  else begin
    let at = max idx (Log.first_idx t.dur.log) in
    let suffix = List.filteri (fun i _ -> idx + i >= at) suffix in
    sync_log t ~at suffix
  end

(* Largest log index accepted (in this round) by a quorum — the same
   statistic [try_decide] uses, reused as the compaction watermark bound:
   never trim an entry some quorum has not confirmed, or the Prepare phase
   of a future leader could need it. *)
let quorum_acc_idx t =
  let values =
    Log.length t.dur.log
    :: List.map snd
        (Replog.Det.sorted_bindings ~compare_key:Int.compare t.acc_idx)
  in
  if List.length values >= t.quorum then begin
    let sorted = List.sort (fun a b -> Int.compare b a) values in
    List.nth sorted (t.quorum - 1)
  end
  else 0

(* Never trim a decided stop-sign away: [stop_sign] reads it from the log
   (late-transitioning servers in a reconfiguration still need it), and the
   snapshot state machine does not carry it. *)
let trim_cap t ~upto =
  match t.ss_idx with Some i -> min upto i | None -> upto

(* Leader-side compaction trigger, run whenever the decided index advances:
   once [snapshot_interval] decided entries accumulate above the trim
   point, snapshot and trim up to the quorum-confirmed watermark (minus
   [retain]) and tell the followers to do the same. Deliberately quorum-
   based rather than all-peers: a crashed or partitioned straggler must not
   block compaction — it is repaired later with a snapshot install. *)
let maybe_compact t =
  if Compaction.enabled t.compaction && role_is_leader_accept t.role then begin
    let floor = Log.first_idx t.dur.log in
    if
      t.dur.decided_idx - floor >= t.compaction.Compaction.snapshot_interval
    then begin
      let upto =
        trim_cap t
          ~upto:
            (min
               (t.dur.decided_idx - t.compaction.Compaction.retain)
               (quorum_acc_idx t))
      in
      if upto > floor then begin
        advance_app t ~upto;
        Log.trim t.dur.log ~upto;
        if Obs.Trace.on () then
          Obs.Trace.emit ~node:t.id
            (Obs.Event.Snapshot_taken
               { idx = upto; bytes = String.length (snapshot_bytes t) });
        trace_trim t ~upto ~entries:(upto - floor);
        let m = Trim { n = t.dur.prom_rnd; trim_idx = upto } in
        List.iter (fun p -> t.send ~dst:p m) t.peers
      end
    end
  end

let advance_decided t d =
  let d = min d (Log.length t.dur.log) in
  if d > t.dur.decided_idx then begin
    t.dur.decided_idx <- d;
    if Obs.Trace.on () then
      Obs.Trace.emit ~node:t.id
        (Obs.Event.Decided { b = trace_ballot t.dur.acc_rnd; decided_idx = d });
    t.on_decide d;
    maybe_compact t
  end

(* Leader: largest index accepted (in this round) by a quorum. *)
let try_decide t =
  let values =
    Log.length t.dur.log
    :: List.map snd (Replog.Det.sorted_bindings ~compare_key:Int.compare t.acc_idx)
  in
  if List.length values >= t.quorum then begin
    let sorted = List.sort (fun a b -> Int.compare b a) values in
    let decidable = List.nth sorted (t.quorum - 1) in
    if decidable > t.dur.decided_idx then begin
      advance_decided t decidable;
      let decide = Decide { n = t.dur.prom_rnd; decided_idx = decidable } in
      Replog.Det.iter_sorted ~compare_key:Int.compare
        (fun f () -> t.send ~dst:f decide)
        t.synced
    end
  end

(* Send the AcceptSync that makes follower [f]'s log a prefix of ours: if the
   follower accepted in the same round as the adopted log, its log is already
   a consistent prefix and only the missing tail is sent; otherwise its
   non-chosen suffix may conflict and is overwritten from its decided index. *)
let accept_sync_follower t ~dst ~(info : promise_info) ~max_acc_rnd =
  let wanted =
    if Ballot.equal info.p_acc_rnd max_acc_rnd then info.p_log_idx
    else info.p_decided_idx
  in
  let floor = Log.first_idx t.dur.log in
  (* A follower below our trim point (e.g. one that lost its disk) cannot be
     repaired with entries alone: ship a state snapshot covering the trimmed
     prefix, when the application provides one. Otherwise serve from the
     trim point — safe in the normal case, where the region below it is
     decided everywhere and already identical at the follower. *)
  let snapshot =
    if wanted < floor then
      if Option.is_some t.snapshotter || Compaction.enabled t.compaction then
        Some (floor, snapshot_bytes t)
      else None
    else None
  in
  let sync_idx = max wanted floor in
  let suffix = Log.suffix t.dur.log ~from:sync_idx in
  if Obs.Trace.on () then
    Obs.Trace.emit ~node:t.id
      (Obs.Event.Accept_sent
         {
           b = trace_ballot t.dur.prom_rnd;
           start_idx = sync_idx;
           count = List.length suffix;
         });
  t.send ~dst
    (Accept_sync
       {
         n = t.dur.prom_rnd;
         sync_idx;
         suffix;
         decided_idx = t.dur.decided_idx;
         snapshot;
       });
  Hashtbl.replace t.synced dst ();
  Hashtbl.replace t.sent_idx dst (Log.length t.dur.log)

(* Prepare phase completion: adopt the most updated log among the quorum of
   promises (P2c), append buffered proposals, and synchronise followers. *)
let complete_prepare t =
  let n = t.dur.prom_rnd in
  (* The leader's own state acts as a promise too. *)
  let best_src = ref t.id
  and best_key = ref (t.dur.acc_rnd, Log.length t.dur.log) in
  let consider src (acc_rnd, log_idx) =
    let better =
      let r = Ballot.compare acc_rnd (fst !best_key) in
      r > 0 || (r = 0 && log_idx > snd !best_key)
    in
    if better then begin
      best_src := src;
      best_key := (acc_rnd, log_idx)
    end
  in
  Replog.Det.iter_sorted ~compare_key:Int.compare
    (fun src info -> consider src (info.p_acc_rnd, info.p_log_idx))
    t.promises;
  (if !best_src <> t.id then
     let info = Hashtbl.find t.promises !best_src in
     (* A promiser that compacted past our log end leaves a gap no entry
        suffix can fill (and our entries below its trim floor may be stale
        non-chosen proposals): install its snapshot first, then adopt the
        suffix on top of it. *)
     match info.p_snapshot with
     | Some (idx, payload) ->
         adopt_snapshot_suffix t ~idx ~payload ~suffix:info.p_suffix
     | None -> sync_log t ~at:info.p_suffix_from info.p_suffix);
  let max_acc_rnd = fst !best_key in
  t.dur.acc_rnd <- n;
  (* Decided indexes reported by the quorum refer to chosen prefixes of the
     adopted log; adopt the largest. *)
  let max_decided =
    List.fold_left
      (fun acc (_, info) -> max acc info.p_decided_idx)
      t.dur.decided_idx
      (Replog.Det.sorted_bindings ~compare_key:Int.compare t.promises)
  in
  (* Append proposals buffered during the Prepare phase, unless the adopted
     log ends the configuration. *)
  Queue.iter
    (fun e ->
      if Option.is_none t.ss_idx then begin
        append_entry t e;
        trace_proposed t e
      end)
    t.buffer;
  Queue.clear t.buffer;
  t.role <- Leader_accept;
  Hashtbl.reset t.synced;
  Hashtbl.reset t.acc_idx;
  Hashtbl.reset t.sent_idx;
  advance_decided t max_decided;
  Replog.Det.iter_sorted ~compare_key:Int.compare
    (fun dst info -> accept_sync_follower t ~dst ~info ~max_acc_rnd)
    t.promises;
  try_decide t

let start_prepare t =
  t.role <- Leader_prepare;
  Hashtbl.reset t.promises;
  Hashtbl.reset t.synced;
  Hashtbl.reset t.acc_idx;
  Hashtbl.reset t.sent_idx;
  t.batch_cap <- t.batching.Batching.min_batch;
  t.unflushed <- 0;
  t.ticks_since_flush <- 0;
  t.ack_pending <- false;
  if Obs.Trace.on () then
    Obs.Trace.emit ~node:t.id
      (Obs.Event.Prepare_round
         {
           b = trace_ballot t.dur.prom_rnd;
           log_idx = Log.length t.dur.log;
           decided_idx = t.dur.decided_idx;
         });
  let prepare =
    Prepare
      {
        n = t.dur.prom_rnd;
        acc_rnd = t.dur.acc_rnd;
        log_idx = Log.length t.dur.log;
        decided_idx = t.dur.decided_idx;
      }
  in
  List.iter (fun peer -> t.send ~dst:peer prepare) t.peers;
  if t.quorum = 1 then complete_prepare t

let handle_leader t (b : Ballot.t) =
  if b.Ballot.pid = t.id then begin
    if Ballot.(b > t.dur.prom_rnd) then begin
      t.dur.prom_rnd <- b;
      start_prepare t
    end
  end
  else if Ballot.(b > t.dur.prom_rnd) then begin
    (* A higher round exists elsewhere: step down, and ask its leader for a
       Prepare — covers servers that started after the Prepare broadcast
       (e.g. a freshly migrated server joining a running configuration). *)
    if not (role_is_follower t.role) then t.role <- Follower;
    t.send ~dst:b.Ballot.pid Prepare_req
  end

let on_prepare t ~src ~n ~l_acc_rnd ~l_log_idx ~l_decided_idx =
  if Ballot.(n >= t.dur.prom_rnd) then begin
    t.dur.prom_rnd <- n;
    if n.Ballot.pid <> t.id then t.role <- Follower;
    (* Send the entries the leader might be missing (Figure 3b (3)). A
       compacted log can only serve entries from its trim point; when the
       leader needs entries below it (its log ends, or its decided prefix
       stops, under our floor) the suffix alone would leave a gap — and the
       leader's own entries below our floor may be stale non-chosen
       proposals — so the promise also carries our snapshot and the leader
       installs it under the suffix. *)
    let floor = Log.first_idx t.dur.log in
    let promise ~base =
      let from = max base floor in
      let snapshot =
        if from > base then Some (floor, snapshot_bytes t) else None
      in
      (from, Log.suffix t.dur.log ~from, snapshot)
    in
    let suffix_from, suffix, snapshot =
      if Ballot.(t.dur.acc_rnd > l_acc_rnd) then promise ~base:l_decided_idx
      else if
        Ballot.equal t.dur.acc_rnd l_acc_rnd
        && Log.length t.dur.log > l_log_idx
      then promise ~base:l_log_idx
      else (Log.length t.dur.log, [], None)
    in
    if Obs.Trace.on () then
      Obs.Trace.emit ~node:t.id
        (Obs.Event.Promise_sent
           {
             b = trace_ballot n;
             log_idx = Log.length t.dur.log;
             decided_idx = t.dur.decided_idx;
           });
    t.send ~dst:src
      (Promise
         {
           n;
           acc_rnd = t.dur.acc_rnd;
           log_idx = Log.length t.dur.log;
           decided_idx = t.dur.decided_idx;
           suffix_from;
           suffix;
           snapshot;
         })
  end

let on_promise t ~src ~n ~(info : promise_info) =
  if Ballot.equal n t.dur.prom_rnd then
    match t.role with
    | Leader_prepare ->
        Hashtbl.replace t.promises src info;
        if Hashtbl.length t.promises + 1 >= t.quorum then complete_prepare t
    | Leader_accept ->
        (* Straggler outside the Prepare-phase majority, or a peer
           re-promising after a session drop: synchronise it now. *)
        Hashtbl.replace t.promises src info;
        accept_sync_follower t ~dst:src ~info ~max_acc_rnd:t.dur.acc_rnd
    | Follower -> ()

let on_accept_sync t ~n ~sync_idx ~suffix ~l_decided_idx ~snapshot =
  if Ballot.equal n t.dur.prom_rnd then begin
    match snapshot with
    | Some (idx, payload) ->
        (* Install the state snapshot (the log restarts at [idx]; the
           application restores its state machine from the payload) —
           unless it is stale, in which case only the suffix is adopted. *)
        t.dur.acc_rnd <- n;
        adopt_snapshot_suffix t ~idx ~payload ~suffix;
        if Obs.Trace.on () then
          Obs.Trace.emit ~node:t.id
            (Obs.Event.Accepted_idx
               { b = trace_ballot n; log_idx = Log.length t.dur.log });
        t.acked_idx <- Log.length t.dur.log;
        t.ack_pending <- false;
        t.send ~dst:n.Ballot.pid (Accepted { n; log_idx = Log.length t.dur.log });
        advance_decided t l_decided_idx
    | None ->
        if sync_idx <= Log.length t.dur.log && sync_idx >= Log.first_idx t.dur.log
        then begin
          t.dur.acc_rnd <- n;
          sync_log t ~at:sync_idx suffix;
          if Obs.Trace.on () then
            Obs.Trace.emit ~node:t.id
              (Obs.Event.Accepted_idx
                 { b = trace_ballot n; log_idx = Log.length t.dur.log });
          t.acked_idx <- Log.length t.dur.log;
          t.ack_pending <- false;
          t.send ~dst:n.Ballot.pid
            (Accepted { n; log_idx = Log.length t.dur.log });
          advance_decided t l_decided_idx
        end
  end

(* Accepts carry their starting log index: re-deliveries overlap and are
   deduplicated, and a batch that would create a gap (messages lost without a
   session drop observed yet) is ignored — the session-reset path resyncs. *)
let on_accept t ~n ~start_idx ~entries ~l_decided_idx =
  if
    Ballot.equal n t.dur.prom_rnd
    && Ballot.equal n t.dur.acc_rnd
    && role_is_follower t.role
    && start_idx <= Log.length t.dur.log
  then begin
    let already = Log.length t.dur.log - start_idx in
    let fresh = if already <= 0 then entries else List.filteri (fun i _ -> i >= already) entries in
    List.iter (append_entry t) fresh;
    let len = Log.length t.dur.log in
    if Obs.Trace.on () then
      Obs.Trace.emit ~node:t.id
        (Obs.Event.Accepted_idx { b = trace_ballot n; log_idx = len });
    (* Ack coalescing (adaptive policy): acknowledge at most once per
       [ack_every] appended entries; anything deferred is swept by the next
       tick's [flush]. The fixed policy acknowledges every batch. *)
    let b = t.batching in
    if
      (not b.Batching.adaptive)
      || b.Batching.ack_every <= 1
      || len - t.acked_idx >= b.Batching.ack_every
    then begin
      t.acked_idx <- len;
      t.ack_pending <- false;
      t.send ~dst:n.Ballot.pid (Accepted { n; log_idx = len })
    end
    else t.ack_pending <- true;
    advance_decided t l_decided_idx
  end

let on_accepted t ~src ~n ~f_log_idx =
  if Ballot.equal n t.dur.prom_rnd && role_is_leader_accept t.role then begin
    let prev = Option.value (Hashtbl.find_opt t.acc_idx src) ~default:0 in
    Hashtbl.replace t.acc_idx src (max prev f_log_idx);
    try_decide t
  end

let on_decide_msg t ~n ~l_decided_idx =
  if Ballot.equal n t.dur.prom_rnd && Ballot.equal n t.dur.acc_rnd then
    advance_decided t l_decided_idx

let on_trim t ~n ~trim_idx =
  let trim_idx = trim_cap t ~upto:trim_idx in
  if
    Ballot.equal n t.dur.prom_rnd
    && trim_idx <= t.dur.decided_idx
    && trim_idx <= Log.length t.dur.log
  then begin
    let floor = Log.first_idx t.dur.log in
    if trim_idx > floor then begin
      advance_app t ~upto:trim_idx;
      Log.trim t.dur.log ~upto:trim_idx;
      trace_trim t ~upto:trim_idx ~entries:(trim_idx - floor)
    end
  end

(* Log compaction (§6 / the omnipaxos crate's [trim]): the leader may
   discard a decided prefix once every server has accepted it, and tells
   the followers to do the same. Returns [false] when some server has not
   confirmed the entries yet. *)
let request_trim t ~upto =
  let upto = trim_cap t ~upto in
  let all_peers_accepted =
    List.for_all
      (fun p ->
        match Hashtbl.find_opt t.acc_idx p with
        | Some acc -> acc >= upto
        | None -> false)
      t.peers
  in
  if role_is_leader_accept t.role && upto <= t.dur.decided_idx
     && all_peers_accepted
  then begin
    let floor = Log.first_idx t.dur.log in
    if upto > floor then begin
      advance_app t ~upto;
      Log.trim t.dur.log ~upto;
      trace_trim t ~upto ~entries:(upto - floor)
    end;
    let m = Trim { n = t.dur.prom_rnd; trim_idx = upto } in
    List.iter (fun p -> t.send ~dst:p m) t.peers;
    true
  end
  else false

let resend_prepare_to t ~dst =
  (* The peer lost messages (session drop or recovery): treat it as
     unpromised and restart its synchronisation from a fresh Prepare. *)
  Hashtbl.remove t.synced dst;
  Hashtbl.remove t.acc_idx dst;
  Hashtbl.remove t.sent_idx dst;
  Hashtbl.remove t.promises dst;
  if Obs.Trace.on () then
    Obs.Trace.emit ~node:t.id
      (Obs.Event.Prepare_round
         {
           b = trace_ballot t.dur.prom_rnd;
           log_idx = Log.length t.dur.log;
           decided_idx = t.dur.decided_idx;
         });
  t.send ~dst
    (Prepare
       {
         n = t.dur.prom_rnd;
         acc_rnd = t.dur.acc_rnd;
         log_idx = Log.length t.dur.log;
         decided_idx = t.dur.decided_idx;
       })

let handle t ~src msg =
  match msg with
  | Prepare { n; acc_rnd; log_idx; decided_idx } ->
      on_prepare t ~src ~n ~l_acc_rnd:acc_rnd ~l_log_idx:log_idx
        ~l_decided_idx:decided_idx
  | Promise { n; acc_rnd; log_idx; decided_idx; suffix_from; suffix; snapshot }
    ->
      on_promise t ~src ~n
        ~info:
          {
            p_acc_rnd = acc_rnd;
            p_log_idx = log_idx;
            p_decided_idx = decided_idx;
            p_suffix_from = suffix_from;
            p_suffix = suffix;
            p_snapshot = snapshot;
          }
  | Accept_sync { n; sync_idx; suffix; decided_idx; snapshot } ->
      on_accept_sync t ~n ~sync_idx ~suffix ~l_decided_idx:decided_idx
        ~snapshot
  | Accept { n; start_idx; entries; decided_idx } ->
      on_accept t ~n ~start_idx ~entries ~l_decided_idx:decided_idx
  | Accepted { n; log_idx } -> on_accepted t ~src ~n ~f_log_idx:log_idx
  | Decide { n; decided_idx } -> on_decide_msg t ~n ~l_decided_idx:decided_idx
  | Trim { n; trim_idx } -> on_trim t ~n ~trim_idx
  | Prepare_req -> if is_leader t then resend_prepare_to t ~dst:src

(* One flush: per promised follower, send the entries proposed since its
   last batch, capped per Accept ([batch_cap] under the adaptive policy,
   [max_batch] under the fixed one) — a backlog larger than one cap streams
   as a pipeline of batches across successive flushes. The adaptive cap is
   AIMD: it doubles towards [max_batch] while flushes run at capacity and
   halves towards [min_batch] once the backlog drains, so frame sizes track
   the offered load. *)
let do_flush t ~trigger =
  let b = t.batching in
  let cap = if b.Batching.adaptive then t.batch_cap else b.Batching.max_batch in
  let len = Log.length t.dur.log in
  let max_lag = ref 0 in
  let sent_entries = ref 0 in
  let sent_followers = ref 0 in
  let floor = Log.first_idx t.dur.log in
  Replog.Det.iter_sorted ~compare_key:Int.compare
    (fun f () ->
      let from = Option.value (Hashtbl.find_opt t.sent_idx f) ~default:len in
      if from < floor then begin
        (* The follower's unsent backlog starts below the trim point (it
           lagged past a compaction): the entries are gone, so repair with
           a snapshot install plus the remaining tail instead. *)
        let suffix = Log.suffix t.dur.log ~from:floor in
        if Obs.Trace.on () then
          Obs.Trace.emit ~node:t.id
            (Obs.Event.Accept_sent
               {
                 b = trace_ballot t.dur.prom_rnd;
                 start_idx = floor;
                 count = List.length suffix;
               });
        t.send ~dst:f
          (Accept_sync
             {
               n = t.dur.prom_rnd;
               sync_idx = floor;
               suffix;
               decided_idx = t.dur.decided_idx;
               snapshot = Some (floor, snapshot_bytes t);
             });
        Hashtbl.replace t.sent_idx f len
      end
      else if from < len then begin
        max_lag := max !max_lag (len - from);
        let count = min cap (len - from) in
        sent_entries := !sent_entries + count;
        incr sent_followers;
        if Obs.Trace.on () then
          Obs.Trace.emit ~node:t.id
            (Obs.Event.Accept_sent
               {
                 b = trace_ballot t.dur.prom_rnd;
                 start_idx = from;
                 count;
               });
        t.send ~dst:f
          (Accept
             {
               n = t.dur.prom_rnd;
               start_idx = from;
               entries = Log.sub t.dur.log ~pos:from ~len:count;
               decided_idx = t.dur.decided_idx;
             });
        Hashtbl.replace t.sent_idx f (from + count)
      end)
    t.synced;
  if !sent_followers > 0 && Obs.Trace.on () then
    Obs.Trace.emit ~node:t.id
      (Obs.Event.Batch_flush
         {
           entries = !sent_entries;
           followers = !sent_followers;
           cap;
           trigger;
         });
  if b.Batching.adaptive then begin
    let before = t.batch_cap in
    if !max_lag >= t.batch_cap then
      t.batch_cap <- min b.Batching.max_batch (2 * t.batch_cap)
    else if 2 * !max_lag <= t.batch_cap then
      t.batch_cap <- max b.Batching.min_batch (t.batch_cap / 2);
    if t.batch_cap <> before && Obs.Trace.on () then
      Obs.Trace.emit ~node:t.id
        (Obs.Event.Cap_change { cap_from = before; cap_to = t.batch_cap })
  end;
  t.unflushed <- 0;
  t.ticks_since_flush <- 0;
  if t.quorum = 1 then try_decide t

(* Follower half of ack coalescing: a deferred Accepted is swept out on the
   next tick, bounding the extra decide latency by one tick period. *)
let flush_acks t =
  if t.ack_pending then begin
    t.ack_pending <- false;
    if
      role_is_follower t.role
      && Ballot.equal t.dur.prom_rnd t.dur.acc_rnd
      && t.dur.prom_rnd.Ballot.pid <> t.id
    then begin
      let len = Log.length t.dur.log in
      t.acked_idx <- len;
      t.send ~dst:t.dur.prom_rnd.Ballot.pid
        (Accepted { n = t.dur.prom_rnd; log_idx = len })
    end
  end

let propose t entry =
  match t.role with
  | Follower -> false
  | Leader_prepare ->
      if Option.is_some t.ss_idx then false
      else begin
        Queue.add entry t.buffer;
        true
      end
  | Leader_accept ->
      if Option.is_some t.ss_idx then false
      else begin
        append_entry t entry;
        trace_proposed t entry;
        t.unflushed <- t.unflushed + 1;
        (* Size trigger: under the adaptive policy a burst is flushed as
           soon as it fills the current batch cap, without waiting for the
           tick deadline. *)
        if t.batching.Batching.adaptive && t.unflushed >= t.batch_cap then
          do_flush t ~trigger:"size";
        true
      end

let flush t =
  if role_is_leader_accept t.role then begin
    t.ticks_since_flush <- t.ticks_since_flush + 1;
    if t.ticks_since_flush >= t.batching.Batching.deadline_ticks then
      do_flush t ~trigger:"deadline"
  end
  else flush_acks t

let recover t =
  t.role <- Follower;
  List.iter (fun peer -> t.send ~dst:peer Prepare_req) t.peers

let session_reset t ~peer =
  if is_leader t then resend_prepare_to t ~dst:peer
  else t.send ~dst:peer Prepare_req

let entries_size entries =
  List.fold_left (fun acc e -> acc + Entry.size e) 0 entries

let msg_size = function
  | Prepare _ -> 57
  | Promise { suffix; snapshot; _ } ->
      65 + entries_size suffix
      + (match snapshot with Some (_, p) -> 16 + String.length p | None -> 0)
  | Accept_sync { suffix; snapshot; _ } ->
      49 + entries_size suffix
      + (match snapshot with Some (_, p) -> 16 + String.length p | None -> 0)
  | Accept { entries; _ } -> 41 + entries_size entries
  | Accepted _ -> 33
  | Decide _ -> 33
  | Trim _ -> 33
  | Prepare_req -> 9
