type config = {
  adaptive : bool;
  max_batch : int;
  min_batch : int;
  deadline_ticks : int;
  ack_every : int;
}

let fixed =
  {
    adaptive = false;
    max_batch = 4096;
    min_batch = 4096;
    deadline_ticks = 1;
    ack_every = 1;
  }

let adaptive =
  {
    adaptive = true;
    max_batch = 4096;
    min_batch = 64;
    deadline_ticks = 1;
    ack_every = 4;
  }

let name c = if c.adaptive then "adaptive" else "fixed"

let validated c =
  let min_batch = max 1 c.min_batch in
  {
    c with
    min_batch;
    max_batch = max min_batch c.max_batch;
    deadline_ticks = max 1 c.deadline_ticks;
    ack_every = max 1 c.ack_every;
  }
