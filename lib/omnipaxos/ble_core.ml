(* Pure transition core of Ballot Leader Election (Figure 4 of the paper).
   No callbacks, no clocks, no mutation: one step maps a state and an input
   to a new state plus an ordered list of outputs, and the simnet adapter
   ([Ble]) interprets the outputs. Enforced by opxlint: every definition
   here is in the [pure_core] manifest (effects.facts) and carries [@pure],
   so an inferred write/io/ambient effect fails the build (rule E1). *)

type msg =
  | Hb_request of { round : int }
  | Hb_reply of { round : int; ballot : Ballot.t; qc : bool }

type config = {
  id : int;
  peers : int list;
  quorum : int;
  qc_signal : bool;
  connectivity_priority : bool;
}

type state = {
  ballot : Ballot.t;
  leader : Ballot.t option;
  qc : bool;
  round : int;
  replies : (int * (Ballot.t * bool)) list;
}

type input = Tick | Deliver of { src : int; msg : msg }

type output =
  | Send of { dst : int; msg : msg }
  | Elected of { ballot : Ballot.t; first : bool }
  | Ballot_bumped of Ballot.t

let[@pure] make_config ~id ~peers ?(qc_signal = true)
    ?(connectivity_priority = false) () =
  let n_total = List.length peers + 1 in
  { id; peers; quorum = (n_total / 2) + 1; qc_signal; connectivity_priority }

let[@pure] init ?(priority = 0) ~ballot_n cfg =
  {
    ballot = { Ballot.n = ballot_n; priority; pid = cfg.id };
    leader = None;
    qc = false;
    round = 0;
    replies = [];
  }

let[@pure] leader_ballot s = Option.value s.leader ~default:Ballot.bottom

(* Insert keeping [replies] sorted by source id with at most one entry per
   source — the order [Det.sorted_bindings] used to impose at read time,
   maintained structurally instead. *)
let[@pure] set_reply (src : int) v replies =
  let rec go = function
    | [] -> [ (src, v) ]
    | ((k, _) as hd) :: tl ->
        if k < src then hd :: go tl
        else if k = src then (src, v) :: tl
        else (src, v) :: hd :: tl
  in
  go replies

(* The checkLeader step of Figure 4, run when a heartbeat round closes. *)
let[@pure] check_round cfg s =
  let reply_list = List.map snd s.replies in
  let connected = List.length reply_list + 1 in
  if connected >= cfg.quorum then begin
    let s = { s with qc = true } in
    (* Candidates are the QC servers heard from this round, plus self.
       Without the QC signal (ablation) every alive server is a candidate. *)
    let candidates =
      s.ballot
      :: List.filter_map
           (fun (b, qc) -> if qc || not cfg.qc_signal then Some b else None)
           reply_list
    in
    let max_candidate = List.fold_left Ballot.max Ballot.bottom candidates in
    let led = leader_ballot s in
    if Ballot.(max_candidate > led) then
      ( { s with leader = Some max_candidate },
        [ Elected { ballot = max_candidate; first = Option.is_none s.leader } ]
      )
    else if Ballot.(max_candidate < led) then begin
      (* The elected leader is dead or no longer quorum-connected: take over
         by bumping our ballot above every ballot seen (including the stale
         leader's), so we outrank it in the coming rounds. With the
         connectivity optimisation of §8, the priority field carries how
         many peers we currently hear, so the best-connected of the
         simultaneous candidates wins the tie at the same round number. *)
      let max_seen =
        List.fold_left (fun acc (b, _) -> Ballot.max acc b) led reply_list
      in
      let ballot = Ballot.bump_above s.ballot max_seen in
      let ballot =
        if cfg.connectivity_priority then
          { ballot with Ballot.priority = connected }
        else ballot
      in
      ({ s with ballot }, [ Ballot_bumped ballot ])
    end
    else (s, [])
  end
  else ({ s with qc = false }, [])

let[@pure] tick cfg s =
  (* The first round only propagates QC flags: electing before peers have
     reported their status would make every server elect itself. *)
  let s, outputs =
    if s.round >= 2 then check_round cfg s
    else if List.length s.replies + 1 >= cfg.quorum then
      ({ s with qc = true }, [])
    else (s, [])
  in
  let s = { s with replies = []; round = s.round + 1 } in
  let request = Hb_request { round = s.round } in
  (s, outputs @ List.map (fun peer -> Send { dst = peer; msg = request }) cfg.peers)

let[@pure] handle _cfg s ~src msg =
  match msg with
  | Hb_request { round } ->
      (s, [ Send { dst = src; msg = Hb_reply { round; ballot = s.ballot; qc = s.qc } } ])
  | Hb_reply { round; ballot; qc } ->
      if round = s.round then
        ({ s with replies = set_reply src (ballot, qc) s.replies }, [])
      else (s, [])

let[@pure] step cfg s input =
  match input with
  | Tick -> tick cfg s
  | Deliver { src; msg } -> handle cfg s ~src msg

let[@pure] msg_size = function Hb_request _ -> 12 | Hb_reply _ -> 29
