(** Snapshot/compaction trigger policy, shared by all four protocols via
    [Rsm.Cluster.config].

    When enabled, a node snapshots its state machine and truncates the log
    below the snapshot watermark once the retained decided prefix reaches
    [snapshot_interval] entries. [retain] keeps that many of the newest
    decided entries in the log past the watermark, so slightly-lagging
    followers can still be caught up with plain log entries instead of a
    full snapshot transfer.

    In Omni-Paxos the trigger runs on the leader against a quorum-confirmed
    acceptance watermark and propagates to followers with the [Trim]
    message; Raft and Multi-Paxos compact locally below their own
    commit/decide watermark (the classic local decision); VR inherits the
    Sequence Paxos behaviour. A follower that was trimmed past (crash,
    partition) is repaired with a snapshot install instead of log entries —
    see DESIGN.md section 12. *)

type config = {
  snapshot_interval : int;
      (** take a snapshot every time this many decided-but-untrimmed
          entries accumulate; [0] disables compaction entirely *)
  retain : int;  (** decided entries to keep in the log below the frontier *)
}

val disabled : config
(** [{snapshot_interval = 0; retain = 0}] — never compacts (the default
    everywhere, so workloads that never opt in are byte-identical). *)

val enabled : config -> bool

val make : ?retain:int -> int -> config
(** [make ?retain snapshot_interval], validated. *)

val validated : config -> config
(** Raises [Invalid_argument] on negative fields. *)
