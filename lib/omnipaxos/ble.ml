(* Effectful adapter around the pure BLE transition core ([Ble_core]).
   Owns the mutable current state, the stable-storage ballot cell and the
   transport/election callbacks; each driver call runs one [Ble_core.step]
   and interprets the outputs in order. This module is the sanctioned
   emission shim for BLE (allow_emit in effects.facts): everything that
   decides is in the core, everything that performs is here. *)

type msg = Ble_core.msg =
  | Hb_request of { round : int }
  | Hb_reply of { round : int; ballot : Ballot.t; qc : bool }

type persistent = { mutable ballot_n : int }

let fresh_persistent () = { ballot_n = 1 }

type t = {
  config : Ble_core.config;
  persistent : persistent;
  send : dst:int -> msg -> unit;
  on_leader : Ballot.t -> unit;
  mutable state : Ble_core.state;
}

let create ~id ~peers ?(priority = 0) ?(qc_signal = true)
    ?(connectivity_priority = false) ~persistent ~send ~on_leader () =
  let config =
    Ble_core.make_config ~id ~peers ~qc_signal ~connectivity_priority ()
  in
  {
    config;
    persistent;
    send;
    on_leader;
    state = Ble_core.init ~priority ~ballot_n:persistent.ballot_n config;
  }

let current_ballot t = t.state.Ble_core.ballot
let leader t = t.state.Ble_core.leader
let is_quorum_connected t = t.state.Ble_core.qc

let trace_ballot (b : Ballot.t) =
  { Obs.Event.n = b.Ballot.n; prio = b.priority; pid = b.pid }

let apply_output t (o : Ble_core.output) =
  match o with
  | Ble_core.Send { dst; msg } -> t.send ~dst msg
  | Ble_core.Elected { ballot; first } ->
      if Obs.Trace.on () then
        Obs.Trace.emit ~node:t.config.Ble_core.id
          (if first then Obs.Event.Leader_elected (trace_ballot ballot)
           else Obs.Event.Leader_changed (trace_ballot ballot));
      t.on_leader ballot
  | Ble_core.Ballot_bumped ballot ->
      (* Persist before anything can observe the new ballot: LE3 requires
         ballot numbers monotone across crashes. *)
      t.persistent.ballot_n <- ballot.Ballot.n;
      if Obs.Trace.on () then
        Obs.Trace.emit ~node:t.config.Ble_core.id
          (Obs.Event.Ballot_increment (trace_ballot ballot))

let run t input =
  let state, outputs = Ble_core.step t.config t.state input in
  t.state <- state;
  List.iter (apply_output t) outputs

let tick t = run t Ble_core.Tick
let handle t ~src msg = run t (Ble_core.Deliver { src; msg })
let msg_size = Ble_core.msg_size
