type msg =
  | Hb_request of { round : int }
  | Hb_reply of { round : int; ballot : Ballot.t; qc : bool }

type persistent = { mutable ballot_n : int }

let fresh_persistent () = { ballot_n = 1 }

type t = {
  id : int;
  peers : int list;
  quorum : int;
  qc_signal : bool;
  connectivity_priority : bool;
  persistent : persistent;
  send : dst:int -> msg -> unit;
  on_leader : Ballot.t -> unit;
  mutable ballot : Ballot.t;
  mutable leader : Ballot.t option;
  mutable qc : bool;
  mutable round : int;
  replies : (int, Ballot.t * bool) Hashtbl.t;
}

let create ~id ~peers ?(priority = 0) ?(qc_signal = true)
    ?(connectivity_priority = false) ~persistent ~send ~on_leader () =
  let n_total = List.length peers + 1 in
  {
    id;
    peers;
    quorum = (n_total / 2) + 1;
    qc_signal;
    connectivity_priority;
    persistent;
    send;
    on_leader;
    ballot = { Ballot.n = persistent.ballot_n; priority; pid = id };
    leader = None;
    qc = false;
    round = 0;
    replies = Hashtbl.create 8;
  }

let current_ballot t = t.ballot
let leader t = t.leader
let is_quorum_connected t = t.qc

let leader_ballot t = Option.value t.leader ~default:Ballot.bottom

let trace_ballot (b : Ballot.t) =
  { Obs.Event.n = b.Ballot.n; prio = b.priority; pid = b.pid }

(* The checkLeader step of Figure 4, run when a heartbeat round closes. *)
let check_round t =
  let reply_list =
    List.map snd (Replog.Det.sorted_bindings ~compare_key:Int.compare t.replies)
  in
  let connected = List.length reply_list + 1 in
  if connected >= t.quorum then begin
    t.qc <- true;
    (* Candidates are the QC servers heard from this round, plus self.
       Without the QC signal (ablation) every alive server is a candidate. *)
    let candidates =
      t.ballot
      :: List.filter_map
           (fun (b, qc) -> if qc || not t.qc_signal then Some b else None)
           reply_list
    in
    let max_candidate = List.fold_left Ballot.max Ballot.bottom candidates in
    let led = leader_ballot t in
    if Ballot.(max_candidate > led) then begin
      let first = Option.is_none t.leader in
      t.leader <- Some max_candidate;
      if Obs.Trace.on () then
        Obs.Trace.emit ~node:t.id
          (if first then Obs.Event.Leader_elected (trace_ballot max_candidate)
           else Obs.Event.Leader_changed (trace_ballot max_candidate));
      t.on_leader max_candidate
    end
    else if Ballot.(max_candidate < led) then begin
      (* The elected leader is dead or no longer quorum-connected: take over
         by bumping our ballot above every ballot seen (including the stale
         leader's), so we outrank it in the coming rounds. With the
         connectivity optimisation of §8, the priority field carries how
         many peers we currently hear, so the best-connected of the
         simultaneous candidates wins the tie at the same round number. *)
      let max_seen =
        List.fold_left (fun acc (b, _) -> Ballot.max acc b) led reply_list
      in
      t.ballot <- Ballot.bump_above t.ballot max_seen;
      if t.connectivity_priority then
        t.ballot <- { t.ballot with Ballot.priority = connected };
      t.persistent.ballot_n <- t.ballot.Ballot.n;
      if Obs.Trace.on () then
        Obs.Trace.emit ~node:t.id
          (Obs.Event.Ballot_increment (trace_ballot t.ballot))
    end
  end
  else t.qc <- false

let tick t =
  (* The first round only propagates QC flags: electing before peers have
     reported their status would make every server elect itself. *)
  if t.round >= 2 then check_round t
  else if Hashtbl.length t.replies + 1 >= t.quorum then t.qc <- true;
  Hashtbl.reset t.replies;
  t.round <- t.round + 1;
  let request = Hb_request { round = t.round } in
  List.iter (fun peer -> t.send ~dst:peer request) t.peers

let handle t ~src msg =
  match msg with
  | Hb_request { round } ->
      t.send ~dst:src (Hb_reply { round; ballot = t.ballot; qc = t.qc })
  | Hb_reply { round; ballot; qc } ->
      if round = t.round then Hashtbl.replace t.replies src (ballot, qc)

let msg_size = function Hb_request _ -> 12 | Hb_reply _ -> 29
