type msg = Ble_msg of Ble.msg | Sp_msg of Sequence_paxos.msg

module Storage = struct
  type t = { ble : Ble.persistent; sp : Sequence_paxos.persistent }

  let create () =
    { ble = Ble.fresh_persistent (); sp = Sequence_paxos.fresh_persistent () }
end

type t = {
  ble : Ble.t;
  sp : Sequence_paxos.t;
  hb_ticks : int;
  mutable tick_count : int;
}

let create ~id ~peers ?priority ?qc_signal ?connectivity_priority
    ?(hb_ticks = 10) ?batching ?compaction ~storage ~send ?on_decide
    ?snapshotter ?on_snapshot () =
  let sp_ref = ref None in
  let ble =
    Ble.create ~id ~peers ?priority ?qc_signal ?connectivity_priority
      ~persistent:storage.Storage.ble
      ~send:(fun ~dst m -> send ~dst (Ble_msg m))
      ~on_leader:(fun b ->
        match !sp_ref with
        | Some sp -> Sequence_paxos.handle_leader sp b
        | None -> ())
      ()
  in
  let sp =
    Sequence_paxos.create ~id ~peers ~persistent:storage.Storage.sp ?batching
      ?compaction
      ~send:(fun ~dst m -> send ~dst (Sp_msg m))
      ?on_decide ?snapshotter ?on_snapshot ()
  in
  sp_ref := Some sp;
  { ble; sp; hb_ticks; tick_count = 0 }

let handle t ~src msg =
  match msg with
  | Ble_msg m -> Ble.handle t.ble ~src m
  | Sp_msg m -> Sequence_paxos.handle t.sp ~src m

let tick t =
  t.tick_count <- t.tick_count + 1;
  if t.tick_count mod t.hb_ticks = 0 then begin
    Ble.tick t.ble;
    (* Re-deliver the current leader event: a leader whose Prepare phase was
       started before a partition keeps its round; followers re-learn it
       through BLE only when the ballot changes, so this is a no-op unless
       the ballot advanced. *)
    match Ble.leader t.ble with
    | Some b -> Sequence_paxos.handle_leader t.sp b
    | None -> ()
  end;
  (* The batcher's flush gets its own profiler frame (nested under the
     tick that drove it) — it is the hot-path cost the adaptive batching
     policy trades against latency. Cold branch repeats the call so the
     profiler-off path allocates no closure. *)
  if Obs.Profile.on () then
    Obs.Profile.wrap "batching/flush" (fun () -> Sequence_paxos.flush t.sp)
  else Sequence_paxos.flush t.sp

let session_reset t ~peer = Sequence_paxos.session_reset t.sp ~peer
let recover t = Sequence_paxos.recover t.sp
let propose t entry = Sequence_paxos.propose t.sp entry
let propose_cmd t cmd = propose t (Entry.Cmd cmd)

let propose_reconfigure t ~config_id ~nodes =
  let ok = propose t (Entry.Stop_sign { config_id; nodes; metadata = "" }) in
  if ok && Obs.Trace.on () then
    Obs.Trace.emit
      ~node:(Sequence_paxos.id t.sp)
      (Obs.Event.Reconfig { config_id; milestone = "stop-sign-proposed" });
  ok

let request_trim t ~upto = Sequence_paxos.request_trim t.sp ~upto
let first_idx t = Sequence_paxos.first_idx t.sp
let snapshot t = Sequence_paxos.snapshot t.sp
let snapshot_client_cmds t = Sequence_paxos.snapshot_client_cmds t.sp
let is_leader t = Sequence_paxos.is_leader t.sp
let leader_pid t = Sequence_paxos.leader_pid t.sp
let current_ballot t = Ble.current_ballot t.ble
let is_quorum_connected t = Ble.is_quorum_connected t.ble
let decided_idx t = Sequence_paxos.decided_idx t.sp
let log_length t = Sequence_paxos.log_length t.sp
let read_decided t ~from = Sequence_paxos.read_decided t.sp ~from
let read_log t = Sequence_paxos.read_log t.sp
let stop_sign t = Sequence_paxos.stop_sign t.sp
let is_stopped t = Sequence_paxos.is_stopped t.sp
let sequence_paxos t = t.sp
let ble t = t.ble

let msg_size = function
  | Ble_msg m -> Ble.msg_size m
  | Sp_msg m -> Sequence_paxos.msg_size m
