(** Entries of the replicated log.

    A [Stop_sign] is the reconfiguration sentinel of §6: once it is decided
    in configuration [i], no further entry can be decided in that
    configuration, and the service layer starts configuration [i+1] with the
    listed nodes. By construction a stop-sign is always the last entry of a
    configuration's log. *)

type stop_sign = { config_id : int; nodes : int list; metadata : string }

type t = Cmd of Replog.Command.t | Stop_sign of stop_sign

let cmd c = Cmd c
let is_stop_sign = function Stop_sign _ -> true | Cmd _ -> false

let size = function
  | Cmd c -> Replog.Command.size c
  | Stop_sign ss -> 24 + (8 * List.length ss.nodes) + String.length ss.metadata

let stop_sign_equal a b =
  Int.equal a.config_id b.config_id
  && List.equal Int.equal a.nodes b.nodes
  && String.equal a.metadata b.metadata

let equal a b =
  match (a, b) with
  | Cmd x, Cmd y -> Replog.Command.equal x y
  | Stop_sign x, Stop_sign y -> stop_sign_equal x y
  | Cmd _, Stop_sign _ | Stop_sign _, Cmd _ -> false

let pp ppf = function
  | Cmd c -> Replog.Command.pp ppf c
  | Stop_sign ss ->
      Format.fprintf ppf "SS(cfg=%d,nodes=[%s])" ss.config_id
        (String.concat ";" (List.map string_of_int ss.nodes))
