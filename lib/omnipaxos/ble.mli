(** Ballot Leader Election (BLE), §5.2 of the paper.

    Servers exchange heartbeats in rounds of one election timeout each. A
    heartbeat reply carries the sender's current ballot and a
    quorum-connected (QC) flag. At the end of each round a server that
    received a majority of replies (i.e. is itself QC) elects the
    QC server with the highest ballot. If the previously elected leader is
    no longer a QC candidate, QC servers bump their own ballot above every
    ballot seen, attempting to take over.

    Satisfies LE1 (QC-completeness), LE2 (QC-eventual agreement) and LE3
    (monotonically increasing unique ballots); see the test-suite properties.

    The module is transport-agnostic: it emits messages through the [send]
    callback and is driven by [tick] (one call = one heartbeat round).

    All election logic lives in the pure transition core [Ble_core]; this
    module is the effectful adapter that owns the mutable state, interprets
    the core's outputs (sends, traces, persistence, the [on_leader] signal)
    and keeps the historical callback API for the simnet harness. *)

type msg = Ble_core.msg =
  | Hb_request of { round : int }
  | Hb_reply of { round : int; ballot : Ballot.t; qc : bool }

type persistent = { mutable ballot_n : int }
(** Ballot numbers must be monotone across crashes for LE3; this cell lives
    in the server's stable storage. *)

type t

val fresh_persistent : unit -> persistent

val create :
  id:int ->
  peers:int list ->
  ?priority:int ->
  ?qc_signal:bool ->
  ?connectivity_priority:bool ->
  persistent:persistent ->
  send:(dst:int -> msg -> unit) ->
  on_leader:(Ballot.t -> unit) ->
  unit ->
  t
(** [qc_signal] (default [true]) controls whether heartbeats carry the QC
    flag. Disabling it is the ablation of Table 1's "QC status heartbeats"
    column: servers then treat every reply as coming from a candidate, and
    quorum-loss recovery is lost.

    [connectivity_priority] (default [false]) enables the §8 optimisation:
    a server taking over leadership stamps its ballot's priority with the
    number of peers it currently hears, so the best-connected simultaneous
    candidate wins ties. Liveness is unaffected — candidates must still be
    quorum-connected. *)

val tick : t -> unit
(** Close the current heartbeat round (evaluate [checkLeader]) and start the
    next one. Call once per election timeout. *)

val handle : t -> src:int -> msg -> unit

val current_ballot : t -> Ballot.t
val leader : t -> Ballot.t option
val is_quorum_connected : t -> bool
(** Result of the last completed round. *)

val msg_size : msg -> int
