(** Batch-flush policy of the Sequence Paxos leader (and, mirrored through
    the adapters in [lib/rsm], of the Raft and Multi-Paxos baselines, so the
    Figure 7/8 comparisons stay apples-to-apples).

    The {e fixed} policy is the historical behaviour: the leader accumulates
    proposals and, on every driver tick, sends one [Accept] per follower
    capped at [max_batch] entries; followers acknowledge every batch
    immediately. Decide latency is therefore bounded below by the tick
    period regardless of load.

    The {e adaptive} policy keeps the tick as a deadline but adds:

    - {b size-triggered flushes}: a proposal burst is flushed as soon as the
      unsent backlog reaches the current batch cap, without waiting for the
      next tick — under load, replication latency drops from O(tick) to
      O(RTT);
    - {b backlog-aware batch sizing}: the per-[Accept] cap adapts
      multiplicatively (doubling towards [max_batch] while flushes run
      full, halving towards [min_batch] as the backlog drains), so light
      workloads ship small, low-latency frames while heavy backlogs
      amortise headers over large frames;
    - {b Accepted-ack coalescing}: followers acknowledge at most once per
      [ack_every] appended entries, deferring the rest to their next tick,
      which trims the ack storm that eager flushing would otherwise cause.

    With [deadline_ticks = 1], [min_batch = max_batch] and [ack_every = 1]
    the adaptive policy degenerates exactly to the fixed one (a property
    checked by [test/test_batching.ml]). *)

type config = {
  adaptive : bool;  (** [false]: the historical fixed policy *)
  max_batch : int;  (** hard cap on entries per [Accept] message *)
  min_batch : int;
      (** adaptive: floor of the batch cap and initial eager-flush
          threshold *)
  deadline_ticks : int;
      (** adaptive: a pending entry waits at most this many ticks before a
          flush is forced (1 = flush every tick, as the fixed policy) *)
  ack_every : int;
      (** adaptive: followers coalesce [Accepted] acknowledgements, sending
          at most one per this many appended entries (plus one per tick for
          stragglers); 1 = acknowledge every batch *)
}

val fixed : config
(** The historical policy: [max_batch = 4096], flush on every tick, ack
    every batch. *)

val adaptive : config
(** Default adaptive policy: cap in [64, 4096] (AIMD), eager size-triggered
    flushes, 1-tick deadline, acks coalesced 4:1. *)

val name : config -> string
(** ["fixed"] or ["adaptive"] — the label used in benchmark reports. *)

val validated : config -> config
(** Clamp nonsensical values ([min_batch], [ack_every], [deadline_ticks]
    below 1; [max_batch] below [min_batch]) into a safe configuration. *)
