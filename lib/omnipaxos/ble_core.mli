(** Pure transition core of Ballot Leader Election (BLE, §5.2).

    [step config state input] is a total function returning the successor
    state and an ordered list of outputs; it performs no effects. The clock
    arrives as the [Tick] input (one per election timeout), sends leave as
    [Send] outputs, and election / takeover decisions leave as [Elected] /
    [Ballot_bumped] outputs for the adapter ([Ble]) to trace, persist and
    signal. Every definition is [@pure]-annotated and listed in the
    [pure_core] manifest of effects.facts: opxlint rule E1 fails the build
    if an inferred write, io or ambient effect creeps in. *)

type msg =
  | Hb_request of { round : int }
  | Hb_reply of { round : int; ballot : Ballot.t; qc : bool }

type config = {
  id : int;
  peers : int list;
  quorum : int;
  qc_signal : bool;
  connectivity_priority : bool;
}
(** [qc_signal] (default [true]) controls whether heartbeats carry the QC
    flag — disabling it is the ablation of Table 1's "QC status heartbeats"
    column. [connectivity_priority] (default [false]) enables the §8
    optimisation: a takeover ballot's priority field carries the number of
    peers currently heard. *)

type state = {
  ballot : Ballot.t;
  leader : Ballot.t option;
  qc : bool;  (** quorum-connected as of the last completed round *)
  round : int;
  replies : (int * (Ballot.t * bool)) list;
      (** replies of the open round: [(src, (ballot, qc))], sorted by [src],
          at most one entry per source *)
}

type input = Tick | Deliver of { src : int; msg : msg }

type output =
  | Send of { dst : int; msg : msg }
  | Elected of { ballot : Ballot.t; first : bool }
      (** a new leader was elected; [first] distinguishes the initial
          election from a change *)
  | Ballot_bumped of Ballot.t
      (** takeover attempt: the new own ballot must be persisted before the
          next send (LE3 monotonicity across crashes) *)

val make_config :
  id:int ->
  peers:int list ->
  ?qc_signal:bool ->
  ?connectivity_priority:bool ->
  unit ->
  config

val init : ?priority:int -> ballot_n:int -> config -> state
(** [ballot_n] is the recovered persistent ballot number. *)

val check_round : config -> state -> state * output list
(** The checkLeader step of Figure 4, closing a heartbeat round. Exposed for
    direct property testing; [step] calls it from [Tick]. *)

val tick : config -> state -> state * output list
val handle : config -> state -> src:int -> msg -> state * output list

val step : config -> state -> input -> state * output list
(** [Tick] closes the round then broadcasts the next round's heartbeat
    requests; [Deliver] processes one incoming message. *)

val msg_size : msg -> int
