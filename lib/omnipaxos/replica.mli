(** An Omni-Paxos server: one Ballot Leader Election instance composed with
    one Sequence Paxos instance (Figure 2), behind a single message type and
    a single [tick] clock.

    [tick] must be called once per tick period; every [hb_ticks] ticks a BLE
    heartbeat round closes (so the election timeout is
    [hb_ticks * tick period]). Sequence Paxos batches are flushed on every
    tick. *)

type msg = Ble_msg of Ble.msg | Sp_msg of Sequence_paxos.msg

module Storage : sig
  (** The server's stable storage; survives crashes. Keep it outside the
      replica and pass it again when rebuilding after a crash. *)
  type t = { ble : Ble.persistent; sp : Sequence_paxos.persistent }

  val create : unit -> t
end

type t

val create :
  id:int ->
  peers:int list ->
  ?priority:int ->
  ?qc_signal:bool ->
  ?connectivity_priority:bool ->
  ?hb_ticks:int ->
  ?batching:Batching.config ->
  ?compaction:Compaction.config ->
  storage:Storage.t ->
  send:(dst:int -> msg -> unit) ->
  ?on_decide:(int -> unit) ->
  ?snapshotter:(unit -> string) ->
  ?on_snapshot:(int -> string -> unit) ->
  unit ->
  t
(** [hb_ticks] defaults to 10. [batching] selects the Sequence Paxos
    batch-flush policy (default {!Batching.fixed}); [compaction] (default
    {!Compaction.disabled}) the snapshot-and-trim trigger. [snapshotter] /
    [on_snapshot] enable snapshot-based repair of followers below the trim
    point; see {!Sequence_paxos.create}. *)

val handle : t -> src:int -> msg -> unit
val tick : t -> unit
val session_reset : t -> peer:int -> unit

val recover : t -> unit
(** Run the fail-recovery protocol after rebuilding the replica on its old
    storage. *)

val propose : t -> Entry.t -> bool
val propose_cmd : t -> Replog.Command.t -> bool

val propose_reconfigure : t -> config_id:int -> nodes:int list -> bool
(** Append the stop-sign that ends this configuration (§6). *)

val request_trim : t -> upto:int -> bool
(** Leader-side log compaction; see {!Sequence_paxos.request_trim}. *)

val first_idx : t -> int
(** The log's trim point; see {!Sequence_paxos.first_idx}. *)

val snapshot : t -> string
(** Encoded state snapshot covering [0, first_idx);
    see {!Sequence_paxos.snapshot}. *)

val snapshot_client_cmds : t -> int
(** Client commands contained in the trimmed prefix. *)

val is_leader : t -> bool
val leader_pid : t -> int option
val current_ballot : t -> Ballot.t
val is_quorum_connected : t -> bool
val decided_idx : t -> int
val log_length : t -> int
val read_decided : t -> from:int -> Entry.t list
val read_log : t -> Entry.t Replog.Log.t
val stop_sign : t -> Entry.stop_sign option

val is_stopped : t -> bool
(** Whether a stop-sign has been appended/adopted in this configuration. *)

val sequence_paxos : t -> Sequence_paxos.t
val ble : t -> Ble.t
val msg_size : msg -> int
