(** Sequence Paxos — the log replication protocol of Omni-Paxos (§4).

    Replicates a gap-free, strictly growing log satisfying the Sequence
    Consensus properties SC1 (validity), SC2 (uniform agreement) and SC3
    (integrity). Leadership comes from outside (BLE) through
    [handle_leader]; a newly-elected leader synchronises the most updated
    log among a majority in the Prepare phase and then pipelines batched
    entries in the Accept phase.

    The module is transport-agnostic; the caller delivers messages, leader
    events, session resets, and periodic [flush] calls (which emit the
    batched [Accept] messages). Persistent state lives in a caller-owned
    [persistent] record so that crash/recovery can be modelled faithfully:
    rebuild the node with [create] on the same record and call [recover]. *)

type msg =
  | Prepare of {
      n : Ballot.t;
      acc_rnd : Ballot.t;
      log_idx : int;
      decided_idx : int;
    }
  | Promise of {
      n : Ballot.t;
      acc_rnd : Ballot.t;
      log_idx : int;
      decided_idx : int;
      suffix_from : int;
      suffix : Entry.t list;
      snapshot : (int * string) option;
          (** a state snapshot covering entries [0, idx), sent when the
              preparing leader needs entries below this server's trim
              point (the suffix alone would leave a gap) *)
    }
  | Accept_sync of {
      n : Ballot.t;
      sync_idx : int;
      suffix : Entry.t list;
      decided_idx : int;
      snapshot : (int * string) option;
          (** a state snapshot covering entries [0, idx), sent to followers
              whose logs are below the leader's trim point *)
    }
  | Accept of {
      n : Ballot.t;
      start_idx : int;  (** log position of the first entry of the batch *)
      entries : Entry.t list;
      decided_idx : int;
    }
  | Accepted of { n : Ballot.t; log_idx : int }
  | Decide of { n : Ballot.t; decided_idx : int }
  | Trim of { n : Ballot.t; trim_idx : int }
      (** log compaction: discard the decided prefix below [trim_idx] *)
  | Prepare_req

type persistent = {
  log : Entry.t Replog.Log.t;
  mutable prom_rnd : Ballot.t;  (** highest round promised *)
  mutable acc_rnd : Ballot.t;  (** round of the last accepted entry *)
  mutable decided_idx : int;
  mutable app : Replog.Kv.t;
      (** snapshot state machine covering exactly [0, first_idx log): kept
          in the durable record because a trim is only safe once the
          snapshot below it survives a crash *)
  mutable snap_client_cmds : int;
      (** client commands (id >= 0) folded into [app] *)
}

type role = Follower | Leader_prepare | Leader_accept

type t

val fresh_persistent : unit -> persistent

val create :
  id:int ->
  peers:int list ->
  persistent:persistent ->
  ?batching:Batching.config ->
  ?compaction:Compaction.config ->
  send:(dst:int -> msg -> unit) ->
  ?on_decide:(int -> unit) ->
  ?snapshotter:(unit -> string) ->
  ?on_snapshot:(int -> string -> unit) ->
  unit ->
  t
(** [on_decide] fires with the new decided index every time it advances.
    [batching] selects the batch-flush policy (default {!Batching.fixed},
    the historical flush-on-every-tick behaviour; see [batching.mli]).
    [compaction] (default {!Compaction.disabled}) enables automatic
    snapshot-and-trim on the leader once [snapshot_interval] decided
    entries accumulate above the trim point; the internal KV snapshot of
    [persistent.app] then repairs followers that fell below it.
    [snapshotter] supplies an opaque state-machine snapshot covering the
    trimmed prefix, overriding the internal one (e.g. for applications
    with their own state representation); [on_snapshot idx payload] fires
    at the receiving side so the application can restore its state
    machine. *)

val handle : t -> src:int -> msg -> unit

val handle_leader : t -> Ballot.t -> unit
(** Leader event from BLE: if the ballot is ours and higher than anything
    promised, start the Prepare phase; otherwise step down to follower. *)

val propose : t -> Entry.t -> bool
(** Append a client command (or stop-sign). Returns [false] if this server
    is not the leader, or the configuration is stopped — the client must
    retry elsewhere. During the Prepare phase proposals are buffered. *)

val flush : t -> unit
(** The per-tick driver hook. On a leader, runs the batching policy's
    deadline path: emit one batched [Accept] per promised follower with the
    entries proposed since its previous batch (under the adaptive policy,
    bursts may already have been flushed early by the size trigger, and the
    per-Accept cap adapts to the backlog). On a follower, sweeps out a
    deferred coalesced [Accepted] acknowledgement. Call once per tick. *)

val request_trim : t -> upto:int -> bool
(** Leader-side log compaction: discard the decided prefix below [upto] on
    every server. Succeeds only if [upto] is decided and every peer has
    acknowledged accepting at least [upto] in the current round; the
    followers then trim on receipt. *)

val recover : t -> unit
(** Fail-recovery (§4.1.3): enter the recover state and broadcast
    [Prepare_req]; the current leader answers with a [Prepare] that leads to
    log synchronisation. *)

val session_reset : t -> peer:int -> unit
(** Link session drop/re-establishment with [peer] (§4.1.3): a leader
    re-sends [Prepare] to that peer; a follower sends [Prepare_req]. *)

(** {1 Observers} *)

val id : t -> int
val role : t -> role
val is_leader : t -> bool
val current_round : t -> Ballot.t
val leader_pid : t -> int option
(** The pid of the round this server currently follows (or leads). *)

val decided_idx : t -> int
val log_length : t -> int
val read_decided : t -> from:int -> Entry.t list
(** Decided entries from [from] (clamped to the trim point). *)

val read_log : t -> Entry.t Replog.Log.t
val is_stopped : t -> bool
(** Whether a stop-sign has been appended/adopted (the configuration is
    being stopped). *)

val stop_sign : t -> Entry.stop_sign option
(** The stop-sign, once it is decided. *)

val batching : t -> Batching.config
(** The (validated) batch-flush policy this instance runs. *)

val first_idx : t -> int
(** The log's trim point: entries below it live only in the snapshot. *)

val snapshot : t -> string
(** The encoded state snapshot covering [0, first_idx): the registered
    [snapshotter]'s bytes when one exists, the internal
    {!Replog.Snapshot} envelope otherwise. *)

val snapshot_client_cmds : t -> int
(** Client commands (id >= 0) contained in the trimmed prefix. *)

val batch_cap : t -> int
(** The current adaptive per-[Accept] entry cap (constant [max_batch] under
    the fixed policy). Exposed for tests and benchmark reports. *)

val msg_size : msg -> int
(** Serialised size estimate in bytes, for IO accounting. *)
