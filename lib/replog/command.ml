(** Client commands replicated by the state machines.

    The paper's evaluation proposes 8-byte no-op commands; the [Noop]
    constructor models exactly that. [Kv] operations back the key-value
    store example and [Blob] models commands of arbitrary payload size for
    IO-volume experiments. *)

type op =
  | Noop
  | Kv_put of string * string
  | Kv_get of string
  | Kv_del of string
  | Blob of int  (** payload of [n] bytes *)

type t = { id : int; op : op }

let make ~id op = { id; op }
let noop id = { id; op = Noop }

(* Serialised size estimate in bytes: the paper's no-ops are 8 bytes. *)
let size t =
  match t.op with
  | Noop -> 8
  | Kv_put (k, v) -> 8 + String.length k + String.length v
  | Kv_get k | Kv_del k -> 8 + String.length k
  | Blob n -> max 8 n

let op_equal a b =
  match (a, b) with
  | Noop, Noop -> true
  | Kv_put (k1, v1), Kv_put (k2, v2) ->
      String.equal k1 k2 && String.equal v1 v2
  | Kv_get k1, Kv_get k2 | Kv_del k1, Kv_del k2 -> String.equal k1 k2
  | Blob n1, Blob n2 -> Int.equal n1 n2
  | (Noop | Kv_put _ | Kv_get _ | Kv_del _ | Blob _), _ -> false

let equal a b = Int.equal a.id b.id && op_equal a.op b.op
let compare a b = Int.compare a.id b.id

let pp ppf t =
  match t.op with
  | Noop -> Format.fprintf ppf "#%d:noop" t.id
  | Kv_put (k, v) -> Format.fprintf ppf "#%d:put(%s=%s)" t.id k v
  | Kv_get k -> Format.fprintf ppf "#%d:get(%s)" t.id k
  | Kv_del k -> Format.fprintf ppf "#%d:del(%s)" t.id k
  | Blob n -> Format.fprintf ppf "#%d:blob(%dB)" t.id n
