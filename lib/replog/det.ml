(** Deterministic views of hash tables.

    [Hashtbl] iteration order depends on the table's insertion history (and
    on the polymorphic hash), so any send fan-out or list accumulation that
    walks a table directly can differ between two runs that reached the
    same logical state by different paths — silently breaking bit-identical
    chaos replays and trace byte-stability. Every protocol-visible
    iteration goes through this module instead (enforced by opxlint rule
    D2): bindings are materialised and sorted by key before use.

    Tables are expected to use [Hashtbl.replace] semantics (at most one
    binding per key), as all tables in this tree do; with [Hashtbl.add]
    duplicates, bindings of equal keys keep their fold order. *)

let sorted_bindings ~compare_key tbl =
  let bindings =
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] [@lint.allow "D2"])
  in
  List.sort (fun (a, _) (b, _) -> compare_key a b) bindings

let sorted_keys ~compare_key tbl =
  List.map fst (sorted_bindings ~compare_key tbl)

(** [iter_sorted ~compare_key f tbl] applies [f key value] in ascending key
    order. *)
let iter_sorted ~compare_key f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ~compare_key tbl)
