(* Versioned state-machine snapshot envelope. See snapshot.mli. *)

type t = { last_idx : int; client_cmds : int; payload : string }

let magic = "opxsnap1"

(* FNV-1a, folded to 32 bits so the hex rendering is platform-independent
   (OCaml ints are 63-bit; without the mask the same bytes would render
   differently on a 32-bit runtime). *)
let checksum s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

let encode_payload ~last_idx ~client_cmds ~payload =
  Printf.sprintf "%s;%d;%d;%08x;%s" magic last_idx client_cmds
    (checksum payload) payload

let encode ~last_idx ~client_cmds kv =
  encode_payload ~last_idx ~client_cmds ~payload:(Kv.snapshot kv)

let decode s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let next_field pos =
    match String.index_from_opt s pos ';' with
    | Some stop -> Some (String.sub s pos (stop - pos), stop + 1)
    | None -> None
  in
  match next_field 0 with
  | Some (m, pos) when String.equal m magic -> (
      match next_field pos with
      | None -> fail "snapshot: truncated after magic"
      | Some (idx_s, pos) -> (
          match next_field pos with
          | None -> fail "snapshot: truncated after last_idx"
          | Some (cmds_s, pos) -> (
              match next_field pos with
              | None -> fail "snapshot: truncated after client_cmds"
              | Some (sum_s, pos) -> (
                  let payload =
                    String.sub s pos (String.length s - pos)
                  in
                  match
                    ( int_of_string_opt idx_s,
                      int_of_string_opt cmds_s,
                      int_of_string_opt ("0x" ^ sum_s) )
                  with
                  | Some last_idx, Some client_cmds, Some sum ->
                      if sum <> checksum payload then
                        fail "snapshot: checksum mismatch (%08x vs %08x)" sum
                          (checksum payload)
                      else Ok { last_idx; client_cmds; payload }
                  | _ -> fail "snapshot: malformed header fields"))))
  | Some (m, _) -> fail "snapshot: bad magic %S (want %S)" m magic
  | None -> fail "snapshot: no header"

let decode_exn s =
  match decode s with Ok t -> t | Error m -> invalid_arg m

let restore t = Kv.restore t.payload
