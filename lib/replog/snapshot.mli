(** Versioned, deterministic state-machine snapshot envelope.

    A snapshot captures the [Kv] state produced by applying the decided
    log prefix [0, last_idx). The encoding is byte-stable: equal states
    encode to equal bytes regardless of the history that produced them
    (the KV payload is key-sorted, see {!Kv.snapshot}), so snapshots can
    be golden-tested and compared across nodes.

    Wire format (version 1):

    {v opxsnap1;<last_idx>;<client_cmds>;<fnv1a-hex8>;<kv-payload> v}

    [client_cmds] is the number of client commands (id >= 0) contained in
    the covered prefix — internal noops excluded — so a receiver can
    translate the snapshot boundary into its client-visible command
    stream (the campaign oracle and [Rsm.Reconfig] joiners need this). *)

type t = {
  last_idx : int;  (** snapshot covers log indexes [0, last_idx) *)
  client_cmds : int;  (** client commands (id >= 0) in the covered prefix *)
  payload : string;  (** {!Kv.snapshot} bytes *)
}

val encode : last_idx:int -> client_cmds:int -> Kv.t -> string
(** Serialise the state of [kv] as a version-1 snapshot. Deterministic. *)

val encode_payload :
  last_idx:int -> client_cmds:int -> payload:string -> string
(** Like {!encode} for an already-serialised {!Kv.snapshot} payload. *)

val decode : string -> (t, string) result
(** Parse and verify (magic + checksum). *)

val decode_exn : string -> t
(** Raises [Invalid_argument] on a malformed snapshot. *)

val restore : t -> Kv.t
(** Rebuild the KV state machine from the snapshot payload. *)

val checksum : string -> int
(** The 32-bit FNV-1a checksum used in the envelope (exposed for tests). *)
