(** A tiny key-value state machine used by the examples: applying the
    decided log of any of the protocols in order yields a replicated KV
    store. Reads return the value at apply time, which is linearisable
    because reads go through the log. *)

type t = { table : (string, string) Hashtbl.t; mutable applied : int }

type result = Ok_unit | Value of string option

let create () = { table = Hashtbl.create 64; applied = 0 }

let apply t (cmd : Command.t) =
  t.applied <- t.applied + 1;
  match cmd.op with
  | Command.Noop | Command.Blob _ -> Ok_unit
  | Command.Kv_put (k, v) ->
      Hashtbl.replace t.table k v;
      Ok_unit
  | Command.Kv_get k -> Value (Hashtbl.find_opt t.table k)
  | Command.Kv_del k ->
      Hashtbl.remove t.table k;
      Ok_unit

let get t k = Hashtbl.find_opt t.table k
let applied t = t.applied
let size t = Hashtbl.length t.table

(* Serialise the state for snapshot-based transfer. Every string is
   length-prefixed, so arbitrary key/value bytes (including newlines and
   separators) round-trip. *)
let snapshot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d;" t.applied);
  (* Key-sorted, so equal stores serialise to equal bytes regardless of
     the insertion history that produced them. *)
  Det.iter_sorted ~compare_key:String.compare
    (fun k v ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%s%d:%s" (String.length k) k (String.length v) v))
    t.table;
  Buffer.contents buf

let restore payload =
  let t = create () in
  let pos = ref 0 in
  let read_until sep =
    let stop = String.index_from payload !pos sep in
    let s = String.sub payload !pos (stop - !pos) in
    pos := stop + 1;
    s
  in
  let read_field () =
    let len = int_of_string (read_until ':') in
    let s = String.sub payload !pos len in
    pos := !pos + len;
    s
  in
  t.applied <- int_of_string (read_until ';');
  while !pos < String.length payload do
    let k = read_field () in
    let v = read_field () in
    Hashtbl.replace t.table k v
  done;
  t
