(** Raft consensus (Ongaro & Ousterhout, 2014), used as the paper's main
    baseline. Implements leader election with randomized timeouts and the
    max-log vote restriction, log replication with [nextIndex] backtracking
    and pipelined batches, and the commit rule restricted to the current
    term.

    Two optional mechanisms reproduce the "Raft PV+CQ" configuration of the
    evaluation (the patch of Jensen et al. [24]):
    - [pre_vote]: candidates first run a PreVote round that does not disturb
      terms; a server only grants a pre-vote if its own election timer has
      expired (i.e. it no longer hears a leader).
    - [check_quorum]: a leader steps down if it has not heard from a
      majority within one election timeout.

    Reconfiguration follows the TiKV practice the paper benchmarks against:
    new servers join as learners, the leader alone streams them the full log,
    and once caught up a config-change entry switches the voter set.

    Driven by [tick]; the election timeout is drawn uniformly from
    [election_ticks, 2 * election_ticks] ticks, heartbeats are sent every
    [max 1 (election_ticks / 5)] ticks. *)

type entry_data =
  | Cmd of Replog.Command.t
  | Config of { config_id : int; voters : int list }

type entry = { term : int; data : entry_data }

type msg =
  | Request_vote of {
      term : int;
      last_log_idx : int;
      last_log_term : int;
      pre_vote : bool;
    }
  | Vote of { term : int; granted : bool; pre_vote : bool }
  | Append_entries of {
      term : int;
      prev_idx : int;  (** index before the first entry; -1 if none *)
      prev_term : int;
      entries : entry list;
      commit_idx : int;
    }
  | Append_resp of {
      term : int;
      success : bool;
      match_idx : int;  (** on failure: the follower's log length, as hint *)
    }
  | Install_snapshot of {
      term : int;
      idx : int;  (** the log restarts at [idx]; the payload covers [0, idx) *)
      snap_term : int;  (** term of entry [idx - 1], for AppendEntries checks *)
      payload : string;  (** a {!Replog.Snapshot} envelope *)
      commit_idx : int;
    }

type persistent = {
  mutable term : int;
  mutable voted_for : int option;
  log : entry Replog.Log.t;
  mutable app : Replog.Kv.t;
      (** snapshot state machine covering exactly [0, first_idx log); durable
          because a trim is only safe once the snapshot survives a crash *)
  mutable snap_term : int;  (** term of the last entry folded into [app] *)
  mutable snap_client_cmds : int;
      (** client commands (id >= 0) folded into [app] *)
}

type role = Follower | Candidate | Leader

type t

val fresh_persistent : unit -> persistent

val create :
  id:int ->
  voters:int list ->
  ?pre_vote:bool ->
  ?check_quorum:bool ->
  ?max_batch:int ->
  ?eager_batch:int ->
  ?snapshot_interval:int ->
  ?retain:int ->
  ?on_compact:(upto:int -> entries:int -> unit) ->
  ?on_install:(int -> string -> unit) ->
  election_ticks:int ->
  rand:Random.State.t ->
  persistent:persistent ->
  send:(dst:int -> msg -> unit) ->
  ?on_commit:(int -> unit) ->
  unit ->
  t
(** [voters] must include [id]. [max_batch] (default 4096) caps entries per
    AppendEntries; [eager_batch] (default 0 = off) flushes a proposal burst
    as soon as that many entries are pending for a peer, instead of on the
    next tick — the Raft mirror of the Omni-Paxos adaptive batching knob,
    keeping the throughput comparisons apples-to-apples.

    [snapshot_interval] (default 0 = off) enables local log compaction: once
    that many committed entries accumulate above the trim point, the server
    folds the committed prefix (except the last [retain] entries, default 0)
    into its KV snapshot and trims the log. A leader repairs followers whose
    next index fell below its trim point with [Install_snapshot].
    [on_compact] fires after each local trim, [on_install] after installing
    a leader-shipped snapshot. Note: [Config] entries are not carried by
    snapshots — do not combine compaction with reconfiguration. *)

val handle : t -> src:int -> msg -> unit
val tick : t -> unit
val session_reset : t -> peer:int -> unit
val recover : t -> unit

val propose : t -> Replog.Command.t -> bool

val add_learners : t -> int list -> unit
(** Leader only: start streaming the log to these servers (reconfiguration
    phase 1). *)

val learners_caught_up : t -> bool
val propose_config : t -> config_id:int -> voters:int list -> bool
(** Append the config-change entry (reconfiguration phase 2). *)

val committed_config : t -> (int * int list) option
(** The last committed [Config] entry, if any. *)

val role : t -> role
val is_leader : t -> bool
val leader_pid : t -> int option
val current_term : t -> int
val commit_idx : t -> int
val log_length : t -> int

val first_idx : t -> int
(** The log's trim point: entries below it live only in the snapshot. *)

val snapshot_client_cmds : t -> int
(** Client commands (id >= 0) contained in the trimmed prefix. *)

val snapshot : t -> string
(** The encoded {!Replog.Snapshot} envelope covering [0, first_idx). *)

val read_committed : t -> from:int -> entry list
(** Committed entries from [from] (clamped to the trim point). *)

val msg_size : msg -> int
