(** Raft consensus (Ongaro & Ousterhout, 2014), used as the paper's main
    baseline. Implements leader election with randomized timeouts and the
    max-log vote restriction, log replication with [nextIndex] backtracking
    and pipelined batches, and the commit rule restricted to the current
    term.

    Two optional mechanisms reproduce the "Raft PV+CQ" configuration of the
    evaluation (the patch of Jensen et al. [24]):
    - [pre_vote]: candidates first run a PreVote round that does not disturb
      terms; a server only grants a pre-vote if its own election timer has
      expired (i.e. it no longer hears a leader).
    - [check_quorum]: a leader steps down if it has not heard from a
      majority within one election timeout.

    Reconfiguration follows the TiKV practice the paper benchmarks against:
    new servers join as learners, the leader alone streams them the full log,
    and once caught up a config-change entry switches the voter set.

    Driven by [tick]; the election timeout is drawn uniformly from
    [election_ticks, 2 * election_ticks] ticks, heartbeats are sent every
    [max 1 (election_ticks / 5)] ticks. *)

type entry_data =
  | Cmd of Replog.Command.t
  | Config of { config_id : int; voters : int list }

type entry = { term : int; data : entry_data }

type msg =
  | Request_vote of {
      term : int;
      last_log_idx : int;
      last_log_term : int;
      pre_vote : bool;
    }
  | Vote of { term : int; granted : bool; pre_vote : bool }
  | Append_entries of {
      term : int;
      prev_idx : int;  (** index before the first entry; -1 if none *)
      prev_term : int;
      entries : entry list;
      commit_idx : int;
    }
  | Append_resp of {
      term : int;
      success : bool;
      match_idx : int;  (** on failure: the follower's log length, as hint *)
    }

type persistent = {
  mutable term : int;
  mutable voted_for : int option;
  log : entry Replog.Log.t;
}

type role = Follower | Candidate | Leader

type t

val fresh_persistent : unit -> persistent

val create :
  id:int ->
  voters:int list ->
  ?pre_vote:bool ->
  ?check_quorum:bool ->
  ?max_batch:int ->
  ?eager_batch:int ->
  election_ticks:int ->
  rand:Random.State.t ->
  persistent:persistent ->
  send:(dst:int -> msg -> unit) ->
  ?on_commit:(int -> unit) ->
  unit ->
  t
(** [voters] must include [id]. [max_batch] (default 4096) caps entries per
    AppendEntries; [eager_batch] (default 0 = off) flushes a proposal burst
    as soon as that many entries are pending for a peer, instead of on the
    next tick — the Raft mirror of the Omni-Paxos adaptive batching knob,
    keeping the throughput comparisons apples-to-apples. *)

val handle : t -> src:int -> msg -> unit
val tick : t -> unit
val session_reset : t -> peer:int -> unit
val recover : t -> unit

val propose : t -> Replog.Command.t -> bool

val add_learners : t -> int list -> unit
(** Leader only: start streaming the log to these servers (reconfiguration
    phase 1). *)

val learners_caught_up : t -> bool
val propose_config : t -> config_id:int -> voters:int list -> bool
(** Append the config-change entry (reconfiguration phase 2). *)

val committed_config : t -> (int * int list) option
(** The last committed [Config] entry, if any. *)

val role : t -> role
val is_leader : t -> bool
val leader_pid : t -> int option
val current_term : t -> int
val commit_idx : t -> int
val log_length : t -> int
val read_committed : t -> from:int -> entry list
val msg_size : msg -> int
