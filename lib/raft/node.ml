module Log = Replog.Log

type entry_data =
  | Cmd of Replog.Command.t
  | Config of { config_id : int; voters : int list }

type entry = { term : int; data : entry_data }

type msg =
  | Request_vote of {
      term : int;
      last_log_idx : int;
      last_log_term : int;
      pre_vote : bool;
    }
  | Vote of { term : int; granted : bool; pre_vote : bool }
  | Append_entries of {
      term : int;
      prev_idx : int;
      prev_term : int;
      entries : entry list;
      commit_idx : int;
    }
  | Append_resp of { term : int; success : bool; match_idx : int }
  | Install_snapshot of {
      term : int;
      idx : int;  (* the snapshot covers log indexes [0, idx) *)
      snap_term : int;  (* term of the entry at idx - 1 *)
      payload : string;
      commit_idx : int;
    }

type persistent = {
  mutable term : int;
  mutable voted_for : int option;
  log : entry Replog.Log.t;
  (* Snapshot state backing log compaction: [app] is the KV state machine
     for exactly the trimmed prefix [0, Log.first_idx log), [snap_term] the
     term of its last entry (needed for the AppendEntries consistency check
     at the boundary), [snap_client_cmds] the client commands (id >= 0) it
     contains. Durable: a trim is only safe once the snapshot below it
     survives a crash. *)
  mutable app : Replog.Kv.t;
  mutable snap_term : int;
  mutable snap_client_cmds : int;
}

type role = Follower | Candidate | Leader

let role_is_leader = function Leader -> true | Follower | Candidate -> false
let role_is_follower = function Follower -> true | Candidate | Leader -> false
let role_is_candidate = function Candidate -> true | Follower | Leader -> false

type t = {
  id : int;
  mutable voters : int list;  (** includes [id] *)
  learners : (int, unit) Hashtbl.t;
  pre_vote : bool;
  check_quorum : bool;
  election_ticks : int;
  heartbeat_ticks : int;
  rand : Random.State.t;
  dur : persistent;
  send : dst:int -> msg -> unit;
  on_commit : int -> unit;
  mutable role : role;
  mutable leader_id : int option;
  mutable commit_idx : int;
  mutable ticks_since_hb : int;
  mutable timeout_ticks : int;
  (* Candidate state. *)
  votes : (int, unit) Hashtbl.t;
  pre_votes : (int, unit) Hashtbl.t;
  mutable in_pre_vote : bool;
  (* Leader state: counts of log entries known sent / replicated per peer. *)
  next_idx : (int, int) Hashtbl.t;
  sent_idx : (int, int) Hashtbl.t;
  match_idx : (int, int) Hashtbl.t;
  (* CheckQuorum state. *)
  quorum_acks : (int, unit) Hashtbl.t;
  mutable cq_window : int;
  mutable last_config : (int * int list) option;
  mutable tick_count : int;
  last_resp : (int, int) Hashtbl.t;  (* peer -> tick of last AppendResp *)
  last_send : (int, int) Hashtbl.t;  (* peer -> tick of last AppendEntries *)
  (* Batching knobs, mirroring Omni-Paxos' [Batching.config] so the Fig 7/8
     comparisons stay apples-to-apples. [max_batch] caps entries per
     AppendEntries (large catch-ups stream as a pipeline of batches);
     [eager_batch > 0] flushes a proposal burst as soon as that many
     entries are pending for some peer instead of waiting for the tick. *)
  max_batch : int;
  eager_batch : int;
  (* Local compaction knobs (every server trims below its own commit index,
     the classic Raft local decision): snapshot-and-trim once
     [snapshot_interval] committed entries sit above the trim point,
     keeping the newest [retain] of them. [0] disables compaction. *)
  snapshot_interval : int;
  retain : int;
  on_compact : upto:int -> entries:int -> unit;
  on_install : int -> string -> unit;
}

let fresh_persistent () =
  {
    term = 0;
    voted_for = None;
    log = Log.create ();
    app = Replog.Kv.create ();
    snap_term = 0;
    snap_client_cmds = 0;
  }

let reset_timeout t =
  t.ticks_since_hb <- 0;
  t.timeout_ticks <-
    t.election_ticks + Random.State.int t.rand (t.election_ticks + 1)

(* A node whose id is not in [voters] is a learner: it accepts entries and
   answers the leader but never campaigns or votes until a committed Config
   entry promotes it. *)
let create ~id ~voters ?(pre_vote = false) ?(check_quorum = false)
    ?(max_batch = 4096) ?(eager_batch = 0) ?(snapshot_interval = 0)
    ?(retain = 0) ?(on_compact = fun ~upto:_ ~entries:_ -> ())
    ?(on_install = fun _ _ -> ()) ~election_ticks ~rand ~persistent ~send
    ?(on_commit = fun _ -> ()) () =
  let t =
    {
      id;
      voters;
      learners = Hashtbl.create 4;
      pre_vote;
      check_quorum;
      election_ticks;
      heartbeat_ticks = max 1 (election_ticks / 5);
      rand;
      dur = persistent;
      send;
      on_commit;
      role = Follower;
      leader_id = None;
      commit_idx = 0;
      ticks_since_hb = 0;
      timeout_ticks = election_ticks;
      votes = Hashtbl.create 8;
      pre_votes = Hashtbl.create 8;
      in_pre_vote = false;
      next_idx = Hashtbl.create 8;
      sent_idx = Hashtbl.create 8;
      match_idx = Hashtbl.create 8;
      quorum_acks = Hashtbl.create 8;
      cq_window = 0;
      last_config = None;
      tick_count = 0;
      last_resp = Hashtbl.create 8;
      last_send = Hashtbl.create 8;
      max_batch = max 1 max_batch;
      eager_batch;
      snapshot_interval;
      retain;
      on_compact;
      on_install;
    }
  in
  reset_timeout t;
  t

let quorum t = (List.length t.voters / 2) + 1
let peer_voters t = List.filter (fun v -> v <> t.id) t.voters

let replication_targets t =
  peer_voters t @ Replog.Det.sorted_keys ~compare_key:Int.compare t.learners

let last_log_term t =
  match Log.last t.dur.log with Some e -> e.term | None -> t.dur.snap_term

let log_ok t ~last_log_idx ~last_log_term:cand_term =
  let my_term = last_log_term t in
  cand_term > my_term
  || (cand_term = my_term && last_log_idx >= Log.length t.dur.log)

let become_follower t ~term =
  if term > t.dur.term then begin
    t.dur.term <- term;
    t.dur.voted_for <- None
  end;
  t.role <- Follower;
  t.in_pre_vote <- false;
  reset_timeout t

(* Committed Config entries switch the voter set. A removed server steps
   down; promoted learners stop being learners. Clamped to the trim point:
   entries below it were applied before they were compacted away. *)
let apply_configs t ~from ~upto =
  let from = max from (Log.first_idx t.dur.log) in
  for i = from to upto - 1 do
    match (Log.get t.dur.log i).data with
    | Config { config_id; voters } ->
        t.voters <- voters;
        t.last_config <- Some (config_id, voters);
        List.iter (fun v -> Hashtbl.remove t.learners v) voters;
        if not (List.mem t.id voters) then t.role <- Follower
    | Cmd _ -> ()
  done

(* Fold the entries [first_idx, upto) into the durable snapshot state
   machine, then trim. Runs below the local commit index only, so the
   committed prefix invariant (identical at every server) makes the
   snapshot identical to what every other server will compute. *)
let compact_below t ~upto =
  let floor = Log.first_idx t.dur.log in
  if upto > floor then begin
    t.dur.snap_term <- (Log.get t.dur.log (upto - 1)).term;
    List.iter
      (fun e ->
        match e.data with
        | Cmd c ->
            (match Replog.Kv.apply t.dur.app c with
            | Replog.Kv.Ok_unit | Replog.Kv.Value _ -> ());
            if c.Replog.Command.id >= 0 then
              t.dur.snap_client_cmds <- t.dur.snap_client_cmds + 1
        | Config _ -> ())
      (Log.sub t.dur.log ~pos:floor ~len:(upto - floor));
    Log.trim t.dur.log ~upto;
    t.on_compact ~upto ~entries:(upto - floor)
  end

let maybe_compact t =
  if t.snapshot_interval > 0 then begin
    let floor = Log.first_idx t.dur.log in
    if t.commit_idx - floor >= t.snapshot_interval then
      compact_below t ~upto:(t.commit_idx - t.retain)
  end

let advance_commit t c =
  if c > t.commit_idx then begin
    let from = t.commit_idx in
    t.commit_idx <- c;
    apply_configs t ~from ~upto:c;
    t.on_commit c;
    maybe_compact t
  end

let advance_commit_follower t leader_commit =
  advance_commit t (min leader_commit (Log.length t.dur.log))

(* Leader: commit the largest index replicated on a quorum of voters, but
   only if that entry is from the current term (Raft's commit rule). *)
let try_commit t =
  let matches =
    Log.length t.dur.log
    :: List.map
         (fun v -> Option.value (Hashtbl.find_opt t.match_idx v) ~default:0)
         (peer_voters t)
  in
  let sorted = List.sort (fun a b -> Int.compare b a) matches in
  let n = List.nth sorted (quorum t - 1) in
  if
    n > t.commit_idx
    && n > 0
    && (Log.get t.dur.log (n - 1)).term = t.dur.term
  then advance_commit t n

(* Term of the entry before index [idx+1]: at the snapshot boundary the
   log no longer has the entry, but its term was saved at compaction time.
   Callers never look below [first_idx - 1]. *)
let prev_term_at t prev_idx =
  if prev_idx < 0 then 0
  else if prev_idx < Log.first_idx t.dur.log then t.dur.snap_term
  else (Log.get t.dur.log prev_idx).term

let send_install t ~dst =
  let floor = Log.first_idx t.dur.log in
  let payload =
    Replog.Snapshot.encode ~last_idx:floor
      ~client_cmds:t.dur.snap_client_cmds t.dur.app
  in
  t.send ~dst
    (Install_snapshot
       {
         term = t.dur.term;
         idx = floor;
         snap_term = t.dur.snap_term;
         payload;
         commit_idx = t.commit_idx;
       });
  Hashtbl.replace t.last_send dst t.tick_count;
  Hashtbl.replace t.sent_idx dst floor

let send_append t ~dst ~from =
  let log = t.dur.log in
  if from < Log.first_idx log then
    (* The entries this follower needs were compacted away: ship the
       snapshot instead; the tail streams as normal batches afterwards. *)
    send_install t ~dst
  else begin
    let prev_idx = from - 1 in
    let prev_term = prev_term_at t prev_idx in
    let count = min t.max_batch (Log.length log - from) in
    t.send ~dst
      (Append_entries
         {
           term = t.dur.term;
           prev_idx;
           prev_term;
           entries = Log.sub log ~pos:from ~len:count;
           commit_idx = t.commit_idx;
         });
    Hashtbl.replace t.last_send dst t.tick_count;
    Hashtbl.replace t.sent_idx dst (from + count)
  end

(* Heartbeats probe at the follower's confirmed position (next_idx), not at
   the end of the in-flight pipeline — probing ahead would be rejected while
   batches are still draining and trigger spurious re-streams. *)
let send_heartbeat t ~dst =
  let sent =
    Option.value (Hashtbl.find_opt t.next_idx dst)
      ~default:(Log.length t.dur.log)
  in
  if sent < Log.first_idx t.dur.log then send_install t ~dst
  else begin
    let prev_idx = sent - 1 in
    let prev_term = prev_term_at t prev_idx in
    t.send ~dst
      (Append_entries
         {
           term = t.dur.term;
           prev_idx;
           prev_term;
           entries = [];
           commit_idx = t.commit_idx;
         })
  end

let become_leader t =
  t.role <- Leader;
  t.leader_id <- Some t.id;
  t.in_pre_vote <- false;
  Hashtbl.reset t.next_idx;
  Hashtbl.reset t.sent_idx;
  Hashtbl.reset t.match_idx;
  Hashtbl.reset t.quorum_acks;
  t.cq_window <- 0;
  let len = Log.length t.dur.log in
  List.iter
    (fun p ->
      Hashtbl.replace t.next_idx p len;
      Hashtbl.replace t.sent_idx p len;
      Hashtbl.replace t.match_idx p 0;
      send_heartbeat t ~dst:p)
    (replication_targets t)

let request_votes t ~pre =
  let rv =
    Request_vote
      {
        term = (if pre then t.dur.term + 1 else t.dur.term);
        last_log_idx = Log.length t.dur.log;
        last_log_term = last_log_term t;
        pre_vote = pre;
      }
  in
  List.iter (fun p -> t.send ~dst:p rv) (peer_voters t)

let start_election t =
  t.dur.term <- t.dur.term + 1;
  t.dur.voted_for <- Some t.id;
  t.role <- Candidate;
  t.leader_id <- None;
  t.in_pre_vote <- false;
  Hashtbl.reset t.votes;
  Hashtbl.replace t.votes t.id ();
  reset_timeout t;
  if quorum t = 1 then become_leader t else request_votes t ~pre:false

let start_pre_vote t =
  t.in_pre_vote <- true;
  Hashtbl.reset t.pre_votes;
  Hashtbl.replace t.pre_votes t.id ();
  reset_timeout t;
  if quorum t = 1 then start_election t else request_votes t ~pre:true

let on_election_timeout t =
  if List.mem t.id t.voters then
    if t.pre_vote then start_pre_vote t else start_election t

let tick t =
  t.tick_count <- t.tick_count + 1;
  match t.role with
  | Leader ->
      t.ticks_since_hb <- t.ticks_since_hb + 1;
      let len = Log.length t.dur.log in
      List.iter
        (fun p ->
          let sent = Option.value (Hashtbl.find_opt t.sent_idx p) ~default:len in
          let next = Option.value (Hashtbl.find_opt t.next_idx p) ~default:len in
          let last_resp =
            Option.value (Hashtbl.find_opt t.last_resp p) ~default:t.tick_count
          in
          let last_send =
            Option.value (Hashtbl.find_opt t.last_send p) ~default:t.tick_count
          in
          let quiet = t.tick_count - max last_resp last_send in
          if next < sent && quiet >= 2 * t.election_ticks then
            (* Nothing sent and nothing heard for two timeouts with an
               unacknowledged window: assume it was lost and retransmit from
               the last agreed index. *)
            send_append t ~dst:p ~from:next
          else if sent < len then send_append t ~dst:p ~from:sent
          else if t.ticks_since_hb mod t.heartbeat_ticks = 0 then
            send_heartbeat t ~dst:p)
        (replication_targets t);
      if t.check_quorum then begin
        t.cq_window <- t.cq_window + 1;
        if t.cq_window >= t.election_ticks then begin
          let heard = Hashtbl.length t.quorum_acks + 1 in
          if heard < quorum t then become_follower t ~term:t.dur.term;
          Hashtbl.reset t.quorum_acks;
          t.cq_window <- 0
        end
      end
  | Follower | Candidate ->
      t.ticks_since_hb <- t.ticks_since_hb + 1;
      if t.ticks_since_hb >= t.timeout_ticks then on_election_timeout t

let on_request_vote t ~src ~term ~last_log_idx ~last_log_term ~pre =
  if pre then begin
    (* PreVote: grant without touching any state, and only if our own
       election timer has expired (we no longer hear a leader). *)
    let granted =
      term > t.dur.term
      && t.ticks_since_hb >= t.election_ticks
      && log_ok t ~last_log_idx ~last_log_term
    in
    t.send ~dst:src (Vote { term; granted; pre_vote = true })
  end
  else begin
    if term > t.dur.term then become_follower t ~term;
    let granted =
      term = t.dur.term
      && (match t.dur.voted_for with
         | None -> true
         | Some v -> Int.equal v src)
      && log_ok t ~last_log_idx ~last_log_term
    in
    if granted then begin
      t.dur.voted_for <- Some src;
      reset_timeout t
    end;
    t.send ~dst:src (Vote { term = t.dur.term; granted; pre_vote = false })
  end

let on_vote t ~src ~term ~granted ~pre =
  if pre then begin
    if t.in_pre_vote && (not (role_is_leader t.role)) && granted
       && term = t.dur.term + 1
    then begin
      Hashtbl.replace t.pre_votes src ();
      if Hashtbl.length t.pre_votes >= quorum t then start_election t
    end
  end
  else if term > t.dur.term then become_follower t ~term
  else if role_is_candidate t.role && term = t.dur.term && granted then begin
    Hashtbl.replace t.votes src ();
    if Hashtbl.length t.votes >= quorum t then become_leader t
  end

let on_append_entries t ~src ~term ~prev_idx ~prev_term ~entries ~leader_commit
    =
  if term < t.dur.term then
    t.send ~dst:src
      (Append_resp
         { term = t.dur.term; success = false; match_idx = Log.length t.dur.log })
  else begin
    if term > t.dur.term || not (role_is_follower t.role) then
      become_follower t ~term;
    t.leader_id <- Some src;
    t.ticks_since_hb <- 0;
    let log = t.dur.log in
    let floor = Log.first_idx log in
    let ok =
      prev_idx < 0
      (* At or below our snapshot boundary: the prefix is committed state,
         identical at every server by the commit invariant, so it matches
         by definition (the entry itself may be gone). *)
      || (prev_idx < floor && prev_idx < Log.length log)
      || (prev_idx < Log.length log && prev_term_at t prev_idx = prev_term)
    in
    if not ok then
      t.send ~dst:src
        (Append_resp
           {
             term = t.dur.term;
             success = false;
             match_idx = min (Log.length log) (max 0 prev_idx);
           })
    else begin
      (* Append, truncating on term conflicts; skip duplicates. Entries
         below the trim point are part of our snapshot already. *)
      List.iteri
        (fun k (e : entry) ->
          let idx = prev_idx + 1 + k in
          if idx < floor then ()
          else if idx < Log.length log then begin
            if (Log.get log idx).term <> e.term then begin
              Log.truncate log idx;
              Log.append log e
            end
          end
          else Log.append log e)
        entries;
      let match_idx = prev_idx + 1 + List.length entries in
      t.send ~dst:src (Append_resp { term = t.dur.term; success = true; match_idx });
      advance_commit_follower t leader_commit
    end
  end

let on_append_resp t ~src ~term ~success ~match_idx =
  if term > t.dur.term then become_follower t ~term
  else if role_is_leader t.role && term = t.dur.term then begin
    Hashtbl.replace t.quorum_acks src ();
    Hashtbl.replace t.last_resp src t.tick_count;
    if success then begin
      let prev = Option.value (Hashtbl.find_opt t.match_idx src) ~default:0 in
      if match_idx > prev then Hashtbl.replace t.match_idx src match_idx;
      Hashtbl.replace t.next_idx src
        (max match_idx
           (Option.value (Hashtbl.find_opt t.next_idx src) ~default:0));
      try_commit t
    end
    else begin
      (* Back off to the follower's hint and retransmit on the next tick. *)
      let next = Option.value (Hashtbl.find_opt t.next_idx src) ~default:0 in
      Hashtbl.replace t.next_idx src (min next match_idx);
      Hashtbl.replace t.sent_idx src (min next match_idx)
    end
  end

(* Follower side of the snapshot transfer: replace everything below [idx]
   with the shipped state, restart the log there, and ack [idx] so the
   leader streams the tail as normal batches. A stale or duplicate install
   (our log already starts at or above [idx]) is just re-acked. *)
let on_install_snapshot t ~src ~term ~idx ~snap_term ~payload ~leader_commit =
  if term < t.dur.term then
    t.send ~dst:src
      (Append_resp
         { term = t.dur.term; success = false; match_idx = Log.length t.dur.log })
  else begin
    if term > t.dur.term || not (role_is_follower t.role) then
      become_follower t ~term;
    t.leader_id <- Some src;
    t.ticks_since_hb <- 0;
    (* A stale snapshot — at or below our commit index — must never be
       re-installed: the state machine already covers that prefix, and
       [on_install] consumers never re-apply committed entries, so a
       re-install would silently roll the application back (a leader that
       rewound our next-index after a session reset can ship an install
       for a prefix whose tail we committed in the meantime). Skip it and
       ack the commit index — committed entries are on every leader's log
       (Leader Completeness), so that match claim is always truthful and
       lets the leader resume from there. Acks never cite our own log
       length: entries above the commit index may be uncommitted leftovers
       from an older term that conflict with the leader's log, and a match
       claim beyond the leader's own log breaks its commit accounting. *)
    let ack =
      if idx <= t.commit_idx then t.commit_idx
      else
        match Replog.Snapshot.decode payload with
        | Ok s ->
            t.dur.app <- Replog.Snapshot.restore s;
            t.dur.snap_client_cmds <- s.Replog.Snapshot.client_cmds;
            t.dur.snap_term <- snap_term;
            Log.reset_to t.dur.log ~offset:idx;
            t.commit_idx <- max t.commit_idx idx;
            t.on_install idx payload;
            idx
        | Error _ -> t.commit_idx
    in
    t.send ~dst:src
      (Append_resp { term = t.dur.term; success = true; match_idx = ack });
    advance_commit_follower t leader_commit
  end

let handle t ~src msg =
  match msg with
  | Request_vote { term; last_log_idx; last_log_term; pre_vote } ->
      on_request_vote t ~src ~term ~last_log_idx ~last_log_term ~pre:pre_vote
  | Vote { term; granted; pre_vote } ->
      on_vote t ~src ~term ~granted ~pre:pre_vote
  | Append_entries { term; prev_idx; prev_term; entries; commit_idx } ->
      on_append_entries t ~src ~term ~prev_idx ~prev_term ~entries
        ~leader_commit:commit_idx
  | Append_resp { term; success; match_idx } ->
      on_append_resp t ~src ~term ~success ~match_idx
  | Install_snapshot { term; idx; snap_term; payload; commit_idx } ->
      on_install_snapshot t ~src ~term ~idx ~snap_term ~payload
        ~leader_commit:commit_idx

let session_reset t ~peer =
  if role_is_leader t.role then begin
    (* In-flight batches were lost: rewind the pipeline to the last index
       known replicated. *)
    let m = Option.value (Hashtbl.find_opt t.match_idx peer) ~default:0 in
    Hashtbl.replace t.next_idx peer m;
    Hashtbl.replace t.sent_idx peer m
  end

let recover t =
  t.role <- Follower;
  t.leader_id <- None;
  (* Everything below the trim point is committed by construction (we only
     trim below the commit index), so recovery resumes there, not at 0. *)
  t.commit_idx <- Log.first_idx t.dur.log;
  reset_timeout t

let propose t cmd =
  if role_is_leader t.role then begin
    Log.append t.dur.log { term = t.dur.term; data = Cmd cmd };
    if quorum t = 1 then try_commit t;
    (* Eager size-triggered flush (adaptive batching, mirrored from
       Omni-Paxos): once a burst fills [eager_batch] for some peer, ship it
       now instead of on the next tick. *)
    if t.eager_batch > 0 then begin
      let len = Log.length t.dur.log in
      List.iter
        (fun p ->
          let sent =
            Option.value (Hashtbl.find_opt t.sent_idx p) ~default:len
          in
          if len - sent >= t.eager_batch then send_append t ~dst:p ~from:sent)
        (replication_targets t)
    end;
    true
  end
  else false

let add_learners t ids =
  if role_is_leader t.role then
    List.iter
      (fun l ->
        if (not (List.mem l t.voters)) && not (Hashtbl.mem t.learners l) then begin
          Hashtbl.replace t.learners l ();
          Hashtbl.replace t.next_idx l 0;
          Hashtbl.replace t.sent_idx l 0;
          Hashtbl.replace t.match_idx l 0
        end)
      ids

let learners_caught_up t =
  List.for_all
    (fun l ->
      Option.value (Hashtbl.find_opt t.match_idx l) ~default:0
      >= Log.length t.dur.log)
    (Replog.Det.sorted_keys ~compare_key:Int.compare t.learners)

let propose_config t ~config_id ~voters =
  if role_is_leader t.role then begin
    Log.append t.dur.log { term = t.dur.term; data = Config { config_id; voters } };
    (* The new voter set takes effect at append time at each server (Raft's
       single-entry membership change discipline, applied here to the
       leader; followers apply it when the entry commits cluster-wide via
       the service layer in the harness). *)
    true
  end
  else false

let committed_config t = t.last_config

let role t = t.role
let is_leader t = role_is_leader t.role
let leader_pid t = t.leader_id
let current_term t = t.dur.term
let commit_idx t = t.commit_idx
let log_length t = Log.length t.dur.log
let first_idx t = Log.first_idx t.dur.log
let snapshot_client_cmds t = t.dur.snap_client_cmds

let snapshot t =
  Replog.Snapshot.encode
    ~last_idx:(Log.first_idx t.dur.log)
    ~client_cmds:t.dur.snap_client_cmds t.dur.app

(* Entries below the trim point are unavailable; reads clamp to it. *)
let read_committed t ~from =
  let from = max from (Log.first_idx t.dur.log) in
  Log.sub t.dur.log ~pos:from ~len:(t.commit_idx - from)

(* Per-entry wire overhead beyond the command payload: terms are
   run-length encoded in practice, so they amortise to ~2 bytes/entry. *)
let entry_size e =
  2
  +
  match e.data with
  | Cmd c -> Replog.Command.size c
  | Config { voters; _ } -> 16 + (8 * List.length voters)

let msg_size = function
  | Request_vote _ -> 42
  | Vote _ -> 15
  | Append_entries { entries; _ } ->
      49 + List.fold_left (fun acc e -> acc + entry_size e) 0 entries
  | Append_resp _ -> 22
  | Install_snapshot { payload; _ } -> 49 + String.length payload
