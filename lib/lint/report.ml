(** Machine-readable finding reports: a compact JSON document for CI
    artifacts and a minimal SARIF 2.1.0 log for code-scanning UIs. Both
    renderings are deterministic — findings arrive already sorted by
    [Finding.order] and are emitted in that order, with no timestamps. *)

let buf_add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let finding_fields buf (f : Finding.t) =
  Buffer.add_string buf "{\"file\":";
  buf_add_json_string buf f.Finding.file;
  Buffer.add_string buf (Printf.sprintf ",\"line\":%d,\"rule\":" f.Finding.line);
  buf_add_json_string buf (Finding.rule_name f.Finding.rule);
  Buffer.add_string buf ",\"message\":";
  buf_add_json_string buf f.Finding.msg;
  Buffer.add_char buf '}'

(** The JSON document printed by [opxlint --json]: schema-tagged, with the
    fresh findings, the baseline absorption count, and both kinds of stale
    ratchet entries (baseline lines and effects-summary keys) so CI can
    enforce shrink-only baselines from the artifact alone. *)
let to_json ~files ~fresh ~baselined ~stale_baseline ~stale_summary =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema\":\"opxlint/1\"";
  Buffer.add_string buf (Printf.sprintf ",\"files\":%d" files);
  Buffer.add_string buf ",\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      finding_fields buf f)
    fresh;
  Buffer.add_string buf (Printf.sprintf "],\"baselined\":%d" baselined);
  Buffer.add_string buf ",\"stale_baseline\":[";
  List.iteri
    (fun i (e : Baseline.entry) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"rule\":";
      buf_add_json_string buf (Finding.rule_name e.Baseline.b_rule);
      Buffer.add_string buf ",\"file\":";
      buf_add_json_string buf e.Baseline.b_file;
      Buffer.add_char buf '}')
    stale_baseline;
  Buffer.add_string buf "],\"stale_summary\":[";
  List.iteri
    (fun i key ->
      if i > 0 then Buffer.add_char buf ',';
      buf_add_json_string buf key)
    stale_summary;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(** Minimal SARIF 2.1.0: one run, one rule descriptor per E/D rule, one
    result per fresh finding. Enough for GitHub code scanning and editor
    SARIF viewers. *)
let to_sarif ~fresh =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"opxlint\",\"rules\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"id\":";
      buf_add_json_string buf (Finding.rule_name r);
      Buffer.add_string buf ",\"shortDescription\":{\"text\":";
      buf_add_json_string buf (Finding.rule_doc r);
      Buffer.add_string buf "}}")
    Finding.all_rules;
  Buffer.add_string buf "]}},\"results\":[";
  List.iteri
    (fun i (f : Finding.t) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"ruleId\":";
      buf_add_json_string buf (Finding.rule_name f.Finding.rule);
      Buffer.add_string buf ",\"level\":\"error\",\"message\":{\"text\":";
      buf_add_json_string buf f.Finding.msg;
      Buffer.add_string buf
        "},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":";
      buf_add_json_string buf f.Finding.file;
      Buffer.add_string buf
        (Printf.sprintf "},\"region\":{\"startLine\":%d}}}]}" f.Finding.line))
    fresh;
  Buffer.add_string buf "]}]}";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
