(** Scans build trees for [.cmt] files, runs the per-expression rules
    (D1–D5) and the interprocedural effect analysis (E1–E4) over the typed
    ASTs, applies suppressions, per-path allowances, the baseline and the
    effects summary, and reports findings as [file:line rule message]
    lines (or JSON/SARIF). *)

let rec scan_cmts acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc name -> scan_cmts acc (Filename.concat path name))
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

type options = {
  paths : string list;  (** directories (scanned recursively) or .cmt files *)
  baseline_file : string option;
  write_baseline : bool;
  allow : (Finding.rule * string) list;
      (** drop findings for [rule] in files whose path contains the
          substring — e.g. [D3:lib/simnet/] for the simulated clock's own
          implementation *)
  rules : Finding.rule list;
  strict : bool;
      (** stale baseline / summary entries become hard errors: the
          ratchets can only shrink *)
  facts_file : string option;  (** external effect facts ([effects.facts]) *)
  summary_file : string option;  (** committed signatures (E4 ratchet) *)
  write_summary : bool;  (** regenerate the summary and exit *)
  print_effects : bool;  (** print the signature table and exit *)
  json : bool;  (** findings as JSON on stdout instead of text *)
  sarif_file : string option;  (** additionally write a SARIF log *)
}

let default_options =
  {
    paths = [];
    baseline_file = None;
    write_baseline = false;
    allow = [];
    rules = Finding.all_rules;
    strict = false;
    facts_file = None;
    summary_file = None;
    write_summary = false;
    print_effects = false;
    json = false;
    sarif_file = None;
  }

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then false
    else if String.equal (String.sub haystack i nl) needle then true
    else go (i + 1)
  in
  nl = 0 || go 0

let path_allowed opts (f : Finding.t) =
  List.exists
    (fun (rule, sub) ->
      rule == f.Finding.rule && contains_substring ~needle:sub f.Finding.file)
    opts.allow

(* Unit name of a cmt file, e.g. ".../omnipaxos__Ble.cmt" -> "Omnipaxos__Ble".
   Used to decide which type roots are project-defined without loading
   environments. *)
let modname_of_cmt_file path =
  String.capitalize_ascii (Filename.chop_suffix (Filename.basename path) ".cmt")

type loaded_unit = {
  lu_src : string;
  lu_modname : string;
  lu_str : Typedtree.structure;
}

let load_unit path =
  let cmt = Cmt_format.read_cmt path in
  let src =
    match cmt.Cmt_format.cmt_sourcefile with Some f -> f | None -> path
  in
  match cmt.Cmt_format.cmt_annots with
  | Cmt_format.Implementation str ->
      Some { lu_src = src; lu_modname = modname_of_cmt_file path; lu_str = str }
  | _ -> None

let load_facts_or_exit = function
  | None -> Effects.empty_facts ()
  | Some file -> (
      match Effects.load_facts file with
      | Ok facts -> facts
      | Error msgs ->
          List.iter prerr_endline msgs;
          exit 2)

let run opts =
  let cmts =
    List.sort String.compare
      (List.concat_map (fun p -> scan_cmts [] p) opts.paths)
  in
  (match cmts with
  | [] ->
      prerr_endline "opxlint: no .cmt files found (build the tree first)";
      exit 2
  | _ :: _ -> ());
  let units =
    List.filter_map
      (fun path ->
        try load_unit path
        with exn ->
          prerr_endline
            (Printf.sprintf "opxlint: cannot analyze %s: %s" path
               (Printexc.to_string exn));
          exit 2)
      cmts
  in
  let cfg =
    {
      Rules.project_modules =
        List.sort_uniq String.compare (List.map modname_of_cmt_file cmts);
    }
  in
  (* Interprocedural effect analysis over the whole scanned set. *)
  let facts = load_facts_or_exit opts.facts_file in
  let eff =
    Effects.analyze ~facts
      (List.map
         (fun u ->
           {
             Effects.u_display = Effects.display_of_unit_name u.lu_modname;
             u_src = u.lu_src;
             u_str = u.lu_str;
           })
         units)
  in
  if opts.print_effects then begin
    Effects.print_table eff stdout;
    0
  end
  else if opts.write_summary then begin
    match opts.summary_file with
    | None ->
        prerr_endline "opxlint: --write-effects requires --effects-summary FILE";
        exit 2
    | Some file ->
        let n = Effects.write_summary eff file in
        Printf.eprintf "opxlint: wrote %d signature%s to %s\n" n
          (if n = 1 then "" else "s")
          file;
        0
  end
  else begin
    let d_findings =
      List.concat_map
        (fun u -> Rules.run_structure ~cfg ~file:u.lu_src u.lu_str)
        units
    in
    let e4_findings, stale_summary =
      match opts.summary_file with
      | None -> ([], [])
      | Some file -> (
          match Effects.load_summary file with
          | Ok entries -> Effects.e4_check eff entries
          | Error msgs ->
              List.iter prerr_endline msgs;
              exit 2)
    in
    let findings =
      d_findings @ Effects.e1_findings eff @ Effects.e2_findings eff
      @ Effects.e3_findings eff @ e4_findings
    in
    let findings =
      findings
      |> List.filter (fun (f : Finding.t) ->
             List.exists (fun r -> r == f.Finding.rule) opts.rules)
      |> List.filter (fun f -> not (path_allowed opts f))
      |> List.sort Finding.order
    in
    if opts.write_baseline then begin
      match opts.baseline_file with
      | None ->
          prerr_endline "opxlint: --write-baseline requires --baseline FILE";
          exit 2
      | Some file ->
          Baseline.write file findings;
          Printf.eprintf "opxlint: wrote %d entr%s to %s\n"
            (List.length findings)
            (if List.length findings = 1 then "y" else "ies")
            file;
          0
    end
    else begin
      let entries =
        match opts.baseline_file with
        | None -> []
        | Some file -> (
            match Baseline.load file with
            | Ok entries -> entries
            | Error msgs ->
                List.iter prerr_endline msgs;
                exit 2)
      in
      let fresh, absorbed, stale = Baseline.apply entries findings in
      if opts.json then
        print_endline
          (Report.to_json ~files:(List.length units) ~fresh
             ~baselined:(List.length absorbed) ~stale_baseline:stale
             ~stale_summary)
      else List.iter (fun f -> print_endline (Finding.to_string f)) fresh;
      (match opts.sarif_file with
      | None -> ()
      | Some file -> Report.write_file file (Report.to_sarif ~fresh));
      List.iter
        (fun (e : Baseline.entry) ->
          Printf.eprintf
            "opxlint: stale baseline entry '%s %s' (finding no longer \
             present; remove it)%s\n"
            (Finding.rule_name e.Baseline.b_rule)
            e.Baseline.b_file
            (if opts.strict then " [strict: error]" else ""))
        stale;
      List.iter
        (fun key ->
          Printf.eprintf
            "opxlint: stale effects-summary entry '%s' (definition no \
             longer present; regenerate with --write-effects)%s\n"
            key
            (if opts.strict then " [strict: error]" else ""))
        stale_summary;
      Printf.eprintf "opxlint: %d file(s), %d finding(s), %d baselined\n"
        (List.length units)
        (List.length fresh + List.length absorbed)
        (List.length absorbed);
      let stale_failure =
        opts.strict
        && ((match stale with _ :: _ -> true | [] -> false)
           || (match stale_summary with _ :: _ -> true | [] -> false))
      in
      match (fresh, stale_failure) with
      | [], false -> 0
      | _, _ -> 1
    end
  end
