(** Scans build trees for [.cmt] files, runs the rules over each typed AST,
    applies suppressions, per-path allowances and the baseline, and reports
    findings as [file:line rule message] lines. *)

let rec scan_cmts acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc name -> scan_cmts acc (Filename.concat path name))
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

type options = {
  paths : string list;  (** directories (scanned recursively) or .cmt files *)
  baseline_file : string option;
  write_baseline : bool;
  allow : (Finding.rule * string) list;
      (** drop findings for [rule] in files whose path contains the
          substring — e.g. [D3:lib/simnet/] for the simulated clock's own
          implementation *)
  rules : Finding.rule list;
}

let default_options =
  {
    paths = [];
    baseline_file = None;
    write_baseline = false;
    allow = [];
    rules = Finding.all_rules;
  }

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then false
    else if String.equal (String.sub haystack i nl) needle then true
    else go (i + 1)
  in
  nl = 0 || go 0

let path_allowed opts (f : Finding.t) =
  List.exists
    (fun (rule, sub) ->
      rule == f.Finding.rule && contains_substring ~needle:sub f.Finding.file)
    opts.allow

(* Unit name of a cmt file, e.g. ".../omnipaxos__Ble.cmt" -> "Omnipaxos__Ble".
   Used to decide which type roots are project-defined without loading
   environments. *)
let modname_of_cmt_file path =
  String.capitalize_ascii (Filename.chop_suffix (Filename.basename path) ".cmt")

let analyze_file ~cfg path =
  let cmt = Cmt_format.read_cmt path in
  let file =
    match cmt.Cmt_format.cmt_sourcefile with Some f -> f | None -> path
  in
  match cmt.Cmt_format.cmt_annots with
  | Cmt_format.Implementation str -> Rules.run_structure ~cfg ~file str
  | _ -> []

let run opts =
  let cmts =
    List.sort String.compare
      (List.concat_map (fun p -> scan_cmts [] p) opts.paths)
  in
  (match cmts with
  | [] ->
      prerr_endline "opxlint: no .cmt files found (build the tree first)";
      exit 2
  | _ :: _ -> ());
  let cfg =
    {
      Rules.project_modules =
        List.sort_uniq String.compare (List.map modname_of_cmt_file cmts);
    }
  in
  let findings =
    List.concat_map
      (fun path ->
        try analyze_file ~cfg path
        with exn ->
          prerr_endline
            (Printf.sprintf "opxlint: cannot analyze %s: %s" path
               (Printexc.to_string exn));
          exit 2)
      cmts
  in
  let findings =
    findings
    |> List.filter (fun (f : Finding.t) ->
           List.exists (fun r -> r == f.Finding.rule) opts.rules)
    |> List.filter (fun f -> not (path_allowed opts f))
    |> List.sort Finding.order
  in
  if opts.write_baseline then begin
    match opts.baseline_file with
    | None ->
        prerr_endline "opxlint: --write-baseline requires --baseline FILE";
        exit 2
    | Some file ->
        Baseline.write file findings;
        Printf.eprintf "opxlint: wrote %d entr%s to %s\n" (List.length findings)
          (if List.length findings = 1 then "y" else "ies")
          file;
        0
  end
  else begin
    let entries =
      match opts.baseline_file with
      | None -> []
      | Some file -> (
          match Baseline.load file with
          | Ok entries -> entries
          | Error msgs ->
              List.iter prerr_endline msgs;
              exit 2)
    in
    let fresh, absorbed, stale = Baseline.apply entries findings in
    List.iter
      (fun f -> print_endline (Finding.to_string f))
      fresh;
    List.iter
      (fun (e : Baseline.entry) ->
        Printf.eprintf
          "opxlint: stale baseline entry '%s %s' (finding no longer \
           present; remove it)\n"
          (Finding.rule_name e.Baseline.b_rule)
          e.Baseline.b_file)
      stale;
    Printf.eprintf "opxlint: %d file(s), %d finding(s), %d baselined\n"
      (List.length cmts)
      (List.length fresh + List.length absorbed)
      (List.length absorbed);
    match fresh with [] -> 0 | _ :: _ -> 1
  end
