(** The determinism & protocol-safety rules, run over one typed AST.

    Every rule works on the {e typed} tree ([.cmt] files), so detection is
    path- and type-accurate: [Ballot.compare] and [Int.compare] never
    trigger D1, only [Stdlib.compare] and friends instantiated at a
    non-primitive type do.

    Per-site suppression: annotate the offending expression (or its
    enclosing binding) with [[@lint.allow "D2"]] (several ids may be given,
    separated by spaces or commas); a floating [[@@@lint.allow "..."]]
    suppresses for the remainder of the file. *)

open Typedtree

type config = {
  project_modules : string list;
      (** Root module names of the scanned tree; variant/state types rooted
          there count as protocol types for D4/D5. *)
}

(* ------------------------------------------------------------------ *)
(* Path classification                                                 *)
(* ------------------------------------------------------------------ *)

(* "Stdlib.Hashtbl.iter" and "Stdlib__Hashtbl.iter" both normalise to
   "Hashtbl.iter"; plain project paths are left untouched. *)
let normalized_name path =
  let n = Path.name path in
  let strip_prefix p s =
    let lp = String.length p in
    if String.length s > lp && String.equal (String.sub s 0 lp) p then
      Some (String.sub s lp (String.length s - lp))
    else None
  in
  match strip_prefix "Stdlib." n with
  | Some rest -> rest
  | None -> (
      match strip_prefix "Stdlib__" n with
      | Some rest -> (
          (* "Stdlib__Hashtbl.iter" -> "Hashtbl.iter" *)
          match String.index_opt rest '.' with Some _ -> rest | None -> rest)
      | None -> n)

(* Polymorphic comparison primitives from Stdlib (path-checked, so a
   project-defined [compare] never matches). *)
let poly_compare_member path =
  match path with
  | Path.Pdot (Path.Pident id, s) when String.equal (Ident.name id) "Stdlib"
    -> (
      match s with
      | "compare" | "=" | "<>" | "<" | ">" | "<=" | ">=" | "min" | "max" ->
          Some s
      | _ -> None)
  | _ -> None

let is_hashtbl_iteration path =
  match normalized_name path with
  | "Hashtbl.iter" | "Hashtbl.fold" | "Hashtbl.to_seq" | "Hashtbl.to_seq_keys"
  | "Hashtbl.to_seq_values" ->
      true
  | _ -> false

let is_sort_family path =
  match normalized_name path with
  | "List.sort" | "List.stable_sort" | "List.fast_sort" | "List.sort_uniq"
  | "Array.sort" | "Array.stable_sort" ->
      true
  | _ -> false

(* Wall-clock reads and ambient (process-global) entropy. Seeded
   [Random.State] values are deterministic and stay clean. *)
let nondeterminism_source path =
  let n = normalized_name path in
  let starts p =
    String.length n >= String.length p
    && String.equal (String.sub n 0 (String.length p)) p
  in
  match n with
  | "Sys.time" | "Unix.gettimeofday" | "Unix.time" | "Unix.times"
  | "UnixLabels.gettimeofday" | "UnixLabels.time" ->
      Some n
  | _ ->
      if starts "Random." && not (starts "Random.State.") then Some n
      else None

let is_stdlib_ignore path =
  match path with
  | Path.Pdot (Path.Pident id, "ignore")
    when String.equal (Ident.name id) "Stdlib" ->
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Type classification                                                 *)
(* ------------------------------------------------------------------ *)

let primitive_paths =
  [
    Predef.path_int;
    Predef.path_char;
    Predef.path_string;
    Predef.path_bytes;
    Predef.path_float;
    Predef.path_bool;
    Predef.path_unit;
    Predef.path_int32;
    Predef.path_int64;
    Predef.path_nativeint;
  ]

(* Stdlib modules re-export the primitives as aliases ([String.t] = [string]
   etc.); an alias path is a different [Path.t], so match those by name. *)
let primitive_alias_names =
  [
    "Int.t"; "Char.t"; "String.t"; "Bytes.t"; "Float.t"; "Bool.t";
    "Unit.t"; "Int32.t"; "Int64.t"; "Nativeint.t";
  ]

let is_primitive_base ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) ->
      List.exists (Path.same p) primitive_paths
      || List.exists (String.equal (normalized_name p)) primitive_alias_names
  | _ -> false

let predef_container_paths =
  [ Predef.path_option; Predef.path_list; Predef.path_array ]

let first_arg_type ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | _ -> None

let type_to_string ty = Format.asprintf "%a" Printtyp.type_expr ty

(* Is the head constructor of [ty] (or of a head constructor path [p])
   rooted in the scanned project? Local idents (types defined in the unit
   under analysis) count as project types. *)
let path_in_project cfg p =
  if List.exists (fun prim -> Path.same p prim) primitive_paths then false
  else if List.exists (fun pp -> Path.same p pp) predef_container_paths then
    false
  else
    let root = Path.head p in
    if Ident.global root then
      List.exists (String.equal (Ident.name root)) cfg.project_modules
    else true

(* A type that "carries protocol state" for D5: a function (a partial
   application was ignored), a project-defined constructed type, or a
   predef container of one. *)
let rec carries_state cfg ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tconstr (p, args, _) ->
      if path_in_project cfg p then true
      else if List.exists (fun pp -> Path.same p pp) predef_container_paths
      then List.exists (carries_state cfg) args
      else false
  | Types.Ttuple tys -> List.exists (carries_state cfg) tys
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Suppression                                                         *)
(* ------------------------------------------------------------------ *)

let allows_of_attributes (attrs : attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.Parsetree.attr_name.Location.txt "lint.allow" then
        match a.Parsetree.attr_payload with
        | Parsetree.PStr
            [
              {
                Parsetree.pstr_desc =
                  Parsetree.Pstr_eval
                    ( {
                        Parsetree.pexp_desc =
                          Parsetree.Pexp_constant
                            (Parsetree.Pconst_string (s, _, _));
                        _;
                      },
                      _ );
                _;
              };
            ] ->
            String.split_on_char ' ' s
            |> List.concat_map (String.split_on_char ',')
            |> List.filter_map (fun tok ->
                   let tok = String.trim tok in
                   if String.equal tok "" then None
                   else Finding.rule_of_string tok)
        | _ -> []
      else [])
    attrs

(* ------------------------------------------------------------------ *)
(* Pattern helpers (D4)                                                *)
(* ------------------------------------------------------------------ *)

let rec value_pattern_of : type k. k general_pattern -> pattern option =
 fun p ->
  match p.pat_desc with
  | Tpat_value arg -> Some (arg :> pattern)
  | Tpat_exception _ -> None
  | Tpat_or (a, _, _) -> value_pattern_of a
  | Tpat_any -> Some p
  | Tpat_var _ -> Some p
  | Tpat_alias _ -> Some p
  | Tpat_constant _ -> Some p
  | Tpat_tuple _ -> Some p
  | Tpat_construct _ -> Some p
  | Tpat_variant _ -> Some p
  | Tpat_record _ -> Some p
  | Tpat_array _ -> Some p
  | Tpat_lazy _ -> Some p

let rec is_wildcard (p : pattern) =
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_alias (q, _, _) -> is_wildcard q
  | _ -> false

let rec find_constructor (p : pattern) =
  match p.pat_desc with
  | Tpat_construct (_, cd, _, _) -> Some cd
  | Tpat_alias (q, _, _) -> find_constructor q
  | Tpat_or (a, b, _) -> (
      match find_constructor a with
      | Some c -> Some c
      | None -> find_constructor b)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)
(* ------------------------------------------------------------------ *)

type state = {
  cfg : config;
  file : string;
  mutable findings : Finding.t list;
  mutable allow_stack : Finding.rule list list;
  mutable file_allows : Finding.rule list;
  mutable sort_depth : int;
      (** > 0 while visiting the arguments of a canonicalizing sort: a
          [Hashtbl.fold] there is immediately re-ordered, hence clean. *)
}

let allowed st rule =
  List.exists (fun r -> r == rule) st.file_allows
  || List.exists (List.exists (fun r -> r == rule)) st.allow_stack

let report st ~loc rule msg =
  if not (allowed st rule) then
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    let file =
      let f = loc.Location.loc_start.Lexing.pos_fname in
      if String.equal f "" then st.file else f
    in
    st.findings <- { Finding.file; line; rule; msg } :: st.findings

(* --- D1 --- *)
let check_poly_compare st (e : expression) path =
  match poly_compare_member path with
  | None -> ()
  | Some op -> (
      match first_arg_type e.exp_type with
      | Some ty when is_primitive_base ty -> ()
      | Some ty ->
          report st ~loc:e.exp_loc Finding.D1
            (Printf.sprintf
               "polymorphic %s at type %s; use a typed comparator (e.g. \
                Ballot.compare, Int.compare, Option.is_none)"
               (if String.equal op "compare" || String.equal op "min"
                   || String.equal op "max"
                then op
                else "( " ^ op ^ " )")
               (type_to_string ty))
      | None ->
          report st ~loc:e.exp_loc Finding.D1
            (Printf.sprintf
               "polymorphic %s at a statically unknown type; use a typed \
                comparator"
               op))

(* --- D3 --- *)
let check_entropy st (e : expression) path =
  match nondeterminism_source path with
  | None -> ()
  | Some n ->
      report st ~loc:e.exp_loc Finding.D3
        (Printf.sprintf
           "%s reads the wall clock or ambient entropy; use the simulated \
            clock or a seeded Random.State" n)

(* --- D4 --- *)
let check_match st ~scrutinee_ty (cases : 'k case list) =
  let constr =
    List.find_map
      (fun c ->
        match value_pattern_of c.c_lhs with
        | Some p -> find_constructor p
        | None -> None)
      cases
  in
  match constr with
  | None -> ()
  | Some cd ->
      let total = cd.Types.cstr_consts + cd.Types.cstr_nonconsts in
      let head_path =
        match Types.get_desc cd.Types.cstr_res with
        | Types.Tconstr (p, _, _) -> Some p
        | _ -> None
      in
      let is_protocol =
        match head_path with
        | Some p -> path_in_project st.cfg p
        | None -> false
      in
      if is_protocol && total >= 2 then
        List.iter
          (fun c ->
            match value_pattern_of c.c_lhs with
            | Some p when is_wildcard p ->
                let pat_allows =
                  allows_of_attributes p.pat_attributes
                  @ allows_of_attributes c.c_lhs.pat_attributes
                in
                st.allow_stack <- pat_allows :: st.allow_stack;
                report st ~loc:p.pat_loc Finding.D4
                  (Printf.sprintf
                     "wildcard arm over %s (%d constructors) masks unhandled \
                      protocol messages; enumerate the cases"
                     (match scrutinee_ty with
                     | Some ty -> type_to_string ty
                     | None -> type_to_string cd.Types.cstr_res)
                     total);
                st.allow_stack <- List.tl st.allow_stack
            | _ -> ())
          cases

(* --- D5 --- *)
let check_ignore st (e : expression) funct args =
  match funct.exp_desc with
  | Texp_ident (path, _, _) when is_stdlib_ignore path -> (
      match args with
      | [ (_, Some arg) ] ->
          if carries_state st.cfg arg.exp_type then
            report st ~loc:e.exp_loc Finding.D5
              (Printf.sprintf
                 "ignore discards a value of type %s carrying protocol \
                  state; handle or destructure it"
                 (type_to_string arg.exp_type))
      | _ -> ())
  | _ -> ()

let iterator st =
  let expr (it : Tast_iterator.iterator) (e : expression) =
    let allows = allows_of_attributes e.exp_attributes in
    st.allow_stack <- allows :: st.allow_stack;
    (match e.exp_desc with
    | Texp_ident (path, _, _) ->
        check_poly_compare st e path;
        check_entropy st e path
    | Texp_apply (funct, args) -> (
        check_ignore st e funct args;
        match funct.exp_desc with
        | Texp_ident (path, _, _) when is_hashtbl_iteration path ->
            if st.sort_depth = 0 then
              report st ~loc:e.exp_loc Finding.D2
                (Printf.sprintf
                   "%s iterates in hash order (insertion-history dependent); \
                    use Replog.Det.sorted_bindings or sort the result"
                   (normalized_name path))
        | _ -> ())
    | Texp_match (scrut, cases, _) ->
        check_match st ~scrutinee_ty:(Some scrut.exp_type) cases
    | Texp_function { cases; _ } ->
        let scrutinee_ty =
          match cases with c :: _ -> Some c.c_lhs.pat_type | [] -> None
        in
        check_match st ~scrutinee_ty cases
    | _ -> ());
    (* Recurse; sort arguments are a sanctioned context for D2. *)
    (match e.exp_desc with
    | Texp_apply (funct, args) -> (
        it.Tast_iterator.expr it funct;
        let in_sort =
          match funct.exp_desc with
          | Texp_ident (path, _, _) -> is_sort_family path
          | _ -> false
        in
        if in_sort then st.sort_depth <- st.sort_depth + 1;
        List.iter
          (fun (_, a) -> Option.iter (it.Tast_iterator.expr it) a)
          args;
        if in_sort then st.sort_depth <- st.sort_depth - 1)
    | _ -> Tast_iterator.default_iterator.Tast_iterator.expr it e);
    st.allow_stack <- List.tl st.allow_stack
  in
  let value_binding (it : Tast_iterator.iterator) (vb : value_binding) =
    let allows = allows_of_attributes vb.vb_attributes in
    st.allow_stack <- allows :: st.allow_stack;
    Tast_iterator.default_iterator.Tast_iterator.value_binding it vb;
    st.allow_stack <- List.tl st.allow_stack
  in
  { Tast_iterator.default_iterator with expr; value_binding }

(* Floating [@@@lint.allow "..."] attributes suppress file-wide. *)
let file_level_allows (str : structure) =
  List.concat_map
    (fun (si : structure_item) ->
      match si.str_desc with
      | Tstr_attribute a -> allows_of_attributes [ a ]
      | _ -> [])
    str.str_items

let run_structure ~cfg ~file (str : structure) =
  let st =
    {
      cfg;
      file;
      findings = [];
      allow_stack = [];
      file_allows = file_level_allows str;
      sort_depth = 0;
    }
  in
  let it = iterator st in
  it.Tast_iterator.structure it str;
  st.findings
