(** A single analyzer finding: rule, location, human-readable message.

    Findings print as [file:line rule message], the format grep, editors
    and the CI log all understand. *)

type rule = D1 | D2 | D3 | D4 | D5 | E1 | E2 | E3 | E4

let all_rules = [ D1; D2; D3; D4; D5; E1; E2; E3; E4 ]

let rule_name = function
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"
  | D5 -> "D5"
  | E1 -> "E1"
  | E2 -> "E2"
  | E3 -> "E3"
  | E4 -> "E4"

let rule_of_string s =
  match s with
  | "D1" -> Some D1
  | "D2" -> Some D2
  | "D3" -> Some D3
  | "D4" -> Some D4
  | "D5" -> Some D5
  | "E1" -> Some E1
  | "E2" -> Some E2
  | "E3" -> Some E3
  | "E4" -> Some E4
  | _ -> None

let rule_doc = function
  | D1 -> "polymorphic compare/equality at a non-primitive type"
  | D2 -> "unordered Hashtbl iteration feeding sends or accumulation"
  | D3 -> "wall-clock or ambient entropy in deterministic code"
  | D4 -> "wildcard match arm over a protocol variant type"
  | D5 -> "ignore of a value carrying protocol state"
  | E1 -> "pure-marked function with an inferred write/io/ambient effect"
  | E2 -> "send/emit effect invoked from a protocol handle/tick body"
  | E3 -> "mutable toplevel state in a protocol library module"
  | E4 -> "effect signature drift versus the committed effects summary"

type t = { file : string; line : int; rule : rule; msg : string }

let to_string f =
  Printf.sprintf "%s:%d %s %s" f.file f.line (rule_name f.rule) f.msg

(* Sort by file, then line, then rule, then message: output order is a
   function of the findings alone, never of traversal order. *)
let order a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = String.compare (rule_name a.rule) (rule_name b.rule) in
      if c <> 0 then c else String.compare a.msg b.msg
