(** Interprocedural effect & purity inference over the typed ASTs, and the
    E-rule checks built on it (E1 purity, E2 handler emission, E3 toplevel
    mutable state, E4 signature drift).

    Every toplevel value binding of every scanned unit gets an inferred
    {e effect signature} — a subset of four flags forming a powerset
    lattice ordered by inclusion, with [pure] (the empty set) at the
    bottom:

    - [reads]   — reads mutable state (a [mutable] record field, [!],
                  [Hashtbl.find], …);
    - [writes]  — mutates state ([<-], [:=], [Hashtbl.replace], …);
    - [io]      — performs input/output or calls an unknown function
                  value (a stored callback, a function argument);
    - [ambient] — reads ambient process state (wall clock, global
                  entropy, environment).

    Inference is a bottom-up fixpoint over the call graph of the whole
    scanned module set: a function's signature is the union of its direct
    effects and the signatures of everything it references. External
    (unscanned) functions are resolved through a checked-in facts file
    ([effects.facts]) so the result is deterministic — an external with no
    fact is assumed to have every effect.

    Deliberate approximations, chosen so the analysis stays predictable:

    - {e reference = call}: mentioning a function taints the mentioner,
      whether or not the value is applied (passing an effectful callback
      counts as invoking it);
    - a lambda's body taints its definition site (a function returning an
      effectful closure is treated as effectful itself);
    - applying anything that is not a statically known function — a
      mutable field projection, a function parameter, a stored callback —
      is worst-case;
    - toplevel bindings destructuring non-variable patterns
      ([let a, b = …]) and module initialisation expressions ([let () = …])
      are not summarised (E3 covers toplevel state).

    The unit of attribution is the {e toplevel} binding: effects of nested
    [let]s, lambdas and local functions fold into the enclosing toplevel
    definition. Definitions are keyed by dotted display names
    ([Omnipaxos.Ble_core.step]) matching how cross-unit [Path]s print. *)

open Typedtree

(* ------------------------------------------------------------------ *)
(* The effect lattice                                                  *)
(* ------------------------------------------------------------------ *)

let fl_reads = 1
let fl_writes = 2
let fl_io = 4
let fl_ambient = 8
let fl_all = fl_reads lor fl_writes lor fl_io lor fl_ambient

let flag_names =
  [ (fl_reads, "reads"); (fl_writes, "writes"); (fl_io, "io");
    (fl_ambient, "ambient") ]

let flags_to_string fl =
  if fl = 0 then "pure"
  else
    String.concat ","
      (List.filter_map
         (fun (bit, name) -> if fl land bit <> 0 then Some name else None)
         flag_names)

let flags_of_string s =
  if String.equal s "pure" then Ok 0
  else
    let toks =
      List.filter
        (fun t -> not (String.equal t ""))
        (List.map String.trim (String.split_on_char ',' s))
    in
    List.fold_left
      (fun acc tok ->
        match acc with
        | Error _ -> acc
        | Ok fl -> (
            match
              List.find_opt (fun (_, n) -> String.equal n tok) flag_names
            with
            | Some (bit, _) -> Ok (fl lor bit)
            | None -> Error (Printf.sprintf "unknown effect flag %S" tok)))
      (Ok 0) toks

(* ------------------------------------------------------------------ *)
(* Facts file: external summaries, manifests, allowlists, scopes       *)
(* ------------------------------------------------------------------ *)

type facts = {
  fx_exact : (string, int) Hashtbl.t;  (** external name -> flags *)
  fx_prefix : (string * int) list;  (** "List." style prefixes, longest wins *)
  pure_core : string list;  (** E1 manifest: required-pure name prefixes *)
  allow_emit : string list;  (** E2: adapter-shim name prefixes *)
  allow_mutable : string list;  (** E3: sanctioned module/binding prefixes *)
  protocol_dirs : string list;  (** E2/E3 scope: source-path prefixes *)
}

let empty_facts () =
  {
    fx_exact = Hashtbl.create 64;
    fx_prefix = [];
    pure_core = [];
    allow_emit = [];
    allow_mutable = [];
    protocol_dirs = [];
  }

let parse_facts_line ~src ~lineno facts line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let words =
    List.filter
      (fun w -> not (String.equal w ""))
      (String.split_on_char ' '
         (String.map (fun c -> if c = '\t' then ' ' else c) line))
  in
  let err fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "%s:%d: %s" src lineno m)) fmt
  in
  match words with
  | [] -> Ok facts
  | [ "external"; name; flags_s ] -> (
      match flags_of_string flags_s with
      | Error m -> err "%s" m
      | Ok fl ->
          if Filename.check_suffix name "*" then
            let prefix = String.sub name 0 (String.length name - 1) in
            Ok { facts with fx_prefix = (prefix, fl) :: facts.fx_prefix }
          else begin
            Hashtbl.replace facts.fx_exact name fl;
            Ok facts
          end)
  | [ "pure_core"; prefix ] ->
      Ok { facts with pure_core = prefix :: facts.pure_core }
  | [ "allow_emit"; prefix ] ->
      Ok { facts with allow_emit = prefix :: facts.allow_emit }
  | [ "allow_mutable_toplevel"; prefix ] ->
      Ok { facts with allow_mutable = prefix :: facts.allow_mutable }
  | [ "protocol_dir"; dir ] ->
      Ok { facts with protocol_dirs = dir :: facts.protocol_dirs }
  | w :: _ ->
      err
        "expected 'external NAME FLAGS' | 'pure_core P' | 'allow_emit P' | \
         'allow_mutable_toplevel P' | 'protocol_dir D', got %S"
        w

let load_facts path =
  let ic = open_in path in
  let facts = ref (empty_facts ()) in
  let errors = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       incr lineno;
       let line = input_line ic in
       match parse_facts_line ~src:path ~lineno:!lineno !facts line with
       | Ok f -> facts := f
       | Error msg -> errors := msg :: !errors
     done
   with End_of_file -> ());
  close_in ic;
  match !errors with
  | [] -> Ok !facts
  | errs -> Error (List.rev errs)

let string_starts ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let matches_prefix_list prefixes name =
  List.exists (fun p -> string_starts ~prefix:p name) prefixes

(* External lookup: exact fact, else longest matching prefix fact, else a
   single-segment name (a Stdlib top-level primitive such as [+], [fst],
   [not]) defaults to pure, else worst-case. The io-performing Stdlib
   top-level names ([print_string], [exit], …) must therefore be listed
   explicitly in the facts file. *)
let external_flags facts name =
  match Hashtbl.find_opt facts.fx_exact name with
  | Some fl -> Some fl
  | None -> (
      let best =
        List.fold_left
          (fun acc (prefix, fl) ->
            if string_starts ~prefix name then
              match acc with
              | Some (blen, _) when blen >= String.length prefix -> acc
              | _ -> Some (String.length prefix, fl)
            else acc)
          None facts.fx_prefix
      in
      match best with
      | Some (_, fl) -> Some fl
      | None -> if String.contains name '.' then None else Some 0)

(* ------------------------------------------------------------------ *)
(* Definitions                                                         *)
(* ------------------------------------------------------------------ *)

type def = {
  key : string;  (** dotted display name, e.g. "Omnipaxos.Ble_core.step" *)
  d_unit : string;  (** display unit name, e.g. "Omnipaxos.Ble_core" *)
  d_src : string;  (** source path of the defining unit *)
  d_line : int;
  d_pure_attr : bool;  (** carries [\@pure] *)
  d_allows : Finding.rule list;  (** binding-level + file-level allows *)
  mutable d_direct : int;  (** effects of the body minus project calls *)
  mutable d_eff : int;  (** fixpoint result *)
  mutable d_deps : string list;  (** referenced project definition keys *)
  mutable d_witness : (int * string) list;  (** flag bit -> first cause *)
}

type e2_kind = Field_emit of string | Callee_emit of string

type e2_site = {
  e2_file : string;
  e2_line : int;
  e2_kind : e2_kind;
  e2_encl : string;  (** enclosing definition key *)
  e2_allowed : bool;
}

type e3_site = {
  e3_file : string;
  e3_line : int;
  e3_key : string;
  e3_what : string;  (** which mutable constructor triggered *)
  e3_allowed : bool;
}

type t = {
  facts : facts;
  defs : (string, def) Hashtbl.t;
  mutable def_order : string list;  (** sorted keys *)
  mutable def_order_units : string list;  (** sorted scanned unit names *)
  mutable e2_sites : e2_site list;
  mutable e3_sites : e3_site list;
}

let witness_add d bit cause =
  if not (List.mem_assoc bit d.d_witness) then
    d.d_witness <- (bit, cause) :: d.d_witness

let witness_for d bit =
  match List.assoc_opt bit d.d_witness with
  | Some c -> c
  | None -> "unknown cause"

(* A unit as the driver hands it to us. *)
type unit_input = {
  u_display : string;  (** "Omnipaxos.Ble" *)
  u_src : string;
  u_str : structure;
}

(* "Omnipaxos__Ble" (capitalised cmt unit name) -> "Omnipaxos.Ble". *)
let display_of_unit_name unit_name =
  let rec split acc s =
    match
      (* find "__" *)
      let n = String.length s in
      let rec go i =
        if i + 1 >= n then None
        else if s.[i] = '_' && s.[i + 1] = '_' then Some i
        else go (i + 1)
      in
      go 0
    with
    | None -> List.rev (s :: acc)
    | Some i ->
        split (String.sub s 0 i :: acc)
          (String.sub s (i + 2) (String.length s - i - 2))
  in
  String.concat "." (List.map String.capitalize_ascii (split [] unit_name))

(* ------------------------------------------------------------------ *)
(* Pass 1: collect definitions, module aliases, E3 candidates          *)
(* ------------------------------------------------------------------ *)

(* Local module aliases ([module R = Omnipaxos.Replica]) make use-site
   paths start with a local ident; expand them back to the full path. *)
type unit_ctx = {
  aliases : (Ident.t * Path.t) list ref;
  top_idents : (Ident.t * string) list ref;  (** toplevel binding -> key *)
}

let rec resolve_path ctx p =
  match p with
  | Path.Pident id -> (
      match
        List.find_opt (fun (a, _) -> Ident.same a id) !(ctx.aliases)
      with
      | Some (_, target) -> resolve_path ctx target
      | None -> p)
  | Path.Pdot (base, s) -> Path.Pdot (resolve_path ctx base, s)
  | _ -> p

let mutable_container_names =
  [ "ref"; "Hashtbl.t"; "Queue.t"; "Stack.t"; "Buffer.t"; "Atomic.t";
    "Mutex.t"; "Condition.t"; "Weak.t"; "Dynarray.t" ]

(* Does [ty] hold mutable state reachable without calling a function?
   Arrow types stop the walk: a function returning a table is fine. *)
let rec mutable_container ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> None
  | Types.Ttuple tys -> List.find_map mutable_container tys
  | Types.Tconstr (p, args, _) ->
      if Path.same p Predef.path_array then Some "array"
      else if Path.same p Predef.path_bytes then Some "bytes"
      else
        let n = Rules.normalized_name p in
        if List.exists (String.equal n) mutable_container_names then Some n
        else List.find_map mutable_container args
  | _ -> None

(* A shallow scan of a binding's RHS for records with mutable fields:
   catches [let g = { mutable … }] of project-defined record types, which
   the type-based walk cannot see without an environment. Stops at
   lambdas. *)
let rec rhs_mutable_record (e : expression) =
  match e.exp_desc with
  | Texp_function _ -> None
  | Texp_record { fields; _ } -> (
      let mut =
        Array.fold_left
          (fun acc (ld, _) ->
            match acc with
            | Some _ -> acc
            | None ->
                match ld.Types.lbl_mut with
                | Asttypes.Mutable ->
                    Some ("mutable record field '" ^ ld.Types.lbl_name ^ "'")
                | Asttypes.Immutable -> None)
          None fields
      in
      match mut with
      | Some _ -> mut
      | None ->
          Array.fold_left
            (fun acc (_, rld) ->
              match (acc, rld) with
              | Some _, _ -> acc
              | None, Overridden (_, e') -> rhs_mutable_record e'
              | None, Kept _ -> None)
            None fields)
  | Texp_tuple es | Texp_array es -> List.find_map rhs_mutable_record es
  | Texp_construct (_, _, es) -> List.find_map rhs_mutable_record es
  | Texp_let (_, _, body) -> rhs_mutable_record body
  | _ -> None

let pure_attr (attrs : attributes) =
  List.exists
    (fun (a : Parsetree.attribute) ->
      String.equal a.Parsetree.attr_name.Location.txt "pure")
    attrs

let binding_name (vb : value_binding) =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, name) -> Some (id, name.Location.txt)
  | Tpat_alias ({ pat_desc = Tpat_any; _ }, id, name) ->
      Some (id, name.Location.txt)
  | _ -> None

let in_protocol_scope facts src =
  matches_prefix_list facts.protocol_dirs src

let loc_file_line ~default_file (loc : Location.t) =
  let f = loc.Location.loc_start.Lexing.pos_fname in
  let file = if String.equal f "" then default_file else f in
  (file, loc.Location.loc_start.Lexing.pos_lnum)

let collect_unit t (u : unit_input) ctx =
  let file_allows = Rules.file_level_allows u.u_str in
  let protocol = in_protocol_scope t.facts u.u_src in
  let rec do_structure prefix (str : structure) =
    List.iter (do_item prefix) str.str_items
  and do_item prefix (si : structure_item) =
    match si.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match binding_name vb with
            | None -> ()
            | Some (id, name) ->
                let key = String.concat "." (u.u_display :: prefix @ [ name ]) in
                let file, line = loc_file_line ~default_file:u.u_src vb.vb_loc in
                let allows =
                  Rules.allows_of_attributes vb.vb_attributes @ file_allows
                in
                let d =
                  {
                    key;
                    d_unit = u.u_display;
                    d_src = file;
                    d_line = line;
                    d_pure_attr = pure_attr vb.vb_attributes;
                    d_allows = allows;
                    d_direct = 0;
                    d_eff = 0;
                    d_deps = [];
                    d_witness = [];
                  }
                in
                (* Shadowing at the same path: last binding wins, matching
                   what a use site resolves to. *)
                Hashtbl.replace t.defs key d;
                (match prefix with
                | [] -> ctx.top_idents := (id, key) :: !(ctx.top_idents)
                | _ :: _ -> ());
                if protocol then begin
                  let mut =
                    match mutable_container vb.vb_pat.pat_type with
                    | Some what -> Some ("toplevel " ^ what)
                    | None -> rhs_mutable_record vb.vb_expr
                  in
                  match mut with
                  | None -> ()
                  | Some what ->
                      t.e3_sites <-
                        {
                          e3_file = file;
                          e3_line = line;
                          e3_key = key;
                          e3_what = what;
                          e3_allowed =
                            List.exists (fun r -> r == Finding.E3) allows
                            || matches_prefix_list t.facts.allow_mutable key;
                        }
                        :: t.e3_sites
                end)
          vbs
    | Tstr_module mb -> do_module prefix mb
    | Tstr_recmodule mbs -> List.iter (do_module prefix) mbs
    | _ -> ()
  and do_module prefix (mb : module_binding) =
    let name =
      match mb.mb_name.Location.txt with Some n -> Some n | None -> None
    in
    let rec unwrap (me : module_expr) =
      match me.mod_desc with
      | Tmod_constraint (me', _, _, _) -> unwrap me'
      | _ -> me
    in
    let me = unwrap mb.mb_expr in
    match (me.mod_desc, mb.mb_id, name) with
    | Tmod_ident (p, _), Some id, _ ->
        ctx.aliases := (id, p) :: !(ctx.aliases)
    | Tmod_structure str, _, Some n -> do_structure (prefix @ [ n ]) str
    | _ -> ()
  in
  do_structure [] u.u_str

(* ------------------------------------------------------------------ *)
(* Pass 2: per-definition body walk                                    *)
(* ------------------------------------------------------------------ *)

let handler_names = [ "handle"; "tick"; "handle_leader" ]

let last_segment key =
  match String.rindex_opt key '.' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

let emit_field_name n =
  String.equal n "send" || String.equal n "emit" || string_starts ~prefix:"on_" n

(* Leading parameters of a toplevel function binding: the idents bound by
   the chain of single-case [fun] nodes (and the [let *opt* = …] default
   elaboration underneath optional arguments). *)
let rec collect_params acc (e : expression) =
  match e.exp_desc with
  | Texp_function { cases = [ { c_lhs; c_rhs; _ } ]; _ } ->
      let rec pat_vars : type k. Ident.t list -> k general_pattern -> Ident.t list
          =
       fun acc p ->
        match p.pat_desc with
        | Tpat_var (id, _) -> id :: acc
        | Tpat_alias (q, id, _) -> pat_vars (id :: acc) q
        | Tpat_tuple ps -> List.fold_left pat_vars acc ps
        | Tpat_value v -> pat_vars acc (v :> pattern)
        | _ -> acc
      in
      collect_params (pat_vars acc c_lhs) c_rhs
  | Texp_let (Asttypes.Nonrecursive, vbs, body) ->
      (* An optional argument [?(x = d)] elaborates to a leading
         [let x = match *opt* with …] over the already-collected [*opt*]
         ident; rebind it to the user-facing name. Ordinary leading lets
         (local helpers, precomputed values) are not parameters — their
         bodies are walked and attributed to the enclosing definition. *)
      let acc =
        List.fold_left
          (fun acc vb ->
            match (binding_name vb, vb.vb_expr.exp_desc) with
            | Some (id, _), Texp_match (scrut, _, _) -> (
                match scrut.exp_desc with
                | Texp_ident (Path.Pident opt, _, _)
                  when List.exists (fun p -> Ident.same p opt) acc ->
                    id :: acc
                | _ -> acc)
            | _, _ -> acc)
          acc vbs
      in
      collect_params acc body
  | _ -> acc

type walk_state = {
  t : t;
  u : unit_input;
  ctx : unit_ctx;
  def : def;
  params : Ident.t list;
  is_handler : bool;
  mutable allow_stack : Finding.rule list list;
  file_allows : Finding.rule list;
}

let ws_allowed ws rule =
  List.exists (fun r -> r == rule) ws.file_allows
  || List.exists (List.exists (fun r -> r == rule)) ws.allow_stack

let add_direct ws bits cause =
  let d = ws.def in
  let fresh = bits land lnot d.d_direct in
  d.d_direct <- d.d_direct lor bits;
  if fresh <> 0 then
    List.iter
      (fun (bit, _) -> if fresh land bit <> 0 then witness_add d bit cause)
      flag_names

(* Resolve a use-site ident to either a project definition key, an
   external name, a local (no effect), or an unresolved project value. *)
type resolution =
  | R_project of string
  | R_external of string
  | R_local
  | R_unresolved of string

let resolve_ident ws path =
  match path with
  | Path.Pident id -> (
      match
        List.find_opt (fun (i, _) -> Ident.same i id) !(ws.ctx.top_idents)
      with
      | Some (_, key) -> R_project key
      | None -> R_local)
  | _ -> (
      let p = resolve_path ws.ctx path in
      let name = Rules.normalized_name p in
      if Hashtbl.mem ws.t.defs name then R_project name
      else
        (* A scanned unit's member we did not summarise (destructured
           binding, re-export, functor output): worst-case. *)
        let head_in_project =
          List.exists
            (fun u -> string_starts ~prefix:(u ^ ".") name)
            ws.t.def_order_units
        in
        if head_in_project then R_unresolved name else R_external name)

let note_ident ws (path : Path.t) =
  match resolve_ident ws path with
  | R_local -> ()
  | R_project key ->
      if not (List.mem key ws.def.d_deps) then
        ws.def.d_deps <- key :: ws.def.d_deps
  | R_external name -> (
      match external_flags ws.t.facts name with
      | Some fl -> if fl <> 0 then add_direct ws fl ("call to " ^ name)
      | None ->
          add_direct ws fl_all
            ("call to external " ^ name ^ " (no entry in effects.facts)"))
  | R_unresolved name ->
      add_direct ws fl_all ("reference to unsummarised project value " ^ name)

let record_e2 ws ~loc kind =
  if ws.is_handler then
    let file, line = loc_file_line ~default_file:ws.u.u_src loc in
    ws.t.e2_sites <-
      {
        e2_file = file;
        e2_line = line;
        e2_kind = kind;
        e2_encl = ws.def.key;
        e2_allowed =
          ws_allowed ws Finding.E2
          || matches_prefix_list ws.t.facts.allow_emit ws.def.key;
      }
      :: ws.t.e2_sites

let walk_body ws (body : expression) =
  let expr_iter (it : Tast_iterator.iterator) (e : expression) =
    let allows = Rules.allows_of_attributes e.exp_attributes in
    ws.allow_stack <- allows :: ws.allow_stack;
    (match e.exp_desc with
    | Texp_ident (path, _, _) -> note_ident ws path
    | Texp_setfield (_, _, ld, _) ->
        add_direct ws fl_writes
          ("assignment to field '" ^ ld.Types.lbl_name ^ "'")
    | Texp_field (_, _, ld) -> (
        match ld.Types.lbl_mut with
        | Asttypes.Mutable ->
            add_direct ws fl_reads
              ("read of mutable field '" ^ ld.Types.lbl_name ^ "'")
        | Asttypes.Immutable -> ())
    | Texp_letmodule (Some id, _, _, me, _) -> (
        let rec unwrap (m : module_expr) =
          match m.mod_desc with
          | Tmod_constraint (m', _, _, _) -> unwrap m'
          | _ -> m
        in
        match (unwrap me).mod_desc with
        | Tmod_ident (p, _) -> ws.ctx.aliases := (id, p) :: !(ws.ctx.aliases)
        | _ -> ())
    | Texp_apply (funct, _) -> (
        match funct.exp_desc with
        | Texp_ident (Path.Pident id, _, _)
          when List.exists (fun p -> Ident.same p id) ws.params ->
            (* applying a declared argument: the output accumulator.
               Its effects are the caller's business; still worst-case
               for inference (we cannot see the callee). *)
            add_direct ws fl_all
              ("call to function argument '" ^ Ident.name id ^ "'")
        | Texp_ident (path, _, _) -> (
            (* effect accounted by the Texp_ident visit during recursion;
               here we only classify handler emission. *)
            match resolve_ident ws path with
            | R_project key -> record_e2 ws ~loc:e.exp_loc (Callee_emit key)
            | R_external _ | R_local | R_unresolved _ -> ())
        | Texp_field (_, _, ld) ->
            add_direct ws fl_all
              ("call through state field '" ^ ld.Types.lbl_name ^ "'");
            if emit_field_name ld.Types.lbl_name then
              record_e2 ws ~loc:e.exp_loc (Field_emit ld.Types.lbl_name)
        | _ ->
            add_direct ws fl_all "indirect call (computed function value)")
    | _ -> ());
    Tast_iterator.default_iterator.Tast_iterator.expr it e;
    ws.allow_stack <- List.tl ws.allow_stack
  in
  let it = { Tast_iterator.default_iterator with expr = expr_iter } in
  it.Tast_iterator.expr it body

(* ------------------------------------------------------------------ *)
(* Orchestration                                                       *)
(* ------------------------------------------------------------------ *)

let analyze ~facts (units : unit_input list) =
  let t =
    {
      facts;
      defs = Hashtbl.create 256;
      def_order = [];
      def_order_units = [];
      e2_sites = [];
      e3_sites = [];
    }
  in
  let ctxs =
    List.map
      (fun u ->
        let ctx = { aliases = ref []; top_idents = ref [] } in
        collect_unit t u ctx;
        (u, ctx))
      units
  in
  t.def_order <-
    List.sort String.compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) t.defs []);
  t.def_order_units <-
    List.sort_uniq String.compare (List.map (fun u -> u.u_display) units);
  (* Pass 2: bodies. *)
  List.iter
    (fun (u, ctx) ->
      let file_allows = Rules.file_level_allows u.u_str in
      let rec do_structure prefix (str : structure) =
        List.iter (do_item prefix) str.str_items
      and do_item prefix (si : structure_item) =
        match si.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match binding_name vb with
                | None -> ()
                | Some (_, name) ->
                    let key =
                      String.concat "." (u.u_display :: prefix @ [ name ])
                    in
                    let def = Hashtbl.find t.defs key in
                    let params = collect_params [] vb.vb_expr in
                    let is_handler =
                      List.exists (String.equal (last_segment key))
                        handler_names
                      && in_protocol_scope facts u.u_src
                    in
                    let ws =
                      {
                        t;
                        u;
                        ctx;
                        def;
                        params;
                        is_handler;
                        allow_stack = [ def.d_allows ];
                        file_allows;
                      }
                    in
                    walk_body ws vb.vb_expr)
              vbs
        | Tstr_module mb -> do_module prefix mb
        | Tstr_recmodule mbs -> List.iter (do_module prefix) mbs
        | _ -> ()
      and do_module prefix (mb : module_binding) =
        let rec unwrap (me : module_expr) =
          match me.mod_desc with
          | Tmod_constraint (me', _, _, _) -> unwrap me'
          | _ -> me
        in
        match ((unwrap mb.mb_expr).mod_desc, mb.mb_name.Location.txt) with
        | Tmod_structure str, Some n -> do_structure (prefix @ [ n ]) str
        | _ -> ()
      in
      do_structure [] u.u_str)
    ctxs;
  (* Fixpoint: union dependency signatures until stable. Deterministic:
     iteration follows the sorted key order and the lattice is finite. *)
  List.iter
    (fun k ->
      let d = Hashtbl.find t.defs k in
      d.d_eff <- d.d_direct)
    t.def_order;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun k ->
        let d = Hashtbl.find t.defs k in
        List.iter
          (fun dep ->
            match Hashtbl.find_opt t.defs dep with
            | None -> ()
            | Some c ->
                let fresh = c.d_eff land lnot d.d_eff in
                if fresh <> 0 then begin
                  d.d_eff <- d.d_eff lor fresh;
                  List.iter
                    (fun (bit, _) ->
                      if fresh land bit <> 0 then
                        witness_add d bit ("call to " ^ dep))
                    flag_names;
                  changed := true
                end)
          (List.sort String.compare d.d_deps))
      t.def_order
  done;
  t

(* ------------------------------------------------------------------ *)
(* E-rule adjudication                                                 *)
(* ------------------------------------------------------------------ *)

let e1_findings t =
  List.filter_map
    (fun k ->
      let d = Hashtbl.find t.defs k in
      let required_pure =
        d.d_pure_attr || matches_prefix_list t.facts.pure_core d.key
      in
      if not required_pure then None
      else if List.exists (fun r -> r == Finding.E1) d.d_allows then None
      else
        let offending = d.d_eff land (fl_writes lor fl_io lor fl_ambient) in
        if offending = 0 then None
        else
          let causes =
            List.filter_map
              (fun (bit, name) ->
                if offending land bit <> 0 then
                  Some (Printf.sprintf "%s via %s" name (witness_for d bit))
                else None)
              flag_names
          in
          Some
            {
              Finding.file = d.d_src;
              line = d.d_line;
              rule = Finding.E1;
              msg =
                Printf.sprintf
                  "%s is marked pure but has effects {%s}: %s" d.key
                  (flags_to_string offending)
                  (String.concat "; " causes);
            })
    t.def_order

let e2_findings t =
  List.filter_map
    (fun s ->
      if s.e2_allowed then None
      else
        match s.e2_kind with
        | Field_emit field ->
            Some
              {
                Finding.file = s.e2_file;
                line = s.e2_line;
                rule = Finding.E2;
                msg =
                  Printf.sprintf
                    "%s performs a send/emit through state field '%s'; \
                     return outputs (or use the declared accumulator \
                     argument) instead"
                    s.e2_encl field;
              }
        | Callee_emit key -> (
            match Hashtbl.find_opt t.defs key with
            | Some c
              when c.d_eff land fl_io <> 0
                   && in_protocol_scope t.facts c.d_src ->
                Some
                  {
                    Finding.file = s.e2_file;
                    line = s.e2_line;
                    rule = Finding.E2;
                    msg =
                      Printf.sprintf
                        "%s calls %s whose effects are {%s}; handlers must \
                         return outputs instead of performing sends"
                        s.e2_encl key
                        (flags_to_string c.d_eff);
                  }
            | _ -> None))
    (List.rev t.e2_sites)

let e3_findings t =
  List.filter_map
    (fun s ->
      if s.e3_allowed then None
      else
        Some
          {
            Finding.file = s.e3_file;
            line = s.e3_line;
            rule = Finding.E3;
            msg =
              Printf.sprintf
                "%s is %s at module level in a protocol library; thread \
                 state through the transition core or allowlist the shim \
                 (allow_mutable_toplevel)"
                s.e3_key s.e3_what;
          })
    (List.rev t.e3_sites)

(* ------------------------------------------------------------------ *)
(* Summary file (E4)                                                   *)
(* ------------------------------------------------------------------ *)

type summary_entry = { s_key : string; s_flags : int }

let load_summary path =
  let ic = open_in path in
  let entries = ref [] in
  let errors = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       incr lineno;
       let line = input_line ic in
       let line =
         match String.index_opt line '#' with
         | Some i -> String.sub line 0 i
         | None -> line
       in
       let words =
         List.filter
           (fun w -> not (String.equal w ""))
           (String.split_on_char ' ' (String.trim line))
       in
       match words with
       | [] -> ()
       | [ key; flags_s ] -> (
           match flags_of_string flags_s with
           | Ok fl -> entries := { s_key = key; s_flags = fl } :: !entries
           | Error m ->
               errors := Printf.sprintf "%s:%d: %s" path !lineno m :: !errors)
       | _ ->
           errors :=
             Printf.sprintf "%s:%d: expected '<function> <effects>'" path
               !lineno
             :: !errors
     done
   with End_of_file -> ());
  close_in ic;
  match !errors with
  | [] -> Ok (List.rev !entries)
  | errs -> Error (List.rev errs)

(* The unit a summary key belongs to: longest scanned-unit prefix, or the
   key minus its last segment for units no longer scanned. *)
let unit_of_summary_key t key =
  let best =
    List.fold_left
      (fun acc u ->
        if string_starts ~prefix:(u ^ ".") key then
          match acc with
          | Some b when String.length b >= String.length u -> acc
          | _ -> Some u
        else acc)
      None t.def_order_units
  in
  match best with
  | Some u -> u
  | None -> (
      match String.rindex_opt key '.' with
      | Some i -> String.sub key 0 i
      | None -> key)

(** E4: a module is {e ratcheted} once it has any committed summary entry;
    within a ratcheted module, every definition must appear with a
    signature at least as wide as the inferred one. Returns
    [(findings, stale_keys)] — stale keys are committed entries whose
    definition no longer exists (a warning, an error under [--strict]). *)
let e4_check t entries =
  let ratcheted =
    List.sort_uniq String.compare
      (List.map (fun e -> unit_of_summary_key t e.s_key) entries)
  in
  let committed = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace committed e.s_key e.s_flags) entries;
  let findings =
    List.filter_map
      (fun k ->
        let d = Hashtbl.find t.defs k in
        if not (List.exists (String.equal d.d_unit) ratcheted) then None
        else if List.exists (fun r -> r == Finding.E4) d.d_allows then None
        else
          match Hashtbl.find_opt committed d.key with
          | None ->
              Some
                {
                  Finding.file = d.d_src;
                  line = d.d_line;
                  rule = Finding.E4;
                  msg =
                    Printf.sprintf
                      "%s is new in a ratcheted module (inferred {%s}); \
                       record it with --write-effects" d.key
                      (flags_to_string d.d_eff);
                }
          | Some fl ->
              let widened = d.d_eff land lnot fl in
              if widened = 0 then None
              else
                Some
                  {
                    Finding.file = d.d_src;
                    line = d.d_line;
                    rule = Finding.E4;
                    msg =
                      Printf.sprintf
                        "effect signature of %s widened from {%s} to {%s} \
                         (+%s: %s); narrow the code or re-ratchet with \
                         --write-effects"
                        d.key (flags_to_string fl)
                        (flags_to_string d.d_eff)
                        (flags_to_string widened)
                        (String.concat "; "
                           (List.filter_map
                              (fun (bit, _) ->
                                if widened land bit <> 0 then
                                  Some (witness_for d bit)
                                else None)
                              flag_names));
                  })
      t.def_order
  in
  let stale =
    List.filter_map
      (fun e ->
        if Hashtbl.mem t.defs e.s_key then None else Some e.s_key)
      entries
  in
  (findings, stale)

(* Scope of the written summary: definitions whose source lives under a
   protocol_dir, or every definition when no scope is configured. *)
let summary_scope t =
  match t.facts.protocol_dirs with
  | [] -> t.def_order
  | _ :: _ ->
      List.filter
        (fun k ->
          let d = Hashtbl.find t.defs k in
          in_protocol_scope t.facts d.d_src)
        t.def_order

let write_summary t path =
  let oc = open_out path in
  output_string oc
    "# opxlint effects summary: committed per-function effect signatures\n\
     # (E4 ratchet). A module listed here is ratcheted: new functions and\n\
     # effect widenings fail @lint until re-recorded. Regenerate with:\n\
     #   dune build @check && dune exec bin/opxlint.exe -- \\\n\
     #     --effects-facts effects.facts --effects-summary effects.summary \\\n\
     #     --write-effects _build/default/lib\n";
  let scope = summary_scope t in
  List.iter
    (fun k ->
      let d = Hashtbl.find t.defs k in
      output_string oc
        (Printf.sprintf "%s %s\n" d.key (flags_to_string d.d_eff)))
    scope;
  close_out oc;
  List.length scope

(* ------------------------------------------------------------------ *)
(* Signature table ([--effects])                                       *)
(* ------------------------------------------------------------------ *)

let print_table t oc =
  let width =
    List.fold_left (fun w k -> Stdlib.max w (String.length k)) 0 t.def_order
  in
  List.iter
    (fun k ->
      let d = Hashtbl.find t.defs k in
      output_string oc
        (Printf.sprintf "%-*s  %s\n" width k (flags_to_string d.d_eff)))
    t.def_order

let table_rows t =
  List.map
    (fun k ->
      let d = Hashtbl.find t.defs k in
      (k, flags_to_string d.d_eff))
    t.def_order
