(** Baseline file: pre-existing findings tolerated by the gate.

    One entry per line, [<rule> <file>], e.g. [D4 lib/rsm/client.ml];
    blank lines and [#] comments are skipped. Entries form a multiset: a
    line absorbs exactly one finding with that rule in that file, so a
    file that grows a second D4 after being baselined with one still
    fails. Line numbers are deliberately absent — baselines must survive
    unrelated edits above a finding. *)

type entry = { b_rule : Finding.rule; b_file : string }

let parse_line ~src ~lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if String.equal line "" then Ok None
  else
    match String.index_opt line ' ' with
    | None ->
        Error
          (Printf.sprintf "%s:%d: expected '<rule> <file>', got %S" src lineno
             line)
    | Some i -> (
        let rule_s = String.sub line 0 i in
        let file = String.trim (String.sub line i (String.length line - i)) in
        match Finding.rule_of_string rule_s with
        | None ->
            Error (Printf.sprintf "%s:%d: unknown rule %S" src lineno rule_s)
        | Some b_rule -> Ok (Some { b_rule; b_file = file }))

let load path =
  let ic = open_in path in
  let entries = ref [] in
  let errors = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       incr lineno;
       let line = input_line ic in
       match parse_line ~src:path ~lineno:!lineno line with
       | Ok None -> ()
       | Ok (Some e) -> entries := e :: !entries
       | Error msg -> errors := msg :: !errors
     done
   with End_of_file -> ());
  close_in ic;
  match !errors with
  | [] -> Ok (List.rev !entries)
  | errs -> Error (List.rev errs)

(** Split findings into (new, absorbed-by-baseline); returns the unused
    baseline entries too, so the caller can warn about stale lines. *)
let apply entries findings =
  let remaining = ref entries in
  let fresh = ref [] in
  let absorbed = ref [] in
  List.iter
    (fun (f : Finding.t) ->
      let rec take acc = function
        | [] -> None
        | e :: rest ->
            if
              e.b_rule == f.Finding.rule
              && String.equal e.b_file f.Finding.file
            then Some (List.rev_append acc rest)
            else take (e :: acc) rest
      in
      match take [] !remaining with
      | Some rest ->
          remaining := rest;
          absorbed := f :: !absorbed
      | None -> fresh := f :: !fresh)
    findings;
  (List.rev !fresh, List.rev !absorbed, !remaining)

let write path findings =
  let oc = open_out path in
  output_string oc
    "# opxlint baseline: tolerated pre-existing findings, one '<rule> \
     <file>' per line.\n";
  output_string oc "# Regenerate with: opxlint --write-baseline <paths>\n";
  List.iter
    (fun (f : Finding.t) ->
      output_string oc
        (Printf.sprintf "%s %s\n" (Finding.rule_name f.Finding.rule)
           f.Finding.file))
    findings;
  close_out oc
