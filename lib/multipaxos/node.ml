module Log = Replog.Log
module Command = Replog.Command

type ballot = { n : int; pid : int }

let bottom = { n = 0; pid = -1 }

let ballot_compare a b =
  let c = Int.compare a.n b.n in
  if c <> 0 then c else Int.compare a.pid b.pid

let ballot_max a b = if ballot_compare a b >= 0 then a else b

type msg =
  | Heartbeat
  | P1a of { b : ballot; from_slot : int }
  | P1b of { b : ballot; accepted : (int * ballot * Command.t) list }
  | P2a of { b : ballot; start_slot : int; cmds : Command.t list }
  | P2b of { b : ballot; start_slot : int; count : int }
  | Preempted of { b : ballot }
  | Decided_watermark of { b : ballot; upto : int }
  | Decision of { start_slot : int; cmds : Command.t list }
  | Decision_req of { from : int }
  | Snapshot of { idx : int; payload : string }

type state = Passive | Scouting | Active

let state_is_active = function Active -> true | Passive | Scouting -> false
let state_is_scouting = function Scouting -> true | Passive | Active -> false
let state_is_passive = function Passive -> true | Scouting | Active -> false

(* Whom the failure detector watches. It is only ever an *activated* leader
   (learned from its Phase-2 traffic) or ourselves; a mere preemptor is never
   adopted. This distinction is what separates the quorum-loss deadlock (the
   watched stale leader stays alive) from the recoverable scenarios. *)
type fd_target = No_leader | Myself | Activated of int

(* An in-flight proposal at the active leader. [acks] is a bitmask of
   acceptors, including self. *)
type slot_state = {
  s_cmd : Command.t;
  mutable acks : int;
  mutable committed : bool;
  mutable born : int;
}

type t = {
  id : int;
  peers : int list;
  quorum : int;
  election_ticks : int;
  heartbeat_ticks : int;
  rand : Random.State.t;
  send : dst:int -> msg -> unit;
  on_decide : int -> unit;
  mutable tick_count : int;
  last_heard : (int, int) Hashtbl.t;
  (* Acceptor state. *)
  mutable prom : ballot;
  accepted : (int, ballot * Command.t) Hashtbl.t;
  mutable acc_trim : int;  (* accepted slots below this were decided *)
  (* Proposer state. *)
  mutable state : state;
  mutable ballot : ballot;
  mutable max_seen : ballot;
  mutable fd_leader : fd_target;
  p1bs : (int, (int * ballot * Command.t) list) Hashtbl.t;
  mutable scout_ticks : int;
  mutable backoff : int;
  slots : (int, slot_state) Hashtbl.t;
  mutable next_slot : int;
  mutable pending_from : int;
  max_batch : int;
  eager_batch : int;  (* 0 = flush only on tick *)
  (* Learner state. *)
  decided : Command.t Log.t;
  (* Compaction: [app] is the state machine covering exactly
     [0, first_idx decided); slots below the trim point survive only there. *)
  snapshot_interval : int;  (* 0 = compaction off *)
  retain : int;
  on_compact : upto:int -> entries:int -> unit;
  on_install : int -> string -> unit;
  mutable app : Replog.Kv.t;
  mutable snap_client_cmds : int;
}

let noop_id = -1

(* Decided values reported in a P1b carry a sentinel ballot so they always
   win the max-ballot adoption; this is safe because a slot's decided value
   is unique and any conflicting accepted value has a lower ballot than the
   deciding one. *)
let decided_ballot pid = { n = max_int; pid }

let create ~id ~peers ~election_ticks ~rand ?(max_batch = 4096)
    ?(eager_batch = 0) ?(snapshot_interval = 0) ?(retain = 0)
    ?(on_compact = fun ~upto:_ ~entries:_ -> ()) ?(on_install = fun _ _ -> ())
    ~send ?(on_decide = fun _ -> ()) () =
  let n_total = List.length peers + 1 in
  {
    id;
    peers;
    quorum = (n_total / 2) + 1;
    election_ticks;
    heartbeat_ticks = max 1 (election_ticks / 5);
    rand;
    send;
    on_decide;
    tick_count = 0;
    last_heard = Hashtbl.create 8;
    prom = bottom;
    accepted = Hashtbl.create 64;
    acc_trim = 0;
    state = Passive;
    ballot = { n = 0; pid = id };
    max_seen = bottom;
    fd_leader = No_leader;
    p1bs = Hashtbl.create 8;
    scout_ticks = 0;
    backoff = Random.State.int rand (election_ticks + 1);
    slots = Hashtbl.create 64;
    next_slot = 0;
    pending_from = 0;
    max_batch = max 1 max_batch;
    eager_batch;
    decided = Log.create ();
    snapshot_interval = max 0 snapshot_interval;
    retain = max 0 retain;
    on_compact;
    on_install;
    app = Replog.Kv.create ();
    snap_client_cmds = 0;
  }

let bit i = 1 lsl i

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let alive t p =
  match Hashtbl.find_opt t.last_heard p with
  | Some last -> t.tick_count - last < t.election_ticks
  | None -> false

let trim_accepted t =
  let len = Log.length t.decided in
  while t.acc_trim < len do
    Hashtbl.remove t.accepted t.acc_trim;
    t.acc_trim <- t.acc_trim + 1
  done

(* Fold the decided prefix below [upto] into the state machine, then trim.
   Purely local: every server compacts below its own decided watermark, and
   stragglers that later ask for discarded slots get the snapshot instead. *)
let compact_below t ~upto =
  let floor = Log.first_idx t.decided in
  if upto > floor then begin
    List.iter
      (fun (c : Command.t) ->
        (match Replog.Kv.apply t.app c with
        | Replog.Kv.Ok_unit | Replog.Kv.Value _ -> ());
        if c.Command.id >= 0 then
          t.snap_client_cmds <- t.snap_client_cmds + 1)
      (Log.sub t.decided ~pos:floor ~len:(upto - floor));
    Log.trim t.decided ~upto;
    t.on_compact ~upto ~entries:(upto - floor)
  end

let maybe_compact t =
  if t.snapshot_interval > 0 then begin
    let len = Log.length t.decided in
    if len - Log.first_idx t.decided >= t.snapshot_interval then
      compact_below t ~upto:(len - t.retain)
  end

let send_snapshot t ~dst =
  let idx = Log.first_idx t.decided in
  let payload =
    Replog.Snapshot.encode ~last_idx:idx ~client_cmds:t.snap_client_cmds t.app
  in
  t.send ~dst (Snapshot { idx; payload })

(* Followers hold the decided values in their accepted slots already, so the
   leader only broadcasts a watermark; full values are re-sent on demand
   ([Decision_req]) when a follower's accepted ballot does not match. *)
let broadcast_decisions t =
  let m = Decided_watermark { b = t.ballot; upto = Log.length t.decided } in
  List.iter (fun p -> t.send ~dst:p m) t.peers

let advance_decided_prefix t =
  let advanced = ref false in
  let rec go () =
    let next = Log.length t.decided in
    match Hashtbl.find_opt t.slots next with
    | Some s when s.committed ->
        Log.append t.decided s.s_cmd;
        Hashtbl.remove t.slots next;
        advanced := true;
        go ()
    | Some _ | None -> ()
  in
  go ();
  if !advanced then begin
    trim_accepted t;
    t.on_decide (Log.length t.decided);
    broadcast_decisions t;
    maybe_compact t
  end

(* Marks the slot committed; the caller advances the decided prefix once per
   batch (advancing per slot would broadcast one watermark per entry). *)
let try_commit_slot t slot =
  match Hashtbl.find_opt t.slots slot with
  | Some s when (not s.committed) && popcount s.acks >= t.quorum ->
      s.committed <- true
  | Some _ | None -> ()

(* Cap on commands per P2a is [t.max_batch]; a large backlog streams across
   flushes. *)
let flush_p2a t =
  if state_is_active t.state && t.pending_from < t.next_slot then begin
    let count = min t.max_batch (t.next_slot - t.pending_from) in
    let cmds =
      List.filter_map
        (fun slot ->
          Option.map (fun s -> s.s_cmd) (Hashtbl.find_opt t.slots slot))
        (List.init count (fun i -> t.pending_from + i))
    in
    let m = P2a { b = t.ballot; start_slot = t.pending_from; cmds } in
    List.iter (fun p -> t.send ~dst:p m) t.peers;
    t.pending_from <- t.pending_from + count
  end

let self_accept t slot cmd =
  Hashtbl.replace t.accepted slot (t.ballot, cmd)

let propose_in_slot t cmd =
  let slot = t.next_slot in
  t.next_slot <- slot + 1;
  self_accept t slot cmd;
  Hashtbl.replace t.slots slot
    { s_cmd = cmd; acks = bit t.id; committed = false; born = t.tick_count };
  try_commit_slot t slot;
  if t.quorum = 1 then advance_decided_prefix t

let propose t cmd =
  if state_is_active t.state then begin
    propose_in_slot t cmd;
    (* Mirror of the Omni-Paxos adaptive-batching eager flush: once the
       pending burst reaches [eager_batch], ship it now rather than waiting
       for the next tick. *)
    if t.eager_batch > 0 && t.next_slot - t.pending_from >= t.eager_batch then
      flush_p2a t;
    true
  end
  else false

let become_active t =
  t.state <- Active;
  t.fd_leader <- Myself;
  (* Adopt the max-ballot accepted value per slot above our decided prefix;
     fill holes with internal no-ops. *)
  let from_slot = Log.length t.decided in
  let best = Hashtbl.create 64 in
  let max_slot = ref (from_slot - 1) in
  Replog.Det.iter_sorted ~compare_key:Int.compare
    (fun _src lst ->
      List.iter
        (fun (slot, b, cmd) ->
          if slot >= from_slot then begin
            if slot > !max_slot then max_slot := slot;
            match Hashtbl.find_opt best slot with
            | Some (b', _) when ballot_compare b' b >= 0 -> ()
            | Some _ | None -> Hashtbl.replace best slot (b, cmd)
          end)
        lst)
    t.p1bs;
  t.next_slot <- from_slot;
  t.pending_from <- from_slot;
  for slot = from_slot to !max_slot do
    let cmd =
      match Hashtbl.find_opt best slot with
      | Some (_, cmd) -> cmd
      | None -> Command.noop noop_id
    in
    propose_in_slot t cmd
  done;
  flush_p2a t;
  let announce = P2a { b = t.ballot; start_slot = t.next_slot; cmds = [] } in
  List.iter (fun p -> t.send ~dst:p announce) t.peers

let check_scout_quorum t =
  if state_is_scouting t.state && Hashtbl.length t.p1bs >= t.quorum then
    become_active t

let own_accepted_from t from_slot =
  List.filter_map
    (fun (slot, (b, cmd)) ->
      if slot >= from_slot then Some (slot, b, cmd) else None)
    (Replog.Det.sorted_bindings ~compare_key:Int.compare t.accepted)

(* Decided slots may have been trimmed from [accepted]; report them with the
   sentinel ballot. Slots below the trim point live only in the snapshot,
   which the caller ships separately — clamp to what the log still holds. *)
let p1b_payload t from_slot =
  let from_slot = max from_slot (Log.first_idx t.decided) in
  let decided_part =
    let len = Log.length t.decided in
    if from_slot >= len then []
    else
      List.mapi
        (fun i cmd -> (from_slot + i, decided_ballot t.id, cmd))
        (Log.suffix t.decided ~from:from_slot)
  in
  decided_part @ own_accepted_from t (max from_slot (Log.length t.decided))

let start_scout t =
  t.state <- Scouting;
  t.scout_ticks <- 0;
  t.fd_leader <- Myself;
  Hashtbl.reset t.p1bs;
  t.ballot <- { n = t.max_seen.n + 1; pid = t.id };
  t.max_seen <- t.ballot;
  if ballot_compare t.ballot t.prom > 0 then t.prom <- t.ballot;
  let from_slot = Log.length t.decided in
  Hashtbl.replace t.p1bs t.id (p1b_payload t from_slot);
  List.iter
    (fun p -> t.send ~dst:p (P1a { b = t.ballot; from_slot }))
    t.peers;
  check_scout_quorum t

let on_p1a t ~src ~b ~from_slot =
  if ballot_compare b t.prom > 0 then begin
    t.prom <- b;
    t.max_seen <- ballot_max t.max_seen b;
    (* A scout below our trim point cannot learn those decided slots from
       the P1b; ship the snapshot first so it catches up before adopting. *)
    if from_slot < Log.first_idx t.decided then send_snapshot t ~dst:src;
    t.send ~dst:src (P1b { b; accepted = p1b_payload t from_slot })
  end
  else t.send ~dst:src (Preempted { b = t.prom })

let on_p1b t ~src ~b ~accepted =
  if state_is_scouting t.state && ballot_compare b t.ballot = 0 then begin
    Hashtbl.replace t.p1bs src accepted;
    check_scout_quorum t
  end

let on_p2a t ~src ~b ~start_slot ~cmds =
  if ballot_compare b t.prom >= 0 then begin
    t.prom <- b;
    t.max_seen <- ballot_max t.max_seen b;
    (* Phase-2 traffic identifies the active leader: adopt it and abandon
       any competing proposer role. *)
    if b.pid <> t.id then begin
      t.fd_leader <- Activated b.pid;
      if not (state_is_passive t.state) then t.state <- Passive
    end;
    List.iteri
      (fun i cmd -> Hashtbl.replace t.accepted (start_slot + i) (b, cmd))
      cmds;
    if not (List.is_empty cmds) then
      t.send ~dst:src (P2b { b; start_slot; count = List.length cmds })
  end
  else begin
    t.send ~dst:src (Preempted { b = t.prom });
    (* The sender is an alive, active leader we cannot accept (our acceptor
       promised higher): stop competing and let it re-scout above us. *)
    if state_is_scouting t.state then begin
      t.state <- Passive;
      t.fd_leader <- Activated src;
      t.backoff <- t.election_ticks
    end
  end

let on_p2b t ~src ~b ~start_slot ~count =
  if state_is_active t.state && ballot_compare b t.ballot = 0 then begin
    for i = 0 to count - 1 do
      let slot = start_slot + i in
      match Hashtbl.find_opt t.slots slot with
      | Some s ->
          s.acks <- s.acks lor bit src;
          try_commit_slot t slot
      | None -> ()
    done;
    advance_decided_prefix t
  end

let on_preempted t ~b =
  t.max_seen <- ballot_max t.max_seen b;
  if (state_is_scouting t.state || state_is_active t.state)
     && ballot_compare b t.ballot > 0
  then begin
    (* Deposed. We keep watching ourselves, so after a randomized backoff
       (PMMC's prescription, avoiding repeated scout collisions) we retry
       with a higher ballot. *)
    t.state <- Passive;
    t.fd_leader <- Myself;
    t.backoff <-
      t.election_ticks + Random.State.int t.rand (t.election_ticks + 1)
  end

(* Promote accepted slots to decided up to the leader's watermark. A slot
   accepted in the watermark's ballot holds the decided value (any value
   accepted at or above the deciding ballot equals it); anything else needs
   an explicit catch-up. *)
let on_watermark t ~src ~b ~upto =
  let progressed = ref false in
  let rec go () =
    let len = Log.length t.decided in
    if len < upto then
      match Hashtbl.find_opt t.accepted len with
      | Some (b', cmd) when ballot_compare b' b = 0 ->
          Log.append t.decided cmd;
          progressed := true;
          go ()
      | Some _ | None -> t.send ~dst:src (Decision_req { from = len })
  in
  go ();
  if !progressed then begin
    trim_accepted t;
    t.on_decide (Log.length t.decided);
    maybe_compact t
  end

let on_decision t ~src ~start_slot ~cmds =
  let len = Log.length t.decided in
  if start_slot > len then t.send ~dst:src (Decision_req { from = len })
  else begin
    let skip = len - start_slot in
    let fresh = List.filteri (fun i _ -> i >= skip) cmds in
    if not (List.is_empty fresh) then begin
      Log.append_list t.decided fresh;
      trim_accepted t;
      t.on_decide (Log.length t.decided);
      maybe_compact t
    end
  end

let on_decision_req t ~src ~from =
  let floor = Log.first_idx t.decided in
  if from < floor then begin
    (* The requested prefix was compacted away: ship the snapshot, plus the
       still-logged tail so the straggler lands at our watermark. *)
    send_snapshot t ~dst:src;
    if floor < Log.length t.decided then
      t.send ~dst:src
        (Decision { start_slot = floor; cmds = Log.suffix t.decided ~from:floor })
  end
  else if from < Log.length t.decided then
    t.send ~dst:src
      (Decision { start_slot = from; cmds = Log.suffix t.decided ~from })

(* Install a peer's snapshot: replace everything below [idx] with the shipped
   state and restart the decided log there. Only ever a jump forward — a
   stale or duplicate snapshot is ignored. *)
let on_snapshot t ~idx ~payload =
  if idx > Log.length t.decided then
    match Replog.Snapshot.decode payload with
    | Ok s ->
        t.app <- Replog.Snapshot.restore s;
        t.snap_client_cmds <- s.Replog.Snapshot.client_cmds;
        Log.reset_to t.decided ~offset:idx;
        trim_accepted t;
        t.on_install idx payload;
        t.on_decide (Log.length t.decided)
    | Error _ -> ()

let handle t ~src msg =
  Hashtbl.replace t.last_heard src t.tick_count;
  match msg with
  | Heartbeat -> ()
  | P1a { b; from_slot } -> on_p1a t ~src ~b ~from_slot
  | P1b { b; accepted } -> on_p1b t ~src ~b ~accepted
  | P2a { b; start_slot; cmds } -> on_p2a t ~src ~b ~start_slot ~cmds
  | P2b { b; start_slot; count } -> on_p2b t ~src ~b ~start_slot ~count
  | Preempted { b } -> on_preempted t ~b
  | Decided_watermark { b; upto } -> on_watermark t ~src ~b ~upto
  | Decision { start_slot; cmds } -> on_decision t ~src ~start_slot ~cmds
  | Decision_req { from } -> on_decision_req t ~src ~from
  | Snapshot { idx; payload } -> on_snapshot t ~idx ~payload

(* Retransmit batches for old uncommitted slots (covers lost messages). *)
let retransmit_uncommitted t =
  let sorted =
    List.filter_map
      (fun (slot, s) ->
        if (not s.committed) && t.tick_count - s.born >= t.election_ticks
        then begin
          s.born <- t.tick_count;
          Some (slot, s.s_cmd)
        end
        else None)
      (Replog.Det.sorted_bindings ~compare_key:Int.compare t.slots)
  in
  let rec batches acc current rest =
    match (rest, current) with
    | [], None -> List.rev acc
    | [], Some c -> List.rev (c :: acc)
    | (slot, cmd) :: tl, Some (start, cmds_rev)
      when start + List.length cmds_rev = slot ->
        batches acc (Some (start, cmd :: cmds_rev)) tl
    | (slot, cmd) :: tl, Some c -> batches (c :: acc) (Some (slot, [ cmd ])) tl
    | (slot, cmd) :: tl, None -> batches acc (Some (slot, [ cmd ])) tl
  in
  List.iter
    (fun (start, cmds_rev) ->
      let m =
        P2a { b = t.ballot; start_slot = start; cmds = List.rev cmds_rev }
      in
      List.iter (fun p -> t.send ~dst:p m) t.peers)
    (batches [] None sorted)

let tick t =
  t.tick_count <- t.tick_count + 1;
  if t.tick_count mod t.heartbeat_ticks = 0 then
    List.iter (fun p -> t.send ~dst:p Heartbeat) t.peers;
  match t.state with
  | Active ->
      flush_p2a t;
      if t.tick_count mod t.heartbeat_ticks = 0 then begin
        let signal =
          P2a { b = t.ballot; start_slot = t.next_slot; cmds = [] }
        in
        List.iter (fun p -> t.send ~dst:p signal) t.peers
      end;
      if t.tick_count mod t.election_ticks = 0 then retransmit_uncommitted t
  | Scouting ->
      t.scout_ticks <- t.scout_ticks + 1;
      if t.scout_ticks >= t.election_ticks then start_scout t
  | Passive ->
      let suspect =
        match t.fd_leader with
        | No_leader | Myself -> true
        | Activated l -> not (alive t l)
      in
      if suspect then begin
        if t.backoff > 0 then t.backoff <- t.backoff - 1 else start_scout t
      end

let session_reset t ~peer =
  (* Lost watermarks and P2as are recovered by the periodic announce and
     retransmission paths; re-announce the watermark eagerly. *)
  if state_is_active t.state then
    t.send ~dst:peer
      (Decided_watermark { b = t.ballot; upto = Log.length t.decided })

let state t = t.state
let is_leader t = state_is_active t.state

let leader_pid t =
  match t.fd_leader with
  | Myself -> if state_is_active t.state then Some t.id else None
  | Activated l -> Some l
  | No_leader -> None

let current_ballot t = t.ballot
let decided_log t = t.decided
let decided_length t = Log.length t.decided
let first_idx t = Log.first_idx t.decided
let snapshot_client_cmds t = t.snap_client_cmds

let snapshot t =
  Replog.Snapshot.encode
    ~last_idx:(Log.first_idx t.decided)
    ~client_cmds:t.snap_client_cmds t.app
let next_slot t = t.next_slot

let cmds_size cmds = List.fold_left (fun acc c -> acc + Command.size c) 0 cmds

let msg_size = function
  | Heartbeat -> 9
  | P1a _ -> 33
  | P1b { accepted; _ } ->
      25
      + List.fold_left (fun acc (_, _, c) -> acc + 24 + Command.size c) 0 accepted
  | P2a { cmds; _ } -> 33 + cmds_size cmds
  | P2b _ -> 33
  | Preempted _ -> 25
  | Decided_watermark _ -> 25
  | Decision { cmds; _ } -> 17 + cmds_size cmds
  | Decision_req _ -> 17
  | Snapshot { payload; _ } -> 17 + String.length payload
