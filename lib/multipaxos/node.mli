(** Multi-Paxos baseline (in the style of "Paxos made moderately complex"
    [37] / frankenpaxos, which the paper benchmarks against).

    Entries are decided in independent slots; the client-visible log is the
    contiguous prefix of decided slots. Leadership is implicit: a server
    whose failure detector suspects the current *active* leader bumps its
    ballot above everything seen and runs Phase 1 (a scout); on a majority
    of promises it becomes active and replicates with Phase 2, filling slot
    gaps with internal no-ops.

    The failure-detector semantics reproduce the behaviours analysed in §2
    of the paper:
    - the FD monitors node-liveness of the last *active* leader, so in the
      quorum-loss scenario the hub keeps hearing the stale leader's
      heartbeats and never takes over (deadlock);
    - a preempted proposer learns the preemptor's identity, monitors it, and
      retries with a higher ballot when it appears dead — the gossip loop
      behind the chained-scenario livelock;
    - candidacy requires no log or EQC precondition, so the constrained
      election scenario recovers. *)

type ballot = { n : int; pid : int }

type msg =
  | Heartbeat  (** node-liveness heartbeat (not ballot-stamped) *)
  | P1a of { b : ballot; from_slot : int }
  | P1b of {
      b : ballot;
      accepted : (int * ballot * Replog.Command.t) list;
          (** accepted slots at or above the scout's [from_slot] *)
    }
  | P2a of {
      b : ballot;
      start_slot : int;
      cmds : Replog.Command.t list;  (** empty = leader activity signal *)
    }
  | P2b of { b : ballot; start_slot : int; count : int }
  | Preempted of { b : ballot }
  | Decided_watermark of { b : ballot; upto : int }
      (** learners promote matching accepted slots to decided *)
  | Decision of { start_slot : int; cmds : Replog.Command.t list }
  | Decision_req of { from : int }
  | Snapshot of { idx : int; payload : string }
      (** a {!Replog.Snapshot} envelope covering slots [0, idx), sent to
          servers that ask for slots below the sender's trim point *)

type state = Passive | Scouting | Active

type t

val create :
  id:int ->
  peers:int list ->
  election_ticks:int ->
  rand:Random.State.t ->
  ?max_batch:int ->
  ?eager_batch:int ->
  ?snapshot_interval:int ->
  ?retain:int ->
  ?on_compact:(upto:int -> entries:int -> unit) ->
  ?on_install:(int -> string -> unit) ->
  send:(dst:int -> msg -> unit) ->
  ?on_decide:(int -> unit) ->
  unit ->
  t
(** [max_batch] (default 4096) caps commands per P2a; [eager_batch]
    (default 0 = off) flushes pending proposals as soon as that many slots
    are queued instead of waiting for the next tick — the Multi-Paxos
    mirror of the Omni-Paxos adaptive batching knob.

    [snapshot_interval] (default 0 = off) enables local log compaction: once
    that many decided slots accumulate above the trim point, the server folds
    the decided prefix (except the last [retain] slots, default 0) into its
    KV snapshot and trims the decided log. Requests for discarded slots
    (catch-up, scouts below the trim point) are answered with a [Snapshot]
    message instead. [on_compact] fires after each local trim, [on_install]
    after installing a peer's snapshot. *)

val handle : t -> src:int -> msg -> unit
val tick : t -> unit
val session_reset : t -> peer:int -> unit
val propose : t -> Replog.Command.t -> bool
val state : t -> state
val is_leader : t -> bool
val leader_pid : t -> int option
val current_ballot : t -> ballot
val decided_log : t -> Replog.Command.t Replog.Log.t
(** The contiguous decided prefix (includes internal no-op gap fillers,
    which have negative ids). *)

val decided_length : t -> int

val first_idx : t -> int
(** The decided log's trim point: slots below it live only in the snapshot. *)

val snapshot_client_cmds : t -> int
(** Client commands (id >= 0) contained in the trimmed prefix. *)

val snapshot : t -> string
(** The encoded {!Replog.Snapshot} envelope covering [0, first_idx). *)

val next_slot : t -> int
(** Leader-side: the next free slot (slots below it hold proposals). *)

val msg_size : msg -> int
