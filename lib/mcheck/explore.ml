(** Bounded explicit-state model checking of the {!Spec} specification.

    From an initial state and a set of pending external events (leader
    events and client proposals that may fire at any time, once each), the
    explorer enumerates every reachable state under all message
    interleavings — optionally with message drops — and checks the Sequence
    Consensus properties in each state:

    - SC1 (validity): every log entry is a proposed command;
    - SC2 (uniform agreement): decided prefixes are pairwise compatible;
    - SC3 (integrity): along every edge, each server's decided prefix is
      only ever extended. *)

type config = {
  leader_events : (int * Spec.ballot) list;
  proposals : (int * int) list;  (** (node to propose at, command) *)
  allow_drops : bool;
  max_states : int;
}

type result = {
  states : int;
  truncated : bool;  (** hit [max_states] before exhausting the space *)
  violation : string option;  (** description of the first violation found *)
}

(* A search node: the protocol state plus which external events are still
   pending. Kept canonical (sorted pending lists) for deduplication. *)
type snode = {
  spec : Spec.state;
  pending_leaders : (int * Spec.ballot) list;
  pending_proposals : (int * int) list;
}

let decided_prefix (n : Spec.node) = Spec.take n.Spec.dec n.Spec.log

let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys -> Int.equal x y && is_prefix xs ys

let check_sc1 ~commands (st : Spec.state) =
  List.for_all
    (fun (n : Spec.node) ->
      List.for_all (fun e -> List.mem e commands) n.Spec.log)
    st.Spec.nodes

let check_sc2 (st : Spec.state) =
  let prefixes = List.map decided_prefix st.Spec.nodes in
  List.for_all
    (fun a -> List.for_all (fun b -> is_prefix a b || is_prefix b a) prefixes)
    prefixes

(* SC3 along an edge: every node's old decided prefix is a prefix of its new
   one. *)
let check_sc3_edge (before : Spec.state) (after : Spec.state) =
  List.for_all2
    (fun b a -> is_prefix (decided_prefix b) (decided_prefix a))
    before.Spec.nodes after.Spec.nodes

(* All successor states of a search node. *)
let successors cfg sn =
  let deliveries =
    List.filter_map
      (fun ((src, dst), q) ->
        match q with
        | [] -> None
        | m :: rest ->
            let spec =
              Spec.handle
                {
                  sn.spec with
                  Spec.queues =
                    List.map
                      (fun (k, q') ->
                        if Spec.pair_eq k (src, dst) then (k, rest) else (k, q'))
                      sn.spec.Spec.queues;
                }
                ~dst ~src m
            in
            Some { sn with spec })
      sn.spec.Spec.queues
  in
  let drops =
    if not cfg.allow_drops then []
    else
      List.filter_map
        (fun ((src, dst), q) ->
          match q with
          | [] -> None
          | _ :: rest ->
              Some
                {
                  sn with
                  spec =
                    {
                      sn.spec with
                      Spec.queues =
                        List.map
                          (fun (k, q') ->
                            if Spec.pair_eq k (src, dst) then (k, rest) else (k, q'))
                          sn.spec.Spec.queues;
                    };
                })
        sn.spec.Spec.queues
  in
  let leaders =
    List.map
      (fun (i, b) ->
        {
          sn with
          spec = Spec.leader_event sn.spec i b;
          pending_leaders =
            List.filter
              (fun (j, b') -> not (Int.equal j i && Spec.ballot_eq b' b))
              sn.pending_leaders;
        })
      sn.pending_leaders
  in
  let proposals =
    List.map
      (fun (i, c) ->
        {
          sn with
          spec = Spec.propose sn.spec i c;
          pending_proposals =
            List.filter
              (fun (j, c') -> not (Int.equal j i && Int.equal c' c))
              sn.pending_proposals;
        })
      sn.pending_proposals
  in
  deliveries @ drops @ leaders @ proposals

let run cfg =
  let commands = List.map snd cfg.proposals in
  let visited : (snode, unit) Hashtbl.t = Hashtbl.create 65536 in
  let initial =
    {
      spec = Spec.init_state;
      pending_leaders =
        List.sort
          (fun (i1, b1) (i2, b2) ->
            let c = Int.compare i1 i2 in
            if c <> 0 then c else Spec.ballot_compare b1 b2)
          cfg.leader_events;
      pending_proposals =
        List.sort
          (fun (i1, c1) (i2, c2) ->
            let c = Int.compare i1 i2 in
            if c <> 0 then c else Int.compare c1 c2)
          cfg.proposals;
    }
  in
  let stack = Stack.create () in
  Stack.push initial stack;
  Hashtbl.replace visited initial ();
  let states = ref 0 in
  let violation = ref None in
  let truncated = ref false in
  while (not (Stack.is_empty stack)) && Option.is_none !violation do
    let sn = Stack.pop stack in
    incr states;
    if not (check_sc1 ~commands sn.spec) then
      violation := Some "SC1: a log contains an unproposed command"
    else if not (check_sc2 sn.spec) then
      violation := Some "SC2: decided prefixes diverged"
    else
      List.iter
        (fun succ ->
          if Option.is_none !violation then
            if not (check_sc3_edge sn.spec succ.spec) then
              violation := Some "SC3: a decided prefix was retracted"
            else if not (Hashtbl.mem visited succ) then begin
              if Hashtbl.length visited >= cfg.max_states then
                truncated := true
              else begin
                Hashtbl.replace visited succ ();
                Stack.push succ stack
              end
            end)
        (successors cfg sn)
  done;
  { states = !states; truncated = !truncated; violation = !violation }
