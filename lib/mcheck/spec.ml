(** A pure, executable specification of Sequence Paxos — the OCaml analog
    of the paper's PlusCal/TLA+ model. States are immutable and canonical,
    so the bounded explorer in {!Explore} can enumerate every reachable
    state of small instances and check the Sequence Consensus properties in
    each one.

    Commands are plain integers; ballots are [(n, pid)] pairs. The message
    set and handlers mirror Figure 3b of the paper (and the production
    implementation in [Omnipaxos.Sequence_paxos]), minus the engineering
    layers (batched accepts, pipelining counters, session resets). *)

type ballot = int * int (* n, pid *)

let bottom : ballot = (0, -1)

let ballot_compare ((n1, p1) : ballot) ((n2, p2) : ballot) =
  let c = Int.compare n1 n2 in
  if c <> 0 then c else Int.compare p1 p2

let ballot_eq a b = ballot_compare a b = 0

let pair_eq ((a1, b1) : int * int) ((a2, b2) : int * int) =
  Int.equal a1 a2 && Int.equal b1 b2

type entry = int

type msg =
  | Prepare of { n : ballot; acc_rnd : ballot; log_len : int; dec : int }
  | Promise of {
      n : ballot;
      acc_rnd : ballot;
      log_len : int;
      dec : int;
      suffix_from : int;
      suffix : entry list;
    }
  | Accept_sync of { n : ballot; sync_idx : int; suffix : entry list; dec : int }
  | Accept of { n : ballot; start_idx : int; entry : entry; dec : int }
  | Accepted of { n : ballot; log_len : int }
  | Decide of { n : ballot; dec : int }

type role =
  | Follower
  | Prep of (int * (ballot * int * int * int * entry list)) list
      (** received promises: src -> (acc_rnd, log_len, dec, suffix_from, suffix) *)
  | Lead of (int * int) list  (** accepted length per promised follower *)

let is_follower = function Follower -> true | Prep _ | Lead _ -> false

type node = {
  id : int;
  log : entry list;
  prom : ballot;
  acc : ballot;
  dec : int;
  role : role;
}

(* Queues in a fixed (src, dst) order so states are canonical. *)
type state = { nodes : node list; queues : ((int * int) * msg list) list }

let n_nodes = 3
let quorum = 2

let init_node id =
  { id; log = []; prom = bottom; acc = bottom; dec = 0; role = Follower }

let init_state =
  let pairs =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun d -> if s = d then None else Some ((s, d), []))
          (List.init n_nodes Fun.id))
      (List.init n_nodes Fun.id)
  in
  { nodes = List.init n_nodes init_node; queues = pairs }

let node st i = List.nth st.nodes i

let update_node st i f =
  { st with nodes = List.mapi (fun j n -> if j = i then f n else n) st.nodes }

let send st ~src ~dst m =
  {
    st with
    queues =
      List.map
        (fun (k, q) -> if pair_eq k (src, dst) then (k, q @ [ m ]) else (k, q))
        st.queues;
  }

let take n l = List.filteri (fun i _ -> i < n) l
let drop n l = List.filteri (fun i _ -> i >= n) l
let suffix_from i l = drop i l
let ballot_gt (a : ballot) b = ballot_compare a b > 0
let ballot_ge (a : ballot) b = ballot_compare a b >= 0

(* ---------------- transitions ---------------- *)

(* External leader event: node [i] becomes the leader of ballot [b]. *)
let leader_event st i (b : ballot) =
  let me = node st i in
  if snd b = i && ballot_gt b me.prom then begin
    let st = update_node st i (fun n -> { n with prom = b; role = Prep [] }) in
    let me = node st i in
    let prepare =
      Prepare
        { n = b; acc_rnd = me.acc; log_len = List.length me.log; dec = me.dec }
    in
    List.fold_left
      (fun st dst -> if dst = i then st else send st ~src:i ~dst prepare)
      st
      (List.init n_nodes Fun.id)
  end
  else st

let on_prepare st ~dst ~src ~n ~acc_rnd ~log_len ~dec =
  let me = node st dst in
  if ballot_ge n me.prom then begin
    let suffix_from_idx, suffix =
      if ballot_gt me.acc acc_rnd then (dec, suffix_from dec me.log)
      else if ballot_eq me.acc acc_rnd && List.length me.log > log_len then
        (log_len, suffix_from log_len me.log)
      else (List.length me.log, [])
    in
    let st =
      update_node st dst (fun nd -> { nd with prom = n; role = Follower })
    in
    let me = node st dst in
    send st ~src:dst ~dst:src
      (Promise
         {
           n;
           acc_rnd = me.acc;
           log_len = List.length me.log;
           dec = me.dec;
           suffix_from = suffix_from_idx;
           suffix;
         })
  end
  else st

let sync_and_lead st leader promises =
  let me = node st leader in
  let n = me.prom in
  (* Adopt the most updated log among the promises and self (P2c). *)
  let best =
    List.fold_left
      (fun (b_acc, b_len, b_src) (src, (acc_rnd, log_len, _, _, _)) ->
        let c = ballot_compare acc_rnd b_acc in
        if c > 0 || (c = 0 && log_len > b_len) then (acc_rnd, log_len, Some src)
        else (b_acc, b_len, b_src))
      (me.acc, List.length me.log, None)
      promises
  in
  let _, _, best_src = best in
  let max_acc, _, _ = best in
  let st =
    match best_src with
    | None -> st
    | Some src ->
        let _, _, _, sfx_from, sfx =
          List.assoc src promises
        in
        update_node st leader (fun nd ->
            { nd with log = take sfx_from nd.log @ sfx })
  in
  let max_dec =
    List.fold_left
      (fun acc (_, (_, _, dec, _, _)) -> max acc dec)
      (node st leader).dec promises
  in
  let st =
    update_node st leader (fun nd ->
        { nd with acc = n; dec = min max_dec (List.length nd.log) })
  in
  let me = node st leader in
  (* Synchronise every promised follower. *)
  let st =
    List.fold_left
      (fun st (src, (acc_rnd, log_len, f_dec, _, _)) ->
        let sync_idx = if ballot_eq acc_rnd max_acc then log_len else f_dec in
        send st ~src:leader ~dst:src
          (Accept_sync
             { n; sync_idx; suffix = suffix_from sync_idx me.log; dec = me.dec }))
      st promises
  in
  update_node st leader (fun nd ->
      {
        nd with
        role =
          Lead
            (List.map
               (fun (src, (acc_rnd, log_len, f_dec, _, _)) ->
                 (src, if ballot_eq acc_rnd max_acc then log_len else f_dec))
               promises);
      })

let on_promise st ~dst ~src ~n ~info =
  let me = node st dst in
  if not (ballot_eq me.prom n) then st
  else
    match me.role with
    | Prep promises ->
        let promises = (src, info) :: List.remove_assoc src promises in
        if List.length promises + 1 >= quorum then sync_and_lead st dst promises
        else update_node st dst (fun nd -> { nd with role = Prep promises })
    | Lead acc_idx ->
        (* Late promise: synchronise the straggler. *)
        let acc_rnd, log_len, f_dec, _, _ = info in
        let sync_idx = if ballot_eq acc_rnd me.acc then log_len else f_dec in
        let sync_idx = min sync_idx (List.length me.log) in
        let st =
          send st ~src:dst ~dst:src
            (Accept_sync
               {
                 n;
                 sync_idx;
                 suffix = suffix_from sync_idx me.log;
                 dec = me.dec;
               })
        in
        update_node st dst (fun nd ->
            { nd with role = Lead ((src, sync_idx) :: List.remove_assoc src acc_idx) })
    | Follower -> st

let on_accept_sync st ~dst ~src ~n ~sync_idx ~suffix ~dec =
  let me = node st dst in
  if ballot_eq me.prom n && sync_idx <= List.length me.log then begin
    let st =
      update_node st dst (fun nd ->
          let log = take sync_idx nd.log @ suffix in
          { nd with acc = n; log; dec = max nd.dec (min dec (List.length log)) })
    in
    let me = node st dst in
    send st ~src:dst ~dst:src (Accepted { n; log_len = List.length me.log })
  end
  else st

let on_accept st ~dst ~src ~n ~start_idx ~entry ~dec =
  let me = node st dst in
  if ballot_eq me.prom n && ballot_eq me.acc n && is_follower me.role then
    if start_idx > List.length me.log then st (* gap: ignore *)
    else if start_idx < List.length me.log then st (* duplicate: ignore *)
    else begin
      let st =
        update_node st dst (fun nd ->
            let log = nd.log @ [ entry ] in
            { nd with log; dec = max nd.dec (min dec (List.length log)) })
      in
      let me = node st dst in
      send st ~src:dst ~dst:src (Accepted { n; log_len = List.length me.log })
    end
  else st

let try_decide st leader =
  let me = node st leader in
  match me.role with
  | Lead acc_idx when List.length acc_idx + 1 >= quorum ->
      let values = List.length me.log :: List.map snd acc_idx in
      let sorted = List.sort (fun a b -> Int.compare b a) values in
      let decidable = List.nth sorted (quorum - 1) in
      if decidable > me.dec then begin
        let st = update_node st leader (fun nd -> { nd with dec = decidable }) in
        List.fold_left
          (fun st (src, _) ->
            send st ~src:leader ~dst:src
              (Decide { n = me.prom; dec = decidable }))
          st acc_idx
      end
      else st
  | Lead _ | Prep _ | Follower -> st

let on_accepted st ~dst ~src ~n ~log_len =
  let me = node st dst in
  if ballot_eq me.prom n then
    match me.role with
    | Lead acc_idx ->
        let prev = Option.value (List.assoc_opt src acc_idx) ~default:0 in
        let acc_idx = (src, max prev log_len) :: List.remove_assoc src acc_idx in
        let st = update_node st dst (fun nd -> { nd with role = Lead acc_idx }) in
        try_decide st dst
    | Prep _ | Follower -> st
  else st

let on_decide st ~dst ~n ~dec =
  let me = node st dst in
  if ballot_eq me.prom n && ballot_eq me.acc n then
    update_node st dst (fun nd ->
        { nd with dec = max nd.dec (min dec (List.length nd.log)) })
  else st

let handle st ~dst ~src msg =
  match msg with
  | Prepare { n; acc_rnd; log_len; dec } ->
      on_prepare st ~dst ~src ~n ~acc_rnd ~log_len ~dec
  | Promise { n; acc_rnd; log_len; dec; suffix_from; suffix } ->
      on_promise st ~dst ~src ~n ~info:(acc_rnd, log_len, dec, suffix_from, suffix)
  | Accept_sync { n; sync_idx; suffix; dec } ->
      on_accept_sync st ~dst ~src ~n ~sync_idx ~suffix ~dec
  | Accept { n; start_idx; entry; dec } ->
      on_accept st ~dst ~src ~n ~start_idx ~entry ~dec
  | Accepted { n; log_len } -> on_accepted st ~dst ~src ~n ~log_len
  | Decide { n; dec } -> on_decide st ~dst ~n ~dec

(* Client proposal at node [i]: appended and replicated if it leads. *)
let propose st i entry =
  let me = node st i in
  match me.role with
  | Lead acc_idx ->
      let start_idx = List.length me.log in
      let st = update_node st i (fun nd -> { nd with log = nd.log @ [ entry ] }) in
      let me = node st i in
      List.fold_left
        (fun st (dst, _) ->
          send st ~src:i ~dst
            (Accept { n = me.prom; start_idx; entry; dec = me.dec }))
        st acc_idx
  | Prep _ | Follower -> st
