(** Bounded ring buffer: O(1) push, overwrites the oldest element once full.
    Backs the in-memory trace sink so long runs cannot exhaust memory. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int
(** Elements currently stored; at most [capacity]. *)

val dropped : 'a t -> int
(** Number of elements overwritten (lost) since creation or the last
    {!clear}. Zero means the ring holds the complete pushed sequence;
    non-zero means the oldest [dropped] elements are gone. *)

val push : 'a t -> 'a -> unit

val push_evict : 'a t -> 'a -> 'a option
(** Like {!push}, but returns the element overwritten by this push (if the
    ring was full) so callers can account for what was lost — e.g. the
    per-kind overflow breakdown in trace recordings. *)

val clear : 'a t -> unit

val iter : 'a t -> ('a -> unit) -> unit
(** Oldest-first. *)

val to_list : 'a t -> 'a list
(** Oldest-first. *)
