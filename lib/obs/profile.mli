(** The resource-attribution profiler: scoped, labelled accounting of where
    a simulation run spends its calls, simulated time, CPU time and
    allocations.

    Process-global and two-level guarded like {!Trace}: {!on} is true only
    while profiling is enabled {e and} a collection is open, so every
    instrumentation site costs one ref load and branch otherwise (verified
    by [bench/check_profile_overhead.ml]). [Simnet.Net.create] installs the
    simulated clock.

    Scoping rules: a frame opened while another is on the stack becomes a
    child of it, so the collected tree mirrors the dynamic dispatch
    structure — protocol handlers nest under the [simnet/deliver] event
    that invoked them, tick handlers under [simnet/timer], the batcher's
    flush under the tick that drove it. Sim-time deltas accrue to the
    innermost open frame; [Simnet.Net] advances its clock inside the
    dispatch frame, so the sim-time column of a top-level event label reads
    as "how much simulated time elapsed up to and during these events".

    Determinism: call counts and sim-time are pure functions of the
    simulated execution (byte-identical across double runs of a seed);
    wall-time and allocation words are process measurements and are not.
    The renderers therefore exclude the wall columns unless [~wall:true]. *)

type t
(** A completed (or live) collection: the root of the attribution tree. *)

(** {1 Guard and collection lifecycle} *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val on : unit -> bool
(** True while profiling is enabled and a collection is open. Guard
    instrumentation sites with this so closure construction is skipped when
    profiling is off. *)

val set_clock : (unit -> float) -> unit
(** Install the simulated clock sampled by {!enter}/{!leave}. *)

val start : unit -> unit
(** Open a fresh collection (replacing any open one). *)

val stop : unit -> t
(** Close the collection and return it, unwinding any frames an exception
    left open. Returns an empty tree if no collection was open. *)

val live : unit -> t option
(** The currently-open collection, for mid-run snapshots (the [opx top]
    dashboard renders from this without stopping the profile). Frames still
    on the stack have not yet contributed their deltas. *)

val with_profile : (unit -> 'a) -> 'a * t
(** [with_profile f] runs [f] with profiling enabled into a fresh
    collection and returns its result together with the profile, restoring
    the previous profiler state afterwards (also on exceptions). *)

(** {1 Instrumentation sites} *)

val enter : string -> unit
(** Open a frame labelled with a component name (by convention
    ["layer/operation"], e.g. ["omnipaxos/handle"]). No-op unless {!on}. *)

val leave : unit -> unit
(** Close the innermost frame and attribute its deltas. No-op on an empty
    stack. Every [enter] must be paired with a [leave] on all paths — use
    {!wrap} unless the call cannot raise. *)

val wrap : string -> (unit -> 'a) -> 'a
(** [wrap label f] runs [f] inside a labelled frame, exception-safe.
    When {!on} is false this is just [f ()] — but the closure argument is
    still constructed, so hot paths should branch on {!on} themselves and
    call the uninstrumented code directly in the cold case. *)

(** {1 Rendering} *)

type row = {
  r_label : string;
  r_calls : int;
  r_sim_ms : float;
  r_wall_ms : float;
  r_alloc_w : float;  (** allocated words (minor + major - promoted) *)
}

val flat : t -> row list
(** The tree flattened by label (one row per component, wherever it
    appears), sorted by call count descending, ties by label. *)

val to_string : ?wall:bool -> ?top:int -> ?tree:bool -> t -> string
(** Flat top-[top] table (default 10) followed by the attribution tree
    (suppressed with [tree:false] — e.g. in per-frame dashboard output).
    [wall] (default false) adds the nondeterministic wall-ms and
    allocation columns. *)

val to_json : ?wall:bool -> t -> Bench_report.Json.t
(** Machine-readable report: schema version, flat rows and the nested
    tree. With [wall:false] (the default) only the deterministic
    [calls_count]/[sim_ms] fields are emitted, so the output is
    byte-identical across double runs of a seed. *)
