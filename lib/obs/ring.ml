(* Bounded ring buffer: O(1) push, overwrites the oldest element once full.
   Backs the in-memory trace sink so long runs cannot exhaust memory. *)

type 'a t = {
  buf : 'a option array;
  mutable next : int;  (* index the next push writes to *)
  mutable count : int;  (* elements currently stored, <= capacity *)
  mutable dropped : int;  (* elements overwritten since create/clear *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; next = 0; count = 0; dropped = 0 }

let capacity t = Array.length t.buf
let length t = t.count
let dropped t = t.dropped

let push t x =
  t.buf.(t.next) <- Some x;
  t.next <- (t.next + 1) mod Array.length t.buf;
  if t.count < Array.length t.buf then t.count <- t.count + 1
  else t.dropped <- t.dropped + 1

let push_evict t x =
  let evicted =
    if t.count = Array.length t.buf then t.buf.(t.next) else None
  in
  push t x;
  evicted

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0;
  t.count <- 0;
  t.dropped <- 0

(* Oldest-first. *)
let iter t f =
  let cap = Array.length t.buf in
  let start = (t.next - t.count + cap) mod cap in
  for i = 0 to t.count - 1 do
    match t.buf.((start + i) mod cap) with
    | Some x -> f x
    | None -> ()
  done

let to_list t =
  let acc = ref [] in
  iter t (fun x -> acc := x :: !acc);
  List.rev !acc
