(** Adaptive per-kind trace sampling, applied at emit time (see
    {!Trace.set_sampling}).

    Deterministic and RNG-free. Sampleable kinds — the high-volume data
    path: [proposed], [accepted], [batch_flush], [send], [deliver] — keep
    their first [head] occurrences and then 1 in [rate]; message
    send/deliver pairs are decided by [send_id mod rate] instead, so a
    kept send always keeps its matching deliver and the causal DAG stays
    pairable. Faults, elections, reconfiguration milestones, drops and
    invariant inputs ([prepare], [accept], [decide], ...) are never
    sampled.

    The effective rates travel in the binary trace header (see
    {!to_meta} / {!rates_of_meta}), so the analyzer can scale-correct its
    counts. *)

type policy = { head : int; rate : int }
(** Keep the first [head] occurrences, then 1 in [rate].
    [rate = 1] keeps everything. *)

type t

val create : ?head:int -> rate:int -> unit -> t
(** Uniform policy over the sampleable kinds; [head] defaults to 1000.
    Raises [Invalid_argument] if [rate < 1]. *)

val of_policies : (string * policy) list -> t
(** Per kind-name policies (names as in {!Event.kind_name}); unlisted
    kinds are always kept. Raises [Invalid_argument] on an unknown name. *)

val keep : t -> Event.kind -> bool
(** Decide one event. Stateful (advances per-kind counters) but
    deterministic: the same event sequence always keeps the same subset. *)

val rates : t -> (string * int) list
(** Kinds actually sampled (rate > 1), in tag order. *)

val to_meta : t -> (string * string) list
(** {!rates} as trace-header metadata pairs ([("sample.<kind>", "<rate>")]). *)

val rates_of_meta : (string * string) list -> (string * int) list
(** Parse {!to_meta} pairs back out of a trace header. *)
