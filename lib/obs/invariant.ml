(* Trace-driven invariant checkers. They consume the event stream a run
   recorded (in timestamp order, as the sinks received it) and either pass or
   return the first violation. Tests assert them over scenario runs; `opx
   trace` reports them over whole replays. *)

type violation = { at : float; node : int; message : string }

let pp_violation ppf v =
  Format.fprintf ppf "t=%.3f node=%d: %s" v.at v.node v.message

let ballot_str (b : Event.ballot) =
  Printf.sprintf "(n=%d,prio=%d,pid=%d)" b.n b.prio b.pid

(* At most one server may act as leader (send Prepare or Accept) under any
   given ballot, and only the server the ballot belongs to. Two servers
   driving the same ballot is exactly the split-brain Sequence Paxos'
   SC-invariants rule out. *)
let single_leader_per_ballot events =
  let owners : (Event.ballot, int) Hashtbl.t = Hashtbl.create 64 in
  let check (e : Event.t) b =
    if b.Event.pid <> e.node then
      Some
        {
          at = e.time;
          node = e.node;
          message =
            Printf.sprintf
              "node %d acted as leader with ballot %s owned by node %d"
              e.node (ballot_str b) b.Event.pid;
        }
    else
      match Hashtbl.find_opt owners b with
      | Some owner when owner <> e.node ->
          Some
            {
              at = e.time;
              node = e.node;
              message =
                Printf.sprintf
                  "two leaders for ballot %s: nodes %d and %d" (ballot_str b)
                  owner e.node;
            }
      | Some _ -> None
      | None ->
          Hashtbl.add owners b e.node;
          None
  in
  let rec scan = function
    | [] -> Ok ()
    | (e : Event.t) :: rest -> (
        let b =
          match e.kind with
          | Event.Prepare_round { b; _ } | Event.Accept_sent { b; _ } ->
              Some b
          (* Event-stream filter: a new event kind cannot weaken this
             invariant, it is simply not leadership-relevant. *)
          | _ [@lint.allow "D4"] -> None
        in
        match b with
        | None -> scan rest
        | Some b -> ( match check e b with None -> scan rest | Some v -> Error v))
  in
  scan events

(* Each server's decided index never moves backwards. Stable storage keeps
   the decided prefix across crashes, so this holds across recoveries too. *)
let decided_prefix_monotonic events =
  let last : (int, float * int) Hashtbl.t = Hashtbl.create 16 in
  let rec scan = function
    | [] -> Ok ()
    | (e : Event.t) :: rest -> (
        match e.kind with
        | Event.Decided { decided_idx; _ } -> (
            match Hashtbl.find_opt last e.node with
            | Some (at, prev) when decided_idx < prev ->
                Error
                  {
                    at = e.time;
                    node = e.node;
                    message =
                      Printf.sprintf
                        "decided index went backwards: %d (t=%.3f) -> %d"
                        prev at decided_idx;
                  }
            | _ ->
                Hashtbl.replace last e.node (e.time, decided_idx);
                scan rest)
        (* Event-stream filter: only [Decided] moves the decided index. *)
        | _ [@lint.allow "D4"] -> scan rest)
  in
  scan events

let all =
  [
    ("single-leader-per-ballot", single_leader_per_ballot);
    ("decided-prefix-monotonic", decided_prefix_monotonic);
  ]

let check_all events = List.map (fun (name, f) -> (name, f events)) all
