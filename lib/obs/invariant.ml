(* Trace-driven invariant checkers. They consume the event stream a run
   recorded (in timestamp order, as the sinks received it) and either pass or
   return the first violation. Tests assert them over scenario runs; `opx
   trace` reports them over whole replays. Each checker is a per-event core
   over small mutable state, so the batch functions and the streaming
   {!Monitor} share one implementation (and produce identical messages). *)

type violation = { at : float; node : int; message : string }

let pp_violation ppf v =
  Format.fprintf ppf "t=%.3f node=%d: %s" v.at v.node v.message

let ballot_str (b : Event.ballot) =
  Printf.sprintf "(n=%d,prio=%d,pid=%d)" b.n b.prio b.pid

(* At most one server may act as leader (send Prepare or Accept) under any
   given ballot, and only the server the ballot belongs to. Two servers
   driving the same ballot is exactly the split-brain Sequence Paxos'
   SC-invariants rule out. *)
let check_ballot owners (e : Event.t) (b : Event.ballot) =
  if b.Event.pid <> e.node then
    Some
      {
        at = e.time;
        node = e.node;
        message =
          Printf.sprintf
            "node %d acted as leader with ballot %s owned by node %d" e.node
            (ballot_str b) b.Event.pid;
      }
  else
    match Hashtbl.find_opt owners b with
    | Some owner when owner <> e.node ->
        Some
          {
            at = e.time;
            node = e.node;
            message =
              Printf.sprintf "two leaders for ballot %s: nodes %d and %d"
                (ballot_str b) owner e.node;
          }
    | Some _ -> None
    | None ->
        Hashtbl.add owners b e.node;
        None

let leader_check owners (e : Event.t) =
  match e.kind with
  | Event.Prepare_round { b; _ } | Event.Accept_sent { b; _ } ->
      check_ballot owners e b
  (* Event-stream filter: a new event kind cannot weaken this invariant, it
     is simply not leadership-relevant. *)
  | _ [@lint.allow "D4"] -> None

let single_leader_per_ballot events =
  let owners : (Event.ballot, int) Hashtbl.t = Hashtbl.create 64 in
  let rec scan = function
    | [] -> Ok ()
    | e :: rest -> (
        match leader_check owners e with
        | None -> scan rest
        | Some v -> Error v)
  in
  scan events

(* Each server's decided index never moves backwards. Stable storage keeps
   the decided prefix across crashes, so this holds across recoveries too. *)
let decided_check last (e : Event.t) =
  match e.kind with
  | Event.Decided { decided_idx; _ } -> (
      match Hashtbl.find_opt last e.node with
      | Some (at, prev) when decided_idx < prev ->
          Some
            {
              at = e.time;
              node = e.node;
              message =
                Printf.sprintf
                  "decided index went backwards: %d (t=%.3f) -> %d" prev at
                  decided_idx;
            }
      | _ ->
          Hashtbl.replace last e.node (e.time, decided_idx);
          None)
  (* Event-stream filter: only [Decided] moves the decided index. *)
  | _ [@lint.allow "D4"] -> None

let decided_prefix_monotonic events =
  let last : (int, float * int) Hashtbl.t = Hashtbl.create 16 in
  let rec scan = function
    | [] -> Ok ()
    | e :: rest -> (
        match decided_check last e with
        | None -> scan rest
        | Some v -> Error v)
  in
  scan events

let all =
  [
    ("single-leader-per-ballot", single_leader_per_ballot);
    ("decided-prefix-monotonic", decided_prefix_monotonic);
  ]

let check_all events = List.map (fun (name, f) -> (name, f events)) all

(* Streaming form: feed events one at a time; each invariant latches its
   first violation (matching the batch functions' early return — state stops
   updating once latched). Memory is O(distinct ballots + nodes). *)
module Monitor = struct
  type t = {
    owners : (Event.ballot, int) Hashtbl.t;
    last : (int, float * int) Hashtbl.t;
    mutable leader_err : violation option;
    mutable decided_err : violation option;
  }

  let create () =
    {
      owners = Hashtbl.create 64;
      last = Hashtbl.create 16;
      leader_err = None;
      decided_err = None;
    }

  let observe t e =
    if Option.is_none t.leader_err then t.leader_err <- leader_check t.owners e;
    if Option.is_none t.decided_err then
      t.decided_err <- decided_check t.last e

  let to_result = function None -> Ok () | Some v -> Error v

  let results t =
    [
      ("single-leader-per-ballot", to_result t.leader_err);
      ("decided-prefix-monotonic", to_result t.decided_err);
    ]
end
