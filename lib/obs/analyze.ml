(* Deterministic trace analyzer. Consumes a recorded event stream
   (in-memory ring, trace file or stdin) and produces a report: per-node
   leader timelines, stall windows, commit-latency percentiles with the span
   phase breakdown, causal-DAG statistics, the causal critical path of the
   slowest decided entries, health alerts/recovery episodes and invariant
   results.

   The analysis itself is a single incremental fold with bounded state
   ({!Stream}): spans are finalised as the decided watermark passes them,
   causal pairing keeps only open sends, critical paths come from a bounded
   window of recent events, and past [exact_limit] commit latencies the
   percentiles switch to a log-bucket sketch. [run] is that same fold with
   the bounds lifted, so it still renders byte-identical reports to the
   historical whole-list implementation — two runs over the same trace
   render byte-identical reports (wired into the determinism gate), so
   reports can be diffed and regression-gated. *)

module J = Bench_report.Json

type stall = { stall_from : float; stall_until : float option }

type commit_stats = {
  spans_total : int;
  spans_decided : int;
  p50 : float;
  p90 : float;
  p99 : float;
  max_ms : float;
  mean_queueing : float;
  mean_replication : float;
  mean_commit : float;
}

type hop = { hop_time : float; hop_node : int; hop_desc : string }

type path = {
  path_log_idx : int;
  path_total_ms : float;
  path_hops : hop list;
}

type report = {
  n : int;
  events : int;
  ring_dropped : int;
  ring_dropped_by_kind : (string * int) list;
  sampling : (string * int) list;
  t_start : float;
  t_end : float;
  by_kind : (string * int) list;
  drops_by_reason : (string * int) list;
  leader_timeline : (int * (float * Event.ballot) list) list;
  stall_ms : float;
  stalls : stall list;
  commit : commit_stats option;
  causal_edges : int;
  unmatched_sends : int;
  orphan_delivers : int;
  lamport : (unit, string) result;
  critical_paths : path list;
  health_alerts : Health.alert list;
  recoveries : Health.recovery list;
  invariants : (string * (unit, Invariant.violation) result) list;
}

let count_by tbl key =
  let prev = Option.value (Hashtbl.find_opt tbl key) ~default:0 in
  Hashtbl.replace tbl key (prev + 1)

(* Exact percentile over a sorted array: the smallest element covering
   fraction [p] of the population. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.round (p *. float_of_int n +. 0.5)) - 1 in
    sorted.(min (n - 1) (max 0 rank))

let hop_desc (e : Event.t) =
  match e.kind with
  | Event.Proposed { log_idx; cmd_id } ->
      Some (Printf.sprintf "proposed idx=%d cmd=%d" log_idx cmd_id)
  | Event.Batch_flush { entries; trigger; _ } ->
      Some (Printf.sprintf "batch_flush entries=%d trigger=%s" entries trigger)
  | Event.Accept_sent { start_idx; count; _ } ->
      Some (Printf.sprintf "accept start=%d count=%d" start_idx count)
  | Event.Msg_send { dst; send_id; _ } ->
      Some (Printf.sprintf "send #%d -> %d" send_id dst)
  | Event.Msg_deliver { src; send_id; _ } ->
      Some (Printf.sprintf "deliver #%d <- %d" send_id src)
  | Event.Accepted_idx { log_idx; _ } ->
      Some (Printf.sprintf "accepted idx=%d" log_idx)
  | Event.Decided { decided_idx; _ } ->
      Some (Printf.sprintf "decide idx=%d" decided_idx)
  | Event.Prepare_round _ -> Some "prepare"
  | Event.Promise_sent _ -> Some "promise"
  (* Other kinds are not part of the commit pipeline; elide them from the
     rendered path. *)
  | _ [@lint.allow "D4"] -> None

(* The causal chain that gated the decision of entry [log_idx]: back-walk
   from the first Decided event past its index, stopping at its Proposed
   event. Only pipeline-relevant hops are rendered, capped to the last
   [max_hops]. *)
let critical_path_of ~max_hops events_arr ~log_idx ~total =
  let n = Array.length events_arr in
  let target = ref (-1) in
  (let i = ref 0 in
   while !target < 0 && !i < n do
     (match events_arr.(!i).Event.kind with
     | Event.Decided { decided_idx; _ } when decided_idx > log_idx ->
         target := !i
     (* Scanning for the decide that covered this entry. *)
     | _ [@lint.allow "D4"] -> ());
     incr i
   done);
  if !target < 0 then None
  else begin
    let stop (e : Event.t) =
      match e.kind with
      | Event.Proposed { log_idx = li; _ } -> li = log_idx
      (* Keep walking until the proposal that started the span. *)
      | _ [@lint.allow "D4"] -> false
    in
    let idxs = Causal.critical_path events_arr ~target:!target ~stop in
    let hops =
      List.filter_map
        (fun i ->
          let e = events_arr.(i) in
          Option.map
            (fun desc ->
              {
                hop_time = e.Event.time;
                hop_node = e.Event.node;
                hop_desc = desc;
              })
            (hop_desc e))
        idxs
    in
    let len = List.length hops in
    let hops =
      if len <= max_hops then hops
      else List.filteri (fun i _ -> i >= len - max_hops) hops
    in
    Some { path_log_idx = log_idx; path_total_ms = total; path_hops = hops }
  end

(* ------------------------------------------------------------------ *)
(* Streaming analyzer                                                  *)
(* ------------------------------------------------------------------ *)

module Stream = struct
  type t = {
    health_cfg : Health.config;
    quorum_fixed : int option;  (* Some q when the cluster size is known *)
    exact_limit : int;
    (* running basics *)
    mutable seen : int;
    mutable max_node : int;
    mutable t_start : float option;
    mutable t_end : float;
    kinds : (string, int) Hashtbl.t;
    drop_reasons : (string, int) Hashtbl.t;
    timeline : (int, (float * Event.ballot) list) Hashtbl.t;
    (* stall windows, emitted as the decided watermark advances *)
    mutable decided_max : int;
    mutable last_advance : float;
    mutable stalls_rev : stall list;
    (* commit-latency spans *)
    tracker : Span.Tracker.t;
    mutable exact_totals : float list;  (* newest-first, <= exact_limit *)
    mutable exact_kept : int;
    sketch : Metric.Histogram.t;
    mutable n_decided : int;
    mutable max_total : float;
    mutable sum_queueing : float;
    mutable sum_replication : float;
    mutable sum_commit : float;
    mutable n_queueing : int;
    mutable n_replication : int;
    mutable n_commit : int;
    mutable top : (float * int) list;  (* slowest 3: (total, idx) *)
    (* causal structure *)
    pairing : Causal.Pairing.t;
    clocks : Causal.Clock_check.t;
    recent : Event.t Ring.t;  (* critical-path window *)
    (* detectors *)
    health : Health.t;
    invariants : Invariant.Monitor.t;
  }

  let create ?health ?n_hint ?(window = 65_536) ?(exact_limit = 65_536)
      ?(causal_cap = 262_144) () =
    (* Without a known cluster size (single-pass stdin), the health suspect
       matrix is sized for up to 64 nodes; with [n_hint] (file and in-memory
       paths) it is exact. *)
    let n_for_health = Option.value n_hint ~default:64 in
    let health_cfg =
      match health with
      | Some c ->
          if c.Health.n >= n_for_health then c
          else { c with Health.n = n_for_health }
      | None -> Health.default_config ~n:n_for_health ~election_timeout_ms:50.0
    in
    {
      health_cfg;
      quorum_fixed = Option.map (fun n -> (n / 2) + 1) n_hint;
      exact_limit;
      seen = 0;
      max_node = 0;
      t_start = None;
      t_end = 0.0;
      kinds = Hashtbl.create 32;
      drop_reasons = Hashtbl.create 8;
      timeline = Hashtbl.create 8;
      decided_max = 0;
      last_advance = 0.0;
      stalls_rev = [];
      tracker = Span.Tracker.create ();
      exact_totals = [];
      exact_kept = 0;
      sketch = Metric.Histogram.create ();
      n_decided = 0;
      max_total = neg_infinity;
      sum_queueing = 0.0;
      sum_replication = 0.0;
      sum_commit = 0.0;
      n_queueing = 0;
      n_replication = 0;
      n_commit = 0;
      top = [];
      pairing = Causal.Pairing.create ~cap:causal_cap ();
      clocks = Causal.Clock_check.create ~cap:causal_cap ();
      recent = Ring.create ~capacity:(max 1 window);
      health = Health.create health_cfg;
      invariants = Invariant.Monitor.create ();
    }

  let top_cmp (ta, ia) (tb, ib) =
    match Float.compare tb ta with 0 -> Int.compare ia ib | c -> c

  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest

  let note_decided s (c : Span.Tracker.closed) =
    s.n_decided <- s.n_decided + 1;
    let total = c.Span.Tracker.c_total in
    if s.exact_kept < s.exact_limit then begin
      s.exact_totals <- total :: s.exact_totals;
      s.exact_kept <- s.exact_kept + 1
    end;
    Metric.Histogram.observe s.sketch total;
    if total > s.max_total then s.max_total <- total;
    (match c.Span.Tracker.c_queueing with
    | Some v ->
        s.sum_queueing <- s.sum_queueing +. v;
        s.n_queueing <- s.n_queueing + 1
    | None -> ());
    (match c.Span.Tracker.c_replication with
    | Some v ->
        s.sum_replication <- s.sum_replication +. v;
        s.n_replication <- s.n_replication + 1
    | None -> ());
    (match c.Span.Tracker.c_commit with
    | Some v ->
        s.sum_commit <- s.sum_commit +. v;
        s.n_commit <- s.n_commit + 1
    | None -> ());
    s.top <-
      take 3
        (List.sort top_cmp ((total, c.Span.Tracker.c_log_idx) :: s.top))

  let observe s (e : Event.t) =
    s.seen <- s.seen + 1;
    if e.node > s.max_node then s.max_node <- e.node;
    (match s.t_start with
    | None ->
        s.t_start <- Some e.time;
        s.t_end <- e.time;
        s.last_advance <- e.time
    | Some _ -> s.t_end <- Float.max s.t_end e.time);
    count_by s.kinds (Event.kind_name e.kind);
    (match e.kind with
    | Event.Msg_drop { reason; _ } -> count_by s.drop_reasons reason
    | Event.Leader_elected b | Event.Leader_changed b ->
        let prev =
          Option.value (Hashtbl.find_opt s.timeline e.node) ~default:[]
        in
        Hashtbl.replace s.timeline e.node ((e.time, b) :: prev)
    (* Counted above; no dedicated aggregation. *)
    | _ [@lint.allow "D4"] -> ());
    (match e.kind with
    | Event.Decided { decided_idx; _ } ->
        if decided_idx > s.decided_max then begin
          s.decided_max <- decided_idx;
          if e.time -. s.last_advance > s.health_cfg.Health.stall_ms then
            s.stalls_rev <-
              { stall_from = s.last_advance; stall_until = Some e.time }
              :: s.stalls_rev;
          s.last_advance <- e.time
        end
    (* Event-stream filter: only decides advance the index. *)
    | _ [@lint.allow "D4"] -> ());
    let quorum =
      match s.quorum_fixed with
      | Some q -> q
      | None -> ((1 + s.max_node) / 2) + 1
    in
    List.iter (note_decided s) (Span.Tracker.observe s.tracker ~quorum e);
    Causal.Pairing.observe s.pairing e;
    Causal.Clock_check.observe s.clocks e;
    Ring.push s.recent e;
    Health.observe s.health e;
    Invariant.Monitor.observe s.invariants e

  let commit_of s =
    if s.n_decided = 0 then None
    else begin
      let p50, p90, p99 =
        if s.n_decided <= s.exact_kept then begin
          let totals = Array.of_list s.exact_totals in
          Array.sort Float.compare totals;
          (percentile totals 0.50, percentile totals 0.90,
           percentile totals 0.99)
        end
        else
          (* Past the exact store: log-bucket sketch percentiles (the mean
             phase breakdown and the max stay exact). *)
          ( Metric.Histogram.percentile s.sketch ~p:50.0,
            Metric.Histogram.percentile s.sketch ~p:90.0,
            Metric.Histogram.percentile s.sketch ~p:99.0 )
      in
      let mean sum = function 0 -> 0.0 | n -> sum /. float_of_int n in
      Some
        {
          spans_total = Span.Tracker.total_spans s.tracker;
          spans_decided = s.n_decided;
          p50;
          p90;
          p99;
          max_ms = s.max_total;
          mean_queueing = mean s.sum_queueing s.n_queueing;
          mean_replication = mean s.sum_replication s.n_replication;
          mean_commit = mean s.sum_commit s.n_commit;
        }
    end

  let finish ?(ring_dropped = 0) ?(ring_dropped_by_kind = []) ?(sampling = [])
      s =
    let t_start = Option.value s.t_start ~default:0.0 in
    let t_end = match s.t_start with None -> 0.0 | Some _ -> s.t_end in
    let stalls =
      List.rev
        (if t_end -. s.last_advance > s.health_cfg.Health.stall_ms then
           { stall_from = s.last_advance; stall_until = None }
           :: s.stalls_rev
         else s.stalls_rev)
    in
    let events_arr = Array.of_list (Ring.to_list s.recent) in
    let critical_paths =
      List.filter_map
        (fun (total, log_idx) ->
          critical_path_of ~max_hops:16 events_arr ~log_idx ~total)
        s.top
    in
    {
      n = 1 + s.max_node;
      events = s.seen;
      ring_dropped;
      ring_dropped_by_kind;
      sampling;
      t_start;
      t_end;
      by_kind =
        Replog.Det.sorted_bindings ~compare_key:String.compare s.kinds;
      drops_by_reason =
        Replog.Det.sorted_bindings ~compare_key:String.compare s.drop_reasons;
      leader_timeline =
        List.map
          (fun (node, l) -> (node, List.rev l))
          (Replog.Det.sorted_bindings ~compare_key:Int.compare s.timeline);
      stall_ms = s.health_cfg.Health.stall_ms;
      stalls;
      commit = commit_of s;
      causal_edges = Causal.Pairing.edges s.pairing;
      unmatched_sends = Causal.Pairing.unmatched_sends s.pairing;
      orphan_delivers = Causal.Pairing.orphan_delivers s.pairing;
      lamport = Causal.Clock_check.result s.clocks;
      critical_paths;
      health_alerts = Health.alerts s.health;
      recoveries = Health.recoveries s.health;
      invariants = Invariant.Monitor.results s.invariants;
    }
end

let run ?health ?(ring_dropped = 0) ?(ring_dropped_by_kind = [])
    ?(sampling = []) events =
  let n =
    1 + List.fold_left (fun acc (e : Event.t) -> max acc e.node) 0 events
  in
  (* The bounds lifted: whole-trace critical-path window, exact percentiles,
     uncapped causal tables — the report equals the historical whole-list
     analyzer's byte for byte. *)
  let s =
    Stream.create ?health ~n_hint:n
      ~window:(max 1 (List.length events))
      ~exact_limit:max_int ~causal_cap:max_int ()
  in
  List.iter (Stream.observe s) events;
  Stream.finish ~ring_dropped ~ring_dropped_by_kind ~sampling s

let prefix_error file = Result.map_error (Printf.sprintf "%s:%s" file)

let with_source file f =
  match open_in_bin file with
  | exception Sys_error msg -> Error (`Open msg)
  | ic ->
      let r =
        match f (Tracebin.of_channel ic) with
        | v -> Result.map_error (fun m -> `Parse m) v
        | exception Tracebin.Decode_error msg -> Error (`Parse msg)
      in
      close_in_noerr ic;
      r

let of_file ?health file =
  (* Two passes: the first infers the cluster size (and pulls the sampling
     rates out of a binary header) so quorum and the health suspect matrix
     are exact; the second streams the events through the analyzer. Memory
     stays bounded on both. *)
  let pass1 =
    with_source file (fun src ->
        let n_max = ref 0 in
        match
          Tracebin.iter src (fun e ->
              if e.Event.node > !n_max then n_max := e.Event.node)
        with
        | Ok () -> Ok (1 + !n_max, Tracebin.meta src)
        | Error msg -> Error msg)
  in
  match pass1 with
  | Error (`Open msg) -> Error msg
  | Error (`Parse msg) -> prefix_error file (Error msg)
  | Ok (n, meta) -> (
      let pass2 =
        with_source file (fun src ->
            let s = Stream.create ?health ~n_hint:n () in
            match Tracebin.iter src (Stream.observe s) with
            | Ok () ->
                Ok
                  (Stream.finish ~sampling:(Sampling.rates_of_meta meta) s)
            | Error msg -> Error msg)
      in
      match pass2 with
      | Error (`Open msg) -> Error msg
      | Error (`Parse msg) -> prefix_error file (Error msg)
      | Ok report -> Ok report)

let of_channel ?health ic =
  match
    let src = Tracebin.of_channel ic in
    let s = Stream.create ?health () in
    match Tracebin.iter src (Stream.observe s) with
    | Ok () ->
        Ok
          (Stream.finish
             ~sampling:(Sampling.rates_of_meta (Tracebin.meta src))
             s)
    | Error msg -> Error msg
  with
  | v -> v
  | exception Tracebin.Decode_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_ms ppf v = Format.fprintf ppf "%.3f" v

let pp ppf r =
  let line fmt = Format.fprintf ppf fmt in
  line "== trace analysis ==@.";
  line "nodes      : %d@." r.n;
  line "events     : %d (ring-dropped %d)@." r.events r.ring_dropped;
  line "time range : %a .. %a ms@." pp_ms r.t_start pp_ms r.t_end;
  if not (List.is_empty r.sampling) then begin
    line "@.-- sampling (emit-time, kept 1 in k) --@.";
    List.iter (fun (k, rate) -> line "  %-16s 1/%d@." k rate) r.sampling;
    line "  counts below are post-sampling for these kinds@."
  end;
  line "@.-- events by kind --@.";
  List.iter (fun (k, c) -> line "  %-16s %d@." k c) r.by_kind;
  if not (List.is_empty r.ring_dropped_by_kind) then begin
    line "@.-- ring drops by kind --@.";
    List.iter (fun (k, c) -> line "  %-16s %d@." k c) r.ring_dropped_by_kind
  end;
  if not (List.is_empty r.drops_by_reason) then begin
    line "@.-- drops by reason --@.";
    List.iter (fun (k, c) -> line "  %-16s %d@." k c) r.drops_by_reason
  end;
  line "@.-- leader timeline --@.";
  if List.is_empty r.leader_timeline then line "  (no leader events)@.";
  List.iter
    (fun (node, changes) ->
      line "  node %d:" node;
      List.iter
        (fun (t, b) -> line " t=%a %a" pp_ms t Event.pp_ballot b)
        changes;
      line "@.")
    r.leader_timeline;
  line "@.-- stall windows (decide gap > %a ms) --@." pp_ms r.stall_ms;
  if List.is_empty r.stalls then line "  (none)@.";
  List.iter
    (fun s ->
      match s.stall_until with
      | Some u ->
          line "  %a .. %a (%a ms)@." pp_ms s.stall_from pp_ms u pp_ms
            (u -. s.stall_from)
      | None -> line "  %a .. end of trace@." pp_ms s.stall_from)
    r.stalls;
  line "@.-- commit latency --@.";
  (match r.commit with
  | None -> line "  (no decided spans)@."
  | Some c ->
      line "  spans: %d decided of %d proposed@." c.spans_decided
        c.spans_total;
      line "  p50 %a ms, p90 %a ms, p99 %a ms, max %a ms@." pp_ms c.p50
        pp_ms c.p90 pp_ms c.p99 pp_ms c.max_ms;
      line
        "  phase means: queueing %a ms, replication %a ms, commit %a ms@."
        pp_ms c.mean_queueing pp_ms c.mean_replication pp_ms c.mean_commit);
  line "@.-- causal DAG --@.";
  line "  edges %d, unmatched sends %d, orphan delivers %d@." r.causal_edges
    r.unmatched_sends r.orphan_delivers;
  (match r.lamport with
  | Ok () -> line "  lamport clocks: consistent@."
  | Error msg -> line "  lamport clocks: VIOLATION (%s)@." msg);
  line "@.-- critical paths (slowest decided entries) --@.";
  if List.is_empty r.critical_paths then line "  (none)@.";
  List.iter
    (fun p ->
      line "  log_idx %d (total %a ms):@." p.path_log_idx pp_ms
        p.path_total_ms;
      List.iter
        (fun h ->
          line "    t=%a node %d %s@." pp_ms h.hop_time h.hop_node h.hop_desc)
        p.path_hops)
    r.critical_paths;
  line "@.-- health --@.";
  if List.is_empty r.health_alerts then line "  (no alerts)@.";
  List.iter
    (fun (a : Health.alert) ->
      line "  t=%a %s %s@." pp_ms a.Health.at
        (match a.Health.edge with
        | Health.Trigger -> "TRIGGER"
        | Health.Clear -> "CLEAR")
        a.Health.what)
    r.health_alerts;
  line "  recoveries:@.";
  if List.is_empty r.recoveries then line "    (none)@.";
  List.iter
    (fun (rc : Health.recovery) ->
      line "    fault %s at %a (%d fault events): detect %s, decide %s@."
        rc.Health.fault pp_ms rc.Health.fault_at rc.Health.faults
        (match Health.detect_latency rc with
        | Some d -> Printf.sprintf "+%.3f ms" d
        | None -> "-")
        (match Health.recovery_latency rc with
        | Some d -> Printf.sprintf "+%.3f ms" d
        | None -> "never"))
    r.recoveries;
  line "@.-- invariants --@.";
  List.iter
    (fun (name, result) ->
      match result with
      | Ok () -> line "  %s: ok@." name
      | Error v ->
          line "  %s: VIOLATION %a@." name Invariant.pp_violation v)
    r.invariants

let to_string r = Format.asprintf "%a" pp r

let json_ballot (b : Event.ballot) =
  J.Obj [ ("n", J.Int b.n); ("prio", J.Int b.prio); ("pid", J.Int b.pid) ]

let json_opt f = function Some v -> f v | None -> J.Null

let to_json r =
  J.Obj
    [
      ("schema_version", J.Int 2);
      ("n", J.Int r.n);
      ("events", J.Int r.events);
      ("ring_dropped", J.Int r.ring_dropped);
      ( "ring_dropped_by_kind",
        J.Obj
          (List.map (fun (k, c) -> (k, J.Int c)) r.ring_dropped_by_kind) );
      ( "sampling",
        J.Obj (List.map (fun (k, rate) -> (k, J.Int rate)) r.sampling) );
      ("t_start_ms", J.float r.t_start);
      ("t_end_ms", J.float r.t_end);
      ( "by_kind",
        J.Obj (List.map (fun (k, c) -> (k, J.Int c)) r.by_kind) );
      ( "drops_by_reason",
        J.Obj (List.map (fun (k, c) -> (k, J.Int c)) r.drops_by_reason) );
      ( "leader_timeline",
        J.List
          (List.map
             (fun (node, changes) ->
               J.Obj
                 [
                   ("node", J.Int node);
                   ( "changes",
                     J.List
                       (List.map
                          (fun (t, b) ->
                            J.Obj
                              [
                                ("t_ms", J.float t);
                                ("ballot", json_ballot b);
                              ])
                          changes) );
                 ])
             r.leader_timeline) );
      ("stall_threshold_ms", J.float r.stall_ms);
      ( "stalls",
        J.List
          (List.map
             (fun s ->
               J.Obj
                 [
                   ("from_ms", J.float s.stall_from);
                   ("until_ms", json_opt J.float s.stall_until);
                 ])
             r.stalls) );
      ( "commit",
        json_opt
          (fun c ->
            J.Obj
              [
                ("spans_total", J.Int c.spans_total);
                ("spans_decided", J.Int c.spans_decided);
                ("p50_ms", J.float c.p50);
                ("p90_ms", J.float c.p90);
                ("p99_ms", J.float c.p99);
                ("max_ms", J.float c.max_ms);
                ("mean_queueing_ms", J.float c.mean_queueing);
                ("mean_replication_ms", J.float c.mean_replication);
                ("mean_commit_ms", J.float c.mean_commit);
              ])
          r.commit );
      ( "causal",
        J.Obj
          [
            ("edges", J.Int r.causal_edges);
            ("unmatched_sends", J.Int r.unmatched_sends);
            ("orphan_delivers", J.Int r.orphan_delivers);
            ( "lamport_consistent",
              J.Bool (match r.lamport with Ok () -> true | Error _ -> false)
            );
          ] );
      ( "critical_paths",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 [
                   ("log_idx", J.Int p.path_log_idx);
                   ("total_ms", J.float p.path_total_ms);
                   ( "hops",
                     J.List
                       (List.map
                          (fun h ->
                            J.Obj
                              [
                                ("t_ms", J.float h.hop_time);
                                ("node", J.Int h.hop_node);
                                ("desc", J.String h.hop_desc);
                              ])
                          p.path_hops) );
                 ])
             r.critical_paths) );
      ( "health_alerts",
        J.List
          (List.map
             (fun (a : Health.alert) ->
               J.Obj
                 [
                   ("t_ms", J.float a.Health.at);
                   ( "edge",
                     J.String
                       (match a.Health.edge with
                       | Health.Trigger -> "trigger"
                       | Health.Clear -> "clear") );
                   ("what", J.String a.Health.what);
                 ])
             r.health_alerts) );
      ( "recoveries",
        J.List
          (List.map
             (fun (rc : Health.recovery) ->
               J.Obj
                 [
                   ("fault", J.String rc.Health.fault);
                   ("fault_at_ms", J.float rc.Health.fault_at);
                   ("fault_events", J.Int rc.Health.faults);
                   ( "detect_ms",
                     json_opt J.float (Health.detect_latency rc) );
                   ( "recover_ms",
                     json_opt J.float (Health.recovery_latency rc) );
                 ])
             r.recoveries) );
      ( "invariants",
        J.Obj
          (List.map
             (fun (name, result) ->
               ( name,
                 J.Bool (match result with Ok () -> true | Error _ -> false)
               ))
             r.invariants) );
    ]
