(* Deterministic offline trace analyzer. Consumes a recorded event stream
   (in-memory ring or JSONL file) and produces a report: per-node leader
   timelines, stall windows, commit-latency percentiles with the span phase
   breakdown, causal-DAG statistics, the causal critical path of the slowest
   decided entries, health alerts/recovery episodes and invariant results.

   Everything is a pure function of the input events — two runs over the
   same trace render byte-identical reports (wired into the determinism
   gate), so reports can be diffed and regression-gated. *)

module J = Bench_report.Json

type stall = { stall_from : float; stall_until : float option }

type commit_stats = {
  spans_total : int;
  spans_decided : int;
  p50 : float;
  p90 : float;
  p99 : float;
  max_ms : float;
  mean_queueing : float;
  mean_replication : float;
  mean_commit : float;
}

type hop = { hop_time : float; hop_node : int; hop_desc : string }

type path = {
  path_log_idx : int;
  path_total_ms : float;
  path_hops : hop list;
}

type report = {
  n : int;
  events : int;
  ring_dropped : int;
  t_start : float;
  t_end : float;
  by_kind : (string * int) list;
  drops_by_reason : (string * int) list;
  leader_timeline : (int * (float * Event.ballot) list) list;
  stall_ms : float;
  stalls : stall list;
  commit : commit_stats option;
  causal_edges : int;
  unmatched_sends : int;
  orphan_delivers : int;
  lamport : (unit, string) result;
  critical_paths : path list;
  health_alerts : Health.alert list;
  recoveries : Health.recovery list;
  invariants : (string * (unit, Invariant.violation) result) list;
}

let count_by tbl key =
  let prev = Option.value (Hashtbl.find_opt tbl key) ~default:0 in
  Hashtbl.replace tbl key (prev + 1)

(* Exact percentile over a sorted array: the smallest element covering
   fraction [p] of the population. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.round (p *. float_of_int n +. 0.5)) - 1 in
    sorted.(min (n - 1) (max 0 rank))

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let commit_stats spans =
  let decided =
    List.filter_map
      (fun s -> Option.map (fun t -> (s, t)) (Span.total s))
      spans
  in
  if List.is_empty decided then None
  else begin
    let totals = Array.of_list (List.map snd decided) in
    Array.sort Float.compare totals;
    Some
      {
        spans_total = List.length spans;
        spans_decided = List.length decided;
        p50 = percentile totals 0.50;
        p90 = percentile totals 0.90;
        p99 = percentile totals 0.99;
        max_ms = totals.(Array.length totals - 1);
        mean_queueing =
          mean (List.filter_map (fun (s, _) -> Span.queueing s) decided);
        mean_replication =
          mean (List.filter_map (fun (s, _) -> Span.replication s) decided);
        mean_commit =
          mean (List.filter_map (fun (s, _) -> Span.commit s) decided);
      }
  end

(* Stall windows: gaps between successive advances of the cluster-wide
   decided index (bounded by the trace ends) longer than [stall_ms]. *)
let stall_windows ~stall_ms ~t_start ~t_end events =
  let advances = ref [] in
  let decided_max = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Decided { decided_idx; _ } ->
          if decided_idx > !decided_max then begin
            decided_max := decided_idx;
            advances := e.time :: !advances
          end
      (* Event-stream filter: only decides advance the index. *)
      | _ [@lint.allow "D4"] -> ())
    events;
  let advances = List.rev !advances in
  let rec windows last = function
    | [] ->
        if t_end -. last > stall_ms then
          [ { stall_from = last; stall_until = None } ]
        else []
    | t :: rest ->
        if t -. last > stall_ms then
          { stall_from = last; stall_until = Some t } :: windows t rest
        else windows t rest
  in
  windows t_start advances

let hop_desc (e : Event.t) =
  match e.kind with
  | Event.Proposed { log_idx; cmd_id } ->
      Some (Printf.sprintf "proposed idx=%d cmd=%d" log_idx cmd_id)
  | Event.Batch_flush { entries; trigger; _ } ->
      Some (Printf.sprintf "batch_flush entries=%d trigger=%s" entries trigger)
  | Event.Accept_sent { start_idx; count; _ } ->
      Some (Printf.sprintf "accept start=%d count=%d" start_idx count)
  | Event.Msg_send { dst; send_id; _ } ->
      Some (Printf.sprintf "send #%d -> %d" send_id dst)
  | Event.Msg_deliver { src; send_id; _ } ->
      Some (Printf.sprintf "deliver #%d <- %d" send_id src)
  | Event.Accepted_idx { log_idx; _ } ->
      Some (Printf.sprintf "accepted idx=%d" log_idx)
  | Event.Decided { decided_idx; _ } ->
      Some (Printf.sprintf "decide idx=%d" decided_idx)
  | Event.Prepare_round _ -> Some "prepare"
  | Event.Promise_sent _ -> Some "promise"
  (* Other kinds are not part of the commit pipeline; elide them from the
     rendered path. *)
  | _ [@lint.allow "D4"] -> None

(* The causal chain that gated the decision of [span]: back-walk from the
   first Decided event past its index, stopping at its Proposed event. Only
   pipeline-relevant hops are rendered, capped to the last [max_hops]. *)
let critical_path_of ~max_hops events_arr (span : Span.t) total =
  let n = Array.length events_arr in
  let target = ref (-1) in
  (let i = ref 0 in
   while !target < 0 && !i < n do
     (match events_arr.(!i).Event.kind with
     | Event.Decided { decided_idx; _ } when decided_idx > span.Span.log_idx
       ->
         target := !i
     (* Scanning for the decide that covered this entry. *)
     | _ [@lint.allow "D4"] -> ());
     incr i
   done);
  if !target < 0 then None
  else begin
    let stop (e : Event.t) =
      match e.kind with
      | Event.Proposed { log_idx; _ } -> log_idx = span.Span.log_idx
      (* Keep walking until the proposal that started the span. *)
      | _ [@lint.allow "D4"] -> false
    in
    let idxs = Causal.critical_path events_arr ~target:!target ~stop in
    let hops =
      List.filter_map
        (fun i ->
          let e = events_arr.(i) in
          Option.map
            (fun desc ->
              { hop_time = e.Event.time; hop_node = e.Event.node; hop_desc = desc })
            (hop_desc e))
        idxs
    in
    let len = List.length hops in
    let hops =
      if len <= max_hops then hops
      else List.filteri (fun i _ -> i >= len - max_hops) hops
    in
    Some
      {
        path_log_idx = span.Span.log_idx;
        path_total_ms = total;
        path_hops = hops;
      }
  end

let run ?health ?(ring_dropped = 0) events =
  let n =
    1 + List.fold_left (fun acc (e : Event.t) -> max acc e.node) 0 events
  in
  let health_cfg =
    match health with
    (* Callers that only know the trace file (not the cluster) pass a config
       with a placeholder [n]; grow it to the inferred size so the
       partition-suspect matrix covers every node. *)
    | Some c -> if c.Health.n >= n then c else { c with Health.n }
    | None -> Health.default_config ~n ~election_timeout_ms:50.0
  in
  let t_start =
    match events with [] -> 0.0 | e :: _ -> e.Event.time
  in
  let t_end =
    List.fold_left (fun acc (e : Event.t) -> Float.max acc e.time) t_start
      events
  in
  let kinds : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let drop_reasons : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let timeline : (int, (float * Event.ballot) list) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (e : Event.t) ->
      count_by kinds (Event.kind_name e.kind);
      match e.kind with
      | Event.Msg_drop { reason; _ } -> count_by drop_reasons reason
      | Event.Leader_elected b | Event.Leader_changed b ->
          let prev =
            Option.value (Hashtbl.find_opt timeline e.node) ~default:[]
          in
          Hashtbl.replace timeline e.node ((e.time, b) :: prev)
      (* Counted above; no dedicated aggregation. *)
      | _ [@lint.allow "D4"] -> ())
    events;
  let spans = Span.assemble ~n events in
  let _, causal_stats = Causal.pair events in
  let events_arr = Array.of_list events in
  let slowest =
    List.filter_map
      (fun s -> Option.map (fun t -> (s, t)) (Span.total s))
      spans
    |> List.sort (fun (a, ta) (b, tb) ->
           match Float.compare tb ta with
           | 0 -> Int.compare a.Span.log_idx b.Span.log_idx
           | c -> c)
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  let critical_paths =
    List.filter_map
      (fun (s, t) -> critical_path_of ~max_hops:16 events_arr s t)
      (take 3 slowest)
  in
  let monitor = Health.run health_cfg events in
  {
    n;
    events = List.length events;
    ring_dropped;
    t_start;
    t_end;
    by_kind = Replog.Det.sorted_bindings ~compare_key:String.compare kinds;
    drops_by_reason =
      Replog.Det.sorted_bindings ~compare_key:String.compare drop_reasons;
    leader_timeline =
      List.map
        (fun (node, l) -> (node, List.rev l))
        (Replog.Det.sorted_bindings ~compare_key:Int.compare timeline);
    stall_ms = health_cfg.Health.stall_ms;
    stalls =
      stall_windows ~stall_ms:health_cfg.Health.stall_ms ~t_start ~t_end
        events;
    commit = commit_stats spans;
    causal_edges = causal_stats.Causal.edges;
    unmatched_sends = causal_stats.Causal.unmatched_sends;
    orphan_delivers = causal_stats.Causal.orphan_delivers;
    lamport = Causal.lamport_consistent events;
    critical_paths;
    health_alerts = Health.alerts monitor;
    recoveries = Health.recoveries monitor;
    invariants = Invariant.check_all events;
  }

let of_file ?health file =
  match open_in file with
  | exception Sys_error msg -> Error msg
  | ic ->
      let rec read_lines lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> read_lines (lineno + 1) acc
        | line -> (
            match Event.of_json line with
            | Ok e -> read_lines (lineno + 1) (e :: acc)
            | Error msg ->
                Error (Printf.sprintf "%s:%d: %s" file lineno msg))
      in
      let result = read_lines 1 [] in
      close_in ic;
      Result.map (fun events -> run ?health events) result

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_ms ppf v = Format.fprintf ppf "%.3f" v

let pp ppf r =
  let line fmt = Format.fprintf ppf fmt in
  line "== trace analysis ==@.";
  line "nodes      : %d@." r.n;
  line "events     : %d (ring-dropped %d)@." r.events r.ring_dropped;
  line "time range : %a .. %a ms@." pp_ms r.t_start pp_ms r.t_end;
  line "@.-- events by kind --@.";
  List.iter (fun (k, c) -> line "  %-16s %d@." k c) r.by_kind;
  if not (List.is_empty r.drops_by_reason) then begin
    line "@.-- drops by reason --@.";
    List.iter (fun (k, c) -> line "  %-16s %d@." k c) r.drops_by_reason
  end;
  line "@.-- leader timeline --@.";
  if List.is_empty r.leader_timeline then line "  (no leader events)@.";
  List.iter
    (fun (node, changes) ->
      line "  node %d:" node;
      List.iter
        (fun (t, b) -> line " t=%a %a" pp_ms t Event.pp_ballot b)
        changes;
      line "@.")
    r.leader_timeline;
  line "@.-- stall windows (decide gap > %a ms) --@." pp_ms r.stall_ms;
  if List.is_empty r.stalls then line "  (none)@.";
  List.iter
    (fun s ->
      match s.stall_until with
      | Some u ->
          line "  %a .. %a (%a ms)@." pp_ms s.stall_from pp_ms u pp_ms
            (u -. s.stall_from)
      | None -> line "  %a .. end of trace@." pp_ms s.stall_from)
    r.stalls;
  line "@.-- commit latency --@.";
  (match r.commit with
  | None -> line "  (no decided spans)@."
  | Some c ->
      line "  spans: %d decided of %d proposed@." c.spans_decided
        c.spans_total;
      line "  p50 %a ms, p90 %a ms, p99 %a ms, max %a ms@." pp_ms c.p50
        pp_ms c.p90 pp_ms c.p99 pp_ms c.max_ms;
      line
        "  phase means: queueing %a ms, replication %a ms, commit %a ms@."
        pp_ms c.mean_queueing pp_ms c.mean_replication pp_ms c.mean_commit);
  line "@.-- causal DAG --@.";
  line "  edges %d, unmatched sends %d, orphan delivers %d@." r.causal_edges
    r.unmatched_sends r.orphan_delivers;
  (match r.lamport with
  | Ok () -> line "  lamport clocks: consistent@."
  | Error msg -> line "  lamport clocks: VIOLATION (%s)@." msg);
  line "@.-- critical paths (slowest decided entries) --@.";
  if List.is_empty r.critical_paths then line "  (none)@.";
  List.iter
    (fun p ->
      line "  log_idx %d (total %a ms):@." p.path_log_idx pp_ms
        p.path_total_ms;
      List.iter
        (fun h ->
          line "    t=%a node %d %s@." pp_ms h.hop_time h.hop_node h.hop_desc)
        p.path_hops)
    r.critical_paths;
  line "@.-- health --@.";
  if List.is_empty r.health_alerts then line "  (no alerts)@.";
  List.iter
    (fun (a : Health.alert) ->
      line "  t=%a %s %s@." pp_ms a.Health.at
        (match a.Health.edge with
        | Health.Trigger -> "TRIGGER"
        | Health.Clear -> "CLEAR")
        a.Health.what)
    r.health_alerts;
  line "  recoveries:@.";
  if List.is_empty r.recoveries then line "    (none)@.";
  List.iter
    (fun (rc : Health.recovery) ->
      line "    fault %s at %a (%d fault events): detect %s, decide %s@."
        rc.Health.fault pp_ms rc.Health.fault_at rc.Health.faults
        (match Health.detect_latency rc with
        | Some d -> Printf.sprintf "+%.3f ms" d
        | None -> "-")
        (match Health.recovery_latency rc with
        | Some d -> Printf.sprintf "+%.3f ms" d
        | None -> "never"))
    r.recoveries;
  line "@.-- invariants --@.";
  List.iter
    (fun (name, result) ->
      match result with
      | Ok () -> line "  %s: ok@." name
      | Error v ->
          line "  %s: VIOLATION %a@." name Invariant.pp_violation v)
    r.invariants

let to_string r = Format.asprintf "%a" pp r

let json_ballot (b : Event.ballot) =
  J.Obj [ ("n", J.Int b.n); ("prio", J.Int b.prio); ("pid", J.Int b.pid) ]

let json_opt f = function Some v -> f v | None -> J.Null

let to_json r =
  J.Obj
    [
      ("schema_version", J.Int 1);
      ("n", J.Int r.n);
      ("events", J.Int r.events);
      ("ring_dropped", J.Int r.ring_dropped);
      ("t_start_ms", J.float r.t_start);
      ("t_end_ms", J.float r.t_end);
      ( "by_kind",
        J.Obj (List.map (fun (k, c) -> (k, J.Int c)) r.by_kind) );
      ( "drops_by_reason",
        J.Obj (List.map (fun (k, c) -> (k, J.Int c)) r.drops_by_reason) );
      ( "leader_timeline",
        J.List
          (List.map
             (fun (node, changes) ->
               J.Obj
                 [
                   ("node", J.Int node);
                   ( "changes",
                     J.List
                       (List.map
                          (fun (t, b) ->
                            J.Obj
                              [
                                ("t_ms", J.float t);
                                ("ballot", json_ballot b);
                              ])
                          changes) );
                 ])
             r.leader_timeline) );
      ("stall_threshold_ms", J.float r.stall_ms);
      ( "stalls",
        J.List
          (List.map
             (fun s ->
               J.Obj
                 [
                   ("from_ms", J.float s.stall_from);
                   ("until_ms", json_opt J.float s.stall_until);
                 ])
             r.stalls) );
      ( "commit",
        json_opt
          (fun c ->
            J.Obj
              [
                ("spans_total", J.Int c.spans_total);
                ("spans_decided", J.Int c.spans_decided);
                ("p50_ms", J.float c.p50);
                ("p90_ms", J.float c.p90);
                ("p99_ms", J.float c.p99);
                ("max_ms", J.float c.max_ms);
                ("mean_queueing_ms", J.float c.mean_queueing);
                ("mean_replication_ms", J.float c.mean_replication);
                ("mean_commit_ms", J.float c.mean_commit);
              ])
          r.commit );
      ( "causal",
        J.Obj
          [
            ("edges", J.Int r.causal_edges);
            ("unmatched_sends", J.Int r.unmatched_sends);
            ("orphan_delivers", J.Int r.orphan_delivers);
            ( "lamport_consistent",
              J.Bool (match r.lamport with Ok () -> true | Error _ -> false)
            );
          ] );
      ( "critical_paths",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 [
                   ("log_idx", J.Int p.path_log_idx);
                   ("total_ms", J.float p.path_total_ms);
                   ( "hops",
                     J.List
                       (List.map
                          (fun h ->
                            J.Obj
                              [
                                ("t_ms", J.float h.hop_time);
                                ("node", J.Int h.hop_node);
                                ("desc", J.String h.hop_desc);
                              ])
                          p.path_hops) );
                 ])
             r.critical_paths) );
      ( "health_alerts",
        J.List
          (List.map
             (fun (a : Health.alert) ->
               J.Obj
                 [
                   ("t_ms", J.float a.Health.at);
                   ( "edge",
                     J.String
                       (match a.Health.edge with
                       | Health.Trigger -> "trigger"
                       | Health.Clear -> "clear") );
                   ("what", J.String a.Health.what);
                 ])
             r.health_alerts) );
      ( "recoveries",
        J.List
          (List.map
             (fun (rc : Health.recovery) ->
               J.Obj
                 [
                   ("fault", J.String rc.Health.fault);
                   ("fault_at_ms", J.float rc.Health.fault_at);
                   ("fault_events", J.Int rc.Health.faults);
                   ( "detect_ms",
                     json_opt J.float (Health.detect_latency rc) );
                   ( "recover_ms",
                     json_opt J.float (Health.recovery_latency rc) );
                 ])
             r.recoveries) );
      ( "invariants",
        J.Obj
          (List.map
             (fun (name, result) ->
               ( name,
                 J.Bool (match result with Ok () -> true | Error _ -> false)
               ))
             r.invariants) );
    ]
