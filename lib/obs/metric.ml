(* Metrics: counters, gauges and log-scale histograms behind a string-keyed
   registry. Everything is plain mutable ints/floats — recording is a few
   stores, cheap enough for hot paths.

   Histograms use base-2 log-scale buckets: bucket 0 holds [0, 1), bucket i
   (i >= 1) holds [2^(i-1), 2^i). 63 buckets cover up to 2^62, far beyond
   any simulated duration or byte count. Exact count/sum/sum-of-squares are
   kept alongside, so mean and stddev are exact and compose with
   [Rsm.Metrics.Stats] (e.g. a t-based CI from [count]/[mean]/[stddev]);
   only percentiles are bucket-interpolated. *)

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
  let reset t = t.v <- 0
end

module Gauge = struct
  type t = { mutable v : float }

  let create () = { v = 0.0 }
  let set t x = t.v <- x
  let add t x = t.v <- t.v +. x
  let value t = t.v
end

module Histogram = struct
  let nbuckets = 63

  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable sumsq : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let create () =
    {
      buckets = Array.make nbuckets 0;
      count = 0;
      sum = 0.0;
      sumsq = 0.0;
      minv = infinity;
      maxv = neg_infinity;
    }

  let bucket_of x =
    if x < 1.0 then 0
    else
      let _, e = Float.frexp x in
      min (nbuckets - 1) e

  (* Bucket i covers [lower_bound i, upper_bound i). *)
  let lower_bound i = if i = 0 then 0.0 else Float.ldexp 1.0 (i - 1)
  let upper_bound i = Float.ldexp 1.0 i

  let observe t x =
    let x = Float.max x 0.0 in
    t.buckets.(bucket_of x) <- t.buckets.(bucket_of x) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    t.sumsq <- t.sumsq +. (x *. x);
    if x < t.minv then t.minv <- x;
    if x > t.maxv then t.maxv <- x

  let count t = t.count
  let sum t = t.sum
  let min_value t = if t.count = 0 then nan else t.minv
  let max_value t = if t.count = 0 then nan else t.maxv
  let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count

  let stddev t =
    if t.count < 2 then 0.0
    else
      let n = float_of_int t.count in
      let m = t.sum /. n in
      (* Sample variance from the sum of squares; clamp tiny negative
         rounding residue. *)
      let var = Float.max 0.0 ((t.sumsq -. (n *. m *. m)) /. (n -. 1.0)) in
      sqrt var

  (* Linear interpolation inside the target bucket; exact min/max at the
     extremes. *)
  let percentile t ~p =
    if t.count = 0 then nan
    else begin
      let target = p /. 100.0 *. float_of_int t.count in
      let rec find i cum =
        if i >= nbuckets then t.maxv
        else
          let cum' = cum + t.buckets.(i) in
          if float_of_int cum' >= target && t.buckets.(i) > 0 then begin
            let within =
              (target -. float_of_int cum) /. float_of_int t.buckets.(i)
            in
            let lo = Float.max (lower_bound i) t.minv in
            let hi = Float.min (upper_bound i) t.maxv in
            lo +. (within *. (hi -. lo))
          end
          else find (i + 1) cum'
      in
      find 0 0
    end

  (* Non-empty buckets as (upper bound, count), for dumps and tests. *)
  let buckets t =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.buckets.(i) > 0 then acc := (upper_bound i, t.buckets.(i)) :: !acc
    done;
    !acc
end

module Registry = struct
  type t = {
    counters : (string, Counter.t) Hashtbl.t;
    gauges : (string, Gauge.t) Hashtbl.t;
    histograms : (string, Histogram.t) Hashtbl.t;
  }

  let create () =
    {
      counters = Hashtbl.create 16;
      gauges = Hashtbl.create 16;
      histograms = Hashtbl.create 16;
    }

  let find_or_add tbl name make =
    match Hashtbl.find_opt tbl name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.add tbl name m;
        m

  let counter t name = find_or_add t.counters name Counter.create
  let gauge t name = find_or_add t.gauges name Gauge.create
  let histogram t name = find_or_add t.histograms name Histogram.create

  let clear t =
    Hashtbl.reset t.counters;
    Hashtbl.reset t.gauges;
    Hashtbl.reset t.histograms

  let sorted_keys tbl = Replog.Det.sorted_keys ~compare_key:String.compare tbl

  (* One human-readable line per metric, sorted by name. *)
  let to_lines t =
    let counters =
      List.map
        (fun k ->
          Printf.sprintf "counter   %-32s %d" k
            (Counter.value (Hashtbl.find t.counters k)))
        (sorted_keys t.counters)
    in
    let gauges =
      List.map
        (fun k ->
          Printf.sprintf "gauge     %-32s %g" k
            (Gauge.value (Hashtbl.find t.gauges k)))
        (sorted_keys t.gauges)
    in
    let histograms =
      List.map
        (fun k ->
          let h = Hashtbl.find t.histograms k in
          Printf.sprintf
            "histogram %-32s count=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" k
            (Histogram.count h) (Histogram.mean h)
            (Histogram.percentile h ~p:50.0)
            (Histogram.percentile h ~p:99.0)
            (Histogram.max_value h))
        (sorted_keys t.histograms)
    in
    counters @ gauges @ histograms

  (* The process-wide registry the instrumented layers record into. *)
  let default = create ()
end
