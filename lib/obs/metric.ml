(* Metrics: counters, gauges and log-scale histograms behind a string-keyed
   registry. Everything is plain mutable ints/floats — recording is a few
   stores, cheap enough for hot paths.

   Histograms use base-2 log-scale buckets: bucket 0 holds [0, 1), bucket i
   (i >= 1) holds [2^(i-1), 2^i). 63 buckets cover up to 2^62, far beyond
   any simulated duration or byte count. Exact count/sum/sum-of-squares are
   kept alongside, so mean and stddev are exact and compose with
   [Rsm.Metrics.Stats] (e.g. a t-based CI from [count]/[mean]/[stddev]);
   only percentiles are bucket-interpolated. *)

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
  let reset t = t.v <- 0
end

module Gauge = struct
  type t = { mutable v : float }

  let create () = { v = 0.0 }
  let set t x = t.v <- x
  let add t x = t.v <- t.v +. x
  let value t = t.v
  let reset t = t.v <- 0.0
end

module Histogram = struct
  let nbuckets = 63

  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable sumsq : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let create () =
    {
      buckets = Array.make nbuckets 0;
      count = 0;
      sum = 0.0;
      sumsq = 0.0;
      minv = infinity;
      maxv = neg_infinity;
    }

  let bucket_of x =
    if x < 1.0 then 0
    else
      let _, e = Float.frexp x in
      min (nbuckets - 1) e

  (* Bucket i covers [lower_bound i, upper_bound i). *)
  let lower_bound i = if i = 0 then 0.0 else Float.ldexp 1.0 (i - 1)
  let upper_bound i = Float.ldexp 1.0 i

  let reset t =
    Array.fill t.buckets 0 nbuckets 0;
    t.count <- 0;
    t.sum <- 0.0;
    t.sumsq <- 0.0;
    t.minv <- infinity;
    t.maxv <- neg_infinity

  let observe t x =
    let x = Float.max x 0.0 in
    t.buckets.(bucket_of x) <- t.buckets.(bucket_of x) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    t.sumsq <- t.sumsq +. (x *. x);
    if x < t.minv then t.minv <- x;
    if x > t.maxv then t.maxv <- x

  let count t = t.count
  let sum t = t.sum
  let min_value t = if t.count = 0 then nan else t.minv
  let max_value t = if t.count = 0 then nan else t.maxv
  let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count

  let stddev t =
    if t.count < 2 then 0.0
    else
      let n = float_of_int t.count in
      let m = t.sum /. n in
      (* Sample variance from the sum of squares; clamp tiny negative
         rounding residue. *)
      let var = Float.max 0.0 ((t.sumsq -. (n *. m *. m)) /. (n -. 1.0)) in
      sqrt var

  (* Linear interpolation inside the target bucket; exact min/max at the
     extremes. *)
  let percentile t ~p =
    if t.count = 0 then nan
    else begin
      let target = p /. 100.0 *. float_of_int t.count in
      let rec find i cum =
        if i >= nbuckets then t.maxv
        else
          let cum' = cum + t.buckets.(i) in
          if float_of_int cum' >= target && t.buckets.(i) > 0 then begin
            let within =
              (target -. float_of_int cum) /. float_of_int t.buckets.(i)
            in
            let lo = Float.max (lower_bound i) t.minv in
            let hi = Float.min (upper_bound i) t.maxv in
            lo +. (within *. (hi -. lo))
          end
          else find (i + 1) cum'
      in
      find 0 0
    end

  (* Non-empty buckets as (upper bound, count), for dumps and tests. *)
  let buckets t =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.buckets.(i) > 0 then acc := (upper_bound i, t.buckets.(i)) :: !acc
    done;
    !acc
end

module Registry = struct
  type t = {
    counters : (string, Counter.t) Hashtbl.t;
    gauges : (string, Gauge.t) Hashtbl.t;
    histograms : (string, Histogram.t) Hashtbl.t;
  }

  let create () =
    {
      counters = Hashtbl.create 16;
      gauges = Hashtbl.create 16;
      histograms = Hashtbl.create 16;
    }

  let find_or_add tbl name make =
    match Hashtbl.find_opt tbl name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.add tbl name m;
        m

  let counter t name = find_or_add t.counters name Counter.create
  let gauge t name = find_or_add t.gauges name Gauge.create
  let histogram t name = find_or_add t.histograms name Histogram.create

  let clear t =
    Hashtbl.reset t.counters;
    Hashtbl.reset t.gauges;
    Hashtbl.reset t.histograms

  let sorted_bindings tbl =
    Replog.Det.sorted_bindings ~compare_key:String.compare tbl

  (* All iteration over a registry goes through these sorted views —
     registration order (and therefore Hashtbl layout) depends on code
     paths taken, which would make every rendered output nondeterministic. *)
  let counters t = sorted_bindings t.counters
  let gauges t = sorted_bindings t.gauges
  let histograms t = sorted_bindings t.histograms

  (* One human-readable line per metric, sorted by name. *)
  let to_lines t =
    let counters =
      List.map
        (fun (k, c) -> Printf.sprintf "counter   %-32s %d" k (Counter.value c))
        (counters t)
    in
    let gauges =
      List.map
        (fun (k, g) -> Printf.sprintf "gauge     %-32s %g" k (Gauge.value g))
        (gauges t)
    in
    let histograms =
      List.map
        (fun (k, h) ->
          Printf.sprintf
            "histogram %-32s count=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" k
            (Histogram.count h) (Histogram.mean h)
            (Histogram.percentile h ~p:50.0)
            (Histogram.percentile h ~p:99.0)
            (Histogram.max_value h))
        (histograms t)
    in
    counters @ gauges @ histograms

  (* Prometheus text-format names: [a-zA-Z0-9_:], so the registry's dotted
     keys are mapped one character at a time ('.' becomes '_'). *)
  let exposition_name k =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      k

  (* Prometheus-style text exposition: `# TYPE` line per metric, histogram
     as cumulative `_bucket{le=...}` plus `_sum`/`_count`. Deterministic:
     sorted by key, and every value is a pure function of the recorded
     samples. *)
  let render_exposition t =
    let buf = Buffer.create 1024 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    List.iter
      (fun (k, c) ->
        let n = exposition_name k in
        add "# TYPE %s counter\n" n;
        add "%s %d\n" n (Counter.value c))
      (counters t);
    List.iter
      (fun (k, g) ->
        let n = exposition_name k in
        add "# TYPE %s gauge\n" n;
        add "%s %g\n" n (Gauge.value g))
      (gauges t);
    List.iter
      (fun (k, h) ->
        let n = exposition_name k in
        add "# TYPE %s histogram\n" n;
        let cum = ref 0 in
        List.iter
          (fun (upper, count) ->
            cum := !cum + count;
            add "%s_bucket{le=\"%g\"} %d\n" n upper !cum)
          (Histogram.buckets h);
        add "%s_bucket{le=\"+Inf\"} %d\n" n (Histogram.count h);
        add "%s_sum %g\n" n (Histogram.sum h);
        add "%s_count %d\n" n (Histogram.count h))
      (histograms t);
    Buffer.contents buf

  (* One time-stamped snapshot of every metric, for periodic JSONL series
     (`opx metrics --snapshots`). Percentiles are pre-rendered so readers
     need no bucket-boundary knowledge. *)
  let snapshot_json t ~time =
    let module J = Bench_report.Json in
    let counters =
      List.map (fun (k, c) -> (k, J.Int (Counter.value c))) (counters t)
    in
    let gauges =
      List.map (fun (k, g) -> (k, J.float (Gauge.value g))) (gauges t)
    in
    let histograms =
      List.map
        (fun (k, h) ->
          ( k,
            J.Obj
              [
                ("count", J.Int (Histogram.count h));
                ("sum", J.float (Histogram.sum h));
                ("p50", J.float (Histogram.percentile h ~p:50.0));
                ("p99", J.float (Histogram.percentile h ~p:99.0));
                ("max", J.float (Histogram.max_value h));
              ] ))
        (histograms t)
    in
    J.Obj
      [
        ("t_ms", J.float time);
        ("counters", J.Obj counters);
        ("gauges", J.Obj gauges);
        ("histograms", J.Obj histograms);
      ]

  (* The process-wide registry the instrumented layers record into. *)
  let default = create ()
end
