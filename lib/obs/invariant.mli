(** Trace-driven invariant checkers: feed them the event stream of a run (in
    timestamp order) and assert the result. Tests run them over scenario
    runs; [opx trace] reports them over whole replays. *)

type violation = { at : float; node : int; message : string }

val pp_violation : Format.formatter -> violation -> unit

val single_leader_per_ballot : Event.t list -> (unit, violation) result
(** At most one server acts as leader (sends Prepare or Accept) under any
    given ballot, and only the server the ballot belongs to. *)

val decided_prefix_monotonic : Event.t list -> (unit, violation) result
(** Each server's decided index never moves backwards (stable storage keeps
    the decided prefix across crashes). *)

val check_all : Event.t list -> (string * (unit, violation) result) list
(** Run every checker; returns (name, result) pairs. *)

(** Streaming form of {!check_all}: feed events one at a time; each
    invariant latches its first violation. Memory is O(distinct ballots +
    nodes). [results] pairs appear in {!check_all}'s order with identical
    messages. *)
module Monitor : sig
  type t

  val create : unit -> t
  val observe : t -> Event.t -> unit
  val results : t -> (string * (unit, violation) result) list
end
