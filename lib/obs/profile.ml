(* The attribution profiler. Like [Trace], it is process-global (one
   deterministic single-threaded simulation at a time) and two-level
   guarded: [hot] is true only while profiling is enabled AND a collection
   is open, so instrumentation sites cost one ref load and branch when no
   profile is being taken — bench/check_profile_overhead.ml verifies this,
   exactly as bench/check_overhead.ml does for the tracer.

   A collection is a tree of labelled nodes. [enter]/[leave] (or [wrap])
   maintain a stack of open frames; each frame samples the simulated clock,
   the CPU clock and the GC allocation counters on entry and adds the
   deltas to its node on exit. Nesting is attribution: a protocol handler
   entered from inside a [simnet/deliver] dispatch becomes a child of that
   dispatch node, which is what makes the rendered tree a flamegraph of the
   simulation's cost structure.

   Determinism contract: call counts and sim-time columns are pure
   functions of the simulated execution, so they are byte-identical across
   double runs of the same seed. Wall-time and allocation-words columns
   are measurements of this process and are NOT deterministic; the
   renderers keep them behind [~wall:true] so golden tests and bench
   reports can exclude them. *)

type agg = {
  mutable calls : int;
  mutable sim_ms : float;
  mutable wall_s : float;
  mutable alloc_w : float;
}

type node = {
  label : string;
  stats : agg;
  children : (string, node) Hashtbl.t;
}

type t = node

let fresh_agg () = { calls = 0; sim_ms = 0.0; wall_s = 0.0; alloc_w = 0.0 }

let fresh_node label =
  { label; stats = fresh_agg (); children = Hashtbl.create 8 }

let enabled = ref false
let current : node option ref = ref None
let hot = ref false

(* The profiler keeps its own clock ref (installed by [Simnet.Net.create]
   alongside the tracer's) rather than reading [Trace]'s, so [Trace] can
   itself be instrumented — the sink-dispatch loop is attributed to
   [obs/sink] — without a module cycle. *)
let clock : (unit -> float) ref = ref (fun () -> 0.0)

type frame = {
  f_node : node;
  f_sim0 : float;
  f_wall0 : float;
  f_alloc0 : float;
}

let stack : frame list ref = ref []
let refresh () = hot := !enabled && Option.is_some !current

let set_enabled b =
  enabled := b;
  refresh ()

let is_enabled () = !enabled
let[@inline] on () = !hot
let set_clock f = clock := f

(* Words allocated since program start. [Gc.allocated_bytes] is
   minor + major - promoted (promoted words would otherwise be counted in
   both generations), scaled to bytes. *)
let word_bytes = float_of_int (Sys.word_size / 8)
let alloc_words () = Gc.allocated_bytes () /. word_bytes

let child_of parent label =
  match Hashtbl.find_opt parent.children label with
  | Some n -> n
  | None ->
      let n = fresh_node label in
      Hashtbl.add parent.children label n;
      n

let enter label =
  if !hot then begin
    let parent =
      match !stack with
      | f :: _ -> f.f_node
      | [] -> ( match !current with Some root -> root | None -> assert false)
    in
    stack :=
      {
        f_node = child_of parent label;
        f_sim0 = !clock ();
        f_wall0 = (Sys.time () [@lint.allow "D3"]);
        f_alloc0 = alloc_words ();
      }
      :: !stack
  end

let leave () =
  match !stack with
  | [] -> ()
  | f :: rest ->
      stack := rest;
      let s = f.f_node.stats in
      s.calls <- s.calls + 1;
      s.sim_ms <- s.sim_ms +. (!clock () -. f.f_sim0);
      s.wall_s <- s.wall_s +. ((Sys.time () [@lint.allow "D3"]) -. f.f_wall0);
      s.alloc_w <- s.alloc_w +. (alloc_words () -. f.f_alloc0)

let wrap label f =
  if !hot then begin
    enter label;
    match f () with
    | v ->
        leave ();
        v
    | exception e ->
        leave ();
        raise e
  end
  else f ()

let start () =
  current := Some (fresh_node "");
  stack := [];
  refresh ()

let stop () =
  (* Unwind frames an exception left open, so their partial cost is still
     attributed and the stack is clean for the next collection. *)
  while not (List.is_empty !stack) do
    leave ()
  done;
  let root =
    match !current with Some root -> root | None -> fresh_node ""
  in
  current := None;
  refresh ();
  root

let live () = !current

let with_profile f =
  let was = !enabled in
  start ();
  enabled := true;
  refresh ();
  let finish () =
    let root = stop () in
    enabled := was;
    refresh ();
    root
  in
  match f () with
  | v -> (v, finish ())
  | exception e ->
      let (_ : node) = finish () in
      raise e

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

type row = {
  r_label : string;
  r_calls : int;
  r_sim_ms : float;
  r_wall_ms : float;
  r_alloc_w : float;
}

let sorted_children node =
  List.map snd
    (Replog.Det.sorted_bindings ~compare_key:String.compare node.children)

(* Flat view: the same label reached through different parents is one
   component. Sorted by call count (the deterministic hotness proxy),
   ties by label. *)
let flat t =
  let acc : (string, row ref) Hashtbl.t = Hashtbl.create 16 in
  let rec walk node =
    if not (String.equal node.label "") then begin
      let r =
        match Hashtbl.find_opt acc node.label with
        | Some r -> r
        | None ->
            let r =
              ref
                {
                  r_label = node.label;
                  r_calls = 0;
                  r_sim_ms = 0.0;
                  r_wall_ms = 0.0;
                  r_alloc_w = 0.0;
                }
            in
            Hashtbl.add acc node.label r;
            r
      in
      r :=
        {
          !r with
          r_calls = !r.r_calls + node.stats.calls;
          r_sim_ms = !r.r_sim_ms +. node.stats.sim_ms;
          r_wall_ms = !r.r_wall_ms +. (node.stats.wall_s *. 1000.0);
          r_alloc_w = !r.r_alloc_w +. node.stats.alloc_w;
        }
    end;
    List.iter walk (sorted_children node)
  in
  walk t;
  let rows =
    List.map
      (fun (_, r) -> !r)
      (Replog.Det.sorted_bindings ~compare_key:String.compare acc)
  in
  List.sort
    (fun a b ->
      match Int.compare b.r_calls a.r_calls with
      | 0 -> String.compare a.r_label b.r_label
      | c -> c)
    rows

let buf_rows ?(wall = false) ?(top = 10) buf t =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rows = flat t in
  let shown = List.filteri (fun i _ -> i < top) rows in
  add "-- profile: top %d of %d components by calls --\n"
    (List.length shown) (List.length rows);
  add "%-28s %10s %12s%s\n" "component" "calls" "sim-ms"
    (if wall then Printf.sprintf " %10s %12s" "wall-ms" "alloc-kw" else "");
  List.iter
    (fun r ->
      add "%-28s %10d %12.1f" r.r_label r.r_calls r.r_sim_ms;
      if wall then
        add " %10.2f %12.1f" r.r_wall_ms (r.r_alloc_w /. 1000.0);
      add "\n")
    shown

let buf_tree ?(wall = false) buf t =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "-- attribution tree --\n";
  let rec walk depth node =
    if not (String.equal node.label "") then begin
      add "%-*s%-*s %10d %12.1f" (2 * depth) "" (28 - (2 * depth))
        node.label node.stats.calls node.stats.sim_ms;
      if wall then
        add " %10.2f %12.1f"
          (node.stats.wall_s *. 1000.0)
          (node.stats.alloc_w /. 1000.0);
      add "\n"
    end;
    List.iter
      (walk (if String.equal node.label "" then depth else depth + 1))
      (sorted_children node)
  in
  walk 0 t

let to_string ?(wall = false) ?(top = 10) ?(tree = true) t =
  let buf = Buffer.create 1024 in
  buf_rows ~wall ~top buf t;
  if tree then buf_tree ~wall buf t;
  Buffer.contents buf

let to_json ?(wall = false) t =
  let module J = Bench_report.Json in
  let row_fields r =
    [
      ("component", J.String r.r_label);
      ("calls_count", J.Int r.r_calls);
      ("sim_ms", J.float r.r_sim_ms);
    ]
    @
    if wall then
      [
        ("wall_ms", J.float r.r_wall_ms); ("alloc_words", J.float r.r_alloc_w);
      ]
    else []
  in
  let rec tree_json node =
    let base =
      [
        ("component", J.String node.label);
        ("calls_count", J.Int node.stats.calls);
        ("sim_ms", J.float node.stats.sim_ms);
      ]
      @ (if wall then
           [
             ("wall_ms", J.float (node.stats.wall_s *. 1000.0));
             ("alloc_words", J.float node.stats.alloc_w);
           ]
         else [])
    in
    let children = List.map tree_json (sorted_children node) in
    J.Obj
      (base
      @ if List.is_empty children then [] else [ ("children", J.List children) ]
      )
  in
  J.Obj
    [
      ("schema_version", J.Int 1);
      ("deterministic_columns", J.List [ J.String "calls_count"; J.String "sim_ms" ]);
      ("flat", J.List (List.map (fun r -> J.Obj (row_fields r)) (flat t)));
      ("tree", tree_json t);
    ]
