(* Compact binary trace codec (container format v1, magic "opxtrace1").

   Layout:

     magic   "opxtrace1"                      9 raw bytes
     version uvarint                          currently 1
     meta    uvarint count, then count x      raw (len,bytes) string pairs
             (key, value)                     e.g. seed/nodes/sample.<kind>
     events  repeated until EOF:
       tag      1 byte                        Event.kind_tag
       dt_us    zigzag varint                 time delta vs previous event,
                                              in integer microseconds
       node     zigzag varint
       fields   per kind: ints as zigzag varints, ballots as three zigzag
                varints (n, prio, pid), strings interned (below)

   Strings inside events are interned: the first occurrence is written as a
   0 marker followed by raw (len,bytes) and enters the table (while the
   table is below [max_interned] entries); later occurrences are a 1-based
   table index. Encoder and decoder grow their tables under the identical
   rule, so no table is stored in the file.

   Times are stored as microsecond deltas. [Event.to_json] prints times
   with [%.3f] (millisecond values, microsecond precision), so rounding to
   integer microseconds loses nothing relative to the JSONL round trip —
   binary-decoded and JSONL-round-tripped events compare equal.

   Everything works over [Bytes]/[Buffer] plus an abstract chunk sink and a
   pushback chunk reader, so encoding to memory, files or pipes (including
   stdin, which cannot seek) all share one code path. *)

type format = Jsonl | Bin

let magic = "opxtrace1"
let version = 1

exception Decode_error of string

(* ------------------------------------------------------------------ *)
(* Varints                                                             *)
(* ------------------------------------------------------------------ *)

let add_uvarint buf n =
  (* unsafe_chr: both operands are masked to 7 bits (the loop exits once
     the remaining value fits), so the byte is always in range. *)
  let n = ref n in
  while !n land lnot 0x7f <> 0 do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !n)

(* Zigzag maps small-magnitude signed ints to small unsigned ones:
   0 -> 0, -1 -> 1, 1 -> 2, ... OCaml ints are 63-bit, hence the 62. *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag u = (u lsr 1) lxor (-(u land 1))

let add_raw_string buf s =
  add_uvarint buf (String.length s);
  Buffer.add_string buf s

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let default_max_interned = 65_536

type writer = {
  out : string -> unit;
  buf : Buffer.t;
  scratch : Bytes.t;
  (* Per-event staging area for the tag and varint fields, written with
     unsafe stores and appended to [buf] in one piece — an event is ~10
     bytes, and staging turns ~10 bounds-checked Buffer calls per event
     into raw byte stores plus one add_subbytes. [write] stages at most
     [1 + 9 * 9] bytes per event (tag + up to eight 9-byte varints plus
     an interned-string index); strings bypass the scratch. *)
  mutable spos : int;
  interned : (string, int) Hashtbl.t;
  max_interned : int;
  mutable last_us : int;
  mutable w_events : int;
  mutable w_bytes : int;
}

let scratch_len = 192

let sflush w =
  if w.spos > 0 then begin
    Buffer.add_subbytes w.buf w.scratch 0 w.spos;
    w.spos <- 0
  end

let flush w =
  sflush w;
  if Buffer.length w.buf > 0 then begin
    w.out (Buffer.contents w.buf);
    Buffer.clear w.buf
  end

let put_uvarint w n =
  let s = w.scratch in
  let n = ref n and p = ref w.spos in
  while !n land lnot 0x7f <> 0 do
    Bytes.unsafe_set s !p (Char.unsafe_chr (0x80 lor (!n land 0x7f)));
    incr p;
    n := !n lsr 7
  done;
  Bytes.unsafe_set s !p (Char.unsafe_chr !n);
  w.spos <- !p + 1

let put_svarint w n = put_uvarint w (zigzag n)

let put_byte w b =
  Bytes.unsafe_set w.scratch w.spos (Char.unsafe_chr b);
  w.spos <- w.spos + 1

let writer ?(meta = []) ?(max_interned = default_max_interned) out =
  let buf = Buffer.create 65_536 in
  Buffer.add_string buf magic;
  add_uvarint buf version;
  add_uvarint buf (List.length meta);
  List.iter
    (fun (k, v) ->
      add_raw_string buf k;
      add_raw_string buf v)
    meta;
  let w =
    {
      out;
      buf;
      scratch = Bytes.create scratch_len;
      spos = 0;
      interned = Hashtbl.create 256;
      max_interned;
      last_us = 0;
      w_events = 0;
      w_bytes = Buffer.length buf;
    }
  in
  w

let add_interned w s =
  match Hashtbl.find_opt w.interned s with
  | Some i -> put_uvarint w (i + 1)
  | None ->
      put_uvarint w 0;
      sflush w;
      add_raw_string w.buf s;
      if Hashtbl.length w.interned < w.max_interned then
        Hashtbl.replace w.interned s (Hashtbl.length w.interned)

let time_to_us t = int_of_float (Float.round (t *. 1000.0))
let us_to_time us = float_of_int us /. 1000.0

let put_ballot w (b : Event.ballot) =
  put_svarint w b.Event.n;
  put_svarint w b.Event.prio;
  put_svarint w b.Event.pid

let write w (e : Event.t) =
  let before = Buffer.length w.buf in
  put_byte w (Event.kind_tag e.kind);
  let us = time_to_us e.time in
  put_svarint w (us - w.last_us);
  w.last_us <- us;
  put_svarint w e.node;
  (match e.kind with
  | Event.Ballot_increment b | Event.Leader_elected b | Event.Leader_changed b
    ->
      put_ballot w b
  | Event.Prepare_round { b; log_idx; decided_idx }
  | Event.Promise_sent { b; log_idx; decided_idx } ->
      put_ballot w b;
      put_svarint w log_idx;
      put_svarint w decided_idx
  | Event.Accept_sent { b; start_idx; count } ->
      put_ballot w b;
      put_svarint w start_idx;
      put_svarint w count
  | Event.Accepted_idx { b; log_idx } ->
      put_ballot w b;
      put_svarint w log_idx
  | Event.Decided { b; decided_idx } ->
      put_ballot w b;
      put_svarint w decided_idx
  | Event.Proposed { log_idx; cmd_id } ->
      put_svarint w log_idx;
      put_svarint w cmd_id
  | Event.Batch_flush { entries; followers; cap; trigger } ->
      put_svarint w entries;
      put_svarint w followers;
      put_svarint w cap;
      add_interned w trigger
  | Event.Cap_change { cap_from; cap_to } ->
      put_svarint w cap_from;
      put_svarint w cap_to
  | Event.Session_drop { peer; session } | Event.Session_up { peer; session }
    ->
      put_svarint w peer;
      put_svarint w session
  | Event.Link_cut { a; b } | Event.Link_heal { a; b } ->
      put_svarint w a;
      put_svarint w b
  | Event.Crashed | Event.Recovered -> ()
  | Event.Reconfig { config_id; milestone } ->
      put_svarint w config_id;
      add_interned w milestone
  | Event.Msg_send { dst; size; send_id; lc } ->
      put_svarint w dst;
      put_svarint w size;
      put_svarint w send_id;
      put_svarint w lc
  | Event.Msg_deliver { src; size; send_id; lc } ->
      put_svarint w src;
      put_svarint w size;
      put_svarint w send_id;
      put_svarint w lc
  | Event.Msg_drop { src; dst; reason; session; send_id } ->
      put_svarint w src;
      put_svarint w dst;
      add_interned w reason;
      put_svarint w session;
      put_svarint w send_id
  | Event.Snapshot_taken { idx; bytes } | Event.Snapshot_installed { idx; bytes }
    ->
      put_svarint w idx;
      put_svarint w bytes
  | Event.Log_trimmed { upto; entries } ->
      put_svarint w upto;
      put_svarint w entries
  | Event.Chaos_fault { step; fault } ->
      put_svarint w step;
      add_interned w fault
  | Event.Chaos_invoke { client; op_id; op } ->
      put_svarint w client;
      put_svarint w op_id;
      add_interned w op
  | Event.Chaos_response { client; op_id; result } ->
      put_svarint w client;
      put_svarint w op_id;
      add_interned w result
  | Event.Chaos_timeout { client; op_id } ->
      put_svarint w client;
      put_svarint w op_id);
  sflush w;
  w.w_events <- w.w_events + 1;
  w.w_bytes <- w.w_bytes + (Buffer.length w.buf - before);
  if Buffer.length w.buf >= 61_440 then flush w

let written_events w = w.w_events
let written_bytes w = w.w_bytes

(* ------------------------------------------------------------------ *)
(* Source: buffered chunk reader with format auto-detection            *)
(* ------------------------------------------------------------------ *)

type source = {
  refill : bytes -> int -> int -> int;  (* like [input]; 0 at EOF *)
  chunk : bytes;
  mutable len : int;  (* valid bytes in [chunk] *)
  mutable off : int;  (* read cursor *)
  mutable at_eof : bool;
  mutable pos : int;  (* absolute byte offset of [off], for errors *)
  mutable fmt : format;
  mutable s_meta : (string * string) list;
  mutable last_us : int;
  table : (int, string) Hashtbl.t;
  max_interned : int;
  line_buf : Buffer.t;
}

let fail s fmt = Printf.ksprintf (fun m -> raise (Decode_error m)) fmt s.pos

(* Ensure at least [n] unread bytes sit in [chunk] (compacting first).
   Returns the number actually available, < n only at EOF. *)
let ensure s n =
  if s.len - s.off < n && not s.at_eof then begin
    if s.off > 0 then begin
      Bytes.blit s.chunk s.off s.chunk 0 (s.len - s.off);
      s.len <- s.len - s.off;
      s.off <- 0
    end;
    let continue = ref true in
    while s.len - s.off < n && !continue do
      let got = s.refill s.chunk s.len (Bytes.length s.chunk - s.len) in
      if got = 0 then begin
        s.at_eof <- true;
        continue := false
      end
      else s.len <- s.len + got
    done
  end;
  s.len - s.off

let read_byte s =
  if ensure s 1 < 1 then fail s "offset %d: unexpected end of trace";
  let b = Bytes.get_uint8 s.chunk s.off in
  s.off <- s.off + 1;
  s.pos <- s.pos + 1;
  b

let at_end s = ensure s 1 < 1

let read_uvarint s =
  let acc = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    let b = read_byte s in
    acc := !acc lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then continue := false
    else if !shift > 62 then fail s "offset %d: varint overflow"
  done;
  !acc

let read_svarint s = unzigzag (read_uvarint s)

let read_raw_string s =
  let n = read_uvarint s in
  if n > 16_777_216 then fail s "offset %d: unreasonable string length";
  let b = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    let avail = ensure s 1 in
    if avail < 1 then fail s "offset %d: unexpected end of trace in string";
    let take = min avail (n - !filled) in
    Bytes.blit s.chunk s.off b !filled take;
    s.off <- s.off + take;
    s.pos <- s.pos + take;
    filled := !filled + take
  done;
  Bytes.unsafe_to_string b

let read_interned s =
  let v = read_uvarint s in
  if v = 0 then begin
    let str = read_raw_string s in
    if Hashtbl.length s.table < s.max_interned then
      Hashtbl.replace s.table (Hashtbl.length s.table) str;
    str
  end
  else
    match Hashtbl.find_opt s.table (v - 1) with
    | Some str -> str
    | None -> fail s "offset %d: string table index out of range"

let make_source refill =
  let s =
    {
      refill;
      chunk = Bytes.create 65_536;
      len = 0;
      off = 0;
      at_eof = false;
      pos = 0;
      fmt = Jsonl;
      s_meta = [];
      last_us = 0;
      table = Hashtbl.create 256;
      max_interned = default_max_interned;
      line_buf = Buffer.create 256;
    }
  in
  (* Sniff the magic without consuming: if the stream starts with the
     binary magic, parse the header; otherwise the bytes are the first
     JSONL line. *)
  let avail = ensure s (String.length magic) in
  let is_bin =
    avail >= String.length magic
    && String.equal
         (Bytes.sub_string s.chunk s.off (String.length magic))
         magic
  in
  if is_bin then begin
    s.fmt <- Bin;
    s.off <- s.off + String.length magic;
    s.pos <- s.pos + String.length magic;
    let v = read_uvarint s in
    if v <> version then fail s "offset %d: unsupported trace version";
    let n_meta = read_uvarint s in
    let meta = ref [] in
    for _ = 1 to n_meta do
      let k = read_raw_string s in
      let v = read_raw_string s in
      meta := (k, v) :: !meta
    done;
    s.s_meta <- List.rev !meta
  end;
  s

let of_channel ic = make_source (fun b off len -> input ic b off len)

let of_string str =
  let cursor = ref 0 in
  make_source (fun b off len ->
      let take = min len (String.length str - !cursor) in
      Bytes.blit_string str !cursor b off take;
      cursor := !cursor + take;
      take)

let source_format s = s.fmt
let meta s = s.s_meta

let read_ballot s =
  let n = read_svarint s in
  let prio = read_svarint s in
  let pid = read_svarint s in
  { Event.n; prio; pid }

let read_bin_event s : Event.t =
  let tag = read_byte s in
  let dt = read_svarint s in
  s.last_us <- s.last_us + dt;
  let time = us_to_time s.last_us in
  let node = read_svarint s in
  let i () = read_svarint s in
  let kind =
    match tag with
    | 0 -> Event.Ballot_increment (read_ballot s)
    | 1 -> Event.Leader_elected (read_ballot s)
    | 2 -> Event.Leader_changed (read_ballot s)
    | 3 ->
        let b = read_ballot s in
        let log_idx = i () in
        let decided_idx = i () in
        Event.Prepare_round { b; log_idx; decided_idx }
    | 4 ->
        let b = read_ballot s in
        let log_idx = i () in
        let decided_idx = i () in
        Event.Promise_sent { b; log_idx; decided_idx }
    | 5 ->
        let b = read_ballot s in
        let start_idx = i () in
        let count = i () in
        Event.Accept_sent { b; start_idx; count }
    | 6 ->
        let b = read_ballot s in
        let log_idx = i () in
        Event.Accepted_idx { b; log_idx }
    | 7 ->
        let b = read_ballot s in
        let decided_idx = i () in
        Event.Decided { b; decided_idx }
    | 8 ->
        let log_idx = i () in
        let cmd_id = i () in
        Event.Proposed { log_idx; cmd_id }
    | 9 ->
        let entries = i () in
        let followers = i () in
        let cap = i () in
        let trigger = read_interned s in
        Event.Batch_flush { entries; followers; cap; trigger }
    | 10 ->
        let cap_from = i () in
        let cap_to = i () in
        Event.Cap_change { cap_from; cap_to }
    | 11 ->
        let peer = i () in
        let session = i () in
        Event.Session_drop { peer; session }
    | 12 ->
        let peer = i () in
        let session = i () in
        Event.Session_up { peer; session }
    | 13 ->
        let a = i () in
        let b = i () in
        Event.Link_cut { a; b }
    | 14 ->
        let a = i () in
        let b = i () in
        Event.Link_heal { a; b }
    | 15 -> Event.Crashed
    | 16 -> Event.Recovered
    | 17 ->
        let config_id = i () in
        let milestone = read_interned s in
        Event.Reconfig { config_id; milestone }
    | 18 ->
        let dst = i () in
        let size = i () in
        let send_id = i () in
        let lc = i () in
        Event.Msg_send { dst; size; send_id; lc }
    | 19 ->
        let src = i () in
        let size = i () in
        let send_id = i () in
        let lc = i () in
        Event.Msg_deliver { src; size; send_id; lc }
    | 20 ->
        let src = i () in
        let dst = i () in
        let reason = read_interned s in
        let session = i () in
        let send_id = i () in
        Event.Msg_drop { src; dst; reason; session; send_id }
    | 21 ->
        let idx = i () in
        let bytes = i () in
        Event.Snapshot_taken { idx; bytes }
    | 22 ->
        let idx = i () in
        let bytes = i () in
        Event.Snapshot_installed { idx; bytes }
    | 23 ->
        let upto = i () in
        let entries = i () in
        Event.Log_trimmed { upto; entries }
    | 24 ->
        let step = i () in
        let fault = read_interned s in
        Event.Chaos_fault { step; fault }
    | 25 ->
        let client = i () in
        let op_id = i () in
        let op = read_interned s in
        Event.Chaos_invoke { client; op_id; op }
    | 26 ->
        let client = i () in
        let op_id = i () in
        let result = read_interned s in
        Event.Chaos_response { client; op_id; result }
    | 27 ->
        let client = i () in
        let op_id = i () in
        Event.Chaos_timeout { client; op_id }
    | t -> fail s "offset %d: unknown event tag %d" t
  in
  { Event.time; node; kind }

(* Read one JSONL line (without the newline); None at EOF. *)
let read_line s =
  if at_end s then None
  else begin
    Buffer.clear s.line_buf;
    let continue = ref true in
    while !continue do
      if at_end s then continue := false
      else
        let c = Char.chr (read_byte s) in
        if Char.equal c '\n' then continue := false
        else Buffer.add_char s.line_buf c
    done;
    Some (Buffer.contents s.line_buf)
  end

let iter s f =
  match s.fmt with
  | Bin -> (
      try
        while not (at_end s) do
          f (read_bin_event s)
        done;
        Ok ()
      with Decode_error m -> Error m)
  | Jsonl ->
      let rec loop lineno =
        match read_line s with
        | None -> Ok ()
        | Some "" -> loop (lineno + 1)
        | Some line -> (
            match Event.of_json line with
            | Ok e ->
                f e;
                loop (lineno + 1)
            | Error msg -> Error (Printf.sprintf "%d: %s" lineno msg))
      in
      loop 1

let fold s ~init ~f =
  let acc = ref init in
  match iter s (fun e -> acc := f !acc e) with
  | Ok () -> Ok !acc
  | Error _ as e -> e

let events s =
  let exhausted = ref false in
  let rec next () =
    if !exhausted then Seq.Nil
    else
      match s.fmt with
      | Bin ->
          if at_end s then begin
            exhausted := true;
            Seq.Nil
          end
          else (
            match read_bin_event s with
            | e -> Seq.Cons (Ok e, next)
            | exception Decode_error m ->
                exhausted := true;
                Seq.Cons (Error m, next))
      | Jsonl -> (
          match read_line s with
          | None ->
              exhausted := true;
              Seq.Nil
          | Some "" -> next ()
          | Some line -> (
              match Event.of_json line with
              | Ok e -> Seq.Cons (Ok e, next)
              | Error msg ->
                  exhausted := true;
                  Seq.Cons (Error msg, next)))
  in
  next
