(** The global tracer: a typed event stream with pluggable sinks.

    Off by default. Instrumentation sites are guarded by {!on} (one ref load
    and branch), and the guard is also false while tracing is enabled but no
    sink is subscribed — the disabled path costs ~nothing, so benchmark
    numbers are unaffected (verified by [bench/check_overhead.ml]).

    The tracer is process-global: the repository runs one deterministic
    single-threaded simulation at a time, so instrumentation sites do not
    thread a handle through every constructor. [Simnet.Net.create] installs
    its simulated clock here; events emitted outside any simulation carry
    time 0. *)

type sink = Event.t -> unit

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val on : unit -> bool
(** True when tracing is enabled {e and} at least one sink is subscribed.
    Guard every [emit] call site with this so argument construction is
    skipped when tracing is off. *)

val subscribe : sink -> int
(** Register a sink; returns an id for {!unsubscribe}. *)

val unsubscribe : int -> unit

val set_clock : (unit -> float) -> unit
(** Install the simulated clock used to stamp events emitted via {!emit}. *)

val emit : node:int -> Event.kind -> unit
(** Emit an event stamped with the installed clock. No-op unless {!on}. *)

val emit_at : time:float -> node:int -> Event.kind -> unit
(** Emit with an explicit timestamp (used by the simulator, which knows its
    own clock). No-op unless {!on}. *)

val ring_sink : Event.t Ring.t -> sink
val jsonl_sink : out_channel -> sink
(** One [Event.to_json] object per line. *)

type recording = {
  events : Event.t list;  (** oldest-first; the ring's surviving suffix *)
  dropped : int;
      (** events overwritten on ring overflow — non-zero means [events] is
          an incomplete (suffix-only) view of the run *)
}

val with_recording : ?capacity:int -> (unit -> 'a) -> 'a * recording
(** [with_recording f] runs [f] with tracing enabled into a fresh in-memory
    ring (default capacity 1,000,000 events) and returns [f ()]'s result
    together with the recorded events and the overflow drop count, restoring
    the previous tracer state afterwards (also on exceptions). *)

val with_jsonl : file:string -> (unit -> 'a) -> 'a
(** Run with tracing enabled into a JSONL file, restoring tracer state and
    closing the file afterwards. *)
