(** The global tracer: a typed event stream with pluggable sinks.

    Off by default. Instrumentation sites are guarded by {!on} (one ref load
    and branch), and the guard is also false while tracing is enabled but no
    sink is subscribed — the disabled path costs ~nothing, so benchmark
    numbers are unaffected (verified by [bench/check_overhead.ml]).

    The tracer is process-global: the repository runs one deterministic
    single-threaded simulation at a time, so instrumentation sites do not
    thread a handle through every constructor. [Simnet.Net.create] installs
    its simulated clock here; events emitted outside any simulation carry
    time 0. *)

type sink = Event.t -> unit

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val on : unit -> bool
(** True when tracing is enabled {e and} at least one sink is subscribed.
    Guard every [emit] call site with this so argument construction is
    skipped when tracing is off. *)

val subscribe : sink -> int
(** Register a sink; returns an id for {!unsubscribe}. *)

val unsubscribe : int -> unit

val set_clock : (unit -> float) -> unit
(** Install the simulated clock used to stamp events emitted via {!emit}. *)

val set_sampling : Sampling.t option -> unit
(** Install (or clear, with [None]) an emit-time sampler. It runs inside
    the hot path only — the disabled-path cost model is unchanged — and
    drops events before any sink sees them. The effective rates are
    recorded in binary trace headers (see {!with_file}); JSONL traces have
    no header, so sampled JSONL traces carry no rate metadata. *)

val sampling : unit -> Sampling.t option

val set_run_meta : (string * string) list -> unit
(** Install descriptive run metadata (seed, cluster size, ...) for binary
    trace headers. [Simnet.Net.create] calls this with its parameters; the
    most recent call before the first traced event wins. *)

val run_meta : unit -> (string * string) list

val emit : node:int -> Event.kind -> unit
(** Emit an event stamped with the installed clock. No-op unless {!on}. *)

val emit_at : time:float -> node:int -> Event.kind -> unit
(** Emit with an explicit timestamp (used by the simulator, which knows its
    own clock). No-op unless {!on}. *)

val ring_sink : Event.t Ring.t -> sink
val jsonl_sink : out_channel -> sink
(** One [Event.to_json] object per line. *)

type recording = {
  events : Event.t list;  (** oldest-first; the ring's surviving suffix *)
  dropped : int;
      (** events overwritten on ring overflow — non-zero means [events] is
          an incomplete (suffix-only) view of the run *)
  dropped_by_kind : (string * int) list;
      (** the overflow losses broken down per event kind (sorted by kind
          name; empty when [dropped = 0]) — the input for choosing
          per-kind sampling policies *)
}

val with_recording : ?capacity:int -> (unit -> 'a) -> 'a * recording
(** [with_recording f] runs [f] with tracing enabled into a fresh in-memory
    ring (default capacity 1,000,000 events) and returns [f ()]'s result
    together with the recorded events and the overflow drop count, restoring
    the previous tracer state afterwards (also on exceptions). *)

val with_file : file:string -> format:Tracebin.format -> (unit -> 'a) -> 'a
(** Run with tracing enabled into a trace file of the given format,
    restoring tracer state and closing the file afterwards. For
    [Tracebin.Bin] the header records {!run_meta} and the sampler's rates
    as of the first traced event. *)

val with_jsonl : file:string -> (unit -> 'a) -> 'a
(** [with_file ~format:Tracebin.Jsonl]. *)
