(* Adaptive per-kind trace sampling, applied at emit time.

   Deterministic and RNG-free: each sampleable kind keeps its first [head]
   occurrences, then 1 in [rate] by occurrence counter — except message
   send/deliver pairs, which are decided by [send_id mod rate] so a kept
   send always keeps its matching deliver (the causal DAG stays pairable
   under sampling).

   Fault, election, reconfiguration and invariant-input events are never
   sampled: they are low-volume and the analyzer's correctness checks
   (single-leader-per-ballot, decided-prefix-monotonic), stall windows,
   leader timelines and health detectors depend on seeing all of them. The
   sampleable set is the data path, which dominates million-event runs:
   proposed, accepted, batch_flush, send, deliver. *)

type policy = { head : int; rate : int }

(* The emit-path state is countdown-based so [keep] does no division for
   counter-sampled kinds (the per-event cost sits inside every traced hot
   path): [head_left] is the remaining always-keep budget and [until_next]
   the events to drop before the next kept one. *)
type t = {
  policies : policy option array;  (* indexed by Event.kind_tag *)
  head_left : int array;
  until_next : int array;
}

let sampleable_tags =
  (* proposed, accepted, batch_flush, send, deliver *)
  [ 8; 6; 9; 18; 19 ]

let init policies =
  let head_left = Array.make Event.num_kinds 0 in
  Array.iteri
    (fun tag p ->
      match p with Some { head; _ } -> head_left.(tag) <- head | None -> ())
    policies;
  { policies; head_left; until_next = Array.make Event.num_kinds 0 }

let of_policies ps =
  let policies = Array.make Event.num_kinds None in
  List.iter
    (fun (name, p) ->
      if p.rate < 1 then invalid_arg "Sampling: rate must be >= 1";
      let tag = ref (-1) in
      for i = 0 to Event.num_kinds - 1 do
        if String.equal (Event.tag_name i) name then tag := i
      done;
      if !tag < 0 then
        invalid_arg (Printf.sprintf "Sampling: unknown kind %S" name);
      policies.(!tag) <- Some p)
    ps;
  init policies

let create ?(head = 1_000) ~rate () =
  if rate < 1 then invalid_arg "Sampling.create: rate must be >= 1";
  let policies = Array.make Event.num_kinds None in
  List.iter
    (fun tag -> policies.(tag) <- Some { head; rate })
    sampleable_tags;
  init policies

let keep t kind =
  match kind with
  | Event.Msg_send { send_id; _ } | Event.Msg_deliver { send_id; _ } -> (
      (* Pairs are decided by send_id alone, so a kept send always keeps
         its matching deliver. *)
      match t.policies.(Event.kind_tag kind) with
      | None -> true
      | Some { head; rate } -> send_id < head || send_id mod rate = 0)
  | k -> (
      let tag = Event.kind_tag k in
      match t.policies.(tag) with
      | None -> true
      | Some { rate; _ } ->
          (* Keep the first [head], then 1 in [rate], by countdown — the
             same kept set as an occurrence counter with a mod, without
             the per-event division. *)
          if t.head_left.(tag) > 0 then begin
            t.head_left.(tag) <- t.head_left.(tag) - 1;
            true
          end
          else if t.until_next.(tag) = 0 then begin
            t.until_next.(tag) <- rate - 1;
            true
          end
          else begin
            t.until_next.(tag) <- t.until_next.(tag) - 1;
            false
          end)

let rates t =
  let acc = ref [] in
  for tag = Event.num_kinds - 1 downto 0 do
    match t.policies.(tag) with
    | Some { rate; _ } when rate > 1 ->
        acc := (Event.tag_name tag, rate) :: !acc
    | Some _ | None -> ()
  done;
  !acc

let meta_prefix = "sample."

let to_meta t =
  List.map (fun (k, r) -> (meta_prefix ^ k, string_of_int r)) (rates t)

let rates_of_meta meta =
  List.filter_map
    (fun (k, v) ->
      let p = meta_prefix in
      let pl = String.length p in
      if String.length k > pl && String.equal (String.sub k 0 pl) p then
        match int_of_string_opt v with
        | Some r when r > 1 ->
            Some (String.sub k pl (String.length k - pl), r)
        | Some _ | None -> None
      else None)
    meta
