(** Deterministic offline trace analyzer.

    Consumes a recorded event stream (in-memory list or JSONL file) and
    produces a report: per-node leader timelines, stall windows,
    commit-latency percentiles with the span phase breakdown, causal-DAG
    statistics, the causal critical path of the slowest decided entries,
    health alerts / recovery episodes and invariant results.

    The report is a pure function of the input events: two runs over the
    same trace render byte-identical text and JSON (this is asserted by the
    determinism gate), so reports can be diffed and regression-gated. *)

type stall = { stall_from : float; stall_until : float option }

type commit_stats = {
  spans_total : int;
  spans_decided : int;
  p50 : float;
  p90 : float;
  p99 : float;
  max_ms : float;
  mean_queueing : float;
  mean_replication : float;
  mean_commit : float;
}

type hop = { hop_time : float; hop_node : int; hop_desc : string }

type path = {
  path_log_idx : int;
  path_total_ms : float;
  path_hops : hop list;
}

type report = {
  n : int;
  events : int;
  ring_dropped : int;
      (** events lost to ring overflow before analysis (satellite: surfaced
          so an overflowed trace is distinguishable from a complete one) *)
  t_start : float;
  t_end : float;
  by_kind : (string * int) list;  (** sorted by kind name *)
  drops_by_reason : (string * int) list;
  leader_timeline : (int * (float * Event.ballot) list) list;
      (** per node: chronological (time, observed leader) changes *)
  stall_ms : float;  (** threshold used for {!field-stalls} *)
  stalls : stall list;
  commit : commit_stats option;  (** [None] when nothing was decided *)
  causal_edges : int;
  unmatched_sends : int;
  orphan_delivers : int;
  lamport : (unit, string) result;
  critical_paths : path list;  (** up to 3 slowest decided entries *)
  health_alerts : Health.alert list;
  recoveries : Health.recovery list;
  invariants : (string * (unit, Invariant.violation) result) list;
}

val run : ?health:Health.config -> ?ring_dropped:int -> Event.t list -> report
(** Analyze an in-memory event stream (in emission order). [health]
    defaults to {!Health.default_config} with a 50 ms election timeout; a
    config whose [n] is smaller than the cluster inferred from the trace is
    grown to that size. [ring_dropped] (default 0) is reported as
    {!field-ring_dropped}. *)

val of_file : ?health:Health.config -> string -> (report, string) result
(** Analyze a JSONL trace file (as written by [--trace] / [opx chaos]).
    Blank lines are skipped; a malformed line fails with its line number. *)

val pp : Format.formatter -> report -> unit
(** Human-readable fixed-precision rendering; byte-stable per report. *)

val to_string : report -> string

val to_json : report -> Bench_report.Json.t
(** Machine-readable form of the same report. *)
