(** Deterministic trace analyzer.

    Consumes a recorded event stream (in-memory list, trace file or stdin)
    and produces a report: per-node leader timelines, stall windows,
    commit-latency percentiles with the span phase breakdown, causal-DAG
    statistics, the causal critical path of the slowest decided entries,
    health alerts / recovery episodes and invariant results.

    The analysis is a single incremental fold with bounded state
    ({!Stream}), so arbitrarily long traces are handled in constant memory
    — and {!run} is that same fold with the bounds lifted, preserving the
    historical whole-list semantics bit for bit. The report is a pure
    function of the input events: two runs over the same trace render
    byte-identical text and JSON (this is asserted by the determinism
    gate), so reports can be diffed and regression-gated. *)

type stall = { stall_from : float; stall_until : float option }

type commit_stats = {
  spans_total : int;
  spans_decided : int;
  p50 : float;
  p90 : float;
  p99 : float;
  max_ms : float;
  mean_queueing : float;
  mean_replication : float;
  mean_commit : float;
}

type hop = { hop_time : float; hop_node : int; hop_desc : string }

type path = {
  path_log_idx : int;
  path_total_ms : float;
  path_hops : hop list;
}

type report = {
  n : int;
  events : int;
  ring_dropped : int;
      (** events lost to ring overflow before analysis (satellite: surfaced
          so an overflowed trace is distinguishable from a complete one) *)
  ring_dropped_by_kind : (string * int) list;
      (** the overflow losses per event kind, sorted by kind name — empty
          when nothing was dropped (and for file traces, which have no
          ring) *)
  sampling : (string * int) list;
      (** emit-time sampling rates (kind, keep 1 in k) read from a binary
          trace header; empty for unsampled or JSONL traces. Counts for
          these kinds are post-sampling. *)
  t_start : float;
  t_end : float;
  by_kind : (string * int) list;  (** sorted by kind name *)
  drops_by_reason : (string * int) list;
  leader_timeline : (int * (float * Event.ballot) list) list;
      (** per node: chronological (time, observed leader) changes *)
  stall_ms : float;  (** threshold used for {!field-stalls} *)
  stalls : stall list;
  commit : commit_stats option;  (** [None] when nothing was decided *)
  causal_edges : int;
  unmatched_sends : int;
  orphan_delivers : int;
  lamport : (unit, string) result;
  critical_paths : path list;  (** up to 3 slowest decided entries *)
  health_alerts : Health.alert list;
  recoveries : Health.recovery list;
  invariants : (string * (unit, Invariant.violation) result) list;
}

(** The incremental analyzer: feed events one at a time, take the report at
    the end. Live state is bounded — O(in-flight spans + open sends +
    window) — independent of trace length:

    - spans are finalised as the decided watermark passes them, with
      running sums for the phase means and an exact latency store that
      degrades to a log-bucket percentile sketch past [exact_limit];
    - causal pairing and clock checks keep only open sends, capped at
      [causal_cap] (oldest evicted and counted unmatched);
    - critical paths come from a ring of the last [window] events;
    - health detectors and invariant monitors are already incremental.

    With the bounds at their defaults, any trace that fits within them
    (fewer than [window] events, etc.) produces exactly the {!run} report;
    beyond them only the percentiles and critical paths degrade, and
    deterministically so. *)
module Stream : sig
  type t

  val create :
    ?health:Health.config ->
    ?n_hint:int ->
    ?window:int ->
    ?exact_limit:int ->
    ?causal_cap:int ->
    unit ->
    t
  (** [n_hint] is the cluster size when known up front (fixes the quorum
      and health suspect-matrix size); without it both are derived from the
      running maximum node id (matrix sized for 64 nodes). [window]
      (default 65536) bounds the critical-path event ring, [exact_limit]
      (default 65536) the exact commit-latency store, [causal_cap] (default
      262144) the open-send tables. *)

  val observe : t -> Event.t -> unit
  (** Usable directly as a {!Trace.sink} for online analysis. *)

  val finish :
    ?ring_dropped:int ->
    ?ring_dropped_by_kind:(string * int) list ->
    ?sampling:(string * int) list ->
    t ->
    report
  (** Take the report. [finish] does not mutate the stream. *)
end

val run :
  ?health:Health.config ->
  ?ring_dropped:int ->
  ?ring_dropped_by_kind:(string * int) list ->
  ?sampling:(string * int) list ->
  Event.t list ->
  report
(** Analyze an in-memory event stream (in emission order). [health]
    defaults to {!Health.default_config} with a 50 ms election timeout; a
    config whose [n] is smaller than the cluster inferred from the trace is
    grown to that size. [ring_dropped] (default 0) is reported as
    {!field-ring_dropped}. Equivalent to a {!Stream} fold with the bounds
    lifted. *)

val of_file : ?health:Health.config -> string -> (report, string) result
(** Analyze a trace file, JSONL or binary (auto-detected). Two passes: the
    first infers the cluster size and reads the header, the second streams
    the events — memory stays bounded regardless of trace length. Blank
    JSONL lines are skipped; a malformed line (or binary record) fails with
    its position. *)

val of_channel : ?health:Health.config -> in_channel -> (report, string) result
(** Single-pass bounded-memory analysis of a non-seekable stream (stdin,
    pipes), either format. The cluster size is inferred on the fly, so the
    quorum used for early spans can lag until every node has appeared in
    the stream; the health suspect matrix covers nodes 0..63. *)

val pp : Format.formatter -> report -> unit
(** Human-readable fixed-precision rendering; byte-stable per report.
    Sampling and per-kind ring-drop sections appear only when non-empty, so
    reports over unsampled, non-overflowed traces render exactly as before
    these fields existed. *)

val to_string : report -> string

val to_json : report -> Bench_report.Json.t
(** Machine-readable form of the same report (schema_version 2: adds
    [ring_dropped_by_kind] and [sampling]). *)
