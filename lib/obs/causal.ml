(* Happens-before structure of a trace. Simnet stamps every transmission
   with a network-unique send id and a Lamport clock, so a recorded stream
   pairs into (send, deliver) edges: the causal DAG is those edges plus each
   node's local event order. Everything here is a pure function of the event
   list, so analyses are deterministic. *)

type edge = {
  send_id : int;
  src : int;
  dst : int;
  size : int;
  sent_at : float;
  delivered_at : float;
}

type stats = {
  edges : int;  (* matched (send, deliver) pairs *)
  unmatched_sends : int;  (* sent but never delivered: dropped or in flight *)
  orphan_delivers : int;  (* delivered without a recorded send (ring loss) *)
}

let pair events =
  let sends : (int, int * float * int) Hashtbl.t = Hashtbl.create 1024 in
  let edges_rev = ref [] in
  let n_edges = ref 0 in
  let orphans = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Msg_send { dst = _; size; send_id; lc = _ } ->
          Hashtbl.replace sends send_id (e.node, e.time, size)
      | Event.Msg_deliver { src; size; send_id; lc = _ } -> (
          match Hashtbl.find_opt sends send_id with
          | Some (src', sent_at, _) ->
              Hashtbl.remove sends send_id;
              incr n_edges;
              edges_rev :=
                {
                  send_id;
                  src = (if src >= 0 then src else src');
                  dst = e.node;
                  size;
                  sent_at;
                  delivered_at = e.time;
                }
                :: !edges_rev
          | None -> incr orphans)
      (* Event-stream filter: only message events carry causal stamps. *)
      | _ [@lint.allow "D4"] -> ())
    events;
  let stats =
    {
      edges = !n_edges;
      unmatched_sends = Hashtbl.length sends;
      orphan_delivers = !orphans;
    }
  in
  (List.rev !edges_rev, stats)

(* Streaming pairing: the analyzer's report only needs the edge/unmatched/
   orphan counts, so the incremental form keeps just the open-send table.
   The table is capped: when full, the oldest open send is evicted and
   counted as unmatched — in a healthy run a send is matched within one
   network delay, so the live set is O(messages in flight), and the cap only
   bites on pathological traces. Eviction order comes from a FIFO queue of
   send ids with lazy deletion (matched ids still sit in the queue and are
   skipped when popped). With [cap = max_int] the counts are identical to
   {!pair}'s. *)
module Pairing = struct
  type t = {
    sends : (int, float) Hashtbl.t;  (* send_id -> sent_at *)
    order : int Queue.t;  (* insertion order, lazily pruned *)
    cap : int;
    mutable edges : int;
    mutable orphans : int;
    mutable evicted : int;
  }

  let create ?(cap = max_int) () =
    if cap <= 0 then invalid_arg "Causal.Pairing.create: cap must be positive";
    {
      sends = Hashtbl.create 1024;
      order = Queue.create ();
      cap;
      edges = 0;
      orphans = 0;
      evicted = 0;
    }

  let rec evict_one t =
    match Queue.take_opt t.order with
    | None -> ()
    | Some id ->
        if Hashtbl.mem t.sends id then begin
          Hashtbl.remove t.sends id;
          t.evicted <- t.evicted + 1
        end
        else evict_one t (* stale queue entry: already matched *)

  let observe t (e : Event.t) =
    match e.kind with
    | Event.Msg_send { send_id; _ } ->
        if
          Hashtbl.length t.sends >= t.cap && not (Hashtbl.mem t.sends send_id)
        then evict_one t;
        Hashtbl.replace t.sends send_id e.time;
        Queue.push send_id t.order
    | Event.Msg_deliver { send_id; _ } -> (
        match Hashtbl.find_opt t.sends send_id with
        | Some _ ->
            Hashtbl.remove t.sends send_id;
            t.edges <- t.edges + 1
        | None -> t.orphans <- t.orphans + 1)
    (* Event-stream filter: only message events carry causal stamps. *)
    | _ [@lint.allow "D4"] -> ()

  let edges t = t.edges

  let unmatched_sends t = Hashtbl.length t.sends + t.evicted
  (* Open sends still live plus those evicted by the cap — both were sent
     and never seen delivered. *)

  let orphan_delivers t = t.orphans
  let stats t = { edges = t.edges; unmatched_sends = unmatched_sends t;
                  orphan_delivers = t.orphans }
end

(* Streaming Lamport check: same rules as [lamport_consistent], latched on
   the first violation. The open-send clock table shares the capped-FIFO
   shape of [Pairing] — an evicted send makes its (late) delivery check a
   no-op, which only weakens detection, never fabricates a violation. *)
module Clock_check = struct
  type t = {
    sends : (int, int) Hashtbl.t;  (* send_id -> lamport clock at send *)
    order : int Queue.t;
    cap : int;
    last_lc : (int, int) Hashtbl.t;  (* node -> last message clock *)
    mutable error : string option;  (* first violation wins *)
  }

  let create ?(cap = max_int) () =
    if cap <= 0 then
      invalid_arg "Causal.Clock_check.create: cap must be positive";
    {
      sends = Hashtbl.create 1024;
      order = Queue.create ();
      cap;
      last_lc = Hashtbl.create 16;
      error = None;
    }

  let rec evict_one t =
    match Queue.take_opt t.order with
    | None -> ()
    | Some id ->
        if Hashtbl.mem t.sends id then Hashtbl.remove t.sends id
        else evict_one t

  let check_node_order t (e : Event.t) lc =
    (match Hashtbl.find_opt t.last_lc e.node with
    | Some prev when lc <= prev ->
        if Option.is_none t.error then
          t.error <-
            Some
              (Printf.sprintf
                 "node %d clock not increasing: %d then %d at t=%.3f" e.node
                 prev lc e.time)
    | Some _ | None -> ());
    Hashtbl.replace t.last_lc e.node lc

  let observe t (e : Event.t) =
    if Option.is_none t.error then
      match e.kind with
      | Event.Msg_send { send_id; lc; _ } ->
          if
            Hashtbl.length t.sends >= t.cap
            && not (Hashtbl.mem t.sends send_id)
          then evict_one t;
          Hashtbl.replace t.sends send_id lc;
          Queue.push send_id t.order;
          check_node_order t e lc
      | Event.Msg_deliver { send_id; lc; _ } -> (
          (match Hashtbl.find_opt t.sends send_id with
          | Some slc when lc <= slc ->
              t.error <-
                Some
                  (Printf.sprintf
                     "deliver #%d at node %d has lc %d <= send lc %d" send_id
                     e.node lc slc)
          | Some _ | None -> ());
          match t.error with
          | Some _ -> ()
          | None -> check_node_order t e lc)
      (* Event-stream filter: only message events carry clocks. *)
      | _ [@lint.allow "D4"] -> ()

  let result t = match t.error with None -> Ok () | Some m -> Error m
end

(* Lamport consistency: each delivery's clock exceeds its send's clock, and
   each node's message clocks are strictly increasing in stream order. A
   violation means the stamping in simnet (or a hand-edited trace) broke the
   happens-before order. *)
let lamport_consistent events =
  let sends : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let last_lc : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let check_node_order (e : Event.t) lc =
    match Hashtbl.find_opt last_lc e.node with
    | Some prev when lc <= prev ->
        Error
          (Printf.sprintf
             "node %d clock not increasing: %d then %d at t=%.3f" e.node prev
             lc e.time)
    | _ ->
        Hashtbl.replace last_lc e.node lc;
        Ok ()
  in
  let rec scan = function
    | [] -> Ok ()
    | (e : Event.t) :: rest -> (
        match e.kind with
        | Event.Msg_send { send_id; lc; _ } -> (
            Hashtbl.replace sends send_id lc;
            match check_node_order e lc with
            | Ok () -> scan rest
            | Error _ as err -> err)
        | Event.Msg_deliver { send_id; lc; _ } -> (
            let send_ok =
              match Hashtbl.find_opt sends send_id with
              | Some slc when lc <= slc ->
                  Error
                    (Printf.sprintf
                       "deliver #%d at node %d has lc %d <= send lc %d"
                       send_id e.node lc slc)
              | Some _ | None -> Ok ()
            in
            match send_ok with
            | Error _ as err -> err
            | Ok () -> (
                match check_node_order e lc with
                | Ok () -> scan rest
                | Error _ as err -> err))
        (* Event-stream filter: only message events carry clocks. *)
        | _ [@lint.allow "D4"] -> scan rest)
  in
  scan events

(* Causal predecessor walk. The predecessor of a delivery is its matching
   send; the predecessor of anything else is the previous event on the same
   node. Walking back from a [Decided] event therefore yields the chain of
   events that gated the decision — the critical path. The walk stops when
   [stop] holds at the current event, or after [max_len] hops. Returns
   indices into [events], oldest first (the target is last). *)
let critical_path ?(max_len = 100_000) (events : Event.t array) ~target ~stop
    =
  let n = Array.length events in
  if target < 0 || target >= n then invalid_arg "Causal.critical_path";
  (* prev_same_node.(i): index of the latest j < i with events.(j).node =
     events.(i).node, or -1. *)
  let prev_same_node = Array.make n (-1) in
  let last_seen : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i (e : Event.t) ->
      (match Hashtbl.find_opt last_seen e.node with
      | Some j -> prev_same_node.(i) <- j
      | None -> ());
      Hashtbl.replace last_seen e.node i)
    events;
  let send_index : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  Array.iteri
    (fun i (e : Event.t) ->
      match e.kind with
      | Event.Msg_send { send_id; _ } -> Hashtbl.replace send_index send_id i
      (* Only sends anchor cross-node hops. *)
      | _ [@lint.allow "D4"] -> ())
    events;
  let rec walk acc i steps =
    let acc = i :: acc in
    if steps >= max_len || stop events.(i) then acc
    else
      let pred =
        match events.(i).kind with
        | Event.Msg_deliver { send_id; _ } -> (
            match Hashtbl.find_opt send_index send_id with
            | Some j when j < i -> j
            | Some _ | None -> prev_same_node.(i))
        (* Local events chain to the node's previous event. *)
        | _ [@lint.allow "D4"] -> prev_same_node.(i)
      in
      if pred < 0 then acc else walk acc pred (steps + 1)
  in
  walk [] target 0
