(* Online liveness health monitoring. A [Health.t] consumes the live event
   stream (subscribe [observe h] as a tracer sink, or feed it a recorded
   list) and maintains streaming detectors:

   - stall watchdog: the cluster-wide decided index has not advanced for
     more than [stall_ms] of simulated time;
   - leader-churn meter: at least [churn_threshold] observed leader changes
     within a sliding [churn_window_ms] window;
   - partition-suspect matrix: [suspect_after] consecutive drops on a
     directed (src, dst) pair with no delivery in between;
   - recovery episodes: from the first fault event (crash / link cut /
     chaos fault) to the first leadership reaction ("detect") and the first
     post-fault advance of the decided index ("recover").

   All state is driven by simulated event timestamps, never wall clock, so
   replaying the same trace yields the same alerts. *)

type config = {
  n : int;
  stall_ms : float;
  churn_window_ms : float;
  churn_threshold : int;
  suspect_after : int;
}

let default_config ~n ~election_timeout_ms =
  {
    n;
    (* The paper's yardstick: recovery within ~4 election timeouts. A decide
       gap beyond that is a liveness incident, not normal re-election. *)
    stall_ms = 4.0 *. election_timeout_ms;
    churn_window_ms = 20.0 *. election_timeout_ms;
    churn_threshold = 4;
    suspect_after = 8;
  }

type edge = Trigger | Clear

type alert = { at : float; edge : edge; what : string }

type recovery = {
  fault_at : float;
  fault : string;
  faults : int;  (* total fault events absorbed into this episode *)
  detect_at : float option;
  decide_at : float option;
}

type t = {
  cfg : config;
  mutable alerts_rev : alert list;
  (* Stall watchdog. *)
  mutable started : bool;
  mutable last_advance : float;
  mutable decided_max : int;
  mutable stalled : bool;
  (* Churn meter: recent Leader_changed times, oldest first. *)
  churn : float Queue.t;
  mutable churn_active : bool;
  (* Partition-suspect matrix. *)
  consec_drops : int array array;
  suspect : bool array array;
  (* Recovery episodes. *)
  mutable episode : recovery option;
  mutable recoveries_rev : recovery list;
}

let create cfg =
  if cfg.n <= 0 then invalid_arg "Health.create: n must be positive";
  {
    cfg;
    alerts_rev = [];
    started = false;
    last_advance = 0.0;
    decided_max = 0;
    stalled = false;
    churn = Queue.create ();
    churn_active = false;
    consec_drops = Array.make_matrix cfg.n cfg.n 0;
    suspect = Array.make_matrix cfg.n cfg.n false;
    episode = None;
    recoveries_rev = [];
  }

let alert t ~at ~edge what = t.alerts_rev <- { at; edge; what } :: t.alerts_rev

let in_range t i = i >= 0 && i < t.cfg.n

let note_fault t ~at fault =
  match t.episode with
  | None ->
      t.episode <-
        Some { fault_at = at; fault; faults = 1; detect_at = None; decide_at = None }
  | Some ep -> t.episode <- Some { ep with faults = ep.faults + 1 }

let note_detect t ~at =
  match t.episode with
  | Some ep when Option.is_none ep.detect_at ->
      t.episode <- Some { ep with detect_at = Some at }
  | Some _ | None -> ()

let note_decide_advance t ~at =
  (match t.episode with
  | Some ep ->
      (* First post-fault advance closes the episode. With no detection
         observed the fault turned out benign for liveness (the leader's
         quorum survived); the episode still records that. *)
      t.recoveries_rev <- { ep with decide_at = Some at } :: t.recoveries_rev;
      t.episode <- None
  | None -> ());
  if t.stalled then begin
    t.stalled <- false;
    alert t ~at ~edge:Clear
      (Printf.sprintf "stall (gap %.1f ms)" (at -. t.last_advance))
  end;
  t.last_advance <- at

let prune_churn t ~at =
  while
    (not (Queue.is_empty t.churn))
    && Queue.peek t.churn < at -. t.cfg.churn_window_ms
  do
    ignore (Queue.pop t.churn)
  done

let observe t (e : Event.t) =
  let at = e.time in
  if not t.started then begin
    t.started <- true;
    t.last_advance <- at
  end;
  (* Kind-specific detectors. *)
  (match e.kind with
  | Event.Decided { decided_idx; _ } ->
      if decided_idx > t.decided_max then begin
        t.decided_max <- decided_idx;
        note_decide_advance t ~at
      end
  | Event.Leader_changed _ ->
      note_detect t ~at;
      prune_churn t ~at;
      Queue.add at t.churn;
      if Queue.length t.churn >= t.cfg.churn_threshold && not t.churn_active
      then begin
        t.churn_active <- true;
        alert t ~at ~edge:Trigger
          (Printf.sprintf "leader churn (%d changes in %.0f ms)"
             (Queue.length t.churn) t.cfg.churn_window_ms)
      end
  | Event.Ballot_increment _ | Event.Prepare_round _ | Event.Leader_elected _
    ->
      note_detect t ~at
  | Event.Crashed -> note_fault t ~at (Printf.sprintf "crash(%d)" e.node)
  | Event.Link_cut { a; b } ->
      note_fault t ~at (Printf.sprintf "link_cut(%d,%d)" a b)
  | Event.Chaos_fault { fault; _ } -> note_fault t ~at fault
  | Event.Msg_drop { src; dst; _ } ->
      if in_range t src && in_range t dst then begin
        let c = t.consec_drops.(src).(dst) + 1 in
        t.consec_drops.(src).(dst) <- c;
        if c = t.cfg.suspect_after && not t.suspect.(src).(dst) then begin
          t.suspect.(src).(dst) <- true;
          alert t ~at ~edge:Trigger
            (Printf.sprintf "partition suspect %d->%d (%d consecutive drops)"
               src dst c)
        end
      end
  | Event.Msg_deliver { src; _ } ->
      if in_range t src && in_range t e.node then begin
        t.consec_drops.(src).(e.node) <- 0;
        if t.suspect.(src).(e.node) then begin
          t.suspect.(src).(e.node) <- false;
          alert t ~at ~edge:Clear
            (Printf.sprintf "partition suspect %d->%d" src e.node)
        end
      end
  (* Event-stream filter: remaining kinds feed no detector. *)
  | _ [@lint.allow "D4"] -> ());
  (* Time-driven checks run on every event. *)
  if (not t.stalled) && at -. t.last_advance > t.cfg.stall_ms then begin
    t.stalled <- true;
    alert t ~at ~edge:Trigger
      (Printf.sprintf "stall (no decide for %.1f ms)" (at -. t.last_advance))
  end;
  if t.churn_active then begin
    prune_churn t ~at;
    if Queue.length t.churn < t.cfg.churn_threshold then begin
      t.churn_active <- false;
      alert t ~at ~edge:Clear "leader churn"
    end
  end

let alerts t = List.rev t.alerts_rev

let recoveries t =
  let closed = List.rev t.recoveries_rev in
  match t.episode with None -> closed | Some ep -> closed @ [ ep ]

let suspects t =
  let acc = ref [] in
  for src = t.cfg.n - 1 downto 0 do
    for dst = t.cfg.n - 1 downto 0 do
      if t.suspect.(src).(dst) then acc := (src, dst) :: !acc
    done
  done;
  !acc

let detect_latency (r : recovery) =
  match r.detect_at with Some d -> Some (d -. r.fault_at) | None -> None

let recovery_latency (r : recovery) =
  match r.decide_at with Some d -> Some (d -. r.fault_at) | None -> None

let run cfg events =
  let t = create cfg in
  List.iter (observe t) events;
  t
