(** Happens-before structure of a trace.

    Simnet stamps every transmission with a network-unique send id and a
    Lamport clock (see {!Event.kind}), so a recorded event stream pairs into
    (send, deliver) edges; together with each node's local event order they
    form the run's causal DAG. All functions are pure over the event list
    and deterministic. *)

type edge = {
  send_id : int;
  src : int;
  dst : int;
  size : int;
  sent_at : float;
  delivered_at : float;
}

type stats = {
  edges : int;  (** matched (send, deliver) pairs *)
  unmatched_sends : int;  (** sent but never delivered: dropped or in flight *)
  orphan_delivers : int;
      (** delivered without a recorded send — evidence of ring overflow *)
}

val pair : Event.t list -> edge list * stats
(** Pair [Msg_send]/[Msg_deliver] events by send id. Edges are returned in
    delivery order. *)

val lamport_consistent : Event.t list -> (unit, string) result
(** Check that every delivery's Lamport clock exceeds its send's, and that
    each node's message clocks strictly increase in stream order. *)

val critical_path :
  ?max_len:int ->
  Event.t array ->
  target:int ->
  stop:(Event.t -> bool) ->
  int list
(** Walk causal predecessors backwards from [events.(target)]: a delivery
    hops to its matching send, anything else to the node's previous event.
    Stops when [stop] holds at the current event (inclusive) or after
    [max_len] hops (default 100_000). Returns indices oldest-first, ending
    with [target]. *)
