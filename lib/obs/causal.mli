(** Happens-before structure of a trace.

    Simnet stamps every transmission with a network-unique send id and a
    Lamport clock (see {!Event.kind}), so a recorded event stream pairs into
    (send, deliver) edges; together with each node's local event order they
    form the run's causal DAG. All functions are pure over the event list
    and deterministic. *)

type edge = {
  send_id : int;
  src : int;
  dst : int;
  size : int;
  sent_at : float;
  delivered_at : float;
}

type stats = {
  edges : int;  (** matched (send, deliver) pairs *)
  unmatched_sends : int;  (** sent but never delivered: dropped or in flight *)
  orphan_delivers : int;
      (** delivered without a recorded send — evidence of ring overflow *)
}

val pair : Event.t list -> edge list * stats
(** Pair [Msg_send]/[Msg_deliver] events by send id. Edges are returned in
    delivery order. *)

(** Streaming (send, deliver) pairing with bounded memory: only the open
    sends are live, and their table is capped — when full, the oldest open
    send is evicted and counted as unmatched. With [cap = max_int] the
    counts equal {!pair}'s exactly. *)
module Pairing : sig
  type t

  val create : ?cap:int -> unit -> t
  (** [cap] bounds the open-send table (default unbounded). Raises
      [Invalid_argument] if [cap <= 0]. *)

  val observe : t -> Event.t -> unit
  val edges : t -> int
  val unmatched_sends : t -> int
  (** Open sends still live plus sends evicted by the cap. *)

  val orphan_delivers : t -> int
  val stats : t -> stats
end

(** Streaming Lamport-clock check, latched on the first violation. Error
    strings match {!lamport_consistent}. The open-send clock table is
    capped like {!Pairing}'s; eviction can only weaken detection (a late
    delivery of an evicted send goes unchecked), never fabricate a
    violation. *)
module Clock_check : sig
  type t

  val create : ?cap:int -> unit -> t
  val observe : t -> Event.t -> unit
  val result : t -> (unit, string) result
end

val lamport_consistent : Event.t list -> (unit, string) result
(** Check that every delivery's Lamport clock exceeds its send's, and that
    each node's message clocks strictly increase in stream order. *)

val critical_path :
  ?max_len:int ->
  Event.t array ->
  target:int ->
  stop:(Event.t -> bool) ->
  int list
(** Walk causal predecessors backwards from [events.(target)]: a delivery
    hops to its matching send, anything else to the node's previous event.
    Stops when [stop] holds at the current event (inclusive) or after
    [max_len] hops (default 100_000). Returns indices oldest-first, ending
    with [target]. *)
