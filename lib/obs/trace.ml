(* The global tracer. A single process runs one simulation at a time (the
   whole repository is single-threaded and deterministic), so the tracer is
   process-global: instrumentation sites do not thread a handle through every
   constructor.

   Cost model: every instrumentation site is guarded by [on ()], a single
   ref load and branch. [hot] is true only when tracing is both enabled and
   at least one sink is subscribed, so "enabled but unsubscribed" costs the
   same as disabled — this is what bench/check_overhead.ml verifies. *)

type sink = Event.t -> unit

let enabled = ref false
let sinks : (int * sink) list ref = ref []
let hot = ref false
let next_id = ref 0
let clock : (unit -> float) ref = ref (fun () -> 0.0)
let refresh () = hot := !enabled && not (List.is_empty !sinks)

let set_enabled b =
  enabled := b;
  refresh ()

let is_enabled () = !enabled
let[@inline] on () = !hot

let subscribe f =
  incr next_id;
  sinks := (!next_id, f) :: !sinks;
  refresh ();
  !next_id

let unsubscribe id =
  sinks := List.filter (fun (i, _) -> i <> id) !sinks;
  refresh ()

let set_clock f = clock := f

let emit_at ~time ~node kind =
  if !hot then begin
    let e = { Event.time; node; kind } in
    (* Sink cost is attributed to [obs/sink] when a profile is open, so
       "how much does tracing itself cost" shows up in attribution trees. *)
    if Profile.on () then
      Profile.wrap "obs/sink" (fun () -> List.iter (fun (_, s) -> s e) !sinks)
    else List.iter (fun (_, s) -> s e) !sinks
  end

let emit ~node kind = if !hot then emit_at ~time:(!clock ()) ~node kind

let ring_sink ring : sink = fun e -> Ring.push ring e

let jsonl_sink oc : sink =
 fun e ->
  output_string oc (Event.to_json e);
  output_char oc '\n'

type recording = { events : Event.t list; dropped : int }

let with_recording ?(capacity = 1_000_000) f =
  let ring = Ring.create ~capacity in
  let id = subscribe (ring_sink ring) in
  let was = !enabled in
  set_enabled true;
  let finish () =
    unsubscribe id;
    set_enabled was
  in
  match f () with
  | v ->
      finish ();
      (v, { events = Ring.to_list ring; dropped = Ring.dropped ring })
  | exception e ->
      finish ();
      raise e

let with_jsonl ~file f =
  let oc = open_out file in
  let id = subscribe (jsonl_sink oc) in
  let was = !enabled in
  set_enabled true;
  let finish () =
    unsubscribe id;
    set_enabled was;
    close_out oc
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e
