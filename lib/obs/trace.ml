(* The global tracer. A single process runs one simulation at a time (the
   whole repository is single-threaded and deterministic), so the tracer is
   process-global: instrumentation sites do not thread a handle through every
   constructor.

   Cost model: every instrumentation site is guarded by [on ()], a single
   ref load and branch. [hot] is true only when tracing is both enabled and
   at least one sink is subscribed, so "enabled but unsubscribed" costs the
   same as disabled — this is what bench/check_overhead.ml verifies. The
   sampler (when installed) runs inside the hot path only, after the guard,
   so the disabled path is untouched. *)

type sink = Event.t -> unit

let enabled = ref false
let sinks : (int * sink) list ref = ref []
let hot = ref false
let next_id = ref 0
let clock : (unit -> float) ref = ref (fun () -> 0.0)
let sampler : Sampling.t option ref = ref None
let meta : (string * string) list ref = ref []

(* The sink chain, precomposed at (un)subscribe time: the common case is a
   single sink, and calling it directly keeps the per-event dispatch to
   one indirect call instead of a list walk. *)
let chain : sink ref = ref (fun _ -> ())

let refresh () =
  hot := !enabled && not (List.is_empty !sinks);
  chain :=
    match !sinks with
    | [] -> fun _ -> ()
    | [ (_, s) ] -> s
    | l -> fun e -> List.iter (fun (_, s) -> s e) l

let set_enabled b =
  enabled := b;
  refresh ()

let is_enabled () = !enabled
let[@inline] on () = !hot

let subscribe f =
  incr next_id;
  sinks := (!next_id, f) :: !sinks;
  refresh ();
  !next_id

let unsubscribe id =
  sinks := List.filter (fun (i, _) -> i <> id) !sinks;
  refresh ()

let set_clock f = clock := f
let set_sampling s = sampler := s
let sampling () = !sampler
let set_run_meta m = meta := m
let run_meta () = !meta

let dispatch e =
  (* Sink cost is attributed to [obs/sink] when a profile is open, so
     "how much does tracing itself cost" shows up in attribution trees. *)
  if Profile.on () then Profile.wrap "obs/sink" (fun () -> !chain e)
  else !chain e

let emit_at ~time ~node kind =
  if !hot then begin
    match !sampler with
    | Some s when not (Sampling.keep s kind) -> ()
    | Some _ | None -> dispatch { Event.time; node; kind }
  end

(* The sampling decision runs before the clock is read: on a sampled-out
   event (the common case at high rates) the site pays only the guard,
   the kind construction and the [keep] countdown. *)
let emit ~node kind =
  if !hot then begin
    match !sampler with
    | Some s when not (Sampling.keep s kind) -> ()
    | Some _ | None -> dispatch { Event.time = !clock (); node; kind }
  end

let ring_sink ring : sink = fun e -> Ring.push ring e

let jsonl_sink oc : sink =
 fun e ->
  output_string oc (Event.to_json e);
  output_char oc '\n'

type recording = {
  events : Event.t list;
  dropped : int;
  dropped_by_kind : (string * int) list;
}

let with_recording ?(capacity = 1_000_000) f =
  let ring = Ring.create ~capacity in
  let drops : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let sink e =
    match Ring.push_evict ring e with
    | None -> ()
    | Some old ->
        let k = Event.kind_name old.Event.kind in
        Hashtbl.replace drops k
          (1 + Option.value (Hashtbl.find_opt drops k) ~default:0)
  in
  let id = subscribe sink in
  let was = !enabled in
  set_enabled true;
  let finish () =
    unsubscribe id;
    set_enabled was
  in
  match f () with
  | v ->
      finish ();
      ( v,
        {
          events = Ring.to_list ring;
          dropped = Ring.dropped ring;
          dropped_by_kind =
            Replog.Det.sorted_bindings ~compare_key:String.compare drops;
        } )
  | exception e ->
      finish ();
      raise e

let header_meta () =
  !meta @ match !sampler with None -> [] | Some s -> Sampling.to_meta s

let with_sink ~make_sink ~close f =
  let id = subscribe (make_sink ()) in
  let was = !enabled in
  set_enabled true;
  let finish () =
    unsubscribe id;
    set_enabled was;
    close ()
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let with_file ~file ~format f =
  match (format : Tracebin.format) with
  | Tracebin.Jsonl ->
      let oc = open_out file in
      with_sink ~make_sink:(fun () -> jsonl_sink oc) ~close:(fun () -> close_out oc) f
  | Tracebin.Bin ->
      let oc = open_out_bin file in
      (* The writer (and thus the header) is created on the first event, so
         run metadata installed by [Simnet.Net.create] inside [f] makes it
         into the header of the run it describes. *)
      let w : Tracebin.writer option ref = ref None in
      let get_writer () =
        match !w with
        | Some writer -> writer
        | None ->
            let writer =
              Tracebin.writer ~meta:(header_meta ()) (output_string oc)
            in
            w := Some writer;
            writer
      in
      let close () =
        Tracebin.flush (get_writer ());
        close_out oc
      in
      with_sink
        ~make_sink:(fun () -> fun e -> Tracebin.write (get_writer ()) e)
        ~close f

let with_jsonl ~file f = with_file ~file ~format:Tracebin.Jsonl f
