(* Structured trace events. Protocol-agnostic: ballots are (n, prio, pid)
   triples so Raft terms and VR views map onto them as (term, 0, leader). *)

type ballot = { n : int; prio : int; pid : int }

type kind =
  | Ballot_increment of ballot
  | Leader_elected of ballot
  | Leader_changed of ballot
  | Prepare_round of { b : ballot; log_idx : int; decided_idx : int }
  | Promise_sent of { b : ballot; log_idx : int; decided_idx : int }
  | Accept_sent of { b : ballot; start_idx : int; count : int }
  | Accepted_idx of { b : ballot; log_idx : int }
  | Decided of { b : ballot; decided_idx : int }
  | Proposed of { log_idx : int; cmd_id : int }
  | Batch_flush of { entries : int; followers : int; cap : int; trigger : string }
  | Cap_change of { cap_from : int; cap_to : int }
  | Session_drop of { peer : int; session : int }
  | Session_up of { peer : int; session : int }
  | Link_cut of { a : int; b : int }
  | Link_heal of { a : int; b : int }
  | Crashed
  | Recovered
  | Reconfig of { config_id : int; milestone : string }
  | Msg_send of { dst : int; size : int; send_id : int; lc : int }
  | Msg_deliver of { src : int; size : int; send_id : int; lc : int }
  | Msg_drop of {
      src : int;
      dst : int;
      reason : string;
      session : int;
      send_id : int;
    }
  | Snapshot_taken of { idx : int; bytes : int }
  | Snapshot_installed of { idx : int; bytes : int }
  | Log_trimmed of { upto : int; entries : int }
  | Chaos_fault of { step : int; fault : string }
  | Chaos_invoke of { client : int; op_id : int; op : string }
  | Chaos_response of { client : int; op_id : int; result : string }
  | Chaos_timeout of { client : int; op_id : int }

type t = { time : float; node : int; kind : kind }

let kind_name = function
  | Ballot_increment _ -> "ballot_increment"
  | Leader_elected _ -> "leader_elected"
  | Leader_changed _ -> "leader_changed"
  | Prepare_round _ -> "prepare"
  | Promise_sent _ -> "promise"
  | Accept_sent _ -> "accept"
  | Accepted_idx _ -> "accepted"
  | Decided _ -> "decide"
  | Proposed _ -> "proposed"
  | Batch_flush _ -> "batch_flush"
  | Cap_change _ -> "cap_change"
  | Session_drop _ -> "session_drop"
  | Session_up _ -> "session_up"
  | Link_cut _ -> "link_cut"
  | Link_heal _ -> "link_heal"
  | Crashed -> "crash"
  | Recovered -> "recover"
  | Reconfig _ -> "reconfig"
  | Msg_send _ -> "send"
  | Msg_deliver _ -> "deliver"
  | Msg_drop _ -> "drop"
  | Snapshot_taken _ -> "snapshot_taken"
  | Snapshot_installed _ -> "snapshot_installed"
  | Log_trimmed _ -> "log_trimmed"
  | Chaos_fault _ -> "chaos_fault"
  | Chaos_invoke _ -> "chaos_invoke"
  | Chaos_response _ -> "chaos_response"
  | Chaos_timeout _ -> "chaos_timeout"

(* Stable numeric tag per constructor, in declaration order. The binary
   codec (Tracebin) and the sampler index per-kind state by this tag; a new
   constructor must be appended (never renumbered) so old binary traces
   keep decoding. *)
let kind_tag = function
  | Ballot_increment _ -> 0
  | Leader_elected _ -> 1
  | Leader_changed _ -> 2
  | Prepare_round _ -> 3
  | Promise_sent _ -> 4
  | Accept_sent _ -> 5
  | Accepted_idx _ -> 6
  | Decided _ -> 7
  | Proposed _ -> 8
  | Batch_flush _ -> 9
  | Cap_change _ -> 10
  | Session_drop _ -> 11
  | Session_up _ -> 12
  | Link_cut _ -> 13
  | Link_heal _ -> 14
  | Crashed -> 15
  | Recovered -> 16
  | Reconfig _ -> 17
  | Msg_send _ -> 18
  | Msg_deliver _ -> 19
  | Msg_drop _ -> 20
  | Snapshot_taken _ -> 21
  | Snapshot_installed _ -> 22
  | Log_trimmed _ -> 23
  | Chaos_fault _ -> 24
  | Chaos_invoke _ -> 25
  | Chaos_response _ -> 26
  | Chaos_timeout _ -> 27

let num_kinds = 28

let tag_name = function
  | 0 -> "ballot_increment"
  | 1 -> "leader_elected"
  | 2 -> "leader_changed"
  | 3 -> "prepare"
  | 4 -> "promise"
  | 5 -> "accept"
  | 6 -> "accepted"
  | 7 -> "decide"
  | 8 -> "proposed"
  | 9 -> "batch_flush"
  | 10 -> "cap_change"
  | 11 -> "session_drop"
  | 12 -> "session_up"
  | 13 -> "link_cut"
  | 14 -> "link_heal"
  | 15 -> "crash"
  | 16 -> "recover"
  | 17 -> "reconfig"
  | 18 -> "send"
  | 19 -> "deliver"
  | 20 -> "drop"
  | 21 -> "snapshot_taken"
  | 22 -> "snapshot_installed"
  | 23 -> "log_trimmed"
  | 24 -> "chaos_fault"
  | 25 -> "chaos_invoke"
  | 26 -> "chaos_response"
  | 27 -> "chaos_timeout"
  | t -> invalid_arg (Printf.sprintf "Event.tag_name: unknown tag %d" t)

let pp_ballot ppf b =
  Format.fprintf ppf "(n=%d,prio=%d,pid=%d)" b.n b.prio b.pid

(* Minimal JSON string escaping; reasons and milestones are short ASCII
   identifiers, but escape defensively anyway. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_ballot b =
  Printf.sprintf {|{"n":%d,"prio":%d,"pid":%d}|} b.n b.prio b.pid

(* One JSON object per event (no trailing newline); see README for the
   schema. Every object has "t" (simulated ms), "node" and "kind"; the other
   fields depend on the kind. *)
let to_json e =
  let head = Printf.sprintf {|"t":%.3f,"node":%d,"kind":"%s"|} e.time e.node
      (kind_name e.kind)
  in
  let rest =
    match e.kind with
    | Ballot_increment b | Leader_elected b | Leader_changed b ->
        Printf.sprintf {|"ballot":%s|} (json_ballot b)
    | Prepare_round { b; log_idx; decided_idx }
    | Promise_sent { b; log_idx; decided_idx } ->
        Printf.sprintf {|"ballot":%s,"log_idx":%d,"decided_idx":%d|}
          (json_ballot b) log_idx decided_idx
    | Accept_sent { b; start_idx; count } ->
        Printf.sprintf {|"ballot":%s,"start_idx":%d,"count":%d|}
          (json_ballot b) start_idx count
    | Accepted_idx { b; log_idx } ->
        Printf.sprintf {|"ballot":%s,"log_idx":%d|} (json_ballot b) log_idx
    | Decided { b; decided_idx } ->
        Printf.sprintf {|"ballot":%s,"decided_idx":%d|} (json_ballot b)
          decided_idx
    | Proposed { log_idx; cmd_id } ->
        Printf.sprintf {|"log_idx":%d,"cmd_id":%d|} log_idx cmd_id
    | Batch_flush { entries; followers; cap; trigger } ->
        Printf.sprintf {|"entries":%d,"followers":%d,"cap":%d,"trigger":"%s"|}
          entries followers cap (escape trigger)
    | Cap_change { cap_from; cap_to } ->
        Printf.sprintf {|"cap_from":%d,"cap_to":%d|} cap_from cap_to
    | Session_drop { peer; session } | Session_up { peer; session } ->
        Printf.sprintf {|"peer":%d,"session":%d|} peer session
    | Link_cut { a; b } | Link_heal { a; b } ->
        Printf.sprintf {|"a":%d,"b":%d|} a b
    | Crashed | Recovered -> ""
    | Reconfig { config_id; milestone } ->
        Printf.sprintf {|"config_id":%d,"milestone":"%s"|} config_id
          (escape milestone)
    | Msg_send { dst; size; send_id; lc } ->
        Printf.sprintf {|"dst":%d,"size":%d,"send_id":%d,"lc":%d|} dst size
          send_id lc
    | Msg_deliver { src; size; send_id; lc } ->
        Printf.sprintf {|"src":%d,"size":%d,"send_id":%d,"lc":%d|} src size
          send_id lc
    | Msg_drop { src; dst; reason; session; send_id } ->
        Printf.sprintf
          {|"src":%d,"dst":%d,"reason":"%s","session":%d,"send_id":%d|} src
          dst (escape reason) session send_id
    | Snapshot_taken { idx; bytes } | Snapshot_installed { idx; bytes } ->
        Printf.sprintf {|"idx":%d,"bytes":%d|} idx bytes
    | Log_trimmed { upto; entries } ->
        Printf.sprintf {|"upto":%d,"entries":%d|} upto entries
    | Chaos_fault { step; fault } ->
        Printf.sprintf {|"step":%d,"fault":"%s"|} step (escape fault)
    | Chaos_invoke { client; op_id; op } ->
        Printf.sprintf {|"client":%d,"op_id":%d,"op":"%s"|} client op_id
          (escape op)
    | Chaos_response { client; op_id; result } ->
        Printf.sprintf {|"client":%d,"op_id":%d,"result":"%s"|} client op_id
          (escape result)
    | Chaos_timeout { client; op_id } ->
        Printf.sprintf {|"client":%d,"op_id":%d|} client op_id
  in
  if rest = "" then Printf.sprintf "{%s}" head
  else Printf.sprintf "{%s,%s}" head rest

(* ------------------------------------------------------------------ *)
(* Parsing (the inverse of [to_json], used by the offline analyzer)    *)
(* ------------------------------------------------------------------ *)

module J = Bench_report.Json

let of_json line =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* j = J.of_string line in
  let int k =
    match J.member k j with
    | Some (J.Int i) -> Ok i
    | Some (J.Float f) -> Ok (int_of_float f)
    | _ -> Error (Printf.sprintf "missing int field %S" k)
  in
  let str k =
    match J.member k j with
    | Some (J.String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" k)
  in
  let num k =
    match J.member k j with
    | Some (J.Float f) -> Ok f
    | Some (J.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "missing number field %S" k)
  in
  let ballot () =
    match J.member "ballot" j with
    | Some (J.Obj _ as b) -> (
        match (J.member "n" b, J.member "prio" b, J.member "pid" b) with
        | Some (J.Int n), Some (J.Int prio), Some (J.Int pid) ->
            Ok { n; prio; pid }
        | _ -> Error "malformed ballot")
    | _ -> Error "missing ballot"
  in
  let* time = num "t" in
  let* node = int "node" in
  let* kind_s = str "kind" in
  let* kind =
    match kind_s with
    | "ballot_increment" ->
        let* b = ballot () in
        Ok (Ballot_increment b)
    | "leader_elected" ->
        let* b = ballot () in
        Ok (Leader_elected b)
    | "leader_changed" ->
        let* b = ballot () in
        Ok (Leader_changed b)
    | "prepare" ->
        let* b = ballot () in
        let* log_idx = int "log_idx" in
        let* decided_idx = int "decided_idx" in
        Ok (Prepare_round { b; log_idx; decided_idx })
    | "promise" ->
        let* b = ballot () in
        let* log_idx = int "log_idx" in
        let* decided_idx = int "decided_idx" in
        Ok (Promise_sent { b; log_idx; decided_idx })
    | "accept" ->
        let* b = ballot () in
        let* start_idx = int "start_idx" in
        let* count = int "count" in
        Ok (Accept_sent { b; start_idx; count })
    | "accepted" ->
        let* b = ballot () in
        let* log_idx = int "log_idx" in
        Ok (Accepted_idx { b; log_idx })
    | "decide" ->
        let* b = ballot () in
        let* decided_idx = int "decided_idx" in
        Ok (Decided { b; decided_idx })
    | "proposed" ->
        let* log_idx = int "log_idx" in
        let* cmd_id = int "cmd_id" in
        Ok (Proposed { log_idx; cmd_id })
    | "batch_flush" ->
        let* entries = int "entries" in
        let* followers = int "followers" in
        let* cap = int "cap" in
        let* trigger = str "trigger" in
        Ok (Batch_flush { entries; followers; cap; trigger })
    | "cap_change" ->
        let* cap_from = int "cap_from" in
        let* cap_to = int "cap_to" in
        Ok (Cap_change { cap_from; cap_to })
    | "session_drop" ->
        let* peer = int "peer" in
        let* session = int "session" in
        Ok (Session_drop { peer; session })
    | "session_up" ->
        let* peer = int "peer" in
        let* session = int "session" in
        Ok (Session_up { peer; session })
    | "link_cut" ->
        let* a = int "a" in
        let* b = int "b" in
        Ok (Link_cut { a; b })
    | "link_heal" ->
        let* a = int "a" in
        let* b = int "b" in
        Ok (Link_heal { a; b })
    | "crash" -> Ok Crashed
    | "recover" -> Ok Recovered
    | "reconfig" ->
        let* config_id = int "config_id" in
        let* milestone = str "milestone" in
        Ok (Reconfig { config_id; milestone })
    | "send" ->
        let* dst = int "dst" in
        let* size = int "size" in
        let* send_id = int "send_id" in
        let* lc = int "lc" in
        Ok (Msg_send { dst; size; send_id; lc })
    | "deliver" ->
        let* src = int "src" in
        let* size = int "size" in
        let* send_id = int "send_id" in
        let* lc = int "lc" in
        Ok (Msg_deliver { src; size; send_id; lc })
    | "drop" ->
        let* src = int "src" in
        let* dst = int "dst" in
        let* reason = str "reason" in
        let* session = int "session" in
        let* send_id = int "send_id" in
        Ok (Msg_drop { src; dst; reason; session; send_id })
    | "snapshot_taken" ->
        let* idx = int "idx" in
        let* bytes = int "bytes" in
        Ok (Snapshot_taken { idx; bytes })
    | "snapshot_installed" ->
        let* idx = int "idx" in
        let* bytes = int "bytes" in
        Ok (Snapshot_installed { idx; bytes })
    | "log_trimmed" ->
        let* upto = int "upto" in
        let* entries = int "entries" in
        Ok (Log_trimmed { upto; entries })
    | "chaos_fault" ->
        let* step = int "step" in
        let* fault = str "fault" in
        Ok (Chaos_fault { step; fault })
    | "chaos_invoke" ->
        let* client = int "client" in
        let* op_id = int "op_id" in
        let* op = str "op" in
        Ok (Chaos_invoke { client; op_id; op })
    | "chaos_response" ->
        let* client = int "client" in
        let* op_id = int "op_id" in
        let* result = str "result" in
        Ok (Chaos_response { client; op_id; result })
    | "chaos_timeout" ->
        let* client = int "client" in
        let* op_id = int "op_id" in
        Ok (Chaos_timeout { client; op_id })
    | other -> Error (Printf.sprintf "unknown kind %S" other)
  in
  Ok { time; node; kind }

let pp ppf e =
  Format.fprintf ppf "[%.3f] node %d %s" e.time e.node (kind_name e.kind)
