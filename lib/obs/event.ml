(* Structured trace events. Protocol-agnostic: ballots are (n, prio, pid)
   triples so Raft terms and VR views map onto them as (term, 0, leader). *)

type ballot = { n : int; prio : int; pid : int }

type kind =
  | Ballot_increment of ballot
  | Leader_elected of ballot
  | Leader_changed of ballot
  | Prepare_round of { b : ballot; log_idx : int; decided_idx : int }
  | Promise_sent of { b : ballot; log_idx : int; decided_idx : int }
  | Accept_sent of { b : ballot; start_idx : int; count : int }
  | Accepted_idx of { b : ballot; log_idx : int }
  | Decided of { b : ballot; decided_idx : int }
  | Session_drop of { peer : int; session : int }
  | Session_up of { peer : int; session : int }
  | Link_cut of { a : int; b : int }
  | Link_heal of { a : int; b : int }
  | Crashed
  | Recovered
  | Reconfig of { config_id : int; milestone : string }
  | Msg_send of { dst : int; size : int }
  | Msg_deliver of { src : int; size : int }
  | Msg_drop of { src : int; dst : int; reason : string }
  | Chaos_fault of { step : int; fault : string }
  | Chaos_invoke of { client : int; op_id : int; op : string }
  | Chaos_response of { client : int; op_id : int; result : string }
  | Chaos_timeout of { client : int; op_id : int }

type t = { time : float; node : int; kind : kind }

let kind_name = function
  | Ballot_increment _ -> "ballot_increment"
  | Leader_elected _ -> "leader_elected"
  | Leader_changed _ -> "leader_changed"
  | Prepare_round _ -> "prepare"
  | Promise_sent _ -> "promise"
  | Accept_sent _ -> "accept"
  | Accepted_idx _ -> "accepted"
  | Decided _ -> "decide"
  | Session_drop _ -> "session_drop"
  | Session_up _ -> "session_up"
  | Link_cut _ -> "link_cut"
  | Link_heal _ -> "link_heal"
  | Crashed -> "crash"
  | Recovered -> "recover"
  | Reconfig _ -> "reconfig"
  | Msg_send _ -> "send"
  | Msg_deliver _ -> "deliver"
  | Msg_drop _ -> "drop"
  | Chaos_fault _ -> "chaos_fault"
  | Chaos_invoke _ -> "chaos_invoke"
  | Chaos_response _ -> "chaos_response"
  | Chaos_timeout _ -> "chaos_timeout"

let pp_ballot ppf b =
  Format.fprintf ppf "(n=%d,prio=%d,pid=%d)" b.n b.prio b.pid

(* Minimal JSON string escaping; reasons and milestones are short ASCII
   identifiers, but escape defensively anyway. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_ballot b =
  Printf.sprintf {|{"n":%d,"prio":%d,"pid":%d}|} b.n b.prio b.pid

(* One JSON object per event (no trailing newline); see README for the
   schema. Every object has "t" (simulated ms), "node" and "kind"; the other
   fields depend on the kind. *)
let to_json e =
  let head = Printf.sprintf {|"t":%.3f,"node":%d,"kind":"%s"|} e.time e.node
      (kind_name e.kind)
  in
  let rest =
    match e.kind with
    | Ballot_increment b | Leader_elected b | Leader_changed b ->
        Printf.sprintf {|"ballot":%s|} (json_ballot b)
    | Prepare_round { b; log_idx; decided_idx }
    | Promise_sent { b; log_idx; decided_idx } ->
        Printf.sprintf {|"ballot":%s,"log_idx":%d,"decided_idx":%d|}
          (json_ballot b) log_idx decided_idx
    | Accept_sent { b; start_idx; count } ->
        Printf.sprintf {|"ballot":%s,"start_idx":%d,"count":%d|}
          (json_ballot b) start_idx count
    | Accepted_idx { b; log_idx } ->
        Printf.sprintf {|"ballot":%s,"log_idx":%d|} (json_ballot b) log_idx
    | Decided { b; decided_idx } ->
        Printf.sprintf {|"ballot":%s,"decided_idx":%d|} (json_ballot b)
          decided_idx
    | Session_drop { peer; session } | Session_up { peer; session } ->
        Printf.sprintf {|"peer":%d,"session":%d|} peer session
    | Link_cut { a; b } | Link_heal { a; b } ->
        Printf.sprintf {|"a":%d,"b":%d|} a b
    | Crashed | Recovered -> ""
    | Reconfig { config_id; milestone } ->
        Printf.sprintf {|"config_id":%d,"milestone":"%s"|} config_id
          (escape milestone)
    | Msg_send { dst; size } -> Printf.sprintf {|"dst":%d,"size":%d|} dst size
    | Msg_deliver { src; size } ->
        Printf.sprintf {|"src":%d,"size":%d|} src size
    | Msg_drop { src; dst; reason } ->
        Printf.sprintf {|"src":%d,"dst":%d,"reason":"%s"|} src dst
          (escape reason)
    | Chaos_fault { step; fault } ->
        Printf.sprintf {|"step":%d,"fault":"%s"|} step (escape fault)
    | Chaos_invoke { client; op_id; op } ->
        Printf.sprintf {|"client":%d,"op_id":%d,"op":"%s"|} client op_id
          (escape op)
    | Chaos_response { client; op_id; result } ->
        Printf.sprintf {|"client":%d,"op_id":%d,"result":"%s"|} client op_id
          (escape result)
    | Chaos_timeout { client; op_id } ->
        Printf.sprintf {|"client":%d,"op_id":%d|} client op_id
  in
  if rest = "" then Printf.sprintf "{%s}" head
  else Printf.sprintf "{%s,%s}" head rest

let pp ppf e =
  Format.fprintf ppf "[%.3f] node %d %s" e.time e.node (kind_name e.kind)
