(** Online liveness health monitoring over the trace stream.

    A monitor consumes events one at a time — subscribe [observe h] as a
    tracer sink for live monitoring, or replay a recorded list with {!run}.
    Detectors are driven purely by simulated event timestamps, so the same
    trace always yields the same alerts. *)

type config = {
  n : int;  (** cluster size (for the suspect matrix) *)
  stall_ms : float;  (** decide-gap beyond which the cluster is stalled *)
  churn_window_ms : float;  (** sliding window for the churn meter *)
  churn_threshold : int;  (** leader changes within the window to alert *)
  suspect_after : int;  (** consecutive (src,dst) drops to suspect a link *)
}

val default_config : n:int -> election_timeout_ms:float -> config
(** Stall at 4 election timeouts (the paper's recovery yardstick), churn
    window of 20 timeouts with threshold 4, suspicion after 8 consecutive
    drops. *)

type edge = Trigger | Clear
type alert = { at : float; edge : edge; what : string }

type recovery = {
  fault_at : float;  (** first fault event of the episode *)
  fault : string;  (** its rendering, e.g. "crash(2)" or "link_cut(0,3)" *)
  faults : int;  (** fault events absorbed into the episode *)
  detect_at : float option;
      (** first leadership reaction (ballot increment, prepare, leader
          change) after the fault; [None] if none before the next decide *)
  decide_at : float option;
      (** first advance of the cluster-wide decided index after the fault;
          [None] if the trace ends with the episode still open *)
}

type t

val create : config -> t

val observe : t -> Event.t -> unit
(** Feed one event; usable directly as a {!Trace.sink}. *)

val run : config -> Event.t list -> t
(** Replay a recorded trace through a fresh monitor. *)

val alerts : t -> alert list
(** Trigger/clear edges in chronological order. *)

val recoveries : t -> recovery list
(** Closed episodes in order; a still-open episode is appended last with
    [decide_at = None]. *)

val suspects : t -> (int * int) list
(** Directed pairs currently under partition suspicion, lexicographic. *)

val detect_latency : recovery -> float option
(** [detect_at - fault_at]. *)

val recovery_latency : recovery -> float option
(** [decide_at - fault_at] — fault to first post-fault decide. *)
