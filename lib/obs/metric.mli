(** Metrics: counters, gauges and base-2 log-scale histograms behind a
    string-keyed registry. Recording is a few plain stores — cheap enough
    for hot paths.

    Histograms keep exact count/sum/sum-of-squares alongside the buckets, so
    [mean] and [stddev] are exact and compose with [Rsm.Metrics.Stats]
    (e.g. a t-based confidence interval from [count]/[mean]/[stddev]); only
    [percentile] is bucket-interpolated. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val create : unit -> t

  val observe : t -> float -> unit
  (** Record a sample. Negative samples are clamped to 0. *)

  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  (** [nan] when empty. *)

  val stddev : t -> float
  (** Sample standard deviation (n-1); 0 with fewer than two samples. *)

  val min_value : t -> float
  val max_value : t -> float

  val percentile : t -> p:float -> float
  (** Bucket-interpolated percentile, [p] in [0, 100]. [nan] when empty.
      Buckets are base-2 log-scale: bucket 0 holds [0, 1), bucket [i >= 1]
      holds [2^(i-1), 2^i). *)

  val buckets : t -> (float * int) list
  (** Non-empty buckets as (upper bound, count), ascending. *)
end

module Registry : sig
  type t

  val create : unit -> t

  val counter : t -> string -> Counter.t
  (** Find or create. The same name always returns the same metric. *)

  val gauge : t -> string -> Gauge.t
  val histogram : t -> string -> Histogram.t
  val clear : t -> unit

  val to_lines : t -> string list
  (** One human-readable line per metric, sorted by name. *)

  val default : t
  (** The process-wide registry the instrumented layers record into. *)
end
