(** Metrics: counters, gauges and base-2 log-scale histograms behind a
    string-keyed registry. Recording is a few plain stores — cheap enough
    for hot paths.

    Histograms keep exact count/sum/sum-of-squares alongside the buckets, so
    [mean] and [stddev] are exact and compose with [Rsm.Metrics.Stats]
    (e.g. a t-based confidence interval from [count]/[mean]/[stddev]); only
    [percentile] is bucket-interpolated. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
  val reset : t -> unit
end

module Histogram : sig
  type t

  val create : unit -> t

  val observe : t -> float -> unit
  (** Record a sample. Negative samples are clamped to 0. *)

  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  (** [nan] when empty. *)

  val stddev : t -> float
  (** Sample standard deviation (n-1); 0 with fewer than two samples. *)

  val min_value : t -> float
  val max_value : t -> float

  val percentile : t -> p:float -> float
  (** Bucket-interpolated percentile, [p] in [0, 100]. [nan] when empty.
      Buckets are base-2 log-scale: bucket 0 holds [0, 1), bucket [i >= 1]
      holds [2^(i-1), 2^i). *)

  val buckets : t -> (float * int) list
  (** Non-empty buckets as (upper bound, count), ascending. *)

  val reset : t -> unit
  (** Zero every bucket and the exact count/sum/min/max, as if freshly
      created — for per-window sampling without re-registering. *)
end

module Registry : sig
  type t

  val create : unit -> t

  val counter : t -> string -> Counter.t
  (** Find or create. The same name always returns the same metric. *)

  val gauge : t -> string -> Gauge.t
  val histogram : t -> string -> Histogram.t
  val clear : t -> unit

  val counters : t -> (string * Counter.t) list
  (** Every registered counter, sorted by key. All registry iteration is
      sorted: registration order depends on which code paths ran first,
      which would make rendered output nondeterministic. *)

  val gauges : t -> (string * Gauge.t) list
  (** Every registered gauge, sorted by key. *)

  val histograms : t -> (string * Histogram.t) list
  (** Every registered histogram, sorted by key. *)

  val to_lines : t -> string list
  (** One human-readable line per metric, sorted by name. *)

  val render_exposition : t -> string
  (** Prometheus-style text format: a [# TYPE] line per metric, counters
      and gauges as [name value], histograms as cumulative
      [name_bucket{le="..."}] lines plus [name_sum]/[name_count]. Metric
      names are sanitised to [[a-zA-Z0-9_:]] (dots become underscores) and
      the output is sorted by key, so it is byte-deterministic for
      deterministic metric values. *)

  val snapshot_json : t -> time:float -> Bench_report.Json.t
  (** One time-stamped snapshot of every metric (counters, gauges, and
      histogram count/sum/p50/p99/max), for periodic JSONL series. *)

  val default : t
  (** The process-wide registry the instrumented layers record into. *)
end
