(** Compact binary trace codec (container format v1, magic ["opxtrace1"]).

    A binary trace is the magic, a version, a list of header metadata
    pairs (run parameters and per-kind sampling rates, see the README
    "Trace format" schema v3 table), then one variable-length record per
    event: a kind tag byte, the time delta vs the previous event in
    integer microseconds (zigzag varint), the node, and the kind's fields
    as zigzag varints. Strings are interned on first occurrence, encoder
    and decoder growing their tables under the identical rule, so the
    table itself is never stored.

    Times round to integer microseconds — exactly the precision
    [Event.to_json] keeps (it prints milliseconds with [%.3f]), so a
    binary round trip and a JSONL round trip of the same event stream
    compare equal.

    Reading is format-agnostic: {!of_channel} / {!of_string} sniff the
    magic and fall back to JSONL, so every consumer (analyzer, converter,
    tests) accepts both formats from files, pipes and stdin (no seeking
    required). *)

type format = Jsonl | Bin

exception Decode_error of string
(** Raised on malformed binary input while constructing a source (the
    header is parsed eagerly) — event-level errors surface as [Error]
    results from {!iter} / {!fold} / {!events} instead. *)

(** {1 Encoding} *)

type writer

val writer :
  ?meta:(string * string) list -> ?max_interned:int -> (string -> unit) ->
  writer
(** [writer out] starts a binary trace: the header (with [meta], default
    empty) is encoded immediately. Encoded bytes are handed to [out] in
    chunks; call {!flush} when done. [max_interned] (default 65536) caps
    the string table; strings past the cap are written inline. *)

val write : writer -> Event.t -> unit

val flush : writer -> unit
(** Hand any buffered bytes to the writer's sink. Safe to call repeatedly;
    must be called before the underlying channel is closed. *)

val written_events : writer -> int
val written_bytes : writer -> int
(** Total encoded size including the header. *)

(** {1 Decoding} *)

type source
(** A buffered reader over a byte stream, with the format sniffed from the
    first bytes. For a binary trace the header is parsed eagerly, so
    {!meta} is available before any event is read. *)

val of_channel : in_channel -> source
(** Works on any channel, including stdin: detection uses buffering, not
    seeking. *)

val of_string : string -> source

val source_format : source -> format
val meta : source -> (string * string) list
(** Header metadata; [[]] for JSONL traces (which have no header). *)

val iter : source -> (Event.t -> unit) -> (unit, string) result
(** Decode every remaining event in stream order, in constant memory.
    On a malformed input returns [Error msg] — for JSONL the message is
    prefixed with the 1-based line number, for binary with the byte
    offset. Events already consumed before the error stand. *)

val fold :
  source -> init:'a -> f:('a -> Event.t -> 'a) -> ('a, string) result

val events : source -> (Event.t, string) result Seq.t
(** The same stream as a sequence; consuming it advances the source. After
    an [Error] element the sequence ends. *)
