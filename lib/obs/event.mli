(** Typed trace events emitted by the protocol layers and the simulated
    network. Protocol-agnostic: ballots are (n, prio, pid) triples, so Raft
    terms and VR views map onto them as (term, 0, leader).

    Events serialise to one JSON object per line (JSONL); the schema is
    documented in the README's "Trace format" section (schema v2: message
    events carry a cluster-unique [send_id] and a Lamport clock [lc], and
    drops carry the transport [session] they were judged against). *)

type ballot = { n : int; prio : int; pid : int }

type kind =
  | Ballot_increment of ballot
      (** A server bumped its own ballot (leader-takeover attempt). *)
  | Leader_elected of ballot  (** First leader this server observed. *)
  | Leader_changed of ballot  (** The observed leader changed. *)
  | Prepare_round of { b : ballot; log_idx : int; decided_idx : int }
      (** Leader-side: a Prepare was broadcast (or re-sent to a peer). *)
  | Promise_sent of { b : ballot; log_idx : int; decided_idx : int }
  | Accept_sent of { b : ballot; start_idx : int; count : int }
      (** Leader-side: an Accept/AcceptSync batch of [count] entries. *)
  | Accepted_idx of { b : ballot; log_idx : int }
      (** Follower-side: acknowledged the log up to [log_idx]. *)
  | Decided of { b : ballot; decided_idx : int }
      (** The decided index advanced to [decided_idx]. *)
  | Proposed of { log_idx : int; cmd_id : int }
      (** Leader-side: client command [cmd_id] was appended to the leader's
          log at [log_idx] (the moment a proposal enters the pipeline). *)
  | Batch_flush of { entries : int; followers : int; cap : int; trigger : string }
      (** The leader flushed [entries] buffered log entries to [followers]
          followers under Accept cap [cap]. Triggers: "size" (the eager
          size-triggered flush in [propose]) or "deadline" (the tick-driven
          deadline flush). *)
  | Cap_change of { cap_from : int; cap_to : int }
      (** The adaptive batching policy adjusted the per-Accept cap. *)
  | Session_drop of { peer : int; session : int }
      (** The transport session with [peer] was torn down (link loss). *)
  | Session_up of { peer : int; session : int }
      (** A new session with [peer] was established. *)
  | Link_cut of { a : int; b : int }  (** The [a -> b] direction went down. *)
  | Link_heal of { a : int; b : int }  (** The [a -> b] direction came up. *)
  | Crashed
  | Recovered
  | Reconfig of { config_id : int; milestone : string }
      (** Service-layer reconfiguration milestones: "stop-sign-proposed",
          "stop-sign-decided", "migration-start", "migration-done". *)
  | Msg_send of { dst : int; size : int; send_id : int; lc : int }
      (** [send_id] is unique per transmission within a simulation; [lc] is
          the sender's Lamport clock after the send tick. *)
  | Msg_deliver of { src : int; size : int; send_id : int; lc : int }
      (** [send_id] matches the corresponding [Msg_send]; [lc] is the
          receiver's Lamport clock after merging the sender's. *)
  | Msg_drop of {
      src : int;
      dst : int;
      reason : string;
      session : int;
      send_id : int;
    }
      (** Reasons: "src-down", "dst-down", "link-down", "stale-session".
          [session] is the session id the message was stamped with (so a
          "stale-session" drop can be tied to the [Session_drop] that
          invalidated it); [send_id] is [-1] when the message was refused at
          send time and no [Msg_send] was ever emitted. *)
  | Snapshot_taken of { idx : int; bytes : int }
      (** Compaction: the node materialised a state snapshot covering log
          indexes [0, idx); [bytes] is the encoded snapshot size. *)
  | Snapshot_installed of { idx : int; bytes : int }
      (** A lagging/recovering node installed a received snapshot covering
          [0, idx) and restarted its log there. *)
  | Log_trimmed of { upto : int; entries : int }
      (** The node discarded [entries] log entries below absolute index
          [upto] (indexing stays absolute; see [Replog.Log.trim]). *)
  | Chaos_fault of { step : int; fault : string }
      (** A chaos-campaign nemesis applied a fault ([fault] is its compact
          rendering, e.g. "crash(2)"); [node] is -1 for cluster-wide faults. *)
  | Chaos_invoke of { client : int; op_id : int; op : string }
      (** A chaos client submitted operation [op_id] to server [node]. *)
  | Chaos_response of { client : int; op_id : int; result : string }
      (** Operation [op_id] completed at its submission server. *)
  | Chaos_timeout of { client : int; op_id : int }
      (** The client abandoned [op_id]; its effect may still appear later. *)

type t = {
  time : float;  (** simulated milliseconds *)
  node : int;  (** emitting server (the receiver for [Msg_deliver]) *)
  kind : kind;
}

val kind_name : kind -> string

val kind_tag : kind -> int
(** Stable numeric tag per constructor (declaration order, [0 ..
    num_kinds - 1]). The binary codec and the sampler index per-kind state
    by this tag; new constructors are appended, never renumbered, so old
    binary traces keep decoding. *)

val num_kinds : int

val tag_name : int -> string
(** [kind_name] of the constructor with that {!kind_tag}. Raises
    [Invalid_argument] on an unknown tag. *)

val to_json : t -> string
(** One JSON object, no trailing newline. *)

val of_json : string -> (t, string) result
(** Parse one JSONL line back into an event (inverse of {!to_json}).
    Unknown kinds and missing fields are reported as [Error]. *)

val pp : Format.formatter -> t -> unit
val pp_ballot : Format.formatter -> ballot -> unit
