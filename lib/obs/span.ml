(* Proposal-lifecycle spans: one per log index, assembled from a recorded
   event stream. The lifecycle of entry [i] on the happy path is

     Chaos_invoke (client)            -> invoke_at    (when a client drove it)
     Proposed     (leader append)     -> proposed_at
     Accept_sent  covering i          -> first_accept_at
     Accepted_idx from quorum-1 peers -> quorum_ack_at
     Decided      with idx > i        -> decided_at
     Chaos_response (client)          -> applied_at

   giving the per-entry latency breakdown: queueing (proposed -> first
   Accept), replication (first Accept -> quorum ack) and commit (quorum ack
   -> decided). A re-proposal at the same index after a leader change
   replaces the span — the earlier entry was never decided there. *)

type t = {
  log_idx : int;
  cmd_id : int;  (* -1 for stop-signs *)
  leader : int;
  proposed_at : float;
  invoke_at : float option;
  first_accept_at : float option;
  quorum_ack_at : float option;
  decided_at : float option;
  applied_at : float option;
}

type building = {
  b_log_idx : int;
  b_cmd_id : int;
  b_leader : int;
  b_proposed_at : float;
  mutable b_acks : int;  (* distinct followers past this entry *)
  mutable b_first_accept_at : float option;
  mutable b_quorum_ack_at : float option;
  mutable b_decided_at : float option;
}

let total s =
  match s.decided_at with Some d -> Some (d -. s.proposed_at) | None -> None

let queueing s =
  match s.first_accept_at with
  | Some a -> Some (a -. s.proposed_at)
  | None -> None

let replication s =
  match (s.first_accept_at, s.quorum_ack_at) with
  | Some a, Some q -> Some (q -. a)
  | _, _ -> None

let commit s =
  match (s.quorum_ack_at, s.decided_at) with
  | Some q, Some d -> Some (d -. q)
  | _, _ -> None

(* ------------------------------------------------------------------ *)
(* Streaming tracker: O(active spans) memory                           *)
(* ------------------------------------------------------------------ *)

(* The batch [assemble] keeps every span until the end of the trace. The
   tracker instead finalises a span the moment the decided watermark passes
   its index and hands it back to the caller, so its live state is only the
   in-flight pipeline window (plus per-node ack watermarks). Decided spans
   come out in ascending log-index order — the same order the batch
   analyzer folds them in — so streaming aggregates (sums, percentiles)
   match the batch results exactly. *)

module Tracker = struct
  type closed = {
    c_log_idx : int;
    c_total : float;
    c_queueing : float option;
    c_replication : float option;
    c_commit : float option;
  }

  type t = {
    spans : (int, building) Hashtbl.t;
    acked : (int, int) Hashtbl.t;
    mutable decided_upto : int;
    mutable finalized : int;
  }

  let create () =
    {
      spans = Hashtbl.create 256;
      acked = Hashtbl.create 16;
      decided_upto = 0;
      finalized = 0;
    }

  let active t = Hashtbl.length t.spans
  let total_spans t = t.finalized + Hashtbl.length t.spans
  let decided_spans t = t.finalized

  (* [observe t ~quorum e] feeds one event; returns the spans this event
     finalised (decided), in ascending log-index order. [quorum] is the
     cluster quorum size — pass a constant when the cluster size is known
     up front (the batch path), or a running value for single-pass use. *)
  let observe t ~quorum (e : Event.t) : closed list =
    match e.kind with
    | Event.Proposed { log_idx; cmd_id } ->
        Hashtbl.replace t.spans log_idx
          {
            b_log_idx = log_idx;
            b_cmd_id = cmd_id;
            b_leader = e.node;
            b_proposed_at = e.time;
            b_acks = 0;
            b_first_accept_at = None;
            b_quorum_ack_at = None;
            b_decided_at = None;
          };
        []
    | Event.Accept_sent { start_idx; count; _ } ->
        for i = start_idx to start_idx + count - 1 do
          match Hashtbl.find_opt t.spans i with
          | Some s
            when s.b_leader = e.node && Option.is_none s.b_first_accept_at ->
              s.b_first_accept_at <- Some e.time
          | Some _ | None -> ()
        done;
        []
    | Event.Accepted_idx { log_idx = la; _ } ->
        let prev = Option.value (Hashtbl.find_opt t.acked e.node) ~default:0 in
        Hashtbl.replace t.acked e.node la;
        if la > prev then
          for i = prev to la - 1 do
            match Hashtbl.find_opt t.spans i with
            | Some s when e.node <> s.b_leader ->
                s.b_acks <- s.b_acks + 1;
                if s.b_acks >= quorum - 1 && Option.is_none s.b_quorum_ack_at
                then s.b_quorum_ack_at <- Some e.time
            | Some _ | None -> ()
          done;
        []
    | Event.Decided { decided_idx = d; _ } ->
        if d <= t.decided_upto then []
        else begin
          let closed = ref [] in
          for i = d - 1 downto t.decided_upto do
            match Hashtbl.find_opt t.spans i with
            | Some s ->
                Hashtbl.remove t.spans i;
                t.finalized <- t.finalized + 1;
                let q = s.b_quorum_ack_at in
                let a = s.b_first_accept_at in
                closed :=
                  {
                    c_log_idx = i;
                    c_total = e.time -. s.b_proposed_at;
                    c_queueing =
                      Option.map (fun at -> at -. s.b_proposed_at) a;
                    c_replication =
                      (match (a, q) with
                      | Some a, Some q -> Some (q -. a)
                      | _, _ -> None);
                    c_commit = Option.map (fun q -> e.time -. q) q;
                  }
                  :: !closed
            | None -> ()
          done;
          t.decided_upto <- d;
          !closed
        end
    (* Event-stream filter: other kinds do not shape proposal spans. *)
    | _ [@lint.allow "D4"] -> []
end

let assemble ~n events =
  let quorum = (n / 2) + 1 in
  let spans : (int, building) Hashtbl.t = Hashtbl.create 256 in
  (* Per-node cumulative acked length, to credit each (follower, entry)
     pair exactly once. *)
  let acked : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let decided_upto = ref 0 in
  let invokes : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let responses : (int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Proposed { log_idx; cmd_id } ->
          Hashtbl.replace spans log_idx
            {
              b_log_idx = log_idx;
              b_cmd_id = cmd_id;
              b_leader = e.node;
              b_proposed_at = e.time;
              b_acks = 0;
              b_first_accept_at = None;
              b_quorum_ack_at = None;
              b_decided_at = None;
            }
      | Event.Accept_sent { start_idx; count; _ } ->
          for i = start_idx to start_idx + count - 1 do
            match Hashtbl.find_opt spans i with
            | Some s
              when s.b_leader = e.node && Option.is_none s.b_first_accept_at
              ->
                s.b_first_accept_at <- Some e.time
            | Some _ | None -> ()
          done
      | Event.Accepted_idx { log_idx = la; _ } ->
          let prev = Option.value (Hashtbl.find_opt acked e.node) ~default:0 in
          Hashtbl.replace acked e.node la;
          (* A shrink means the follower's log was truncated during sync;
             nothing to credit. *)
          if la > prev then
            for i = prev to la - 1 do
              match Hashtbl.find_opt spans i with
              | Some s when e.node <> s.b_leader ->
                  s.b_acks <- s.b_acks + 1;
                  if
                    s.b_acks >= quorum - 1
                    && Option.is_none s.b_quorum_ack_at
                  then s.b_quorum_ack_at <- Some e.time
              | Some _ | None -> ()
            done
      | Event.Decided { decided_idx = d; _ } ->
          if d > !decided_upto then begin
            for i = !decided_upto to d - 1 do
              match Hashtbl.find_opt spans i with
              | Some s when Option.is_none s.b_decided_at ->
                  s.b_decided_at <- Some e.time
              | Some _ | None -> ()
            done;
            decided_upto := d
          end
      | Event.Chaos_invoke { op_id; _ } ->
          if not (Hashtbl.mem invokes op_id) then
            Hashtbl.replace invokes op_id e.time
      | Event.Chaos_response { op_id; _ } ->
          if not (Hashtbl.mem responses op_id) then
            Hashtbl.replace responses op_id e.time
      (* Event-stream filter: other kinds do not shape proposal spans. *)
      | _ [@lint.allow "D4"] -> ())
    events;
  List.map
    (fun (_, b) ->
      {
        log_idx = b.b_log_idx;
        cmd_id = b.b_cmd_id;
        leader = b.b_leader;
        proposed_at = b.b_proposed_at;
        invoke_at =
          (if b.b_cmd_id >= 0 then Hashtbl.find_opt invokes b.b_cmd_id
           else None);
        first_accept_at = b.b_first_accept_at;
        quorum_ack_at = b.b_quorum_ack_at;
        decided_at = b.b_decided_at;
        applied_at =
          (if b.b_cmd_id >= 0 then Hashtbl.find_opt responses b.b_cmd_id
           else None);
      })
    (Replog.Det.sorted_bindings ~compare_key:Int.compare spans)
