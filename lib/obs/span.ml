(* Proposal-lifecycle spans: one per log index, assembled from a recorded
   event stream. The lifecycle of entry [i] on the happy path is

     Chaos_invoke (client)            -> invoke_at    (when a client drove it)
     Proposed     (leader append)     -> proposed_at
     Accept_sent  covering i          -> first_accept_at
     Accepted_idx from quorum-1 peers -> quorum_ack_at
     Decided      with idx > i        -> decided_at
     Chaos_response (client)          -> applied_at

   giving the per-entry latency breakdown: queueing (proposed -> first
   Accept), replication (first Accept -> quorum ack) and commit (quorum ack
   -> decided). A re-proposal at the same index after a leader change
   replaces the span — the earlier entry was never decided there. *)

type t = {
  log_idx : int;
  cmd_id : int;  (* -1 for stop-signs *)
  leader : int;
  proposed_at : float;
  invoke_at : float option;
  first_accept_at : float option;
  quorum_ack_at : float option;
  decided_at : float option;
  applied_at : float option;
}

type building = {
  b_log_idx : int;
  b_cmd_id : int;
  b_leader : int;
  b_proposed_at : float;
  mutable b_acks : int;  (* distinct followers past this entry *)
  mutable b_first_accept_at : float option;
  mutable b_quorum_ack_at : float option;
  mutable b_decided_at : float option;
}

let total s =
  match s.decided_at with Some d -> Some (d -. s.proposed_at) | None -> None

let queueing s =
  match s.first_accept_at with
  | Some a -> Some (a -. s.proposed_at)
  | None -> None

let replication s =
  match (s.first_accept_at, s.quorum_ack_at) with
  | Some a, Some q -> Some (q -. a)
  | _, _ -> None

let commit s =
  match (s.quorum_ack_at, s.decided_at) with
  | Some q, Some d -> Some (d -. q)
  | _, _ -> None

let assemble ~n events =
  let quorum = (n / 2) + 1 in
  let spans : (int, building) Hashtbl.t = Hashtbl.create 256 in
  (* Per-node cumulative acked length, to credit each (follower, entry)
     pair exactly once. *)
  let acked : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let decided_upto = ref 0 in
  let invokes : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let responses : (int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Proposed { log_idx; cmd_id } ->
          Hashtbl.replace spans log_idx
            {
              b_log_idx = log_idx;
              b_cmd_id = cmd_id;
              b_leader = e.node;
              b_proposed_at = e.time;
              b_acks = 0;
              b_first_accept_at = None;
              b_quorum_ack_at = None;
              b_decided_at = None;
            }
      | Event.Accept_sent { start_idx; count; _ } ->
          for i = start_idx to start_idx + count - 1 do
            match Hashtbl.find_opt spans i with
            | Some s
              when s.b_leader = e.node && Option.is_none s.b_first_accept_at
              ->
                s.b_first_accept_at <- Some e.time
            | Some _ | None -> ()
          done
      | Event.Accepted_idx { log_idx = la; _ } ->
          let prev = Option.value (Hashtbl.find_opt acked e.node) ~default:0 in
          Hashtbl.replace acked e.node la;
          (* A shrink means the follower's log was truncated during sync;
             nothing to credit. *)
          if la > prev then
            for i = prev to la - 1 do
              match Hashtbl.find_opt spans i with
              | Some s when e.node <> s.b_leader ->
                  s.b_acks <- s.b_acks + 1;
                  if
                    s.b_acks >= quorum - 1
                    && Option.is_none s.b_quorum_ack_at
                  then s.b_quorum_ack_at <- Some e.time
              | Some _ | None -> ()
            done
      | Event.Decided { decided_idx = d; _ } ->
          if d > !decided_upto then begin
            for i = !decided_upto to d - 1 do
              match Hashtbl.find_opt spans i with
              | Some s when Option.is_none s.b_decided_at ->
                  s.b_decided_at <- Some e.time
              | Some _ | None -> ()
            done;
            decided_upto := d
          end
      | Event.Chaos_invoke { op_id; _ } ->
          if not (Hashtbl.mem invokes op_id) then
            Hashtbl.replace invokes op_id e.time
      | Event.Chaos_response { op_id; _ } ->
          if not (Hashtbl.mem responses op_id) then
            Hashtbl.replace responses op_id e.time
      (* Event-stream filter: other kinds do not shape proposal spans. *)
      | _ [@lint.allow "D4"] -> ())
    events;
  List.map
    (fun (_, b) ->
      {
        log_idx = b.b_log_idx;
        cmd_id = b.b_cmd_id;
        leader = b.b_leader;
        proposed_at = b.b_proposed_at;
        invoke_at =
          (if b.b_cmd_id >= 0 then Hashtbl.find_opt invokes b.b_cmd_id
           else None);
        first_accept_at = b.b_first_accept_at;
        quorum_ack_at = b.b_quorum_ack_at;
        decided_at = b.b_decided_at;
        applied_at =
          (if b.b_cmd_id >= 0 then Hashtbl.find_opt responses b.b_cmd_id
           else None);
      })
    (Replog.Det.sorted_bindings ~compare_key:Int.compare spans)
