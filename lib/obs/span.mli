(** Proposal-lifecycle spans, assembled offline from a recorded event
    stream: one span per log index, tracking a client command from the
    moment it enters the leader's log to the moment it is decided (and, for
    chaos-client commands, from invoke to applied).

    Timestamps are [None] when the corresponding milestone never appears in
    the trace — e.g. an entry proposed but never decided before a partition,
    or a trace that ends mid-flight. *)

type t = {
  log_idx : int;
  cmd_id : int;  (** command id, [-1] for stop-signs *)
  leader : int;  (** node that appended the entry *)
  proposed_at : float;  (** leader append ([Proposed] event) *)
  invoke_at : float option;  (** chaos-client submit, matched by cmd id *)
  first_accept_at : float option;  (** first [Accept_sent] covering it *)
  quorum_ack_at : float option;
      (** when the (quorum-1)-th distinct follower acknowledged past it *)
  decided_at : float option;  (** first decide advancing past it *)
  applied_at : float option;  (** chaos-client response, matched by cmd id *)
}

val assemble : n:int -> Event.t list -> t list
(** Build spans from a trace of an [n]-node cluster; sorted by [log_idx].
    A re-proposal at the same index (leader change) replaces the span. *)

val total : t -> float option
(** [decided_at - proposed_at]. *)

val queueing : t -> float option
(** [first_accept_at - proposed_at]: time buffered at the leader. *)

val replication : t -> float option
(** [quorum_ack_at - first_accept_at]: network + follower ack time. *)

val commit : t -> float option
(** [decided_at - quorum_ack_at]: quorum bookkeeping to decide. *)

(** Streaming span tracker with O(active spans) memory: a span is finalised
    (and returned to the caller) the moment the decided watermark passes its
    index, so only the in-flight pipeline window stays live. Decided spans
    are produced in ascending log-index order — the fold order of the batch
    analyzer — so streaming aggregates match batch results exactly. Unlike
    {!assemble}, the tracker does not match chaos-client invoke/response
    timestamps (those need whole-trace cmd-id joins); the analyzer's latency
    breakdown never used them. *)
module Tracker : sig
  type closed = {
    c_log_idx : int;
    c_total : float;  (** decided - proposed *)
    c_queueing : float option;  (** first accept - proposed *)
    c_replication : float option;  (** quorum ack - first accept *)
    c_commit : float option;  (** decided - quorum ack *)
  }

  type t

  val create : unit -> t

  val observe : t -> quorum:int -> Event.t -> closed list
  (** Feed one event; returns the spans this event finalised, ascending by
      log index. [quorum] is the cluster quorum size — a constant when the
      cluster size is known up front, or a running value for single-pass
      stdin use. *)

  val active : t -> int
  (** Spans proposed but not yet decided (the live state size). *)

  val total_spans : t -> int
  (** Finalised + active. *)

  val decided_spans : t -> int
end
