(* Deterministic synthetic trace generator for scale testing. Emits an
   open-loop replication workload — proposal/accept/ack/decide pipelines
   with periodic batching, faults, elections-in-place and compaction
   milestones — shaped like a real simnet trace: timestamps are integer
   microseconds (the codec's precision), Lamport clocks obey the standard
   merge rule, send ids pair up, Accepted_idx carries watermarks and
   ballots only ever belong to node 0, so every analyzer invariant holds.
   A fixed (seed, nodes, events) triple always produces the identical
   stream, so benches and tests over synthetic traces are reproducible. *)

exception Stop

type state = {
  nodes : int;
  limit : int;
  f : Event.t -> unit;
  mutable rng : int;
  mutable t_us : int;
  mutable emitted : int;
  lc : int array;
  mutable send_seq : int;
  mutable session : int;
  mutable round : int;  (* current ballot number, owned by node 0 *)
  mutable elections : int;
}

let rand st bound =
  st.rng <- ((st.rng * 25214903917) + 11) land 0x3FFFFFFFFFFFFFFF;
  (st.rng lsr 17) mod bound

let emit st ~node kind =
  if st.emitted >= st.limit then raise Stop;
  st.t_us <- st.t_us + 20 + rand st 60;
  st.f { Event.time = float_of_int st.t_us /. 1000.0; node; kind };
  st.emitted <- st.emitted + 1

let ballot st = { Event.n = st.round; prio = 0; pid = 0 }

(* One message hop with fresh send id and merged Lamport clocks. *)
let message st ~src ~dst ~size =
  st.send_seq <- st.send_seq + 1;
  let id = st.send_seq in
  st.lc.(src) <- st.lc.(src) + 1;
  emit st ~node:src
    (Event.Msg_send { dst; size; send_id = id; lc = st.lc.(src) });
  st.lc.(dst) <- max st.lc.(dst) st.lc.(src) + 1;
  emit st ~node:dst
    (Event.Msg_deliver { src; size; send_id = id; lc = st.lc.(dst) })

let replicate_entry st i =
  let b = ballot st in
  emit st ~node:0 (Event.Proposed { log_idx = i; cmd_id = i });
  if i mod 8 = 7 then
    emit st ~node:0
      (Event.Batch_flush
         {
           entries = 8;
           followers = st.nodes - 1;
           cap = 64;
           trigger = (if i mod 16 = 15 then "deadline" else "size");
         });
  emit st ~node:0 (Event.Accept_sent { b; start_idx = i; count = 1 });
  for fl = 1 to st.nodes - 1 do
    message st ~src:0 ~dst:fl ~size:(96 + rand st 64);
    emit st ~node:fl (Event.Accepted_idx { b; log_idx = i + 1 });
    message st ~src:fl ~dst:0 ~size:24
  done;
  for node = 0 to st.nodes - 1 do
    emit st ~node (Event.Decided { b; decided_idx = i + 1 })
  done

(* A fault episode: cut a link, drop traffic, re-prepare in place (same
   leader, higher ballot — keeping the single-leader-per-ballot invariant
   trivially true), heal, and let compaction run. *)
let fault_episode st i =
  let victim = 1 + rand st (st.nodes - 1) in
  emit st ~node:(-1)
    (Event.Chaos_fault
       { step = i; fault = Printf.sprintf "link_cut(0,%d)" victim });
  emit st ~node:(-1) (Event.Link_cut { a = 0; b = victim });
  emit st ~node:0 (Event.Session_drop { peer = victim; session = st.session });
  emit st ~node:0
    (Event.Msg_drop
       {
         src = 0;
         dst = victim;
         reason = "link-down";
         session = st.session;
         send_id = -1;
       });
  st.round <- st.round + 1;
  st.elections <- st.elections + 1;
  let b = ballot st in
  emit st ~node:0 (Event.Ballot_increment b);
  emit st ~node:0 (Event.Prepare_round { b; log_idx = i; decided_idx = i });
  for fl = 1 to st.nodes - 1 do
    if fl <> victim then
      emit st ~node:fl
        (Event.Promise_sent { b; log_idx = i; decided_idx = i })
  done;
  for node = 0 to st.nodes - 1 do
    emit st ~node
      (if st.elections = 1 then Event.Leader_elected b
       else Event.Leader_changed b)
  done;
  emit st ~node:(-1) (Event.Link_heal { a = 0; b = victim });
  st.session <- st.session + 1;
  emit st ~node:0 (Event.Session_up { peer = victim; session = st.session });
  if st.elections mod 3 = 0 then begin
    emit st ~node:victim Event.Crashed;
    emit st ~node:victim Event.Recovered;
    emit st ~node:victim (Event.Snapshot_installed { idx = i; bytes = 40 * i })
  end;
  emit st ~node:1 (Event.Snapshot_taken { idx = i; bytes = 40 * i });
  emit st ~node:1 (Event.Log_trimmed { upto = i; entries = 64 });
  emit st ~node:0 (Event.Cap_change { cap_from = 64; cap_to = 32 });
  emit st ~node:0 (Event.Cap_change { cap_from = 32; cap_to = 64 });
  emit st ~node:0
    (Event.Chaos_invoke { client = 0; op_id = i; op = "append" });
  emit st ~node:0
    (Event.Chaos_response { client = 0; op_id = i; result = "ok" })

let iter ?(nodes = 3) ?(seed = 1) ~events f =
  if nodes < 2 then invalid_arg "Synth.iter: need at least 2 nodes";
  if events < 0 then invalid_arg "Synth.iter: negative event count";
  let st =
    {
      nodes;
      limit = events;
      f;
      rng = (seed * 2862933555777941757) + 3037000493;
      t_us = 0;
      emitted = 0;
      lc = Array.make nodes 0;
      send_seq = 0;
      session = 1;
      round = 1;
      elections = 0;
    }
  in
  match
    let i = ref 0 in
    while true do
      replicate_entry st !i;
      if !i mod 997 = 996 then fault_episode st !i;
      incr i
    done
  with
  | () -> ()
  | exception Stop -> ()

let to_list ?nodes ?seed ~events () =
  let acc = ref [] in
  iter ?nodes ?seed ~events (fun e -> acc := e :: !acc);
  List.rev !acc
