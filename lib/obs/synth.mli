(** Deterministic synthetic trace generator for scale testing.

    Emits an open-loop replication workload — proposal / accept / ack /
    decide pipelines with periodic batching, fault episodes,
    elections-in-place and compaction milestones — shaped like a real
    simnet trace: integer-microsecond timestamps (the binary codec's
    precision), merge-rule Lamport clocks, pairable send ids, watermark
    [Accepted_idx] events and single-owner ballots, so every analyzer
    invariant holds over the output. A fixed (seed, nodes, events) triple
    always produces the identical stream. *)

val iter : ?nodes:int -> ?seed:int -> events:int -> (Event.t -> unit) -> unit
(** Generate exactly [events] events (truncating mid-pattern if needed) in
    timestamp order. [nodes] defaults to 3 (minimum 2), [seed] to 1. *)

val to_list : ?nodes:int -> ?seed:int -> events:int -> unit -> Event.t list
