(* A binary min-heap of timed events, tie-broken by insertion sequence so that
   simulations are fully deterministic. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  (* Lifetime accounting for the scale-out work: the high-water mark bounds
     the array footprint, pushes/pops give the total event volume. A few
     integer ops per operation, maintained unconditionally so instrumented
     and uninstrumented runs stay byte-identical. *)
  mutable high_water : int;
  mutable pops : int;
}

type stats = { hs_size : int; hs_high_water : int; hs_pushes : int; hs_pops : int }

let create () = { data = [||]; size = 0; next_seq = 0; high_water = 0; pops = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* [next_seq] counts every insertion ever, so it doubles as the push
   counter. *)
let stats t =
  {
    hs_size = t.size;
    hs_high_water = t.high_water;
    hs_pushes = t.next_seq;
    hs_pops = t.pops;
  }

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  (* The placeholder slot is only read after being overwritten. *)
  let data = Array.make new_cap t.data.(0) in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.data = 0 then t.data <- Array.make 16 entry;
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  if t.size > t.high_water then t.high_water <- t.size;
  (* Sift up. *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before t.data.(i) t.data.(parent) then begin
        let tmp = t.data.(i) in
        t.data.(i) <- t.data.(parent);
        t.data.(parent) <- tmp;
        up parent
      end
    end
  in
  up (t.size - 1)

let peek_time t = if t.size = 0 then None else Some t.data.(0).time

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    t.pops <- t.pops + 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let smallest = ref i in
        if l < t.size && before t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.size && before t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest <> i then begin
          let tmp = t.data.(i) in
          t.data.(i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          down !smallest
        end
      in
      down 0
    end;
    Some (top.time, top.payload)
  end

let clear t = t.size <- 0
