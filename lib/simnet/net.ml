(* A message waiting in (or being drained from) a sender's egress queue. *)
type 'm pending = {
  p_dst : int;
  p_msg : 'm;
  p_session : int;
  p_size : int;
  p_send_id : int;
  p_lc : int;
  mutable p_remaining : int;
}

type 'm event =
  | Deliver of {
      src : int;
      dst : int;
      session : int;
      size : int;
      send_id : int;
      lc : int;
      msg : 'm;
    }
  | Timer of (unit -> unit)
  | Session_reset of { node : int; peer : int; session : int }
  | Egress_step of { src : int; gen : int; completed : 'm pending option }

type 'm t = {
  n : int;
  rng : Random.State.t;
  events : 'm event Event_heap.t;
  mutable clock : float;
  (* Topology. [up.(a).(b)] is the a->b direction. *)
  up : bool array array;
  latency : float array array;
  (* Session number per unordered pair, stored in both cells. *)
  session : int array array;
  node_up : bool array;
  (* Egress model: each node's outgoing bytes drain at [egress_bw] bytes/ms,
     shared across destinations by round-robin in chunks of [egress_chunk]
     bytes — one large transfer therefore delays, but does not starve, the
     sender's other traffic (TCP flows interleave at packet granularity). *)
  egress_bw : float;
  egress_chunk : int;
  egress_queues : 'm pending Queue.t array array;  (* per src, per dst *)
  egress_busy : bool array;
  egress_rr : int array;  (* next destination to serve, per src *)
  egress_gen : int array;  (* bumped on crash to cancel stale pump chains *)
  (* Per (src, dst) pair: last scheduled delivery time, to enforce FIFO even
     if latency changes between sends. *)
  last_delivery : float array array;
  handlers : (src:int -> 'm -> unit) option array;
  session_handlers : (peer:int -> unit) option array;
  sent_bytes : int array;
  sent_bytes_to : int array array;
  sent_msgs : int array;
  (* Causal metadata: a per-node Lamport clock (ticked on every send and
     merged on every delivery) and a network-unique id per transmission.
     Maintained unconditionally — it is a handful of integer ops, so the
     traced and untraced executions stay byte-identical. *)
  lamport : int array;
  mutable next_send_id : int;
  mutable delivered : int;
  delivered_msgs : int array;  (* per receiving node *)
  delivered_bytes : int array;  (* per receiving node *)
  mutable delivered_bytes_total : int;
  (* Internals instrumentation (a few integer ops per event, maintained
     unconditionally like the Lamport clocks): dispatch counts per event
     class, Deliver events currently in the heap, and per-sender egress
     queue depth with its high-water mark. *)
  dispatched : int array;  (* timer / deliver / session_reset / egress *)
  mutable deliver_in_flight : int;
  egress_depth : int array;  (* per src: messages queued across all dsts *)
  egress_depth_hw : int array;
}

type heap_stats = Event_heap.stats = {
  hs_size : int;
  hs_high_water : int;
  hs_pushes : int;
  hs_pops : int;
}

let create ?(seed = 42) ?(latency = 0.1) ?(egress_bw = infinity)
    ?(egress_chunk = 4096) ~num_nodes () =
  let n = num_nodes in
  let t =
    {
    n;
    rng = Random.State.make [| seed |];
    events = Event_heap.create ();
    clock = 0.0;
    up = Array.make_matrix n n true;
    latency = Array.make_matrix n n latency;
    session = Array.make_matrix n n 0;
    node_up = Array.make n true;
    egress_bw;
    egress_chunk;
    egress_queues =
      Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ()));
    egress_busy = Array.make n false;
    egress_rr = Array.make n 0;
    egress_gen = Array.make n 0;
    last_delivery = Array.make_matrix n n 0.0;
    handlers = Array.make n None;
    session_handlers = Array.make n None;
    sent_bytes = Array.make n 0;
    sent_bytes_to = Array.make_matrix n n 0;
    sent_msgs = Array.make n 0;
      lamport = Array.make n 0;
      next_send_id = 0;
      delivered = 0;
      delivered_msgs = Array.make n 0;
      delivered_bytes = Array.make n 0;
      delivered_bytes_total = 0;
      dispatched = Array.make 4 0;
      deliver_in_flight = 0;
      egress_depth = Array.make n 0;
      egress_depth_hw = Array.make n 0;
    }
  in
  (* Trace events emitted by the protocol layers carry simulated time; the
     latest-created network owns the tracer clock (runs are sequential).
     The profiler samples the same clock for its sim-time column. *)
  Obs.Trace.set_clock (fun () -> t.clock);
  Obs.Profile.set_clock (fun () -> t.clock);
  (* Binary trace headers record the run parameters of the simulation that
     produced them (the writer snapshots this at its first event). *)
  Obs.Trace.set_run_meta
    [
      ("nodes", string_of_int n);
      ("seed", string_of_int seed);
      ("latency_ms", Printf.sprintf "%g" latency);
    ];
  t

let now t = t.clock
let num_nodes t = t.n
let rng t = t.rng

let check_node t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Net: node %d" i)

let set_handler t i f =
  check_node t i;
  t.handlers.(i) <- Some f

let set_session_handler t i f =
  check_node t i;
  t.session_handlers.(i) <- Some f

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Net.schedule: negative delay";
  Event_heap.push t.events ~time:(t.clock +. delay) (Timer f)

let pair_connected t a b = t.up.(a).(b) && t.up.(b).(a)

let schedule_delivery t ~src ~dst ~session ~size ~send_id ~lc msg =
  let arrival = t.clock +. t.latency.(src).(dst) in
  let arrival = Float.max arrival t.last_delivery.(src).(dst) in
  t.last_delivery.(src).(dst) <- arrival;
  t.deliver_in_flight <- t.deliver_in_flight + 1;
  Event_heap.push t.events ~time:arrival
    (Deliver { src; dst; session; size; send_id; lc; msg })

(* Transmit the next chunk of the round-robin schedule. Must be called with
   the sender idle at the current clock. *)
let pump_egress t src =
  let queues = t.egress_queues.(src) in
  let rec find i tries =
    if tries = t.n then None
    else if not (Queue.is_empty queues.(i)) then Some i
    else find ((i + 1) mod t.n) (tries + 1)
  in
  match find t.egress_rr.(src) 0 with
  | None -> t.egress_busy.(src) <- false
  | Some d ->
      let item = Queue.peek queues.(d) in
      let chunk = min t.egress_chunk (max 1 item.p_remaining) in
      (* Bytes are accounted when they leave the NIC, so windowed egress
         readings are physical. *)
      t.sent_bytes.(src) <- t.sent_bytes.(src) + chunk;
      t.sent_bytes_to.(src).(d) <- t.sent_bytes_to.(src).(d) + chunk;
      item.p_remaining <- item.p_remaining - chunk;
      let completed =
        if item.p_remaining <= 0 then begin
          t.egress_depth.(src) <- t.egress_depth.(src) - 1;
          Some (Queue.pop queues.(d))
        end
        else None
      in
      t.egress_rr.(src) <- (d + 1) mod t.n;
      t.egress_busy.(src) <- true;
      let tx = float_of_int chunk /. t.egress_bw in
      Event_heap.push t.events ~time:(t.clock +. tx)
        (Egress_step { src; gen = t.egress_gen.(src); completed })

let send t ~src ~dst ~size msg =
  check_node t src;
  check_node t dst;
  if size < 0 then invalid_arg "Net.send: negative size";
  if src = dst then invalid_arg "Net.send: src = dst";
  if t.node_up.(src) && t.up.(src).(dst) then begin
    t.sent_msgs.(src) <- t.sent_msgs.(src) + 1;
    let send_id = t.next_send_id in
    t.next_send_id <- send_id + 1;
    let lc = t.lamport.(src) + 1 in
    t.lamport.(src) <- lc;
    if Obs.Trace.on () then
      Obs.Trace.emit_at ~time:t.clock ~node:src
        (Obs.Event.Msg_send { dst; size; send_id; lc });
    let session = t.session.(src).(dst) in
    if t.egress_bw = infinity then begin
      t.sent_bytes.(src) <- t.sent_bytes.(src) + size;
      t.sent_bytes_to.(src).(dst) <- t.sent_bytes_to.(src).(dst) + size;
      schedule_delivery t ~src ~dst ~session ~size ~send_id ~lc msg
    end
    else begin
      Queue.add
        {
          p_dst = dst;
          p_msg = msg;
          p_session = session;
          p_size = size;
          p_send_id = send_id;
          p_lc = lc;
          p_remaining = size;
        }
        t.egress_queues.(src).(dst);
      t.egress_depth.(src) <- t.egress_depth.(src) + 1;
      if t.egress_depth.(src) > t.egress_depth_hw.(src) then
        t.egress_depth_hw.(src) <- t.egress_depth.(src);
      if not t.egress_busy.(src) then pump_egress t src
    end
  end
  else if Obs.Trace.on () then
    Obs.Trace.emit_at ~time:t.clock ~node:src
      (Obs.Event.Msg_drop
         {
           src;
           dst;
           reason = (if t.node_up.(src) then "link-down" else "src-down");
           session = t.session.(src).(dst);
           send_id = -1;
         })

let bump_session t a b =
  let s = t.session.(a).(b) + 1 in
  t.session.(a).(b) <- s;
  t.session.(b).(a) <- s;
  if Obs.Trace.on () then begin
    Obs.Trace.emit_at ~time:t.clock ~node:a
      (Obs.Event.Session_up { peer = b; session = s });
    Obs.Trace.emit_at ~time:t.clock ~node:b
      (Obs.Event.Session_up { peer = a; session = s })
  end;
  (* Notify both endpoints once the (zero-latency) reconnection completes.
     Delivered as events so handlers run in timestamp order. *)
  let notify node peer =
    Event_heap.push t.events ~time:t.clock
      (Session_reset { node; peer; session = s })
  in
  notify a b;
  notify b a

(* Trace a directional link transition; a connected pair losing its last
   direction also drops the transport session at both endpoints. *)
let trace_link_change t ~src ~dst ~was_connected ~up =
  if Obs.Trace.on () then begin
    Obs.Trace.emit_at ~time:t.clock ~node:src
      (if up then Obs.Event.Link_heal { a = src; b = dst }
       else Obs.Event.Link_cut { a = src; b = dst });
    if was_connected && not (pair_connected t src dst) then begin
      let s = t.session.(src).(dst) in
      Obs.Trace.emit_at ~time:t.clock ~node:src
        (Obs.Event.Session_drop { peer = dst; session = s });
      Obs.Trace.emit_at ~time:t.clock ~node:dst
        (Obs.Event.Session_drop { peer = src; session = s })
    end
  end

let set_link_oneway t ~src ~dst up =
  check_node t src;
  check_node t dst;
  let was_connected = pair_connected t src dst in
  let changed = t.up.(src).(dst) <> up in
  t.up.(src).(dst) <- up;
  if changed then trace_link_change t ~src ~dst ~was_connected ~up;
  if (not was_connected) && pair_connected t src dst then bump_session t src dst

let set_link t a b up =
  check_node t a;
  check_node t b;
  let was_connected = pair_connected t a b in
  if t.up.(a).(b) <> up then begin
    t.up.(a).(b) <- up;
    trace_link_change t ~src:a ~dst:b ~was_connected ~up
  end;
  if t.up.(b).(a) <> up then begin
    let was_connected = pair_connected t b a in
    t.up.(b).(a) <- up;
    trace_link_change t ~src:b ~dst:a ~was_connected ~up
  end;
  if (not was_connected) && pair_connected t a b then bump_session t a b

let link_up t a b =
  check_node t a;
  check_node t b;
  t.up.(a).(b)

let reset_session t a b =
  check_node t a;
  check_node t b;
  if a = b then invalid_arg "Net.reset_session: a = b";
  if pair_connected t a b then begin
    (* In-flight traffic of the old session is invalidated by the bump, as
       with a real TCP reset; both endpoints are notified of the new one. *)
    if Obs.Trace.on () then begin
      let s = t.session.(a).(b) in
      Obs.Trace.emit_at ~time:t.clock ~node:a
        (Obs.Event.Session_drop { peer = b; session = s });
      Obs.Trace.emit_at ~time:t.clock ~node:b
        (Obs.Event.Session_drop { peer = a; session = s })
    end;
    bump_session t a b
  end

let link_latency t a b =
  check_node t a;
  check_node t b;
  t.latency.(a).(b)

let set_latency t a b l =
  check_node t a;
  check_node t b;
  if l < 0.0 then invalid_arg "Net.set_latency: negative";
  t.latency.(a).(b) <- l;
  t.latency.(b).(a) <- l

let partition t group1 group2 =
  List.iter (fun a -> List.iter (fun b -> set_link t a b false) group2) group1

let heal_all t =
  for a = 0 to t.n - 1 do
    for b = a + 1 to t.n - 1 do
      set_link t a b true
    done
  done

let isolate t i =
  check_node t i;
  for j = 0 to t.n - 1 do
    if j <> i then set_link t i j false
  done

let crash t i =
  check_node t i;
  t.node_up.(i) <- false;
  if Obs.Trace.on () then
    Obs.Trace.emit_at ~time:t.clock ~node:i Obs.Event.Crashed;
  t.handlers.(i) <- None;
  t.session_handlers.(i) <- None;
  (* Unsent egress data is lost with the process. *)
  Array.iter Queue.clear t.egress_queues.(i);
  t.egress_depth.(i) <- 0;
  t.egress_busy.(i) <- false;
  t.egress_gen.(i) <- t.egress_gen.(i) + 1

let recover t i =
  check_node t i;
  t.node_up.(i) <- true;
  if Obs.Trace.on () then
    Obs.Trace.emit_at ~time:t.clock ~node:i Obs.Event.Recovered;
  (* Transport connections did not survive: bump the session with every
     currently-reachable peer so both sides observe a reconnection. *)
  for j = 0 to t.n - 1 do
    if j <> i && t.node_up.(j) && pair_connected t i j then bump_session t i j
  done

let is_up t i =
  check_node t i;
  t.node_up.(i)

let dispatch t event =
  match event with
  | Timer f ->
      t.dispatched.(0) <- t.dispatched.(0) + 1;
      f ()
  | Deliver { src; dst; session; size; send_id; lc; msg } ->
      t.dispatched.(1) <- t.dispatched.(1) + 1;
      t.deliver_in_flight <- t.deliver_in_flight - 1;
      if
        t.node_up.(dst) && t.node_up.(src) && t.up.(src).(dst)
        && session = t.session.(src).(dst)
      then begin
        match t.handlers.(dst) with
        | Some h ->
            t.delivered <- t.delivered + 1;
            t.delivered_msgs.(dst) <- t.delivered_msgs.(dst) + 1;
            t.delivered_bytes.(dst) <- t.delivered_bytes.(dst) + size;
            t.delivered_bytes_total <- t.delivered_bytes_total + size;
            (* Lamport merge: the receipt happens-after both the local past
               and the send. *)
            let rlc = 1 + max t.lamport.(dst) lc in
            t.lamport.(dst) <- rlc;
            if Obs.Trace.on () then
              Obs.Trace.emit_at ~time:t.clock ~node:dst
                (Obs.Event.Msg_deliver { src; size; send_id; lc = rlc });
            h ~src msg
        | None -> ()
      end
      else if Obs.Trace.on () then begin
        let reason =
          if not t.node_up.(dst) then "dst-down"
          else if not t.node_up.(src) then "src-down"
          else if not t.up.(src).(dst) then "link-down"
          else "stale-session"
        in
        Obs.Trace.emit_at ~time:t.clock ~node:dst
          (Obs.Event.Msg_drop { src; dst; reason; session; send_id })
      end
  | Session_reset { node; peer; session } ->
      t.dispatched.(2) <- t.dispatched.(2) + 1;
      if t.node_up.(node) && session = t.session.(node).(peer) then begin
        match t.session_handlers.(node) with
        | Some h -> h ~peer
        | None -> ()
      end
  | Egress_step { src; gen; completed } ->
      t.dispatched.(3) <- t.dispatched.(3) + 1;
      if gen = t.egress_gen.(src) then begin
        (match completed with
        | Some item ->
            schedule_delivery t ~src ~dst:item.p_dst ~session:item.p_session
              ~size:item.p_size ~send_id:item.p_send_id ~lc:item.p_lc
              item.p_msg
        | None -> ());
        pump_egress t src
      end

let dispatch_label = function
  | Timer _ -> "simnet/timer"
  | Deliver _ -> "simnet/deliver"
  | Session_reset _ -> "simnet/session_reset"
  | Egress_step _ -> "simnet/egress"

let step t =
  match Event_heap.pop t.events with
  | None -> false
  | Some (time, event) ->
      if Obs.Profile.on () then begin
        (* The clock advance happens inside the frame, so the sim-time
           column of a dispatch label accumulates the simulated time that
           passed waiting for events of that class; handler frames opened
           within (protocol adapters, flush) nest as children. The cold
           branch below is duplicated rather than wrapped in a closure so
           the profiler-off path allocates nothing extra. *)
        Obs.Profile.enter (dispatch_label event);
        t.clock <- Float.max t.clock time;
        dispatch t event;
        Obs.Profile.leave ()
      end
      else begin
        t.clock <- Float.max t.clock time;
        dispatch t event
      end;
      true

let run_until t deadline =
  let continue = ref true in
  while !continue do
    match Event_heap.peek_time t.events with
    | Some time when time <= deadline -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  t.clock <- Float.max t.clock deadline

let run_for t d = run_until t (t.clock +. d)

let drain t = while step t do () done

let bytes_sent t i =
  check_node t i;
  t.sent_bytes.(i)

let bytes_sent_to t ~src ~dst =
  check_node t src;
  check_node t dst;
  t.sent_bytes_to.(src).(dst)

let messages_sent t i =
  check_node t i;
  t.sent_msgs.(i)

let messages_delivered t = t.delivered
let bytes_delivered t = t.delivered_bytes_total

let messages_delivered_at t i =
  check_node t i;
  t.delivered_msgs.(i)

let bytes_delivered_at t i =
  check_node t i;
  t.delivered_bytes.(i)

(* ------------------------------------------------------------------ *)
(* Internals instrumentation                                           *)
(* ------------------------------------------------------------------ *)

let heap_stats t = Event_heap.stats t.events

let dispatch_counts t =
  [
    ("deliver", t.dispatched.(1));
    ("egress_step", t.dispatched.(3));
    ("session_reset", t.dispatched.(2));
    ("timer", t.dispatched.(0));
  ]

let deliver_in_flight t = t.deliver_in_flight

let link_queue_depth t ~src ~dst =
  check_node t src;
  check_node t dst;
  Queue.length t.egress_queues.(src).(dst)

let egress_queue_depth t i =
  check_node t i;
  t.egress_depth.(i)

let egress_queue_high_water t i =
  check_node t i;
  t.egress_depth_hw.(i)

(* Mirror the current internals into the process-wide metric registry.
   Called by samplers (the dashboard, `opx metrics` snapshots) rather than
   from the hot path, so per-event cost stays at plain integer updates. *)
let publish_metrics t =
  let module M = Obs.Metric in
  let set name v = M.Gauge.set M.Registry.(gauge default name) v in
  let seti name v = set name (float_of_int v) in
  let hs = heap_stats t in
  seti "simnet.heap.size" hs.hs_size;
  seti "simnet.heap.high_water" hs.hs_high_water;
  seti "simnet.heap.pushes" hs.hs_pushes;
  seti "simnet.heap.pops" hs.hs_pops;
  List.iter
    (fun (name, v) -> seti ("simnet.dispatch." ^ name) v)
    (dispatch_counts t);
  seti "simnet.deliver.in_flight" t.deliver_in_flight;
  let queued = ref 0 and hw = ref 0 in
  for i = 0 to t.n - 1 do
    queued := !queued + t.egress_depth.(i);
    hw := max !hw t.egress_depth_hw.(i)
  done;
  seti "simnet.egress.queued" !queued;
  seti "simnet.egress.queued_high_water" !hw
