(** Deterministic discrete-event network simulator.

    Models a cluster of [n] nodes connected by bidirectional links that can be
    cut per direction (partial connectivity), with per-link latency, a
    per-node egress bandwidth budget (the sender serialises outgoing bytes),
    and session-based FIFO perfect links: messages in flight when a link goes
    down are dropped, and when a pair of nodes becomes mutually reachable
    again the session number is bumped and both endpoints are notified (the
    equivalent of a TCP session drop/re-establishment).

    All time is in simulated milliseconds. Execution is single-threaded and
    fully deterministic for a given seed.

    When [Obs.Trace] is enabled, the simulator emits structured trace events
    for every topology change (link cut/heal, session drop/up), node
    crash/recovery, and message send/deliver/drop (with size and src/dst).
    [create] installs the simulated clock as the tracer's clock, so protocol
    events emitted above the network carry simulated timestamps too.
    Tracing off (the default) costs one branch per event site. *)

type 'm t
(** A simulation carrying messages of type ['m]. *)

val create :
  ?seed:int ->
  ?latency:float ->
  ?egress_bw:float ->
  ?egress_chunk:int ->
  num_nodes:int ->
  unit ->
  'm t
(** [create ~num_nodes ()] builds a fully-connected network.
    [latency] is the default one-way link delay in ms (default [0.1], i.e.
    0.2 ms RTT as in the paper's LAN setting). [egress_bw] is each node's
    outgoing bandwidth in bytes/ms ([infinity] disables the egress model;
    default [infinity]). A sender's outgoing messages drain at [egress_bw],
    shared across destinations round-robin in chunks of [egress_chunk] bytes
    (default 4096) — a large transfer delays, but does not starve, the
    sender's other traffic, like TCP flows interleaving at packet
    granularity. *)

(** {1 Clock and execution} *)

val now : 'm t -> float
val num_nodes : 'm t -> int
val rng : 'm t -> Random.State.t

val schedule : 'm t -> delay:float -> (unit -> unit) -> unit
(** Run a callback after [delay] ms of simulated time. *)

val run_until : 'm t -> float -> unit
(** Process events in timestamp order until the clock reaches the given
    absolute time (events at exactly that time are processed). *)

val run_for : 'm t -> float -> unit
(** [run_for t d] is [run_until t (now t +. d)]. *)

val step : 'm t -> bool
(** Process the single next event. Returns [false] if the queue is empty. *)

val drain : 'm t -> unit
(** Process events until the queue is empty. Only terminates if the
    simulation stops scheduling new events (e.g. no periodic timers). *)

(** {1 Node wiring} *)

val set_handler : 'm t -> int -> (src:int -> 'm -> unit) -> unit
(** Install the message-delivery handler of a node. *)

val set_session_handler : 'm t -> int -> (peer:int -> unit) -> unit
(** Install the handler called when the session with [peer] is
    re-established after having been torn down. *)

val send : 'm t -> src:int -> dst:int -> size:int -> 'm -> unit
(** Transmit a message of [size] bytes. The message is dropped if either
    endpoint is crashed, the [src -> dst] direction is cut now, or the link
    session changes before delivery. Delivery time is
    [egress queueing + size/bw + latency]. *)

(** {1 Topology control} *)

val set_link : 'm t -> int -> int -> bool -> unit
(** [set_link t a b up] sets both directions of the [a <-> b] link. Restoring
    a previously-cut pair bumps the session and notifies both endpoints. *)

val set_link_oneway : 'm t -> src:int -> dst:int -> bool -> unit
(** Cut or restore a single direction (half-duplex partial connectivity). *)

val link_up : 'm t -> int -> int -> bool
(** Whether the [a -> b] direction currently delivers messages. *)

val set_latency : 'm t -> int -> int -> float -> unit
(** Set the one-way delay of both directions of the [a <-> b] link. *)

val link_latency : 'm t -> int -> int -> float
(** The current one-way delay of the [a -> b] direction. *)

val reset_session : 'm t -> int -> int -> unit
(** Tear down and immediately re-establish the transport session of a
    connected pair (the equivalent of a TCP reset): in-flight messages of
    the old session are invalidated and both endpoints get their session
    handler invoked. No-op if the pair is not currently connected. *)

val partition : 'm t -> int list -> int list -> unit
(** Cut every link between the two groups. *)

val heal_all : 'm t -> unit
(** Restore every link (sessions of previously-cut pairs are bumped). *)

val isolate : 'm t -> int -> unit
(** Cut all links of a node. *)

(** {1 Crash / recovery} *)

val crash : 'm t -> int -> unit
(** Crash a node: its handler is dropped and all its in-flight traffic is
    lost. Link state is unaffected. *)

val recover : 'm t -> int -> unit
(** Mark a crashed node as up again. The caller must re-install handlers
    (the fail-recovery model: volatile state is lost, the protocol restarts
    from its persistent storage). Sessions with all reachable peers are
    bumped, as the transport connections do not survive the crash. *)

val is_up : 'm t -> int -> bool

(** {1 Accounting} *)

val bytes_sent : 'm t -> int -> int
(** Total bytes successfully handed to the network by a node. *)

val bytes_sent_to : 'm t -> src:int -> dst:int -> int
val messages_sent : 'm t -> int -> int

val messages_delivered : 'm t -> int
(** Total messages delivered across the whole network. *)

val bytes_delivered : 'm t -> int
(** Total bytes delivered across the whole network (payload sizes of the
    messages that reached a handler). *)

val messages_delivered_at : 'm t -> int -> int
(** Messages delivered to (received by) a given node. *)

val bytes_delivered_at : 'm t -> int -> int
(** Bytes delivered to (received by) a given node. *)

(** {1 Internals instrumentation}

    Counters over the simulator's own machinery (event heap, dispatch loop,
    egress queues), maintained unconditionally as a few integer ops per
    event — instrumented and uninstrumented runs stay byte-identical. All
    values are pure functions of the simulated execution and therefore
    deterministic per seed. *)

type heap_stats = Event_heap.stats = {
  hs_size : int;  (** events currently queued *)
  hs_high_water : int;  (** maximum queue size ever reached *)
  hs_pushes : int;  (** total events ever scheduled *)
  hs_pops : int;  (** total events ever dispatched *)
}

val heap_stats : 'm t -> heap_stats

val dispatch_counts : 'm t -> (string * int) list
(** Events dispatched per class ([deliver], [egress_step], [session_reset],
    [timer]), sorted by label. *)

val deliver_in_flight : 'm t -> int
(** [Deliver] events currently in the heap (sent, not yet arrived). *)

val link_queue_depth : 'm t -> src:int -> dst:int -> int
(** Messages waiting in the [src -> dst] egress queue (0 when the egress
    bandwidth model is off — messages then go straight into the heap). *)

val egress_queue_depth : 'm t -> int -> int
(** Messages queued by a sender across all destinations. *)

val egress_queue_high_water : 'm t -> int -> int
(** Maximum of {!egress_queue_depth} ever reached by this sender. *)

val publish_metrics : 'm t -> unit
(** Mirror the current internals into gauges of
    [Obs.Metric.Registry.default] (keys under [simnet.]). Intended to be
    called from samplers — the dashboard, metric snapshots — not from hot
    paths. *)
