(* opxlint — static determinism, protocol-safety & effect analyzer over
   .cmt files.

   Usage:
     opxlint [--baseline FILE] [--write-baseline] [--strict]
             [--effects-facts FILE] [--effects-summary FILE]
             [--effects] [--write-effects] [--json] [--sarif FILE]
             [--allow RULE:PATH-SUBSTRING]... [--rules D1,D2,...]
             PATH...

   PATHs are .cmt files or directories scanned recursively (point it at a
   dune build tree, e.g. _build/default/lib or just lib from inside
   _build). Prints findings as "file:line rule message" (or a JSON
   document with --json) and exits 1 when any finding is not absorbed by
   the baseline — or, under --strict, when a baseline or effects-summary
   entry has gone stale — and 2 on usage/analysis errors.

   --effects prints the inferred per-function effect signature table and
   exits; --write-effects regenerates the committed summary (the E4
   ratchet). *)

let () =
  let opts = ref Lint.Driver.default_options in
  let usage =
    "opxlint [--baseline FILE] [--write-baseline] [--strict]\n\
    \        [--effects-facts FILE] [--effects-summary FILE]\n\
    \        [--effects] [--write-effects] [--json] [--sarif FILE]\n\
    \        [--allow RULE:SUBSTR]... [--rules D1,D2,...] PATH...\n\
     Rules:\n"
    ^ String.concat "\n"
        (List.map
           (fun r ->
             Printf.sprintf "  %s  %s" (Lint.Finding.rule_name r)
               (Lint.Finding.rule_doc r))
           Lint.Finding.all_rules)
  in
  let bad fmt = Printf.ksprintf (fun m -> raise (Arg.Bad m)) fmt in
  let parse_rule s =
    match Lint.Finding.rule_of_string s with
    | Some r -> r
    | None -> bad "unknown rule %S" s
  in
  let spec =
    [
      ( "--baseline",
        Arg.String
          (fun f -> opts := { !opts with Lint.Driver.baseline_file = Some f }),
        "FILE baseline of tolerated findings ('<rule> <file>' lines)" );
      ( "--write-baseline",
        Arg.Unit
          (fun () -> opts := { !opts with Lint.Driver.write_baseline = true }),
        " regenerate the baseline from the current findings and exit" );
      ( "--strict",
        Arg.Unit (fun () -> opts := { !opts with Lint.Driver.strict = true }),
        " stale baseline/summary entries become errors (ratchets only \
         shrink)" );
      ( "--effects-facts",
        Arg.String
          (fun f -> opts := { !opts with Lint.Driver.facts_file = Some f }),
        "FILE external effect facts, pure_core manifest, allowlists and \
         protocol_dir scopes" );
      ( "--effects-summary",
        Arg.String
          (fun f -> opts := { !opts with Lint.Driver.summary_file = Some f }),
        "FILE committed per-function effect signatures (the E4 ratchet)" );
      ( "--effects",
        Arg.Unit
          (fun () -> opts := { !opts with Lint.Driver.print_effects = true }),
        " print the inferred effect-signature table and exit" );
      ( "--write-effects",
        Arg.Unit
          (fun () -> opts := { !opts with Lint.Driver.write_summary = true }),
        " regenerate the effects summary (--effects-summary FILE) and exit" );
      ( "--json",
        Arg.Unit (fun () -> opts := { !opts with Lint.Driver.json = true }),
        " print findings as a JSON document instead of text" );
      ( "--sarif",
        Arg.String
          (fun f -> opts := { !opts with Lint.Driver.sarif_file = Some f }),
        "FILE additionally write a SARIF 2.1.0 log of the fresh findings" );
      ( "--allow",
        Arg.String
          (fun s ->
            match String.index_opt s ':' with
            | None -> bad "--allow expects RULE:PATH-SUBSTRING, got %S" s
            | Some i ->
                let rule = parse_rule (String.sub s 0 i) in
                let sub = String.sub s (i + 1) (String.length s - i - 1) in
                opts :=
                  {
                    !opts with
                    Lint.Driver.allow = (rule, sub) :: !opts.Lint.Driver.allow;
                  }),
        "RULE:SUBSTR drop RULE findings in files whose path contains SUBSTR" );
      ( "--rules",
        Arg.String
          (fun s ->
            let rules =
              List.map parse_rule
                (List.filter
                   (fun t -> not (String.equal t ""))
                   (String.split_on_char ',' s))
            in
            opts := { !opts with Lint.Driver.rules = rules }),
        "D1,D2,... run only the listed rules (default: all)" );
    ]
  in
  let add_path p =
    opts := { !opts with Lint.Driver.paths = p :: !opts.Lint.Driver.paths }
  in
  (try Arg.parse spec add_path usage
   with Arg.Bad msg ->
     prerr_endline msg;
     exit 2);
  (match !opts.Lint.Driver.paths with
  | [] ->
      prerr_endline usage;
      exit 2
  | _ :: _ -> ());
  exit (Lint.Driver.run !opts)
