(* opx: command-line driver for the Omni-Paxos reproduction experiments.

   Subcommands mirror the paper's evaluation:
     opx table1                           partial-connectivity matrix
     opx normal    [--wan] [--servers 5]  regular-execution throughput
     opx partition --scenario quorum-loss down-time under partial partitions
     opx chained                          chained-scenario decided counts
     opx reconfig  [--majority]           reconfiguration comparison
     opx trace     [--out t.trace]        traced scenario runs + invariants

   Every experiment subcommand also takes [--trace FILE] to record an event
   trace of the whole run — JSONL or the compact binary format, selected
   with [--trace-format] — and [--sample-rate K] to keep only 1 in K of the
   high-volume data-path events (see README "Trace format"). *)

open Cmdliner
module E = Rsm.Experiments

let pf = Printf.printf

(* Shared tracing options: [--trace FILE] runs the experiment with the
   tracer feeding a trace file, [--trace-format] picks the encoding and
   [--sample-rate]/[--sample-head] install emit-time sampling. *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record a trace of every event in the run to $(docv).")

let trace_format_conv =
  Arg.enum [ ("jsonl", Obs.Tracebin.Jsonl); ("bin", Obs.Tracebin.Bin) ]

let trace_format_arg =
  Arg.(
    value
    & opt trace_format_conv Obs.Tracebin.Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:
          "Trace encoding: $(b,jsonl) (one JSON object per line) or \
           $(b,bin) (compact binary; ~an order of magnitude smaller, with \
           run metadata and sampling rates in the header).")

let sample_rate_arg =
  Arg.(
    value & opt int 1
    & info [ "sample-rate" ] ~docv:"K"
        ~doc:
          "Emit-time sampling: keep 1 in $(docv) of the high-volume \
           data-path events (proposed, accepted, batch_flush, send, \
           deliver; send/deliver pairs are kept or dropped together). \
           Faults, elections and invariant inputs are never sampled. 1 \
           (the default) keeps everything.")

let sample_head_arg =
  Arg.(
    value & opt int 1000
    & info [ "sample-head" ] ~docv:"N"
        ~doc:
          "With --sample-rate: always keep the first $(docv) events of \
           each sampled kind before thinning.")

type tracing = {
  t_file : string option;
  t_format : Obs.Tracebin.format;
  t_rate : int;
  t_head : int;
}

let tracing_term =
  let mk t_file t_format t_rate t_head = { t_file; t_format; t_rate; t_head } in
  Term.(
    const mk $ trace_arg $ trace_format_arg $ sample_rate_arg
    $ sample_head_arg)

let with_tracing tr f =
  let prev = Obs.Trace.sampling () in
  if tr.t_rate > 1 then
    Obs.Trace.set_sampling
      (Some (Obs.Sampling.create ~head:tr.t_head ~rate:tr.t_rate ()));
  let finish () = Obs.Trace.set_sampling prev in
  match
    match tr.t_file with
    | None -> f ()
    | Some file -> Obs.Trace.with_file ~file ~format:tr.t_format f
  with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

(* Shared [--health] flag: run the experiment with the online liveness
   monitor subscribed as a tracer sink, and print its alerts, partition
   suspects and recovery episodes afterwards. *)
let health_arg =
  Arg.(
    value & flag
    & info [ "health" ]
        ~doc:
          "Run the online health monitor (stall watchdog, leader-churn \
           meter, partition-suspect matrix, recovery episodes) over the \
           run's event stream and print its findings.")

let print_health h =
  pf "\n-- health --\n";
  let alerts = Obs.Health.alerts h in
  if List.is_empty alerts then pf "no alerts\n"
  else
    List.iter
      (fun (a : Obs.Health.alert) ->
        pf "%12.3f  %s  %s\n" a.at
          (match a.edge with
          | Obs.Health.Trigger -> "TRIGGER"
          | Obs.Health.Clear -> "CLEAR  ")
          a.what)
      alerts;
  (match Obs.Health.suspects h with
  | [] -> ()
  | sus ->
      pf "open partition suspects:";
      List.iter (fun (s, d) -> pf " %d->%d" s d) sus;
      pf "\n");
  List.iter
    (fun (r : Obs.Health.recovery) ->
      let rel = function
        | Some v -> Printf.sprintf "+%.3f ms" (v -. r.Obs.Health.fault_at)
        | None -> "-"
      in
      pf "recovery: fault %s at %.3f (%d fault events): detect %s, decide %s\n"
        r.Obs.Health.fault r.Obs.Health.fault_at r.Obs.Health.faults
        (rel r.Obs.Health.detect_at)
        (rel r.Obs.Health.decide_at))
    (Obs.Health.recoveries h)

let with_health ~n ~election_timeout_ms health f =
  if not health then f ()
  else begin
    let h =
      Obs.Health.create (Obs.Health.default_config ~n ~election_timeout_ms)
    in
    let id = Obs.Trace.subscribe (Obs.Health.observe h) in
    let was = Obs.Trace.is_enabled () in
    Obs.Trace.set_enabled true;
    let finish () =
      Obs.Trace.unsubscribe id;
      Obs.Trace.set_enabled was
    in
    let v =
      try f ()
      with e ->
        finish ();
        raise e
    in
    finish ();
    print_health h;
    v
  end

(* ---------------- table1 ---------------- *)

let table1_cmd =
  let run tracing health seeds partition_s =
    with_tracing tracing @@ fun () ->
    with_health ~n:5 ~election_timeout_ms:50.0 health @@ fun () ->
    let rows =
      E.table1 ~seeds:(List.init seeds (fun i -> i + 1))
        ~partition_ms:(float_of_int partition_s *. 1000.0) ()
    in
    pf "%-14s %-12s %-12s %-8s\n" "protocol" "quorum-loss" "constrained"
      "chained";
    List.iter
      (fun (r : E.table1_row) ->
        let m b = if b then "yes" else "NO" in
        pf "%-14s %-12s %-12s %-8s\n" r.t1_protocol (m r.t1_quorum_loss)
          (m r.t1_constrained) (m r.t1_chained))
      rows
  in
  let seeds =
    Arg.(value & opt int 2 & info [ "seeds" ] ~doc:"Number of seeded runs.")
  in
  let partition_s =
    Arg.(
      value & opt int 30
      & info [ "partition-s" ] ~doc:"Partition duration in seconds.")
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce Table 1 (stable-progress matrix)")
    Term.(const run $ tracing_term $ health_arg $ seeds $ partition_s)

(* ---------------- normal ---------------- *)

let normal_cmd =
  let run tracing health wan servers cp duration_s seeds =
    with_tracing tracing @@ fun () ->
    with_health ~n:servers ~election_timeout_ms:50.0 health @@ fun () ->
    let rows =
      E.normal_execution
        ~seeds:(List.init seeds (fun i -> i + 1))
        ~duration_ms:(float_of_int duration_s *. 1000.0)
        ~cps:[ cp ] ~cluster_sizes:[ servers ] ~settings:[ wan ] ()
    in
    pf "%-4s %-3s %-7s %-14s %12s %10s\n" "set" "n" "CP" "protocol"
      "tput(req/s)" "+/-CI";
    List.iter
      (fun (r : E.throughput_point) ->
        pf "%-4s %-3d %-7d %-14s %12.0f %10.0f\n" r.tp_setting r.tp_n r.tp_cp
          r.tp_protocol r.tp_mean r.tp_ci)
      rows
  in
  let wan = Arg.(value & flag & info [ "wan" ] ~doc:"WAN latencies.") in
  let servers =
    Arg.(value & opt int 3 & info [ "servers" ] ~doc:"Cluster size.")
  in
  let cp =
    Arg.(
      value & opt int 5000
      & info [ "cp" ] ~doc:"Concurrent proposals kept outstanding.")
  in
  let duration_s =
    Arg.(
      value & opt int 4
      & info [ "duration-s" ] ~doc:"Measured duration in seconds.")
  in
  let seeds =
    Arg.(value & opt int 3 & info [ "seeds" ] ~doc:"Number of seeded runs.")
  in
  Cmd.v
    (Cmd.info "normal" ~doc:"Regular execution throughput (Figure 7)")
    Term.(
      const run $ tracing_term $ health_arg $ wan $ servers $ cp
      $ duration_s $ seeds)

(* ---------------- partition ---------------- *)

let scenario_conv =
  Arg.enum
    [ ("quorum-loss", E.Quorum_loss); ("constrained", E.Constrained) ]

let partition_cmd =
  let run tracing health kind timeout_ms partition_s seeds =
    with_tracing tracing @@ fun () ->
    with_health ~n:5 ~election_timeout_ms:(float_of_int timeout_ms) health
    @@ fun () ->
    let rows =
      E.partition_downtime
        ~seeds:(List.init seeds (fun i -> i + 1))
        ~timeouts_ms:[ float_of_int timeout_ms ]
        ~partition_ms:(float_of_int partition_s *. 1000.0)
        ~kind ()
    in
    pf "%-11s %-14s %14s %10s %10s\n" "timeout(ms)" "protocol" "downtime(ms)"
      "+/-CI" "ldr-chg";
    List.iter
      (fun (r : E.downtime_point) ->
        pf "%-11.0f %-14s %14s %10.0f %10.1f\n" r.dt_timeout_ms r.dt_protocol
          (if r.dt_deadlocked then "DEADLOCK"
           else Printf.sprintf "%.0f" r.dt_downtime_ms)
          r.dt_ci r.dt_leader_changes)
      rows
  in
  let kind =
    Arg.(
      value
      & opt scenario_conv E.Quorum_loss
      & info [ "scenario" ] ~doc:"quorum-loss or constrained.")
  in
  let timeout_ms =
    Arg.(
      value & opt int 50 & info [ "timeout-ms" ] ~doc:"Election timeout (ms).")
  in
  let partition_s =
    Arg.(
      value & opt int 60
      & info [ "partition-s" ] ~doc:"Partition duration in seconds.")
  in
  let seeds =
    Arg.(value & opt int 3 & info [ "seeds" ] ~doc:"Number of seeded runs.")
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Down-time under partial partitions (Figures 8a/8b)")
    Term.(
      const run $ tracing_term $ health_arg $ kind $ timeout_ms
      $ partition_s $ seeds)

(* ---------------- chained ---------------- *)

let chained_cmd =
  let run tracing health duration_s seeds =
    with_tracing tracing @@ fun () ->
    with_health ~n:3 ~election_timeout_ms:50.0 health @@ fun () ->
    let rows =
      E.chained_throughput
        ~seeds:(List.init seeds (fun i -> i + 1))
        ~durations_ms:[ float_of_int duration_s *. 1000.0 ]
        ()
    in
    pf "%-13s %-14s %14s %10s %10s\n" "duration(s)" "protocol" "decided"
      "+/-CI" "ldr-chg";
    List.iter
      (fun (r : E.chained_point) ->
        pf "%-13.0f %-14s %14.0f %10.0f %10.1f\n"
          (r.ch_duration_ms /. 1000.0)
          r.ch_protocol r.ch_decided r.ch_ci r.ch_leader_changes)
      rows
  in
  let duration_s =
    Arg.(
      value & opt int 60
      & info [ "duration-s" ] ~doc:"Partition duration in seconds.")
  in
  let seeds =
    Arg.(value & opt int 2 & info [ "seeds" ] ~doc:"Number of seeded runs.")
  in
  Cmd.v
    (Cmd.info "chained" ~doc:"Chained-scenario decided requests (Figure 8c)")
    Term.(const run $ tracing_term $ health_arg $ duration_s $ seeds)

(* ---------------- reconfig ---------------- *)

let reconfig_cmd =
  let run tracing majority cp preload total_s =
    with_tracing tracing @@ fun () ->
    let params, omni, raft =
      E.reconfiguration ~preload ~cp ~replace_majority:majority
        ~total_ms:(float_of_int total_s *. 1000.0)
        ()
    in
    let show name (r : Rsm.Reconfig.result) =
      pf "\n%s:\n" name;
      (match r.migration_done_at with
      | Some t ->
          pf "  reconfiguration period: %.1fs\n"
            ((t -. params.reconfigure_at) /. 1000.0)
      | None -> pf "  reconfiguration did not complete\n");
      pf "  decided: %d  leader changes: %d\n" r.decided r.leader_changes;
      pf "  throughput per 5s window (req/s):\n   ";
      List.iter
        (fun (t, d) -> pf " %.0fs:%d" (t /. 1000.0) (d / 5))
        (Rsm.Metrics.Series.windowed r.series ~from:0.0 ~until:params.total_ms
           ~window:5000.0);
      pf "\n"
    in
    show "Omni-Paxos" omni;
    show "Raft" raft
  in
  let majority =
    Arg.(
      value & flag
      & info [ "majority" ] ~doc:"Replace a majority (3 of 5) of servers.")
  in
  let cp =
    Arg.(value & opt int 500 & info [ "cp" ] ~doc:"Concurrent proposals.")
  in
  let preload =
    Arg.(
      value & opt int 2_000_000
      & info [ "preload" ] ~doc:"Entries in the initial log.")
  in
  let total_s =
    Arg.(
      value & opt int 120 & info [ "total-s" ] ~doc:"Run length in seconds.")
  in
  Cmd.v
    (Cmd.info "reconfig" ~doc:"Reconfiguration comparison (Figure 9)")
    Term.(const run $ tracing_term $ majority $ cp $ preload $ total_s)

(* ---------------- trace ---------------- *)

let proto_conv =
  Arg.enum
    [
      ("omni", E.omni_runner);
      ("raft", E.raft_runner);
      ("raft-pvcq", E.raft_pvcq_runner);
      ("multipaxos", E.multipaxos_runner);
      ("vr", E.vr_runner);
    ]

let analyze_cmd =
  let run file json timeout_ms =
    let health =
      Option.map
        (fun ms ->
          (* Cluster size is inferred from the trace, so the config is
             built with a placeholder n and resized by the analyzer. *)
          Obs.Health.default_config ~n:0 ~election_timeout_ms:ms)
        timeout_ms
    in
    match
      if String.equal file "-" then Obs.Analyze.of_channel ?health stdin
      else Obs.Analyze.of_file ?health file
    with
    | Error e ->
        Printf.eprintf "opx trace analyze: %s\n" e;
        exit 2
    | Ok r ->
        if json then
          print_endline (Bench_report.Json.to_string (Obs.Analyze.to_json r))
        else print_string (Obs.Analyze.to_string r)
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Trace file (as written by --trace or opx trace --out), JSONL \
             or binary — the format is sniffed from the first bytes. Pass \
             $(b,-) to stream from stdin, e.g. as a live pipe from a \
             traced run.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ]
          ~doc:
            "Election timeout used to scale the health detectors (default \
             50 ms: stall at 4 timeouts, churn window of 20).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Streaming bounded-memory analysis of a recorded trace (JSONL or \
          binary; file or stdin): leader timelines, stall windows, \
          commit-latency percentiles, causal critical paths, health alerts \
          and invariants")
    Term.(const run $ file $ json $ timeout_ms)

let convert_cmd =
  let run src dst to_format =
    let with_src f =
      if String.equal src "-" then f (Obs.Tracebin.of_channel stdin)
      else begin
        let ic = try open_in_bin src with Sys_error e -> (Printf.eprintf "opx trace convert: %s\n" e; exit 2) in
        Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
        f (Obs.Tracebin.of_channel ic)
      end
    in
    let res =
      try
        with_src @@ fun s ->
        let target =
          (* Default: flip whatever the source is. *)
          match to_format with
          | Some f -> f
          | None -> (
              match Obs.Tracebin.source_format s with
              | Obs.Tracebin.Jsonl -> Obs.Tracebin.Bin
              | Obs.Tracebin.Bin -> Obs.Tracebin.Jsonl)
        in
        let oc = open_out_bin dst in
        Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
        let n = ref 0 in
        let r =
          match target with
          | Obs.Tracebin.Bin ->
              let w =
                Obs.Tracebin.writer ~meta:(Obs.Tracebin.meta s)
                  (output_string oc)
              in
              let r =
                Obs.Tracebin.iter s (fun e ->
                    Obs.Tracebin.write w e;
                    incr n)
              in
              Obs.Tracebin.flush w;
              r
          | Obs.Tracebin.Jsonl ->
              Obs.Tracebin.iter s (fun e ->
                  output_string oc (Obs.Event.to_json e);
                  output_char oc '\n';
                  incr n)
        in
        Result.map
          (fun () ->
            ( !n,
              (match Obs.Tracebin.source_format s with
              | Obs.Tracebin.Jsonl -> "jsonl"
              | Obs.Tracebin.Bin -> "bin"),
              match target with
              | Obs.Tracebin.Jsonl -> "jsonl"
              | Obs.Tracebin.Bin -> "bin" ))
          r
      with
      | Obs.Tracebin.Decode_error e -> Error e
      | Sys_error e -> Error e
    in
    match res with
    | Error e ->
        Printf.eprintf "opx trace convert: %s\n" e;
        exit 2
    | Ok (n, from_fmt, to_fmt) ->
        pf "converted %d events (%s -> %s) to %s\n" n from_fmt to_fmt dst
  in
  let src =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SRC"
          ~doc:
            "Input trace, JSONL or binary (sniffed). Pass $(b,-) for \
             stdin.")
  in
  let dst =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DST" ~doc:"Output trace file.")
  in
  let to_format =
    Arg.(
      value
      & opt (some trace_format_conv) None
      & info [ "to" ] ~docv:"FORMAT"
          ~doc:
            "Target encoding ($(b,jsonl) or $(b,bin)). Defaults to the \
             opposite of the input's format. Header metadata (run \
             parameters, sampling rates) is carried across bin->bin; JSONL \
             has no header, so jsonl targets drop it.")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert a trace between the JSONL and compact binary encodings \
          (either direction), streaming in constant memory")
    Term.(const run $ src $ dst $ to_format)

let trace_run_cmd =
  let run pr out format seed servers partition_s cp =
    let runs =
      E.traced_scenarios ~pr ~seed ~n:servers
        ~partition_ms:(float_of_int partition_s *. 1000.0)
        ~cp ()
    in
    (match out with
    | None -> ()
    | Some file ->
        let oc = open_out_bin file in
        let each f = List.iter (fun (tr : E.traced_run) -> List.iter f tr.E.tr_events) runs in
        (match format with
        | Obs.Tracebin.Jsonl ->
            each (fun e ->
                output_string oc (Obs.Event.to_json e);
                output_char oc '\n')
        | Obs.Tracebin.Bin ->
            let w =
              Obs.Tracebin.writer ~meta:(Obs.Trace.run_meta ())
                (output_string oc)
            in
            each (Obs.Tracebin.write w);
            Obs.Tracebin.flush w);
        close_out oc;
        pf "wrote %d events to %s\n"
          (List.fold_left
             (fun a (tr : E.traced_run) -> a + List.length tr.E.tr_events)
             0 runs)
          file);
    let failed = ref false in
    List.iter
      (fun (tr : E.traced_run) ->
        let s = Rsm.Trace_report.summarize tr.E.tr_events in
        pf "== %s: %s (downtime %.0f ms, decided %d%s) ==\n" pr.E.pr_name
          (E.scenario_name tr.E.tr_kind)
          tr.E.tr_downtime_ms tr.E.tr_decided
          (if tr.E.tr_dropped > 0 then
             Printf.sprintf ", ring-dropped %d" tr.E.tr_dropped
           else "");
        if tr.E.tr_dropped > 0 then begin
          pf "   ring drops by kind:";
          List.iter
            (fun (k, c) -> pf " %s=%d" k c)
            tr.E.tr_dropped_by_kind;
          pf "\n"
        end;
        Format.printf "%a@.@." Rsm.Trace_report.pp s;
        if not (Rsm.Trace_report.passed s) then failed := true)
      runs;
    if !failed then exit 1
  in
  let proto =
    Arg.(
      value
      & opt proto_conv E.omni_runner
      & info [ "protocol" ]
          ~doc:"Protocol to trace: omni, raft, raft-pvcq, multipaxos or vr.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the recorded events of all three runs to $(docv), in \
             the encoding chosen by $(b,--trace-format).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Run seed.") in
  let servers =
    Arg.(value & opt int 5 & info [ "servers" ] ~doc:"Cluster size.")
  in
  let partition_s =
    Arg.(
      value & opt int 5
      & info [ "partition-s" ] ~doc:"Partition duration in seconds.")
  in
  let cp =
    Arg.(value & opt int 50 & info [ "cp" ] ~doc:"Concurrent proposals.")
  in
  Term.(
    const run $ proto $ out $ trace_format_arg $ seed $ servers
    $ partition_s $ cp)

let trace_cmd =
  Cmd.group
    ~default:trace_run_cmd
    (Cmd.info "trace"
       ~doc:
         "Run the three partial-connectivity scenarios with tracing on, \
          report per-kind event counts and the trace invariants (non-zero \
          exit on a violation); analyze a recorded trace ($(b,opx trace \
          analyze FILE), $(b,-) for stdin); or convert between encodings \
          ($(b,opx trace convert SRC DST))")
    [ analyze_cmd; convert_cmd ]

(* ---------------- chaos ---------------- *)

let chaos_cmd =
  let run proto episodes seed servers clients steps compaction trace
      trace_format =
    let runner =
      match Chaos.Campaign.find_runner proto with
      | Some r -> r
      | None ->
          Printf.eprintf "unknown protocol %S (try: %s)\n" proto
            (String.concat ", "
               (List.map
                  (fun r -> r.Chaos.Campaign.cr_name)
                  Chaos.Campaign.runners));
          exit 2
    in
    let cfg =
      {
        Chaos.Campaign.default_config with
        n = servers;
        clients;
        steps;
        compaction =
          (if compaction > 0 then Omnipaxos.Compaction.make ~retain:4 compaction
           else Omnipaxos.Compaction.disabled);
      }
    in
    let s = runner.Chaos.Campaign.cr_run cfg ~seed ~episodes in
    Format.printf "%a@?" Chaos.Campaign.pp_summary s;
    match s.Chaos.Campaign.s_failures with
    | [] -> ()
    | f :: _ ->
        (match trace with
        | None -> ()
        | Some file ->
            (* Replay the first failure's minimal schedule with the tracer
               on, so the violating run can be inspected event by event. *)
            Chaos.Campaign.write_failure_trace ~file ~format:trace_format
              runner cfg f;
            pf "trace of minimal failing schedule (seed %d) written to %s\n"
              f.Chaos.Campaign.f_seed file);
        exit 1
  in
  let proto =
    Arg.(
      value & opt string "omni"
      & info [ "protocol" ]
          ~doc:
            "Campaign to run: omni, raft, raft-pvcq, multipaxos, vr, or \
             faulty-raft (a deliberately broken stale-read wrapper).")
  in
  let episodes =
    Arg.(value & opt int 20 & info [ "episodes" ] ~doc:"Seeded episodes.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~doc:"Base seed; episode $(i,i) uses seed+$(i,i).")
  in
  let servers =
    Arg.(value & opt int 3 & info [ "servers" ] ~doc:"Cluster size.")
  in
  let clients =
    Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Concurrent KV clients.")
  in
  let steps =
    Arg.(
      value & opt int 12
      & info [ "steps" ] ~doc:"Nemesis fault opcodes per episode.")
  in
  let compaction =
    Arg.(
      value & opt int 0
      & info [ "compaction" ] ~docv:"N"
          ~doc:
            "Enable snapshot/compaction on every server with \
             snapshot_interval $(docv) (retain 4); 0 (the default) leaves \
             compaction off, matching prior campaign seeds byte for byte.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "On failure, replay the first minimal failing schedule and \
             write its event trace to $(docv) (encoding chosen by \
             $(b,--trace-format)).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Seeded chaos campaign: random fault schedules against concurrent \
          KV clients, histories checked for linearizability; failing \
          schedules are shrunk to a minimal fault list (non-zero exit on a \
          violation)")
    Term.(
      const run $ proto $ episodes $ seed $ servers $ clients $ steps
      $ compaction $ trace $ trace_format_arg)

(* ---------------- metrics / top ---------------- *)

module T = Rsm.Top

let top_proto_conv = Arg.enum T.runners

let top_scenario_conv =
  Arg.enum [ ("normal", T.Normal); ("chained", T.Chained) ]

let servers_arg =
  Arg.(value & opt int 5 & info [ "servers" ] ~doc:"Cluster size.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Run seed.")

let cp_arg =
  Arg.(
    value & opt int 100
    & info [ "cp" ] ~doc:"Concurrent proposals kept outstanding.")

let duration_s_arg =
  Arg.(
    value & opt int 4 & info [ "duration-s" ] ~doc:"Run length in seconds.")

let interval_ms_arg =
  Arg.(
    value & opt int 250
    & info [ "interval-ms" ] ~doc:"Sampling interval in simulated ms.")

let top_cfg ~servers ~seed =
  { Rsm.Cluster.default_config with Rsm.Cluster.n = servers; seed }

let metrics_cmd =
  let run pr servers seed cp duration_s interval_ms snapshots profile
      profile_json =
    let cfg = top_cfg ~servers ~seed in
    let snap_oc = Option.map open_out snapshots in
    let on_sample =
      Option.map
        (fun oc ~time ->
          output_string oc
            (Bench_report.Json.to_compact_string
               (Obs.Metric.Registry.snapshot_json Obs.Metric.Registry.default
                  ~time));
          output_char oc '\n')
        snap_oc
    in
    let r =
      pr.T.tr_run ?on_sample ~cfg ~cp
        ~duration_ms:(float_of_int duration_s *. 1000.0)
        ~interval_ms:(float_of_int interval_ms)
        ()
    in
    Option.iter close_out snap_oc;
    print_string
      (Obs.Metric.Registry.render_exposition Obs.Metric.Registry.default);
    (match snapshots with
    | Some f -> Printf.eprintf "snapshot series written to %s\n" f
    | None -> ());
    if profile then print_string (Obs.Profile.to_string r.T.profile);
    if profile_json then
      print_endline (Bench_report.Json.to_string (Obs.Profile.to_json r.T.profile))
  in
  let proto =
    Arg.(
      value & opt top_proto_conv T.omni
      & info [ "protocol" ]
          ~doc:"Protocol to run: omni, raft, raft-pvcq, multipaxos or vr.")
  in
  let snapshots =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshots" ] ~docv:"FILE"
          ~doc:
            "Also write a JSONL time series to $(docv): one registry \
             snapshot per sampling interval.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Also print the attribution profile (text) after the run.")
  in
  let profile_json =
    Arg.(
      value & flag
      & info [ "profile-json" ]
          ~doc:"Also print the attribution profile as JSON after the run.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a seeded workload and print every registered metric in \
          Prometheus-style exposition format; optionally record a JSONL \
          snapshot series and the resource-attribution profile")
    Term.(
      const run $ proto $ servers_arg $ seed_arg $ cp_arg $ duration_s_arg
      $ interval_ms_arg $ snapshots $ profile $ profile_json)

let top_cmd =
  let run pr servers seed cp duration_s interval_ms scenario once wall topk =
    let cfg = top_cfg ~servers ~seed in
    let duration_ms = float_of_int duration_s *. 1000.0 in
    let interval_ms = float_of_int interval_ms in
    if once then begin
      (* Deterministic snapshot mode for tests: run the same seed twice and
         report whether the rendered dashboards are byte-identical. *)
      let go () =
        (pr.T.tr_run ~wall:false ~top:topk ~scenario ~cfg ~cp ~duration_ms
           ~interval_ms ())
          .T.final_frame
      in
      let a = go () in
      let b = go () in
      print_string a;
      pf "deterministic: %b\n" (String.equal a b)
    end
    else begin
      let on_frame frame =
        (* Repaint in place: cursor home + clear-to-end. *)
        print_string "\027[H\027[J";
        print_string frame;
        flush stdout
      in
      let r =
        pr.T.tr_run ~wall ~top:topk ~scenario ~on_frame ~cfg ~cp ~duration_ms
          ~interval_ms ()
      in
      print_string "\027[H\027[J";
      print_string r.T.final_frame
    end
  in
  let proto =
    Arg.(
      value & opt top_proto_conv T.omni
      & info [ "protocol" ]
          ~doc:"Protocol to run: omni, raft, raft-pvcq, multipaxos or vr.")
  in
  let scenario =
    Arg.(
      value & opt top_scenario_conv T.Normal
      & info [ "scenario" ]
          ~doc:
            "normal, or chained (a chain partition over the middle of the \
             run).")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Print a single deterministic summary frame instead of live \
             repaints, run the seed twice, and report $(b,deterministic: \
             true/false).")
  in
  let wall =
    Arg.(
      value & flag
      & info [ "wall" ]
          ~doc:
            "Include the nondeterministic wall-clock and allocation columns \
             in the profiler tables (live mode only).")
  in
  let topk =
    Arg.(
      value & opt int 8
      & info [ "top" ] ~doc:"Rows in the profiler top-K table.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard over a seeded run: throughput and \
          commit-latency gauges, per-node queue depths, health monitor \
          status and the profiler's top components; $(b,--once) prints one \
          deterministic snapshot for tests")
    Term.(
      const run $ proto $ servers_arg $ seed_arg $ cp_arg $ duration_s_arg
      $ interval_ms_arg $ scenario $ once $ wall $ topk)

(* ---------------- mcheck ---------------- *)

let mcheck_cmd =
  let run competing drops proposals max_states =
    let leader_events =
      if competing then [ (0, (1, 0)); (1, (2, 1)) ] else [ (0, (1, 0)) ]
    in
    let proposals = List.init proposals (fun i -> (i mod 2, 11 * (i + 1))) in
    let r =
      Mcheck.Explore.run
        { leader_events; proposals; allow_drops = drops; max_states }
    in
    pf "states explored: %d%s\n" r.states
      (if r.truncated then " (truncated at the state bound)" else " (exhaustive)");
    match r.violation with
    | Some v ->
        pf "VIOLATION: %s\n" v;
        exit 1
    | None -> pf "no SC1-SC3 violation in any reachable state\n"
  in
  let competing =
    Arg.(
      value & flag
      & info [ "competing-leaders" ]
          ~doc:"Two competing leader events instead of one.")
  in
  let drops = Arg.(value & flag & info [ "drops" ] ~doc:"Allow message drops.") in
  let proposals =
    Arg.(value & opt int 2 & info [ "proposals" ] ~doc:"Number of proposals.")
  in
  let max_states =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-states" ] ~doc:"State-count bound.")
  in
  Cmd.v
    (Cmd.info "mcheck"
       ~doc:
         "Bounded model checking of the Sequence Paxos specification \
          (SC1-SC3 in every reachable state)")
    Term.(const run $ competing $ drops $ proposals $ max_states)

let () =
  let doc = "Omni-Paxos reproduction experiments" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "opx" ~doc)
          [
            table1_cmd;
            normal_cmd;
            partition_cmd;
            chained_cmd;
            reconfig_cmd;
            trace_cmd;
            metrics_cmd;
            top_cmd;
            chaos_cmd;
            mcheck_cmd;
          ]))
