lib/multipaxos/node.mli: Random Replog
