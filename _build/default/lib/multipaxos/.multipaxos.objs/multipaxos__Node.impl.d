lib/multipaxos/node.ml: Hashtbl Int List Option Random Replog
