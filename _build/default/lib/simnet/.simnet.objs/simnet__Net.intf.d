lib/simnet/net.mli: Random
