lib/simnet/event_heap.ml: Array
