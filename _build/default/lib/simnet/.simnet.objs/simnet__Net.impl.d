lib/simnet/net.ml: Array Event_heap Float List Printf Queue Random
