(** Ballot numbers (rounds) for BLE and Sequence Paxos.

    A ballot [b = (n, priority, pid)] is totally ordered lexicographically.
    [pid] is the unique server identifier, which makes every ballot unique
    (LE3). [priority] is the optional custom field described in §5.2 of the
    paper, used only to break ties between servers bumping to the same [n];
    it never overrides a higher [n] and therefore does not affect liveness. *)

type t = { n : int; priority : int; pid : int }

val bottom : t
(** The smallest ballot; smaller than any ballot a server can own. *)

val initial : ?priority:int -> pid:int -> unit -> t
(** The first ballot of server [pid] (with [n = 1]). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val max : t -> t -> t

val bump_above : t -> t -> t
(** [bump_above mine target] is [mine] with [n] raised to [target.n + 1]:
    the takeover step of BLE. *)

val pp : Format.formatter -> t -> unit
