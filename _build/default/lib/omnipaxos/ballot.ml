type t = { n : int; priority : int; pid : int }

let bottom = { n = 0; priority = min_int; pid = -1 }
let initial ?(priority = 0) ~pid () = { n = 1; priority; pid }

let compare a b =
  let c = Int.compare a.n b.n in
  if c <> 0 then c
  else
    let c = Int.compare a.priority b.priority in
    if c <> 0 then c else Int.compare a.pid b.pid

let equal a b = compare a b = 0
let max a b = if compare a b >= 0 then a else b
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let ( < ) a b = compare a b < 0
let bump_above mine target = { mine with n = target.n + 1 }
let pp ppf b = Format.fprintf ppf "(n=%d,prio=%d,pid=%d)" b.n b.priority b.pid
