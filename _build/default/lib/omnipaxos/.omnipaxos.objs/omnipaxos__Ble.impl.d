lib/omnipaxos/ble.ml: Ballot Hashtbl List Option
