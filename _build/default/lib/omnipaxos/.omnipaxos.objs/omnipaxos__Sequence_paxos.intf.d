lib/omnipaxos/sequence_paxos.mli: Ballot Entry Replog
