lib/omnipaxos/replica.ml: Ble Entry Sequence_paxos
