lib/omnipaxos/entry.ml: Format List Replog String
