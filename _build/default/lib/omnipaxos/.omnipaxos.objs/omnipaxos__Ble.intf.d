lib/omnipaxos/ble.mli: Ballot
