lib/omnipaxos/ballot.mli: Format
