lib/omnipaxos/replica.mli: Ballot Ble Entry Replog Sequence_paxos
