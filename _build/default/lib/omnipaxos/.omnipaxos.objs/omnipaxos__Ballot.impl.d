lib/omnipaxos/ballot.ml: Format Int
