lib/omnipaxos/sequence_paxos.ml: Ballot Entry Hashtbl Int List Option Queue Replog String
