(** Measurement utilities for the experiments: decided-count time series and
    the small-sample statistics used in the paper's figures (mean and 95%
    confidence interval via the t-distribution). *)

module Series : sig
  (** Cumulative decided-count samples over simulated time. *)
  type t

  val create : unit -> t
  val push : t -> time:float -> count:int -> unit
  val length : t -> int

  val count_at : t -> float -> int
  (** Cumulative count at the last sample at or before the given time. *)

  val total_between : t -> from:float -> until:float -> int

  val longest_gap : t -> from:float -> until:float -> float
  (** Longest interval within [from, until] during which no new decided
      replies arrived — the paper's down-time metric. *)

  val windowed : t -> from:float -> until:float -> window:float -> (float * int) list
  (** Decided count per window, as (window start, count) pairs. *)
end

module Stats : sig
  val mean : float list -> float
  val stddev : float list -> float
  (** Sample standard deviation (n-1). *)

  val t_value : df:int -> float
  (** Two-tailed 97.5% t-value (normal approximation beyond df = 30). *)

  val ci95 : float list -> float
  (** Half-width of the 95% confidence interval. *)

  val mean_ci : float list -> float * float
end
