(** The uniform interface the cluster driver and the experiments use to run
    any of the four replicated state machine protocols. *)

module type PROTOCOL = sig
  type t
  type msg

  val name : string

  val create :
    id:int ->
    peers:int list ->
    election_ticks:int ->
    rand:Random.State.t ->
    send:(dst:int -> msg -> unit) ->
    unit ->
    t
  (** [election_ticks] is the election timeout expressed in driver ticks;
      protocols derive their internal timers (heartbeat cadence, randomized
      timeouts, view-change timers) from it. *)

  val handle : t -> src:int -> msg -> unit
  val tick : t -> unit
  val session_reset : t -> peer:int -> unit

  val propose : t -> Replog.Command.t -> bool
  (** Returns false if this server cannot accept proposals (not the
      leader). *)

  val is_leader : t -> bool
  val leader_pid : t -> int option

  val decided_count : t -> int
  (** Number of client commands decided so far (protocol-internal entries
      excluded). *)

  val decided_ids : t -> from:int -> int list
  (** Ids of the decided client commands, starting from decided position
      [from]. *)

  val msg_size : msg -> int
end

(* Incrementally materialised list of decided command ids; adapters feed it
   from their decide/commit callbacks so queries are O(delta). *)
module Decided_cache = struct
  type t = { mutable ids : int array; mutable count : int }

  let create () = { ids = Array.make 64 0; count = 0 }

  let note t id =
    if t.count = Array.length t.ids then begin
      let bigger = Array.make (2 * t.count) 0 in
      Array.blit t.ids 0 bigger 0 t.count;
      t.ids <- bigger
    end;
    t.ids.(t.count) <- id;
    t.count <- t.count + 1

  let count t = t.count

  let ids_from t ~from =
    let from = max 0 from in
    Array.to_list (Array.sub t.ids from (max 0 (t.count - from)))
end
