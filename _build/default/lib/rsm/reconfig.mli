(** Reconfiguration runners for the Figure 9 experiments and the §6.1
    resilience tests.

    [Omni] implements the paper's service layer: the current configuration
    is stopped with a stop-sign; continuing servers start the next
    configuration immediately, and newly added servers fetch the log in
    parallel, in segments, from the continuing servers (re-routing around
    unreachable donors). A new server starts its BLE + Sequence Paxos
    instances only once the complete log has been fetched.

    [Raft_runner] implements the leader-driven scheme the paper compares
    against: new servers join as learners streamed by the leader alone; a
    config entry switches the voter set when it commits, so with a majority
    replaced, commits stall until the new servers catch up. *)

type fault = Cut_link of int * int | Crash_node of int

type params = {
  net_cfg : Cluster.config;  (** [n] must cover all old and new node ids *)
  old_nodes : int list;
  new_nodes : int list;
  preload : int;  (** entries in the initial log (internal ids, 8 B each) *)
  cp : int;  (** client concurrency *)
  reconfigure_at : float;  (** ms at which the client requests the change *)
  total_ms : float;
  segment_entries : int;  (** migration segment size *)
  faults : (float * fault) list;
      (** scheduled faults, for the §6.1 resilience experiments *)
}

type result = {
  series : Metrics.Series.t;  (** client decided count over time *)
  io_series : (float * int array) list;
      (** (time, cumulative egress bytes per node), sampled every second *)
  reconfig_committed_at : float option;
      (** when the stop-sign (Omni) / config entry (Raft) was decided *)
  migration_done_at : float option;
      (** when every member of the new configuration was up and running *)
  leader_changes : int;
  decided : int;
}

module Omni : sig
  val run : params -> result
end

module Raft_runner : sig
  val run : params -> result
end
