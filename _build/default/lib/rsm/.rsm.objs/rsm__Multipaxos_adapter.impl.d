lib/rsm/multipaxos_adapter.ml: Multipaxos Protocol Replog
