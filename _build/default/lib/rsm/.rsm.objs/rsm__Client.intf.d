lib/rsm/client.mli: Metrics
