lib/rsm/cluster.mli: Client Protocol Simnet
