lib/rsm/omni_adapter.ml: Omnipaxos Protocol Replog
