lib/rsm/reconfig.mli: Cluster Metrics
