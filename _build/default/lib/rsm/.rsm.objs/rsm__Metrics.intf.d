lib/rsm/metrics.mli:
