lib/rsm/protocol.ml: Array Random Replog
