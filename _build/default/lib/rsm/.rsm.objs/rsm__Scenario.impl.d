lib/rsm/scenario.ml: Array Simnet
