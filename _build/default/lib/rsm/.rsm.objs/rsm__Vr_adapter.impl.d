lib/rsm/vr_adapter.ml: List Omnipaxos Protocol Replog Vr
