lib/rsm/client.ml: Metrics
