lib/rsm/raft_adapter.ml: List Protocol Raft Replog
