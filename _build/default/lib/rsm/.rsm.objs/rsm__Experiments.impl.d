lib/rsm/experiments.ml: Client Cluster Float Fun List Metrics Multipaxos_adapter Omni_adapter Option Protocol Raft_adapter Reconfig Scenario Simnet Vr_adapter
