lib/rsm/reconfig.ml: Array Client Cluster Float List Metrics Omnipaxos Option Raft Replog Simnet
