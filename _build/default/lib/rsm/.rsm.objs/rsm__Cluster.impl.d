lib/rsm/cluster.ml: Array Client Float List Option Protocol Replog Simnet
