lib/rsm/scenario.mli: Simnet
