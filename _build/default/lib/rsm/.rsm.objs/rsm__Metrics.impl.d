lib/rsm/metrics.ml: Array Float List
