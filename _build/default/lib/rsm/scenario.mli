(** The partial-connectivity scenarios of §2 of the paper, as link-matrix
    schedules over the simulated network. Each function applies its
    partition immediately; combine with [Simnet.Net.schedule] to stage them
    mid-run. *)

val quorum_loss : 'm Simnet.Net.t -> hub:int -> unit
(** Figure 1a: every server stays connected to [hub]; all other links are
    cut. The current leader (≠ [hub]) remains alive but loses
    quorum-connectivity. *)

val constrained : 'm Simnet.Net.t -> qc:int -> leader:int -> unit
(** Figure 1b: [leader] is fully partitioned and [qc] is the only
    quorum-connected server. Cut the [qc]–[leader] link some time earlier
    to make [qc]'s log outdated, as in the paper's experiment. *)

val chained : 'm Simnet.Net.t -> a:int -> b:int -> unit
(** Figure 1c: cut one link. With three servers this leaves the third as
    the middle of a chain. *)

val chain_of : 'm Simnet.Net.t -> order:int list -> unit
(** A full chain over [order]: only consecutive servers stay connected.
    With five or more servers no fully-connected server exists — the
    configuration in which the paper shows Raft and Multi-Paxos
    livelock. *)

val heal : 'm Simnet.Net.t -> unit
(** Restore all links. *)
