(** Generic closed-loop client, the workload driver of the paper's
    evaluation: keeps [cp] concurrent proposals outstanding against whatever
    leader the callbacks expose, re-proposing after [retry_ms] without
    progress (commands stuck at a deposed or stopped leader are abandoned
    and re-issued with fresh ids). Records the cumulative decided count
    over simulated time and the number of leader changes it observed. *)

type callbacks = {
  now : unit -> float;
  decided : unit -> int;  (** monotone count of decided client commands *)
  leader : unit -> int option;
  propose_batch : leader:int -> first_id:int -> count:int -> int;
      (** submit up to [count] commands with consecutive ids starting at
          [first_id]; returns how many were accepted *)
  schedule : delay:float -> (unit -> unit) -> unit;
}

type t

val start : ?retry_ms:float -> poll_ms:float -> cp:int -> callbacks -> t
(** Start polling every [poll_ms]; [retry_ms] (default 200) is the
    no-progress interval after which outstanding proposals are abandoned
    and re-issued. *)

val stop : t -> unit
val series : t -> Metrics.Series.t
val leader_changes : t -> int
val decided : t -> int
