(** The partial-connectivity scenarios of §2, as link-matrix schedules over
    the simulated network. Each function applies the partition immediately;
    combine with [Simnet.Net.schedule] to stage them mid-run. *)

module Net = Simnet.Net

(* Quorum-loss (Figure 1a): every server stays connected to [hub], all other
   links are cut. The current leader (≠ hub) remains alive but loses
   quorum-connectivity. *)
let quorum_loss net ~hub =
  let n = Net.num_nodes net in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if a <> hub && b <> hub then Net.set_link net a b false
    done
  done

(* Constrained election (Figure 1b): [leader] is fully partitioned and [qc]
   is the only quorum-connected server (connected to everyone except the
   leader). To make [qc]'s log outdated, cut the [qc]–[leader] link some
   time before calling this. *)
let constrained net ~qc ~leader =
  let n = Net.num_nodes net in
  Net.isolate net leader;
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if a <> qc && b <> qc && a <> leader && b <> leader then
        Net.set_link net a b false
    done
  done

(* Chained (Figure 1c): cut a single link so the servers form a chain. With
   three servers, cutting [a]–[b] leaves the third server as the middle of
   the chain. *)
let chained net ~a ~b = Net.set_link net a b false

(* A full chain over the given order: only consecutive servers stay
   connected. With five or more servers no fully-connected server exists —
   the configuration in which the paper shows Raft and Multi-Paxos
   livelock. *)
let chain_of net ~order =
  let arr = Array.of_list order in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 2 to n - 1 do
      Net.set_link net arr.(i) arr.(j) false
    done
  done

let heal = Net.heal_all
