(** Generic closed-loop client: keeps [cp] proposals outstanding against
    whatever leader the callbacks expose, re-proposing after [retry_ms]
    without progress (commands stuck at a deposed or stopped leader are
    abandoned and re-issued). Records the cumulative decided count over
    simulated time and the number of leader changes. *)

type callbacks = {
  now : unit -> float;
  decided : unit -> int;  (** monotone count of decided client commands *)
  leader : unit -> int option;
  propose_batch : leader:int -> first_id:int -> count:int -> int;
      (** returns how many proposals were accepted *)
  schedule : delay:float -> (unit -> unit) -> unit;
}

type t = {
  cb : callbacks;
  cp : int;
  poll_ms : float;
  retry_ms : float;
  series : Metrics.Series.t;
  mutable next_id : int;
  mutable in_flight : int;
  mutable last_decided : int;
  mutable last_progress : float;
  mutable last_leader : int option;
  mutable leader_changes : int;
  mutable running : bool;
}

let poll c =
  let time = c.cb.now () in
  let decided = c.cb.decided () in
  let newly = decided - c.last_decided in
  if newly > 0 then begin
    c.last_decided <- decided;
    c.in_flight <- max 0 (c.in_flight - newly);
    c.last_progress <- time
  end;
  Metrics.Series.push c.series ~time ~count:decided;
  (* Count a leader change whenever a leader emerges that differs from the
     last known one (flapping through leaderless periods included). *)
  let lead = c.cb.leader () in
  (match lead with
  | Some l when c.last_leader <> Some l ->
      if c.last_leader <> None then c.leader_changes <- c.leader_changes + 1;
      c.last_leader <- Some l
  | Some _ | None -> ());
  if c.in_flight > 0 && time -. c.last_progress > c.retry_ms then begin
    c.in_flight <- 0;
    c.last_progress <- time
  end;
  if c.in_flight < c.cp then begin
    match lead with
    | None -> ()
    | Some leader ->
        let want = c.cp - c.in_flight in
        let got =
          c.cb.propose_batch ~leader ~first_id:c.next_id ~count:want
        in
        c.next_id <- c.next_id + got;
        c.in_flight <- c.in_flight + got
  end

let start ?(retry_ms = 200.0) ~poll_ms ~cp cb =
  let c =
    {
      cb;
      cp;
      poll_ms;
      retry_ms;
      series = Metrics.Series.create ();
      next_id = 0;
      in_flight = 0;
      last_decided = 0;
      last_progress = cb.now ();
      last_leader = None;
      leader_changes = 0;
      running = true;
    }
  in
  let rec loop () =
    cb.schedule ~delay:c.poll_ms (fun () ->
        if c.running then begin
          poll c;
          loop ()
        end)
  in
  loop ();
  c

let stop c = c.running <- false
let series c = c.series
let leader_changes c = c.leader_changes
let decided c = c.last_decided
