lib/vr/node.mli: Omnipaxos
