lib/vr/node.ml: Hashtbl List Omnipaxos
