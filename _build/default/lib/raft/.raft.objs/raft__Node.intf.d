lib/raft/node.mli: Random Replog
