lib/raft/node.ml: Hashtbl Int List Option Random Replog
