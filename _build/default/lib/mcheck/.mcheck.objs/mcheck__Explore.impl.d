lib/mcheck/explore.ml: Hashtbl List Spec Stack
