lib/mcheck/spec.ml: Fun List Option
