(** Growable in-memory replicated log.

    A dynamic array specialised for the access patterns of log replication
    protocols: append (possibly in batches), random read, reading a suffix,
    and truncating/overwriting a suffix during log synchronisation. *)

type 'a t

val create : unit -> 'a t
val of_list : 'a list -> 'a t
val copy : 'a t -> 'a t

val length : 'a t -> int
(** Absolute length: the index one past the last entry. Unaffected by
    [trim]. *)

val first_idx : 'a t -> int
(** The smallest readable index: [0] until a [trim] raises it. *)

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds or below the trim point. *)

val last : 'a t -> 'a option
val append : 'a t -> 'a -> unit
val append_list : 'a t -> 'a list -> unit

val sub : 'a t -> pos:int -> len:int -> 'a list
(** Clamped to the log bounds; never raises for non-negative arguments. *)

val suffix : 'a t -> from:int -> 'a list
(** All entries at index [>= from] (empty if [from >= length]). *)

val truncate : 'a t -> int -> unit
(** [truncate t n] keeps the first [n] entries. No-op if [n >= length t]. *)

val set_suffix : 'a t -> at:int -> 'a list -> unit
(** [set_suffix t ~at entries] truncates the log to [at] entries and appends
    [entries] — the log-synchronisation primitive of the Prepare phase.
    Raises [Invalid_argument] if [at > length t] or [at < first_idx t]. *)

val trim : 'a t -> upto:int -> unit
(** Log compaction: discard entries below the absolute index [upto].
    Indexing stays absolute; subsequent reads below [upto] raise. A no-op
    if [upto <= first_idx t]; raises if [upto > length t]. *)

val reset_to : 'a t -> offset:int -> unit
(** Discard everything and restart the log at absolute index [offset] —
    used when installing a state snapshot that covers [0, offset). *)

val to_list : 'a t -> 'a list
val iteri_from : 'a t -> from:int -> (int -> 'a -> unit) -> unit
val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
