lib/replog/kv.ml: Buffer Command Hashtbl Printf String
