lib/replog/log.ml: Array List Printf
