lib/replog/log.mli:
