lib/replog/command.ml: Format Int String
