type 'a t = {
  mutable data : 'a array;
  mutable size : int;  (* stored entries *)
  mutable offset : int;  (* absolute index of data.(0); > 0 after a trim *)
}

let create () = { data = [||]; size = 0; offset = 0 }

let length t = t.offset + t.size
let first_idx t = t.offset
let is_empty t = length t = 0

let get t i =
  if i < t.offset || i >= length t then
    invalid_arg
      (Printf.sprintf "Log.get: index %d, range [%d, %d)" i t.offset (length t));
  t.data.(i - t.offset)

let last t = if t.size = 0 then None else Some t.data.(t.size - 1)

let ensure_capacity t extra =
  let needed = t.size + extra in
  let cap = Array.length t.data in
  if needed > cap then begin
    let new_cap = max needed (max 16 (cap * 2)) in
    let data = Array.make new_cap t.data.(0) in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let append t x =
  if Array.length t.data = 0 then t.data <- Array.make 16 x;
  ensure_capacity t 1;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let append_list t xs = List.iter (append t) xs

let of_list xs =
  let t = create () in
  append_list t xs;
  t

let copy t = { data = Array.copy t.data; size = t.size; offset = t.offset }

let sub t ~pos ~len =
  if pos < 0 || len < 0 then invalid_arg "Log.sub: negative argument";
  if len > 0 && pos < t.offset then
    invalid_arg
      (Printf.sprintf "Log.sub: position %d below the trim point %d" pos
         t.offset);
  let pos = min (pos - t.offset) t.size in
  let len = min len (t.size - pos) in
  let rec collect i acc =
    if i < pos then acc else collect (i - 1) (t.data.(i) :: acc)
  in
  if len <= 0 then [] else collect (pos + len - 1) []

let suffix t ~from = sub t ~pos:(max from t.offset) ~len:(max 0 (length t - from))

let truncate t n =
  if n < 0 then invalid_arg "Log.truncate: negative length";
  if n < t.offset then
    invalid_arg
      (Printf.sprintf "Log.truncate: %d below the trim point %d" n t.offset);
  if n < length t then t.size <- n - t.offset

let set_suffix t ~at entries =
  if at < t.offset || at > length t then
    invalid_arg
      (Printf.sprintf "Log.set_suffix: at %d, range [%d, %d]" at t.offset
         (length t));
  t.size <- at - t.offset;
  append_list t entries

(* Discard the prefix below [upto] (absolute index). The log's indexing
   stays absolute; reads below the trim point raise. *)
let trim t ~upto =
  if upto > length t then
    invalid_arg
      (Printf.sprintf "Log.trim: upto %d beyond length %d" upto (length t));
  if upto > t.offset then begin
    let drop = upto - t.offset in
    let remaining = t.size - drop in
    let data =
      if remaining = 0 then [||]
      else Array.sub t.data drop remaining
    in
    t.data <- data;
    t.size <- remaining;
    t.offset <- upto
  end

(* Install a snapshot boundary: discard everything and restart the log at
   absolute index [offset] (the receiver's state below it comes from a state
   snapshot, not from entries). *)
let reset_to t ~offset =
  if offset < 0 then invalid_arg "Log.reset_to: negative offset";
  t.data <- [||];
  t.size <- 0;
  t.offset <- offset

let to_list t = if t.size = 0 then [] else sub t ~pos:t.offset ~len:t.size

let iteri_from t ~from f =
  for i = max t.offset from to length t - 1 do
    f i t.data.(i - t.offset)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc
