(* Multi-Paxos baseline tests: normal operation, plus the paper's Table 1
   expectations — deadlock under quorum-loss, recovery in the constrained
   election scenario, and a leader-change livelock (with partial progress)
   in the chained scenario. *)

module Net = Simnet.Net
module C = Rsm.Cluster.Make (Rsm.Multipaxos_adapter)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg ?(n = 3) ?(seed = 11) () = { Rsm.Cluster.default_config with n; seed }
let decided c id = Rsm.Multipaxos_adapter.decided_count (C.node c id)

let propose_at c id count ~first =
  let node = C.node c id in
  let ok = ref 0 in
  for i = first to first + count - 1 do
    if Rsm.Multipaxos_adapter.propose node (Replog.Command.noop i) then incr ok
  done;
  !ok

let test_elects_and_replicates () =
  let c = C.create (cfg ()) in
  C.run_ms c 1000.0;
  let leader = Option.get (C.leader c) in
  check_int "accepted" 50 (propose_at c leader 50 ~first:0);
  C.run_ms c 500.0;
  List.iter (fun id -> check_int "decided everywhere" 50 (decided c id)) [ 0; 1; 2 ]

let test_leader_failover () =
  let c = C.create (cfg ~n:5 ()) in
  C.run_ms c 1000.0;
  let leader = Option.get (C.leader c) in
  ignore (propose_at c leader 20 ~first:0);
  C.run_ms c 500.0;
  Net.crash (C.net c) leader;
  C.run_ms c 3000.0;
  let new_leader = Option.get (C.leader c) in
  check "new leader" true (new_leader <> leader);
  ignore (propose_at c new_leader 20 ~first:100);
  C.run_ms c 500.0;
  check "progress" true (decided c new_leader >= 40)

(* Quorum-loss: the hub keeps hearing the stale leader's node heartbeats and
   never takes over; everyone else lacks a quorum. Deadlock until heal. *)
let test_quorum_loss_deadlock () =
  let c = C.create (cfg ~n:5 ~seed:3 ()) in
  C.run_ms c 2000.0;
  let leader = Option.get (C.leader c) in
  ignore (propose_at c leader 10 ~first:0);
  C.run_ms c 500.0;
  let hub = if leader = 0 then 1 else 0 in
  Rsm.Scenario.quorum_loss (C.net c) ~hub;
  C.run_ms c 500.0;
  let before = C.max_decided c in
  C.run_ms c 30_000.0;
  (* Proposals at whoever claims leadership go nowhere. *)
  (match C.leader c with
  | Some l -> ignore (propose_at c l 5 ~first:100)
  | None -> ());
  C.run_ms c 5000.0;
  check_int "deadlock: nothing decided during partition" before
    (C.max_decided c);
  Rsm.Scenario.heal (C.net c);
  C.run_ms c 10_000.0;
  let l = Option.get (C.leader c) in
  ignore (propose_at c l 5 ~first:200);
  C.run_ms c 2000.0;
  check "recovers after heal" true (C.max_decided c > before)

(* Constrained election: the QC server has no log or EQC requirement to
   satisfy, so Multi-Paxos recovers. *)
let test_constrained_recovers () =
  let c = C.create (cfg ~n:5 ~seed:3 ()) in
  C.run_ms c 2000.0;
  let leader = Option.get (C.leader c) in
  let qc = if leader = 0 then 1 else 0 in
  Net.set_link (C.net c) qc leader false;
  ignore (propose_at c leader 10 ~first:0);
  C.run_ms c 100.0;
  Rsm.Scenario.constrained (C.net c) ~qc ~leader;
  C.run_ms c 30_000.0;
  check_int "QC server becomes the leader" qc (Option.get (C.leader c));
  let before = C.max_decided c in
  ignore (propose_at c qc 10 ~first:100);
  C.run_ms c 3000.0;
  check "progress resumed" true (C.max_decided c >= before + 10)

(* Chained: livelock of alternating takeovers between the two disconnected
   ends, with windows of progress in between (the paper's ~30% throughput
   loss), never resolved by the middle server. *)
let test_chained_livelock_with_progress () =
  let c = C.create (cfg ~n:3 ~seed:7 ()) in
  C.run_ms c 2000.0;
  let leader = Option.get (C.leader c) in
  let ends = List.filter (fun i -> i <> leader) [ 0; 1; 2 ] in
  let other = List.hd ends in
  let middle = List.hd (List.tl ends) in
  (* Cut leader <-> other: [middle] stays connected to both. *)
  Rsm.Scenario.chained (C.net c) ~a:leader ~b:other;
  (* Drive proposals through whichever server is currently active. *)
  let proposed = ref 0 in
  for _ = 1 to 300 do
    C.run_ms c 100.0;
    match C.leader c with
    | Some l ->
        proposed := !proposed + propose_at c l 10 ~first:(1000 + !proposed)
    | None -> ()
  done;
  check "some progress during livelock" true (C.max_decided c > 0);
  (* The middle server never becomes the leader: takeovers alternate between
     the chain ends. *)
  check "middle server does not lead" true
    (not (Rsm.Multipaxos_adapter.is_leader (C.node c middle)));
  (* Livelock: both ends were deposed and re-elected repeatedly, which shows
     as a high ballot number. *)
  let ballot_n =
    (Multipaxos.Node.current_ballot
       (Rsm.Multipaxos_adapter.node (C.node c (Option.get (C.leader c)))))
      .Multipaxos.Node.n
  in
  check "repeated leader changes (ballot churn)" true (ballot_n > 5)

(* The contiguous decided prefixes of all servers must agree. *)
let test_decided_prefix_agreement () =
  let c = C.create (cfg ~n:3 ()) in
  C.run_ms c 1000.0;
  let leader = Option.get (C.leader c) in
  ignore (propose_at c leader 30 ~first:0);
  C.run_ms c 300.0;
  Net.crash (C.net c) leader;
  C.run_ms c 3000.0;
  (match C.leader c with
  | Some l -> ignore (propose_at c l 30 ~first:100)
  | None -> ());
  C.run_ms c 3000.0;
  let logs =
    List.filter_map
      (fun id ->
        if Net.is_up (C.net c) id then
          Some (Rsm.Multipaxos_adapter.decided_ids (C.node c id) ~from:0)
        else None)
      [ 0; 1; 2 ]
  in
  let rec prefix a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && prefix xs ys
  in
  check "prefix agreement" true
    (List.for_all
       (fun a -> List.for_all (fun b -> prefix a b || prefix b a) logs)
       logs)

let () =
  Alcotest.run "multipaxos"
    [
      ( "multipaxos",
        [
          Alcotest.test_case "elects and replicates" `Quick
            test_elects_and_replicates;
          Alcotest.test_case "leader failover" `Quick test_leader_failover;
          Alcotest.test_case "quorum loss deadlock" `Quick
            test_quorum_loss_deadlock;
          Alcotest.test_case "constrained recovers" `Quick
            test_constrained_recovers;
          Alcotest.test_case "chained livelock with progress" `Quick
            test_chained_livelock_with_progress;
          Alcotest.test_case "decided prefix agreement" `Quick
            test_decided_prefix_agreement;
        ] );
    ]
