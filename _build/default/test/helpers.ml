(* Shared test harness: wire Omni-Paxos replicas into a simulated network. *)

module Net = Simnet.Net

type cluster = {
  net : Omnipaxos.Replica.msg Net.t;
  replicas : Omnipaxos.Replica.t option array;
  storages : Omnipaxos.Replica.Storage.t array;
  tick_ms : float;
  hb_ticks : int;
}

let all_ids n = List.init n (fun i -> i)
let peers_of n id = List.filter (fun j -> j <> id) (all_ids n)

let make_replica c id =
  let n = Array.length c.replicas in
  let send ~dst m =
    Net.send c.net ~src:id ~dst ~size:(Omnipaxos.Replica.msg_size m) m
  in
  let r =
    Omnipaxos.Replica.create ~id ~peers:(peers_of n id) ~hb_ticks:c.hb_ticks
      ~storage:c.storages.(id) ~send ()
  in
  c.replicas.(id) <- Some r;
  Net.set_handler c.net id (fun ~src m -> Omnipaxos.Replica.handle r ~src m);
  Net.set_session_handler c.net id (fun ~peer ->
      Omnipaxos.Replica.session_reset r ~peer);
  r

let replica c id = Option.get c.replicas.(id)

(* Periodic driver: ticks every replica that is alive. *)
let rec schedule_ticks c =
  Net.schedule c.net ~delay:c.tick_ms (fun () ->
      Array.iteri
        (fun id r ->
          match r with
          | Some r when Net.is_up c.net id -> Omnipaxos.Replica.tick r
          | Some _ | None -> ())
        c.replicas;
      schedule_ticks c)

let make_cluster ?(n = 3) ?(tick_ms = 5.0) ?(hb_ticks = 10) ?(latency = 0.1)
    ?(seed = 7) () =
  let net = Net.create ~seed ~latency ~num_nodes:n () in
  let c =
    {
      net;
      replicas = Array.make n None;
      storages = Array.init n (fun _ -> Omnipaxos.Replica.Storage.create ());
      tick_ms;
      hb_ticks;
    }
  in
  List.iter (fun id -> ignore (make_replica c id)) (all_ids n);
  schedule_ticks c;
  c

let crash c id =
  Net.crash c.net id;
  c.replicas.(id) <- None

let recover c id =
  Net.recover c.net id;
  let r = make_replica c id in
  Omnipaxos.Replica.recover r

let current_leader c =
  let n = Array.length c.replicas in
  List.find_opt
    (fun id ->
      match c.replicas.(id) with
      | Some r -> Net.is_up c.net id && Omnipaxos.Replica.is_leader r
      | None -> false)
    (all_ids n)

let run_ms c ms = Net.run_for c.net ms

(* Propose a batch of no-op commands at the current leader; returns how many
   were accepted for proposal. *)
let propose_noops c ~first_id ~count =
  match current_leader c with
  | None -> 0
  | Some leader ->
      let r = replica c leader in
      let accepted = ref 0 in
      for i = first_id to first_id + count - 1 do
        if Omnipaxos.Replica.propose_cmd r (Replog.Command.noop i) then
          incr accepted
      done;
      !accepted

let decided_cmd_ids r =
  let entries =
    Omnipaxos.Replica.read_decided r ~from:0
  in
  List.filter_map
    (function
      | Omnipaxos.Entry.Cmd cmd -> Some cmd.Replog.Command.id
      | Omnipaxos.Entry.Stop_sign _ -> None)
    entries

(* SC2: of any two decided logs, one must be a prefix of the other. *)
let check_prefix_consistency logs =
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> Omnipaxos.Entry.equal x y && is_prefix xs ys
  in
  List.for_all
    (fun a -> List.for_all (fun b -> is_prefix a b || is_prefix b a) logs)
    logs
