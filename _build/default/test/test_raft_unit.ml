(* Handler-level Raft unit tests: vote-granting rules, the current-term
   commit restriction, log matching and conflict truncation, PreVote's
   non-disruption, and CheckQuorum step-down. Messages are fed directly to
   a single node; its outgoing messages are collected for inspection. *)

module N = Raft.Node

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type harness = { node : N.t; sent : (int * N.msg) list ref }

let make ?(voters = [ 0; 1; 2 ]) ?pre_vote ?check_quorum ?prepare () =
  let sent = ref [] in
  let persistent = N.fresh_persistent () in
  (match prepare with Some f -> f persistent | None -> ());
  let node =
    N.create ~id:0 ~voters ?pre_vote ?check_quorum ~election_ticks:10
      ~rand:(Random.State.make [| 1 |])
      ~persistent
      ~send:(fun ~dst m -> sent := (dst, m) :: !sent)
      ()
  in
  { node; sent }

let entry term id = { N.term; data = N.Cmd (Replog.Command.noop id) }

let last_vote h =
  List.find_map
    (function dst, N.Vote { granted; _ } -> Some (dst, granted) | _ -> None)
    !(h.sent)

let request_vote ?(pre = false) ~term ~last_log_idx ~last_log_term src h =
  N.handle h.node ~src
    (N.Request_vote { term; last_log_idx; last_log_term; pre_vote = pre })

let test_vote_granted_once_per_term () =
  let h = make () in
  request_vote ~term:1 ~last_log_idx:0 ~last_log_term:0 1 h;
  check "first candidate granted" true (last_vote h = Some (1, true));
  h.sent := [];
  request_vote ~term:1 ~last_log_idx:0 ~last_log_term:0 2 h;
  check "second candidate same term rejected" true
    (last_vote h = Some (2, false));
  h.sent := [];
  (* The same candidate asking again is re-granted (idempotent). *)
  request_vote ~term:1 ~last_log_idx:0 ~last_log_term:0 1 h;
  check "same candidate re-granted" true (last_vote h = Some (1, true))

let test_vote_log_up_to_date () =
  let prepare (p : N.persistent) =
    Replog.Log.append_list p.N.log [ entry 1 0; entry 2 1 ]
  in
  let h = make ~prepare () in
  request_vote ~term:3 ~last_log_idx:5 ~last_log_term:1 1 h;
  check "lower last term rejected despite longer log" true
    (last_vote h = Some (1, false));
  h.sent := [];
  request_vote ~term:3 ~last_log_idx:1 ~last_log_term:2 2 h;
  check "same term shorter log rejected" true (last_vote h = Some (2, false));
  h.sent := [];
  request_vote ~term:4 ~last_log_idx:2 ~last_log_term:2 2 h;
  check "same term equal length granted" true (last_vote h = Some (2, true))

let become_leader h =
  (* Time out, then win the election. *)
  for _ = 1 to 25 do
    N.tick h.node
  done;
  let term = N.current_term h.node in
  N.handle h.node ~src:1 (N.Vote { term; granted = true; pre_vote = false });
  check "is leader" true (N.is_leader h.node);
  h.sent := []

(* The commit rule: entries from previous terms are only committed once an
   entry of the current term reaches a quorum (Raft §5.4.2). *)
let test_commit_rule_current_term_only () =
  let prepare (p : N.persistent) =
    p.N.term <- 1;
    Replog.Log.append_list p.N.log [ entry 1 0; entry 1 1 ]
  in
  let h = make ~prepare () in
  become_leader h;
  (* A follower confirms the old-term entries: still nothing commits. *)
  N.handle h.node ~src:1
    (N.Append_resp { term = N.current_term h.node; success = true; match_idx = 2 });
  check_int "old-term entries not committed alone" 0 (N.commit_idx h.node);
  (* A current-term entry reaches the same quorum: everything commits. *)
  ignore (N.propose h.node (Replog.Command.noop 2));
  N.handle h.node ~src:1
    (N.Append_resp { term = N.current_term h.node; success = true; match_idx = 3 });
  check_int "commits through the current-term entry" 3 (N.commit_idx h.node)

let test_append_entries_conflict_truncation () =
  let prepare (p : N.persistent) =
    p.N.term <- 2;
    Replog.Log.append_list p.N.log [ entry 1 0; entry 1 1; entry 1 2 ]
  in
  let h = make ~prepare () in
  (* A leader of term 3 overwrites entries 1.. with term-3 entries. *)
  N.handle h.node ~src:1
    (N.Append_entries
       {
         term = 3;
         prev_idx = 0;
         prev_term = 1;
         entries = [ entry 3 7; entry 3 8 ];
         commit_idx = 0;
       });
  check_int "conflicting tail truncated and replaced" 3
    (N.log_length h.node);
  let committed =
    N.handle h.node ~src:1
      (N.Append_entries
         { term = 3; prev_idx = 2; prev_term = 3; entries = []; commit_idx = 3 });
    N.commit_idx h.node
  in
  check_int "commit follows the leader" 3 committed

let test_append_gap_hint () =
  let h = make () in
  N.handle h.node ~src:1
    (N.Append_entries
       { term = 1; prev_idx = 4; prev_term = 1; entries = [ entry 1 9 ]; commit_idx = 0 });
  let hint =
    List.find_map
      (function
        | _, N.Append_resp { success = false; match_idx; _ } -> Some match_idx
        | _ -> None)
      !(h.sent)
  in
  check "gap rejected with the follower's length as hint" true (hint = Some 0)

let test_pre_vote_does_not_bump_term () =
  let h = make () in
  request_vote ~pre:true ~term:5 ~last_log_idx:0 ~last_log_term:0 1 h;
  check_int "term untouched by a pre-vote" 0 (N.current_term h.node);
  (* And a pre-vote is only granted when our election timer has expired. *)
  let granted =
    List.find_map
      (function _, N.Vote { granted; pre_vote = true; _ } -> Some granted | _ -> None)
      !(h.sent)
  in
  check "pre-vote refused while we hear a leader" true (granted = Some false)

let test_check_quorum_steps_down () =
  let h = make ~check_quorum:true () in
  become_leader h;
  (* No AppendResp ever arrives: after one election timeout the leader
     abdicates. *)
  for _ = 1 to 11 do
    N.tick h.node
  done;
  check "stepped down without a quorum of responses" true
    (not (N.is_leader h.node))

let test_higher_term_deposes_leader () =
  let h = make () in
  become_leader h;
  let term = N.current_term h.node in
  N.handle h.node ~src:2
    (N.Append_resp { term = term + 5; success = false; match_idx = 0 });
  check "deposed by a higher-term response" true (not (N.is_leader h.node));
  check_int "term adopted" (term + 5) (N.current_term h.node)

let test_learner_promotion_via_config () =
  let h = make () in
  become_leader h;
  ignore (N.propose h.node (Replog.Command.noop 0));
  N.add_learners h.node [ 5 ];
  check "learners lag" true (not (N.learners_caught_up h.node));
  (* The learner confirms everything; then the config entry commits. *)
  N.handle h.node ~src:5
    (N.Append_resp
       { term = N.current_term h.node; success = true; match_idx = N.log_length h.node });
  check "learner caught up" true (N.learners_caught_up h.node);
  ignore (N.propose_config h.node ~config_id:1 ~voters:[ 0; 1; 5 ]);
  let len = N.log_length h.node in
  N.handle h.node ~src:1
    (N.Append_resp { term = N.current_term h.node; success = true; match_idx = len });
  check "config committed and applied" true
    (N.committed_config h.node = Some (1, [ 0; 1; 5 ]))

let () =
  Alcotest.run "raft_unit"
    [
      ( "votes",
        [
          Alcotest.test_case "one grant per term" `Quick
            test_vote_granted_once_per_term;
          Alcotest.test_case "log up-to-date check" `Quick
            test_vote_log_up_to_date;
          Alcotest.test_case "pre-vote does not bump the term" `Quick
            test_pre_vote_does_not_bump_term;
        ] );
      ( "replication",
        [
          Alcotest.test_case "current-term commit rule" `Quick
            test_commit_rule_current_term_only;
          Alcotest.test_case "conflict truncation" `Quick
            test_append_entries_conflict_truncation;
          Alcotest.test_case "gap hint" `Quick test_append_gap_hint;
        ] );
      ( "leadership",
        [
          Alcotest.test_case "check-quorum step-down" `Quick
            test_check_quorum_steps_down;
          Alcotest.test_case "higher term deposes" `Quick
            test_higher_term_deposes_leader;
          Alcotest.test_case "learner promotion" `Quick
            test_learner_promotion_via_config;
        ] );
    ]
