(* Handler-level Multi-Paxos unit tests: scout/phase-1 adoption with no-op
   gap filling, the decided-watermark learner path and its catch-up
   fallback, preemption behaviour, and P1b reporting of trimmed decided
   slots. *)

module N = Multipaxos.Node

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type harness = { node : N.t; sent : (int * N.msg) list ref }

let make ?(id = 0) () =
  let sent = ref [] in
  let peers = List.filter (fun j -> j <> id) [ 0; 1; 2 ] in
  let node =
    N.create ~id ~peers ~election_ticks:10
      ~rand:(Random.State.make [| 1 |])
      ~send:(fun ~dst m -> sent := (dst, m) :: !sent)
      ()
  in
  { node; sent }

let cmd i = Replog.Command.noop i
let b n pid : N.ballot = { N.n; pid }

(* Drive the node until it scouts, then grant it a quorum. *)
let activate h =
  let tries = ref 0 in
  while N.state h.node <> N.Scouting && !tries < 100 do
    N.tick h.node;
    incr tries
  done;
  check "scouting" true (N.state h.node = N.Scouting);
  let ballot = N.current_ballot h.node in
  N.handle h.node ~src:1 (N.P1b { b = ballot; accepted = [] });
  check "active" true (N.is_leader h.node);
  h.sent := []

let test_scout_adopts_and_fills_gaps () =
  let h = make () in
  let tries = ref 0 in
  while N.state h.node <> N.Scouting && !tries < 100 do
    N.tick h.node;
    incr tries
  done;
  let ballot = N.current_ballot h.node in
  (* The promise reports an accepted value at slot 2 only: slots 0 and 1
     must be filled with internal no-ops before slot 2 re-decides. *)
  N.handle h.node ~src:1
    (N.P1b { b = ballot; accepted = [ (2, b 1 9, cmd 42) ] });
  check "active after quorum" true (N.is_leader h.node);
  (* Confirm the re-proposals: the peer accepts everything. *)
  let p2as =
    List.filter_map
      (function
        | _, N.P2a { start_slot; cmds; _ } when cmds <> [] ->
            Some (start_slot, List.length cmds)
        | _ -> None)
      !(h.sent)
  in
  check "re-proposed from slot 0" true (List.mem (0, 3) p2as);
  N.handle h.node ~src:1 (N.P2b { b = N.current_ballot h.node; start_slot = 0; count = 3 });
  check_int "three slots decided" 3 (N.decided_length h.node);
  let decided = Replog.Log.to_list (N.decided_log h.node) in
  check "gap slots are internal no-ops, adopted value kept" true
    (match decided with
    | [ a; bb; c ] ->
        a.Replog.Command.id < 0 && bb.Replog.Command.id < 0
        && c.Replog.Command.id = 42
    | _ -> false)

let test_watermark_promotes_accepted () =
  let h = make ~id:2 () in
  (* Act as an acceptor/learner: accept two slots from an active leader,
     then receive its watermark. *)
  N.handle h.node ~src:0
    (N.P2a { b = b 5 0; start_slot = 0; cmds = [ cmd 1; cmd 2 ] });
  check_int "nothing decided yet" 0 (N.decided_length h.node);
  N.handle h.node ~src:0 (N.Decided_watermark { b = b 5 0; upto = 2 });
  check_int "watermark promoted both slots" 2 (N.decided_length h.node)

let test_watermark_mismatch_requests_catchup () =
  let h = make ~id:2 () in
  (* Accepted under an older ballot than the watermark's: must not promote
     blindly; ask the leader for the decided values. *)
  N.handle h.node ~src:0
    (N.P2a { b = b 3 0; start_slot = 0; cmds = [ cmd 1 ] });
  N.handle h.node ~src:1 (N.Decided_watermark { b = b 7 1; upto = 1 });
  check_int "not promoted" 0 (N.decided_length h.node);
  check "catch-up requested" true
    (List.exists
       (function 1, N.Decision_req { from = 0 } -> true | _ -> false)
       !(h.sent));
  (* The full Decision resolves it. *)
  N.handle h.node ~src:1 (N.Decision { start_slot = 0; cmds = [ cmd 9 ] });
  check_int "caught up" 1 (N.decided_length h.node)

let test_preempted_steps_down_and_retries () =
  let h = make () in
  activate h;
  let old = N.current_ballot h.node in
  N.handle h.node ~src:2 (N.Preempted { b = b (old.N.n + 3) 2 });
  check "deposed" true (not (N.is_leader h.node));
  (* After the backoff it retries with a ballot above everything seen. *)
  for _ = 1 to 25 do
    N.tick h.node
  done;
  check "rescouting" true (N.state h.node = N.Scouting || N.is_leader h.node);
  check "new ballot outranks the preemptor" true
    ((N.current_ballot h.node).N.n > old.N.n + 3)

let test_p1a_lower_ballot_preempted () =
  let h = make ~id:2 () in
  N.handle h.node ~src:0 (N.P1a { b = b 5 0; from_slot = 0 });
  h.sent := [];
  N.handle h.node ~src:1 (N.P1a { b = b 4 1; from_slot = 0 });
  check "lower scout preempted with the promised ballot" true
    (List.exists
       (function 1, N.Preempted { b = bb } -> bb = b 5 0 | _ -> false)
       !(h.sent))

let test_p1b_reports_trimmed_decided_slots () =
  let h = make ~id:2 () in
  (* Decide two slots via watermark, which trims the acceptor bookkeeping. *)
  N.handle h.node ~src:0
    (N.P2a { b = b 5 0; start_slot = 0; cmds = [ cmd 1; cmd 2 ] });
  N.handle h.node ~src:0 (N.Decided_watermark { b = b 5 0; upto = 2 });
  h.sent := [];
  (* A scout starting from slot 0 must still learn those values. *)
  N.handle h.node ~src:1 (N.P1a { b = b 9 1; from_slot = 0 });
  let reported =
    List.find_map
      (function _, N.P1b { accepted; _ } -> Some accepted | _ -> None)
      !(h.sent)
  in
  match reported with
  | Some acc ->
      check_int "both decided slots reported" 2 (List.length acc);
      check "with a winning sentinel ballot" true
        (List.for_all (fun (_, (bb : N.ballot), _) -> bb.N.n = max_int) acc)
  | None -> Alcotest.fail "no P1b sent"

let () =
  Alcotest.run "multipaxos_unit"
    [
      ( "proposer",
        [
          Alcotest.test_case "scout adopts and fills gaps" `Quick
            test_scout_adopts_and_fills_gaps;
          Alcotest.test_case "preempted steps down and retries" `Quick
            test_preempted_steps_down_and_retries;
          Alcotest.test_case "lower-ballot scout preempted" `Quick
            test_p1a_lower_ballot_preempted;
        ] );
      ( "learner",
        [
          Alcotest.test_case "watermark promotes" `Quick
            test_watermark_promotes_accepted;
          Alcotest.test_case "watermark mismatch catch-up" `Quick
            test_watermark_mismatch_requests_catchup;
          Alcotest.test_case "P1b reports trimmed decided" `Quick
            test_p1b_reports_trimmed_decided_slots;
        ] );
    ]
