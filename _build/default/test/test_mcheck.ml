(* Bounded model checking of the executable Sequence Paxos specification
   (the OCaml analog of the paper's TLA+ model): exhaustively explore all
   message interleavings — including drops and competing leaders — of small
   instances and assert that no reachable state violates SC1-SC3. Also
   sanity-check that the checker *can* catch violations, by running it
   against a deliberately broken specification step. *)

let check = Alcotest.(check bool)

let b1 : Mcheck.Spec.ballot = (1, 0)
let b2 : Mcheck.Spec.ballot = (2, 1)

let no_violation name (r : Mcheck.Explore.result) =
  (match r.violation with
  | Some v -> Alcotest.failf "%s: %s (after %d states)" name v r.states
  | None -> ());
  check (name ^ ": explored a nontrivial space") true (r.states > 100)

let test_single_leader_two_proposals () =
  let r =
    Mcheck.Explore.run
      {
        leader_events = [ (0, b1) ];
        proposals = [ (0, 11); (0, 22) ];
        allow_drops = false;
        max_states = 500_000;
      }
  in
  no_violation "single leader" r;
  check "space exhausted" true (not r.truncated)

let test_single_leader_with_drops () =
  let r =
    Mcheck.Explore.run
      {
        leader_events = [ (0, b1) ];
        proposals = [ (0, 11); (0, 22) ];
        allow_drops = true;
        max_states = 500_000;
      }
  in
  no_violation "single leader with drops" r

let test_competing_leaders () =
  let r =
    Mcheck.Explore.run
      {
        leader_events = [ (0, b1); (1, b2) ];
        proposals = [ (0, 11); (1, 22) ];
        allow_drops = false;
        max_states = 1_000_000;
      }
  in
  no_violation "competing leaders" r

let test_competing_leaders_with_drops () =
  let r =
    Mcheck.Explore.run
      {
        leader_events = [ (0, b1); (1, b2) ];
        proposals = [ (0, 11) ];
        allow_drops = true;
        max_states = 1_000_000;
      }
  in
  no_violation "competing leaders with drops" r

(* The checker must be able to detect violations: decide an entry without a
   quorum by injecting a bogus Decide straight into a fresh state. *)
let test_checker_detects_divergence () =
  let open Mcheck in
  (* Two leaders each decide different logs locally — a hand-crafted broken
     state that SC2 must flag. *)
  let broken =
    {
      Spec.init_state with
      Spec.nodes =
        List.mapi
          (fun i (n : Spec.node) ->
            if i = 0 then { n with Spec.log = [ 1 ]; dec = 1 }
            else if i = 1 then { n with Spec.log = [ 2 ]; dec = 1 }
            else n)
          Spec.init_state.Spec.nodes;
    }
  in
  check "SC2 check flags divergence" true
    (not (Explore.check_sc2 broken));
  check "SC1 check flags unproposed commands" true
    (not (Explore.check_sc1 ~commands:[ 7 ] broken))

let () =
  Alcotest.run "mcheck"
    [
      ( "exhaustive",
        [
          Alcotest.test_case "single leader, two proposals" `Quick
            test_single_leader_two_proposals;
          Alcotest.test_case "single leader with drops" `Quick
            test_single_leader_with_drops;
          Alcotest.test_case "competing leaders" `Quick test_competing_leaders;
          Alcotest.test_case "competing leaders with drops" `Quick
            test_competing_leaders_with_drops;
        ] );
      ( "self-test",
        [
          Alcotest.test_case "detects violations" `Quick
            test_checker_detects_divergence;
        ] );
    ]
