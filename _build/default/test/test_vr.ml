(* VR leader-election tests: round-robin view changes in normal operation,
   and the Table 1 expectations — deadlock in both the quorum-loss and the
   constrained election scenarios (no server can be elected by a quorum of
   QC servers), recovery with at most a couple of view changes in the
   chained scenario. *)

module Net = Simnet.Net
module C = Rsm.Cluster.Make (Rsm.Vr_adapter)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg ?(n = 3) ?(seed = 11) () = { Rsm.Cluster.default_config with n; seed }
let decided c id = Rsm.Vr_adapter.decided_count (C.node c id)
let vr_view c id = Vr.Node.view (Rsm.Vr_adapter.node (C.node c id))

let propose_at c id count ~first =
  let node = C.node c id in
  let ok = ref 0 in
  for i = first to first + count - 1 do
    if Rsm.Vr_adapter.propose node (Replog.Command.noop i) then incr ok
  done;
  !ok

let test_initial_leader_and_replication () =
  let c = C.create (cfg ()) in
  C.run_ms c 500.0;
  check_int "view 0 leader is server 0" 0 (Option.get (C.leader c));
  check_int "accepted" 50 (propose_at c 0 50 ~first:0);
  C.run_ms c 500.0;
  List.iter (fun id -> check_int "decided" 50 (decided c id)) [ 0; 1; 2 ]

let test_round_robin_failover () =
  let c = C.create (cfg ~n:5 ()) in
  C.run_ms c 500.0;
  ignore (propose_at c 0 10 ~first:0);
  C.run_ms c 300.0;
  Net.crash (C.net c) 0;
  C.run_ms c 3000.0;
  check_int "view 1 leader is server 1" 1 (Option.get (C.leader c));
  ignore (propose_at c 1 10 ~first:100);
  C.run_ms c 500.0;
  check_int "progress in the new view" 20 (decided c 1)

let test_quorum_loss_deadlock () =
  let c = C.create (cfg ~n:5 ()) in
  C.run_ms c 500.0;
  ignore (propose_at c 0 10 ~first:0);
  C.run_ms c 300.0;
  (* Leader is 0; hub must differ. *)
  Rsm.Scenario.quorum_loss (C.net c) ~hub:2;
  C.run_ms c 1000.0;
  let before = C.max_decided c in
  C.run_ms c 30_000.0;
  (match C.leader c with
  | Some l -> ignore (propose_at c l 5 ~first:100)
  | None -> ());
  C.run_ms c 3000.0;
  check_int "deadlocked" before (C.max_decided c);
  Rsm.Scenario.heal (C.net c);
  C.run_ms c 10_000.0;
  (match C.leader c with
  | Some l -> ignore (propose_at c l 5 ~first:200)
  | None -> ());
  C.run_ms c 3000.0;
  check "recovers after heal" true (C.max_decided c > before)

let test_constrained_deadlock () =
  let c = C.create (cfg ~n:5 ()) in
  C.run_ms c 500.0;
  let leader = 0 in
  let qc = 2 in
  Net.set_link (C.net c) qc leader false;
  ignore (propose_at c leader 10 ~first:0);
  C.run_ms c 100.0;
  Rsm.Scenario.constrained (C.net c) ~qc ~leader;
  let before = C.max_decided c in
  C.run_ms c 30_000.0;
  (match C.leader c with
  | Some l -> ignore (propose_at c l 5 ~first:100)
  | None -> ());
  C.run_ms c 3000.0;
  check_int "no QC server can be EQC: deadlocked" before (C.max_decided c)

let test_chained_recovers () =
  let c = C.create (cfg ~n:3 ()) in
  C.run_ms c 500.0;
  ignore (propose_at c 0 10 ~first:0);
  C.run_ms c 300.0;
  (* Cut leader(0) <-> 2: server 1 is the middle of the chain. *)
  Rsm.Scenario.chained (C.net c) ~a:0 ~b:2;
  C.run_ms c 10_000.0;
  (* Eventually a middle-capable leader is elected (possibly after a double
     view change due to the round-robin order). *)
  let leader = Option.get (C.leader c) in
  ignore (propose_at c leader 10 ~first:100);
  C.run_ms c 2000.0;
  check "progress after chained partition" true (C.max_decided c >= 20);
  (* Stability: the view stops changing. *)
  let v = vr_view c leader in
  C.run_ms c 5000.0;
  check_int "view is stable" v (vr_view c leader)

let () =
  Alcotest.run "vr"
    [
      ( "vr",
        [
          Alcotest.test_case "initial leader and replication" `Quick
            test_initial_leader_and_replication;
          Alcotest.test_case "round robin failover" `Quick
            test_round_robin_failover;
          Alcotest.test_case "quorum loss deadlock" `Quick
            test_quorum_loss_deadlock;
          Alcotest.test_case "constrained deadlock" `Quick
            test_constrained_deadlock;
          Alcotest.test_case "chained recovers" `Quick test_chained_recovers;
        ] );
    ]
