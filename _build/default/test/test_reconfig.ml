(* Reconfiguration tests (§6): stop-sign semantics, parallel log migration
   in the Omni-Paxos service layer, and the Raft learner-based scheme. *)

let check = Alcotest.(check bool)

let params ?(old_nodes = [ 0; 1; 2; 3; 4 ]) ?(new_nodes = [ 0; 1; 2; 3; 5 ])
    ?(preload = 20_000) ?(cp = 500) ?(egress_bw = 2_000.0) ?(seed = 5) () =
  {
    Rsm.Reconfig.net_cfg =
      {
        Rsm.Cluster.default_config with
        n = 8;
        seed;
        egress_bw;
        election_timeout_ms = 50.0;
      };
    old_nodes;
    new_nodes;
    preload;
    cp;
    reconfigure_at = 2_000.0;
    total_ms = 30_000.0;
    segment_entries = 2_000;
    faults = [];
  }

let throughput_after series ~from ~until =
  Rsm.Metrics.Series.total_between series ~from ~until

let test_omni_replace_one () =
  let p = params () in
  let r = Rsm.Reconfig.Omni.run p in
  check "stop-sign decided" true (r.reconfig_committed_at <> None);
  check "migration completed" true (r.migration_done_at <> None);
  let done_at = Option.get r.migration_done_at in
  check "migration faster than 10s" true (done_at < 12_000.0);
  check "throughput resumes after migration" true
    (throughput_after r.series ~from:(done_at +. 2_000.0) ~until:p.total_ms
     > 1000);
  check "decided a sizable load overall" true (r.decided > 10_000)

let test_omni_replace_majority () =
  let p = params ~new_nodes:[ 0; 1; 5; 6; 7 ] () in
  let r = Rsm.Reconfig.Omni.run p in
  check "stop-sign decided" true (r.reconfig_committed_at <> None);
  check "migration completed" true (r.migration_done_at <> None);
  let done_at = Option.get r.migration_done_at in
  check "throughput resumes after migration" true
    (throughput_after r.series ~from:(done_at +. 2_000.0) ~until:p.total_ms
     > 1000)

let test_omni_migration_is_parallel () =
  (* With one server replaced, the transfer load is split across the four
     continuing servers instead of being borne by the leader alone. *)
  let p = params () in
  let r = Rsm.Reconfig.Omni.run p in
  let final = List.nth r.io_series (List.length r.io_series - 1) in
  let _, bytes = final in
  let donors = [ 0; 1; 2; 3 ] in
  let donor_bytes = List.map (fun d -> bytes.(d)) donors in
  let max_donor = List.fold_left max 0 donor_bytes in
  let min_donor = List.fold_left min max_int donor_bytes in
  (* All continuing servers carried a comparable share: the max donor sent
     less than 3x the min donor. *)
  check "migration load is spread" true (max_donor < 3 * min_donor)

let test_raft_replace_one () =
  let p = params () in
  let r = Rsm.Reconfig.Raft_runner.run p in
  check "config committed" true (r.reconfig_committed_at <> None);
  check "all new servers active" true (r.migration_done_at <> None);
  let done_at = Option.get r.migration_done_at in
  check "throughput resumes" true
    (throughput_after r.series ~from:(done_at +. 3_000.0) ~until:p.total_ms
     > 1000)

let test_raft_leader_bottleneck () =
  (* Raft's leader alone streams the full log to the newcomer; its egress
     dwarfs the other old servers' once client traffic is subtracted. *)
  let p = params ~cp:100 () in
  let r = Rsm.Reconfig.Raft_runner.run p in
  check "config committed" true (r.reconfig_committed_at <> None);
  let _, bytes = List.nth r.io_series (List.length r.io_series - 1) in
  let sorted = List.sort (fun a b -> compare b a) (Array.to_list bytes) in
  let top = List.nth sorted 0 and second = List.nth sorted 1 in
  check "one server (the leader) did most of the sending" true
    (top > 2 * second)

let test_omni_vs_raft_completion () =
  (* The headline Figure 9 claim at test scale: parallel migration completes
     the reconfiguration several times faster than the leader-only scheme. *)
  let p = params ~cp:100 () in
  let om = Rsm.Reconfig.Omni.run p in
  let ra = Rsm.Reconfig.Raft_runner.run p in
  match (om.migration_done_at, ra.migration_done_at) with
  | Some o, Some r ->
      let o_dur = o -. p.reconfigure_at and r_dur = r -. p.reconfigure_at in
      check "omni reconfigures faster than raft" true (o_dur < r_dur)
  | _ -> Alcotest.fail "a reconfiguration did not complete"

(* §6.1 resilience: a new server cut off from the old leader still completes
   the migration — segments re-route to the other continuing servers. The
   old leader (max pid of c0 = 4) is kept in the new configuration so it is
   one of the donors. *)
let test_omni_migration_survives_leader_cut () =
  let p =
    {
      (params ~new_nodes:[ 0; 1; 2; 4; 5 ] ()) with
      Rsm.Reconfig.faults = [ (1_900.0, Rsm.Reconfig.Cut_link (4, 5)) ];
    }
  in
  let r = Rsm.Reconfig.Omni.run p in
  check "migration completed despite the cut donor" true
    (r.migration_done_at <> None);
  check "throughput resumed" true
    (throughput_after r.series
       ~from:(Option.get r.migration_done_at +. 2_000.0)
       ~until:p.total_ms
     > 1000)

(* §6.1 resilience, crash variant: the old leader dies mid-migration. *)
let test_omni_migration_survives_leader_crash () =
  let p =
    {
      (params ()) with
      Rsm.Reconfig.faults = [ (2_300.0, Rsm.Reconfig.Crash_node 4) ];
    }
  in
  let r = Rsm.Reconfig.Omni.run p in
  check "stop-sign decided" true (r.reconfig_committed_at <> None);
  check "migration completed despite the crash" true
    (r.migration_done_at <> None)

(* The contrast the paper draws in §6.1: when the new server can reach only
   ONE old follower, Omni-Paxos still completes (any server can migrate the
   log) while Raft's leader-driven scheme cannot stream to it — unless that
   single reachable server happens to win leadership. *)
let test_leader_only_vs_any_server_migration () =
  let base = params ~cp:100 () in
  (* Server 5 can reach only old server 0. *)
  let faults =
    List.map (fun j -> (1_900.0, Rsm.Reconfig.Cut_link (j, 5))) [ 1; 2; 3; 4 ]
  in
  let omni = Rsm.Reconfig.Omni.run { base with Rsm.Reconfig.faults } in
  check "omni: any reachable server migrates the log" true
    (omni.migration_done_at <> None);
  let raft = Rsm.Reconfig.Raft_runner.run { base with Rsm.Reconfig.faults } in
  if raft.migration_done_at <> None then begin
    (* Server 0 won leadership in this run, so Raft squeaked through; with
       server 0 cut as well it must certainly block. *)
    let faults =
      List.map (fun j -> (1_900.0, Rsm.Reconfig.Cut_link (j, 5)))
        [ 0; 1; 2; 3; 4 ]
    in
    let r2 = Rsm.Reconfig.Raft_runner.run { base with Rsm.Reconfig.faults } in
    check "raft: new server unreachable from the leader cannot join" true
      (r2.migration_done_at = None)
  end
  else
    check "raft: new server unreachable from the leader cannot join" true
      (raft.migration_done_at = None)

let () =
  Alcotest.run "reconfig"
    [
      ( "reconfig",
        [
          Alcotest.test_case "omni replace one" `Quick test_omni_replace_one;
          Alcotest.test_case "omni replace majority" `Quick
            test_omni_replace_majority;
          Alcotest.test_case "omni migration is parallel" `Quick
            test_omni_migration_is_parallel;
          Alcotest.test_case "raft replace one" `Quick test_raft_replace_one;
          Alcotest.test_case "raft leader bottleneck" `Quick
            test_raft_leader_bottleneck;
          Alcotest.test_case "omni vs raft completion" `Quick
            test_omni_vs_raft_completion;
          Alcotest.test_case "migration survives leader cut" `Quick
            test_omni_migration_survives_leader_cut;
          Alcotest.test_case "migration survives leader crash" `Quick
            test_omni_migration_survives_leader_crash;
          Alcotest.test_case "leader-only vs any-server migration" `Quick
            test_leader_only_vs_any_server_migration;
        ] );
    ]
