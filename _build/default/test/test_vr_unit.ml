(* Handler-level VR unit tests: the EQC discipline (Do_view_change only
   after a quorum of Start_view_change), view-change joining/forwarding,
   round-robin leadership, and timer-driven view escalation. *)

module V = Vr.Node

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type harness = { node : V.t; sent : (int * V.msg) list ref }

let make ?(id = 0) () =
  let sent = ref [] in
  let peers = List.filter (fun j -> j <> id) [ 0; 1; 2; 3; 4 ] in
  let node =
    V.create ~id ~peers ~election_ticks:10
      ~send:(fun ~dst m -> sent := (dst, m) :: !sent)
      ()
  in
  { node; sent }

let svc view = V.Vr (V.Start_view_change { view })
let dvc view = V.Vr (V.Do_view_change { view })

let sent_dvc h =
  List.filter_map
    (function dst, V.Vr (V.Do_view_change { view }) -> Some (dst, view) | _ -> None)
    !(h.sent)

let sent_svc h =
  List.filter_map
    (function dst, V.Vr (V.Start_view_change { view }) -> Some (dst, view) | _ -> None)
    !(h.sent)

let test_initial_leader_is_view_zero () =
  let h = make ~id:0 () in
  check "server 0 leads view 0" true (V.is_leader h.node);
  let h1 = make ~id:1 () in
  check "server 1 does not" true (not (V.is_leader h1.node))

let test_join_and_forward_higher_view () =
  let h = make ~id:1 () in
  V.handle h.node ~src:2 (svc 1);
  check "joined the view change" true (V.status h.node = V.View_change);
  (* Joining forwards the SVC to everyone — the gossip the paper calls out. *)
  check_int "forwarded to all peers" 4 (List.length (sent_svc h))

let test_eqc_requires_svc_quorum () =
  (* Server 2 votes for the view-1 leader (server 1) only once it has
     gathered Start_view_change from a quorum. *)
  let h = make ~id:2 () in
  V.handle h.node ~src:0 (svc 1);
  check "one SVC (+own) is not a quorum of 5" true (sent_dvc h = []);
  V.handle h.node ~src:3 (svc 1);
  check "quorum reached: DVC sent to the view-1 leader" true
    (sent_dvc h = [ (1, 1) ]);
  V.handle h.node ~src:4 (svc 1);
  check "DVC sent only once" true (sent_dvc h = [ (1, 1) ])

let test_leader_elected_on_dvc_quorum () =
  (* Server 1 is the leader-elect of view 1. *)
  let h = make ~id:1 () in
  V.handle h.node ~src:2 (svc 1);
  V.handle h.node ~src:3 (svc 1);
  (* Its own (EQC-gated) vote is in; two more DVCs complete the quorum. *)
  V.handle h.node ~src:2 (dvc 1);
  V.handle h.node ~src:3 (dvc 1);
  check "leads view 1" true (V.is_leader h.node && V.view h.node = 1);
  check "broadcast StartView" true
    (List.exists
       (function _, V.Vr (V.Start_view { view = 1 }) -> true | _ -> false)
       !(h.sent))

let test_dvc_without_svc_quorum_is_ignored () =
  let h = make ~id:1 () in
  V.handle h.node ~src:2 (svc 1);
  (* DVCs arrive but our own EQC vote is missing (no SVC quorum): even a
     majority of external DVCs must not elect us. *)
  V.handle h.node ~src:2 (dvc 1);
  V.handle h.node ~src:3 (dvc 1);
  V.handle h.node ~src:4 (dvc 1);
  check "not elected without own EQC vote" true (not (V.is_leader h.node))

let test_start_view_adopts () =
  let h = make ~id:3 () in
  V.handle h.node ~src:2 (svc 1);
  V.handle h.node ~src:1 (V.Vr (V.Start_view { view = 1 }));
  check "normal in the new view" true
    (V.status h.node = V.Normal && V.view h.node = 1);
  check "leader is view mod n" true (V.leader_pid h.node = Some 1)

let test_timer_escalates_views () =
  let h = make ~id:2 () in
  (* No pings: time out into view change for view 1, then escalate. *)
  for _ = 1 to 10 do
    V.tick h.node
  done;
  check "first view change proposes view 1" true
    (List.mem (0, 1) (sent_svc h) || List.exists (fun (_, v) -> v = 1) (sent_svc h));
  for _ = 1 to 10 do
    V.tick h.node
  done;
  check "escalates to view 2 when uncompleted" true
    (List.exists (fun (_, v) -> v = 2) (sent_svc h))

let test_ping_prevents_view_change () =
  let h = make ~id:2 () in
  for _ = 1 to 8 do
    V.tick h.node;
    V.handle h.node ~src:0 (V.Vr (V.Ping { view = 0 }))
  done;
  for _ = 1 to 8 do
    V.tick h.node;
    V.handle h.node ~src:0 (V.Vr (V.Ping { view = 0 }))
  done;
  check "no view change while pings arrive" true (sent_svc h = [])

let () =
  Alcotest.run "vr_unit"
    [
      ( "view-change",
        [
          Alcotest.test_case "initial leader" `Quick
            test_initial_leader_is_view_zero;
          Alcotest.test_case "join and forward" `Quick
            test_join_and_forward_higher_view;
          Alcotest.test_case "EQC requires SVC quorum" `Quick
            test_eqc_requires_svc_quorum;
          Alcotest.test_case "elected on DVC quorum" `Quick
            test_leader_elected_on_dvc_quorum;
          Alcotest.test_case "DVC ignored without own EQC vote" `Quick
            test_dvc_without_svc_quorum_is_ignored;
          Alcotest.test_case "StartView adopts" `Quick test_start_view_adopts;
          Alcotest.test_case "timer escalates views" `Quick
            test_timer_escalates_views;
          Alcotest.test_case "pings prevent view change" `Quick
            test_ping_prevents_view_change;
        ] );
    ]
