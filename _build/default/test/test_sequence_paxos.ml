(* Handler-level unit tests for Sequence Paxos: the Prepare-phase log
   synchronisation matrix, late promises, positional Accept semantics,
   decide clamping, proposal buffering, and stop-sign behaviour. The
   transport is a hand-driven queue so orderings can be orchestrated
   precisely. *)

module Sp = Omnipaxos.Sequence_paxos
module Entry = Omnipaxos.Entry
module Ballot = Omnipaxos.Ballot
module Log = Replog.Log

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cmd i = Entry.Cmd (Replog.Command.noop i)
let ballot n pid = { Ballot.n; priority = 0; pid }

type harness = {
  nodes : Sp.t array;
  queues : (int * int * Sp.msg) Queue.t;
  blocked : (int * int, unit) Hashtbl.t;  (* links whose delivery is held *)
}

let make ?(n = 3) ?(prepare = fun _ _ -> ()) () =
  let queues = Queue.create () in
  let blocked = Hashtbl.create 4 in
  let nodes =
    Array.init n (fun id ->
        let peers = List.filter (fun j -> j <> id) (List.init n Fun.id) in
        let persistent = Sp.fresh_persistent () in
        prepare id persistent;
        Sp.create ~id ~peers ~persistent
          ~send:(fun ~dst m -> Queue.add (id, dst, m) queues)
          ())
  in
  { nodes; queues; blocked }

let deliver h =
  let made_progress = ref true in
  while !made_progress do
    made_progress := false;
    let pending = Queue.length h.queues in
    for _ = 1 to pending do
      let src, dst, m = Queue.pop h.queues in
      if Hashtbl.mem h.blocked (src, dst) then Queue.add (src, dst, m) h.queues
      else begin
        made_progress := true;
        Sp.handle h.nodes.(dst) ~src m
      end
    done
  done

let flush_all h =
  Array.iter Sp.flush h.nodes;
  deliver h

let ids_of node =
  List.filter_map
    (function
      | Entry.Cmd c -> Some c.Replog.Command.id
      | Entry.Stop_sign _ -> None)
    (Sp.read_decided node ~from:0)

(* ---------------- Prepare-phase synchronisation ---------------- *)

(* The new leader lags: a follower accepted entries in a higher round; the
   leader must adopt them before proposing (constrained-election case). *)
let test_leader_adopts_higher_round_log () =
  let prepare id (p : Sp.persistent) =
    if id = 1 then begin
      (* Follower 1 accepted [0;1;2] in round (1, pid 2) and decided 2. *)
      Log.append_list p.Sp.log [ cmd 0; cmd 1; cmd 2 ];
      p.Sp.prom_rnd <- ballot 1 2;
      p.Sp.acc_rnd <- ballot 1 2;
      p.Sp.decided_idx <- 2
    end
  in
  let h = make ~prepare () in
  Sp.handle_leader h.nodes.(0) (ballot 2 0);
  deliver h;
  check_int "leader adopted the 3 entries" 3 (Sp.log_length h.nodes.(0));
  check "leader in accept phase" true (Sp.role h.nodes.(0) = Sp.Leader_accept);
  (* The leader can now extend the adopted log. *)
  ignore (Sp.propose h.nodes.(0) (cmd 7));
  flush_all h;
  check "all decided the adopted log + extension" true
    (ids_of h.nodes.(0) = [ 0; 1; 2; 7 ] && ids_of h.nodes.(1) = [ 0; 1; 2; 7 ])

(* Same round, longer follower log: only the missing tail travels. *)
let test_same_round_longer_follower () =
  let prepare id (p : Sp.persistent) =
    let entries =
      if id = 1 then [ cmd 0; cmd 1; cmd 2; cmd 3 ] else [ cmd 0; cmd 1 ]
    in
    Log.append_list p.Sp.log entries;
    p.Sp.prom_rnd <- ballot 1 2;
    p.Sp.acc_rnd <- ballot 1 2;
    p.Sp.decided_idx <- 1
  in
  let h = make ~prepare () in
  Sp.handle_leader h.nodes.(0) (ballot 2 0);
  deliver h;
  check_int "leader extended to follower's length" 4
    (Sp.log_length h.nodes.(0));
  flush_all h;
  check "followers converge" true
    (Sp.log_length h.nodes.(1) = 4 && Sp.log_length h.nodes.(2) = 4)

(* A follower's non-chosen suffix from a dead round is overwritten by
   AcceptSync (Figure 3a's [4;5;6]). *)
let test_stale_suffix_overwritten () =
  let prepare id (p : Sp.persistent) =
    if id = 2 then begin
      (* Node 2 accepted garbage in an old round that never got chosen. *)
      Log.append_list p.Sp.log [ cmd 100; cmd 101; cmd 102 ];
      p.Sp.prom_rnd <- ballot 1 2;
      p.Sp.acc_rnd <- ballot 1 2
    end
  in
  let h = make ~prepare () in
  Sp.handle_leader h.nodes.(0) (ballot 2 0);
  deliver h;
  (* Majority promise = nodes 0,1,2; node 2's log wins the max key and is
     adopted — it was accepted, so it may be chosen. This test instead
     checks the reverse: node 2 must end up a prefix-consistent copy. *)
  ignore (Sp.propose h.nodes.(0) (cmd 7));
  flush_all h;
  let l0 = Sp.read_decided h.nodes.(0) ~from:0 in
  let l2 = Sp.read_decided h.nodes.(2) ~from:0 in
  check "node 2 log converged with the leader" true (l0 = l2)

(* ---------------- Accept phase ---------------- *)

let elect h =
  Sp.handle_leader h.nodes.(0) (ballot 1 0);
  deliver h

let test_pipeline_and_decide () =
  let h = make () in
  elect h;
  for i = 0 to 9 do
    ignore (Sp.propose h.nodes.(0) (cmd i))
  done;
  flush_all h;
  flush_all h;
  check "all nodes decided 10" true
    (Array.for_all (fun nd -> Sp.decided_idx nd = 10) h.nodes)

let test_proposals_buffered_during_prepare () =
  let h = make () in
  (* Block the promises so the leader stays in the Prepare phase. *)
  Hashtbl.replace h.blocked (1, 0) ();
  Hashtbl.replace h.blocked (2, 0) ();
  Sp.handle_leader h.nodes.(0) (ballot 1 0);
  deliver h;
  check "still preparing" true (Sp.role h.nodes.(0) = Sp.Leader_prepare);
  check "proposal accepted while preparing" true (Sp.propose h.nodes.(0) (cmd 1));
  check_int "not yet in the log" 0 (Sp.log_length h.nodes.(0));
  Hashtbl.reset h.blocked;
  deliver h;
  check_int "buffered proposal appended after the phase" 1
    (Sp.log_length h.nodes.(0));
  flush_all h;
  check_int "and decided" 1 (Sp.decided_idx h.nodes.(0))

let test_follower_rejects_gap () =
  let h = make () in
  elect h;
  (* Simulate a lost batch: deliver an Accept that starts beyond the
     follower's log. It must be ignored, not applied. *)
  Sp.handle h.nodes.(1) ~src:0
    (Sp.Accept
       { n = ballot 1 0; start_idx = 5; entries = [ cmd 9 ]; decided_idx = 0 });
  check_int "gap ignored" 0 (Sp.log_length h.nodes.(1))

let test_duplicate_accept_deduplicated () =
  let h = make () in
  elect h;
  let batch =
    Sp.Accept
      {
        n = ballot 1 0;
        start_idx = 0;
        entries = [ cmd 0; cmd 1 ];
        decided_idx = 0;
      }
  in
  Sp.handle h.nodes.(1) ~src:0 batch;
  Sp.handle h.nodes.(1) ~src:0 batch;
  check_int "idempotent redelivery" 2 (Sp.log_length h.nodes.(1))

let test_decide_clamped () =
  let h = make () in
  elect h;
  (* A Decide beyond the local log must clamp, not fail or overrun. *)
  Sp.handle h.nodes.(1) ~src:0 (Sp.Decide { n = ballot 1 0; decided_idx = 50 });
  check_int "clamped to log length" 0 (Sp.decided_idx h.nodes.(1))

let test_lower_round_messages_ignored () =
  let h = make () in
  elect h;
  ignore (Sp.propose h.nodes.(0) (cmd 0));
  flush_all h;
  (* An old leader from a lower round tries to interfere. *)
  Sp.handle h.nodes.(1) ~src:2
    (Sp.Accept
       {
         n = ballot 0 2;
         start_idx = 1;
         entries = [ cmd 99 ];
         decided_idx = 0;
       });
  check_int "stale accept dropped" 1 (Sp.log_length h.nodes.(1));
  (* A Prepare from a lower round must not steal the promise. *)
  Sp.handle h.nodes.(1) ~src:2
    (Sp.Prepare { n = ballot 0 2; acc_rnd = Ballot.bottom; log_idx = 0; decided_idx = 0 });
  check "promise unchanged" true
    (Ballot.equal (Sp.current_round h.nodes.(1)) (ballot 1 0))

let test_late_promise_gets_accept_sync () =
  let h = make () in
  (* Node 2's promise is delayed past the Prepare phase. *)
  Hashtbl.replace h.blocked (2, 0) ();
  Sp.handle_leader h.nodes.(0) (ballot 1 0);
  deliver h;
  ignore (Sp.propose h.nodes.(0) (cmd 0));
  flush_all h;
  check_int "decided with the majority" 1 (Sp.decided_idx h.nodes.(0));
  check_int "straggler empty" 0 (Sp.log_length h.nodes.(2));
  Hashtbl.reset h.blocked;
  deliver h;
  flush_all h;
  check_int "straggler synchronised by AcceptSync" 1
    (Sp.log_length h.nodes.(2));
  check_int "and decided" 1 (Sp.decided_idx h.nodes.(2))

(* ---------------- stop sign ---------------- *)

let test_stop_sign_blocks_proposals () =
  let h = make () in
  elect h;
  ignore (Sp.propose h.nodes.(0) (cmd 0));
  check "stop sign accepted" true
    (Sp.propose h.nodes.(0)
       (Entry.Stop_sign { config_id = 1; nodes = [ 0; 1 ]; metadata = "" }));
  check "proposals after the stop sign are rejected" true
    (not (Sp.propose h.nodes.(0) (cmd 1)));
  check "stopped" true (Sp.is_stopped h.nodes.(0));
  check "ss not yet decided" true (Sp.stop_sign h.nodes.(0) = None);
  flush_all h;
  flush_all h;
  check "ss decided and visible" true (Sp.stop_sign h.nodes.(0) <> None);
  check "followers see it too" true (Sp.stop_sign h.nodes.(1) <> None)

(* ---------------- log compaction ---------------- *)

let test_trim_happy_path () =
  let h = make () in
  elect h;
  for i = 0 to 9 do
    ignore (Sp.propose h.nodes.(0) (cmd i))
  done;
  flush_all h;
  flush_all h;
  check "trim of a fully replicated prefix succeeds" true
    (Sp.request_trim h.nodes.(0) ~upto:5);
  deliver h;
  Array.iter
    (fun nd ->
      check_int "trim point everywhere" 5 (Log.first_idx (Sp.read_log nd)))
    h.nodes;
  (* Replication continues above the trim point. *)
  ignore (Sp.propose h.nodes.(0) (cmd 50));
  flush_all h;
  check_int "still decides" 11 (Sp.decided_idx h.nodes.(1))

let test_trim_refused_when_peer_lags () =
  let h = make () in
  (* Node 2's traffic is blocked: it never acknowledges anything. *)
  Hashtbl.replace h.blocked (0, 2) ();
  Hashtbl.replace h.blocked (2, 0) ();
  elect h;
  for i = 0 to 4 do
    ignore (Sp.propose h.nodes.(0) (cmd i))
  done;
  flush_all h;
  flush_all h;
  check_int "majority decided" 5 (Sp.decided_idx h.nodes.(0));
  check "trim refused while a peer has not accepted" true
    (not (Sp.request_trim h.nodes.(0) ~upto:5))

let test_trim_refused_beyond_decided () =
  let h = make () in
  elect h;
  ignore (Sp.propose h.nodes.(0) (cmd 0));
  check "cannot trim undecided entries" true
    (not (Sp.request_trim h.nodes.(0) ~upto:1))

let test_election_after_trim () =
  let h = make () in
  elect h;
  for i = 0 to 9 do
    ignore (Sp.propose h.nodes.(0) (cmd i))
  done;
  flush_all h;
  flush_all h;
  ignore (Sp.request_trim h.nodes.(0) ~upto:10);
  deliver h;
  (* A new leader runs its Prepare phase over compacted logs. *)
  Sp.handle_leader h.nodes.(1) (ballot 2 1);
  deliver h;
  ignore (Sp.propose h.nodes.(1) (cmd 77));
  flush_all h;
  check_int "new round proposes above the trim point" 11
    (Sp.decided_idx h.nodes.(2))

(* Snapshot repair: a follower that lost its storage and sits below the
   leader's trim point is brought up to date with a state snapshot plus the
   remaining log tail. *)
let test_snapshot_repairs_below_trim () =
  let queues = Queue.create () in
  let blocked = Hashtbl.create 4 in
  let snapshots = ref [] in
  let persistents = Array.init 3 (fun _ -> Sp.fresh_persistent ()) in
  let mk id persistent =
    let peers = List.filter (fun j -> j <> id) [ 0; 1; 2 ] in
    Sp.create ~id ~peers ~persistent
      ~send:(fun ~dst m -> Queue.add (id, dst, m) queues)
      ~snapshotter:(fun () -> "state-blob")
      ~on_snapshot:(fun idx payload -> snapshots := (id, idx, payload) :: !snapshots)
      ()
  in
  let nodes = Array.init 3 (fun id -> mk id persistents.(id)) in
  let h = { nodes; queues; blocked } in
  elect h;
  for i = 0 to 9 do
    ignore (Sp.propose h.nodes.(0) (cmd i))
  done;
  flush_all h;
  flush_all h;
  check "trim" true (Sp.request_trim h.nodes.(0) ~upto:8);
  deliver h;
  (* Node 2 loses its disk: fresh persistent state, rejoins via recovery. *)
  persistents.(2) <- Sp.fresh_persistent ();
  h.nodes.(2) <- mk 2 persistents.(2);
  Sp.recover h.nodes.(2);
  deliver h;
  flush_all h;
  check "snapshot delivered to the wiped node" true
    (List.exists (fun (id, idx, p) -> id = 2 && idx = 8 && p = "state-blob")
       !snapshots);
  check_int "log restarts at the trim point" 8
    (Log.first_idx (Sp.read_log h.nodes.(2)));
  check_int "caught up via snapshot + tail" 10 (Sp.decided_idx h.nodes.(2));
  (* Replication to the repaired node continues normally. *)
  ignore (Sp.propose h.nodes.(0) (cmd 50));
  flush_all h;
  check_int "new entries flow" 11 (Sp.decided_idx h.nodes.(2));
  check "tail readable above the snapshot" true
    (List.length (Sp.read_decided h.nodes.(2) ~from:0) = 3)

let test_single_node_cluster () =
  let h = make ~n:1 () in
  Sp.handle_leader h.nodes.(0) (ballot 1 0);
  ignore (Sp.propose h.nodes.(0) (cmd 0));
  ignore (Sp.propose h.nodes.(0) (cmd 1));
  Sp.flush h.nodes.(0);
  check_int "single node decides alone" 2 (Sp.decided_idx h.nodes.(0))

(* Randomised end-to-end property at the handler level: any sequence of
   proposals with periodic flushes yields identical decided logs. *)
let prop_convergence =
  QCheck.Test.make ~name:"proposals converge to identical decided logs"
    ~count:100
    QCheck.(small_list (int_bound 100))
    (fun proposals ->
      let h = make () in
      elect h;
      List.iteri
        (fun i p ->
          ignore (Sp.propose h.nodes.(0) (cmd p));
          if i mod 3 = 0 then flush_all h)
        proposals;
      flush_all h;
      flush_all h;
      let l0 = ids_of h.nodes.(0) in
      List.length l0 = List.length proposals
      && ids_of h.nodes.(1) = l0
      && ids_of h.nodes.(2) = l0)

let () =
  Alcotest.run "sequence_paxos"
    [
      ( "prepare",
        [
          Alcotest.test_case "adopts higher-round log" `Quick
            test_leader_adopts_higher_round_log;
          Alcotest.test_case "same round, longer follower" `Quick
            test_same_round_longer_follower;
          Alcotest.test_case "stale suffix overwritten" `Quick
            test_stale_suffix_overwritten;
          Alcotest.test_case "proposals buffered" `Quick
            test_proposals_buffered_during_prepare;
        ] );
      ( "accept",
        [
          Alcotest.test_case "pipeline and decide" `Quick
            test_pipeline_and_decide;
          Alcotest.test_case "gap rejected" `Quick test_follower_rejects_gap;
          Alcotest.test_case "duplicate dedup" `Quick
            test_duplicate_accept_deduplicated;
          Alcotest.test_case "decide clamped" `Quick test_decide_clamped;
          Alcotest.test_case "lower round ignored" `Quick
            test_lower_round_messages_ignored;
          Alcotest.test_case "late promise" `Quick
            test_late_promise_gets_accept_sync;
        ] );
      ( "stop-sign",
        [
          Alcotest.test_case "blocks proposals" `Quick
            test_stop_sign_blocks_proposals;
          Alcotest.test_case "single node" `Quick test_single_node_cluster;
        ] );
      ( "trim",
        [
          Alcotest.test_case "happy path" `Quick test_trim_happy_path;
          Alcotest.test_case "refused when a peer lags" `Quick
            test_trim_refused_when_peer_lags;
          Alcotest.test_case "refused beyond decided" `Quick
            test_trim_refused_beyond_decided;
          Alcotest.test_case "election after trim" `Quick
            test_election_after_trim;
          Alcotest.test_case "snapshot repairs below trim" `Quick
            test_snapshot_repairs_below_trim;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_convergence ]);
    ]
