(* Raft baseline tests: elections, log repair, and the paper's §2 scenario
   behaviours (recovers quorum-loss with term churn; deadlocks in the
   constrained election scenario; PreVote+CheckQuorum stabilise the chained
   scenario). *)

module Net = Simnet.Net
module C = Rsm.Cluster.Make (Rsm.Raft_adapter.Plain)
module Cpv = Rsm.Cluster.Make (Rsm.Raft_adapter.Pv_cq)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg ?(n = 3) ?(seed = 11) () =
  { Rsm.Cluster.default_config with n; seed }

let decided c id = Rsm.Raft_adapter.Plain.decided_count (C.node c id)

let propose_at c id count ~first =
  let node = C.node c id in
  let ok = ref 0 in
  for i = first to first + count - 1 do
    if Rsm.Raft_adapter.Plain.propose node (Replog.Command.noop i) then incr ok
  done;
  !ok

let test_elects_and_replicates () =
  let c = C.create (cfg ()) in
  C.run_ms c 1000.0;
  let leader = Option.get (C.leader c) in
  let n = propose_at c leader 50 ~first:0 in
  check_int "accepted" 50 n;
  C.run_ms c 500.0;
  List.iter (fun id -> check_int "decided" 50 (decided c id)) [ 0; 1; 2 ]

let test_leader_failover () =
  let c = C.create (cfg ~n:5 ()) in
  C.run_ms c 1000.0;
  let leader = Option.get (C.leader c) in
  ignore (propose_at c leader 20 ~first:0);
  C.run_ms c 500.0;
  Net.crash (C.net c) leader;
  C.run_ms c 3000.0;
  let new_leader = Option.get (C.leader c) in
  check "new leader elected" true (new_leader <> leader);
  ignore (propose_at c new_leader 20 ~first:100);
  C.run_ms c 500.0;
  check_int "progress under new leader" 40 (decided c new_leader)

(* A deposed leader's uncommitted entries must be overwritten (log
   matching). *)
let test_log_repair () =
  let c = C.create (cfg ~n:5 ()) in
  C.run_ms c 1000.0;
  let leader = Option.get (C.leader c) in
  ignore (propose_at c leader 10 ~first:0);
  C.run_ms c 500.0;
  (* Isolate the leader, then feed it entries that can never commit. *)
  Net.isolate (C.net c) leader;
  ignore (propose_at c leader 10 ~first:1000);
  C.run_ms c 3000.0;
  let new_leader = Option.get (C.leader c) in
  check "another leader" true (new_leader <> leader);
  ignore (propose_at c new_leader 10 ~first:2000);
  C.run_ms c 500.0;
  (* Reconnect the old leader: it must discard the uncommitted tail. *)
  Net.heal_all (C.net c);
  C.run_ms c 3000.0;
  let ids id = Rsm.Raft_adapter.Plain.decided_ids (C.node c id) ~from:0 in
  check "old leader converged to new log" true (ids leader = ids new_leader);
  check "no isolated-term entries decided" true
    (List.for_all (fun i -> i < 1000 || i >= 2000) (ids leader))

(* Quorum-loss: plain Raft eventually recovers via term gossip — the hub
   learns higher terms from the disconnected followers and wins an
   election — but records extra term churn. *)
let test_quorum_loss_recovers () =
  let c = C.create (cfg ~n:5 ~seed:3 ()) in
  C.run_ms c 1000.0;
  let leader = Option.get (C.leader c) in
  ignore (propose_at c leader 10 ~first:0);
  C.run_ms c 500.0;
  let hub = if leader = 0 then 1 else 0 in
  Rsm.Scenario.quorum_loss (C.net c) ~hub;
  C.run_ms c 30_000.0;
  check_int "hub recovered leadership" hub (Option.get (C.leader c));
  ignore (propose_at c hub 10 ~first:100);
  C.run_ms c 500.0;
  check "progress" true (decided c hub >= 20)

(* Constrained election: the only QC server lacks the max log, so plain Raft
   cannot elect it and the cluster is down for the whole partition. *)
let test_constrained_deadlock () =
  let c = C.create (cfg ~n:5 ~seed:3 ()) in
  C.run_ms c 1000.0;
  let leader = Option.get (C.leader c) in
  let qc = if leader = 0 then 1 else 0 in
  (* Make qc's log outdated. *)
  Net.set_link (C.net c) qc leader false;
  ignore (propose_at c leader 10 ~first:0);
  C.run_ms c 100.0;
  check "qc lags" true (decided c qc < 10);
  Rsm.Scenario.constrained (C.net c) ~qc ~leader;
  let before = C.max_decided c in
  C.run_ms c 30_000.0;
  check "no leader with progress capability" true (C.leader c = None || decided c qc = before);
  ignore (match C.leader c with Some l -> ignore (propose_at c l 5 ~first:100) | None -> ());
  C.run_ms c 2000.0;
  check_int "no new decisions during partition" before (C.max_decided c)

(* PreVote: in the chained scenario the disconnected follower cannot disturb
   the leader, so no leader change happens at all (as in Figure 8c). *)
let test_pv_cq_chained_no_change () =
  let c = Cpv.create { Rsm.Cluster.default_config with n = 3; seed = 5 } in
  Cpv.run_ms c 1000.0;
  let leader = Option.get (Cpv.leader c) in
  let other = List.find (fun i -> i <> leader) [ 0; 1; 2 ] in
  let term_before =
    Raft.Node.current_term (Rsm.Raft_adapter.Plain.node (Cpv.node c leader))
  in
  Rsm.Scenario.chained (Cpv.net c) ~a:leader ~b:other;
  Cpv.run_ms c 10_000.0;
  check_int "same leader" leader (Option.get (Cpv.leader c));
  check_int "term unchanged (PreVote absorbs disruption)" term_before
    (Raft.Node.current_term (Rsm.Raft_adapter.Plain.node (Cpv.node c leader)))

(* CheckQuorum: a leader that loses contact with a majority steps down. *)
let test_check_quorum_steps_down () =
  let c = Cpv.create { Rsm.Cluster.default_config with n = 5; seed = 5 } in
  Cpv.run_ms c 1000.0;
  let leader = Option.get (Cpv.leader c) in
  Net.isolate (Cpv.net c) leader;
  Cpv.run_ms c 3000.0;
  check "deposed" true
    (not (Rsm.Raft_adapter.Pv_cq.is_leader (Cpv.node c leader)))

let () =
  Alcotest.run "raft"
    [
      ( "raft",
        [
          Alcotest.test_case "elects and replicates" `Quick
            test_elects_and_replicates;
          Alcotest.test_case "leader failover" `Quick test_leader_failover;
          Alcotest.test_case "log repair" `Quick test_log_repair;
          Alcotest.test_case "quorum loss recovers" `Quick
            test_quorum_loss_recovers;
          Alcotest.test_case "constrained deadlock" `Quick
            test_constrained_deadlock;
          Alcotest.test_case "PV+CQ chained: no leader change" `Quick
            test_pv_cq_chained_no_change;
          Alcotest.test_case "CheckQuorum steps down" `Quick
            test_check_quorum_steps_down;
        ] );
    ]
