test/helpers.ml: Array List Omnipaxos Option Replog Simnet
