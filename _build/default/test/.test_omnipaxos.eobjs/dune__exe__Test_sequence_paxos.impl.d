test/test_sequence_paxos.ml: Alcotest Array Fun Hashtbl List Omnipaxos QCheck QCheck_alcotest Queue Replog
