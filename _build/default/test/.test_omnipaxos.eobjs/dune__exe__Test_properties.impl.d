test/test_properties.ml: Alcotest Array Fun Gen Hashtbl Helpers List Omnipaxos QCheck QCheck_alcotest Replog Rsm Simnet
