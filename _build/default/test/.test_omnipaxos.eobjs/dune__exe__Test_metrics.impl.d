test/test_metrics.ml: Alcotest List Rsm
