test/test_sequence_paxos.mli:
