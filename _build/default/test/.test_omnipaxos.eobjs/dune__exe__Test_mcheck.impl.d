test/test_mcheck.ml: Alcotest Explore List Mcheck Spec
