test/test_simnet.ml: Alcotest Fun List Option QCheck QCheck_alcotest Random Simnet
