test/test_multipaxos.ml: Alcotest List Multipaxos Option Replog Rsm Simnet
