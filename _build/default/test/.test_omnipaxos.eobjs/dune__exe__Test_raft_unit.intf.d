test/test_raft_unit.mli:
