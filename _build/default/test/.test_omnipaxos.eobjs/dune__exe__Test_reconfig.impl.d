test/test_reconfig.ml: Alcotest Array List Option Rsm
