test/test_cluster.ml: Alcotest List Option Rsm Simnet
