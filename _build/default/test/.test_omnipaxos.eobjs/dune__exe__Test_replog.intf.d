test/test_replog.mli:
