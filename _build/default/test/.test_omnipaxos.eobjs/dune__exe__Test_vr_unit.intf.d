test/test_vr_unit.mli:
