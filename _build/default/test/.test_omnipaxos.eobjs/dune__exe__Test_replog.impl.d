test/test_replog.ml: Alcotest Gen List QCheck QCheck_alcotest Replog
