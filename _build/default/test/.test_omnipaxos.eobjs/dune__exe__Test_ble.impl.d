test/test_ble.ml: Alcotest Array Fun Gen List Omnipaxos Option QCheck QCheck_alcotest Queue
