test/test_ble.mli:
