test/test_vr.ml: Alcotest List Option Replog Rsm Simnet Vr
