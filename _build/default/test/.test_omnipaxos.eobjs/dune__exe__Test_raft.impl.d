test/test_raft.ml: Alcotest List Option Raft Replog Rsm Simnet
