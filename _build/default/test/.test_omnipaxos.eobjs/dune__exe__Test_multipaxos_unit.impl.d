test/test_multipaxos_unit.ml: Alcotest List Multipaxos Random Replog
