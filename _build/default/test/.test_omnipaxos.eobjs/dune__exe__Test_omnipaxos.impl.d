test/test_omnipaxos.ml: Alcotest Helpers List Omnipaxos Option Printf Replog Simnet
