test/test_omnipaxos.mli:
