test/test_multipaxos.mli:
