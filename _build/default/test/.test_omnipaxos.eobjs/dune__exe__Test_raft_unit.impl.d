test/test_raft_unit.ml: Alcotest List Raft Random Replog
