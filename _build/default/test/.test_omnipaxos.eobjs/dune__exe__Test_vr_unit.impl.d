test/test_vr_unit.ml: Alcotest List Vr
