test/test_multipaxos_unit.mli:
