(* Tests for the evaluation harness itself: the cluster driver's leader
   selection, the closed-loop client's flow control and retry logic, and
   the scenario helpers. *)

module Net = Simnet.Net
module C = Rsm.Cluster.Make (Rsm.Omni_adapter)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg ?(n = 3) () = { Rsm.Cluster.default_config with n; seed = 3 }

let test_client_keeps_cp_outstanding () =
  let c = C.create (cfg ()) in
  let client = C.start_client c ~cp:100 in
  C.run_ms c 2000.0;
  Rsm.Client.stop client;
  let decided = Rsm.Client.decided client in
  check "client drove a sustained load" true (decided > 1000);
  (* Flow control: the decided count can never exceed what cp allows given
     at least one tick of turnaround per batch. *)
  check "bounded by cp per poll" true
    (decided <= 100 * int_of_float (2000.0 /. 5.0))

let test_client_retries_after_leader_loss () =
  let c = C.create (cfg ~n:5 ()) in
  let client = C.start_client c ~cp:50 in
  C.run_ms c 1000.0;
  let leader = Option.get (C.leader c) in
  let before = Rsm.Client.decided client in
  Net.crash (C.net c) leader;
  (* The in-flight proposals at the dead leader are lost; the client must
     abandon and re-propose once a new leader emerges. *)
  C.run_ms c 3000.0;
  Rsm.Client.stop client;
  check "progress resumed after the leader died" true
    (Rsm.Client.decided client > before);
  check "client observed the leader change" true
    (Rsm.Client.leader_changes client >= 1)

let test_leader_pick_prefers_progress () =
  (* During a chained partition two servers can claim leadership; the driver
     must route the client to the one actually deciding. *)
  let c = C.create (cfg ()) in
  let client = C.start_client c ~cp:50 in
  C.run_ms c 1000.0;
  let l0 = Option.get (C.leader c) in
  let other = if l0 = 0 then 1 else 0 in
  Rsm.Scenario.chained (C.net c) ~a:l0 ~b:other;
  C.run_ms c 2000.0;
  let picked = Option.get (C.leader c) in
  let before = C.max_decided c in
  C.run_ms c 1000.0;
  Rsm.Client.stop client;
  check "picked leader is making progress" true (C.max_decided c > before);
  check_int "picked the takeover leader" other picked

let test_scenarios_cut_expected_links () =
  let net : unit Net.t = Net.create ~num_nodes:5 () in
  Rsm.Scenario.quorum_loss net ~hub:2;
  check "hub links stay up" true
    (List.for_all (fun j -> j = 2 || Net.link_up net 2 j) [ 0; 1; 2; 3; 4 ]);
  check "non-hub links are down" true
    (not (Net.link_up net 0 1) && not (Net.link_up net 3 4));
  Rsm.Scenario.heal net;
  check "heal restores" true (Net.link_up net 0 1);
  Rsm.Scenario.chain_of net ~order:[ 4; 3; 2; 1; 0 ];
  check "consecutive up" true (Net.link_up net 4 3 && Net.link_up net 1 0);
  check "non-consecutive down" true
    ((not (Net.link_up net 4 2)) && not (Net.link_up net 3 0));
  Rsm.Scenario.heal net;
  Rsm.Scenario.constrained net ~qc:1 ~leader:4;
  check "leader isolated" true
    (List.for_all (fun j -> j = 4 || not (Net.link_up net 4 j)) [ 0; 1; 2; 3 ]);
  check "qc keeps its other links" true
    (Net.link_up net 1 0 && Net.link_up net 1 2 && Net.link_up net 1 3);
  check "others only reach qc" true (not (Net.link_up net 0 2))

let () =
  Alcotest.run "cluster"
    [
      ( "harness",
        [
          Alcotest.test_case "client flow control" `Quick
            test_client_keeps_cp_outstanding;
          Alcotest.test_case "client retry on leader loss" `Quick
            test_client_retries_after_leader_loss;
          Alcotest.test_case "leader pick prefers progress" `Quick
            test_leader_pick_prefers_progress;
          Alcotest.test_case "scenario link matrices" `Quick
            test_scenarios_cut_expected_links;
        ] );
    ]
