(* Unit tests for Ballot Leader Election with hand-driven message delivery:
   the LE1-LE3 properties of §5.1, the takeover mechanics of each §2
   scenario at the BLE level, and the QC-signal ablation. *)

module Ble = Omnipaxos.Ble
module Ballot = Omnipaxos.Ballot

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A tiny synchronous harness: n BLE instances, a link matrix, message
   queues drained between ticks. *)
type harness = {
  n : int;
  instances : Ble.t array;
  queues : (int * int * Ble.msg) Queue.t;  (* src, dst, msg *)
  link : bool array array;
  elected : (int * Ballot.t) list ref;  (* every on_leader event, per node *)
}

let make_harness ?(qc_signal = true) ?(connectivity_priority = false)
    ?priority_of n =
  let queues = Queue.create () in
  let elected = ref [] in
  let instances =
    Array.init n (fun id ->
        let peers = List.filter (fun j -> j <> id) (List.init n Fun.id) in
        let priority =
          match priority_of with Some f -> f id | None -> 0
        in
        Ble.create ~id ~peers ~qc_signal ~connectivity_priority ~priority
          ~persistent:(Ble.fresh_persistent ())
          ~send:(fun ~dst m -> Queue.add (id, dst, m) queues)
          ~on_leader:(fun b -> elected := (id, b) :: !elected)
          ())
  in
  { n; instances; queues; link = Array.make_matrix n n true; elected }

let drain h =
  while not (Queue.is_empty h.queues) do
    let src, dst, m = Queue.pop h.queues in
    if h.link.(src).(dst) then Ble.handle h.instances.(dst) ~src m
  done

let round h =
  Array.iter Ble.tick h.instances;
  drain h;
  drain h

let rounds h k = for _ = 1 to k do round h done

let leader_of h id = Ble.leader h.instances.(id)

let cut h a b =
  h.link.(a).(b) <- false;
  h.link.(b).(a) <- false

let cut_oneway h ~src ~dst = h.link.(src).(dst) <- false

let test_initial_election () =
  let h = make_harness 5 in
  rounds h 4;
  (* All servers elect the same leader: the max ballot belongs to pid 4. *)
  for id = 0 to 4 do
    match leader_of h id with
    | Some b -> check_int "all elect pid 4" 4 b.Ballot.pid
    | None -> Alcotest.fail "no leader elected"
  done

let test_le3_monotone_unique () =
  let h = make_harness 3 in
  rounds h 4;
  (* Kill the leader and let another take over; every server's sequence of
     elected ballots must be strictly increasing (LE3). *)
  cut h 2 0;
  cut h 2 1;
  rounds h 6;
  let per_node id =
    List.rev
      (List.filter_map
         (fun (n, b) -> if n = id then Some b else None)
         !(h.elected))
  in
  let strictly_increasing l =
    let rec go = function
      | a :: (b :: _ as rest) -> Ballot.(b > a) && go rest
      | [ _ ] | [] -> true
    in
    go l
  in
  for id = 0 to 1 do
    check "ballots strictly increase" true (strictly_increasing (per_node id))
  done

let test_quorum_loss_takeover () =
  let h = make_harness 5 in
  rounds h 4;
  check_int "initial leader" 4 (Option.get (leader_of h 0)).Ballot.pid;
  (* Quorum loss: only node 0 keeps all its links. Leader 4 stays connected
     to 0, so it is alive — but no longer QC. *)
  for a = 1 to 4 do
    for b = a + 1 to 4 do
      cut h a b
    done
  done;
  rounds h 6;
  check_int "hub elected itself" 0 (Option.get (leader_of h 0)).Ballot.pid;
  check "old leader reports not QC" true
    (not (Ble.is_quorum_connected h.instances.(4)))

let test_non_qc_does_not_elect () =
  let h = make_harness 5 in
  rounds h 4;
  for a = 1 to 4 do
    for b = a + 1 to 4 do
      cut h a b
    done
  done;
  let before = (Option.get (leader_of h 1)).Ballot.pid in
  rounds h 6;
  (* LE1 requires only QC servers to elect; the spokes (not QC) keep their
     last elected leader rather than following ballots they cannot vet. *)
  check_int "spoke's elected leader unchanged" before
    (Option.get (leader_of h 1)).Ballot.pid

let test_constrained_takeover () =
  let h = make_harness 5 in
  rounds h 4;
  (* Leader 4 fully isolated; node 0 the only QC server. *)
  for j = 0 to 3 do
    cut h 4 j
  done;
  for a = 1 to 3 do
    for b = a + 1 to 3 do
      cut h a b
    done
  done;
  rounds h 6;
  check_int "only QC server takes over" 0
    (Option.get (leader_of h 0)).Ballot.pid

let test_chained_single_change () =
  let h = make_harness 3 in
  rounds h 4;
  check_int "initial leader" 2 (Option.get (leader_of h 0)).Ballot.pid;
  cut h 2 1;
  rounds h 6;
  (* Node 1 takes over; node 0 follows the higher ballot; and because
     heartbeats carry no leader identity, the stale leader 2 cannot learn of
     it via node 0 and does not fight back. *)
  check_int "node 0 follows the takeover" 1
    (Option.get (leader_of h 0)).Ballot.pid;
  check_int "node 1 leads" 1 (Option.get (leader_of h 1)).Ballot.pid;
  let b_after = (Ble.current_ballot h.instances.(1)).Ballot.n in
  rounds h 10;
  check_int "no livelock: ballot stable" b_after
    (Ble.current_ballot h.instances.(1)).Ballot.n

(* Ablation: without the QC flag in heartbeats, the quorum-loss scenario
   deadlocks — the hub keeps seeing the stale leader's (higher) ballot among
   the candidates and never takes over (Table 1's "QC status heartbeats"
   column). *)
let test_ablation_no_qc_signal () =
  let h = make_harness ~qc_signal:false 5 in
  rounds h 4;
  check_int "initial leader" 4 (Option.get (leader_of h 0)).Ballot.pid;
  for a = 1 to 4 do
    for b = a + 1 to 4 do
      cut h a b
    done
  done;
  rounds h 10;
  check_int "hub never takes over without the QC flag" 4
    (Option.get (leader_of h 0)).Ballot.pid

(* Half-duplex partial connectivity (§8): the heartbeat request/response
   pair only counts as connectivity when both directions work, so a leader
   that can send but not receive (or vice versa) loses quorum-connectivity
   and a full-duplex QC server takes over. *)
let test_half_duplex_incoming_lost () =
  let h = make_harness 5 in
  rounds h 4;
  check_int "initial leader" 4 (Option.get (leader_of h 0)).Ballot.pid;
  (* Leader 4's incoming directions die: its requests go out, but replies
     never come back. *)
  for j = 0 to 3 do
    cut_oneway h ~src:j ~dst:4
  done;
  rounds h 6;
  check "leader detects it lost full-duplex QC" true
    (not (Ble.is_quorum_connected h.instances.(4)));
  check "a full-duplex server leads" true
    ((Option.get (leader_of h 0)).Ballot.pid <> 4)

let test_half_duplex_outgoing_lost () =
  let h = make_harness 5 in
  rounds h 4;
  (* Leader 4's outgoing directions die: requests never reach the peers. *)
  for j = 0 to 3 do
    cut_oneway h ~src:4 ~dst:j
  done;
  rounds h 6;
  check "leader not QC with dead outgoing links" true
    (not (Ble.is_quorum_connected h.instances.(4)));
  check "a full-duplex server leads" true
    ((Option.get (leader_of h 0)).Ballot.pid <> 4)

(* §8 connectivity optimisation: among simultaneous takeover candidates at
   the same round number, the ballot priority carries each candidate's
   connectivity, so the best-connected one wins — here node 0, which would
   lose the plain pid tie-break against node 3. *)
(* After the leader dies, the remaining topology is
   0-1, 0-2, 0-3, 1-2: node 0 hears 3 peers (QC, connectivity 4), nodes 1
   and 2 hear 2 peers (QC, connectivity 3), node 3 hears only node 0 (not
   QC). *)
let connectivity_setup h =
  rounds h 4;
  check_int "initial leader" 4 (Option.get (leader_of h 0)).Ballot.pid;
  for j = 0 to 3 do
    cut h 4 j
  done;
  cut h 1 3;
  cut h 2 3;
  rounds h 8

let test_connectivity_priority_prefers_connected () =
  let h = make_harness ~connectivity_priority:true 5 in
  connectivity_setup h;
  check_int "best-connected candidate wins" 0
    (Option.get (leader_of h 0)).Ballot.pid

let test_without_connectivity_priority_pid_wins () =
  let h = make_harness ~connectivity_priority:false 5 in
  connectivity_setup h;
  check_int "plain tie-break favours the higher pid among QC candidates" 2
    (Option.get (leader_of h 0)).Ballot.pid

let test_priority_breaks_ties () =
  let queues = Queue.create () in
  let elected = ref [] in
  let n = 3 in
  let instances =
    Array.init n (fun id ->
        let peers = List.filter (fun j -> j <> id) (List.init n Fun.id) in
        (* Node 0 gets the highest priority. *)
        Ble.create ~id ~peers ~priority:(10 - id)
          ~persistent:(Ble.fresh_persistent ())
          ~send:(fun ~dst m -> Queue.add (id, dst, m) queues)
          ~on_leader:(fun b -> elected := (id, b) :: !elected)
          ())
  in
  let h = { n; instances; queues; link = Array.make_matrix n n true; elected } in
  rounds h 4;
  check_int "priority wins the tie" 0 (Option.get (leader_of h 1)).Ballot.pid

(* LE1 / LE2 as properties over random static connectivity graphs: after the
   ballots stabilise,
   - LE1: every quorum-connected server elects some quorum-connected server
     (if any QC server exists);
   - LE2: there is a majority S such that no two QC servers in S elect
     differently. *)
let prop_le1_le2_random_graphs =
  let n = 5 in
  let quorum = 3 in
  let edges =
    List.concat_map
      (fun a -> List.filter_map (fun b -> if a < b then Some (a, b) else None)
                  (List.init n Fun.id))
      (List.init n Fun.id)
  in
  QCheck.Test.make ~name:"LE1/LE2 on random static graphs" ~count:150
    QCheck.(list_of_size (Gen.return (List.length edges)) bool)
    (fun mask ->
      let h = make_harness n in
      (* Start fully connected so an initial leader exists, then apply the
         random graph. *)
      rounds h 4;
      List.iteri
        (fun i (a, b) -> if not (List.nth mask i) then cut h a b)
        edges;
      rounds h 12;
      let connected a b = h.link.(a).(b) in
      let degree i =
        List.length
          (List.filter (fun j -> j <> i && connected i j) (List.init n Fun.id))
      in
      let qc i = degree i + 1 >= quorum in
      let elected i = Option.map (fun b -> b.Ballot.pid) (leader_of h i) in
      let le1 =
        List.for_all
          (fun i ->
            (not (qc i))
            || match elected i with Some l -> qc l | None -> false)
          (List.init n Fun.id)
      in
      (* LE2: some majority whose QC members agree. *)
      let rec subsets k from =
        if k = 0 then [ [] ]
        else if from >= n then []
        else
          List.map (fun s -> from :: s) (subsets (k - 1) (from + 1))
          @ subsets k (from + 1)
      in
      let le2 =
        (not (List.exists qc (List.init n Fun.id)))
        || List.exists
             (fun s ->
               let qc_elects =
                 List.filter_map
                   (fun i -> if qc i then Some (elected i) else None)
                   s
               in
               match qc_elects with
               | [] -> true
               | e :: rest -> List.for_all (fun e' -> e' = e) rest)
             (subsets quorum 0)
      in
      le1 && le2)

let () =
  Alcotest.run "ble"
    [
      ( "ble",
        [
          Alcotest.test_case "initial election" `Quick test_initial_election;
          Alcotest.test_case "LE3 monotone unique" `Quick
            test_le3_monotone_unique;
          Alcotest.test_case "quorum-loss takeover" `Quick
            test_quorum_loss_takeover;
          Alcotest.test_case "non-QC does not elect" `Quick
            test_non_qc_does_not_elect;
          Alcotest.test_case "constrained takeover" `Quick
            test_constrained_takeover;
          Alcotest.test_case "chained single change" `Quick
            test_chained_single_change;
          Alcotest.test_case "ablation: no QC signal" `Quick
            test_ablation_no_qc_signal;
          Alcotest.test_case "half-duplex: incoming lost" `Quick
            test_half_duplex_incoming_lost;
          Alcotest.test_case "half-duplex: outgoing lost" `Quick
            test_half_duplex_outgoing_lost;
          Alcotest.test_case "connectivity priority wins" `Quick
            test_connectivity_priority_prefers_connected;
          Alcotest.test_case "pid tie-break without it" `Quick
            test_without_connectivity_priority_pid_wins;
          Alcotest.test_case "priority breaks ties" `Quick
            test_priority_breaks_ties;
          QCheck_alcotest.to_alcotest prop_le1_le2_random_graphs;
        ] );
    ]
