(* Quickstart: run a 3-server Omni-Paxos cluster on the simulated network,
   replicate a few commands, and read back the decided log.

   Run with: dune exec examples/quickstart.exe *)

module Net = Simnet.Net
module Replica = Omnipaxos.Replica

let () =
  let n = 3 in
  let net : Replica.msg Net.t = Net.create ~num_nodes:n () in

  (* Each server keeps its state in a caller-owned storage record — this is
     what survives a crash. *)
  let storages = Array.init n (fun _ -> Replica.Storage.create ()) in
  let replicas =
    Array.init n (fun id ->
        let peers = List.filter (fun j -> j <> id) (List.init n Fun.id) in
        Replica.create ~id ~peers ~storage:storages.(id)
          ~send:(fun ~dst m ->
            Net.send net ~src:id ~dst ~size:(Replica.msg_size m) m)
          ())
  in
  Array.iteri
    (fun id r ->
      Net.set_handler net id (fun ~src m -> Replica.handle r ~src m);
      Net.set_session_handler net id (fun ~peer -> Replica.session_reset r ~peer))
    replicas;

  (* Drive the servers' timers: one tick every 5 ms; with the default
     hb_ticks = 10 this makes the election timeout 50 ms. *)
  let rec tick_loop () =
    Net.schedule net ~delay:5.0 (fun () ->
        Array.iter Replica.tick replicas;
        tick_loop ())
  in
  tick_loop ();

  (* Let BLE elect a leader. *)
  Net.run_for net 200.0;
  let leader =
    Array.to_list replicas |> List.find Replica.is_leader |> Replica.ble
    |> Omnipaxos.Ble.current_ballot
  in
  Format.printf "elected leader: server %d (ballot %a)@." leader.Omnipaxos.Ballot.pid
    Omnipaxos.Ballot.pp leader;

  (* Propose commands at the leader. *)
  let leader_replica =
    Array.to_list replicas |> List.find Replica.is_leader
  in
  for i = 0 to 9 do
    let cmd = Replog.Command.make ~id:i (Replog.Command.Kv_put (Printf.sprintf "key%d" i, string_of_int (i * i))) in
    ignore (Replica.propose_cmd leader_replica cmd)
  done;
  Net.run_for net 100.0;

  (* Every server has decided the same log; apply it to a KV store. *)
  Array.iteri
    (fun id r ->
      let kv = Replog.Kv.create () in
      List.iter
        (function
          | Omnipaxos.Entry.Cmd c -> ignore (Replog.Kv.apply kv c)
          | Omnipaxos.Entry.Stop_sign _ -> ())
        (Replica.read_decided r ~from:0);
      Format.printf "server %d: decided %d entries, key5=%s@." id
        (Replica.decided_idx r)
        (Option.value (Replog.Kv.get kv "key5") ~default:"?"))
    replicas;
  Format.printf "quickstart done.@."
