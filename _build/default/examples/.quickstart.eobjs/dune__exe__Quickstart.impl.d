examples/quickstart.ml: Array Format Fun List Omnipaxos Option Printf Replog Simnet
