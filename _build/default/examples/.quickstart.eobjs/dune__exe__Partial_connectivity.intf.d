examples/partial_connectivity.mli:
