examples/quickstart.mli:
