examples/kv_store.ml: Array Format Fun List Omnipaxos Option Replog Simnet
