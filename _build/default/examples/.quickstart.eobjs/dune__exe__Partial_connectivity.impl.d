examples/partial_connectivity.ml: Format Option Printf Rsm Simnet
