examples/reconfiguration.mli:
