examples/rolling_upgrade.ml: Format List Rsm
