examples/reconfiguration.ml: Format List Printf Rsm
