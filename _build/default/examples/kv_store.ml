(* A replicated key-value store on top of Omni-Paxos: every server applies
   the decided log to its local KV state machine, so all copies stay
   identical even across leader crashes and recoveries.

   Run with: dune exec examples/kv_store.exe *)

module Net = Simnet.Net
module Replica = Omnipaxos.Replica
module Command = Replog.Command

type server = {
  id : int;
  storage : Replica.Storage.t;
  mutable replica : Replica.t option;
  mutable kv : Replog.Kv.t;
  mutable applied : int;
}

let n = 3

let () =
  let net : Replica.msg Net.t = Net.create ~num_nodes:n () in
  let servers =
    Array.init n (fun id ->
        {
          id;
          storage = Replica.Storage.create ();
          replica = None;
          kv = Replog.Kv.create ();
          applied = 0;
        })
  in

  (* Applying the log happens in the decide callback: the state machine is
     always a deterministic function of the decided prefix. *)
  let apply_decided s upto =
    match s.replica with
    | None -> ()
    | Some r ->
        List.iter
          (function
            | Omnipaxos.Entry.Cmd c -> ignore (Replog.Kv.apply s.kv c)
            | Omnipaxos.Entry.Stop_sign _ -> ())
          (Replica.read_decided r ~from:s.applied);
        s.applied <- upto
  in
  let attach s =
    let peers = List.filter (fun j -> j <> s.id) (List.init n Fun.id) in
    let r =
      Replica.create ~id:s.id ~peers ~storage:s.storage
        ~send:(fun ~dst m ->
          Net.send net ~src:s.id ~dst ~size:(Replica.msg_size m) m)
        ~on_decide:(fun upto -> apply_decided s upto)
        ()
    in
    s.replica <- Some r;
    Net.set_handler net s.id (fun ~src m -> Replica.handle r ~src m);
    Net.set_session_handler net s.id (fun ~peer ->
        Replica.session_reset r ~peer)
  in
  Array.iter attach servers;
  let rec tick_loop () =
    Net.schedule net ~delay:5.0 (fun () ->
        Array.iter
          (fun s ->
            match s.replica with
            | Some r when Net.is_up net s.id -> Replica.tick r
            | Some _ | None -> ())
          servers;
        tick_loop ())
  in
  tick_loop ();
  Net.run_for net 300.0;

  let leader () =
    Array.to_list servers
    |> List.find (fun s ->
           Net.is_up net s.id
           && match s.replica with
              | Some r -> Replica.is_leader r
              | None -> false)
  in
  let put k v id =
    ignore
      (Replica.propose_cmd
         (Option.get (leader ()).replica)
         (Command.make ~id (Command.Kv_put (k, v))))
  in

  Format.printf "writing an inventory through the replicated log...@.";
  put "apples" "12" 1;
  put "pears" "7" 2;
  put "plums" "31" 3;
  Net.run_for net 100.0;

  (* Crash the leader: the KV survives because a majority holds the log. *)
  let crashed = (leader ()).id in
  Format.printf "crashing the leader (server %d)...@." crashed;
  Net.crash net crashed;
  servers.(crashed).replica <- None;
  Net.run_for net 500.0;
  put "apples" "13" 4;
  put "cherries" "88" 5;
  Net.run_for net 200.0;

  (* Recover the crashed server from its persistent storage: it re-syncs via
     PrepareReq and replays the whole log into a fresh KV state machine. *)
  Format.printf "recovering server %d from stable storage...@." crashed;
  Net.recover net crashed;
  let s = servers.(crashed) in
  s.kv <- Replog.Kv.create ();
  s.applied <- 0;
  attach s;
  Replica.recover (Option.get s.replica);
  Net.run_for net 1000.0;
  apply_decided s (Replica.decided_idx (Option.get s.replica));

  Format.printf "@.final state on every server:@.";
  Array.iter
    (fun s ->
      Format.printf
        "  server %d: apples=%s cherries=%s (applied %d commands)@." s.id
        (Option.value (Replog.Kv.get s.kv "apples") ~default:"?")
        (Option.value (Replog.Kv.get s.kv "cherries") ~default:"?")
        (Replog.Kv.applied s.kv))
    servers
