(* Reconfiguration walkthrough (§6 of the paper): stop a 5-server
   configuration with a stop-sign, migrate the log to a new server in
   parallel from all continuing servers, and continue in the new
   configuration — then compare against Raft's leader-driven scheme.

   Run with: dune exec examples/reconfiguration.exe *)

let show name (p : Rsm.Reconfig.params) (r : Rsm.Reconfig.result) =
  Format.printf "@.%s:@." name;
  let fmt_t = function
    | Some t -> Printf.sprintf "%.1fs" (t /. 1000.0)
    | None -> "never"
  in
  Format.printf "  stop-sign/config committed at %s@."
    (fmt_t r.reconfig_committed_at);
  Format.printf "  every new server up and running at %s@."
    (fmt_t r.migration_done_at);
  Format.printf "  client commands decided over the run: %d@." r.decided;
  let windows =
    Rsm.Metrics.Series.windowed r.series ~from:0.0 ~until:p.total_ms
      ~window:5000.0
  in
  Format.printf "  throughput per 5s window (req/s):@.   ";
  List.iter
    (fun (t, d) -> Format.printf " %.0fs:%d" (t /. 1000.0) (d / 5))
    windows;
  Format.printf "@."

let () =
  let params =
    {
      Rsm.Reconfig.net_cfg =
        {
          Rsm.Cluster.default_config with
          n = 8;
          egress_bw = 1000.0 (* 1 MB/s: makes the migration visible *);
          election_timeout_ms = 250.0;
        };
      old_nodes = [ 0; 1; 2; 3; 4 ];
      new_nodes = [ 0; 1; 2; 3; 5 ] (* replace server 4 with server 5 *);
      preload = 200_000 (* pre-existing log: 200k 8-byte entries *);
      cp = 500;
      reconfigure_at = 10_000.0;
      total_ms = 40_000.0;
      segment_entries = 25_000;
      faults = [];
    }
  in
  Format.printf
    "Replacing server 4 with server 5 in a 5-server cluster that already@.\
     holds a %d-entry log. The new server must fetch %.1f MB before it can@.\
     participate.@."
    params.preload
    (float_of_int (params.preload * 8) /. 1.0e6);
  let omni = Rsm.Reconfig.Omni.run params in
  show "Omni-Paxos (stop-sign + parallel migration in the service layer)"
    params omni;
  let raft = Rsm.Reconfig.Raft_runner.run params in
  show "Raft (learner catch-up streamed by the leader alone)" params raft;
  match (omni.migration_done_at, raft.migration_done_at) with
  | Some o, Some r ->
      Format.printf
        "@.Omni-Paxos completed the reconfiguration %.1fx faster.@."
        ((r -. params.reconfigure_at) /. (o -. params.reconfigure_at))
  | _ -> Format.printf "@.(a reconfiguration did not complete)@."
