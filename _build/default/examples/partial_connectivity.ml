(* Partial-connectivity walkthrough: replays the three scenarios of §2 of
   the paper against an Omni-Paxos cluster and narrates what happens —
   the constant-time recovery that deadlocks or livelocks other protocols.

   Run with: dune exec examples/partial_connectivity.exe *)

module Net = Simnet.Net
module C = Rsm.Cluster.Make (Rsm.Omni_adapter)

let banner fmt = Format.printf ("@.== " ^^ fmt ^^ " ==@.")

let show c msg =
  let leader =
    match C.leader c with Some l -> string_of_int l | None -> "none"
  in
  Format.printf "t=%6.0fms  leader=%-4s decided=%-7d  %s@." (C.now c) leader
    (C.max_decided c) msg

let run_scenario ~name ~apply =
  banner "%s" name;
  let cfg =
    { Rsm.Cluster.default_config with n = 5; election_timeout_ms = 50.0 }
  in
  let c = C.create cfg in
  let client = C.start_client c ~cp:100 in
  C.run_ms c 1000.0;
  show c "warmed up; client keeps 100 proposals outstanding";
  let before = C.max_decided c in
  apply c;
  show c "partition applied";
  C.run_ms c 1000.0;
  show c
    (Printf.sprintf "1s later: +%d decided since the partition"
       (C.max_decided c - before));
  Rsm.Scenario.heal (C.net c);
  C.run_ms c 500.0;
  show c "healed";
  Rsm.Client.stop client

let () =
  Format.printf
    "Replaying the partial-connectivity scenarios of the paper's Figure 1@.";

  (* a) Quorum-loss: everyone stays connected to server 0 only. The old
     leader is alive but no longer quorum-connected; BLE's QC flag makes it
     give up leadership and server 0 takes over within ~4 timeouts. *)
  run_scenario ~name:"quorum-loss scenario (Figure 1a)" ~apply:(fun c ->
      Rsm.Scenario.quorum_loss (C.net c) ~hub:0);

  (* b) Constrained election: the leader is fully partitioned and the only
     QC server (0) has an outdated log — it was cut off from the leader
     first. It still gets elected and catches up during the Prepare phase:
     quorum-connectivity is the only candidate requirement. *)
  run_scenario ~name:"constrained election scenario (Figure 1b)"
    ~apply:(fun c ->
      let leader = Option.get (C.leader c) in
      Net.set_link (C.net c) 0 leader false;
      C.run_ms c 20.0;
      Rsm.Scenario.constrained (C.net c) ~qc:0 ~leader);

  (* c) Chained scenario: one link of a 3-server-style chain breaks. Exactly
     one leader change happens; ballots carry no leader identity to gossip,
     so the deposed end cannot livelock the cluster. *)
  banner "chained scenario (Figure 1c)";
  let cfg =
    { Rsm.Cluster.default_config with n = 3; election_timeout_ms = 50.0 }
  in
  let c = C.create cfg in
  let client = C.start_client c ~cp:100 in
  C.run_ms c 1000.0;
  show c "warmed up (3 servers)";
  let leader = Option.get (C.leader c) in
  let other = if leader = 0 then 1 else 0 in
  Rsm.Scenario.chained (C.net c) ~a:leader ~b:other;
  C.run_ms c 2000.0;
  show c
    (Printf.sprintf "after the %d-%d cut: leader changes seen by client = %d"
       leader other
       (Rsm.Client.leader_changes client));
  Rsm.Client.stop client;
  Format.printf "@.done.@."
