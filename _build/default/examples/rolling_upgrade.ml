(* Software upgrade through reconfiguration (§6.1): because each
   configuration runs isolated BLE + Sequence Paxos instances, reconfiguring
   to the *same* set of servers swaps in fresh protocol instances ("new
   version") behind the stop-sign, without any log migration — the paper's
   answer to version-compatibility problems in Raft systems.

   Run with: dune exec examples/rolling_upgrade.exe *)

let () =
  let params =
    {
      Rsm.Reconfig.net_cfg =
        { Rsm.Cluster.default_config with n = 5; election_timeout_ms = 50.0 };
      old_nodes = [ 0; 1; 2; 3; 4 ];
      new_nodes = [ 0; 1; 2; 3; 4 ] (* same servers: a pure upgrade *);
      preload = 0;
      cp = 500;
      reconfigure_at = 3_000.0;
      total_ms = 10_000.0;
      segment_entries = 10_000;
      faults = [];
    }
  in
  Format.printf
    "Upgrading a 5-server cluster in place: configuration c0 is stopped@.\
     with a stop-sign and every server immediately starts its c1 instances@.\
     (no log migration needed - everyone already has the log).@.";
  let r = Rsm.Reconfig.Omni.run params in
  (match (r.reconfig_committed_at, r.migration_done_at) with
  | Some stop, Some up ->
      Format.printf
        "@.stop-sign decided at %.2fs; every server running the new version \
         at %.2fs@.switch-over gap: %.0f ms@."
        (stop /. 1000.0) (up /. 1000.0) (up -. stop)
  | _ -> Format.printf "@.upgrade did not complete@.");
  Format.printf "throughput per 1s window (req/s):@. ";
  List.iter
    (fun (t, d) -> Format.printf " %.0fs:%d" (t /. 1000.0) d)
    (Rsm.Metrics.Series.windowed r.series ~from:0.0 ~until:params.total_ms
       ~window:1000.0);
  Format.printf "@.decided in total: %d@." r.decided
