(* The benchmark sections, shared by bench/main.ml (human-readable output
   plus BENCH_<section>.json files) and bench/determinism_check.ml (which
   runs sections twice and compares the rendered JSON byte-for-byte).

   Each section runs full simulated clusters and returns the machine-
   readable report envelope; [print] selects whether the human-readable
   tables also go to stdout. Everything in the JSON is a pure function of
   the simulation results (no wall-clock, no filesystem state), which is
   what makes the double-run comparison meaningful. *)

module E = Rsm.Experiments
module Series = Rsm.Metrics.Series
module J = Bench_report.Json

let say print fmt =
  if print then Printf.printf fmt else Printf.ifprintf stdout fmt

let header print title =
  say print "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

let mark b = if b then "yes" else "NO "

let envelope ~section ~seeds ~quick ~rows =
  Bench_report.Report.envelope ~section ~seeds ~quick ~rows

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let run_table1 ~quick ~print =
  header print
    "Table 1: stable progress under partial-connectivity scenarios\n\
     (paper: Omni-Paxos is the only protocol that survives all three)";
  let seeds = if quick then [ 1 ] else [ 1; 2 ] in
  let partition_ms = if quick then 15_000.0 else 30_000.0 in
  let rows = E.table1 ~seeds ~partition_ms () in
  say print "%-14s %-12s %-12s %-8s\n" "protocol" "quorum-loss" "constrained"
    "chained";
  List.iter
    (fun (r : E.table1_row) ->
      say print "%-14s %-12s %-12s %-8s\n" r.t1_protocol
        (mark r.t1_quorum_loss) (mark r.t1_constrained) (mark r.t1_chained))
    rows;
  let json_rows =
    List.map
      (fun (r : E.table1_row) ->
        J.Obj
          [
            ("protocol", J.String r.t1_protocol);
            ("quorum_loss", J.Bool r.t1_quorum_loss);
            ("constrained", J.Bool r.t1_constrained);
            ("chained", J.Bool r.t1_chained);
          ])
      rows
  in
  envelope ~section:"table1" ~seeds ~quick ~rows:(J.List json_rows)

(* ------------------------------------------------------------------ *)
(* Figure 7                                                            *)
(* ------------------------------------------------------------------ *)

let run_fig7 ~quick ~print =
  header print
    "Figure 7: regular execution throughput (decided req/s, mean +/- 95% CI)\n\
     (paper: Omni-Paxos, Raft and Multi-Paxos perform similarly; BLE\n\
     heartbeat overhead is negligible)";
  let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let duration_ms = if quick then 2000.0 else 3000.0 in
  let warmup_ms = 1500.0 in
  let cps = if quick then [ 500; 5000 ] else [ 500; 5000; 50_000 ] in
  let rows =
    E.normal_execution ~seeds ~duration_ms ~warmup_ms ~egress_bw:10_000.0 ~cps
      ()
  in
  say print "%-4s %-3s %-7s %-14s %12s %10s %10s\n" "set" "n" "CP" "protocol"
    "tput(req/s)" "+/-CI" "BLE IO%";
  List.iter
    (fun (r : E.throughput_point) ->
      say print "%-4s %-3d %-7d %-14s %12.0f %10.0f %10s\n" r.tp_setting
        r.tp_n r.tp_cp r.tp_protocol r.tp_mean r.tp_ci
        (if String.equal r.tp_protocol "Omni-Paxos" then
           Printf.sprintf "%.4f" r.tp_ble_io_pct
         else "-"))
    rows;
  let json_rows =
    List.map
      (fun (r : E.throughput_point) ->
        J.Obj
          [
            ("setting", J.String r.tp_setting);
            ("n", J.Int r.tp_n);
            ("cp", J.Int r.tp_cp);
            ("protocol", J.String r.tp_protocol);
            ("mean_rate", J.float r.tp_mean);
            ("rate_ci", J.float r.tp_ci);
            ("ble_io_pct", J.float r.tp_ble_io_pct);
          ])
      rows
  in
  envelope ~section:"fig7" ~seeds ~quick ~rows:(J.List json_rows)

(* ------------------------------------------------------------------ *)
(* Figures 8a / 8b                                                     *)
(* ------------------------------------------------------------------ *)

let run_downtime ~section ~kind ~title ~quick ~print =
  header print title;
  let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let timeouts_ms =
    if quick then [ 50.0; 500.0 ] else [ 50.0; 500.0; 5000.0 ]
  in
  let partition_ms = if quick then 20_000.0 else 60_000.0 in
  let rows =
    E.partition_downtime ~seeds ~timeouts_ms ~partition_ms ~cp:50 ~kind ()
  in
  say print "%-11s %-14s %14s %10s %10s %10s\n" "timeout(ms)" "protocol"
    "downtime(ms)" "+/-CI" "in-t/o" "ldr-chg";
  List.iter
    (fun (r : E.downtime_point) ->
      say print "%-11.0f %-14s %14s %10.0f %10s %10.1f\n" r.dt_timeout_ms
        r.dt_protocol
        (if r.dt_deadlocked then "DEADLOCK"
         else Printf.sprintf "%.0f" r.dt_downtime_ms)
        r.dt_ci
        (if r.dt_deadlocked then "-"
         else Printf.sprintf "%.1f" (r.dt_downtime_ms /. r.dt_timeout_ms))
        r.dt_leader_changes)
    rows;
  let json_rows =
    List.map
      (fun (r : E.downtime_point) ->
        J.Obj
          [
            ("timeout_ms", J.float r.dt_timeout_ms);
            ("protocol", J.String r.dt_protocol);
            ("downtime_ms", J.float r.dt_downtime_ms);
            ("downtime_ci", J.float r.dt_ci);
            ("deadlocked", J.Bool r.dt_deadlocked);
            ("leader_changes_count", J.float r.dt_leader_changes);
          ])
      rows
  in
  envelope ~section ~seeds ~quick ~rows:(J.List json_rows)

(* ------------------------------------------------------------------ *)
(* Figure 8c                                                           *)
(* ------------------------------------------------------------------ *)

let run_fig8c ~quick ~print =
  header print
    "Figure 8c: decided requests during the chained scenario\n\
     (paper: Multi-Paxos livelocks with repeated leader changes and decides\n\
     the least; the others converge after at most a couple of changes)";
  let seeds = if quick then [ 1 ] else [ 1; 2 ] in
  let durations_ms =
    if quick then [ 15_000.0; 30_000.0 ] else [ 30_000.0; 60_000.0; 120_000.0 ]
  in
  let rows = E.chained_throughput ~seeds ~durations_ms ~cp:50 () in
  say print "%-13s %-14s %14s %10s %10s\n" "duration(s)" "protocol" "decided"
    "+/-CI" "ldr-chg";
  List.iter
    (fun (r : E.chained_point) ->
      say print "%-13.0f %-14s %14.0f %10.0f %10.1f\n"
        (r.ch_duration_ms /. 1000.0)
        r.ch_protocol r.ch_decided r.ch_ci r.ch_leader_changes)
    rows;
  let json_rows =
    List.map
      (fun (r : E.chained_point) ->
        J.Obj
          [
            ("duration_ms", J.float r.ch_duration_ms);
            ("protocol", J.String r.ch_protocol);
            ("decided_count", J.float r.ch_decided);
            ("decided_ci", J.float r.ch_ci);
            ("leader_changes_count", J.float r.ch_leader_changes);
          ])
      rows
  in
  envelope ~section:"fig8c" ~seeds ~quick ~rows:(J.List json_rows)

(* ------------------------------------------------------------------ *)
(* Figure 9                                                            *)
(* ------------------------------------------------------------------ *)

let peak_window_io ~(io : (float * int array) list) ~node ~window_s =
  (* [io] holds 1s samples of cumulative bytes. *)
  let samples = Array.of_list (List.map (fun (_, b) -> b.(node)) io) in
  let peak = ref 0 in
  for i = 0 to Array.length samples - 1 - window_s do
    peak := max !peak (samples.(i + window_s) - samples.(i))
  done;
  !peak

let max_node_peak (r : Rsm.Reconfig.result) =
  match r.io_series with
  | [] -> 0
  | (_, first) :: _ ->
      let n = Array.length first in
      List.fold_left max 0
        (List.init n (fun i ->
             peak_window_io ~io:r.io_series ~node:i ~window_s:5))

(* The busiest node's egress during the reconfiguration period — for Raft
   this is the leader streaming the full log alone (the "leader IO"
   figure); for Omni-Paxos the load is striped across donors. *)
let busiest_during (p : Rsm.Reconfig.params) (r : Rsm.Reconfig.result) =
  let upto = Option.value r.migration_done_at ~default:p.total_ms in
  let at time =
    let rec last acc = function
      | (t, b) :: rest when t <= time -> last (Some b) rest
      | _ -> acc
    in
    last None r.io_series
  in
  match (at p.reconfigure_at, at (upto +. 1000.0)) with
  | Some before, Some after ->
      let n = Array.length before in
      List.fold_left max 0 (List.init n (fun i -> after.(i) - before.(i)))
  | _ -> 0

let print_reconfig_result print name (p : Rsm.Reconfig.params)
    (r : Rsm.Reconfig.result) =
  let windows =
    Series.windowed r.series ~from:0.0 ~until:p.total_ms ~window:5000.0
  in
  say print "\n%s: throughput per 5s window (req/s)\n  " name;
  List.iter
    (fun (t, d) -> say print "%.0fs:%d " (t /. 1000.0) (d / 5))
    windows;
  if print then print_newline ();
  let committed =
    match r.reconfig_committed_at with
    | Some t -> Printf.sprintf "%.1fs" (t /. 1000.0)
    | None -> "never"
  in
  let migrated =
    match r.migration_done_at with
    | Some t -> Printf.sprintf "%.1fs" (t /. 1000.0)
    | None -> "never"
  in
  say print
    "  reconfig committed: %s   all new servers running: %s\n\
    \  leader changes: %d   peak per-node egress over a 5s window: %.1f MB\n"
    committed migrated r.leader_changes
    (float_of_int (max_node_peak r) /. 1.0e6)

let reconfig_json (p : Rsm.Reconfig.params) (r : Rsm.Reconfig.result) =
  let windows =
    Series.windowed r.series ~from:0.0 ~until:p.total_ms ~window:5000.0
  in
  let opt_ms = function Some t -> J.float t | None -> J.Null in
  J.Obj
    [
      ("committed_at_ms", opt_ms r.reconfig_committed_at);
      ("migration_done_at_ms", opt_ms r.migration_done_at);
      ("leader_changes_count", J.Int r.leader_changes);
      ("peak_window_bytes", J.Int (max_node_peak r));
      ("busiest_node_bytes", J.Int (busiest_during p r));
      ( "window_rates",
        J.List
          (List.map
             (fun (t, d) ->
               J.Obj
                 [
                   ("t_ms", J.float t);
                   ("window_rate", J.float (float_of_int d /. 5.0));
                 ])
             windows) );
    ]

let run_fig9 ~section ~replace_majority ~cp ~title ~quick ~print =
  header print title;
  let preload = if quick then 200_000 else 2_000_000 in
  let total_ms = if quick then 60_000.0 else 120_000.0 in
  let params, omni, raft =
    E.reconfiguration ~preload ~cp ~replace_majority ~total_ms ()
  in
  say print
    "preload: %d entries (8 B each = %.0f MB to migrate per new server)\n\
     egress bandwidth: %.1f MB/s per node; reconfiguration at t=%.0fs\n"
    params.preload
    (float_of_int (params.preload * 8) /. 1.0e6)
    (params.net_cfg.egress_bw /. 1000.0)
    (params.reconfigure_at /. 1000.0);
  print_reconfig_result print
    "Omni-Paxos (parallel service-layer migration)" params omni;
  print_reconfig_result print "Raft (leader-driven migration)" params raft;
  (match (omni.migration_done_at, raft.migration_done_at) with
  | Some o, Some r ->
      let od = o -. params.reconfigure_at
      and rd = r -. params.reconfigure_at in
      say print
        "\nreconfiguration period: omni %.1fs vs raft %.1fs -> %.1fx shorter\n"
        (od /. 1000.0) (rd /. 1000.0) (rd /. od)
  | _ -> say print "\n(one of the reconfigurations did not complete)\n");
  let po = busiest_during params omni and pr = busiest_during params raft in
  if pr > 0 then
    say print
      "busiest-node egress during reconfiguration: omni %.2f MB vs raft %.2f \
       MB -> %.0f%% less IO\n"
      (float_of_int po /. 1.0e6)
      (float_of_int pr /. 1.0e6)
      (100.0 *. (1.0 -. (float_of_int po /. float_of_int pr)));
  let rows =
    J.Obj
      [
        ("preload_count", J.Int preload);
        ("cp", J.Int cp);
        ("replace_majority", J.Bool replace_majority);
        ("omni", reconfig_json params omni);
        ("raft", reconfig_json params raft);
      ]
  in
  envelope ~section ~seeds:[ params.net_cfg.seed ] ~quick ~rows

(* ------------------------------------------------------------------ *)
(* Batching policy comparison (adaptive vs fixed hot-path flushing)    *)
(* ------------------------------------------------------------------ *)

let run_policy ~quick ~print =
  header print
    "Batching policy: fixed tick-driven flush vs adaptive\n\
     (size-triggered eager flush + backlog-aware cap + ack coalescing;\n\
     same seeds for both policies, Figure-7-style LAN setup)";
  let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let cp = if quick then 2000 else 5000 in
  let duration_ms = if quick then 1500.0 else 3000.0 in
  let rows =
    E.batching_comparison ~seeds ~cp ~warmup_ms:1000.0 ~duration_ms ()
  in
  say print "%-14s %-9s %12s %10s %9s %9s %12s %10s\n" "protocol" "policy"
    "tput(req/s)" "+/-CI" "p50(ms)" "p99(ms)" "IO(bytes)" "msgs";
  List.iter
    (fun (r : E.policy_point) ->
      say print "%-14s %-9s %12.0f %10.0f %9.2f %9.2f %12d %10d\n"
        r.bp_protocol r.bp_policy r.bp_rate_mean r.bp_rate_ci r.bp_p50_ms
        r.bp_p99_ms r.bp_io_bytes r.bp_msgs)
    rows;
  (* Per-protocol adaptive/fixed throughput ratio — the headline number the
     regression gate and the acceptance check look at. *)
  let find proto policy =
    List.find_opt
      (fun (r : E.policy_point) ->
        String.equal r.bp_protocol proto && String.equal r.bp_policy policy)
      rows
  in
  let protos =
    List.filter
      (fun p ->
        (* preserve row order, one entry per protocol *)
        match find p "fixed" with Some _ -> true | None -> false)
      (List.sort_uniq String.compare
         (List.map (fun (r : E.policy_point) -> r.bp_protocol) rows))
  in
  let summary =
    List.filter_map
      (fun proto ->
        match (find proto "fixed", find proto "adaptive") with
        | Some f, Some a when f.bp_rate_mean > 0.0 ->
            let ratio = a.bp_rate_mean /. f.bp_rate_mean in
            say print "%-14s adaptive/fixed throughput ratio: %.2fx\n" proto
              ratio;
            Some
              (J.Obj
                 [
                   ("protocol", J.String proto);
                   ("adaptive_over_fixed_pct", J.float (100.0 *. ratio));
                 ])
        | _ -> None)
      protos
  in
  let json_rows =
    List.map
      (fun (r : E.policy_point) ->
        J.Obj
          [
            ("protocol", J.String r.bp_protocol);
            ("policy", J.String r.bp_policy);
            ("cp", J.Int r.bp_cp);
            ("mean_rate", J.float r.bp_rate_mean);
            ("rate_ci", J.float r.bp_rate_ci);
            ("p50_ms", J.float r.bp_p50_ms);
            ("p99_ms", J.float r.bp_p99_ms);
            ("io_bytes", J.Int r.bp_io_bytes);
            ("delivered_msgs", J.Int r.bp_msgs);
          ])
      rows
  in
  envelope ~section:"policy" ~seeds ~quick
    ~rows:
      (J.Obj [ ("points", J.List json_rows); ("summary", J.List summary) ])

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let run_ablations ~quick ~print =
  header print
    "Ablations of the design choices DESIGN.md calls out\n\
     (QC heartbeat flag; batch-flush cadence; migration segment size)";
  let seeds = if quick then [ 1 ] else [ 1; 2 ] in
  say print "\n[A] QC flag in heartbeats - quorum-loss downtime with/without:\n";
  say print "%-20s %14s\n" "variant" "downtime";
  let qc_rows = E.ablation_qc_signal ~seeds () in
  List.iter
    (fun (r : E.downtime_point) ->
      say print "%-20s %14s\n" r.dt_protocol
        (if r.dt_deadlocked then "DEADLOCK"
         else Printf.sprintf "%.0f ms" r.dt_downtime_ms))
    qc_rows;
  say print "\n[B] batch-flush cadence (3 servers, CP=5000, 10 MB/s egress):\n";
  say print "%-12s %14s %14s\n" "tick(ms)" "tput(req/s)" "~latency(ms)";
  let cadence_rows = E.ablation_batching () in
  List.iter
    (fun (tick, rate, lat) -> say print "%-12.0f %14.0f %14.1f\n" tick rate lat)
    cadence_rows;
  say print "\n[C] migration segment size (replace 1 of 5, 200k-entry log):\n";
  say print "%-18s %18s\n" "segment(entries)" "migration(ms)";
  let segment_rows = E.ablation_segments () in
  List.iter
    (fun (size, dur) -> say print "%-18d %18.0f\n" size dur)
    segment_rows;
  let rows =
    J.Obj
      [
        ( "qc_signal",
          J.List
            (List.map
               (fun (r : E.downtime_point) ->
                 J.Obj
                   [
                     ("protocol", J.String r.dt_protocol);
                     ("downtime_ms", J.float r.dt_downtime_ms);
                     ("deadlocked", J.Bool r.dt_deadlocked);
                   ])
               qc_rows) );
        ( "flush_cadence",
          J.List
            (List.map
               (fun (tick, rate, lat) ->
                 J.Obj
                   [
                     ("tick_ms", J.float tick);
                     ("mean_rate", J.float rate);
                     ("approx_latency_ms", J.float lat);
                   ])
               cadence_rows) );
        ( "migration_segments",
          J.List
            (List.map
               (fun (size, dur) ->
                 J.Obj
                   [
                     ("segment_entries", J.Int size);
                     ("migration_ms", J.float dur);
                   ])
               segment_rows) );
      ]
  in
  envelope ~section:"ablations" ~seeds ~quick ~rows

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                         *)
(* ------------------------------------------------------------------ *)

(* Wall-clock timings are inherently nondeterministic, so the JSON report
   only records which benchmarks ran; the numbers stay on stdout. *)
let micro_names =
  [
    "log: 1k appends";
    "log: suffix of 1k";
    "ballot: compare";
    "seq-paxos: 100-cmd accept round";
    "ble: 5-server heartbeat round";
    "chaos: check 240-op history";
    "chaos: one omni episode";
  ]

let micro_tests () =
  let open Bechamel in
  let log_append =
    Test.make ~name:"log: 1k appends"
      (Staged.stage (fun () ->
           let log = Replog.Log.create () in
           for i = 0 to 999 do
             Replog.Log.append log i
           done;
           log))
  in
  let log_suffix =
    let log = Replog.Log.of_list (List.init 10_000 Fun.id) in
    Test.make ~name:"log: suffix of 1k"
      (Staged.stage (fun () -> Replog.Log.suffix log ~from:9000))
  in
  let ballot_compare =
    let a = Omnipaxos.Ballot.initial ~pid:1 ()
    and b = Omnipaxos.Ballot.initial ~pid:2 () in
    Test.make ~name:"ballot: compare"
      (Staged.stage (fun () -> Omnipaxos.Ballot.compare a b))
  in
  (* Sequence Paxos accept path: a leader proposes and replicates a batch of
     100 commands to two followers over an in-memory transport. *)
  let sp_accept =
    Test.make ~name:"seq-paxos: 100-cmd accept round"
      (Staged.stage (fun () ->
           let module Sp = Omnipaxos.Sequence_paxos in
           let nodes = Array.make 3 None in
           let queues = Array.make 3 [] in
           let send src ~dst m = queues.(dst) <- (src, m) :: queues.(dst) in
           for id = 0 to 2 do
             let peers = List.filter (fun j -> j <> id) [ 0; 1; 2 ] in
             nodes.(id) <-
               Some
                 (Sp.create ~id ~peers ~persistent:(Sp.fresh_persistent ())
                    ~send:(send id) ())
           done;
           let node i = Option.get nodes.(i) in
           let rec drain () =
             let any = ref false in
             for id = 0 to 2 do
               let msgs = List.rev queues.(id) in
               queues.(id) <- [];
               List.iter
                 (fun (src, m) ->
                   any := true;
                   Sp.handle (node id) ~src m)
                 msgs
             done;
             if !any then drain ()
           in
           Sp.handle_leader (node 2)
             { Omnipaxos.Ballot.n = 1; priority = 0; pid = 2 };
           drain ();
           for i = 0 to 99 do
             ignore
               (Sp.propose (node 2)
                  (Omnipaxos.Entry.Cmd (Replog.Command.noop i)))
           done;
           Sp.flush (node 2);
           drain ();
           Sp.decided_idx (node 2)))
  in
  let ble_round =
    Test.make ~name:"ble: 5-server heartbeat round"
      (Staged.stage (fun () ->
           let module B = Omnipaxos.Ble in
           let nodes = Array.make 5 None in
           let queues = Array.make 5 [] in
           let send src ~dst m = queues.(dst) <- (src, m) :: queues.(dst) in
           for id = 0 to 4 do
             let peers = List.filter (fun j -> j <> id) [ 0; 1; 2; 3; 4 ] in
             nodes.(id) <-
               Some
                 (B.create ~id ~peers ~persistent:(B.fresh_persistent ())
                    ~send:(send id)
                    ~on_leader:(fun _ -> ())
                    ())
           done;
           let node i = Option.get nodes.(i) in
           let drain () =
             for id = 0 to 4 do
               let msgs = List.rev queues.(id) in
               queues.(id) <- [];
               List.iter (fun (src, m) -> B.handle (node id) ~src m) msgs
             done
           in
           for _ = 1 to 3 do
             for id = 0 to 4 do
               B.tick (node id)
             done;
             drain ();
             drain ()
           done;
           B.leader (node 0)))
  in
  (* Chaos-harness data paths: the linearizability checker on an
     episode-shaped history, and one whole seeded episode end to end. *)
  let chaos_check =
    let ops =
      let rng = Random.State.make [| 11 |] in
      let model = Hashtbl.create 4 in
      List.init 240 (fun i ->
          let t = float_of_int (2 * i) in
          let key = "k" ^ string_of_int (Random.State.int rng 4) in
          let base =
            {
              Chaos.Checker.o_id = i;
              o_client = i mod 3;
              o_key = key;
              o_kind = Chaos.Checker.Get;
              o_invoke = t;
              o_return = Some (t +. 1.0);
              o_result = None;
            }
          in
          if Random.State.bool rng then begin
            let v = "v" ^ string_of_int i in
            Hashtbl.replace model key v;
            { base with Chaos.Checker.o_kind = Chaos.Checker.Put v }
          end
          else
            {
              base with
              Chaos.Checker.o_result = Some (Hashtbl.find_opt model key);
            })
    in
    Test.make ~name:"chaos: check 240-op history"
      (Staged.stage (fun () -> Chaos.Checker.check_ops ops))
  in
  let chaos_episode =
    let module Oc = Chaos.Campaign.Make (Rsm.Omni_adapter) in
    let cfg = { Chaos.Campaign.default_config with steps = 6 } in
    let schedule = Oc.schedule_of_seed cfg ~seed:5 in
    Test.make ~name:"chaos: one omni episode"
      (Staged.stage (fun () -> Oc.run_schedule cfg ~seed:5 ~schedule))
  in
  Test.make_grouped ~name:"micro"
    [
      log_append; log_suffix; ballot_compare; sp_accept; ble_round;
      chaos_check; chaos_episode;
    ]

let run_micro ~quick ~print =
  header print "Micro-benchmarks (Bechamel): core data-path costs";
  let open Bechamel in
  let open Toolkit in
  let raw =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 500) ()
    in
    Benchmark.all cfg instances (micro_tests ())
  in
  let results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  say print "%-40s %16s\n" "benchmark" "ns/run";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> say print "%-40s %16.1f\n" name est
      | Some _ | None -> say print "%-40s %16s\n" name "n/a")
    results;
  envelope ~section:"micro" ~seeds:[] ~quick
    ~rows:(J.List (List.map (fun n -> J.Obj [ ("name", J.String n) ]) micro_names))

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Recovery latency (health-monitor methodology)                       *)
(* ------------------------------------------------------------------ *)

let run_recovery ~quick ~print =
  header print
    "Recovery latency in the chained scenario (health-monitor methodology)\n\
     (paper: Omni-Paxos re-elects and resumes deciding within ~4 election\n\
     timeouts; see EXPERIMENTS.md for how detect/stall are measured)";
  let seeds = [ 1 ] in
  let timeout_ms = 50.0 in
  let partition_ms = if quick then 2_000.0 else 4_000.0 in
  let rows = E.recovery_latency ~seed:1 ~timeout_ms ~partition_ms () in
  let opt = function
    | Some v -> Printf.sprintf "%.1f" v
    | None -> "-"
  in
  say print "%-14s %11s %15s %12s %10s %10s %7s %8s\n" "protocol"
    "detect(ms)" "1st-decide(ms)" "reelect(ms)" "stall(ms)" "stall/t-o"
    "<=4t/o" "ldr-chg";
  List.iter
    (fun (r : E.recovery_point) ->
      say print "%-14s %11s %15s %12s %10.1f %10.1f %7s %8d\n" r.rl_protocol
        (opt r.rl_detect_ms)
        (opt r.rl_first_decide_ms)
        (opt r.rl_reelect_ms)
        r.rl_stall_ms r.rl_stall_timeouts
        (if r.rl_within_4 then "yes" else "NO")
        r.rl_leader_changes)
    rows;
  let jopt = function Some v -> J.float v | None -> J.Null in
  let json_rows =
    List.map
      (fun (r : E.recovery_point) ->
        J.Obj
          [
            ("protocol", J.String r.rl_protocol);
            ("timeout_ms", J.float r.rl_timeout_ms);
            ("detect_ms", jopt r.rl_detect_ms);
            ("first_decide_ms", jopt r.rl_first_decide_ms);
            ("reelect_ms", jopt r.rl_reelect_ms);
            ("stall_ms", J.float r.rl_stall_ms);
            ("within_4_timeouts", J.Bool r.rl_within_4);
            ("leader_changes_count", J.Int r.rl_leader_changes);
          ])
      rows
  in
  envelope ~section:"recovery" ~seeds ~quick ~rows:(J.List json_rows)

(* ------------------------------------------------------------------ *)
(* Resource attribution profile                                        *)
(* ------------------------------------------------------------------ *)

let run_profile ~quick ~print =
  header print
    "Resource attribution profile (Omni-Paxos, seeded normal run)\n\
     (where dispatch work goes: calls and sim-time per component; the\n\
     wall-clock columns are nondeterministic and excluded from the report)";
  let seeds = [ 1 ] in
  let duration_ms = if quick then 2_000.0 else 4_000.0 in
  let cfg = { Rsm.Cluster.default_config with Rsm.Cluster.n = 5; seed = 1 } in
  let r =
    Rsm.Top.omni.Rsm.Top.tr_run ~cfg ~cp:100 ~duration_ms ~interval_ms:250.0
      ()
  in
  let flat = Obs.Profile.flat r.Rsm.Top.profile in
  say print "%-28s %10s %12s\n" "component" "calls" "sim-ms";
  List.iter
    (fun (row : Obs.Profile.row) ->
      say print "%-28s %10d %12.1f\n" row.Obs.Profile.r_label
        row.Obs.Profile.r_calls row.Obs.Profile.r_sim_ms)
    flat;
  (* Sort by label so a tolerated drift in call counts cannot reorder rows
     and break the positional matching of the compare gate. *)
  let by_label =
    List.sort
      (fun (a : Obs.Profile.row) (b : Obs.Profile.row) ->
        String.compare a.Obs.Profile.r_label b.Obs.Profile.r_label)
      flat
  in
  let json_rows =
    List.map
      (fun (row : Obs.Profile.row) ->
        J.Obj
          [
            ("component", J.String row.Obs.Profile.r_label);
            ("calls_count", J.Int row.Obs.Profile.r_calls);
            ("sim_ms", J.float row.Obs.Profile.r_sim_ms);
          ])
      by_label
  in
  envelope ~section:"profile" ~seeds ~quick ~rows:(J.List json_rows)

(* ------------------------------------------------------------------ *)
(* Compaction: lagging-follower repair cost                            *)
(* ------------------------------------------------------------------ *)

let run_compaction ~quick ~print =
  header print
    "Compaction: lagging-follower catch-up, snapshot install vs log replay\n\
     (a follower that missed N decided entries is repaired with O(state)\n\
     bytes when snapshotting is on, O(log) bytes when it is off)";
  let seeds = [ 3 ] in
  let entries = if quick then 2_000 else 10_000 in
  let rows = E.compaction_catch_up ~seed:3 ~entries () in
  say print "%-14s %-10s %8s %12s %12s %7s %10s\n" "protocol" "snapshots"
    "lag" "catchup-ms" "bytes" "caught" "installed";
  List.iter
    (fun (name, on, (p : E.catch_up_point)) ->
      say print "%-14s %-10s %8d %12.1f %12d %7s %10s\n" name
        (if on then "on" else "off")
        p.E.cu_lag p.E.cu_ms p.E.cu_bytes (mark p.E.cu_caught)
        (if p.E.cu_installed then "yes" else "no"))
    rows;
  let json_rows =
    List.map
      (fun (name, on, (p : E.catch_up_point)) ->
        J.Obj
          [
            ("protocol", J.String name);
            ("snapshots", J.Bool on);
            ("lag_entries", J.Int p.E.cu_lag);
            ("catchup_ms", J.float p.E.cu_ms);
            ("catchup_bytes", J.Int p.E.cu_bytes);
            ("caught_up", J.Bool p.E.cu_caught);
            ("snapshot_installed", J.Bool p.E.cu_installed);
          ])
      rows
  in
  envelope ~section:"compaction" ~seeds ~quick ~rows:(J.List json_rows)

(* ------------------------------------------------------------------ *)
(* Trace scale: codec density, streaming-analyzer memory, overhead     *)
(* ------------------------------------------------------------------ *)

(* Peak live words of [f], measured against the post-collection floor:
   [Gc.full_major] before and after plus periodic sampling inside (the
   caller invokes [sample] at its own cadence). Heap walks are expensive,
   so the cadence is tens of samples, not per event. *)
let with_peak_live_words f =
  Gc.compact ();
  let floor = (Gc.stat ()).Gc.live_words in
  let peak = ref floor in
  let sample () =
    Gc.full_major ();
    let lw = (Gc.stat ()).Gc.live_words in
    if lw > !peak then peak := lw
  in
  let v = f sample in
  sample ();
  (v, !peak - floor)

let run_trace_scale ~quick ~print =
  header print
    "Trace scale: binary codec density, streaming-analyzer memory bound,\n\
     emit-time sampling overhead (synthetic open-loop replication trace;\n\
     gates: bin >= 5x denser than JSONL, analyzer memory flat in trace\n\
     length, sampled tracing < 10% over tracing-off)";
  let seed = 1 and nodes = 5 in
  let events = if quick then 100_000 else 1_000_000 in
  let synth n f = Obs.Synth.iter ~nodes ~seed ~events:n f in

  (* Codec density: stream the synthetic trace through both encoders,
     counting bytes without retaining events. Wall-clock encode rates are
     informational (_ci fields, ignored by the baseline compare); byte
     counts and the ratio are deterministic. *)
  let jsonl_bytes = ref 0 in
  let t0 = Sys.time () in
  synth events (fun e ->
      jsonl_bytes := !jsonl_bytes + String.length (Obs.Event.to_json e) + 1);
  let jsonl_s = Sys.time () -. t0 in
  let bin_bytes = ref 0 in
  let t0 = Sys.time () in
  let w =
    Obs.Tracebin.writer
      ~meta:[ ("gen", "synth"); ("seed", string_of_int seed) ]
      (fun s -> bin_bytes := !bin_bytes + String.length s)
  in
  synth events (Obs.Tracebin.write w);
  Obs.Tracebin.flush w;
  let bin_s = Sys.time () -. t0 in
  let ratio = float_of_int !jsonl_bytes /. float_of_int !bin_bytes in
  let compression_ok = ratio >= 5.0 in
  say print "events              : %d\n" events;
  say print "jsonl               : %d bytes (%.1f B/event, %.0f events/s)\n"
    !jsonl_bytes
    (float_of_int !jsonl_bytes /. float_of_int events)
    (float_of_int events /. Float.max jsonl_s 1e-9);
  say print "bin                 : %d bytes (%.1f B/event, %.0f events/s)\n"
    !bin_bytes
    (float_of_int !bin_bytes /. float_of_int events)
    (float_of_int events /. Float.max bin_s 1e-9);
  say print "compression         : %.2fx %s\n" ratio
    (if compression_ok then "(>= 5x: ok)" else "(FAIL: below the 5x gate)");

  (* Streaming analyzer: peak live words at full length vs a fifth of it.
     Bounded state means the peak is flat in trace length (the windows,
     sketches and caps dominate); a superlinear analyzer fails the gate. *)
  let analyze_peak n =
    let (), peak =
      with_peak_live_words (fun sample ->
          let s = Obs.Analyze.Stream.create ~n_hint:nodes () in
          let stride = max 1 (n / 16) in
          let i = ref 0 in
          synth n (fun e ->
              Obs.Analyze.Stream.observe s e;
              incr i;
              if !i mod stride = 0 then sample ());
          ignore (Obs.Analyze.Stream.finish s))
    in
    peak
  in
  let t0 = Sys.time () in
  let peak_full = analyze_peak events in
  let analyze_s = Sys.time () -. t0 in
  let peak_fifth = analyze_peak (events / 5) in
  (* Flat within 2x: the short run may sit below cap-fill, never above. *)
  let bounded_ok = peak_full <= max (2 * peak_fifth) (peak_fifth + 2_000_000) in
  say print "analyzer peak live  : %d words at %d events, %d at %d (%s)\n"
    peak_full events peak_fifth (events / 5)
    (if bounded_ok then "flat: ok" else "FAIL: grows with trace length");
  say print "analyzer throughput : %.0f events/s\n"
    (float_of_int events /. Float.max analyze_s 1e-9);

  (* Emit-time overhead: the shared overhead workload (a real simulated
     cluster exercising every instrumented hot path) with tracing off vs
     sampled tracing (rate 10) into the binary encoder, interleaved
     min-of-trials so drift hits both equally. Full-fidelity tracing is
     measured too, informationally — the <10% gate is on the sampled
     configuration, which is the one meant for million-event runs. *)
  (* Never shrink reps below calibration: the trial must dwarf Sys.time's
     resolution or the percentages are noise. *)
  let reps = Workload.calibrate_reps () in
  let trials = if quick then 5 else 7 in
  let best_off = ref infinity
  and best_sampled = ref infinity
  and best_full = ref infinity
  and sampled_ratios = ref []
  and full_ratios = ref [] in
  let traced sampling =
    Obs.Trace.set_sampling sampling;
    Obs.Trace.set_enabled true;
    let w = Obs.Tracebin.writer ignore in
    let id = Obs.Trace.subscribe (Obs.Tracebin.write w) in
    let t, _ = Workload.time_reps reps in
    Obs.Trace.unsubscribe id;
    Obs.Trace.set_enabled false;
    Obs.Trace.set_sampling None;
    t
  in
  for _ = 1 to trials do
    (* Per-round paired ratios: each traced run is divided by the off run
       measured adjacently, so slow machine phases (frequency scaling,
       noisy neighbours) mostly cancel instead of polluting one side of a
       global minimum. The gate uses the median ratio across rounds —
       min would be biased by rounds where noise favours the traced leg. *)
    Obs.Trace.set_enabled false;
    let off, _ = Workload.time_reps reps in
    best_off := Float.min !best_off off;
    let sampled =
      (* head:0 — the always-keep head is a short-trace nicety; at scale
         it is noise (0.1% of a 1M-event run) and including it here would
         understate the steady-state benefit on this short workload. *)
      traced (Some (Obs.Sampling.create ~head:0 ~rate:10 ()))
    in
    best_sampled := Float.min !best_sampled sampled;
    sampled_ratios := (sampled /. Float.max off 1e-9) :: !sampled_ratios;
    let full = traced None in
    best_full := Float.min !best_full full;
    full_ratios := (full /. Float.max off 1e-9) :: !full_ratios
  done;
  let median l =
    let a = Array.of_list l in
    Array.sort Float.compare a;
    a.(Array.length a / 2)
  in
  let sampled_pct = 100.0 *. (median !sampled_ratios -. 1.0)
  and full_pct = 100.0 *. (median !full_ratios -. 1.0) in
  let overhead_ok = sampled_pct < 10.0 in
  say print "tracing off         : %.1f ms (min of %d trials x %d runs)\n"
    (!best_off *. 1000.0) trials reps;
  say print "sampled bin tracing : %.1f ms (%+.1f%%, gate < 10%%: %s)\n"
    (!best_sampled *. 1000.0) sampled_pct
    (if overhead_ok then "ok" else "FAIL");
  say print "full bin tracing    : %.1f ms (%+.1f%%, informational)\n"
    (!best_full *. 1000.0) full_pct;

  let row =
    J.Obj
      [
        ("events_count", J.Int events);
        ("jsonl_bytes", J.Int !jsonl_bytes);
        ("bin_bytes", J.Int !bin_bytes);
        ("compression_ratio_pct", J.float (100.0 *. ratio));
        ("compression_gate_5x", J.Bool compression_ok);
        ("analyzer_peak_live_words_count", J.Int peak_full);
        ("analyzer_peak_live_words_fifth_count", J.Int peak_fifth);
        ("analyzer_memory_bounded", J.Bool bounded_ok);
        (* _ci: derived from wall-clock, so excluded from baseline compare;
           the enforced version of this gate is bench/check_sampling_overhead
           (dune build @check-overhead), which retries across noise spikes. *)
        ("sampled_overhead_gate_10pct_ci", J.Bool overhead_ok);
        (* Wall-clock figures: machine-dependent, excluded from the
           baseline compare via the _ci (ignore) tolerance class. *)
        ( "encode_events_per_s_ci",
          J.float (float_of_int events /. Float.max bin_s 1e-9) );
        ( "analyze_events_per_s_ci",
          J.float (float_of_int events /. Float.max analyze_s 1e-9) );
        ("sampled_overhead_pct_ci", J.float sampled_pct);
        ("full_overhead_pct_ci", J.float full_pct);
      ]
  in
  envelope ~section:"trace_scale" ~seeds:[ seed ] ~quick
    ~rows:(J.List [ row ])

let all_names =
  [
    "table1"; "fig7"; "fig8a"; "fig8b"; "fig8c"; "fig9a"; "fig9b"; "fig9c";
    "ablations"; "policy"; "micro"; "recovery"; "profile"; "compaction";
    "trace_scale";
  ]

let run name ~quick ~print =
  match name with
  | "table1" -> Some (run_table1 ~quick ~print)
  | "fig7" -> Some (run_fig7 ~quick ~print)
  | "fig8a" ->
      Some
        (run_downtime ~section:"fig8a" ~kind:E.Quorum_loss
           ~title:
             "Figure 8a: down-time in the quorum-loss scenario\n\
              (paper: VR and Multi-Paxos deadlock; Raft recovers with high\n\
              variance; Omni-Paxos recovers in ~4 election timeouts)"
           ~quick ~print)
  | "fig8b" ->
      Some
        (run_downtime ~section:"fig8b" ~kind:E.Constrained
           ~title:
             "Figure 8b: down-time in the constrained election scenario\n\
              (paper: VR, Raft and Raft PV+CQ deadlock; Omni-Paxos recovers \
              in\n\
              ~3 timeouts; Multi-Paxos also recovers)"
           ~quick ~print)
  | "fig8c" -> Some (run_fig8c ~quick ~print)
  | "fig9a" ->
      Some
        (run_fig9 ~section:"fig9a" ~replace_majority:false ~cp:500
           ~title:
             "Figure 9a: reconfiguration, replace 1 of 5 servers (CP=500 ~ \
              paper 5k)\n\
              (paper: Raft ~90% throughput drop for ~55s; Omni-Paxos ~20% \
              for ~15s)"
           ~quick ~print)
  | "fig9b" ->
      Some
        (run_fig9 ~section:"fig9b" ~replace_majority:false ~cp:5000
           ~title:
             "Figure 9b: reconfiguration, replace 1 of 5 servers (CP=5000 ~ \
              paper 50k)\n\
              (paper: with a larger pipeline the Omni-Paxos drop is masked)"
           ~quick ~print)
  | "fig9c" ->
      Some
        (run_fig9 ~section:"fig9c" ~replace_majority:true ~cp:500
           ~title:
             "Figure 9c: reconfiguration, replace a majority (3 of 5, \
              CP=500 ~ paper 5k)\n\
              (paper: Raft fully down for up to 40s, 120s to recover; \
              Omni-Paxos\n\
              80% lower throughput for ~15s)"
           ~quick ~print)
  | "ablations" -> Some (run_ablations ~quick ~print)
  | "policy" -> Some (run_policy ~quick ~print)
  | "micro" -> Some (run_micro ~quick ~print)
  | "recovery" -> Some (run_recovery ~quick ~print)
  | "profile" -> Some (run_profile ~quick ~print)
  | "compaction" -> Some (run_compaction ~quick ~print)
  | "trace_scale" -> Some (run_trace_scale ~quick ~print)
  | _ -> None
