(* Guards the tracer's cost model: instrumentation sites are a single guard
   (one ref load + branch) when tracing is disabled, and "enabled but no sink
   subscribed" must cost the same as disabled — otherwise `--trace` support
   would tax every benchmark number in this repository.

   The check drives the shared workload (bench/workload.ml) twice per trial
   — tracing off vs. enabled-but-unsubscribed — and fails if the
   minimum-of-trials CPU time of the guarded path exceeds the baseline by
   more than 5%.

   Run with: dune build @check-overhead *)

let threshold_pct = 5.0

let () =
  let reps = Workload.calibrate_reps () in
  let trials = 5 in
  let best_off = ref infinity and best_on = ref infinity in
  let checksum_off = ref 0 and checksum_on = ref 0 in
  for _ = 1 to trials do
    (* Interleave the two modes so drift hits both equally. *)
    Obs.Trace.set_enabled false;
    let t, c = Workload.time_reps reps in
    best_off := Float.min !best_off t;
    checksum_off := c;
    Obs.Trace.set_enabled true;
    assert (not (Obs.Trace.on ()));
    (* no sink: guard must stay cold *)
    let t, c = Workload.time_reps reps in
    best_on := Float.min !best_on t;
    checksum_on := c
  done;
  Obs.Trace.set_enabled false;
  if !checksum_off <> !checksum_on then begin
    Printf.printf
      "FAIL: enabling the (unsubscribed) tracer changed the simulation \
       (decided %d vs %d)\n"
      !checksum_off !checksum_on;
    exit 1
  end;
  let overhead_pct = 100.0 *. ((!best_on /. !best_off) -. 1.0) in
  Printf.printf
    "tracing disabled:             %.1f ms (min of %d trials x %d runs)\n\
     tracing on, no sink:          %.1f ms\n\
     disabled-path overhead:       %+.2f%% (threshold %.0f%%)\n"
    (!best_off *. 1000.0) trials reps
    (!best_on *. 1000.0)
    overhead_pct threshold_pct;
  if overhead_pct > threshold_pct then begin
    Printf.printf
      "FAIL: the disabled tracing path costs more than %.0f%%\n" threshold_pct;
    exit 1
  end;
  print_string "OK: tracing off costs ~nothing\n"
