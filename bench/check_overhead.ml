(* Guards the tracer's cost model: instrumentation sites are a single guard
   (one ref load + branch) when tracing is disabled, and "enabled but no sink
   subscribed" must cost the same as disabled — otherwise `--trace` support
   would tax every benchmark number in this repository.

   The check drives a 3-server Omni-Paxos cluster through a short normal
   execution (election + replication, every hot path instrumented: BLE
   heartbeats, accept/decide, simnet send/deliver) twice per trial — tracing
   off vs. enabled-but-unsubscribed — and fails if the minimum-of-trials CPU
   time of the guarded path exceeds the baseline by more than 5%.

   Run with: dune build @check-overhead *)

module Net = Simnet.Net
module R = Omnipaxos.Replica

let n = 3
let threshold_pct = 5.0

(* One short normal execution; returns the decided index as a checksum so
   the work cannot be optimised away. *)
let run_once seed =
  let net = Net.create ~seed ~latency:0.1 ~num_nodes:n () in
  let replicas = Array.make n None in
  for id = 0 to n - 1 do
    let peers = List.filter (fun j -> j <> id) (List.init n Fun.id) in
    let send ~dst m = Net.send net ~src:id ~dst ~size:(R.msg_size m) m in
    let r =
      R.create ~id ~peers ~hb_ticks:10 ~storage:(R.Storage.create ()) ~send ()
    in
    replicas.(id) <- Some r;
    Net.set_handler net id (fun ~src m -> R.handle r ~src m);
    Net.set_session_handler net id (fun ~peer -> R.session_reset r ~peer)
  done;
  let rec ticks () =
    Net.schedule net ~delay:5.0 (fun () ->
        Array.iter (function Some r -> R.tick r | None -> ()) replicas;
        ticks ())
  in
  ticks ();
  Net.run_for net 500.0;
  let leader =
    match
      List.find_opt
        (fun id -> R.is_leader (Option.get replicas.(id)))
        (List.init n Fun.id)
    with
    | Some id -> Option.get replicas.(id)
    | None -> failwith "check_overhead: no leader elected"
  in
  for wave = 0 to 9 do
    for i = 0 to 199 do
      ignore (R.propose_cmd leader (Replog.Command.noop ((wave * 200) + i)))
    done;
    Net.run_for net 100.0
  done;
  R.decided_idx leader

let time_reps reps =
  let t0 = Sys.time () in
  let acc = ref 0 in
  for s = 1 to reps do
    acc := !acc + run_once s
  done;
  (Sys.time () -. t0, !acc)

let () =
  (* Calibrate so each trial takes long enough to dwarf Sys.time's
     resolution and scheduler noise. *)
  let t1, _ = time_reps 1 in
  let reps = max 3 (int_of_float (ceil (0.3 /. Float.max t1 1e-4))) in
  let trials = 5 in
  let best_off = ref infinity and best_on = ref infinity in
  let checksum_off = ref 0 and checksum_on = ref 0 in
  for _ = 1 to trials do
    (* Interleave the two modes so drift hits both equally. *)
    Obs.Trace.set_enabled false;
    let t, c = time_reps reps in
    best_off := Float.min !best_off t;
    checksum_off := c;
    Obs.Trace.set_enabled true;
    assert (not (Obs.Trace.on ()));
    (* no sink: guard must stay cold *)
    let t, c = time_reps reps in
    best_on := Float.min !best_on t;
    checksum_on := c
  done;
  Obs.Trace.set_enabled false;
  if !checksum_off <> !checksum_on then begin
    Printf.printf
      "FAIL: enabling the (unsubscribed) tracer changed the simulation \
       (decided %d vs %d)\n"
      !checksum_off !checksum_on;
    exit 1
  end;
  let overhead_pct = 100.0 *. ((!best_on /. !best_off) -. 1.0) in
  Printf.printf
    "tracing disabled:             %.1f ms (min of %d trials x %d runs)\n\
     tracing on, no sink:          %.1f ms\n\
     disabled-path overhead:       %+.2f%% (threshold %.0f%%)\n"
    (!best_off *. 1000.0) trials reps
    (!best_on *. 1000.0)
    overhead_pct threshold_pct;
  if overhead_pct > threshold_pct then begin
    Printf.printf
      "FAIL: the disabled tracing path costs more than %.0f%%\n" threshold_pct;
    exit 1
  end;
  print_string "OK: tracing off costs ~nothing\n"
