(* Guards the sampled-tracing cost contract (lib/obs/sampling.mli): with the
   default binary sink and a 1-in-10 sampling policy on the data-path kinds,
   tracing a trace-dense workload must cost < 10% wall-clock over tracing
   off. This is the enforced twin of the informational
   [sampled_overhead_pct_ci] field in BENCH_trace_scale.json — wall-clock
   numbers are excluded from the baseline compare, so the gate lives here.

   Methodology: each round measures tracing-off and sampled-tracing
   back-to-back and takes their ratio, so slow machine phases (frequency
   scaling, noisy neighbours) cancel per round; the round medians absorb
   outliers. Because even the median jitters by a few percent on shared
   hardware, a failed attempt is retried: only a regression that fails
   every attempt fails the build.

   Run with: dune build @check-overhead *)

let threshold_pct = 10.0
let attempts = 3
let rounds = 5

let traced reps sampling =
  Obs.Trace.set_sampling sampling;
  Obs.Trace.set_enabled true;
  let w = Obs.Tracebin.writer ignore in
  let id = Obs.Trace.subscribe (Obs.Tracebin.write w) in
  let r = Workload.time_reps reps in
  Obs.Trace.unsubscribe id;
  Obs.Trace.set_enabled false;
  Obs.Trace.set_sampling None;
  r

let measure_pct () =
  let reps = Workload.calibrate_reps () in
  let ratios = ref [] in
  let checksum_off = ref 0 and checksum_on = ref 0 in
  for _ = 1 to rounds do
    Obs.Trace.set_enabled false;
    let off, c_off = Workload.time_reps reps in
    checksum_off := c_off;
    (* head:0 — measure the steady state, not the always-keep prefix. *)
    let sampled, c_on =
      traced reps (Some (Obs.Sampling.create ~head:0 ~rate:10 ()))
    in
    checksum_on := c_on;
    ratios := (sampled /. Float.max off 1e-9) :: !ratios
  done;
  if !checksum_off <> !checksum_on then begin
    Printf.printf
      "FAIL: sampled tracing changed the simulation (decided %d vs %d)\n"
      !checksum_off !checksum_on;
    exit 1
  end;
  let a = Array.of_list !ratios in
  Array.sort Float.compare a;
  100.0 *. (a.(Array.length a / 2) -. 1.0)

let () =
  let rec go attempt =
    let pct = measure_pct () in
    Printf.printf
      "sampled-tracing overhead:     %+.2f%% (median of %d paired rounds, \
       threshold %.0f%%, attempt %d/%d)\n%!"
      pct rounds threshold_pct attempt attempts;
    if pct < threshold_pct then
      print_string "OK: sampled binary tracing fits the <10% budget\n"
    else if attempt < attempts then go (attempt + 1)
    else begin
      Printf.printf
        "FAIL: sampled tracing costs more than %.0f%% in every attempt\n"
        threshold_pct;
      exit 1
    end
  in
  go 1
