(* The shared workload of the observability overhead gates
   (check_overhead.exe for the tracer, check_profile_overhead.exe for the
   profiler): a short 3-server Omni-Paxos normal execution exercising every
   instrumented hot path — BLE heartbeats, accept/decide, simnet
   send/deliver, batch flush. *)

module Net = Simnet.Net
module R = Omnipaxos.Replica

let n = 3

(* One short normal execution; returns the decided index as a checksum so
   the work cannot be optimised away. *)
let run_once seed =
  let net = Net.create ~seed ~latency:0.1 ~num_nodes:n () in
  let replicas = Array.make n None in
  for id = 0 to n - 1 do
    let peers = List.filter (fun j -> j <> id) (List.init n Fun.id) in
    let send ~dst m = Net.send net ~src:id ~dst ~size:(R.msg_size m) m in
    let r =
      R.create ~id ~peers ~hb_ticks:10 ~storage:(R.Storage.create ()) ~send ()
    in
    replicas.(id) <- Some r;
    Net.set_handler net id (fun ~src m -> R.handle r ~src m);
    Net.set_session_handler net id (fun ~peer -> R.session_reset r ~peer)
  done;
  let rec ticks () =
    Net.schedule net ~delay:5.0 (fun () ->
        Array.iter (function Some r -> R.tick r | None -> ()) replicas;
        ticks ())
  in
  ticks ();
  Net.run_for net 500.0;
  let leader =
    match
      List.find_opt
        (fun id -> R.is_leader (Option.get replicas.(id)))
        (List.init n Fun.id)
    with
    | Some id -> Option.get replicas.(id)
    | None -> failwith "bench workload: no leader elected"
  in
  for wave = 0 to 9 do
    for i = 0 to 199 do
      ignore (R.propose_cmd leader (Replog.Command.noop ((wave * 200) + i)))
    done;
    Net.run_for net 100.0
  done;
  R.decided_idx leader

let time_reps reps =
  let t0 = Sys.time () in
  let acc = ref 0 in
  for s = 1 to reps do
    acc := !acc + run_once s
  done;
  (Sys.time () -. t0, !acc)

(* Calibrate so each trial takes long enough to dwarf Sys.time's resolution
   and scheduler noise. *)
let calibrate_reps () =
  let t1, _ = time_reps 1 in
  max 3 (int_of_float (ceil (0.3 /. Float.max t1 1e-4)))
