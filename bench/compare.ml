(* Bench regression gate CLI.

   Usage: compare.exe BASELINE_DIR CURRENT_DIR section [section ...]

   Diffs BASELINE_DIR/BENCH_<section>.json against the same file in
   CURRENT_DIR using the per-metric tolerances of Bench_report.Compare.
   Exit codes: 0 all sections within tolerance; 1 at least one metric
   regressed (or the report structure changed); 2 usage or IO error.

   To refresh the baseline after an intentional performance change, re-run
   the quick bench and copy the new files over bench/baseline/ (see
   EXPERIMENTS.md for the procedure and the tolerance rationale). *)

let () =
  match Array.to_list Sys.argv with
  | _ :: baseline_dir :: current_dir :: (_ :: _ as sections) ->
      let failures = ref 0 in
      List.iter
        (fun section ->
          let file = Bench_report.Report.file_name ~section in
          let baseline = Filename.concat baseline_dir file in
          let current = Filename.concat current_dir file in
          match Bench_report.Compare.compare_files ~baseline ~current with
          | Error msg ->
              incr failures;
              Printf.printf "[%s] ERROR %s\n" section msg
          | Ok [] -> Printf.printf "[%s] ok\n" section
          | Ok diffs ->
              incr failures;
              Printf.printf "[%s] %d metric(s) outside tolerance:\n" section
                (List.length diffs);
              List.iter
                (fun d ->
                  Printf.printf "  %s\n"
                    (Format.asprintf "%a" Bench_report.Compare.pp_diff d))
                diffs)
        sections;
      if !failures > 0 then begin
        Printf.printf
          "\n%d section(s) failed the gate; see EXPERIMENTS.md for the \
           baseline refresh procedure.\n"
          !failures;
        exit 1
      end
      else Printf.printf "\nAll sections within tolerance.\n"
  | _ ->
      prerr_endline
        "usage: compare.exe BASELINE_DIR CURRENT_DIR section [section ...]";
      exit 2
