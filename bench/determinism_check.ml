(* Bench determinism check: runs each requested section twice in-process
   (same seeds, fresh simulator state) and compares the rendered JSON
   reports byte-for-byte — the same double-run pattern the chaos harness
   uses for replay determinism. A mismatch means some wall-clock,
   global-state or iteration-order nondeterminism leaked into the report
   pipeline, which would make the CI regression gate flaky.

   Usage: determinism_check.exe [section ...]   (default: table1 fig8a)
   Honors BENCH_QUICK like main.exe. Exit 1 on mismatch, 2 on bad usage. *)

let quick = Sys.getenv_opt "BENCH_QUICK" = Some "1"

let sections =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as rest) -> rest
  | _ -> [ "table1"; "fig8a" ]

let () =
  let unknown =
    List.filter (fun s -> not (List.mem s Sections.all_names)) sections
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown section(s): %s\n" (String.concat " " unknown);
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun name ->
      let render () =
        match Sections.run name ~quick ~print:false with
        | Some report -> Bench_report.Json.to_string report
        | None -> assert false
      in
      let first = render () in
      let second = render () in
      if String.equal first second then
        Printf.printf "[%s] deterministic (%d bytes)\n" name
          (String.length first)
      else begin
        failed := true;
        Printf.printf "[%s] MISMATCH between two runs:\n--- run 1\n%s\n--- \
                       run 2\n%s\n" name first second
      end)
    sections;
  if !failed then exit 1 else Printf.printf "All sections deterministic.\n"
