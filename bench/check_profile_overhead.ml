(* Guards the profiler's cost model, the same way check_overhead.ml guards
   the tracer's: every wrapped hot site (simnet dispatch, protocol
   handle/tick, batch flush, trace sink fan-out) is a single guard — one
   ref load + branch — when no capture is running, and "enabled but no
   capture started" must cost the same as disabled. Otherwise `opx top`
   support would tax every benchmark number in this repository.

   The check drives the shared workload (bench/workload.ml) twice per trial
   — profiler off vs. enabled-but-not-capturing — and fails if the
   minimum-of-trials CPU time of the guarded path exceeds the baseline by
   more than 5%.

   Run with: dune build @check-profile-overhead *)

let threshold_pct = 5.0

let () =
  let reps = Workload.calibrate_reps () in
  let trials = 5 in
  let best_off = ref infinity and best_on = ref infinity in
  let checksum_off = ref 0 and checksum_on = ref 0 in
  for _ = 1 to trials do
    (* Interleave the two modes so drift hits both equally. *)
    Obs.Profile.set_enabled false;
    let t, c = Workload.time_reps reps in
    best_off := Float.min !best_off t;
    checksum_off := c;
    Obs.Profile.set_enabled true;
    (* No [Obs.Profile.start]: without a capture the guard must stay cold. *)
    assert (not (Obs.Profile.on ()));
    let t, c = Workload.time_reps reps in
    best_on := Float.min !best_on t;
    checksum_on := c
  done;
  Obs.Profile.set_enabled false;
  if !checksum_off <> !checksum_on then begin
    Printf.printf
      "FAIL: enabling the (idle) profiler changed the simulation (decided \
       %d vs %d)\n"
      !checksum_off !checksum_on;
    exit 1
  end;
  let overhead_pct = 100.0 *. ((!best_on /. !best_off) -. 1.0) in
  Printf.printf
    "profiler disabled:            %.1f ms (min of %d trials x %d runs)\n\
     profiler on, no capture:      %.1f ms\n\
     disabled-path overhead:       %+.2f%% (threshold %.0f%%)\n"
    (!best_off *. 1000.0) trials reps
    (!best_on *. 1000.0)
    overhead_pct threshold_pct;
  if overhead_pct > threshold_pct then begin
    Printf.printf "FAIL: the disabled profiler path costs more than %.0f%%\n"
      threshold_pct;
    exit 1
  end;
  print_string "OK: profiler off costs ~nothing\n"
