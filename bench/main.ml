(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§7) on the simulated network, plus Bechamel micro-benchmarks
   of the core data paths. Each section also writes a machine-readable
   BENCH_<section>.json report (see lib/bench_report and EXPERIMENTS.md);
   bench/compare.exe gates those against a checked-in baseline.

   Usage: main.exe [section ...]
   Sections: table1 fig7 fig8a fig8b fig8c fig9a fig9b fig9c ablations
   policy micro recovery profile. With no arguments, all sections run; an
   unknown section
   name is an error (exit 2). Set BENCH_QUICK=1 for a reduced (faster,
   fewer seeds / shorter runs) configuration, and BENCH_OUT=<dir> to put
   the JSON reports somewhere other than the working directory. *)

let quick = Sys.getenv_opt "BENCH_QUICK" = Some "1"
let out_dir = Option.value (Sys.getenv_opt "BENCH_OUT") ~default:"."

let sections =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as rest) -> rest
  | _ -> Sections.all_names

let () =
  let unknown =
    List.filter (fun s -> not (List.mem s Sections.all_names)) sections
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown section(s): %s\nknown sections: %s\n"
      (String.concat " " unknown)
      (String.concat " " Sections.all_names);
    exit 2
  end;
  Printf.printf "Omni-Paxos reproduction benchmarks%s\n"
    (if quick then " (BENCH_QUICK)" else "");
  List.iter
    (fun name ->
      match Sections.run name ~quick ~print:true with
      | Some report ->
          let path =
            Bench_report.Report.write_envelope ~dir:out_dir ~section:name
              report
          in
          Printf.printf "[json] wrote %s\n" path
      | None -> ())
    sections;
  Printf.printf "\nAll selected benchmark sections completed.\n"
