(* Exhaustive model checking with message drops enabled — the largest
   instances of the bounded Sequence Paxos exploration. These runs are too
   slow for the default test suite; they sit behind the [slow] dune alias
   (run with [dune build @slow]). The point over test_mcheck.ml's drop
   cases: the space must be *exhausted* (non-truncated), so the "no SC1-SC3
   violation" verdict covers every reachable interleaving including drops,
   not just a truncated prefix. *)

let check = Alcotest.(check bool)

let b1 : Mcheck.Spec.ballot = (1, 0)
let b2 : Mcheck.Spec.ballot = (2, 1)

let exhaustive name (cfg : Mcheck.Explore.config) =
  let r = Mcheck.Explore.run cfg in
  (match r.violation with
  | Some v -> Alcotest.failf "%s: %s (after %d states)" name v r.states
  | None -> ());
  check (name ^ ": nontrivial space") true (r.states > 1_000);
  check (name ^ ": space exhausted (not truncated)") true (not r.truncated)

let test_single_leader_drops_exhaustive () =
  exhaustive "single leader, two proposals, drops"
    {
      leader_events = [ (0, b1) ];
      proposals = [ (0, 11); (0, 22) ];
      allow_drops = true;
      max_states = 50_000_000;
    }

let test_competing_leaders_drops_exhaustive () =
  exhaustive "competing leaders, one proposal each, drops"
    {
      leader_events = [ (0, b1); (1, b2) ];
      proposals = [ (0, 11); (1, 22) ];
      allow_drops = true;
      max_states = 50_000_000;
    }

let () =
  Alcotest.run "mcheck-slow"
    [
      ( "exhaustive-with-drops",
        [
          Alcotest.test_case "single leader, drops, exhausted" `Slow
            test_single_leader_drops_exhaustive;
          Alcotest.test_case "competing leaders, drops, exhausted" `Slow
            test_competing_leaders_drops_exhaustive;
        ] );
    ]
