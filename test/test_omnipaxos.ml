(* Integration tests for the Omni-Paxos replica on the simulated network:
   election, replication, the three partial-connectivity scenarios of §2,
   fail-recovery, and session drops. *)

open Helpers
module Net = Simnet.Net
module R = Omnipaxos.Replica

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let decided c id = R.decided_idx (replica c id)

let test_elects_leader () =
  let c = make_cluster ~n:3 () in
  run_ms c 500.0;
  check "a leader is elected" true (current_leader c <> None);
  (* All servers agree: with full connectivity the max ballot wins, which
     belongs to the highest pid. *)
  check_int "leader is the max-pid server" 2 (Option.get (current_leader c))

let test_replicates () =
  let c = make_cluster ~n:3 () in
  run_ms c 500.0;
  let n = propose_noops c ~first_id:0 ~count:100 in
  check_int "all proposals accepted" 100 n;
  run_ms c 500.0;
  List.iter
    (fun id -> check_int (Printf.sprintf "server %d decided" id) 100 (decided c id))
    [ 0; 1; 2 ];
  check "logs are prefix-consistent" true
    (check_prefix_consistency
       (List.map (fun id -> R.read_decided (replica c id) ~from:0) [ 0; 1; 2 ]))

let test_five_servers () =
  let c = make_cluster ~n:5 () in
  run_ms c 500.0;
  ignore (propose_noops c ~first_id:0 ~count:50);
  run_ms c 500.0;
  List.iter (fun id -> check_int "decided" 50 (decided c id)) [ 0; 1; 2; 3; 4 ]

(* Quorum-loss (Figure 5a): all servers remain connected to server 0 but
   disconnected from everyone else; the old leader (4) is alive but no longer
   quorum-connected. Server 0 must take over. *)
let test_quorum_loss () =
  let c = make_cluster ~n:5 () in
  run_ms c 500.0;
  check_int "initial leader" 4 (Option.get (current_leader c));
  ignore (propose_noops c ~first_id:0 ~count:10);
  run_ms c 200.0;
  (* Cut every link not involving server 0. *)
  for a = 1 to 4 do
    for b = a + 1 to 4 do
      Net.set_link c.net a b false
    done
  done;
  run_ms c 2000.0;
  check_int "the only QC server takes over" 0 (Option.get (current_leader c));
  let n = propose_noops c ~first_id:100 ~count:10 in
  check_int "new leader accepts proposals" 10 n;
  run_ms c 500.0;
  check "progress resumed: new entries decided at leader" true
    (decided c 0 >= 20)

(* Constrained election (Figure 5b): the only QC server has an outdated log
   (it was disconnected from the leader before the others), yet it must get
   elected and catch up in the Prepare phase. *)
let test_constrained_election () =
  let c = make_cluster ~n:5 () in
  run_ms c 500.0;
  let leader = Option.get (current_leader c) in
  check_int "initial leader" 4 leader;
  (* Disconnect server 0 from the leader first, then replicate: 0 misses
     entries. *)
  Net.set_link c.net 0 4 false;
  ignore (propose_noops c ~first_id:0 ~count:10);
  (* Short enough that server 0 has not yet taken over leadership (which
     takes ~2 heartbeat rounds), long enough for replication to the rest. *)
  run_ms c 30.0;
  check "server 0 lags" true (decided c 0 < 10);
  check_int "others decided" 10 (decided c 1);
  (* Now fully isolate the leader; and cut all remaining links except the
     ones to server 0: 0 is the only QC server. *)
  Net.isolate c.net 4;
  for a = 1 to 3 do
    for b = a + 1 to 3 do
      Net.set_link c.net a b false
    done
  done;
  run_ms c 2000.0;
  check_int "outdated QC server elected" 0 (Option.get (current_leader c));
  check_int "new leader caught up in Prepare phase" 10 (decided c 0);
  ignore (propose_noops c ~first_id:100 ~count:5);
  run_ms c 500.0;
  check_int "progress" 15 (decided c 0)

(* Chained scenario (Figure 5c): 3 servers, the link between the leader (2)
   and server 1 breaks. One leader change must occur, after which the cluster
   makes stable progress without livelock. *)
let test_chained () =
  let c = make_cluster ~n:3 () in
  run_ms c 500.0;
  check_int "initial leader" 2 (Option.get (current_leader c));
  ignore (propose_noops c ~first_id:0 ~count:10);
  run_ms c 200.0;
  Net.set_link c.net 1 2 false;
  run_ms c 2000.0;
  (* Server 1 suspects the leader, takes over with a higher ballot; 0 and 1
     follow it. The stale leader 2 cannot disrupt via 0 because BLE ballots
     carry no leader identity. *)
  let leader = Option.get (current_leader c) in
  check_int "one takeover by the disconnected server" 1 leader;
  let before = decided c 1 in
  ignore (propose_noops c ~first_id:100 ~count:20);
  run_ms c 1000.0;
  check "stable progress after single change" true (decided c 1 = before + 20);
  (* No further leader flapping: ballot of the leader is unchanged. *)
  run_ms c 2000.0;
  check_int "leader is stable" 1 (Option.get (current_leader c))

let test_crash_recovery () =
  let c = make_cluster ~n:3 () in
  run_ms c 500.0;
  ignore (propose_noops c ~first_id:0 ~count:10);
  run_ms c 300.0;
  crash c 0;
  ignore (propose_noops c ~first_id:100 ~count:10);
  run_ms c 300.0;
  check_int "majority still decides" 20 (decided c 1);
  recover c 0;
  run_ms c 1000.0;
  check_int "recovered server catches up" 20 (decided c 0);
  check "logs consistent" true
    (check_prefix_consistency
       (List.map (fun id -> R.read_decided (replica c id) ~from:0) [ 0; 1; 2 ]))

let test_leader_crash_recovery () =
  let c = make_cluster ~n:3 () in
  run_ms c 500.0;
  let leader = Option.get (current_leader c) in
  ignore (propose_noops c ~first_id:0 ~count:10);
  run_ms c 300.0;
  crash c leader;
  run_ms c 2000.0;
  let new_leader = Option.get (current_leader c) in
  check "another server takes over" true (new_leader <> leader);
  ignore (propose_noops c ~first_id:100 ~count:10);
  run_ms c 500.0;
  check_int "progress under new leader" 20 (decided c new_leader);
  recover c leader;
  run_ms c 2000.0;
  check_int "old leader rejoins and catches up" 20 (decided c leader)

(* A temporary full partition drops messages; when it heals, the session
   reset triggers PrepareReq-based resynchronisation. *)
let test_session_drop_resync () =
  let c = make_cluster ~n:3 () in
  run_ms c 500.0;
  ignore (propose_noops c ~first_id:0 ~count:5);
  run_ms c 300.0;
  Net.partition c.net [ 0 ] [ 1; 2 ];
  ignore (propose_noops c ~first_id:100 ~count:5);
  run_ms c 500.0;
  check_int "isolated server misses entries" 5 (decided c 0);
  check_int "majority progresses" 10 (decided c 2);
  Net.heal_all c.net;
  run_ms c 1000.0;
  check_int "resynced after session reset" 10 (decided c 0)

(* Figure 5c at 5 servers (LE2 case iii): the leader and one follower get
   disconnected from each other, leaving two quorum-connected servers that
   elect differently in overlapping majorities. The higher ballot wins the
   overlap and progress continues with a single leader change. *)
let test_two_disconnected_qc_leaders () =
  let c = make_cluster ~n:5 () in
  run_ms c 500.0;
  let old_leader = Option.get (current_leader c) in
  check_int "initial leader" 4 old_leader;
  ignore (propose_noops c ~first_id:0 ~count:10);
  run_ms c 200.0;
  Net.set_link c.net 4 3 false;
  run_ms c 2000.0;
  (* Server 3 took over with a higher ballot; server 4 may still consider
     itself a leader but cannot decide: its majority overlaps 3's. *)
  check "takeover by the disconnected QC server" true
    (Omnipaxos.Replica.is_leader (replica c 3));
  let before = R.decided_idx (replica c 3) in
  ignore (propose_noops c ~first_id:100 ~count:20);
  run_ms c 1000.0;
  check_int "progress through the new leader" (before + 20)
    (R.decided_idx (replica c 3));
  (* The stale leader cannot have decided anything new. *)
  check "old leader stalled" true (R.decided_idx (replica c 4) <= before + 20);
  check "logs consistent" true
    (check_prefix_consistency
       (List.map (fun id -> R.read_decided (replica c id) ~from:0) [ 0; 1; 2; 3 ]))

(* The trace-driven safety invariants hold over a full quorum-loss run: even
   across the leader takeover, no two servers ever drive Prepare/Accept under
   the same ballot, and no server's decided index regresses. *)
let test_quorum_loss_trace_invariants () =
  let (), { Obs.Trace.events; dropped = _; dropped_by_kind = _ } =
    Obs.Trace.with_recording (fun () ->
        let c = make_cluster ~n:5 () in
        run_ms c 500.0;
        ignore (propose_noops c ~first_id:0 ~count:10);
        run_ms c 200.0;
        (* Quorum loss: cut every link not involving server 0. *)
        for a = 1 to 4 do
          for b = a + 1 to 4 do
            Net.set_link c.net a b false
          done
        done;
        run_ms c 2000.0;
        ignore (propose_noops c ~first_id:100 ~count:10);
        run_ms c 500.0)
  in
  check "trace is non-empty" true (not (List.is_empty events));
  let has kind =
    List.exists (fun (e : Obs.Event.t) -> Obs.Event.kind_name e.kind = kind)
      events
  in
  check "trace has ballot takeover events" true (has "ballot_increment");
  check "trace has link events" true (has "link_cut");
  check "trace has decide events" true (has "decide");
  List.iter
    (fun (name, result) ->
      match result with
      | Ok () -> ()
      | Error v ->
          Alcotest.failf "invariant %s violated: %s" name
            (Format.asprintf "%a" Obs.Invariant.pp_violation v))
    (Obs.Invariant.check_all events)

(* Cluster-level trim: compact, keep replicating, survive a leader change. *)
let test_trim_end_to_end () =
  let c = make_cluster ~n:3 () in
  run_ms c 500.0;
  ignore (propose_noops c ~first_id:0 ~count:50);
  run_ms c 500.0;
  let leader = Option.get (current_leader c) in
  check "trim accepted" true
    (R.request_trim (replica c leader) ~upto:30);
  run_ms c 200.0;
  List.iter
    (fun id ->
      check_int "compacted everywhere" 30
        (Replog.Log.first_idx (R.read_log (replica c id))))
    [ 0; 1; 2 ];
  ignore (propose_noops c ~first_id:100 ~count:10);
  run_ms c 500.0;
  check_int "replication continues" 60 (R.decided_idx (replica c 0));
  (* Elections still work over compacted logs. *)
  crash c leader;
  run_ms c 2000.0;
  let new_leader = Option.get (current_leader c) in
  ignore (propose_noops c ~first_id:200 ~count:10);
  run_ms c 500.0;
  check "progress after leader change over trimmed logs" true
    (R.decided_idx (replica c new_leader) >= 70)

let () =
  Alcotest.run "omnipaxos"
    [
      ( "integration",
        [
          Alcotest.test_case "elects leader" `Quick test_elects_leader;
          Alcotest.test_case "replicates" `Quick test_replicates;
          Alcotest.test_case "five servers" `Quick test_five_servers;
          Alcotest.test_case "quorum loss" `Quick test_quorum_loss;
          Alcotest.test_case "constrained election" `Quick
            test_constrained_election;
          Alcotest.test_case "chained" `Quick test_chained;
          Alcotest.test_case "crash recovery" `Quick test_crash_recovery;
          Alcotest.test_case "leader crash recovery" `Quick
            test_leader_crash_recovery;
          Alcotest.test_case "session drop resync" `Quick
            test_session_drop_resync;
          Alcotest.test_case "two disconnected QC leaders" `Quick
            test_two_disconnected_qc_leaders;
          Alcotest.test_case "quorum loss trace invariants" `Quick
            test_quorum_loss_trace_invariants;
          Alcotest.test_case "trim end to end" `Quick test_trim_end_to_end;
        ] );
    ]
