(* Trace-scale smoke: a fast slice of the trace_scale bench contract, in
   the default runtest (and as `dune build @trace-scale-smoke`). Runs the
   deterministic synthetic workload at 50k events — big enough to cross
   the analyzer's stream-window and string-interning boundaries, small
   enough for CI — and asserts, rather than expect-diffs, so the checks
   hold under any event-count tweak:

   - the binary codec round-trips the stream exactly (JSONL-normalised),
     and decodes what it encoded event for event;
   - binary is at least 5x smaller than JSONL on this workload (the
     bench gates the same ratio at 1M events);
   - the streaming analyzer with default bounds equals the batch analyzer
     byte for byte, in both renderings, and is itself deterministic;
   - a bin -> jsonl -> bin convert cycle preserves the event stream. *)

let fail fmt = Printf.ksprintf failwith fmt

let check name b = if not b then fail "check failed: %s" name

let events = 50_000

let jsonl_of evs =
  let b = Buffer.create (events * 64) in
  List.iter
    (fun e ->
      Buffer.add_string b (Obs.Event.to_json e);
      Buffer.add_char b '\n')
    evs;
  Buffer.contents b

let bin_of evs =
  let b = Buffer.create (events * 8) in
  let w = Obs.Tracebin.writer ~meta:[ ("gen", "synth") ] (Buffer.add_string b) in
  List.iter (Obs.Tracebin.write w) evs;
  Obs.Tracebin.flush w;
  Buffer.contents b

let decode s =
  let src = Obs.Tracebin.of_string s in
  let acc = ref [] in
  (match Obs.Tracebin.iter src (fun e -> acc := e :: !acc) with
  | Ok () -> ()
  | Error e -> fail "decode error: %s" e);
  List.rev !acc

let () =
  let evs = Obs.Synth.to_list ~nodes:5 ~seed:1 ~events () in
  check "synth emits the requested count" (List.length evs = events);

  let jsonl = jsonl_of evs in
  let bin = bin_of evs in
  let decoded = decode bin in
  check "bin round-trip is exact" (String.equal jsonl (jsonl_of decoded));
  let ratio =
    float_of_int (String.length jsonl) /. float_of_int (String.length bin)
  in
  if ratio < 5.0 then fail "compression ratio %.2f < 5.0" ratio;

  (* Convert cycle: bin -> jsonl -> bin, compared as event streams (the
     jsonl hop drops the binary header, so bytes differ, events must not). *)
  let back = decode (bin_of (decode (jsonl_of decoded))) in
  check "convert cycle preserves events" (String.equal jsonl (jsonl_of back));

  let batch = Obs.Analyze.run evs in
  let n = 5 in
  let streamed () =
    let s = Obs.Analyze.Stream.create ~n_hint:n () in
    List.iter (Obs.Analyze.Stream.observe s) evs;
    Obs.Analyze.Stream.finish s
  in
  let s1 = streamed () in
  let s2 = streamed () in
  check "streaming == batch (text)"
    (String.equal (Obs.Analyze.to_string batch) (Obs.Analyze.to_string s1));
  check "streaming == batch (json)"
    (String.equal
       (Bench_report.Json.to_string (Obs.Analyze.to_json batch))
       (Bench_report.Json.to_string (Obs.Analyze.to_json s1)));
  check "streaming is deterministic"
    (String.equal (Obs.Analyze.to_string s1) (Obs.Analyze.to_string s2));

  (* The synthetic workload must keep every invariant green, or scale
     numbers measured over it are numbers about a broken trace. *)
  List.iter
    (fun (name, r) ->
      match r with
      | Ok () -> ()
      | Error (v : Obs.Invariant.violation) ->
          fail "synth trace violates %s: %s" name v.Obs.Invariant.message)
    s1.Obs.Analyze.invariants;

  print_endline "trace-scale smoke: OK"
