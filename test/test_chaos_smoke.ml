(* Chaos smoke corpus: a handful of checked-in seeds (test/chaos_seeds.txt),
   two episodes each, across all four protocols plus the deliberately
   broken stale-read wrapper. Runs in seconds and is wired into the default
   [dune runtest] via an expect diff (and the [chaos-smoke] alias), so every
   test run exercises the whole harness end to end: nemesis, clients,
   history, checker and shrinker.

   The output is intentionally free of op counts: it asserts only the
   verdicts (clean protocols stay clean, the canary is caught), so it does
   not churn when timing-neutral protocol changes shift throughput. *)

let read_seeds file =
  let ic = open_in file in
  let rec go acc =
    match input_line ic with
    | line ->
        let line = String.trim line in
        if line = "" then go acc else go (int_of_string line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let () =
  let file = if Array.length Sys.argv > 1 then Sys.argv.(1) else "chaos_seeds.txt" in
  let seeds = read_seeds file in
  let episodes = 2 in
  let cfg = Chaos.Campaign.default_config in
  List.iter
    (fun (r : Chaos.Campaign.runner) ->
      let violations =
        List.fold_left
          (fun acc seed ->
            acc
            + List.length
                (r.cr_run cfg ~seed ~episodes).Chaos.Campaign.s_failures)
          0 seeds
      in
      let verdict =
        if r.cr_name = "faulty-raft" then
          if violations > 0 then "CAUGHT (expected: the canary must fail)"
          else "MISSED (the injected stale-read bug went undetected!)"
        else if violations = 0 then "OK"
        else Printf.sprintf "VIOLATIONS (%d)" violations
      in
      Printf.printf "%-12s %d seeds x %d episodes: %s\n" r.cr_name
        (List.length seeds) episodes verdict)
    Chaos.Campaign.runners
