(* Unit tests for the bench report pipeline (lib/bench_report): the
   deterministic JSON printer/parser round-trip, the report envelope, and
   the suffix-driven tolerance gate of the comparator. *)

module Json = Bench_report.Json
module Report = Bench_report.Report
module Compare = Bench_report.Compare

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------------- printer / parser ---------------- *)

let sample =
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ("section", Json.String "table1");
      ("ok", Json.Bool true);
      ("nothing", Json.Null);
      ( "rows",
        Json.List
          [
            Json.Obj
              [
                ("mean_rate", Json.float 302400.0);
                ("p99_ms", Json.float 6.53125);
                ("io_bytes", Json.Int 123456);
                ("label", Json.String "omni \"quoted\"\n\ttail");
              ];
            Json.List [ Json.Int (-3); Json.float 0.0; Json.float 1e-9 ];
          ] );
    ]

let test_roundtrip () =
  let s = Json.to_string sample in
  match Json.of_string s with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok back ->
      check "round-trips structurally" true (Json.equal sample back);
      check_str "re-rendering is byte-stable" s (Json.to_string back)

let test_nonfinite_is_null () =
  check "nan collapses to null" true (Json.equal (Json.float Float.nan) Json.Null);
  check "inf collapses to null" true
    (Json.equal (Json.float Float.infinity) Json.Null)

let test_integral_float_keeps_point () =
  (* 302400.0 must not print as the integer 302400, or a later run that
     produces 302400.5 would flip the leaf's type. *)
  let s = Json.to_string (Json.float 302400.0) in
  check "integral float keeps a decimal point" true
    (String.length s >= 2 && String.contains s '.')

let test_parser_rejects_garbage () =
  let bad = [ "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    bad

let test_member () =
  check "member finds a field" true
    (Json.member "section" sample = Some (Json.String "table1"));
  check "member misses politely" true (Json.member "nope" sample = None)

let test_envelope () =
  let e =
    Report.envelope ~section:"fig8a" ~seeds:[ 1; 2 ] ~quick:true
      ~rows:(Json.List [])
  in
  check "envelope carries the section" true
    (Json.member "section" e = Some (Json.String "fig8a"));
  check "envelope is versioned" true
    (Json.member "schema_version" e = Some (Json.Int Report.schema_version));
  check_str "file name" "BENCH_fig8a.json" (Report.file_name ~section:"fig8a")

(* ---------------- tolerance gate ---------------- *)

let diffs ~baseline ~current =
  Compare.diff_values ~path:"$" ~baseline ~current

let metric name v = Json.Obj [ (name, Json.float v) ]

let test_exact_fields_gate () =
  check_int "identical trees produce no diff" 0
    (List.length (diffs ~baseline:sample ~current:sample));
  (* [n] has no metric suffix: any change is a failure. *)
  check "config echo drift fails" true
    (diffs
       ~baseline:(Json.Obj [ ("n", Json.Int 3) ])
       ~current:(Json.Obj [ ("n", Json.Int 5) ])
     <> [])

let test_rate_tolerance () =
  (* _rate: 30% relative. 10% drift passes, 50% drift fails. *)
  check_int "10%% rate drift passes" 0
    (List.length
       (diffs ~baseline:(metric "mean_rate" 1000.0)
          ~current:(metric "mean_rate" 1100.0)));
  check "50%% rate drift fails" true
    (diffs ~baseline:(metric "mean_rate" 1000.0)
       ~current:(metric "mean_rate" 1500.0)
     <> [])

let test_abs_floor () =
  (* Near-zero baselines fall back to the absolute floor (10.0 for _ms):
     0 -> 8 ms passes, 0 -> 50 ms fails. *)
  check_int "within the absolute floor" 0
    (List.length
       (diffs ~baseline:(metric "p99_ms" 0.0) ~current:(metric "p99_ms" 8.0)));
  check "beyond the absolute floor" true
    (diffs ~baseline:(metric "p99_ms" 0.0) ~current:(metric "p99_ms" 50.0) <> [])

let test_ci_ignored () =
  check_int "_ci fields gate nothing" 0
    (List.length
       (diffs ~baseline:(metric "rate_ci" 3.0)
          ~current:(metric "rate_ci" 40000.0)))

let test_structure_changes_fail () =
  let base = Json.Obj [ ("a", Json.Int 1); ("b", Json.Int 2) ] in
  check "missing field fails" true
    (diffs ~baseline:base ~current:(Json.Obj [ ("a", Json.Int 1) ]) <> []);
  check "reordered fields fail" true
    (diffs ~baseline:base
       ~current:(Json.Obj [ ("b", Json.Int 2); ("a", Json.Int 1) ])
     <> []);
  check "array length change fails" true
    (diffs
       ~baseline:(Json.List [ Json.Int 1 ])
       ~current:(Json.List [ Json.Int 1; Json.Int 2 ])
     <> [])

let test_int_float_leaves_compare_numerically () =
  (* A metric that happens to land on an integer in one run must still
     compare against a float baseline (and vice versa). *)
  check_int "Int vs Float within tolerance passes" 0
    (List.length
       (diffs
          ~baseline:(Json.Obj [ ("decided_count", Json.Int 1000) ])
          ~current:(Json.Obj [ ("decided_count", Json.float 1010.0) ])))

let test_tolerance_classes () =
  check "suffix lookup: _ci is Ignore" true
    (Compare.tolerance_for "rate_ci" = Compare.Ignore);
  check "suffix lookup: bare name is Exact" true
    (Compare.tolerance_for "seeds" = Compare.Exact)

let () =
  Alcotest.run "bench_report"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "non-finite floats" `Quick test_nonfinite_is_null;
          Alcotest.test_case "integral float format" `Quick
            test_integral_float_keeps_point;
          Alcotest.test_case "parser rejects garbage" `Quick
            test_parser_rejects_garbage;
          Alcotest.test_case "member" `Quick test_member;
          Alcotest.test_case "envelope" `Quick test_envelope;
        ] );
      ( "gate",
        [
          Alcotest.test_case "exact fields" `Quick test_exact_fields_gate;
          Alcotest.test_case "rate tolerance" `Quick test_rate_tolerance;
          Alcotest.test_case "absolute floor" `Quick test_abs_floor;
          Alcotest.test_case "_ci ignored" `Quick test_ci_ignored;
          Alcotest.test_case "structure changes" `Quick
            test_structure_changes_fail;
          Alcotest.test_case "int/float numeric compare" `Quick
            test_int_float_leaves_compare_numerically;
          Alcotest.test_case "tolerance classes" `Quick test_tolerance_classes;
        ] );
    ]
