(* Unit tests for the observability layer (lib/obs): ring-buffer semantics,
   tracer sink fan-out and state restoration, histogram bucketing, and the
   trace-driven invariant checkers (including catching an injected
   two-leaders-for-one-ballot split-brain trace). *)

module Ring = Obs.Ring
module Trace = Obs.Trace
module Event = Obs.Event
module Metric = Obs.Metric
module Invariant = Obs.Invariant

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ---------------- ring buffer ---------------- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:4 in
  check_int "capacity" 4 (Ring.capacity r);
  check_int "empty" 0 (Ring.length r);
  check "empty to_list" true (Ring.to_list r = []);
  Ring.push r 1;
  Ring.push r 2;
  check_int "partial fill" 2 (Ring.length r);
  check "oldest first" true (Ring.to_list r = [ 1; 2 ])

let test_ring_wraparound () =
  let r = Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Ring.push r i
  done;
  check_int "length capped at capacity" 4 (Ring.length r);
  check "keeps the newest, oldest first" true (Ring.to_list r = [ 7; 8; 9; 10 ]);
  (* Wrap exactly once more around the boundary. *)
  Ring.push r 11;
  check "still oldest first after another push" true
    (Ring.to_list r = [ 8; 9; 10; 11 ]);
  let seen = ref [] in
  Ring.iter r (fun x -> seen := x :: !seen);
  check "iter agrees with to_list" true (List.rev !seen = Ring.to_list r);
  Ring.clear r;
  check_int "clear empties" 0 (Ring.length r);
  Ring.push r 42;
  check "usable after clear" true (Ring.to_list r = [ 42 ])

let test_ring_invalid_capacity () =
  check "capacity 0 rejected" true
    (try
       ignore (Ring.create ~capacity:0);
       false
     with Invalid_argument _ -> true)

(* ---------------- tracer ---------------- *)

let ev ?(time = 1.0) ?(node = 0) kind = { Event.time; node; kind }

let test_sink_fanout () =
  let a = ref [] and b = ref [] in
  let ia = Trace.subscribe (fun e -> a := e :: !a) in
  let ib = Trace.subscribe (fun e -> b := e :: !b) in
  Trace.set_enabled true;
  check "hot with sinks" true (Trace.on ());
  Trace.emit_at ~time:1.0 ~node:3 Event.Crashed;
  check_int "first sink got it" 1 (List.length !a);
  check_int "second sink got it" 1 (List.length !b);
  Trace.unsubscribe ia;
  Trace.emit_at ~time:2.0 ~node:3 Event.Recovered;
  check_int "unsubscribed sink stops" 1 (List.length !a);
  check_int "remaining sink continues" 2 (List.length !b);
  (* Enabled but unsubscribed: the guard must be cold (the disabled-path
     cost model bench/check_overhead.ml verifies relies on this). *)
  Trace.unsubscribe ib;
  check "enabled but unsubscribed is cold" false (Trace.on ());
  (* Disabled with a sink: also cold, and emits are dropped. *)
  let cnt = ref 0 in
  let ic = Trace.subscribe (fun _ -> incr cnt) in
  Trace.set_enabled false;
  check "disabled is cold" false (Trace.on ());
  Trace.emit_at ~time:3.0 ~node:0 Event.Crashed;
  check_int "no events while disabled" 0 !cnt;
  Trace.unsubscribe ic

let test_with_recording () =
  Trace.set_enabled false;
  let v, events =
    Trace.with_recording (fun () ->
        Trace.emit_at ~time:1.0 ~node:2
          (Event.Session_drop { peer = 0; session = 1 });
        Trace.emit_at ~time:2.0 ~node:2
          (Event.Session_up { peer = 0; session = 2 });
        17)
  in
  check_int "returns the function's result" 17 v;
  check_int "recorded both events" 2 (List.length events);
  check "oldest first" true
    ((List.hd events).Event.kind = Event.Session_drop { peer = 0; session = 1 });
  check "tracer state restored" false (Trace.is_enabled ());
  (* The bounded ring drops the oldest events of an over-long run. *)
  let (), events =
    Trace.with_recording ~capacity:3 (fun () ->
        for i = 1 to 5 do
          Trace.emit_at ~time:(float_of_int i) ~node:0 Event.Crashed
        done)
  in
  check "over-capacity run keeps the newest" true
    (List.map (fun (e : Event.t) -> e.time) events = [ 3.0; 4.0; 5.0 ])

let test_event_json () =
  let b = { Event.n = 3; prio = 1; pid = 2 } in
  let j =
    Event.to_json (ev ~time:12.5 ~node:1 (Event.Decided { b; decided_idx = 7 }))
  in
  check "decide json" true
    (j = {|{"t":12.500,"node":1,"kind":"decide","ballot":{"n":3,"prio":1,"pid":2},"decided_idx":7}|});
  let j =
    Event.to_json
      (ev (Event.Msg_drop { src = 0; dst = 1; reason = "link-down" }))
  in
  check "drop json has reason" true
    (j = {|{"t":1.000,"node":0,"kind":"drop","src":0,"dst":1,"reason":"link-down"}|});
  (* Strings are escaped defensively. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let j =
    Event.to_json (ev (Event.Reconfig { config_id = 1; milestone = {|a"b|} }))
  in
  check "escaped quote" true (contains j {|a\"b|})

(* ---------------- histogram ---------------- *)

let test_histogram_bucketing () =
  let h = Metric.Histogram.create () in
  check "empty mean is nan" true (Float.is_nan (Metric.Histogram.mean h));
  check "empty percentile is nan" true
    (Float.is_nan (Metric.Histogram.percentile h ~p:50.0));
  (* Base-2 log buckets: bucket 0 = [0,1), then [1,2), [2,4), [4,8)... *)
  List.iter (Metric.Histogram.observe h) [ 0.0; 0.5; 1.0; 1.5; 3.0; 6.0; 6.0 ];
  check_int "count" 7 (Metric.Histogram.count h);
  checkf "sum" 18.0 (Metric.Histogram.sum h);
  check "buckets are (upper-bound, count) ascending" true
    (Metric.Histogram.buckets h = [ (1.0, 2); (2.0, 2); (4.0, 1); (8.0, 2) ]);
  checkf "exact mean" (18.0 /. 7.0) (Metric.Histogram.mean h);
  checkf "exact min" 0.0 (Metric.Histogram.min_value h);
  checkf "exact max" 6.0 (Metric.Histogram.max_value h);
  (* Negative samples clamp to 0 (bucket 0). *)
  let h2 = Metric.Histogram.create () in
  Metric.Histogram.observe h2 (-5.0);
  checkf "negative clamped" 0.0 (Metric.Histogram.max_value h2);
  check "clamped into bucket 0" true
    (Metric.Histogram.buckets h2 = [ (1.0, 1) ]);
  (* Percentiles interpolate within a bucket and are monotone. *)
  let h3 = Metric.Histogram.create () in
  for _ = 1 to 100 do
    Metric.Histogram.observe h3 5.0
  done;
  let p50 = Metric.Histogram.percentile h3 ~p:50.0 in
  check "p50 inside [4,8) bucket clamped to [5,5]" true (p50 = 5.0);
  List.iter (fun x -> Metric.Histogram.observe h3 x) [ 100.0; 200.0 ];
  let p50 = Metric.Histogram.percentile h3 ~p:50.0
  and p99 = Metric.Histogram.percentile h3 ~p:99.0 in
  check "percentile monotone" true (p50 <= p99);
  check "p99 above the bulk" true (p99 > 5.0)

let test_histogram_stddev () =
  let h = Metric.Histogram.create () in
  check "stddev of empty" true (Metric.Histogram.stddev h = 0.0);
  Metric.Histogram.observe h 4.0;
  check "stddev of one" true (Metric.Histogram.stddev h = 0.0);
  List.iter (Metric.Histogram.observe h) [ 2.0; 6.0 ];
  (* Samples 4, 2, 6: mean 4, sample variance ((0+4+4)/2) = 4. *)
  checkf "sample stddev" 2.0 (Metric.Histogram.stddev h)

let test_registry () =
  let r = Metric.Registry.create () in
  let c = Metric.Registry.counter r "decides" in
  Metric.Counter.incr c;
  Metric.Counter.add c 2;
  check_int "same name, same counter" 3
    (Metric.Counter.value (Metric.Registry.counter r "decides"));
  Metric.Gauge.set (Metric.Registry.gauge r "leader") 4.0;
  Metric.Histogram.observe (Metric.Registry.histogram r "gap_ms") 3.0;
  check_int "one line per metric" 3 (List.length (Metric.Registry.to_lines r));
  Metric.Registry.clear r;
  check_int "clear resets" 0
    (Metric.Counter.value (Metric.Registry.counter r "decides"))

(* ---------------- invariants ---------------- *)

let b1 = { Event.n = 5; prio = 0; pid = 1 }

let legit_trace =
  [
    ev ~time:1.0 ~node:1 (Event.Ballot_increment b1);
    ev ~time:2.0 ~node:1 (Event.Leader_elected b1);
    ev ~time:3.0 ~node:1
      (Event.Prepare_round { b = b1; log_idx = 0; decided_idx = 0 });
    ev ~time:4.0 ~node:1 (Event.Accept_sent { b = b1; start_idx = 0; count = 3 });
    ev ~time:5.0 ~node:2 (Event.Accepted_idx { b = b1; log_idx = 3 });
    ev ~time:6.0 ~node:1 (Event.Decided { b = b1; decided_idx = 3 });
    ev ~time:7.0 ~node:2 (Event.Decided { b = b1; decided_idx = 3 });
  ]

let test_invariants_pass () =
  check "single leader ok" true
    (Invariant.single_leader_per_ballot legit_trace = Ok ());
  check "monotone ok" true
    (Invariant.decided_prefix_monotonic legit_trace = Ok ());
  check "check_all all green" true
    (List.for_all (fun (_, r) -> r = Ok ()) (Invariant.check_all legit_trace))

(* The injected split-brain: node 2 drives Accepts under node 1's ballot. *)
let test_two_leaders_one_ballot () =
  let bad =
    legit_trace
    @ [ ev ~time:8.0 ~node:2
          (Event.Accept_sent { b = b1; start_idx = 3; count = 1 });
      ]
  in
  match Invariant.single_leader_per_ballot bad with
  | Ok () -> Alcotest.fail "two leaders under one ballot not detected"
  | Error v ->
      check "violation at the offending event" true (v.Invariant.at = 8.0);
      check_int "offending node" 2 v.Invariant.node;
      check "check_all reports it too" true
        (List.exists
           (fun (name, r) ->
             name = "single-leader-per-ballot" && r <> Ok ())
           (Invariant.check_all bad))

let test_decided_regression_detected () =
  let bad =
    legit_trace @ [ ev ~time:9.0 ~node:2 (Event.Decided { b = b1; decided_idx = 1 }) ]
  in
  match Invariant.decided_prefix_monotonic bad with
  | Ok () -> Alcotest.fail "decided-index regression not detected"
  | Error v -> check_int "regressing node" 2 v.Invariant.node

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "invalid capacity" `Quick
            test_ring_invalid_capacity;
        ] );
      ( "trace",
        [
          Alcotest.test_case "sink fan-out" `Quick test_sink_fanout;
          Alcotest.test_case "with_recording" `Quick test_with_recording;
          Alcotest.test_case "event json" `Quick test_event_json;
        ] );
      ( "metric",
        [
          Alcotest.test_case "histogram bucketing" `Quick
            test_histogram_bucketing;
          Alcotest.test_case "histogram stddev" `Quick test_histogram_stddev;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "clean trace passes" `Quick test_invariants_pass;
          Alcotest.test_case "two leaders one ballot" `Quick
            test_two_leaders_one_ballot;
          Alcotest.test_case "decided regression" `Quick
            test_decided_regression_detected;
        ] );
    ]
