(* Unit tests for the observability layer (lib/obs): ring-buffer semantics,
   tracer sink fan-out and state restoration, histogram bucketing, and the
   trace-driven invariant checkers (including catching an injected
   two-leaders-for-one-ballot split-brain trace). *)

module Ring = Obs.Ring
module Trace = Obs.Trace
module Event = Obs.Event
module Metric = Obs.Metric
module Invariant = Obs.Invariant
module Causal = Obs.Causal
module Span = Obs.Span
module Health = Obs.Health

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ---------------- ring buffer ---------------- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:4 in
  check_int "capacity" 4 (Ring.capacity r);
  check_int "empty" 0 (Ring.length r);
  check "empty to_list" true (Ring.to_list r = []);
  Ring.push r 1;
  Ring.push r 2;
  check_int "partial fill" 2 (Ring.length r);
  check "oldest first" true (Ring.to_list r = [ 1; 2 ])

let test_ring_wraparound () =
  let r = Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Ring.push r i
  done;
  check_int "length capped at capacity" 4 (Ring.length r);
  check "keeps the newest, oldest first" true (Ring.to_list r = [ 7; 8; 9; 10 ]);
  (* Wrap exactly once more around the boundary. *)
  Ring.push r 11;
  check "still oldest first after another push" true
    (Ring.to_list r = [ 8; 9; 10; 11 ]);
  let seen = ref [] in
  Ring.iter r (fun x -> seen := x :: !seen);
  check "iter agrees with to_list" true (List.rev !seen = Ring.to_list r);
  Ring.clear r;
  check_int "clear empties" 0 (Ring.length r);
  Ring.push r 42;
  check "usable after clear" true (Ring.to_list r = [ 42 ])

let test_ring_invalid_capacity () =
  check "capacity 0 rejected" true
    (try
       ignore (Ring.create ~capacity:0);
       false
     with Invalid_argument _ -> true)

(* ---------------- tracer ---------------- *)

let ev ?(time = 1.0) ?(node = 0) kind = { Event.time; node; kind }
let b1 = { Event.n = 5; prio = 0; pid = 1 }

let test_sink_fanout () =
  let a = ref [] and b = ref [] in
  let ia = Trace.subscribe (fun e -> a := e :: !a) in
  let ib = Trace.subscribe (fun e -> b := e :: !b) in
  Trace.set_enabled true;
  check "hot with sinks" true (Trace.on ());
  Trace.emit_at ~time:1.0 ~node:3 Event.Crashed;
  check_int "first sink got it" 1 (List.length !a);
  check_int "second sink got it" 1 (List.length !b);
  Trace.unsubscribe ia;
  Trace.emit_at ~time:2.0 ~node:3 Event.Recovered;
  check_int "unsubscribed sink stops" 1 (List.length !a);
  check_int "remaining sink continues" 2 (List.length !b);
  (* Enabled but unsubscribed: the guard must be cold (the disabled-path
     cost model bench/check_overhead.ml verifies relies on this). *)
  Trace.unsubscribe ib;
  check "enabled but unsubscribed is cold" false (Trace.on ());
  (* Disabled with a sink: also cold, and emits are dropped. *)
  let cnt = ref 0 in
  let ic = Trace.subscribe (fun _ -> incr cnt) in
  Trace.set_enabled false;
  check "disabled is cold" false (Trace.on ());
  Trace.emit_at ~time:3.0 ~node:0 Event.Crashed;
  check_int "no events while disabled" 0 !cnt;
  Trace.unsubscribe ic

let test_with_recording () =
  Trace.set_enabled false;
  let v, { Trace.events; dropped; dropped_by_kind } =
    Trace.with_recording (fun () ->
        Trace.emit_at ~time:1.0 ~node:2
          (Event.Session_drop { peer = 0; session = 1 });
        Trace.emit_at ~time:2.0 ~node:2
          (Event.Session_up { peer = 0; session = 2 });
        17)
  in
  check_int "returns the function's result" 17 v;
  check_int "recorded both events" 2 (List.length events);
  check_int "complete recording reports no drops" 0 dropped;
  check "no drops means empty breakdown" true (dropped_by_kind = []);
  check "oldest first" true
    ((List.hd events).Event.kind = Event.Session_drop { peer = 0; session = 1 });
  check "tracer state restored" false (Trace.is_enabled ());
  (* The bounded ring drops the oldest events of an over-long run — and
     says so, instead of passing the truncation off as a complete trace. *)
  let (), { Trace.events; dropped; dropped_by_kind } =
    Trace.with_recording ~capacity:3 (fun () ->
        for i = 1 to 5 do
          Trace.emit_at ~time:(float_of_int i) ~node:0 Event.Crashed
        done)
  in
  check "over-capacity run keeps the newest" true
    (List.map (fun (e : Event.t) -> e.time) events = [ 3.0; 4.0; 5.0 ]);
  check_int "overflow is counted" 2 dropped;
  check "overflow is attributed per kind" true
    (dropped_by_kind = [ ("crash", 2) ])

let test_event_json () =
  let b = { Event.n = 3; prio = 1; pid = 2 } in
  let j =
    Event.to_json (ev ~time:12.5 ~node:1 (Event.Decided { b; decided_idx = 7 }))
  in
  check "decide json" true
    (j = {|{"t":12.500,"node":1,"kind":"decide","ballot":{"n":3,"prio":1,"pid":2},"decided_idx":7}|});
  let j =
    Event.to_json
      (ev
         (Event.Msg_drop
            { src = 0; dst = 1; reason = "link-down"; session = 4; send_id = 9 }))
  in
  check "drop json has reason, session and send_id" true
    (j
    = {|{"t":1.000,"node":0,"kind":"drop","src":0,"dst":1,"reason":"link-down","session":4,"send_id":9}|}
    );
  (* Strings are escaped defensively. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let j =
    Event.to_json (ev (Event.Reconfig { config_id = 1; milestone = {|a"b|} }))
  in
  check "escaped quote" true (contains j {|a\"b|})

(* ---------------- histogram ---------------- *)

let test_histogram_bucketing () =
  let h = Metric.Histogram.create () in
  check "empty mean is nan" true (Float.is_nan (Metric.Histogram.mean h));
  check "empty percentile is nan" true
    (Float.is_nan (Metric.Histogram.percentile h ~p:50.0));
  (* Base-2 log buckets: bucket 0 = [0,1), then [1,2), [2,4), [4,8)... *)
  List.iter (Metric.Histogram.observe h) [ 0.0; 0.5; 1.0; 1.5; 3.0; 6.0; 6.0 ];
  check_int "count" 7 (Metric.Histogram.count h);
  checkf "sum" 18.0 (Metric.Histogram.sum h);
  check "buckets are (upper-bound, count) ascending" true
    (Metric.Histogram.buckets h = [ (1.0, 2); (2.0, 2); (4.0, 1); (8.0, 2) ]);
  checkf "exact mean" (18.0 /. 7.0) (Metric.Histogram.mean h);
  checkf "exact min" 0.0 (Metric.Histogram.min_value h);
  checkf "exact max" 6.0 (Metric.Histogram.max_value h);
  (* Negative samples clamp to 0 (bucket 0). *)
  let h2 = Metric.Histogram.create () in
  Metric.Histogram.observe h2 (-5.0);
  checkf "negative clamped" 0.0 (Metric.Histogram.max_value h2);
  check "clamped into bucket 0" true
    (Metric.Histogram.buckets h2 = [ (1.0, 1) ]);
  (* Percentiles interpolate within a bucket and are monotone. *)
  let h3 = Metric.Histogram.create () in
  for _ = 1 to 100 do
    Metric.Histogram.observe h3 5.0
  done;
  let p50 = Metric.Histogram.percentile h3 ~p:50.0 in
  check "p50 inside [4,8) bucket clamped to [5,5]" true (p50 = 5.0);
  List.iter (fun x -> Metric.Histogram.observe h3 x) [ 100.0; 200.0 ];
  let p50 = Metric.Histogram.percentile h3 ~p:50.0
  and p99 = Metric.Histogram.percentile h3 ~p:99.0 in
  check "percentile monotone" true (p50 <= p99);
  check "p99 above the bulk" true (p99 > 5.0)

let test_histogram_stddev () =
  let h = Metric.Histogram.create () in
  check "stddev of empty" true (Metric.Histogram.stddev h = 0.0);
  Metric.Histogram.observe h 4.0;
  check "stddev of one" true (Metric.Histogram.stddev h = 0.0);
  List.iter (Metric.Histogram.observe h) [ 2.0; 6.0 ];
  (* Samples 4, 2, 6: mean 4, sample variance ((0+4+4)/2) = 4. *)
  checkf "sample stddev" 2.0 (Metric.Histogram.stddev h)

let test_registry () =
  let r = Metric.Registry.create () in
  let c = Metric.Registry.counter r "decides" in
  Metric.Counter.incr c;
  Metric.Counter.add c 2;
  check_int "same name, same counter" 3
    (Metric.Counter.value (Metric.Registry.counter r "decides"));
  Metric.Gauge.set (Metric.Registry.gauge r "leader") 4.0;
  Metric.Histogram.observe (Metric.Registry.histogram r "gap_ms") 3.0;
  check_int "one line per metric" 3 (List.length (Metric.Registry.to_lines r));
  Metric.Registry.clear r;
  check_int "clear resets" 0
    (Metric.Counter.value (Metric.Registry.counter r "decides"))

let test_event_json_roundtrip () =
  let b = { Event.n = 2; prio = 1; pid = 0 } in
  let samples =
    [
      ev (Event.Ballot_increment b);
      ev (Event.Leader_elected b);
      ev (Event.Leader_changed b);
      ev (Event.Prepare_round { b; log_idx = 3; decided_idx = 2 });
      ev (Event.Promise_sent { b; log_idx = 3; decided_idx = 2 });
      ev (Event.Accept_sent { b; start_idx = 1; count = 4 });
      ev (Event.Accepted_idx { b; log_idx = 5 });
      ev (Event.Decided { b; decided_idx = 5 });
      ev (Event.Proposed { log_idx = 7; cmd_id = 42 });
      ev
        (Event.Batch_flush
           { entries = 3; followers = 2; cap = 64; trigger = "size" });
      ev (Event.Cap_change { cap_from = 64; cap_to = 128 });
      ev (Event.Session_drop { peer = 1; session = 2 });
      ev (Event.Session_up { peer = 1; session = 3 });
      ev (Event.Link_cut { a = 0; b = 1 });
      ev (Event.Link_heal { a = 0; b = 1 });
      ev Event.Crashed;
      ev Event.Recovered;
      ev (Event.Reconfig { config_id = 1; milestone = "migration-done" });
      ev (Event.Msg_send { dst = 1; size = 100; send_id = 7; lc = 3 });
      ev (Event.Msg_deliver { src = 0; size = 100; send_id = 7; lc = 4 });
      ev
        (Event.Msg_drop
           { src = 0; dst = 1; reason = "link-down"; session = 2; send_id = 8 });
      ev (Event.Chaos_fault { step = 2; fault = "crash(1)" });
      ev (Event.Chaos_invoke { client = 0; op_id = 5; op = "put k 1" });
      ev (Event.Chaos_response { client = 0; op_id = 5; result = "ok" });
    ]
  in
  List.iter
    (fun e ->
      match Event.of_json (Event.to_json e) with
      | Ok e' -> check (Event.kind_name e.Event.kind) true (e = e')
      | Error msg ->
          Alcotest.failf "of_json failed for %s: %s"
            (Event.kind_name e.Event.kind)
            msg)
    samples;
  check "malformed json rejected" true (Result.is_error (Event.of_json "{"));
  check "unknown kind rejected" true
    (Result.is_error (Event.of_json {|{"t":1.0,"node":0,"kind":"nope"}|}))

(* ---------------- causal pairing ---------------- *)

let test_causal_pair () =
  let tr =
    [
      ev ~time:1.0 ~node:0
        (Event.Msg_send { dst = 1; size = 10; send_id = 0; lc = 1 });
      ev ~time:1.5 ~node:1
        (Event.Msg_deliver { src = 0; size = 10; send_id = 0; lc = 2 });
      (* Sent but never delivered. *)
      ev ~time:2.0 ~node:0
        (Event.Msg_send { dst = 1; size = 5; send_id = 1; lc = 3 });
      (* Delivered without a recorded send (ring overflow evidence). *)
      ev ~time:3.0 ~node:1
        (Event.Msg_deliver { src = 0; size = 9; send_id = 99; lc = 9 });
    ]
  in
  let edges, stats = Causal.pair tr in
  check_int "one matched edge" 1 (List.length edges);
  let e = List.hd edges in
  check "edge endpoints" true
    (e.Causal.src = 0 && e.Causal.dst = 1 && e.Causal.send_id = 0);
  check "edge times" true
    (e.Causal.sent_at = 1.0 && e.Causal.delivered_at = 1.5);
  check_int "unmatched send counted" 1 stats.Causal.unmatched_sends;
  check_int "orphan deliver counted" 1 stats.Causal.orphan_delivers;
  check "clocks consistent" true (Causal.lamport_consistent tr = Ok ())

let test_lamport_violation () =
  let tr =
    [
      ev ~time:1.0 ~node:0
        (Event.Msg_send { dst = 1; size = 10; send_id = 0; lc = 5 });
      (* Delivery clock must exceed the send clock. *)
      ev ~time:1.5 ~node:1
        (Event.Msg_deliver { src = 0; size = 10; send_id = 0; lc = 5 });
    ]
  in
  check "non-increasing delivery clock detected" true
    (Result.is_error (Causal.lamport_consistent tr));
  let tr =
    [
      ev ~time:1.0 ~node:0
        (Event.Msg_send { dst = 1; size = 10; send_id = 0; lc = 5 });
      (* A node's own message clocks must strictly increase. *)
      ev ~time:2.0 ~node:0
        (Event.Msg_send { dst = 1; size = 10; send_id = 1; lc = 5 });
    ]
  in
  check "stuck sender clock detected" true
    (Result.is_error (Causal.lamport_consistent tr))

let test_critical_path () =
  let arr =
    [|
      ev ~time:1.0 ~node:0 (Event.Proposed { log_idx = 0; cmd_id = 0 });
      ev ~time:2.0 ~node:0
        (Event.Msg_send { dst = 1; size = 10; send_id = 0; lc = 1 });
      ev ~time:2.5 ~node:1
        (Event.Msg_deliver { src = 0; size = 10; send_id = 0; lc = 2 });
      ev ~time:3.0 ~node:1 (Event.Accepted_idx { b = b1; log_idx = 1 });
    |]
  in
  let stop (e : Event.t) =
    match e.Event.kind with
    | Event.Proposed _ -> true
    | _ -> false
  in
  (* Walk back from the follower ack: ack -> its delivery -> the matching
     send on the other node -> the leader's previous event (the stop). *)
  check "hops cross the network edge" true
    (Causal.critical_path arr ~target:3 ~stop = [ 0; 1; 2; 3 ]);
  (* max_len bounds the number of hops, so at most max_len + 1 indices. *)
  check "bounded walk" true
    (Causal.critical_path ~max_len:1 arr ~target:3 ~stop = [ 2; 3 ])

(* ---------------- span assembly ---------------- *)

let test_span_assembly () =
  let b = { Event.n = 1; prio = 0; pid = 2 } in
  let tr =
    [
      ev ~time:1.0 ~node:2 (Event.Proposed { log_idx = 0; cmd_id = 10 });
      ev ~time:2.0 ~node:2 (Event.Accept_sent { b; start_idx = 0; count = 1 });
      ev ~time:3.0 ~node:0 (Event.Accepted_idx { b; log_idx = 1 });
      ev ~time:4.0 ~node:2 (Event.Decided { b; decided_idx = 1 });
    ]
  in
  let spans = Span.assemble ~n:3 tr in
  check_int "one span" 1 (List.length spans);
  let s = List.hd spans in
  check_int "log idx" 0 s.Span.log_idx;
  check_int "cmd id" 10 s.Span.cmd_id;
  check_int "leader is the proposing node" 2 s.Span.leader;
  check "proposed at" true (s.Span.proposed_at = 1.0);
  check "first accept" true (s.Span.first_accept_at = Some 2.0);
  (* n=3: quorum 2, so one non-leader ack completes the quorum. *)
  check "quorum ack" true (s.Span.quorum_ack_at = Some 3.0);
  check "decided" true (s.Span.decided_at = Some 4.0);
  check "total" true (Span.total s = Some 3.0);
  check "queueing" true (Span.queueing s = Some 1.0);
  check "replication" true (Span.replication s = Some 1.0);
  check "commit" true (Span.commit s = Some 1.0)

let test_span_undecided_and_reproposal () =
  let tr =
    [
      ev ~time:1.0 ~node:2 (Event.Proposed { log_idx = 0; cmd_id = 1 });
      (* Leader change: the same index is re-proposed by another node. *)
      ev ~time:2.0 ~node:1 (Event.Proposed { log_idx = 0; cmd_id = 2 });
    ]
  in
  let spans = Span.assemble ~n:3 tr in
  check_int "re-proposal replaces, not duplicates" 1 (List.length spans);
  let s = List.hd spans in
  check_int "latest proposer wins" 1 s.Span.leader;
  check_int "latest command wins" 2 s.Span.cmd_id;
  check "never decided" true (s.Span.decided_at = None);
  check "no total without decide" true (Span.total s = None)

let test_span_invoke_applied () =
  let b = { Event.n = 1; prio = 0; pid = 0 } in
  let tr =
    [
      ev ~time:0.5 ~node:0
        (Event.Chaos_invoke { client = 1; op_id = 10; op = "put k 1" });
      ev ~time:1.0 ~node:0 (Event.Proposed { log_idx = 0; cmd_id = 10 });
      ev ~time:2.0 ~node:0 (Event.Accept_sent { b; start_idx = 0; count = 1 });
      ev ~time:3.0 ~node:1 (Event.Accepted_idx { b; log_idx = 1 });
      ev ~time:4.0 ~node:0 (Event.Decided { b; decided_idx = 1 });
      ev ~time:5.0 ~node:0
        (Event.Chaos_response { client = 1; op_id = 10; result = "ok" });
    ]
  in
  let s = List.hd (Span.assemble ~n:3 tr) in
  check "invoke matched by cmd id" true (s.Span.invoke_at = Some 0.5);
  check "applied matched by cmd id" true (s.Span.applied_at = Some 5.0)

(* ---------------- health detectors ---------------- *)

let hcfg =
  {
    Health.n = 3;
    stall_ms = 100.0;
    churn_window_ms = 1000.0;
    churn_threshold = 2;
    suspect_after = 2;
  }

let db idx = Event.Decided { b = b1; decided_idx = idx }

let has_alert h ~edge ~substr =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.exists
    (fun (a : Health.alert) -> a.edge = edge && contains a.what substr)
    (Health.alerts h)

let test_health_stall_edges () =
  let h =
    Health.run hcfg
      [
        ev ~time:0.0 ~node:0 (db 1);
        (* Quiet period beyond stall_ms: any event drives the watchdog. *)
        ev ~time:150.0 ~node:0 (Event.Session_up { peer = 1; session = 1 });
        ev ~time:160.0 ~node:0 (db 2);
      ]
  in
  check "stall triggered" true (has_alert h ~edge:Health.Trigger ~substr:"stall");
  check "stall cleared by the next decide" true
    (has_alert h ~edge:Health.Clear ~substr:"stall");
  (* No trigger when decides keep flowing. *)
  let h =
    Health.run hcfg [ ev ~time:0.0 ~node:0 (db 1); ev ~time:50.0 ~node:0 (db 2) ]
  in
  check "no stall under steady decides" false
    (has_alert h ~edge:Health.Trigger ~substr:"stall")

let test_health_churn_edges () =
  let h =
    Health.run hcfg
      [
        ev ~time:10.0 ~node:0 (Event.Leader_changed b1);
        ev ~time:20.0 ~node:0 (Event.Leader_changed b1);
        (* Past the window the meter empties and the alert clears. *)
        ev ~time:2000.0 ~node:0 (db 1);
      ]
  in
  check "churn triggered at the threshold" true
    (has_alert h ~edge:Health.Trigger ~substr:"churn");
  check "churn cleared once the window drains" true
    (has_alert h ~edge:Health.Clear ~substr:"churn");
  let h = Health.run hcfg [ ev ~time:10.0 ~node:0 (Event.Leader_changed b1) ] in
  check "single change below threshold" false
    (has_alert h ~edge:Health.Trigger ~substr:"churn")

let test_health_suspect_edges () =
  let drop =
    Event.Msg_drop
      { src = 0; dst = 1; reason = "link-down"; session = 1; send_id = 1 }
  in
  let h =
    Health.run hcfg [ ev ~time:1.0 ~node:0 drop; ev ~time:2.0 ~node:0 drop ]
  in
  check "suspect after consecutive drops" true
    (has_alert h ~edge:Health.Trigger ~substr:"suspect 0->1");
  check "pair listed while suspected" true (Health.suspects h = [ (0, 1) ]);
  let h =
    Health.run hcfg
      [
        ev ~time:1.0 ~node:0 drop;
        ev ~time:2.0 ~node:0 drop;
        ev ~time:3.0 ~node:1
          (Event.Msg_deliver { src = 0; size = 10; send_id = 2; lc = 1 });
      ]
  in
  check "delivery clears the suspicion" true
    (has_alert h ~edge:Health.Clear ~substr:"suspect 0->1");
  check "no pairs after clear" true (Health.suspects h = []);
  (* A single drop between deliveries never reaches the threshold. *)
  let h =
    Health.run hcfg
      [
        ev ~time:1.0 ~node:0 drop;
        ev ~time:2.0 ~node:1
          (Event.Msg_deliver { src = 0; size = 10; send_id = 2; lc = 1 });
        ev ~time:3.0 ~node:0 drop;
      ]
  in
  check "interleaved drops stay below threshold" false
    (has_alert h ~edge:Health.Trigger ~substr:"suspect")

let test_health_recovery_episode () =
  let h =
    Health.run hcfg
      [
        ev ~time:0.0 ~node:0 (db 1);
        ev ~time:10.0 ~node:1 Event.Crashed;
        (* Faults in a burst coalesce into one episode. *)
        ev ~time:12.0 ~node:0 (Event.Link_cut { a = 0; b = 1 });
        ev ~time:20.0 ~node:2 (Event.Ballot_increment b1);
        ev ~time:50.0 ~node:2 (db 2);
      ]
  in
  (match Health.recoveries h with
  | [ r ] ->
      check "fault time" true (r.Health.fault_at = 10.0);
      check_int "burst coalesced" 2 r.Health.faults;
      check "detect latency" true (Health.detect_latency r = Some 10.0);
      check "recovery latency" true (Health.recovery_latency r = Some 40.0)
  | rs -> Alcotest.failf "expected one closed episode, got %d" (List.length rs));
  (* A trace ending mid-episode reports it open (no decide_at). *)
  let h =
    Health.run hcfg
      [ ev ~time:0.0 ~node:0 (db 1); ev ~time:10.0 ~node:1 Event.Crashed ]
  in
  (match Health.recoveries h with
  | [ r ] -> check "open episode has no decide" true (r.Health.decide_at = None)
  | rs -> Alcotest.failf "expected one open episode, got %d" (List.length rs))

(* ---------------- invariants ---------------- *)

let legit_trace =
  [
    ev ~time:1.0 ~node:1 (Event.Ballot_increment b1);
    ev ~time:2.0 ~node:1 (Event.Leader_elected b1);
    ev ~time:3.0 ~node:1
      (Event.Prepare_round { b = b1; log_idx = 0; decided_idx = 0 });
    ev ~time:4.0 ~node:1 (Event.Accept_sent { b = b1; start_idx = 0; count = 3 });
    ev ~time:5.0 ~node:2 (Event.Accepted_idx { b = b1; log_idx = 3 });
    ev ~time:6.0 ~node:1 (Event.Decided { b = b1; decided_idx = 3 });
    ev ~time:7.0 ~node:2 (Event.Decided { b = b1; decided_idx = 3 });
  ]

let test_invariants_pass () =
  check "single leader ok" true
    (Invariant.single_leader_per_ballot legit_trace = Ok ());
  check "monotone ok" true
    (Invariant.decided_prefix_monotonic legit_trace = Ok ());
  check "check_all all green" true
    (List.for_all (fun (_, r) -> r = Ok ()) (Invariant.check_all legit_trace))

(* The injected split-brain: node 2 drives Accepts under node 1's ballot. *)
let test_two_leaders_one_ballot () =
  let bad =
    legit_trace
    @ [ ev ~time:8.0 ~node:2
          (Event.Accept_sent { b = b1; start_idx = 3; count = 1 });
      ]
  in
  match Invariant.single_leader_per_ballot bad with
  | Ok () -> Alcotest.fail "two leaders under one ballot not detected"
  | Error v ->
      check "violation at the offending event" true (v.Invariant.at = 8.0);
      check_int "offending node" 2 v.Invariant.node;
      check "check_all reports it too" true
        (List.exists
           (fun (name, r) ->
             name = "single-leader-per-ballot" && r <> Ok ())
           (Invariant.check_all bad))

(* Compaction events interleaved with decides must not trip the monotone
   invariant: a snapshot install jumps a lagging node's decided index
   forward (here node 2 installs at 5 after deciding 3), never back. *)
let test_monotone_across_install () =
  let tr =
    legit_trace
    @ [
        ev ~time:8.0 ~node:1 (Event.Snapshot_taken { idx = 5; bytes = 40 });
        ev ~time:8.1 ~node:1 (Event.Log_trimmed { upto = 5; entries = 5 });
        ev ~time:8.2 ~node:1 (Event.Decided { b = b1; decided_idx = 6 });
        ev ~time:8.5 ~node:2 (Event.Snapshot_installed { idx = 5; bytes = 40 });
        ev ~time:8.6 ~node:2 (Event.Log_trimmed { upto = 5; entries = 2 });
        ev ~time:9.0 ~node:2 (Event.Decided { b = b1; decided_idx = 6 });
      ]
  in
  check "monotone across install" true
    (Invariant.decided_prefix_monotonic tr = Ok ());
  check "check_all all green" true
    (List.for_all (fun (_, r) -> r = Ok ()) (Invariant.check_all tr))

let test_decided_regression_detected () =
  let bad =
    legit_trace @ [ ev ~time:9.0 ~node:2 (Event.Decided { b = b1; decided_idx = 1 }) ]
  in
  match Invariant.decided_prefix_monotonic bad with
  | Ok () -> Alcotest.fail "decided-index regression not detected"
  | Error v -> check_int "regressing node" 2 v.Invariant.node

(* ------------------------- profiler ------------------------- *)

module Profile = Obs.Profile

let test_profile_scoping () =
  let clock = ref 0.0 in
  Profile.set_clock (fun () -> !clock);
  let (), root =
    Profile.with_profile (fun () ->
        for _ = 1 to 3 do
          Profile.wrap "outer" (fun () ->
              clock := !clock +. 10.0;
              Profile.wrap "inner" (fun () -> ()))
        done;
        Profile.wrap "other" (fun () -> ()))
  in
  Profile.set_clock (fun () -> 0.0);
  let row label =
    List.find (fun (r : Profile.row) -> r.Profile.r_label = label)
      (Profile.flat root)
  in
  Alcotest.(check int) "outer calls" 3 (row "outer").Profile.r_calls;
  Alcotest.(check int) "inner calls" 3 (row "inner").Profile.r_calls;
  Alcotest.(check int) "sibling calls" 1 (row "other").Profile.r_calls;
  (* The clock advanced inside "outer" but not inside "inner": sim time is
     attributed to the frame that was open while it moved. *)
  Alcotest.(check (float 1e-9)) "outer sim-ms" 30.0 (row "outer").Profile.r_sim_ms;
  Alcotest.(check (float 1e-9)) "inner sim-ms" 0.0 (row "inner").Profile.r_sim_ms;
  check "guard off outside a capture" true (not (Profile.on ()))

let test_profile_exception_safety () =
  let (), root =
    Profile.with_profile (fun () ->
        (try Profile.wrap "boom" (fun () -> failwith "x") with Failure _ -> ());
        Profile.wrap "after" (fun () -> ()))
  in
  let labels =
    List.map (fun (r : Profile.row) -> r.Profile.r_label) (Profile.flat root)
  in
  check "failed frame still recorded" true (List.mem "boom" labels);
  check "stack unwound: sibling not nested under the failed frame" true
    (List.mem "after" labels)

let test_profile_json_deterministic () =
  let go () =
    let (), root =
      Profile.with_profile (fun () ->
          Profile.wrap "a" (fun () -> Profile.wrap "b" (fun () -> ())))
    in
    Bench_report.Json.to_string (Profile.to_json root)
  in
  check "double capture renders identically" true (String.equal (go ()) (go ()))

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "invalid capacity" `Quick
            test_ring_invalid_capacity;
        ] );
      ( "trace",
        [
          Alcotest.test_case "sink fan-out" `Quick test_sink_fanout;
          Alcotest.test_case "with_recording" `Quick test_with_recording;
          Alcotest.test_case "event json" `Quick test_event_json;
        ] );
      ( "metric",
        [
          Alcotest.test_case "histogram bucketing" `Quick
            test_histogram_bucketing;
          Alcotest.test_case "histogram stddev" `Quick test_histogram_stddev;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "clean trace passes" `Quick test_invariants_pass;
          Alcotest.test_case "two leaders one ballot" `Quick
            test_two_leaders_one_ballot;
          Alcotest.test_case "decided regression" `Quick
            test_decided_regression_detected;
          Alcotest.test_case "monotone across snapshot install" `Quick
            test_monotone_across_install;
        ] );
      ( "causal",
        [
          Alcotest.test_case "json round-trip all kinds" `Quick
            test_event_json_roundtrip;
          Alcotest.test_case "send/deliver pairing" `Quick test_causal_pair;
          Alcotest.test_case "lamport violations" `Quick test_lamport_violation;
          Alcotest.test_case "critical path" `Quick test_critical_path;
        ] );
      ( "span",
        [
          Alcotest.test_case "lifecycle milestones" `Quick test_span_assembly;
          Alcotest.test_case "undecided and re-proposal" `Quick
            test_span_undecided_and_reproposal;
          Alcotest.test_case "invoke/applied matching" `Quick
            test_span_invoke_applied;
        ] );
      ( "health",
        [
          Alcotest.test_case "stall trigger and clear" `Quick
            test_health_stall_edges;
          Alcotest.test_case "churn trigger and clear" `Quick
            test_health_churn_edges;
          Alcotest.test_case "suspect trigger and clear" `Quick
            test_health_suspect_edges;
          Alcotest.test_case "recovery episodes" `Quick
            test_health_recovery_episode;
        ] );
      ( "profile",
        [
          Alcotest.test_case "scoping and sim-time attribution" `Quick
            test_profile_scoping;
          Alcotest.test_case "exception safety" `Quick
            test_profile_exception_safety;
          Alcotest.test_case "json determinism" `Quick
            test_profile_json_deterministic;
        ] );
    ]
