(* Batch-flush policy tests at the Sequence Paxos handler level: backlog
   pipelining across flushes, the adaptive size trigger and AIMD cap, ack
   coalescing, session resets racing a half-flushed batch, and the
   degeneracy property (adaptive with deadline_ticks = 1, min = max and
   ack_every = 1 produces the exact message trace of the fixed policy).
   The transport is the same hand-driven queue as test_sequence_paxos, plus
   a trace of every send so message counts and batch sizes can be
   asserted. *)

module Sp = Omnipaxos.Sequence_paxos
module Entry = Omnipaxos.Entry
module Ballot = Omnipaxos.Ballot
module B = Omnipaxos.Batching

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cmd i = Entry.Cmd (Replog.Command.noop i)
let ballot n pid = { Ballot.n; priority = 0; pid }

type harness = {
  nodes : Sp.t array;
  queues : (int * int * Sp.msg) Queue.t;
  blocked : (int * int, unit) Hashtbl.t;
  trace : (int * int * Sp.msg) list ref;  (* every send, newest first *)
}

let make ?(n = 3) ~batching () =
  let queues = Queue.create () in
  let blocked = Hashtbl.create 4 in
  let trace = ref [] in
  let nodes =
    Array.init n (fun id ->
        let peers = List.filter (fun j -> j <> id) (List.init n Fun.id) in
        Sp.create ~id ~peers
          ~persistent:(Sp.fresh_persistent ())
          ~batching
          ~send:(fun ~dst m ->
            trace := (id, dst, m) :: !trace;
            Queue.add (id, dst, m) queues)
          ())
  in
  { nodes; queues; blocked; trace }

let deliver h =
  let made_progress = ref true in
  while !made_progress do
    made_progress := false;
    let pending = Queue.length h.queues in
    for _ = 1 to pending do
      let src, dst, m = Queue.pop h.queues in
      (* A blocked link LOSES its messages (a dropped session, not a slow
         one) — resynchronisation must come from the session-reset path. *)
      if not (Hashtbl.mem h.blocked (src, dst)) then begin
        made_progress := true;
        Sp.handle h.nodes.(dst) ~src m
      end
    done
  done

let flush_all h =
  Array.iter Sp.flush h.nodes;
  deliver h

let elect h =
  Sp.handle_leader h.nodes.(0) (ballot 1 0);
  deliver h

let ids_of node =
  List.filter_map
    (function
      | Entry.Cmd c -> Some c.Replog.Command.id
      | Entry.Stop_sign _ -> None)
    (Sp.read_decided node ~from:0)

let accepts_in trace =
  List.filter_map
    (function
      | _, _, Sp.Accept { entries; _ } -> Some (List.length entries)
      | _ -> None)
    trace

let accepted_count trace =
  List.length
    (List.filter (function _, _, Sp.Accepted _ -> true | _ -> false) trace)

(* ---------------- backlog pipelining ---------------- *)

(* A backlog larger than one batch must replicate as a pipeline of capped
   batches across successive flushes — no entry skipped, none oversized. *)
let test_backlog_pipelines_across_flushes () =
  let batching = { B.fixed with B.max_batch = 3; min_batch = 3 } in
  let h = make ~batching () in
  elect h;
  for i = 0 to 9 do
    ignore (Sp.propose h.nodes.(0) (cmd i))
  done;
  h.trace := [];
  let flushes = ref 0 in
  while Sp.decided_idx h.nodes.(2) < 10 && !flushes < 20 do
    incr flushes;
    flush_all h
  done;
  check "every node decided the full backlog" true
    (Array.for_all (fun nd -> ids_of nd = List.init 10 Fun.id) h.nodes);
  check "no Accept exceeded the cap" true
    (List.for_all (fun len -> len <= 3) (accepts_in !(h.trace)));
  check "the backlog needed several batches" true
    (List.length (accepts_in !(h.trace)) >= 8)
(* 10 entries / cap 3 = 4 batches per follower x 2 followers *)

(* ---------------- adaptive size trigger + AIMD ---------------- *)

(* Under the adaptive policy a proposal burst reaching the current cap is
   flushed (and can decide) without any tick; a full flush doubles the
   cap. The deadline is set absurdly high so a tick flush cannot help. *)
let test_eager_flush_without_tick () =
  let batching =
    {
      B.adaptive = true;
      max_batch = 4096;
      min_batch = 2;
      deadline_ticks = 1000;
      ack_every = 1;
    }
  in
  let h = make ~batching () in
  elect h;
  check_int "cap starts at min_batch" 2 (Sp.batch_cap h.nodes.(0));
  ignore (Sp.propose h.nodes.(0) (cmd 0));
  ignore (Sp.propose h.nodes.(0) (cmd 1));
  (* Size trigger fired inside [propose]: no flush call, yet the batch is
     already on the wire. *)
  deliver h;
  check_int "burst decided with zero ticks" 2 (Sp.decided_idx h.nodes.(1));
  check "full flush doubled the cap" true (Sp.batch_cap h.nodes.(0) > 2)

(* Once the backlog drains, tick flushes halve the cap back down to
   min_batch, so a subsequent light workload ships small frames again. *)
let test_cap_decays_when_drained () =
  let batching =
    {
      B.adaptive = true;
      max_batch = 4096;
      min_batch = 2;
      deadline_ticks = 1;
      ack_every = 1;
    }
  in
  let h = make ~batching () in
  elect h;
  for i = 0 to 31 do
    ignore (Sp.propose h.nodes.(0) (cmd i))
  done;
  flush_all h;
  flush_all h;
  check "heavy burst grew the cap" true (Sp.batch_cap h.nodes.(0) > 2);
  for _ = 1 to 10 do
    flush_all h
  done;
  check_int "idle ticks decayed the cap to min_batch" 2
    (Sp.batch_cap h.nodes.(0))

(* Followers coalesce Accepted acks: one lone entry is appended silently
   and only acknowledged by the follower's next tick sweep. *)
let test_ack_coalescing_defers_to_tick () =
  let batching =
    {
      B.adaptive = true;
      max_batch = 4096;
      min_batch = 64;
      deadline_ticks = 1;
      ack_every = 3;
    }
  in
  let h = make ~batching () in
  elect h;
  ignore (Sp.propose h.nodes.(0) (cmd 0));
  Sp.flush h.nodes.(0);
  h.trace := [];
  deliver h;
  check_int "ack deferred (below ack_every)" 0 (accepted_count !(h.trace));
  check_int "so nothing decided yet" 0 (Sp.decided_idx h.nodes.(0));
  (* The follower tick sweeps the deferred ack out. *)
  Sp.flush h.nodes.(1);
  Sp.flush h.nodes.(2);
  deliver h;
  check "acks swept by the follower tick" true (accepted_count !(h.trace) >= 2);
  flush_all h;
  check_int "and the entry decides" 1 (Sp.decided_idx h.nodes.(1))

(* ---------------- session reset mid-batch ---------------- *)

(* A link drops while a follower is mid-stream (it missed a batch in the
   middle of the backlog). The session reset must resynchronise the
   follower with no gap and no divergence. *)
let test_session_reset_mid_batch_resyncs () =
  let batching = { B.fixed with B.max_batch = 2; min_batch = 2 } in
  let h = make ~batching () in
  elect h;
  for i = 0 to 3 do
    ignore (Sp.propose h.nodes.(0) (cmd i))
  done;
  flush_all h;
  (* Follower 1 goes dark and misses the middle of the stream. *)
  Hashtbl.replace h.blocked (0, 1) ();
  Hashtbl.replace h.blocked (1, 0) ();
  for i = 4 to 7 do
    ignore (Sp.propose h.nodes.(0) (cmd i))
  done;
  (* Each flush ships one cap-sized batch; keep ticking until the majority
     (leader + follower 2) has decided the whole stream. *)
  let flushes = ref 0 in
  while Sp.decided_idx h.nodes.(0) < 8 && !flushes < 20 do
    incr flushes;
    flush_all h
  done;
  check_int "majority decided without node 1" 8 (Sp.decided_idx h.nodes.(0));
  check "node 1 is behind" true (Sp.log_length h.nodes.(1) < 8);
  (* The link comes back mid-batch: more proposals are in flight when the
     session reset fires on the leader side. *)
  for i = 8 to 9 do
    ignore (Sp.propose h.nodes.(0) (cmd i))
  done;
  Hashtbl.reset h.blocked;
  Sp.session_reset h.nodes.(0) ~peer:1;
  deliver h;
  let flushes = ref 0 in
  while Sp.decided_idx h.nodes.(1) < 10 && !flushes < 20 do
    incr flushes;
    flush_all h
  done;
  check "node 1 resynchronised without gaps" true
    (ids_of h.nodes.(1) = List.init 10 Fun.id);
  check "and matches the leader" true (ids_of h.nodes.(1) = ids_of h.nodes.(0))

(* ---------------- degeneracy ---------------- *)

(* With deadline_ticks = 1, min_batch = max_batch and ack_every = 1 the
   adaptive policy is the fixed policy: same workload, byte-identical
   message trace. *)
let degenerate_workload batching =
  let h = make ~batching () in
  elect h;
  let burst lo hi =
    for i = lo to hi do
      ignore (Sp.propose h.nodes.(0) (cmd i))
    done;
    flush_all h
  in
  burst 0 4;
  burst 5 5;
  flush_all h;
  (* idle tick *)
  burst 6 11;
  flush_all h;
  (List.rev !(h.trace), Array.map ids_of h.nodes)

let test_adaptive_degenerates_to_fixed () =
  let degenerate =
    {
      B.adaptive = true;
      max_batch = B.fixed.B.max_batch;
      min_batch = B.fixed.B.max_batch;
      deadline_ticks = 1;
      ack_every = 1;
    }
  in
  let trace_f, logs_f = degenerate_workload B.fixed in
  let trace_a, logs_a = degenerate_workload degenerate in
  check "identical message traces" true (trace_f = trace_a);
  check "identical decided logs" true (logs_f = logs_a);
  check_int "everything decided" 12 (List.length logs_f.(2))

let () =
  Alcotest.run "batching"
    [
      ( "pipelining",
        [
          Alcotest.test_case "backlog pipelines across flushes" `Quick
            test_backlog_pipelines_across_flushes;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "eager flush without tick" `Quick
            test_eager_flush_without_tick;
          Alcotest.test_case "cap decays when drained" `Quick
            test_cap_decays_when_drained;
          Alcotest.test_case "ack coalescing defers to tick" `Quick
            test_ack_coalescing_defers_to_tick;
        ] );
      ( "resync",
        [
          Alcotest.test_case "session reset mid-batch" `Quick
            test_session_reset_mid_batch_resyncs;
        ] );
      ( "degeneracy",
        [
          Alcotest.test_case "adaptive degenerates to fixed" `Quick
            test_adaptive_degenerates_to_fixed;
        ] );
    ]
