(* Property-based safety tests: for every protocol, the decided/committed
   logs of all servers must satisfy the Sequence Consensus properties under
   randomized partial-partition (and, for Omni-Paxos, crash/recovery)
   schedules:

   SC1 (validity)          — only proposed commands are decided;
   SC2 (uniform agreement) — decided logs are prefixes of one another;
   SC3 (integrity)         — a decided log is only ever extended (checked
                             via monotone decided counts and, stronger, via
                             no duplicated command ids).

   Each generated schedule is a list of fault opcodes applied every few
   hundred milliseconds while a client keeps proposing. *)

module Net = Simnet.Net

let ( => ) a b = (not a) || b

(* A fault opcode: which links to flip or which node to crash/recover is
   derived from one integer so shrinking stays meaningful. *)
type fault = Flip_link of int * int | Heal_all | Crash of int | Recover of int

(* The low 4 bits pick the kind with independent, documented probabilities:
   without crashes 12/16 link-flip and 4/16 heal; with crashes 8/16 flip,
   3/16 heal, 3/16 crash and 2/16 recover. The remaining bits pick the
   operands; the pair (a, b) is derived with [a <> b] by construction, so
   the flip/heal ratio is exactly the documented one (an earlier version
   mapped the a = b diagonal to [Heal_all], silently skewing it). *)
let decode_fault ~n ~crashes code =
  let code = abs code in
  let kind = code mod 16 in
  let rest = code / 16 in
  let pair () =
    let a = rest mod n in
    let b = rest / n mod (n - 1) in
    (a, if b >= a then b + 1 else b)
  in
  if crashes then
    if kind < 8 then
      let a, b = pair () in
      Flip_link (a, b)
    else if kind < 11 then Heal_all
    else if kind < 14 then Crash (rest mod n)
    else Recover (rest mod n)
  else if kind < 12 then
    let a, b = pair () in
    Flip_link (a, b)
  else Heal_all

let rec is_prefix equal a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys -> equal x y && is_prefix equal xs ys

let prefix_consistent logs =
  List.for_all
    (fun a ->
      List.for_all (fun b -> is_prefix ( = ) a b || is_prefix ( = ) b a) logs)
    logs

let no_duplicates ids =
  let tbl = Hashtbl.create 64 in
  List.for_all
    (fun id ->
      if Hashtbl.mem tbl id then false
      else begin
        Hashtbl.add tbl id ();
        true
      end)
    ids

let subset_of ids ~proposed = List.for_all (fun id -> id < proposed) ids

(* Generic runner for protocols behind the Cluster interface. Crash opcodes
   use the driver's fail-recovery hooks ([C.crash]/[C.recover]), so every
   protocol — not just Omni-Paxos — is exercised under crash/recovery
   schedules; a majority is kept alive so the run terminates with
   progress. *)
module Generic (P : Rsm.Protocol.PROTOCOL) = struct
  module C = Rsm.Cluster.Make (P)

  let run ~seed faults =
    let n = 5 in
    let cfg =
      { Rsm.Cluster.default_config with n; seed; election_timeout_ms = 50.0 }
    in
    let c = C.create cfg in
    let proposed = ref 0 in
    let propose_some () =
      match C.leader c with
      | None -> ()
      | Some l ->
          for _ = 1 to 20 do
            if P.propose (C.node c l) (Replog.Command.noop !proposed) then
              incr proposed
          done
    in
    C.run_ms c 500.0;
    let crashed = Hashtbl.create 4 in
    List.iter
      (fun code ->
        propose_some ();
        (match decode_fault ~n ~crashes:true code with
        | Flip_link (a, b) ->
            Net.set_link (C.net c) a b (not (Net.link_up (C.net c) a b))
        | Heal_all -> Net.heal_all (C.net c)
        | Crash i ->
            if (not (Hashtbl.mem crashed i)) && Hashtbl.length crashed < n / 2
            then begin
              Hashtbl.add crashed i ();
              C.crash c i
            end
        | Recover i ->
            if Hashtbl.mem crashed i then begin
              Hashtbl.remove crashed i;
              C.recover c i
            end);
        C.run_ms c 300.0)
      faults;
    Net.heal_all (C.net c);
    Hashtbl.iter (fun i () -> C.recover c i) crashed;
    C.run_ms c 3000.0;
    propose_some ();
    C.run_ms c 2000.0;
    let logs =
      List.map (fun i -> P.decided_ids (C.node c i) ~from:0) (List.init n Fun.id)
    in
    prefix_consistent logs
    && List.for_all no_duplicates logs
    && List.for_all (subset_of ~proposed:!proposed) logs
    (* Liveness after healing: someone decided the final burst. *)
    && List.exists (fun l -> List.length l > 0) logs
end

module Gen_omni = Generic (Rsm.Omni_adapter)
module Gen_raft = Generic (Rsm.Raft_adapter.Plain)
module Gen_raft_pvcq = Generic (Rsm.Raft_adapter.Pv_cq)
module Gen_mp = Generic (Rsm.Multipaxos_adapter)
module Gen_vr = Generic (Rsm.Vr_adapter)

let schedule_arb = QCheck.(list_of_size (Gen.int_bound 12) int)

let prop_generic name run =
  QCheck.Test.make ~name ~count:25
    QCheck.(pair small_int schedule_arb)
    (fun (seed, faults) -> run ~seed:(seed + 1) faults)

(* Omni-Paxos with crashes and recoveries on top of partitions, using the
   replica-level harness that preserves stable storage across crashes. *)
let omni_crash_recovery_run ~seed faults =
  let n = 5 in
  let c = Helpers.make_cluster ~n ~seed () in
  let proposed = ref 0 in
  let propose_some () =
    ignore (Helpers.propose_noops c ~first_id:!proposed ~count:20);
    (* propose_noops proposes exactly count when a leader exists. *)
    match Helpers.current_leader c with
    | Some _ -> proposed := !proposed + 20
    | None -> ()
  in
  Helpers.run_ms c 500.0;
  let crashed = Hashtbl.create 4 in
  List.iter
    (fun code ->
      propose_some ();
      (match decode_fault ~n ~crashes:true code with
      | Flip_link (a, b) ->
          Net.set_link c.Helpers.net a b (not (Net.link_up c.Helpers.net a b))
      | Heal_all -> Net.heal_all c.Helpers.net
      | Crash i ->
          (* Keep a majority alive so the run terminates with progress. *)
          if (not (Hashtbl.mem crashed i)) && Hashtbl.length crashed < n / 2
          then begin
            Hashtbl.add crashed i ();
            Helpers.crash c i
          end
      | Recover i ->
          if Hashtbl.mem crashed i then begin
            Hashtbl.remove crashed i;
            Helpers.recover c i
          end);
      Helpers.run_ms c 300.0)
    faults;
  Net.heal_all c.Helpers.net;
  Hashtbl.iter (fun i () -> Helpers.recover c i) crashed;
  Helpers.run_ms c 3000.0;
  propose_some ();
  Helpers.run_ms c 2000.0;
  let entry_logs =
    List.map
      (fun i -> Omnipaxos.Replica.read_decided (Helpers.replica c i) ~from:0)
      (List.init n Fun.id)
  in
  let id_logs = List.map (fun i -> Helpers.decided_cmd_ids (Helpers.replica c i)) (List.init n Fun.id) in
  Helpers.check_prefix_consistency entry_logs
  && List.for_all no_duplicates id_logs
  && List.for_all (subset_of ~proposed:!proposed) id_logs
  && (!proposed > 0 => List.exists (fun l -> l <> []) id_logs)

let prop_omni_crash =
  QCheck.Test.make ~name:"omnipaxos SC1-SC3 under partitions and crashes"
    ~count:25
    QCheck.(pair small_int schedule_arb)
    (fun (seed, faults) -> omni_crash_recovery_run ~seed:(seed + 1) faults)

(* Ballot uniqueness/monotonicity (LE3) observed through the rounds of the
   decided leaders: the round of each later-decided entry can only grow.
   We approximate by checking the replica's current round never regresses
   across a randomized run. *)
let prop_round_monotone =
  QCheck.Test.make ~name:"sequence paxos rounds are monotone per server"
    ~count:25
    QCheck.(pair small_int schedule_arb)
    (fun (seed, faults) ->
      let n = 5 in
      let c = Helpers.make_cluster ~n ~seed:(seed + 1) () in
      let ok = ref true in
      let last =
        Array.make n Omnipaxos.Ballot.bottom
      in
      let observe () =
        for i = 0 to n - 1 do
          let r =
            Omnipaxos.Sequence_paxos.current_round
              (Omnipaxos.Replica.sequence_paxos (Helpers.replica c i))
          in
          if Omnipaxos.Ballot.compare r last.(i) < 0 then ok := false;
          last.(i) <- r
        done
      in
      Helpers.run_ms c 500.0;
      List.iter
        (fun code ->
          (match decode_fault ~n ~crashes:false code with
          | Flip_link (a, b) ->
              Net.set_link c.Helpers.net a b
                (not (Net.link_up c.Helpers.net a b))
          | Heal_all -> Net.heal_all c.Helpers.net
          | Crash _ | Recover _ -> ());
          Helpers.run_ms c 300.0;
          observe ())
        faults;
      !ok)

let () =
  Alcotest.run "properties"
    [
      ( "safety",
        [
          QCheck_alcotest.to_alcotest
            (prop_generic
               "omnipaxos SC1-SC3 under partitions and crashes (driver)"
               Gen_omni.run);
          QCheck_alcotest.to_alcotest
            (prop_generic "raft agreement under partitions and crashes"
               Gen_raft.run);
          QCheck_alcotest.to_alcotest
            (prop_generic "raft PV+CQ agreement under partitions and crashes"
               Gen_raft_pvcq.run);
          QCheck_alcotest.to_alcotest
            (prop_generic "multipaxos agreement under partitions and crashes"
               Gen_mp.run);
          QCheck_alcotest.to_alcotest
            (prop_generic "vr agreement under partitions and crashes"
               Gen_vr.run);
          QCheck_alcotest.to_alcotest prop_omni_crash;
          QCheck_alcotest.to_alcotest prop_round_monotone;
        ] );
    ]
