(* Compaction chaos smoke: one checked-in seed, an explicit fault schedule
   whose crash/recover episodes cross the snapshot/trim boundary, run with
   compaction enabled across all four clean protocols.

   Node 2 is crashed while the survivors keep deciding; with a small
   [snapshot_interval] the leader compacts past node 2's log before it
   recovers, so its catch-up must go through the snapshot-install path
   (Accept_sync snapshot / Install_snapshot / Snapshot) rather than entry
   replay. The two [Restart_after_trim] opcodes then bounce nodes that have
   already compacted, so their recovery replays a trimmed log on top of a
   durable snapshot. The golden asserts the checker verdict plus two
   booleans (did anything trim? did any snapshot install happen?) — no op
   counts, so timing-neutral protocol changes do not churn it. *)

let seed = 7

let schedule =
  Chaos.Nemesis.
    [
      Crash 2;
      Heal_all;
      Heal_all;
      Heal_all;
      Heal_all;
      Heal_all;
      Recover 2;
      Heal_all;
      Restart_after_trim 1;
      Heal_all;
      Restart_after_trim 0;
      Heal_all;
    ]

let () =
  let cfg =
    {
      Chaos.Campaign.default_config with
      Chaos.Campaign.compaction = Omnipaxos.Compaction.make ~retain:4 16;
    }
  in
  List.iter
    (fun (r : Chaos.Campaign.runner) ->
      if r.cr_name <> "faulty-raft" then begin
        let trims = ref 0 and installs = ref 0 in
        let sink =
          Obs.Trace.subscribe (fun ev ->
              match ev.Obs.Event.kind with
              | Obs.Event.Log_trimmed _ -> incr trims
              | Obs.Event.Snapshot_installed _ -> incr installs
              | _ [@lint.allow "D4"] -> ())
        in
        let ep = r.cr_replay cfg ~seed ~schedule in
        Obs.Trace.unsubscribe sink;
        let verdict =
          match ep.Chaos.Campaign.ep_check.Chaos.Checker.r_violation with
          | None -> "OK"
          | Some _ -> "VIOLATION"
        in
        let yn b = if b then "yes" else "no" in
        Printf.printf
          "%-12s applied %d/%d faults: %s (trimmed: %s, snapshot-installed: \
           %s)\n"
          r.cr_name ep.Chaos.Campaign.ep_applied (List.length schedule) verdict
          (yn (!trims > 0))
          (yn (!installs > 0))
      end)
    Chaos.Campaign.runners
