(* Unit tests for the measurement utilities: the decided-count series (the
   source of every down-time and throughput figure), the t-distribution
   statistics, and the metric registry's reset/iteration/exposition
   surface. *)

module Series = Rsm.Metrics.Series
module Stats = Rsm.Metrics.Stats
module M = Obs.Metric

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf msg a b = Alcotest.(check (float 1e-6)) msg a b

let series points =
  let s = Series.create () in
  List.iter (fun (time, count) -> Series.push s ~time ~count) points;
  s

let test_count_at () =
  let s = series [ (0.0, 0); (10.0, 5); (20.0, 9) ] in
  check_int "before first sample" 0 (Series.count_at s (-1.0));
  check_int "at a sample" 5 (Series.count_at s 10.0);
  check_int "between samples" 5 (Series.count_at s 15.0);
  check_int "after last" 9 (Series.count_at s 100.0)

let test_total_between () =
  let s = series [ (0.0, 0); (10.0, 5); (20.0, 9); (30.0, 9) ] in
  check_int "full range" 9 (Series.total_between s ~from:0.0 ~until:30.0);
  check_int "partial" 4 (Series.total_between s ~from:10.0 ~until:25.0);
  check_int "flat tail" 0 (Series.total_between s ~from:20.0 ~until:30.0)

let test_longest_gap () =
  (* Progress at 10 and 60; nothing in between: the gap is 50. *)
  let s =
    series [ (0.0, 0); (10.0, 5); (20.0, 5); (40.0, 5); (60.0, 8); (70.0, 9) ]
  in
  checkf "mid-run gap" 50.0 (Series.longest_gap s ~from:0.0 ~until:70.0);
  (* A series that stops progressing: the gap extends to the window end. *)
  let s2 = series [ (0.0, 0); (10.0, 5) ] in
  checkf "trailing gap" 90.0 (Series.longest_gap s2 ~from:0.0 ~until:100.0)

let test_edge_cases () =
  let empty = series [] in
  check_int "count_at on empty" 0 (Series.count_at empty 10.0);
  check_int "total_between on empty" 0
    (Series.total_between empty ~from:0.0 ~until:10.0);
  checkf "longest_gap on empty spans the window" 10.0
    (Series.longest_gap empty ~from:0.0 ~until:10.0);
  checkf "longest_gap with until = from" 0.0
    (Series.longest_gap empty ~from:5.0 ~until:5.0);
  checkf "longest_gap with from > until" 0.0
    (Series.longest_gap empty ~from:10.0 ~until:5.0);
  let s = series [ (0.0, 0); (10.0, 5); (20.0, 9) ] in
  check_int "total_between with from > until" 0
    (Series.total_between s ~from:20.0 ~until:10.0);
  (* Half-open window semantics: a sample exactly at [from] belongs to the
     preceding window, one at [until] to this one. *)
  check_int "sample at from excluded" 4
    (Series.total_between s ~from:10.0 ~until:20.0);
  check_int "sample at until included" 5
    (Series.total_between s ~from:0.0 ~until:10.0);
  check_int "adjacent windows don't double-count" 9
    (Series.total_between s ~from:0.0 ~until:10.0
    + Series.total_between s ~from:10.0 ~until:20.0);
  (* Progress exactly at the window boundaries bounds the gap. *)
  checkf "progress at both ends" 10.0
    (Series.longest_gap s ~from:10.0 ~until:20.0);
  check "windowed with until <= from is empty" true
    (Series.windowed s ~from:10.0 ~until:10.0 ~window:5.0 = [])

let test_windowed () =
  let s = series [ (0.0, 0); (5.0, 2); (15.0, 6); (25.0, 7) ] in
  let w = Series.windowed s ~from:0.0 ~until:30.0 ~window:10.0 in
  check "three windows" true (List.map snd w = [ 2; 4; 1 ])

let test_stats () =
  checkf "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  checkf "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  check "single sample has no CI" true (Stats.ci95 [ 42.0 ] = 0.0);
  (* df = 2 -> t = 4.303; ci = t * s / sqrt 3. *)
  let ci = Stats.ci95 [ 1.0; 2.0; 3.0 ] in
  checkf "t-based ci" (4.303 /. sqrt 3.0) ci;
  check "normal approximation beyond df 30" true
    (abs_float (Stats.t_value ~df:100 -. 1.96) < 1e-9)

let test_gauge_reset () =
  let g = M.Gauge.create () in
  M.Gauge.set g 7.5;
  M.Gauge.add g 2.5;
  checkf "value before reset" 10.0 (M.Gauge.value g);
  M.Gauge.reset g;
  checkf "reset zeroes" 0.0 (M.Gauge.value g)

let test_histogram_reset () =
  let h = M.Histogram.create () in
  List.iter (M.Histogram.observe h) [ 1.0; 4.0; 100.0 ];
  check_int "count before reset" 3 (M.Histogram.count h);
  M.Histogram.reset h;
  check_int "count" 0 (M.Histogram.count h);
  checkf "sum" 0.0 (M.Histogram.sum h);
  check "buckets empty" true (M.Histogram.buckets h = []);
  check "percentile of empty is nan" true
    (Float.is_nan (M.Histogram.percentile h ~p:50.0));
  (* The reset histogram behaves like a fresh one. *)
  M.Histogram.observe h 2.0;
  check_int "observes again" 1 (M.Histogram.count h);
  checkf "sum restarts" 2.0 (M.Histogram.sum h);
  checkf "min restarts" 2.0 (M.Histogram.min_value h);
  checkf "max restarts" 2.0 (M.Histogram.max_value h)

let test_registry_sorted () =
  let r = M.Registry.create () in
  (* Register out of order: iteration must come back sorted by key. *)
  List.iter (fun n -> ignore (M.Registry.counter r n)) [ "z"; "a"; "m" ];
  List.iter (fun n -> ignore (M.Registry.gauge r n)) [ "g2"; "g1" ];
  ignore (M.Registry.histogram r "h");
  check "counters sorted" true
    (List.map fst (M.Registry.counters r) = [ "a"; "m"; "z" ]);
  check "gauges sorted" true
    (List.map fst (M.Registry.gauges r) = [ "g1"; "g2" ]);
  check "find-or-create returns the same metric" true
    (M.Registry.counter r "a" == M.Registry.counter r "a");
  M.Registry.clear r;
  check "clear empties" true (M.Registry.counters r = [])

let test_exposition () =
  let r = M.Registry.create () in
  M.Counter.add (M.Registry.counter r "cluster.proposals.accepted") 41;
  M.Gauge.set (M.Registry.gauge r "simnet.heap.size") 7.0;
  let h = M.Registry.histogram r "commit.latency_ms" in
  List.iter (M.Histogram.observe h) [ 0.5; 3.0 ];
  let e = M.Registry.render_exposition r in
  let has needle =
    let nh = String.length e and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.equal (String.sub e i nn) needle || go (i + 1))
    in
    go 0
  in
  check "counter line (dots sanitised)" true
    (has "# TYPE cluster_proposals_accepted counter\n\
          cluster_proposals_accepted 41");
  check "gauge line" true (has "simnet_heap_size 7");
  check "histogram type line" true (has "# TYPE commit_latency_ms histogram");
  check "cumulative buckets end at +Inf" true
    (has "commit_latency_ms_bucket{le=\"+Inf\"} 2");
  check "sum and count" true
    (has "commit_latency_ms_sum 3.5" && has "commit_latency_ms_count 2");
  (* Rendering twice is byte-identical (sorted iteration, no wall clock). *)
  check "deterministic" true
    (String.equal e (M.Registry.render_exposition r))

let test_snapshot_json () =
  let r = M.Registry.create () in
  M.Counter.add (M.Registry.counter r "c") 3;
  M.Gauge.set (M.Registry.gauge r "g") 1.5;
  M.Histogram.observe (M.Registry.histogram r "h") 4.0;
  let j = M.Registry.snapshot_json r ~time:250.0 in
  let s = Bench_report.Json.to_compact_string j in
  check "one line" true (not (String.contains s '\n'));
  check "snapshot carries the sample time" true
    (Bench_report.Json.member "t_ms" j = Some (Bench_report.Json.float 250.0));
  check "snapshot is deterministic" true
    (String.equal s (Bench_report.Json.to_compact_string j))

let () =
  Alcotest.run "metrics"
    [
      ( "series",
        [
          Alcotest.test_case "count_at" `Quick test_count_at;
          Alcotest.test_case "total_between" `Quick test_total_between;
          Alcotest.test_case "longest_gap" `Quick test_longest_gap;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "windowed" `Quick test_windowed;
        ] );
      ("stats", [ Alcotest.test_case "mean/stddev/ci" `Quick test_stats ]);
      ( "metric",
        [
          Alcotest.test_case "gauge reset" `Quick test_gauge_reset;
          Alcotest.test_case "histogram reset" `Quick test_histogram_reset;
          Alcotest.test_case "registry sorted iteration" `Quick
            test_registry_sorted;
          Alcotest.test_case "prometheus exposition" `Quick test_exposition;
          Alcotest.test_case "snapshot json" `Quick test_snapshot_json;
        ] );
    ]
